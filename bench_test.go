package netalytics

// One benchmark per evaluation table/figure of the paper, plus ablation
// benches for the design choices DESIGN.md calls out. The full series
// reproductions (exact rows per figure) live in cmd/experiments; these
// benches regenerate each figure's underlying measurement as a testing.B
// target so `go test -bench=.` sweeps the whole evaluation.

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/insight"
	"netalytics/internal/monitor"
	"netalytics/internal/mq"
	"netalytics/internal/packet"
	"netalytics/internal/parsers"
	"netalytics/internal/placement"
	"netalytics/internal/query"
	"netalytics/internal/sdn"
	"netalytics/internal/sketch"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/vnet"
	"netalytics/internal/workload"
)

// --- Table 1: the common parsers ---

func BenchmarkTable1Parsers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"tcp_flow_key", "tcp_conn_time", "tcp_pkt_size", "http_get", "memcached_get", "mysql_query"} {
		factory, err := parsers.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		bl := workload.NewHTTPGetBlaster(64, 100, rng)
		b.Run(name, func(b *testing.B) {
			p := factory()
			pkt := &monitor.Packet{TS: time.Now()}
			raw := bl.Next()
			if err := pkt.Frame.Decode(raw); err != nil {
				b.Fatal(err)
			}
			ft, _ := pkt.Frame.FlowTuple()
			pkt.Tuple = ft
			pkt.FlowID = ft.CanonicalHash()
			emit := func(tuple.Tuple) {}
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Handle(pkt, emit)
			}
		})
	}
}

// --- Table 2: the topology building blocks ---

func BenchmarkTable2Blocks(b *testing.B) {
	sample := tuple.Tuple{FlowID: 7, Key: "/videos/0001.mp4", DstIP: "10.0.0.1", Val: 3}
	blocks := []struct {
		name string
		bolt stream.Bolt
	}{
		{"top-k_count", stream.NewRollingCountBolt(5)},
		{"top-k_rank", stream.NewRankBolt(10)},
		{"sum", stream.NewSumBolt("dstIP")},
		{"avg", stream.NewAvgBolt("dstIP")},
		{"max", stream.NewMaxBolt("dstIP")},
		{"min", stream.NewMinBolt("dstIP")},
		{"diff", stream.NewDiffBolt("", "")},
		{"group", stream.NewGroupBolt("dstIP", stream.AggCount, true)},
	}
	emit := func(tuple.Tuple) {}
	for _, blk := range blocks {
		b.Run(blk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blk.bolt.Execute(sample, emit)
			}
		})
	}
}

// --- Table 3: the query language ---

func BenchmarkTable3QueryParse(b *testing.B) {
	in := `PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO 10.0.2.9:80 LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)`
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 5: monitor throughput vs packet size ---

func BenchmarkFig5MonitorThroughput(b *testing.B) {
	for _, parserName := range []string{"tcp_conn_time", "http_get"} {
		for _, size := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/%dB", parserName, size), func(b *testing.B) {
				factory, err := parsers.Lookup(parserName)
				if err != nil {
					b.Fatal(err)
				}
				mon, err := monitor.New(monitor.Config{
					Parsers:    []monitor.Factory{factory},
					Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
					QueueDepth: 1 << 15,
				})
				if err != nil {
					b.Fatal(err)
				}
				bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: size, Flows: 64}, rand.New(rand.NewSource(2)))
				mon.Start()
				b.SetBytes(int64(bl.FrameSize()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for !mon.Deliver(bl.Next(), time.Time{}) {
					}
				}
				b.StopTimer()
				mon.Stop()
			})
		}
	}
}

// deliverBurstN pushes exactly total frames through DeliverBurst in chunks
// of burstSize, spinning on the undelivered tail like the single-packet
// benches spin on Deliver.
func deliverBurstN(mon *monitor.Monitor, bl *workload.Blaster, total, burstSize int) {
	for delivered := 0; delivered < total; {
		n := burstSize
		if total-delivered < n {
			n = total - delivered
		}
		frames := bl.NextBurst(n)
		for len(frames) > 0 {
			frames = frames[mon.DeliverBurst(frames, time.Time{}):]
		}
		delivered += n
	}
}

// BenchmarkFig5MonitorThroughputBurst is the Fig. 5 measurement on the
// burst datapath: frames arrive via DeliverBurst at the default burst size,
// the way the nfv pump and a DPDK rx_burst loop hand them over.
func BenchmarkFig5MonitorThroughputBurst(b *testing.B) {
	for _, parserName := range []string{"tcp_conn_time", "http_get"} {
		for _, size := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/%dB", parserName, size), func(b *testing.B) {
				factory, err := parsers.Lookup(parserName)
				if err != nil {
					b.Fatal(err)
				}
				mon, err := monitor.New(monitor.Config{
					Parsers:    []monitor.Factory{factory},
					Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
					QueueDepth: 1 << 15,
				})
				if err != nil {
					b.Fatal(err)
				}
				bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: size, Flows: 64}, rand.New(rand.NewSource(2)))
				mon.Start()
				b.SetBytes(int64(bl.FrameSize()))
				b.ResetTimer()
				deliverBurstN(mon, bl, b.N, monitor.DefaultBurstSize)
				b.StopTimer()
				mon.Stop()
			})
		}
	}
}

// --- Ablation: burst size (DESIGN.md #7) ---

// BenchmarkAblationBurstSize sweeps the burst size at the Fig. 5 worst case
// (64 B frames) with two parsers, so the per-packet channel and lock costs
// the burst datapath amortizes dominate. burst-1 approximates the
// single-packet path; throughput should improve monotonically toward 32.
func BenchmarkAblationBurstSize(b *testing.B) {
	for _, burst := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("burst-%d", burst), func(b *testing.B) {
			var factories []monitor.Factory
			for _, name := range []string{"tcp_flow_key", "tcp_conn_time"} {
				f, err := parsers.Lookup(name)
				if err != nil {
					b.Fatal(err)
				}
				factories = append(factories, f)
			}
			mon, err := monitor.New(monitor.Config{
				Parsers:    factories,
				BurstSize:  burst,
				Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 1 << 15,
			})
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: 64, Flows: 64}, rand.New(rand.NewSource(7)))
			mon.Start()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			deliverBurstN(mon, bl, b.N, burst)
			b.StopTimer()
			mon.Stop()
		})
	}
}

// --- Fig. 6: aggregation + processing scalability ---

func BenchmarkFig6AnalyticsScaling(b *testing.B) {
	batch := &tuple.Batch{Parser: "p"}
	for i := 0; i < 64; i++ {
		batch.Tuples = append(batch.Tuples, tuple.Tuple{FlowID: uint64(i), Key: "/v"})
	}
	for _, brokers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("brokers-%d", brokers), func(b *testing.B) {
			cluster := mq.NewCluster(brokers, mq.Config{Partitions: brokers, BufferBatches: 1 << 16})
			prod := cluster.Producer("bench")
			cons := cluster.Consumer("bench")
			b.SetBytes(int64(batch.WireSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prod.Send(batch); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					cons.Poll(64)
				}
			}
		})
	}
}

// --- Figs. 7 & 8: placement cost sweep ---

func benchPlacement(b *testing.B, pol placement.Policy) {
	topo := topology.MustNew(16)
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	all := workload.StaggeredFlows(topo, 100000, workload.FlowConfig{}, rand.New(rand.NewSource(2)))
	monitored := workload.Sample(all, 20000, rand.New(rand.NewSource(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := placement.Place(topo, monitored, pol, placement.Params{}, rand.New(rand.NewSource(4)))
		if err != nil {
			b.Fatal(err)
		}
		_ = placement.Evaluate(topo, monitored, p, placement.Params{}, all)
	}
}

func BenchmarkFig7PlacementNetworkCost(b *testing.B) {
	for _, pol := range []placement.Policy{placement.LocalRandom, placement.NetalyticsNode, placement.NetalyticsNetwork} {
		b.Run(pol.Name, func(b *testing.B) { benchPlacement(b, pol) })
	}
}

func BenchmarkFig8PlacementResourceCost(b *testing.B) {
	// Resource cost comes from the same placement pass as Fig. 7; this
	// target measures the counting path explicitly.
	topo := topology.MustNew(16)
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	all := workload.StaggeredFlows(topo, 100000, workload.FlowConfig{}, rand.New(rand.NewSource(2)))
	monitored := workload.Sample(all, 20000, rand.New(rand.NewSource(3)))
	p, err := placement.Place(topo, monitored, placement.NetalyticsNode, placement.Params{}, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.ProcessCount() == 0 {
			b.Fatal("empty placement")
		}
	}
}

// --- Figs. 9–14 use cases: end-to-end query pipeline ---

// BenchmarkUseCaseQueryPipeline measures a full query round trip: mirrored
// frames -> monitor -> aggregation -> diff-group topology -> result, the
// data path behind Figs. 9–14.
func BenchmarkUseCaseQueryPipeline(b *testing.B) {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 20 * time.Millisecond})
	defer engine.Close()
	hosts := topo.Hosts()
	server, client := hosts[0], hosts[12]
	web, err := apps.StartApp(engine.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer web.Stop()

	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80 PROCESS (diff-group: group=dstIP)", server.Name))
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Stop()
	go func() {
		for range sess.Results() {
		}
	}()
	ep := engine.Network().Endpoint(client)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := ep.Dial(server.Addr, 80)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Request([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"), time.Second); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// --- §7.2 comparison: MySQL query-log overhead vs passive monitoring ---

func BenchmarkMySQLQueryLogOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		log  bool
	}{{"log-off", false}, {"log-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := topology.MustNew(4)
			engine := core.NewEngine(topo, core.Config{})
			defer engine.Close()
			hosts := topo.Hosts()
			cfg := apps.MySQLConfig{DefaultCost: 200 * time.Microsecond}
			if mode.log {
				cfg.QueryLog = discardWriter{}
				cfg.LogOverhead = 50 * time.Microsecond
			}
			srv, err := apps.StartMySQL(engine.Network(), hosts[0], cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Stop()
			cli, err := apps.DialMySQL(engine.Network(), hosts[12], hosts[0], 0)
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.Query("SELECT 1", time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// --- Fig. 16/17 data path: the top-k topology ---

func BenchmarkFig16TopKTopology(b *testing.B) {
	var fed int
	spout := stream.SpoutFunc(func() []tuple.Tuple {
		if fed >= b.N {
			return nil
		}
		n := 256
		if b.N-fed < n {
			n = b.N - fed
		}
		out := make([]tuple.Tuple, n)
		for i := range out {
			out[i] = tuple.Tuple{Key: workload.URL((fed + i) % 100)}
		}
		fed += n
		return out
	})
	topo, err := stream.BuildTopology(
		stream.ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "10"}},
		func() stream.Spout { return spout }, 1, func(tuple.Tuple) {}, 50*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := stream.NewExecutor(topo, stream.WithTickInterval(50*time.Millisecond), stream.WithQueueDepth(1<<14))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ex.Start()
	ex.Stop() // spouts drain b.N tuples, then the DAG flushes
}

// --- Ablation: stream executor sub-batch size ---

// BenchmarkStreamThroughput drives a shuffle+fields two-bolt topology
// (spout → relay, shuffle → count, fields) and sweeps the executor's
// sub-batch size. batch-1 approximates the pre-vectorization tuple-at-a-time
// channels; by batch-32 the channel sends, inflight accounting, and route
// lookups amortize across the batch. ReportAllocs pins the pooled emit path:
// the spout reuses one template slice, so steady-state allocations per tuple
// stay near zero (the fields-grouping hash itself allocates nothing).
func BenchmarkStreamThroughput(b *testing.B) {
	template := make([]tuple.Tuple, 256)
	for i := range template {
		template[i] = tuple.Tuple{FlowID: uint64(i), Key: workload.URL(i % 64), Val: 1}
	}
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			var mu sync.Mutex
			fed := 0
			spout := stream.SpoutFunc(func() []tuple.Tuple {
				mu.Lock()
				defer mu.Unlock()
				if fed >= b.N {
					return nil
				}
				n := len(template)
				if b.N-fed < n {
					n = b.N - fed
				}
				fed += n
				return template[:n]
			})
			topo := stream.NewTopology("bench-batch")
			if err := topo.AddSpout("spout", func() stream.Spout { return spout }, 1); err != nil {
				b.Fatal(err)
			}
			relay := func() stream.Bolt {
				return stream.BoltFunc(func(t tuple.Tuple, emit stream.EmitFunc) { emit(t) })
			}
			if err := topo.AddBolt("relay", relay, 2).ShuffleFrom("spout").Err(); err != nil {
				b.Fatal(err)
			}
			count := func() stream.Bolt { return stream.NewGroupBolt("", stream.AggCount, true) }
			if err := topo.AddBolt("count", count, 2).FieldsFrom("relay", "").Err(); err != nil {
				b.Fatal(err)
			}
			ex, err := stream.NewExecutor(topo,
				stream.WithTickInterval(50*time.Millisecond),
				stream.WithQueueDepth(1024),
				stream.WithBatchSize(batch))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			ex.Start()
			for { // wait until the spout has fed every tuple, then drain
				mu.Lock()
				done := fed >= b.N
				mu.Unlock()
				if done {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			ex.Stop()
		})
	}
}

// --- Ablation: shared descriptors vs per-parser copies (DESIGN.md #1) ---

func BenchmarkAblationZeroCopy(b *testing.B) {
	for _, mode := range []struct {
		name string
		copy bool
	}{{"shared-descriptors", false}, {"copy-per-parser", true}} {
		b.Run(mode.name, func(b *testing.B) {
			factories := []monitor.Factory{}
			for _, name := range []string{"tcp_flow_key", "tcp_conn_time", "tcp_pkt_size"} {
				f, err := parsers.Lookup(name)
				if err != nil {
					b.Fatal(err)
				}
				factories = append(factories, f)
			}
			mon, err := monitor.New(monitor.Config{
				Parsers:    factories,
				Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 1 << 15,
				CopyMode:   mode.copy,
			})
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: 512, Flows: 64}, rand.New(rand.NewSource(3)))
			mon.Start()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !mon.Deliver(bl.Next(), time.Time{}) {
				}
			}
			b.StopTimer()
			mon.Stop()
		})
	}
}

// --- Ablation: RSS collector scaling (§5.2) ---

func BenchmarkAblationCollectors(b *testing.B) {
	for _, collectors := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("collectors-%d", collectors), func(b *testing.B) {
			factory, err := parsers.Lookup("tcp_conn_time")
			if err != nil {
				b.Fatal(err)
			}
			mon, err := monitor.New(monitor.Config{
				Parsers:    []monitor.Factory{factory},
				Collectors: collectors,
				Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 1 << 14,
			})
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: 256, Flows: 256}, rand.New(rand.NewSource(6)))
			mon.Start()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !mon.Deliver(bl.Next(), time.Time{}) {
				}
			}
			b.StopTimer()
			mon.Stop()
		})
	}
}

// --- Ablation: output batching (DESIGN.md #2) ---

func BenchmarkAblationOutputBatching(b *testing.B) {
	for _, batchSize := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch-%d", batchSize), func(b *testing.B) {
			cluster := mq.NewCluster(1, mq.Config{BufferBatches: 1 << 20})
			factory, err := parsers.Lookup("tcp_pkt_size")
			if err != nil {
				b.Fatal(err)
			}
			mon, err := monitor.New(monitor.Config{
				Parsers:    []monitor.Factory{factory},
				Sink:       cluster.Producer("t"),
				BatchSize:  batchSize,
				QueueDepth: 1 << 15,
			})
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: 256, Flows: 64}, rand.New(rand.NewSource(4)))
			mon.Start()
			cons := cluster.Consumer("t")
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					if cons.PollWait(64, 50*time.Millisecond) == nil {
						return
					}
				}
			}()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !mon.Deliver(bl.Next(), time.Time{}) {
				}
			}
			b.StopTimer()
			mon.Stop()
			<-done
		})
	}
}

// --- Ablation: flow sampling rate (DESIGN.md #3) ---

func BenchmarkAblationSampling(b *testing.B) {
	for _, rate := range []float64{1.0, 0.1} {
		b.Run(fmt.Sprintf("rate-%.1f", rate), func(b *testing.B) {
			factory, err := parsers.Lookup("http_get")
			if err != nil {
				b.Fatal(err)
			}
			mon, err := monitor.New(monitor.Config{
				Parsers:    []monitor.Factory{factory},
				Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 1 << 15,
				SampleRate: rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewHTTPGetBlaster(256, 100, rand.New(rand.NewSource(5)))
			mon.Start()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !mon.Deliver(bl.Next(), time.Time{}) {
				}
			}
			b.StopTimer()
			mon.Stop()
		})
	}
}

// --- Telemetry overhead: the registry + tracer cost on the hot path ---

// BenchmarkTelemetryOverhead measures the monitor datapath with telemetry
// off, at the default 1-in-64 trace sampling, and at the pathological
// trace-everything setting. "off" vs "sampled-64" is the number the tentpole
// budget constrains: the default sampling rate must stay within 5% of the
// untelemetered path, and counters alone (which "sampled-64" also carries)
// should be in the noise.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		every int // 0 = telemetry off entirely
	}{{"off", 0}, {"sampled-64", telemetry.DefaultSampleEvery}, {"sampled-1", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			factory, err := parsers.Lookup("tcp_conn_time")
			if err != nil {
				b.Fatal(err)
			}
			cfg := monitor.Config{
				Parsers:    []monitor.Factory{factory},
				Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 1 << 15,
			}
			if mode.every > 0 {
				reg := telemetry.NewRegistry()
				cfg.Metrics = reg
				cfg.Tracer = telemetry.NewTracer(reg, mode.every)
			}
			mon, err := monitor.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bl := workload.NewBlaster(workload.BlasterConfig{FrameSize: 256, Flows: 64}, rand.New(rand.NewSource(8)))
			mon.Start()
			b.SetBytes(int64(bl.FrameSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !mon.Deliver(bl.Next(), time.Time{}) {
				}
			}
			b.StopTimer()
			mon.Stop()
		})
	}
}

// --- Insight tier overhead: always-on detection vs the bare service ---

// BenchmarkInsightOverhead measures end-to-end request latency through the
// emulated service with the insight tier off and on. "insight-on" carries
// the whole always-on stack — the standing observation queries with their
// mirrored monitors, the registry feeder, per-series detectors and the
// correlator — and must stay within ~5% of the bare path: the tier samples
// on its own clock and adds no per-request work.
func BenchmarkInsightOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"insight-off", false}, {"insight-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := topology.MustNew(4)
			cfg := core.Config{TickInterval: 50 * time.Millisecond}
			if mode.on {
				cfg.Insight = &insight.Config{SnapshotPeriod: 100 * time.Millisecond}
			}
			engine := core.NewEngine(topo, cfg)
			defer engine.Close()
			hosts := topo.Hosts()
			server, client := hosts[0], hosts[12]
			web, err := apps.StartApp(engine.Network(), server, apps.AppConfig{
				Routes: map[string]apps.Route{"/": {Cost: 100 * time.Microsecond}},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer web.Stop()
			if mode.on {
				if err := engine.ObserveServices(); err != nil {
					b.Fatal(err)
				}
				// Let the observation monitors place and the feeder take its
				// first snapshot before timing starts.
				time.Sleep(300 * time.Millisecond)
			}
			ep := engine.Network().Endpoint(client)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conn, err := ep.Dial(server.Addr, 80)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := conn.Request([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"), time.Second); err != nil {
					b.Fatal(err)
				}
				conn.Close()
			}
			b.StopTimer()
			if mode.on {
				// A quiet benchmark run must not page anyone.
				b.ReportMetric(float64(engine.Insight().Total()), "incidents")
			}
		})
	}
}

// --- Figs. 13-14: end-to-end pipeline latency percentiles ---

// BenchmarkPipelineLatency drives the full query pipeline with tracing on
// every tuple and publishes the capture-to-sink latency percentiles as
// custom metrics (e2e-p50-ns etc.), the shape behind the paper's latency
// CDFs. benchparse picks the extra metrics up into BENCH_pipeline.json.
func BenchmarkPipelineLatency(b *testing.B) {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{
		TickInterval:     20 * time.Millisecond,
		TraceSampleEvery: 1,
	})
	defer engine.Close()
	hosts := topo.Hosts()
	server, client := hosts[0], hosts[12]
	web, err := apps.StartApp(engine.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer web.Stop()

	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Stop()
	go func() {
		for range sess.Results() {
		}
	}()
	ep := engine.Network().Endpoint(client)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := ep.Dial(server.Addr, 80)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Request([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"), time.Second); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
	b.StopTimer()
	// Let in-flight tuples reach the sink so the histograms cover the run.
	deadline := time.Now().Add(2 * time.Second)
	for sess.Telemetry().Stage(telemetry.StageEndToEnd).Count == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	e2e := sess.Telemetry().Stage(telemetry.StageEndToEnd)
	b.ReportMetric(e2e.P50NS, "e2e-p50-ns")
	b.ReportMetric(e2e.P95NS, "e2e-p95-ns")
	b.ReportMetric(e2e.P99NS, "e2e-p99-ns")
}

// --- Ablation: mq persistence mode (DESIGN.md #5) ---

func BenchmarkAblationPersistence(b *testing.B) {
	batch := &tuple.Batch{Parser: "p"}
	for i := 0; i < 64; i++ {
		batch.Tuples = append(batch.Tuples, tuple.Tuple{FlowID: uint64(i), Key: "/v"})
	}
	for _, mode := range []struct {
		name string
		cfg  mq.Config
	}{
		{"ram", mq.Config{BufferBatches: 1 << 20}},
		{"disk-70MBps", mq.Config{BufferBatches: 1 << 20, Persist: mq.PersistDisk}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cluster := mq.NewCluster(1, mode.cfg)
			prod := cluster.Producer("t")
			cons := cluster.Consumer("t")
			b.SetBytes(int64(batch.WireSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prod.Send(batch); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					cons.Poll(64)
				}
			}
		})
	}
}

// --- Ablation: vnet forwarding fast path (flow-decision cache) ---

// BenchmarkVnetForward measures the per-frame cost of Network.forward with
// and without the flow-decision cache, sweeping flow-table pressure (rules
// per on-path switch) and mirror fan-out. 256 flows cycle through a
// cross-pod 5-switch path; the cached configurations report their hit rate
// (~255/256: one compulsory miss per flow). CI emits this as
// BENCH_vnet.json. The destination host has no endpoint, so the numbers
// isolate the fabric: path resolution, flow-table walks, mirror dedup and
// tap delivery, not endpoint inbox handling.
func BenchmarkVnetForward(b *testing.B) {
	for _, rules := range []int{2, 8} {
		for _, mirrors := range []int{0, 2} {
			for _, cached := range []bool{false, true} {
				name := fmt.Sprintf("rules=%d/mirrors=%d/cache=%v", rules, mirrors, cached)
				b.Run(name, func(b *testing.B) {
					topo := topology.MustNew(4)
					ctrl := sdn.NewController()
					net := vnet.New(topo, ctrl)
					if cached {
						net.SetFlowCacheSize(vnet.DefaultFlowCacheSize)
					}
					hosts := topo.Hosts()
					src, dst := hosts[12], hosts[0] // cross-pod: 5-switch path
					path := topo.SwitchPath(src, dst)

					// Mirror rules on every on-path switch (the dedup worst
					// case), each tap drained by a burst reader.
					var taps []*vnet.Tap
					var wg sync.WaitGroup
					for m := 0; m < mirrors; m++ {
						mon := hosts[1+m]
						tap := net.OpenTap(mon.ID, 8192)
						taps = append(taps, tap)
						wg.Add(1)
						go func(tap *vnet.Tap) {
							defer wg.Done()
							buf := make([]vnet.TapFrame, 256)
							for tap.ReadBurst(buf) > 0 {
							}
						}(tap)
						for _, sw := range path {
							ctrl.InstallMirror("bench", sw, sdn.Match{DstIP: dst.Addr}, mon.ID, 100)
						}
					}
					// Decoy rules fill each table to the target size: higher
					// priority, never matching, so every lookup walks them.
					id := uint64(1 << 32)
					for _, sw := range path {
						for d := mirrors; d < rules; d++ {
							id++
							ctrl.Table(sw).Install(&sdn.Rule{
								ID: id, Priority: 1000 + d,
								Match: sdn.Match{DstIP: hosts[15].Addr, DstPort: 9},
							})
						}
					}

					frames := make([][]byte, 256)
					for i := range frames {
						var pb packet.Builder
						frames[i] = pb.TCP(packet.TCPSpec{
							Src: src.Addr, Dst: dst.Addr,
							SrcPort: uint16(20000 + i), DstPort: 80,
							Flags: packet.TCPFlagACK,
						})
					}
					for _, f := range frames { // warm the cache
						if err := net.Inject(f); err != nil {
							b.Fatal(err)
						}
					}

					start := net.FlowCacheStats()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := net.Inject(frames[i&255]); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					if cached {
						cs := net.FlowCacheStats()
						if lookups := (cs.Hits - start.Hits) + (cs.Misses - start.Misses); lookups > 0 {
							b.ReportMetric(float64(cs.Hits-start.Hits)/float64(lookups), "hit-rate")
						}
					}
					for _, tap := range taps {
						net.CloseTap(tap)
					}
					wg.Wait()
				})
			}
		}
	}
}

// --- Scale-out: per-core sharded ingest, GOMAXPROCS sweep 1 -> 32 ---
//
// A/B sweep of the two refactored datapaths, published by CI as
// BENCH_scaleout.json:
//
//   mq/{legacy,sharded}       N producer threads hammer one topic while one
//                             drainer per core polls a shared consumer group.
//                             legacy serializes appends behind the partition
//                             mutex; sharded gives each producer a home
//                             single-writer ring.
//   monitor/{channels,steal}  N delivery threads push one hot IP pair split
//                             across 64 port flows. RSS by IP pair pins the
//                             whole load to a single collector on the channel
//                             path; the steal path fans the backlog out to
//                             idle collectors.
//
// Each sub-bench pins GOMAXPROCS and verifies conservation (every accepted
// batch/frame accounted for) before reporting, so a scheduling bug cannot
// masquerade as throughput.

func BenchmarkScaleout(b *testing.B) {
	cores := []int{1, 2, 4, 8, 16, 32}
	for _, path := range []string{"legacy", "sharded"} {
		for _, n := range cores {
			b.Run(fmt.Sprintf("mq/%s/cores=%d", path, n), func(b *testing.B) {
				benchScaleoutMQ(b, path == "sharded", n)
			})
		}
	}
	for _, path := range []string{"channels", "steal"} {
		for _, n := range cores {
			b.Run(fmt.Sprintf("monitor/%s/cores=%d", path, n), func(b *testing.B) {
				benchScaleoutMonitor(b, path == "steal", n)
			})
		}
	}
}

func benchScaleoutMQ(b *testing.B, sharded bool, cores int) {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	cfg := mq.Config{Partitions: 4, BufferBatches: 1 << 16}
	if sharded {
		cfg.IngestShards = cores
	}
	cluster := mq.NewCluster(2, cfg)

	batch := &tuple.Batch{Parser: "p"}
	for i := 0; i < 64; i++ {
		batch.Tuples = append(batch.Tuples, tuple.Tuple{FlowID: uint64(i), Key: "/v"})
	}

	var produced, consumed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < cores; i++ {
		cons := cluster.GroupConsumer("scale", "bench")
		cons.SetShardAffinity(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got := cons.Poll(256)
				if len(got) == 0 {
					runtime.Gosched()
					continue
				}
				consumed.Add(int64(len(got)))
			}
			for { // final sweep: claim whatever the producers left behind
				got := cons.Poll(256)
				if len(got) == 0 {
					return
				}
				consumed.Add(int64(len(got)))
			}
		}()
	}

	b.SetBytes(int64(batch.WireSize()))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		prod := cluster.Producer("scale")
		for pb.Next() {
			for {
				err := prod.Send(batch)
				if err == nil {
					break
				}
				if !errors.Is(err, mq.ErrBufferFull) && !errors.Is(err, mq.ErrUnavailable) {
					b.Error(err)
					return
				}
				runtime.Gosched()
			}
			produced.Add(1)
		}
	})
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	if got, want := consumed.Load(), produced.Load(); got != want {
		b.Fatalf("tuple loss: produced %d batches, consumed %d", want, got)
	}
}

func benchScaleoutMonitor(b *testing.B, steal bool, cores int) {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	factory, err := parsers.Lookup("tcp_pkt_size")
	if err != nil {
		b.Fatal(err)
	}
	mon, err := monitor.New(monitor.Config{
		Parsers:    []monitor.Factory{factory},
		Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
		QueueDepth: 1 << 14,
		Collectors: cores,
		WorkSteal:  steal,
	})
	if err != nil {
		b.Fatal(err)
	}

	// One hot IP pair, 64 port flows: the worst case for RSS-by-IP-pair.
	var pb packet.Builder
	frames := make([][]byte, 64)
	for i := range frames {
		frames[i] = pb.TCP(packet.TCPSpec{
			Src:     netip.AddrFrom4([4]byte{10, 9, 0, 2}),
			Dst:     netip.AddrFrom4([4]byte{10, 9, 0, 3}),
			SrcPort: uint16(10000 + i),
			DstPort: 80,
			Flags:   packet.TCPFlagACK | packet.TCPFlagPSH,
			Payload: make([]byte, 192),
		})
	}

	mon.Start()
	var accepted, idx atomic.Uint64
	b.SetBytes(int64(len(frames[0])))
	b.ResetTimer()
	b.RunParallel(func(pbb *testing.PB) {
		for pbb.Next() {
			f := frames[idx.Add(1)&63]
			for !mon.Deliver(f, time.Time{}) {
				runtime.Gosched()
			}
			accepted.Add(1)
		}
	})
	b.StopTimer()
	mon.Stop()
	st := mon.Stats()
	if got := st.Received - st.CollectDrops; got != accepted.Load() {
		b.Fatalf("frame loss: accepted %d, monitor accounts for %d", accepted.Load(), got)
	}
}

// --- Shared-tap control plane: 1 -> 128 concurrent queries ---

// BenchmarkMultiQuery sweeps concurrent query count over a k=8 fat tree (128
// hosts) with ~50% demand overlap: even-numbered queries all demand the same
// (server, port) pair, odd-numbered queries each demand their own server.
// ns/op is the per-frame fabric cost of injecting traffic while n queries
// hold their mirror rules — the legacy plane pays one tap delivery per
// subscribed monitor on each mirror host, the shared plane one per merged
// tap. The control-plane footprint lands as custom metrics: mirror-rules and
// monitors installed for the query set, plus mirrored-per-frame (fabric
// deliveries) and parsed-per-frame (monitor work) per injected frame. CI
// publishes the sweep as BENCH_multiquery.json; the tentpole acceptance bound
// (shared ≤ 0.6× legacy rules and parsed frames at 64 queries) is asserted in
// TestSharedTapsMergeRatio — the bench shows the whole curve.
func BenchmarkMultiQuery(b *testing.B) {
	for _, shared := range []bool{false, true} {
		mode := "legacy"
		if shared {
			mode = "shared"
		}
		for _, n := range []int{1, 8, 32, 64, 128} {
			b.Run(fmt.Sprintf("%s/queries=%d", mode, n), func(b *testing.B) {
				benchMultiQuery(b, shared, n)
			})
		}
	}
}

func benchMultiQuery(b *testing.B, shared bool, queries int) {
	topo := topology.MustNew(8)
	engine := core.NewEngine(topo, core.Config{
		TickInterval: 50 * time.Millisecond,
		SharedTaps:   shared,
	})
	defer engine.Close()
	hosts := topo.Hosts()
	client := hosts[len(hosts)-1]
	overlapSrv := hosts[0]
	// Distinct demands each get their own server host so the legacy plane
	// places genuinely separate monitors; port stays 80 throughout.
	distinct := hosts[1 : len(hosts)-1]

	var sessions []*core.Session
	demands := map[*topology.Host]bool{}
	for i := 0; i < queries; i++ {
		srv := overlapSrv
		if i%2 == 1 {
			srv = distinct[(i/2)%len(distinct)]
		}
		demands[srv] = true
		sess, err := engine.Submit(fmt.Sprintf(
			"PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", srv.Name))
		if err != nil {
			b.Fatal(err)
		}
		sessions = append(sessions, sess)
		go func() {
			for range sess.Results() {
			}
		}()
	}

	// One crafted GET frame per unique demand; the timed loop cycles them.
	var pb packet.Builder
	var frames [][]byte
	sp := uint16(20000)
	for srv := range demands {
		sp++
		frames = append(frames, pb.TCP(packet.TCPSpec{
			Src: client.Addr, Dst: srv.Addr,
			SrcPort: sp, DstPort: 80,
			Flags:   packet.TCPFlagACK,
			Payload: []byte("GET /bench HTTP/1.1\r\nHost: h\r\n\r\n"),
		}))
	}

	parsed := func() uint64 {
		var sum uint64
		for _, in := range engine.Orchestrator().All() {
			sum += in.Monitor.Stats().Received
		}
		return sum
	}
	startMirrored := engine.Network().Stats().Mirrored
	b.SetBytes(int64(len(frames[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Network().Inject(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	// Quiesce: every mirrored frame pumped and parsed before counting.
	prev := uint64(0)
	for i := 0; i < 200; i++ {
		cur := parsed()
		if cur > 0 && cur == prev && engine.Network().TapQueueDepth() == 0 {
			break
		}
		prev = cur
		time.Sleep(10 * time.Millisecond)
	}
	injected := float64(b.N)
	b.ReportMetric(float64(engine.Controller().RuleCount()), "mirror-rules")
	b.ReportMetric(float64(engine.Orchestrator().InstanceCount()), "monitors")
	b.ReportMetric(float64(engine.Network().Stats().Mirrored-startMirrored)/injected, "mirrored-per-frame")
	b.ReportMetric(float64(parsed())/injected, "parsed-per-frame")
	for _, sess := range sessions {
		sess.Stop()
	}
}

// --- Sketch analytics: exact vs sketch at high cardinality ---

// sketchRetention is the untimed half of BenchmarkSketchTopKScaling: stream
// `distinct` unique keys (plus ten heavy keys) through each counting
// structure once and record what it retains and how far its heavy-hitter
// estimates land from the truth. Memoized because testing.B re-runs the
// benchmark body while calibrating b.N, and the exact pass at 10M keys
// builds a gigabyte-scale map.
var (
	sketchRetentionMu    sync.Mutex
	sketchRetentionCache = map[string]sketchRetentionResult{}
)

type sketchRetentionResult struct {
	retainedBytes float64
	relErr        float64
}

func sketchRetention(mode string, distinct int) sketchRetentionResult {
	sketchRetentionMu.Lock()
	defer sketchRetentionMu.Unlock()
	key := fmt.Sprintf("%s/%d", mode, distinct)
	if r, ok := sketchRetentionCache[key]; ok {
		return r
	}

	const heavyKeys = 10
	heavyWeight := float64(distinct) / 4 // well above N/m for the sketch

	var res sketchRetentionResult
	offerAll := func(offer func(k string, w float64)) {
		buf := make([]byte, 0, 32)
		for i := 0; i < distinct; i++ {
			buf = append(buf[:0], "key-"...)
			buf = strconv.AppendInt(buf, int64(i), 10)
			w := 1.0
			if i < heavyKeys {
				w = heavyWeight
			}
			offer(string(buf), w)
		}
	}

	switch mode {
	case "exact":
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		counts := make(map[string]float64)
		offerAll(func(k string, w float64) { counts[k] += w })
		runtime.GC()
		runtime.ReadMemStats(&after)
		res.retainedBytes = float64(after.HeapAlloc) - float64(before.HeapAlloc)
		res.relErr = 0 // exact is the ground truth
		runtime.KeepAlive(counts)
	case "sketch":
		sk := sketch.NewTopK(sketch.DefaultCapacity(heavyKeys))
		offerAll(sk.Offer)
		res.retainedBytes = float64(sk.Bytes())
		errSum := 0.0
		for i := 0; i < heavyKeys; i++ {
			est, _, _ := sk.Estimate("key-" + strconv.Itoa(i))
			errSum += (est - heavyWeight) / heavyWeight // overestimate-only
		}
		res.relErr = errSum / heavyKeys
	}
	sketchRetentionCache[key] = res
	return res
}

// BenchmarkSketchTopKScaling compares the exact top-k datapath (count map +
// bounded-heap rank) against the space-saving sketch at 10k, 1M and 10M
// distinct keys. ns/op times the per-tuple offer against a Zipf draw from
// the full key space; retained-B and top10-relerr come from the one-shot
// retention pass above. The sketch's retained bytes are flat across three
// orders of magnitude of cardinality; exact retention grows linearly.
func BenchmarkSketchTopKScaling(b *testing.B) {
	for _, distinct := range []int{10_000, 1_000_000, 10_000_000} {
		ring := make([]string, 1<<16)
		z := workload.NewZipfURLs(uint64(distinct), 1.2, uint64(distinct), rand.New(rand.NewSource(int64(distinct))))
		for i := range ring {
			ring[i] = z.Next()
		}
		mask := len(ring) - 1

		b.Run(fmt.Sprintf("exact/keys-%d", distinct), func(b *testing.B) {
			ret := sketchRetention("exact", distinct)
			counts := make(map[string]float64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts[ring[i&mask]]++
			}
			b.StopTimer()
			// Rank flush cost at realistic k, included so exact pays its
			// whole pipeline like the sketch's Top does below.
			_ = topOfCounts(counts, 10)
			// Reported after the loop: ResetTimer wipes extra metrics.
			b.ReportMetric(ret.retainedBytes, "retained-B")
			b.ReportMetric(ret.relErr, "top10-relerr")
		})
		b.Run(fmt.Sprintf("sketch/keys-%d", distinct), func(b *testing.B) {
			ret := sketchRetention("sketch", distinct)
			sk := sketch.NewTopK(sketch.DefaultCapacity(10))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Offer(ring[i&mask], 1)
			}
			b.StopTimer()
			_ = sk.Top(10)
			b.ReportMetric(ret.retainedBytes, "retained-B")
			b.ReportMetric(ret.relErr, "top10-relerr")
		})
	}
}

func topOfCounts(m map[string]float64, k int) []string {
	type kv struct {
		k string
		v float64
	}
	all := make([]kv, 0, len(m))
	for key, v := range m {
		all = append(all, kv{key, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.k
	}
	return out
}

// BenchmarkSketchBoltParallelism drives the full sketch top-k topology
// (spout → local sketch bolts × tasks, shuffle → merge × 1) at increasing
// bolt parallelism. Because the local bolts keep partition-local sketches
// and the merge stage only sees O(tasks) encoded summaries per tick, tuple
// throughput scales with the bolt task count instead of serializing on a
// global reducer.
func BenchmarkSketchBoltParallelism(b *testing.B) {
	template := make([]tuple.Tuple, 256)
	z := workload.NewZipfURLs(1_000_000, 1.2, 1, rand.New(rand.NewSource(1)))
	for i := range template {
		template[i] = tuple.Tuple{FlowID: uint64(i), Key: z.Next(), Val: 1}
	}
	for _, tasks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tasks-%d", tasks), func(b *testing.B) {
			var mu sync.Mutex
			fed := 0
			spout := stream.SpoutFunc(func() []tuple.Tuple {
				mu.Lock()
				defer mu.Unlock()
				if fed >= b.N {
					return nil
				}
				n := len(template)
				if b.N-fed < n {
					n = b.N - fed
				}
				fed += n
				return template[:n]
			})
			topo, err := stream.BuildTopologyOpts(
				stream.ProcessorSpec{Name: "top-k", Args: map[string]string{
					"k": "10", "tasks": strconv.Itoa(tasks), "sketch": "true",
				}},
				func() stream.Spout { return spout }, 1, func(tuple.Tuple) {}, 50*time.Millisecond,
				stream.TopologyOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ex, err := stream.NewExecutor(topo,
				stream.WithTickInterval(50*time.Millisecond), stream.WithQueueDepth(1<<14))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			ex.Start()
			ex.Stop()
		})
	}
}
