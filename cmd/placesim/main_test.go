package main

import "testing"

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"local", "node", "network", "all"} {
		if err := run(4, 2000, 500, policy, 1); err != nil {
			t.Errorf("run(%s): %v", policy, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(4, 1000, 100, "bogus", 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(4, 100, 1000, "all", 1); err == nil {
		t.Error("monitored > total accepted")
	}
	if err := run(3, 100, 10, "all", 1); err == nil {
		t.Error("odd k accepted")
	}
}
