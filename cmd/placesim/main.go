// Command placesim runs the §6.2 placement simulation standalone: it builds
// a k-ary fat tree, generates a staggered data-center workload, places
// NetAlytics monitors and analytics engines with a chosen policy, and prints
// the network and resource costs.
//
// Usage:
//
//	placesim [-k 16] [-flows 1000000] [-monitored 100000] [-policy network|node|local] [-seeds 3]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"netalytics/internal/placement"
	"netalytics/internal/topology"
	"netalytics/internal/workload"
)

func main() {
	k := flag.Int("k", 16, "fat-tree arity (even)")
	totalFlows := flag.Int("flows", 1000000, "total workload flows")
	monitored := flag.Int("monitored", 100000, "monitored flow count")
	policyName := flag.String("policy", "all", "placement policy: local, node, network or all")
	seeds := flag.Int("seeds", 3, "random repetitions to average")
	flag.Parse()

	if err := run(*k, *totalFlows, *monitored, *policyName, *seeds); err != nil {
		fmt.Fprintf(os.Stderr, "placesim: %v\n", err)
		os.Exit(1)
	}
}

func run(k, totalFlows, monitored int, policyName string, seeds int) error {
	var policies []placement.Policy
	switch policyName {
	case "local":
		policies = []placement.Policy{placement.LocalRandom}
	case "node":
		policies = []placement.Policy{placement.NetalyticsNode}
	case "network":
		policies = []placement.Policy{placement.NetalyticsNetwork}
	case "all":
		policies = []placement.Policy{placement.LocalRandom, placement.NetalyticsNode, placement.NetalyticsNetwork}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if monitored > totalFlows {
		return fmt.Errorf("monitored (%d) exceeds total flows (%d)", monitored, totalFlows)
	}

	topo, err := topology.New(k)
	if err != nil {
		return err
	}
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	all := workload.StaggeredFlows(topo, totalFlows, workload.FlowConfig{}, rand.New(rand.NewSource(2)))
	fmt.Printf("topology: k=%d (%d hosts); workload: %d flows, %.2f Tbps; monitoring %d flows\n",
		k, len(topo.Hosts()), len(all), workload.TotalRate(all)/1e12, monitored)

	fmt.Printf("%-22s %10s %12s %10s %10s %12s\n",
		"policy", "bw%", "weighted bw%", "monitors", "aggs+procs", "processes")
	for _, pol := range policies {
		var bw, wbw, procs, mons, analytics float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(int64(100 + s)))
			flows := workload.Sample(all, monitored, rng)
			p, err := placement.Place(topo, flows, pol, placement.Params{}, rng)
			if err != nil {
				return fmt.Errorf("placing %s: %w", pol.Name, err)
			}
			c := placement.Evaluate(topo, flows, p, placement.Params{}, all)
			bw += c.ExtraBandwidthPct
			wbw += c.WeightedExtraBandwidthPct
			procs += float64(c.Processes)
			mons += float64(len(p.Monitors))
			analytics += float64(len(p.Aggregators) + len(p.Processors))
		}
		n := float64(seeds)
		fmt.Printf("%-22s %10.4f %12.4f %10.0f %10.0f %12.0f\n",
			pol.Name, bw/n, wbw/n, mons/n, analytics/n, procs/n)
	}
	return nil
}
