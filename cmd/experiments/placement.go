package main

import (
	"fmt"
	"math/rand"

	"netalytics/internal/placement"
	"netalytics/internal/topology"
	"netalytics/internal/workload"
)

type placementRow struct {
	flows  int
	policy string
	bwPct  float64
	wbwPct float64
	procs  int
}

func placementPolicies() []placement.Policy {
	return []placement.Policy{placement.LocalRandom, placement.NetalyticsNode, placement.NetalyticsNetwork}
}

// runPlacementSweep performs the §6.2 simulation: a k=16 fat tree
// (1024 hosts), ~1000 K staggered flows at ~1.2 Tbps, monitored subsets from
// 1 K to 300 K flows, three placement policies, averaged over seeds.
func runPlacementSweep(ctx *runCtx) error {
	if ctx.placementDone {
		return nil
	}
	k := 16
	totalFlows := 1000000
	points := []int{1000, 50000, 100000, 150000, 200000, 250000, 300000}
	seeds := 3
	if ctx.quick {
		k = 8
		totalFlows = 50000
		points = []int{1000, 10000, 25000}
		seeds = 2
	}

	topo := topology.MustNew(k)
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	all := workload.StaggeredFlows(topo, totalFlows, workload.FlowConfig{}, rand.New(rand.NewSource(2)))
	fmt.Printf("   workload: %d flows, %.2f Tbps over %d hosts\n",
		len(all), workload.TotalRate(all)/1e12, len(topo.Hosts()))

	for _, nFlows := range points {
		for _, pol := range placementPolicies() {
			var bw, wbw, procs float64
			for s := 0; s < seeds; s++ {
				rng := rand.New(rand.NewSource(int64(100 + s)))
				monitored := workload.Sample(all, nFlows, rng)
				p, err := placement.Place(topo, monitored, pol, placement.Params{}, rng)
				if err != nil {
					return fmt.Errorf("placing %s at %d flows: %w", pol.Name, nFlows, err)
				}
				c := placement.Evaluate(topo, monitored, p, placement.Params{}, all)
				bw += c.ExtraBandwidthPct
				wbw += c.WeightedExtraBandwidthPct
				procs += float64(c.Processes)
			}
			ctx.placementRows = append(ctx.placementRows, placementRow{
				flows:  nFlows,
				policy: pol.Name,
				bwPct:  bw / float64(seeds),
				wbwPct: wbw / float64(seeds),
				procs:  int(procs / float64(seeds)),
			})
		}
	}
	ctx.placementDone = true
	return nil
}

// runFig7 reproduces Fig. 7: extra bandwidth (plain and weighted) consumed
// by each placement policy as the monitored flow count grows.
func runFig7(ctx *runCtx) error {
	if err := runPlacementSweep(ctx); err != nil {
		return err
	}
	rows := [][]string{{"monitoring_flows", "policy", "extra_bandwidth_pct", "weighted_extra_bandwidth_pct"}}
	fmt.Printf("   %-10s %-22s %10s %12s\n", "flows", "policy", "bw%", "weighted bw%")
	for _, r := range ctx.placementRows {
		rows = append(rows, []string{
			fmt.Sprint(r.flows), r.policy,
			fmt.Sprintf("%.4f", r.bwPct), fmt.Sprintf("%.4f", r.wbwPct),
		})
		fmt.Printf("   %-10d %-22s %10.4f %12.4f\n", r.flows, r.policy, r.bwPct, r.wbwPct)
	}
	return ctx.writeTSV("fig7_placement_network_cost", rows)
}

// runFig8 reproduces Fig. 8: total NetAlytics processes placed by each
// policy as the monitored flow count grows.
func runFig8(ctx *runCtx) error {
	if err := runPlacementSweep(ctx); err != nil {
		return err
	}
	rows := [][]string{{"monitoring_flows", "policy", "processes"}}
	fmt.Printf("   %-10s %-22s %10s\n", "flows", "policy", "processes")
	for _, r := range ctx.placementRows {
		rows = append(rows, []string{fmt.Sprint(r.flows), r.policy, fmt.Sprint(r.procs)})
		fmt.Printf("   %-10d %-22s %10d\n", r.flows, r.policy, r.procs)
	}
	return ctx.writeTSV("fig8_placement_resource_cost", rows)
}
