package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/stream"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/workload"
)

// runFig16 reproduces Fig. 16: the popularity of individual videos
// fluctuates over time even among the most popular content.
//
// Substitution: the Zink et al. YouTube gateway trace is proprietary-ish
// test data; a Zipf popularity process with rank churn reproduces the
// relevant dynamics. Requests stream through the same top-k topology
// NetAlytics deploys (Fig. 4), and the series tracks the two videos that
// start as the 2nd and 3rd most popular.
func runFig16(ctx *runCtx) error {
	intervals := 40
	perInterval := 1500
	if ctx.quick {
		intervals, perInterval = 12, 600
	}

	// Channel-fed spout into the top-k topology.
	feed := make(chan []tuple.Tuple, 4)
	spout := stream.SpoutFunc(func() []tuple.Tuple {
		select {
		case batch := <-feed:
			return batch
		default:
			return nil
		}
	})
	var mu sync.Mutex
	var latest []stream.RankEntry
	out := func(t tuple.Tuple) {
		if entries, ok := stream.DecodeRankings(t); ok {
			mu.Lock()
			latest = entries
			mu.Unlock()
		}
	}
	topo, err := stream.BuildTopology(
		stream.ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "10", "w": "100ms"}},
		func() stream.Spout { return spout }, 1, out, 50*time.Millisecond)
	if err != nil {
		return err
	}
	ex, err := stream.NewExecutor(topo, stream.WithTickInterval(50*time.Millisecond))
	if err != nil {
		return err
	}
	ex.Start()
	defer ex.Stop()

	rng := rand.New(rand.NewSource(16))
	trace := workload.NewPopularityTrace(200, 1.4, 12, rng)
	video1, video2 := workload.URL(1), workload.URL(2) // 2nd and 3rd most popular at t=0

	rows := [][]string{{"t", "video1_popularity", "video2_popularity", "top_url"}}
	fmt.Printf("   %-4s %8s %8s  %s\n", "t", "video1", "video2", "top")
	for t := 0; t < intervals; t++ {
		ids := trace.Interval(perInterval)
		batch := make([]tuple.Tuple, len(ids))
		for i, id := range ids {
			batch[i] = tuple.Tuple{FlowID: uint64(i), Key: workload.URL(id)}
		}
		feed <- batch
		time.Sleep(120 * time.Millisecond) // ~2 window slots

		mu.Lock()
		entries := append([]stream.RankEntry(nil), latest...)
		mu.Unlock()
		var maxCount, v1, v2 float64
		top := ""
		for i, e := range entries {
			if i == 0 {
				maxCount = e.Count
				top = e.Key
			}
			switch e.Key {
			case video1:
				v1 = e.Count
			case video2:
				v2 = e.Count
			}
		}
		p1, p2 := 0.0, 0.0
		if maxCount > 0 {
			p1, p2 = v1/maxCount*100, v2/maxCount*100
		}
		rows = append(rows, []string{
			fmt.Sprint(t), fmt.Sprintf("%.1f", p1), fmt.Sprintf("%.1f", p2), top,
		})
		if t%5 == 0 {
			fmt.Printf("   %-4d %8.1f %8.1f  %s\n", t, p1, p2, top)
		}
	}
	return ctx.writeTSV("fig16_popularity_over_time", rows)
}

// runFig17 reproduces Fig. 17: NetAlytics's top-k feed drives the §7.3
// Updater, which replicates popular content onto additional web servers when
// a surge hits; the proxy redistributes load within seconds.
func runFig17(ctx *runCtx) error {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 50 * time.Millisecond})
	defer engine.Close()
	hosts := topo.Hosts()
	proxyHost := hosts[0]
	serverHosts := []*topology.Host{hosts[1], hosts[2], hosts[3]}
	client1, client2 := hosts[12], hosts[13]
	net := engine.Network()

	routes := map[string]apps.Route{"/videos/": {Cost: 2 * time.Millisecond, BodySize: 512}}
	names := make([]string, len(serverHosts))
	for i, h := range serverHosts {
		srv, err := apps.StartApp(net, h, apps.AppConfig{Routes: routes})
		if err != nil {
			return err
		}
		defer srv.Stop()
		names[i] = h.Name
	}
	kv := apps.NewKVStore()
	proxy, err := apps.StartProxy(net, proxyHost, apps.ProxyConfig{Store: kv})
	if err != nil {
		return err
	}
	defer proxy.Stop()

	scaler := apps.NewAutoscaler(apps.AutoscalerConfig{
		Store:          kv,
		AllServers:     names,
		MinServers:     1,
		UpperThreshold: 40, // hot-content requests per ranking window
		LowerThreshold: 3,
		Backoff:        800 * time.Millisecond,
	})

	// The monitoring query: top URLs through the proxy, every 500 ms.
	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 PROCESS (top-k: k=10, w=500ms)", proxyHost.Name))
	if err != nil {
		return err
	}
	go func() {
		for tu := range sess.Results() {
			if entries, ok := stream.DecodeRankings(tu); ok {
				scaler.OnRankings(entries)
			}
		}
	}()

	phaseA, phaseB := 3*time.Second, 4*time.Second
	if ctx.quick {
		phaseA, phaseB = 1500*time.Millisecond, 2*time.Second
	}

	// Timeline sampler: per-server request deltas every 250 ms.
	type sample struct {
		t       float64
		perHost map[string]uint64
		active  int
	}
	var samples []sample
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	start := time.Now()
	go func() {
		defer samplerWG.Done()
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				samples = append(samples, sample{
					t:       time.Since(start).Seconds(),
					perHost: proxy.PerHost(),
					active:  scaler.Active(),
				})
			case <-stopSampling:
				return
			}
		}
	}()

	// Phase A: moderate, uniform load over 1000 URLs from client 1.
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		apps.RunHTTPLoad(net, client1, apps.LoadConfig{
			Requests: int(phaseA.Seconds() * 150), Concurrency: 2, Gap: 8 * time.Millisecond,
			Target: proxyHost,
			URL:    func(i int) string { return workload.URL(i % 1000) },
		})
	}()
	time.Sleep(phaseA)

	// Phase B: client 2 hammers 10 hot videos.
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		apps.RunHTTPLoad(net, client2, apps.LoadConfig{
			Requests: int(phaseB.Seconds() * 600), Concurrency: 6, Gap: time.Millisecond,
			Target: proxyHost,
			URL:    func(i int) string { return workload.URL(i % 10) },
		})
	}()
	loadWG.Wait()
	close(stopSampling)
	samplerWG.Wait()
	sess.Stop()

	// Emit per-interval request counts per server.
	rows := [][]string{{"t_s", "active_servers", "server1_req", "server2_req", "server3_req"}}
	prev := map[string]uint64{}
	for _, s := range samples {
		row := []string{fmt.Sprintf("%.2f", s.t), fmt.Sprint(s.active)}
		for _, name := range names {
			delta := s.perHost[name] - prev[name]
			row = append(row, fmt.Sprint(delta))
		}
		prev = s.perHost
		rows = append(rows, row)
	}
	actions := scaler.Actions()
	fmt.Printf("   scaling actions: %d\n", len(actions))
	for _, a := range actions {
		dir := "down"
		if a.Up {
			dir = "up"
		}
		fmt.Printf("   t=%.2fs scale %s -> %d servers (top freq %.0f)\n",
			a.Time.Sub(start).Seconds(), dir, a.Servers, a.TopFreq)
	}
	final := proxy.PerHost()
	keys := make([]string, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("   %s served %d requests\n", k, final[k])
	}
	if scaler.Active() < 2 {
		fmt.Printf("   warning: surge did not trigger scale-up\n")
	}
	return ctx.writeTSV("fig17_autoscaling_timeline", rows)
}
