package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netalytics/internal/metrics"
	"netalytics/internal/packet"
	"netalytics/internal/proto"
)

func TestWriteTSV(t *testing.T) {
	dir := t.TempDir()
	ctx := &runCtx{outDir: dir}
	rows := [][]string{{"a", "b"}, {"1", "2"}}
	if err := ctx.writeTSV("sample", rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sample.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "a\tb\n1\t2\n" {
		t.Errorf("tsv = %q", got)
	}
}

func TestExperimentListWellFormed(t *testing.T) {
	seen := map[string]bool{}
	runnable := 0
	for _, e := range experimentsList() {
		if e.name == "" || e.desc == "" {
			t.Errorf("experiment %+v missing name/desc", e)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.run != nil {
			runnable++
		}
	}
	if runnable < 9 {
		t.Errorf("only %d runnable experiments", runnable)
	}
	for _, want := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig12", "fig15", "qlog", "fig16", "fig17", "sni"} {
		if !seen[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
}

func TestHTTPPayloadOfSize(t *testing.T) {
	const headers = packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.TCPHeaderLen
	for _, size := range []int{64, 128, 256, 1024} {
		payload := httpPayloadOfSize(size, nil)(0)
		if got := len(payload) + headers; got != size {
			t.Errorf("size %d: frame = %d bytes", size, got)
		}
		if size >= 128 {
			if _, err := proto.ParseHTTPRequest(payload); err != nil {
				t.Errorf("size %d: payload not a parseable GET: %v", size, err)
			}
		}
	}
}

func TestWriteHistogramAndCDFs(t *testing.T) {
	dir := t.TempDir()
	ctx := &runCtx{outDir: dir}
	var s metrics.Series
	for _, v := range []float64{1, 2, 12, 13} {
		s.Add(v)
	}
	if err := writeHistogram(ctx, "hist", &s, 10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "hist.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 bins
		t.Errorf("histogram rows = %d: %q", len(lines), data)
	}

	if err := writeCDFs(ctx, "cdfs", map[string]*metrics.Series{"k": &s}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "cdfs.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "k\t") {
		t.Errorf("cdf output missing key rows: %q", data)
	}
}
