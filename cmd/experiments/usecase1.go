package main

import (
	"fmt"
	"sort"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/metrics"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
)

// runFig9to11 reproduces the §7.1 multi-tier debugging scenario (Figs. 9,
// 10, 11): a proxy load-balances over two app servers backed by MySQL and
// Memcached; App Server 1 is misconfigured so requests that should hit the
// cache go to the database. NetAlytics queries expose (a) the per-tier
// response-time asymmetry and (b) the backend throughput asymmetry, without
// touching the applications.
//
// Timing model (scaled ~10x down from the paper's testbed so the experiment
// runs in seconds): MySQL query 24 ms, Memcached get 1 ms, app compute 1 ms.
func runFig9to11(ctx *runCtx) error {
	tb := newUseCase1Testbed()
	defer tb.engine.Close()
	defer tb.stopAll()

	requests := 240
	if ctx.quick {
		requests = 80
	}

	// Query 1 (Fig. 9): per-tier average connection times.
	connQ := fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80, %s:80, %s:80, %s:3306, %s:11211 PROCESS (diff-group: group=ips)",
		tb.proxy.Name, tb.app1.Name, tb.app2.Name, tb.mysql.Name, tb.memcached.Name)
	connSess, err := tb.engine.Submit(connQ)
	if err != nil {
		return fmt.Errorf("submitting conn-time query: %w", err)
	}

	// Query 2 (Fig. 11): per-pair traffic volume.
	sizeQ := fmt.Sprintf(
		"PARSE tcp_pkt_size FROM * TO %s:3306, %s:11211 PROCESS (group-sum: group=ips)",
		tb.mysql.Name, tb.memcached.Name)
	sizeSess, err := tb.engine.Submit(sizeQ)
	if err != nil {
		return fmt.Errorf("submitting pkt-size query: %w", err)
	}

	// Drive the workload: 80% cacheable pages, 20% database pages.
	load := apps.RunHTTPLoad(tb.engine.Network(), tb.client, apps.LoadConfig{
		Requests: requests, Concurrency: 8, Target: tb.proxy,
		URL: func(i int) string {
			if i%5 == 0 {
				return "/db"
			}
			return "/cache"
		},
	})
	if load.Errors > 0 {
		return fmt.Errorf("%d load errors", load.Errors)
	}
	time.Sleep(300 * time.Millisecond)
	connSess.Stop()
	sizeSess.Stop()

	// Fig. 10: client-side response-time histogram (the anomaly as users
	// see it — bimodal because half the traffic lands on the broken tier).
	if err := writeHistogram(ctx, "fig10_client_response_hist", load.Latencies, 5); err != nil {
		return err
	}
	fmt.Printf("   client latency: %s\n", load.Latencies.Summary())

	// Fig. 9: per-edge averages from NetAlytics.
	avgs := lastByKey(connSess)
	edges := []struct {
		label    string
		from, to *topology.Host
	}{
		{"client->proxy", tb.client, tb.proxy},
		{"proxy->app1", tb.proxy, tb.app1},
		{"proxy->app2", tb.proxy, tb.app2},
		{"app1->mysql", tb.app1, tb.mysql},
		{"app1->memcached", tb.app1, tb.memcached},
		{"app2->mysql", tb.app2, tb.mysql},
		{"app2->memcached", tb.app2, tb.memcached},
	}
	rows := [][]string{{"edge", "avg_response_ms"}}
	fmt.Printf("   %-18s %12s\n", "edge", "avg ms")
	var app1ms, app2ms float64
	for _, e := range edges {
		key := e.from.Addr.String() + "->" + e.to.Addr.String()
		ms := avgs[key] / 1e6
		rows = append(rows, []string{e.label, fmt.Sprintf("%.2f", ms)})
		fmt.Printf("   %-18s %12.2f\n", e.label, ms)
		switch e.label {
		case "proxy->app1":
			app1ms = ms
		case "proxy->app2":
			app2ms = ms
		}
	}
	if err := ctx.writeTSV("fig9_tier_response_times", rows); err != nil {
		return err
	}
	if app2ms > 0 {
		fmt.Printf("   proxy->app1 / proxy->app2 = %.1fx (paper: ~4x)\n", app1ms/app2ms)
	}

	// Fig. 11: per-backend bytes from the pkt-size query (both directions
	// of each app/backend pair combined).
	sums := lastByKey(sizeSess)
	volRows := [][]string{{"app_server", "backend", "kbytes"}}
	fmt.Printf("   %-12s %-12s %10s\n", "app", "backend", "KBytes")
	for _, app := range []*topology.Host{tb.app1, tb.app2} {
		for _, backend := range []struct {
			name string
			h    *topology.Host
		}{{"mysql", tb.mysql}, {"memcached", tb.memcached}} {
			total := sums[app.Addr.String()+"->"+backend.h.Addr.String()] +
				sums[backend.h.Addr.String()+"->"+app.Addr.String()]
			appName := "AppServer1"
			if app == tb.app2 {
				appName = "AppServer2"
			}
			volRows = append(volRows, []string{appName, backend.name, fmt.Sprintf("%.1f", total/1024)})
			fmt.Printf("   %-12s %-12s %10.1f\n", appName, backend.name, total/1024)
		}
	}
	return ctx.writeTSV("fig11_backend_throughput", volRows)
}

// useCase1Testbed bundles the §7.1 two-tier deployment.
type useCase1Testbed struct {
	engine    *core.Engine
	proxy     *topology.Host
	app1      *topology.Host
	app2      *topology.Host
	mysql     *topology.Host
	memcached *topology.Host
	client    *topology.Host
	servers   []interface{ Stop() }
}

func (tb *useCase1Testbed) stopAll() {
	for _, s := range tb.servers {
		s.Stop()
	}
}

func newUseCase1Testbed() *useCase1Testbed {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 50 * time.Millisecond})
	hosts := topo.Hosts()
	tb := &useCase1Testbed{
		engine:    engine,
		proxy:     hosts[0],
		app1:      hosts[1],
		app2:      hosts[2],
		mysql:     hosts[4],
		memcached: hosts[5],
		client:    hosts[12],
	}
	net := engine.Network()

	mustStart := func(s interface{ Stop() }, err error) {
		if err != nil {
			panic(err)
		}
		tb.servers = append(tb.servers, s)
	}
	mustStart(apps.StartMySQL(net, tb.mysql, apps.MySQLConfig{DefaultCost: 24 * time.Millisecond}))
	mustStart(apps.StartMemcached(net, tb.memcached, apps.MemcachedConfig{Cost: time.Millisecond}))

	// App Server 1 is misconfigured: its cache route points at MySQL.
	mustStart(apps.StartApp(net, tb.app1, apps.AppConfig{Routes: map[string]apps.Route{
		"/db":    {Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: tb.mysql, Query: "SELECT * FROM orders"},
		"/cache": {Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: tb.mysql, Query: "SELECT * FROM sessions"},
	}}))
	mustStart(apps.StartApp(net, tb.app2, apps.AppConfig{Routes: map[string]apps.Route{
		"/db":    {Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: tb.mysql, Query: "SELECT * FROM orders"},
		"/cache": {Cost: time.Millisecond, Backend: apps.BackendMemcached, BackendHost: tb.memcached, Query: "session"},
	}}))

	kv := apps.NewKVStore()
	kv.SetPool([]string{tb.app1.Name, tb.app2.Name})
	proxy, err := apps.StartProxy(net, tb.proxy, apps.ProxyConfig{Store: kv})
	if err != nil {
		panic(err)
	}
	tb.servers = append(tb.servers, proxy)
	return tb
}

// lastByKey drains a stopped session's results, keeping the latest value per
// key (grouping bolts emit cumulative aggregates every tick).
func lastByKey(sess *core.Session) map[string]float64 {
	out := map[string]float64{}
	for tu := range sess.Results() {
		out[tu.Key] = tu.Val
	}
	return out
}

// collectVals drains a stopped session, returning every tuple value
// (optionally filtered by key).
func collectVals(sess *core.Session, keep func(tuple.Tuple) bool) map[string]*metrics.Series {
	out := map[string]*metrics.Series{}
	for tu := range sess.Results() {
		if keep != nil && !keep(tu) {
			continue
		}
		s, ok := out[tu.Key]
		if !ok {
			s = &metrics.Series{}
			out[tu.Key] = s
		}
		s.Add(tu.Val)
	}
	return out
}

// writeHistogram emits a metrics series as TSV histogram rows with the given
// bin width in milliseconds.
func writeHistogram(ctx *runCtx, name string, s *metrics.Series, binMs float64) error {
	rows := [][]string{{"bin_lo_ms", "bin_hi_ms", "count"}}
	for _, b := range s.Histogram(binMs) {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", b.Lo), fmt.Sprintf("%.1f", b.Hi), fmt.Sprint(b.Count),
		})
	}
	return ctx.writeTSV(name, rows)
}

// writeCDFs emits per-key CDFs as TSV (key, x_ms, p).
func writeCDFs(ctx *runCtx, name string, series map[string]*metrics.Series) error {
	rows := [][]string{{"key", "x_ms", "p"}}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, pt := range series[k].CDF() {
			rows = append(rows, []string{k, fmt.Sprintf("%.3f", pt.X), fmt.Sprintf("%.4f", pt.P)})
		}
	}
	return ctx.writeTSV(name, rows)
}
