package main

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/parsers"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
	"netalytics/internal/workload"
)

// runFig5 reproduces Fig. 5: achieved monitor throughput (Gbps) as a
// function of packet size, one parser core, for the minimal tcp_conn_time
// parser and the string-processing http_get parser. Each point is measured
// twice: once over the per-frame Deliver path and once over the burst
// datapath (DeliverBurst at the default rx_burst size), so the table also
// quantifies the batching win of §5.1's DPDK-style ingest.
//
// Substitution: the paper blasts frames from PktGen-DPDK through a 10 GbE
// NIC; here the blaster pre-builds frames and the monitor consumes them from
// its input queue, so the absolute Gbps reflects this host rather than the
// paper's testbed — the shape (simple parser faster; throughput growing with
// frame size; HTTP's string costs hurting most at small frames) is the
// reproduced result.
func runFig5(ctx *runCtx) error {
	sizes := []int{64, 128, 256, 512, 1024}
	frames := 200000
	if ctx.quick {
		frames = 30000
	}

	rows := [][]string{{"packet_size", "parser", "mode", "gbps", "mpps"}}
	fmt.Printf("   %-8s %-15s %-10s %8s %8s\n", "size", "parser", "mode", "Gbps", "Mpps")
	for _, parserName := range []string{"tcp_conn_time", "http_get"} {
		for _, size := range sizes {
			for _, mode := range []string{"deliver", "burst-32"} {
				gbps, mpps, err := monitorThroughput(parserName, size, frames, mode == "burst-32")
				if err != nil {
					return err
				}
				rows = append(rows, []string{
					fmt.Sprint(size), parserName, mode,
					fmt.Sprintf("%.3f", gbps), fmt.Sprintf("%.3f", mpps),
				})
				fmt.Printf("   %-8d %-15s %-10s %8.2f %8.2f\n", size, parserName, mode, gbps, mpps)
			}
		}
	}
	return ctx.writeTSV("fig5_monitor_throughput", rows)
}

// monitorThroughput measures one (parser, frame size, delivery mode) point.
func monitorThroughput(parserName string, size, frames int, burst bool) (gbps, mpps float64, err error) {
	factory, err := parsers.Lookup(parserName)
	if err != nil {
		return 0, 0, err
	}
	mon, err := monitor.New(monitor.Config{
		Parsers:    []monitor.Factory{factory},
		Sink:       monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
		QueueDepth: 1 << 16,
		BatchSize:  256,
	})
	if err != nil {
		return 0, 0, err
	}

	rng := rand.New(rand.NewSource(42))
	cfg := workload.BlasterConfig{FrameSize: size, Flows: 128}
	if parserName == "http_get" {
		cfg.PayloadFor = httpPayloadOfSize(size, rng)
	}
	bl := workload.NewBlaster(cfg, rng)

	mon.Start()
	start := time.Now()
	if burst {
		for sent := 0; sent < frames; {
			n := monitor.DefaultBurstSize
			if frames-sent < n {
				n = frames - sent
			}
			b := bl.NextBurst(n)
			for len(b) > 0 {
				// Input queue full: retry the undelivered tail.
				b = b[mon.DeliverBurst(b, time.Time{}):]
			}
			sent += n
		}
	} else {
		for i := 0; i < frames; i++ {
			raw := bl.Next()
			for !mon.Deliver(raw, time.Time{}) {
				// Input queue full: the blaster outruns the monitor; spin.
			}
		}
	}
	mon.Stop()
	elapsed := time.Since(start).Seconds()

	bits := float64(frames) * float64(bl.FrameSize()) * 8
	return bits / elapsed / 1e9, float64(frames) / elapsed / 1e6, nil
}

// httpPayloadOfSize builds HTTP GET payloads padded (via the URL) so the
// full frame hits the target size; frames too small for a GET carry a
// truncated request prefix, as a split HTTP header would on the wire.
func httpPayloadOfSize(frameSize int, rng *rand.Rand) func(int) []byte {
	const headers = 14 + 20 + 20 // eth + ip + tcp
	want := frameSize - headers
	return func(i int) []byte {
		base := proto.BuildHTTPGet("/u", "h")
		if want <= len(base) {
			return base[:want]
		}
		pad := strings.Repeat("x", want-len(base))
		return proto.BuildHTTPGet("/u"+pad, "h")
	}
}
