package main

import (
	"fmt"
	"io"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/metrics"
	"netalytics/internal/topology"
)

// Page mix for the §7.2 coordinated performance analysis: a PHP-like web app
// executing Sakila-style queries with very different costs. Scaled ~10x down
// from the paper's response times.
var usecase2Pages = []struct {
	url  string
	sql  string
	cost time.Duration
}{
	{"/simple.php", "SELECT 1", 2 * time.Millisecond},
	{"/country-max-payments.php", "SELECT country, MAX(amount) FROM payment GROUP BY country", 40 * time.Millisecond},
	{"/expensive-films.php", "SELECT title FROM film WHERE rental_rate > 4", 110 * time.Millisecond},
	{"/polyglot-actors.php", "SELECT actor FROM film_actor GROUP BY lang", 320 * time.Millisecond},
}

// runFig12to14 reproduces Figs. 12–14: the web+DB response-time histogram,
// per-URL response-time CDFs built by joining tcp_conn_time with http_get,
// and the buggy-page detection (overdue-bug.php skips its database query so
// its latency collapses).
func runFig12to14(ctx *runCtx) error {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 50 * time.Millisecond})
	defer engine.Close()
	hosts := topo.Hosts()
	web, db, client := hosts[0], hosts[2], hosts[12]
	net := engine.Network()

	costs := map[string]time.Duration{}
	routes := map[string]apps.Route{}
	for _, p := range usecase2Pages {
		costs[p.sql] = p.cost
		routes[p.url] = apps.Route{Backend: apps.BackendMySQL, BackendHost: db, Query: p.sql}
	}
	// Fig. 14's pair: the correct page and its buggy variant that forgets
	// to issue the query.
	costs["SELECT * FROM rental WHERE overdue"] = 150 * time.Millisecond
	routes["/overdue.php"] = apps.Route{Backend: apps.BackendMySQL, BackendHost: db, Query: "SELECT * FROM rental WHERE overdue"}
	routes["/overdue-bug.php"] = apps.Route{Backend: apps.BackendMySQL, BackendHost: db, Query: "SELECT * FROM rental WHERE overdue", Broken: true}

	mysqlSrv, err := apps.StartMySQL(net, db, apps.MySQLConfig{DefaultCost: 2 * time.Millisecond, Costs: costs})
	if err != nil {
		return err
	}
	defer mysqlSrv.Stop()
	webSrv, err := apps.StartApp(net, web, apps.AppConfig{Routes: routes})
	if err != nil {
		return err
	}
	defer webSrv.Stop()

	// The §7.2 query: both parsers, joined by flow ID in the diff bolt, so
	// every connection duration comes out keyed by its URL.
	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time, http_get FROM * TO %s:80 PROCESS (diff)", web.Name))
	if err != nil {
		return err
	}

	requests := 300
	if ctx.quick {
		requests = 100
	}
	urls := make([]string, 0, len(usecase2Pages)+2)
	for _, p := range usecase2Pages {
		urls = append(urls, p.url)
	}
	urls = append(urls, "/overdue.php", "/overdue-bug.php")
	load := apps.RunHTTPLoad(net, client, apps.LoadConfig{
		Requests: requests, Concurrency: 8, Target: web,
		URL: func(i int) string { return urls[i%len(urls)] },
	})
	if load.Errors > 0 {
		return fmt.Errorf("%d load errors", load.Errors)
	}
	time.Sleep(300 * time.Millisecond)
	sess.Stop()

	// Per-URL latency series from the NetAlytics join (ns -> ms).
	perURL := map[string]*metrics.Series{}
	var all metrics.Series
	for tu := range sess.Results() {
		ms := tu.Val / 1e6
		s, ok := perURL[tu.Key]
		if !ok {
			s = &metrics.Series{}
			perURL[tu.Key] = s
		}
		s.Add(ms)
		all.Add(ms)
	}
	if all.Len() == 0 {
		return fmt.Errorf("no joined response-time tuples")
	}

	// Fig. 12: overall histogram.
	if err := writeHistogram(ctx, "fig12_web_response_hist", &all, 25); err != nil {
		return err
	}
	fmt.Printf("   all pages: %s\n", all.Summary())

	// Fig. 13: CDFs for the four content pages.
	fig13 := map[string]*metrics.Series{}
	for _, p := range usecase2Pages {
		if s, ok := perURL[p.url]; ok {
			fig13[p.url] = s
			fmt.Printf("   %-28s p50=%7.1fms n=%d\n", p.url, s.Percentile(50), s.Len())
		}
	}
	if err := writeCDFs(ctx, "fig13_per_url_cdf", fig13); err != nil {
		return err
	}

	// Fig. 14: correct vs buggy page.
	fig14 := map[string]*metrics.Series{}
	for _, u := range []string{"/overdue.php", "/overdue-bug.php"} {
		if s, ok := perURL[u]; ok {
			fig14[u] = s
			fmt.Printf("   %-28s p50=%7.1fms n=%d\n", u, s.Percentile(50), s.Len())
		}
	}
	good, bug := fig14["/overdue.php"], fig14["/overdue-bug.php"]
	if good != nil && bug != nil && bug.Percentile(50) >= good.Percentile(50) {
		fmt.Printf("   warning: buggy page not faster than correct page\n")
	}
	return writeCDFs(ctx, "fig14_bug_detection_cdf", fig14)
}

// runFig15 reproduces Fig. 15: per-SQL-query response times, observable only
// by the mysql parser because several queries share each TCP connection.
func runFig15(ctx *runCtx) error {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 50 * time.Millisecond})
	defer engine.Close()
	hosts := topo.Hosts()
	db, client := hosts[0], hosts[12]

	costs := map[string]time.Duration{}
	for _, p := range usecase2Pages {
		costs[p.sql] = p.cost / 10 // query-level costs are smaller than page costs
	}
	mysqlSrv, err := apps.StartMySQL(engine.Network(), db, apps.MySQLConfig{DefaultCost: time.Millisecond, Costs: costs})
	if err != nil {
		return err
	}
	defer mysqlSrv.Stop()

	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE mysql_query FROM * TO %s:3306 PROCESS (passthrough)", db.Name))
	if err != nil {
		return err
	}

	conns := 10
	queriesPerConn := 12
	if ctx.quick {
		conns, queriesPerConn = 4, 6
	}
	for c := 0; c < conns; c++ {
		cli, err := apps.DialMySQL(engine.Network(), client, db, 0)
		if err != nil {
			return err
		}
		for q := 0; q < queriesPerConn; q++ {
			sql := usecase2Pages[q%len(usecase2Pages)].sql
			if err := cli.Query(sql, 5*time.Second); err != nil {
				cli.Close()
				return fmt.Errorf("query %d/%d: %w", c, q, err)
			}
		}
		cli.Close()
	}
	time.Sleep(300 * time.Millisecond)
	sess.Stop()

	var all metrics.Series
	perQuery := map[string]*metrics.Series{}
	for tu := range sess.Results() {
		if tu.Parser != "mysql_query" {
			continue
		}
		ms := tu.Val / 1e6
		all.Add(ms)
		s, ok := perQuery[tu.Key]
		if !ok {
			s = &metrics.Series{}
			perQuery[tu.Key] = s
		}
		s.Add(ms)
	}
	want := conns * queriesPerConn
	fmt.Printf("   captured %d/%d query latencies across %d statements\n", all.Len(), want, len(perQuery))
	if all.Len() == 0 {
		return fmt.Errorf("mysql parser captured nothing")
	}
	for sql, s := range perQuery {
		display := sql
		if len(display) > 40 {
			display = display[:40] + "..."
		}
		fmt.Printf("   %-45s p50=%6.1fms n=%d\n", display, s.Percentile(50), s.Len())
	}
	return writeHistogram(ctx, "fig15_mysql_query_hist", &all, 2)
}

// runQueryLog reproduces the §7.2 overhead comparison: MySQL throughput with
// and without the general query log (the paper measured 40.8 K → 33 K qps,
// a 20 % drop; NetAlytics itself adds no server-side overhead).
func runQueryLog(ctx *runCtx) error {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{})
	defer engine.Close()
	hosts := topo.Hosts()
	db, client := hosts[0], hosts[12]

	n := 400
	if ctx.quick {
		n = 100
	}
	measure := func(logger io.Writer) (float64, error) {
		srv, err := apps.StartMySQL(engine.Network(), db, apps.MySQLConfig{
			DefaultCost: 4 * time.Millisecond,
			QueryLog:    logger,
			LogOverhead: 800 * time.Microsecond,
		})
		if err != nil {
			return 0, err
		}
		defer srv.Stop()
		cli, err := apps.DialMySQL(engine.Network(), client, db, 0)
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := cli.Query("SELECT 1", 5*time.Second); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}

	off, err := measure(nil)
	if err != nil {
		return err
	}
	on, err := measure(io.Discard)
	if err != nil {
		return err
	}
	drop := (off - on) / off * 100
	fmt.Printf("   query log off: %8.0f qps\n", off)
	fmt.Printf("   query log on:  %8.0f qps  (drop %.1f%%, paper: ~20%%)\n", on, drop)
	fmt.Printf("   NetAlytics:    %8.0f qps  (passive mirror, no server overhead)\n", off)
	return ctx.writeTSV("qlog_overhead", [][]string{
		{"config", "qps"},
		{"no_query_log", fmt.Sprintf("%.0f", off)},
		{"query_log", fmt.Sprintf("%.0f", on)},
		{"netalytics_monitoring", fmt.Sprintf("%.0f", off)},
	})
}
