package main

import (
	"fmt"
	"sync"
	"time"

	"netalytics/internal/mq"
	"netalytics/internal/stream"
	"netalytics/internal/tuple"
)

// runFig6 reproduces Fig. 6: the maximum input rate the analytics subsystem
// sustains as NetAlytics processes are added, holding the paper's 1 broker :
// 2 Storm-worker ratio. The minimal deployment is 4 processes (1 monitor +
// 1 broker + 1 spout + 1 bolt worker).
//
// Substitution: each broker's network ingest is modeled at 1 Gbps (the
// paper's measured per-aggregator capacity); Storm workers drain the topics
// through the top-k topology. Added processes therefore raise the sustained
// rate roughly linearly, the paper's result.
func runFig6(ctx *runCtx) error {
	duration := 800 * time.Millisecond
	if ctx.quick {
		duration = 300 * time.Millisecond
	}

	rows := [][]string{{"processes", "brokers", "storm_workers", "input_mbps"}}
	fmt.Printf("   %-10s %-8s %-12s %10s\n", "processes", "brokers", "storm", "Mbps")
	for brokers := 1; brokers <= 5; brokers++ {
		mbps, err := analyticsRate(brokers, duration)
		if err != nil {
			return err
		}
		// Process accounting follows the paper: one monitor process, the
		// Kafka brokers, and Storm worker processes at the 1:2 ratio (each
		// worker process hosts several executors, as real Storm does).
		stormWorkers := 2 * brokers
		processes := 1 + brokers + stormWorkers
		rows = append(rows, []string{
			fmt.Sprint(processes), fmt.Sprint(brokers), fmt.Sprint(stormWorkers),
			fmt.Sprintf("%.0f", mbps),
		})
		fmt.Printf("   %-10d %-8d %-12d %10.0f\n", processes, brokers, stormWorkers, mbps)
	}
	return ctx.writeTSV("fig6_analytics_scaling", rows)
}

// analyticsRate drives the aggregation + processing layers as hard as one
// monitor can and reports the sustained input rate in Mbps.
func analyticsRate(brokers int, duration time.Duration) (mbps float64, err error) {
	cluster := mq.NewCluster(brokers, mq.Config{
		Partitions:        brokers,
		BufferBatches:     8192,
		IngestBytesPerSec: 125e6, // 1 Gbps per broker process
	})
	const topic = "fig6"

	// Storm side: top-k topology at the paper's 2 workers per broker.
	spoutFactory := func() stream.Spout {
		return stream.NewKafkaSpout(cluster.Consumer(topic), 32)
	}
	topo, err := stream.BuildTopology(
		stream.ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "10", "tasks": fmt.Sprint(brokers)}},
		spoutFactory, brokers, func(tuple.Tuple) {}, 50*time.Millisecond)
	if err != nil {
		return 0, err
	}
	ex, err := stream.NewExecutor(topo, stream.WithTickInterval(50*time.Millisecond), stream.WithQueueDepth(8192))
	if err != nil {
		return 0, err
	}
	ex.Start()
	defer ex.Stop()

	// Monitor side: producers ship pre-built batches as fast as the brokers
	// accept them.
	batch := &tuple.Batch{Parser: "http_get"}
	for i := 0; i < 64; i++ {
		batch.Tuples = append(batch.Tuples, tuple.Tuple{
			FlowID: uint64(i), Parser: "http_get", Key: fmt.Sprintf("/videos/%04d.mp4", i%40),
		})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < brokers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prod := cluster.Producer(topic)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = prod.Send(batch) // drops at full buffers are counted by mq
			}
		}()
	}
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := cluster.Stats(topic)
	return float64(st.Bytes) * 8 / elapsed / 1e6, nil
}
