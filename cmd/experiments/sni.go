package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/topology"
)

// runSNI measures per-service connection popularity over encrypted traffic.
// TLS hides the URLs that fig16/fig17 rely on, but the ClientHello's
// server_name extension travels in cleartext: the tls_sni parser emits one
// tuple per flow keyed by the requested name, and a group-count bolt tallies
// connections per service — popularity monitoring with zero decryption.
// Clients dial a Zipf-skewed mix of services; the measured tally is written
// next to the servers' own ground-truth counters.
func runSNI(ctx *runCtx) error {
	topo := topology.MustNew(4)
	engine := core.NewEngine(topo, core.Config{TickInterval: 50 * time.Millisecond})
	defer engine.Close()
	hosts := topo.Hosts()
	server := hosts[0]
	clients := hosts[12:16]
	net := engine.Network()

	srv, err := apps.StartTLS(net, server, apps.TLSConfig{})
	if err != nil {
		return err
	}
	defer srv.Stop()

	sess, err := engine.Submit(fmt.Sprintf(
		"PARSE tls_sni FROM * TO %s:443 PROCESS (group-count: group=key)", server.Name))
	if err != nil {
		return err
	}

	services := make([]string, 12)
	for i := range services {
		services[i] = fmt.Sprintf("svc-%02d.example.com", i)
	}
	dials := 400
	if ctx.quick {
		dials = 120
	}
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(services)-1))
	for i := 0; i < dials; i++ {
		sni := services[zipf.Uint64()]
		c, err := apps.DialTLS(net, clients[i%len(clients)], server, 0, sni)
		if err != nil {
			return fmt.Errorf("dial %d (%s): %w", i, sni, err)
		}
		if _, err := c.Request([]byte("hello"), time.Second); err != nil {
			c.Close()
			return fmt.Errorf("request %d (%s): %w", i, sni, err)
		}
		c.Close()
	}

	// Group-count emits cumulative per-key totals each tick ("last wins"),
	// and executor cleanup flushes every group when the session stops — so
	// let a tick drain, stop, and take the final value per service.
	time.Sleep(200 * time.Millisecond)
	measured := map[string]float64{}
	deadline := time.After(2 * time.Second)
collect:
	for {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				break collect
			}
			measured[tu.Key] = tu.Val
		case <-deadline:
			break collect
		}
	}
	sess.Stop()
	for tu := range sess.Results() {
		measured[tu.Key] = tu.Val
	}

	truth := srv.SNICounts()
	sort.Slice(services, func(a, b int) bool {
		if measured[services[a]] != measured[services[b]] {
			return measured[services[a]] > measured[services[b]]
		}
		return services[a] < services[b]
	})
	rows := [][]string{{"rank", "sni", "connections_measured", "connections_actual", "share_pct"}}
	mismatch := 0
	for rank, sni := range services {
		m, a := measured[sni], float64(truth[sni])
		if m != a {
			mismatch++
		}
		rows = append(rows, []string{
			fmt.Sprint(rank + 1), sni,
			fmt.Sprintf("%.0f", m), fmt.Sprintf("%.0f", a),
			fmt.Sprintf("%.1f", 100*m/float64(dials)),
		})
		if rank < 5 {
			fmt.Printf("   #%d %-22s %4.0f conns (%4.1f%%)\n", rank+1, sni, m, 100*m/float64(dials))
		}
	}
	if mismatch > 0 {
		return fmt.Errorf("sni: %d services where measured tally != server ground truth", mismatch)
	}
	return ctx.writeTSV("sni_popularity", rows)
}
