package main

import (
	"fmt"
	"strings"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/core"
	"netalytics/internal/insight"
	"netalytics/internal/topology"
)

// runFig14Auto is the always-on counterpart to Fig. 14: instead of a human
// reading per-URL CDFs to spot the buggy page, the insight tier's standing
// observation queries detect each injected §7 bug on their own. The output
// records the time from fault injection to the correlated incident, per
// scenario, with zero hand-written queries anywhere.
func runFig14Auto(ctx *runCtx) error {
	type loadSpec struct {
		url         string
		concurrency int
		gap         time.Duration
	}
	type scenario struct {
		name   string
		loads  []loadSpec // URL classes to drive (one closed loop each)
		inject func(*insightRig)
		match  func(*insightRig, insight.Incident) bool
	}
	scenarios := []scenario{
		{
			name: "db_latency_injection",
			loads: []loadSpec{
				{"/db", 2, 4 * time.Millisecond},
				{"/cache", 2, 4 * time.Millisecond},
				{"/videos", 2, 4 * time.Millisecond},
			},
			inject: func(r *insightRig) {
				r.db.SetDefaultCost(25 * time.Millisecond)
			},
			match: func(r *insightRig, inc insight.Incident) bool {
				for _, a := range inc.Anomalies {
					if a.Host() == r.mysqlH.Name {
						return true
					}
				}
				return false
			},
		},
		{
			// The Fig. 14 bug: the page silently skips its database query and
			// gets *faster* — invisible to threshold alerts, flagged by the
			// baseline comparison as depressed latency.
			name: "skip_query_bug",
			loads: []loadSpec{
				{"/db", 2, 4 * time.Millisecond},
				{"/videos", 2, 4 * time.Millisecond},
			},
			inject: func(r *insightRig) {
				broken := r.dbRoute
				broken.Broken = true
				r.app1.SetRoute("/db", broken)
				r.app2.SetRoute("/db", broken)
			},
			match: func(_ *insightRig, inc insight.Incident) bool {
				for _, a := range inc.Anomalies {
					if a.Labels["url"] == "/db" && a.Sigma < 0 {
						return true
					}
				}
				return false
			},
		},
		{
			name:  "backend_imbalance",
			loads: []loadSpec{{"/videos", 4, 2 * time.Millisecond}},
			inject: func(r *insightRig) {
				pool := make([]string, 0, 16)
				for i := 0; i < 15; i++ {
					pool = append(pool, r.app1H.Name)
				}
				r.kv.SetPool(append(pool, r.app2H.Name))
			},
			match: func(r *insightRig, inc insight.Incident) bool {
				up, down := false, false
				for _, a := range inc.Anomalies {
					if a.Name != "insight_conn_rate" {
						continue
					}
					switch a.Labels["host"] {
					case r.app1H.Name:
						up = up || a.Sigma > 0
					case r.app2H.Name:
						down = down || a.Sigma < 0
					}
				}
				return up && down
			},
		},
	}

	rows := [][]string{{"scenario", "time_to_detect_s", "root", "anomalies", "summary"}}
	for _, sc := range scenarios {
		r, err := startInsightRig()
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		for _, l := range sc.loads {
			r.load(l.url, l.concurrency, l.gap)
		}
		time.Sleep(8 * time.Second) // observation warm-up + detector learning
		r.drain()

		sc.inject(r)
		inc, ttd, err := r.await(20*time.Second, func(inc insight.Incident) bool { return sc.match(r, inc) })
		r.close()
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		fmt.Printf("   %-22s detected in %5.2fs  root=%-10s %s\n", sc.name, ttd.Seconds(), inc.Root, inc.Summary)
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%.2f", ttd.Seconds()),
			inc.Root,
			fmt.Sprintf("%d", len(inc.Anomalies)),
			inc.Summary,
		})
	}
	return ctx.writeTSV("fig14_auto_detection", rows)
}

// insightRig is the §7 demo application (proxy -> two app servers -> MySQL +
// memcached) on an engine with the insight tier's standing observation
// queries submitted. Mirrors the scenario-test harness in internal/core.
type insightRig struct {
	e                   *core.Engine
	proxy, app1H, app2H *topology.Host
	mysqlH, client      *topology.Host
	db                  *apps.MySQLServer
	app1, app2          *apps.AppServer
	kv                  *apps.KVStore
	dbRoute             apps.Route
	incidents           chan insight.Incident
	stop                chan struct{}
	loads               []chan struct{}
	stoppers            []func()
}

func startInsightRig() (*insightRig, error) {
	topo := topology.MustNew(4)
	r := &insightRig{incidents: make(chan insight.Incident, 256), stop: make(chan struct{})}
	r.e = core.NewEngine(topo, core.Config{
		// 400ms ticks keep the rolling per-window counts and means well
		// populated; the snapshot cadence sits slightly off the tick so
		// samples don't phase-lock to window emission. Kept in lockstep
		// with the scenario tests in internal/core.
		TickInterval: 400 * time.Millisecond,
		Insight: &insight.Config{
			SnapshotPeriod: 500 * time.Millisecond,
			Window:         2 * time.Second,
			Detector:       insight.DetectorConfig{LearnSamples: 12, Sigma: 5, CUSUMThreshold: 12, CUSUMDrift: 1, HalfLife: 16, MinConsecutive: 2},
			MinAnomalies:   2,
			Filter:         func(name string) bool { return strings.HasPrefix(name, "insight_") },
			OnIncident:     func(inc insight.Incident) { r.incidents <- inc },
		},
	})
	r.stoppers = append(r.stoppers, r.e.Close)

	hosts := topo.Hosts()
	r.proxy, r.app1H, r.app2H, r.mysqlH, r.client = hosts[0], hosts[1], hosts[2], hosts[4], hosts[12]
	memcachedH := hosts[5]
	net := r.e.Network()

	fail := func(err error) (*insightRig, error) {
		r.close()
		return nil, err
	}
	var err error
	if r.db, err = apps.StartMySQL(net, r.mysqlH, apps.MySQLConfig{DefaultCost: 2 * time.Millisecond}); err != nil {
		return fail(err)
	}
	r.stoppers = append(r.stoppers, r.db.Stop)
	cache, err := apps.StartMemcached(net, memcachedH, apps.MemcachedConfig{Cost: time.Millisecond})
	if err != nil {
		return fail(err)
	}
	r.stoppers = append(r.stoppers, cache.Stop)

	r.dbRoute = apps.Route{Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: r.mysqlH, Query: "SELECT * FROM film"}
	routes := map[string]apps.Route{
		"/db":     r.dbRoute,
		"/cache":  {Cost: time.Millisecond, Backend: apps.BackendMemcached, BackendHost: memcachedH, Query: "page"},
		"/videos": {Cost: 2 * time.Millisecond},
	}
	if r.app1, err = apps.StartApp(net, r.app1H, apps.AppConfig{Routes: routes}); err != nil {
		return fail(err)
	}
	r.stoppers = append(r.stoppers, r.app1.Stop)
	if r.app2, err = apps.StartApp(net, r.app2H, apps.AppConfig{Routes: routes}); err != nil {
		return fail(err)
	}
	r.stoppers = append(r.stoppers, r.app2.Stop)

	r.kv = apps.NewKVStore()
	r.kv.SetPool([]string{r.app1H.Name, r.app2H.Name})
	proxy, err := apps.StartProxy(net, r.proxy, apps.ProxyConfig{Store: r.kv})
	if err != nil {
		return fail(err)
	}
	r.stoppers = append(r.stoppers, proxy.Stop)

	if err := r.e.ObserveServices(); err != nil {
		return fail(fmt.Errorf("ObserveServices: %w", err))
	}
	return r, nil
}

// load starts concurrency smooth request loops — batched load runners would
// stall at batch boundaries and inject rate dips into the watched series.
func (r *insightRig) load(url string, concurrency int, gap time.Duration) {
	req := []byte("GET " + url + " HTTP/1.1\r\nHost: lb\r\n\r\n")
	for w := 0; w < concurrency; w++ {
		done := make(chan struct{})
		r.loads = append(r.loads, done)
		go func() {
			defer close(done)
			ep := r.e.Network().Endpoint(r.client)
			for {
				select {
				case <-r.stop:
					return
				default:
				}
				conn, err := ep.Dial(r.proxy.Addr, 80)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				conn.Request(req, time.Second)
				conn.Close()
				if gap > 0 {
					time.Sleep(gap)
				}
			}
		}()
	}
}

func (r *insightRig) drain() {
	for {
		select {
		case <-r.incidents:
		default:
			return
		}
	}
}

func (r *insightRig) await(deadline time.Duration, match func(insight.Incident) bool) (insight.Incident, time.Duration, error) {
	start := time.Now()
	timeout := time.After(deadline)
	for {
		select {
		case inc := <-r.incidents:
			if match(inc) {
				return inc, time.Since(start), nil
			}
		case <-timeout:
			return insight.Incident{}, 0, fmt.Errorf("no matching incident within %v", deadline)
		}
	}
}

func (r *insightRig) close() {
	close(r.stop)
	for _, done := range r.loads {
		<-done
	}
	for i := len(r.stoppers) - 1; i >= 0; i-- {
		r.stoppers[i]()
	}
}
