// Command experiments regenerates every figure and table of the NetAlytics
// paper's evaluation (§6) and use cases (§7) on the simulated substrate.
//
// Usage:
//
//	experiments [-run name[,name...]] [-out dir] [-quick]
//
// Each experiment prints the series it reproduces and writes a TSV file to
// the output directory. `-run all` (the default) runs everything;
// EXPERIMENTS.md records the comparison against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// runCtx carries shared experiment settings and memoized sweep results.
type runCtx struct {
	outDir string
	quick  bool

	// Figs. 7 and 8 share one expensive placement sweep.
	placementDone bool
	placementRows []placementRow
}

// writeTSV writes rows (first row = header) to outDir/name.tsv.
func (c *runCtx) writeTSV(name string, rows [][]string) error {
	path := filepath.Join(c.outDir, name+".tsv")
	var b strings.Builder
	for _, row := range rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("  -> %s\n", path)
	return nil
}

type experiment struct {
	name string
	desc string
	run  func(*runCtx) error
}

func experimentsList() []experiment {
	return []experiment{
		{"fig5", "monitor throughput vs packet size (tcp_conn_time, http_get)", runFig5},
		{"fig6", "analytics input rate vs NetAlytics process count", runFig6},
		{"fig7", "placement network cost vs monitored flows", runFig7},
		{"fig8", "placement resource cost vs monitored flows", runFig8},
		{"fig9", "use case 1: per-tier response times", runFig9to11},
		{"fig10", "use case 1: client response-time histogram (with fig9)", nil},
		{"fig11", "use case 1: per-backend throughput (with fig9)", nil},
		{"fig12", "use case 2: web response-time histogram", runFig12to14},
		{"fig13", "use case 2: per-URL response-time CDFs (with fig12)", nil},
		{"fig14", "use case 2: buggy vs correct page CDF (with fig12)", nil},
		{"fig14auto", "use case 2: insight tier auto-detection, time-to-detect per injected bug", runFig14Auto},
		{"fig15", "use case 2: per-SQL-query latency histogram", runFig15},
		{"qlog", "use case 2: MySQL query-log overhead", runQueryLog},
		{"fig16", "use case 3: video popularity over time", runFig16},
		{"fig17", "use case 3: autoscaling on popularity surges", runFig17},
		{"sni", "per-SNI connection popularity over encrypted traffic (tls_sni)", runSNI},
	}
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	outFlag := flag.String("out", "results", "output directory for TSV series")
	quickFlag := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := experimentsList()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	ctx := &runCtx{outDir: *outFlag, quick: *quickFlag}

	want := map[string]bool{}
	all := *runFlag == "all"
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}

	failed := false
	for _, e := range exps {
		if e.run == nil {
			continue // produced by a sibling experiment
		}
		if !all && !want[e.name] {
			continue
		}
		fmt.Printf("== %s: %s\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Printf("   done in %.1fs\n\n", time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
