// Command netalytics runs a NetAlytics query against an in-process demo
// testbed: a k=4 fat tree carrying traffic for a small multi-tier web
// application (proxy → two app servers → MySQL + Memcached), with the full
// monitoring pipeline (SDN mirror rules → NFV monitors → aggregation →
// stream processing) deployed on demand by the query.
//
// Usage:
//
//	netalytics [-duration 5s] [-requests 200] "<query>"
//
// Telemetry: -metrics addr serves live registry snapshots at
// http://addr/metrics, -telemetry-json path dumps them periodically to a
// file, and -trace-every N sets the stage-latency trace sampling period
// (0 = default 1-in-64, 1 = every tuple, negative disables tracing).
//
// Multi-query: -queries-file path deploys every query in the file (one per
// line, blank lines and #-comments skipped) against the same testbed.
// Rejected queries are reported individually with their line number and the
// rest of the batch still runs. -shared-taps turns on the shared-tap control
// plane: overlapping queries merge onto one mirror rule, one monitor and one
// parsed-tuple stream per demand, with demux fan-out to each subscriber (see
// DESIGN.md "Shared-tap control plane").
//
// Insight: -insight runs the always-on anomaly-detection tier — it submits
// its own observation queries, learns per-series baselines, and correlates
// anomalies into rooted incidents served at http://addr/incidents (beside
// /metrics) and printed at the end of the run. -insight-every N sets the
// registry snapshot period in milliseconds with the same sampling contract
// as -trace-every: 0 = default 1000, 1 = every millisecond, negative
// disables the tier.
//
// Example queries against the demo testbed (hosts are named h<pod>-<rack>-<n>):
//
//	netalytics "PARSE http_get FROM * TO h0-0-0:80 LIMIT 5s PROCESS (top-k: k=5, w=1s)"
//	netalytics "PARSE tcp_conn_time FROM * TO h0-0-1:80, h0-1-0:80 PROCESS (diff-group: group=ips)"
//	netalytics "PARSE mysql_query FROM * TO h1-0-0:3306 PROCESS (passthrough)"
//
// Run with -describe to print the demo topology and deployed services.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/fault"
	"netalytics/internal/pcap"
	"netalytics/internal/report"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
	"netalytics/internal/workload"
)

// captureToPcap opens extra taps on the session's monitor hosts and streams
// every mirrored frame into a pcap file until stop is called.
func captureToPcap(tb *netalytics.Testbed, sess *netalytics.Session, path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := pcap.NewWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	var mu sync.Mutex // serialize writes from multiple taps
	var wg sync.WaitGroup
	var taps []*vnet.Tap
	for _, h := range sess.MonitorHosts() {
		tap := tb.Network().OpenTap(h.ID, 8192)
		taps = append(taps, tap)
		wg.Add(1)
		go func(tap *vnet.Tap) {
			defer wg.Done()
			for tf := range tap.C {
				mu.Lock()
				_ = w.WritePacket(tf.TS, tf.Raw)
				mu.Unlock()
			}
		}(tap)
	}
	return func() {
		for _, tap := range taps {
			tb.Network().CloseTap(tap)
		}
		wg.Wait()
		fmt.Printf("wrote %d mirrored frames to %s\n", w.Packets(), path)
		f.Close()
	}, nil
}

// replayCapture injects a recorded capture into the testbed network until the
// capture is exhausted (non-looping) or stop closes. Paced replay honors the
// capture's own inter-frame gaps; max-rate replay injects in bursts with a
// short breather so a looping capture cannot starve the pipeline's own
// goroutines. Frames whose addresses the testbed cannot route (a capture from
// a different topology) are counted as skipped rather than aborting the run.
func replayCapture(n *vnet.Network, bl *workload.PcapBlaster, pace bool, stop <-chan struct{}) (injected, skipped uint64) {
	for {
		select {
		case <-stop:
			return injected, skipped
		default:
		}
		if pace {
			f, gap := bl.NextPaced()
			if f == nil {
				return injected, skipped
			}
			if gap > 0 {
				select {
				case <-stop:
					return injected, skipped
				case <-time.After(gap):
				}
			}
			if n.Inject(f) != nil {
				skipped++
			} else {
				injected++
			}
			continue
		}
		burst := bl.NextBurst(64)
		if len(burst) == 0 {
			return injected, skipped
		}
		for _, f := range burst {
			if n.Inject(f) != nil {
				skipped++
			} else {
				injected++
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// runOpts collects the command's knobs; flags fill one in main.
type runOpts struct {
	query             string
	duration          time.Duration
	requests          int
	describe          bool
	pcapPath          string
	metricsAddr       string // serve /metrics here when non-empty
	telemetryJSON     string // dump registry snapshots to this file
	telemetryInterval time.Duration
	traceEvery        int    // 0 = default, negative disables
	streamBatch       int    // stream executor sub-batch size, 0 = default
	vnetFlowCache     int    // forwarding-decision cache entries, <=0 disables
	ingestShards      int    // per-core sharded ingest, 0 = legacy path
	faultSpec         string // deterministic fault schedule, "" disables
	insight           bool   // run the always-on insight tier
	insightEvery      int    // snapshot period in ms; 0 = default, negative disables
	sketchAnalytics   bool   // compile top-k/count/distinct onto sketch bolts
	sketchTopKCap     int    // space-saving counters per top-k sketch, 0 = default
	adaptiveSample    bool   // backpressure-driven AIMD sampling controller
	sharedTaps        bool   // demand-merging shared-tap control plane
	queriesFile       string // deploy every query in this file concurrently
	pcapSource        string // replay this capture as workload
	pcapLoop          bool   // loop the capture until the run ends
	pcapPace          bool   // pace replay by capture timestamps
}

// insightPeriod resolves the -insight/-insight-every pair into a snapshot
// period, 0 when the tier is off. -insight-every shares telemetry's sampling
// contract (0 = default, negative disables), with the unit being
// milliseconds between registry snapshots.
func (o runOpts) insightPeriod() time.Duration {
	if !o.insight {
		return 0
	}
	ms := telemetry.SamplePeriod(o.insightEvery, 1000)
	return time.Duration(ms) * time.Millisecond
}

func main() {
	var o runOpts
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "how long to drive traffic and collect results")
	flag.IntVar(&o.requests, "requests", 300, "client requests to issue while the query runs")
	flag.BoolVar(&o.describe, "describe", false, "print the demo testbed layout and exit")
	flag.StringVar(&o.pcapPath, "pcap", "", "also dump the mirrored frames to this pcap file")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve live telemetry at http://<addr>/metrics (e.g. localhost:9090)")
	flag.StringVar(&o.telemetryJSON, "telemetry-json", "", "periodically dump telemetry snapshots to this JSON file")
	flag.DurationVar(&o.telemetryInterval, "telemetry-interval", telemetry.DefaultExportInterval, "period between telemetry JSON dumps")
	flag.IntVar(&o.traceEvery, "trace-every", 0, "stage-latency trace sampling period: trace 1-in-N tuples (0 = default 64, 1 = every tuple, negative disables)")
	flag.BoolVar(&o.insight, "insight", false, "run the always-on insight tier: streaming baselines, anomaly detection, /incidents endpoint")
	flag.IntVar(&o.insightEvery, "insight-every", 0, "insight registry snapshot period in ms (0 = default 1000, 1 = every ms, negative disables the tier)")
	flag.IntVar(&o.streamBatch, "stream-batch", 0, "stream executor sub-batch size: tuples per channel send between tasks (0 = default 32, 1 disables batching)")
	flag.IntVar(&o.vnetFlowCache, "vnet-flowcache", vnet.DefaultFlowCacheSize, "per-flow forwarding-decision cache entries (0 disables caching for A/B runs)")
	flag.IntVar(&o.ingestShards, "ingest-shards", 0, "per-core sharded ingest: lock-free mq ring shards and work-stealing monitor collectors per instance (0 = legacy single-owner queues for A/B)")
	flag.StringVar(&o.faultSpec, "fault-spec", "", `deterministic fault schedule, e.g. "seed=42,horizon=4s,events=8,kinds=loss+latency+mqdown+crash" (see DESIGN.md "Failure model & fault injection")`)
	flag.BoolVar(&o.sketchAnalytics, "sketch-analytics", false, "compile top-k, group counts and distinct counts onto bounded-memory mergeable sketches (space-saving, count-min, HLL) instead of exact hash maps")
	flag.IntVar(&o.sketchTopKCap, "sketch-topk-capacity", 0, "space-saving counters per top-k sketch instance (0 = 8*k; error bound is N/capacity)")
	flag.BoolVar(&o.adaptiveSample, "adaptive-sample", false, "AIMD sampling controller for SAMPLE * queries: halve the monitor sample rate under mq backpressure, recover to 1.0 when it clears (rate and estimated error exported via /metrics)")
	flag.BoolVar(&o.sharedTaps, "shared-taps", false, "demand-merging control plane: overlapping queries share one mirror rule, monitor and parsed-tuple stream per demand, demuxed per subscriber (0 queries = legacy A/B)")
	flag.StringVar(&o.queriesFile, "queries-file", "", "deploy every query in this file (one per line, # comments) against the same testbed; rejected queries are reported per line and the rest still run")
	flag.StringVar(&o.pcapSource, "pcap-source", "", "replay this capture into the testbed as extra workload while the query runs (frames must use testbed addresses, e.g. a -pcap recording)")
	flag.BoolVar(&o.pcapLoop, "pcap-loop", false, "loop the -pcap-source capture until the run ends instead of stopping at its last frame")
	flag.BoolVar(&o.pcapPace, "pcap-pace", false, "pace -pcap-source replay by the capture's own timestamps (default: max rate)")
	interactive := flag.Bool("interactive", false, "REPL: type queries against the demo testbed (blank line stops the running query)")
	flag.Parse()
	o.query = flag.Arg(0)

	var err error
	switch {
	case *interactive:
		if o.faultSpec != "" {
			fmt.Fprintln(os.Stderr, "netalytics: -fault-spec is ignored in interactive mode")
			o.faultSpec = ""
		}
		if o.queriesFile != "" {
			fmt.Fprintln(os.Stderr, "netalytics: -queries-file is ignored in interactive mode")
			o.queriesFile = ""
		}
		err = runInteractive(o)
	case o.queriesFile != "":
		err = runMulti(o)
	default:
		err = run(o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netalytics: %v\n", err)
		os.Exit(1)
	}
}

// runInteractive drives a REPL: continuous background traffic flows through
// the demo app, and each line submits a query whose results stream until the
// query's LIMIT fires or the user enters a blank line.
func runInteractive(o runOpts) error {
	d, err := buildDemo(o)
	if err != nil {
		return err
	}
	defer d.close()
	d.describe()
	fmt.Println()
	fmt.Println("continuous background traffic is flowing; type a query, e.g.")
	fmt.Println(`  PARSE http_get FROM * TO h0-0-0:80 LIMIT 5s PROCESS (top-k: k=5, w=1s)`)
	fmt.Println("blank line stops the running query; 'exit' quits.")

	// Background load, forever (until the REPL exits).
	stopLoad := make(chan struct{})
	defer close(stopLoad)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			apps.RunHTTPLoad(d.tb.Network(), d.client, apps.LoadConfig{
				Requests: 50, Concurrency: 2, Gap: 5 * time.Millisecond, Target: d.proxy,
				URL: func(j int) string {
					switch (i + j) % 4 {
					case 0:
						return "/db"
					case 1, 2:
						return "/cache"
					default:
						return workload.URL(j % 25)
					}
				},
			})
		}
	}()

	lines := make(chan string)
	go func() {
		defer close(lines)
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
	}()

	for {
		fmt.Print("netalytics> ")
		line, ok := <-lines
		if !ok {
			return nil
		}
		line = strings.TrimSpace(line)
		switch line {
		case "":
			continue
		case "exit", "quit":
			return nil
		case "stats":
			printStats(d.tb)
			printIncidents(d.tb)
			continue
		}
		sess, err := d.tb.Submit(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Printf("[%s] %d monitor(s) deployed; blank line to stop\n", sess.ID, sess.MonitorCount())
	stream:
		for {
			select {
			case tu, open := <-sess.Results():
				if !open {
					fmt.Printf("[%s] done: %d packets, %d tuples\n", sess.ID, sess.Packets(), sess.MonitorStats().Tuples)
					break stream
				}
				printResult(tu)
			case l, open := <-lines:
				if !open || strings.TrimSpace(l) == "" {
					sess.Stop()
					for range sess.Results() {
					}
					fmt.Printf("[%s] stopped: %d packets, %d tuples\n", sess.ID, sess.Packets(), sess.MonitorStats().Tuples)
					break stream
				}
				fmt.Println("(finish the running query with a blank line first)")
			}
		}
	}
}

// printIncidents summarizes what the insight tier detected; no-op when the
// tier is off.
func printIncidents(tb *netalytics.Testbed) {
	t := tb.Engine().Insight()
	if t == nil {
		return
	}
	incidents := t.Incidents()
	fmt.Printf("insight: %d incident(s) detected\n", t.Total())
	for _, inc := range incidents {
		fmt.Printf("  [%s] root=%-12s %s\n", inc.ID, inc.Root, inc.Summary)
	}
}

// printStats summarizes the deployment: network counters, installed rules,
// live monitor instances and aggregation topics.
func printStats(tb *netalytics.Testbed) {
	st := tb.Network().Stats()
	fmt.Printf("network: %d frames (%d KB), %d mirrored (%d KB), %d tap drops\n",
		st.Frames, st.Bytes/1024, st.Mirrored, st.MirroredBytes/1024, st.TapDrops)
	fmt.Printf("locality: %d KB in-rack, %d KB in-pod, %d KB cross-core\n",
		st.BytesSameRack/1024, st.BytesSamePod/1024, st.BytesCore/1024)
	fmt.Printf("control: %d mirror rules installed, %d sessions, %d monitor instances\n",
		tb.Controller().RuleCount(), len(tb.Engine().Sessions()), tb.Engine().Orchestrator().InstanceCount())
	for _, topic := range tb.Aggregation().Topics() {
		ts := tb.Aggregation().Stats(topic)
		fmt.Printf("topic %-24s appended=%d consumed=%d buffered=%d dropped=%d\n",
			topic, ts.Appended, ts.Consumed, ts.Buffered, ts.Dropped)
	}
}

func printResult(tu netalytics.Tuple) {
	if entries, ok := netalytics.DecodeRankings(tu); ok {
		fmt.Print(report.Rankings("top-k", entries))
		return
	}
	fmt.Printf("  parser=%-14s key=%-32q val=%.2f src=%s dst=%s\n",
		tu.Parser, tu.Key, tu.Val, tu.SrcIP, tu.DstIP)
}

type demo struct {
	tb        *netalytics.Testbed
	proxy     *topology.Host
	app1      *topology.Host
	app2      *topology.Host
	mysql     *topology.Host
	memcached *topology.Host
	client    *topology.Host
	stops     []func()

	faults   *fault.Injector // nil unless -fault-spec was given
	schedule []fault.Event
}

func (d *demo) close() {
	for _, stop := range d.stops {
		stop()
	}
	d.tb.Close()
}

func buildDemo(o runOpts) (*demo, error) {
	// The flag's 0-disables contract maps onto Config's 0-means-default one.
	vnetFlowCache := o.vnetFlowCache
	if vnetFlowCache <= 0 {
		vnetFlowCache = -1
	}
	engCfg := netalytics.EngineConfig{
		TraceSampleEvery:   o.traceEvery,
		StreamBatchSize:    o.streamBatch,
		VnetFlowCacheSize:  vnetFlowCache,
		IngestShards:       o.ingestShards,
		SketchAnalytics:    o.sketchAnalytics,
		SketchTopKCapacity: o.sketchTopKCap,
		AdaptiveSample:     o.adaptiveSample,
		SharedTaps:         o.sharedTaps,
	}
	if period := o.insightPeriod(); period > 0 {
		engCfg.Insight = &netalytics.InsightConfig{SnapshotPeriod: period}
	}
	var inj *fault.Injector
	var schedule []fault.Event
	if o.faultSpec != "" {
		spec, err := fault.ParseSpec(o.faultSpec)
		if err != nil {
			return nil, err
		}
		// Injector counters land in the same registry as the pipeline's, so
		// -metrics / -telemetry-json show fault_injected next to mq_retries
		// and nfv_restarts.
		reg := telemetry.NewRegistry()
		inj = fault.NewInjector(spec.Seed, reg)
		engCfg.Metrics = reg
		engCfg.Faults = inj
		schedule = spec.Schedule()
	}
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{
		FatTreeK:     4,
		ResourceSeed: 7,
		Engine:       engCfg,
	})
	if err != nil {
		return nil, err
	}
	hosts := tb.Topology().Hosts()
	d := &demo{
		tb:        tb,
		faults:    inj,
		schedule:  schedule,
		proxy:     hosts[0],
		app1:      hosts[1],
		app2:      hosts[2],
		mysql:     hosts[4],
		memcached: hosts[5],
		client:    hosts[12],
	}
	net := tb.Network()

	db, err := apps.StartMySQL(net, d.mysql, apps.MySQLConfig{DefaultCost: 12 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	d.stops = append(d.stops, db.Stop)
	cache, err := apps.StartMemcached(net, d.memcached, apps.MemcachedConfig{Cost: time.Millisecond})
	if err != nil {
		return nil, err
	}
	d.stops = append(d.stops, cache.Stop)

	routes := map[string]apps.Route{
		"/db":     {Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: d.mysql, Query: "SELECT * FROM film"},
		"/cache":  {Cost: time.Millisecond, Backend: apps.BackendMemcached, BackendHost: d.memcached, Query: "page"},
		"/videos": {Cost: 2 * time.Millisecond},
	}
	for _, h := range []*topology.Host{d.app1, d.app2} {
		app, err := apps.StartApp(net, h, apps.AppConfig{Routes: routes})
		if err != nil {
			return nil, err
		}
		d.stops = append(d.stops, app.Stop)
	}
	kv := apps.NewKVStore()
	kv.SetPool([]string{d.app1.Name, d.app2.Name})
	proxy, err := apps.StartProxy(net, d.proxy, apps.ProxyConfig{Store: kv})
	if err != nil {
		return nil, err
	}
	d.stops = append(d.stops, proxy.Stop)

	// With the insight tier on, the engine observes the services it just
	// discovered — no hand-written queries involved.
	if tb.Engine().Insight() != nil {
		if err := tb.Engine().ObserveServices(); err != nil {
			d.close()
			return nil, fmt.Errorf("insight observation: %w", err)
		}
	}
	return d, nil
}

func (d *demo) describe() {
	fmt.Println("demo testbed (fat tree k=4, 16 hosts):")
	fmt.Printf("  %-10s %-16s proxy :80 (load balancer)\n", d.proxy.Name, d.proxy.Addr)
	fmt.Printf("  %-10s %-16s app server :80\n", d.app1.Name, d.app1.Addr)
	fmt.Printf("  %-10s %-16s app server :80\n", d.app2.Name, d.app2.Addr)
	fmt.Printf("  %-10s %-16s mini-MySQL :3306\n", d.mysql.Name, d.mysql.Addr)
	fmt.Printf("  %-10s %-16s memcached :11211\n", d.memcached.Name, d.memcached.Addr)
	fmt.Printf("  %-10s %-16s load client\n", d.client.Name, d.client.Addr)
}

// serveMetrics starts an HTTP server exposing the registry at /metrics (and,
// with the insight tier on, the incident stream at /incidents), returning the
// bound address and a shutdown func.
func serveMetrics(addr string, tb *netalytics.Testbed) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(tb.Metrics()))
	fmt.Printf("telemetry: serving http://%s/metrics\n", ln.Addr())
	if t := tb.Engine().Insight(); t != nil {
		mux.Handle("/incidents", t.Handler())
		fmt.Printf("insight: serving http://%s/incidents\n", ln.Addr())
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// printTelemetry reports the session's end-of-run pipeline health: where
// data was lost at each layer, and the sampled per-stage latency digests.
func printTelemetry(sess *netalytics.Session) {
	tel := sess.Telemetry()
	st := tel.Monitor
	var mqDropped uint64
	for _, ts := range tel.Topics {
		mqDropped += ts.Dropped
	}
	fmt.Printf("losses: tap=%d collect=%d malformed=%d parser=%d sink=%d mq=%d result=%d\n",
		tel.TapDrops, st.CollectDrops, st.Malformed, st.ParserDrops, st.SinkErrors,
		mqDropped, tel.ResultDrops)
	for _, stage := range tel.Stages {
		if stage.Count == 0 {
			continue
		}
		fmt.Printf("latency %-16s n=%-6d p50=%-10s p95=%-10s p99=%s\n",
			stage.Stage, stage.Count,
			time.Duration(stage.P50NS), time.Duration(stage.P95NS), time.Duration(stage.P99NS))
	}
}

// multiQuery is one deployed entry of a -queries-file batch. results is owned
// by the drain goroutine until its WaitGroup slot is done.
type multiQuery struct {
	lineNo  int
	line    string
	sess    *netalytics.Session
	results int
}

// runMulti deploys every query in o.queriesFile against one testbed, drives
// the demo load while they all run, and reports each query's outcome
// individually. A rejected query (parse error, unknown host, unplaceable
// demand) is reported with its line number and does not abort the batch.
func runMulti(o runOpts) error {
	data, err := os.ReadFile(o.queriesFile)
	if err != nil {
		return err
	}
	d, err := buildDemo(o)
	if err != nil {
		return err
	}
	defer d.close()

	if o.metricsAddr != "" {
		_, stop, err := serveMetrics(o.metricsAddr, d.tb)
		if err != nil {
			return err
		}
		defer stop()
	}

	var (
		batch    []*multiQuery
		rejected int
		wg       sync.WaitGroup
	)
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sess, err := d.tb.Submit(line)
		if err != nil {
			rejected++
			fmt.Fprintf(os.Stderr, "query at line %d rejected: %v\n    %s\n", i+1, err, line)
			continue
		}
		q := &multiQuery{lineNo: i + 1, line: line, sess: sess}
		batch = append(batch, q)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range q.sess.Results() {
				q.results++
			}
		}()
	}
	if len(batch) == 0 {
		return fmt.Errorf("%s: no query deployed (%d rejected)", o.queriesFile, rejected)
	}
	eng := d.tb.Engine()
	fmt.Printf("deployed %d/%d queries (%d rejected): %d mirror rules, %d monitor instances\n",
		len(batch), len(batch)+rejected, rejected,
		d.tb.Controller().RuleCount(), eng.Orchestrator().InstanceCount())
	if merged := eng.SharedMonitorCount(); merged > 0 {
		fmt.Printf("shared taps: %d merged monitors serve the batch\n", merged)
	}

	go apps.RunHTTPLoad(d.tb.Network(), d.client, apps.LoadConfig{
		Requests: o.requests, Concurrency: 4, Target: d.proxy,
		URL: func(i int) string {
			switch i % 4 {
			case 0:
				return "/db"
			case 1, 2:
				return "/cache"
			default:
				return workload.URL(i % 25)
			}
		},
	})

	time.Sleep(o.duration)
	for _, q := range batch {
		q.sess.Stop()
	}
	wg.Wait()
	for _, q := range batch {
		line := q.line
		if len(line) > 72 {
			line = line[:69] + "..."
		}
		fmt.Printf("[%s] line %-3d results=%-6d packets=%-8d %s\n",
			q.sess.ID, q.lineNo, q.results, q.sess.Packets(), line)
	}
	return nil
}

func run(o runOpts) error {
	d, err := buildDemo(o)
	if err != nil {
		return err
	}
	defer d.close()

	if o.describe {
		d.describe()
		return nil
	}
	if o.query == "" {
		return fmt.Errorf("no query given; try -describe or see the command documentation")
	}

	if o.metricsAddr != "" {
		_, stop, err := serveMetrics(o.metricsAddr, d.tb)
		if err != nil {
			return err
		}
		defer stop()
	}
	finalExport := func() {}
	if o.telemetryJSON != "" {
		exp := telemetry.NewFileExporter(d.tb.Metrics(), o.telemetryJSON, o.telemetryInterval)
		exp.Start()
		defer exp.Stop()
		// Session stop retires the session's registry series, so the
		// exporter's final flush has to land before it for the file to keep
		// the run's data (Stop is idempotent; the deferred call is a no-op).
		finalExport = exp.Stop
	}

	sess, err := d.tb.Submit(o.query)
	if err != nil {
		return err
	}

	if o.pcapPath != "" {
		// A second tap on each monitor host receives the same mirrored
		// frames the monitors do; dump them for offline tooling.
		stop, err := captureToPcap(d.tb, sess, o.pcapPath)
		if err != nil {
			return err
		}
		defer stop()
	}
	fmt.Printf("query deployed: %d monitors on", sess.MonitorCount())
	for _, h := range sess.MonitorHosts() {
		fmt.Printf(" %s", h.Name)
	}
	fmt.Printf("; %d mirror rules installed\n", len(d.tb.Controller().QueryRules(sess.ID)))

	// Pcap workload: replay a recorded capture through the live mirror rules,
	// started after Submit so the first frame already hits the query's taps.
	if o.pcapSource != "" {
		f, err := os.Open(o.pcapSource)
		if err != nil {
			return err
		}
		bl, err := workload.NewPcapBlaster(f, o.pcapLoop)
		f.Close()
		if err != nil {
			return err
		}
		mode := "max-rate"
		if o.pcapPace {
			mode = "timestamp-paced"
		}
		fmt.Printf("replaying %d-frame capture %s (%s, loop=%v)\n", bl.Len(), o.pcapSource, mode, o.pcapLoop)
		replayStop := make(chan struct{})
		replayDone := make(chan struct{})
		go func() {
			defer close(replayDone)
			injected, skipped := replayCapture(d.tb.Network(), bl, o.pcapPace, replayStop)
			fmt.Printf("replay: %d frames injected, %d unroutable\n", injected, skipped)
		}()
		defer func() { close(replayStop); <-replayDone }()
	}

	// Chaos mode: play the deterministic fault schedule against the live
	// pipeline, narrating each window as it opens and closes.
	if d.faults != nil {
		d.faults.SetOnEvent(func(ev fault.Event, cleared bool) {
			verb := "inject"
			if cleared {
				verb = "clear"
			}
			fmt.Printf("fault: %-6s %s\n", verb, ev)
		})
		fmt.Printf("fault schedule: %d events over the run\n", len(d.schedule))
		stopFaults := make(chan struct{})
		defer close(stopFaults)
		go d.faults.Run(fault.RealClock{}, d.schedule, stopFaults)
	}

	// Drive background traffic through the demo app while the query runs.
	go apps.RunHTTPLoad(d.tb.Network(), d.client, apps.LoadConfig{
		Requests: o.requests, Concurrency: 4, Target: d.proxy,
		URL: func(i int) string {
			switch i % 4 {
			case 0:
				return "/db"
			case 1, 2:
				return "/cache"
			default:
				return workload.URL(i % 25)
			}
		},
	})

	printChaos := func() {
		if d.faults == nil {
			return
		}
		fc := d.faults.Counts()
		var retries uint64
		for _, ts := range sess.Telemetry().Topics {
			retries += ts.Retries
		}
		fmt.Printf("chaos: frame_drops=%d frame_delays=%d produce_faults=%d consume_faults=%d mq_retries=%d monitor_restarts=%d\n",
			fc.FrameDrops, fc.FrameDelays, fc.ProduceFaults, fc.ConsumeFaults, retries, sess.MonitorRestarts())
	}

	timer := time.NewTimer(o.duration)
	defer timer.Stop()
	results := 0
	fmt.Println("results:")
	for {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				fmt.Printf("session ended after %d results\n", results)
				printTelemetry(sess)
				printChaos()
				printIncidents(d.tb)
				return nil
			}
			results++
			if entries, isRanking := netalytics.DecodeRankings(tu); isRanking {
				fmt.Printf("  top-%d:", len(entries))
				for _, e := range entries {
					fmt.Printf(" %s=%.0f", e.Key, e.Count)
				}
				fmt.Println()
				continue
			}
			fmt.Printf("  parser=%-14s key=%-32q val=%.2f src=%s dst=%s\n",
				tu.Parser, tu.Key, tu.Val, tu.SrcIP, tu.DstIP)
		case <-timer.C:
			finalExport()
			sess.Stop()
			stats := sess.MonitorStats()
			fmt.Printf("stopped: %d packets mirrored, %d tuples, %d batches; %d results shown\n",
				sess.Packets(), stats.Tuples, stats.Batches, results)
			printTelemetry(sess)
			printChaos()
			printIncidents(d.tb)
			return nil
		}
	}
}
