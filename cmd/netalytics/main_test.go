package main

import (
	"testing"
	"time"
)

func TestBuildDemoAndDescribe(t *testing.T) {
	d, err := buildDemo()
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	d.describe() // must not panic
	if d.proxy == nil || d.client == nil {
		t.Fatal("demo hosts missing")
	}
}

func TestRunQueryAgainstDemo(t *testing.T) {
	err := run("PARSE http_get FROM * TO h0-0-0:80 PROCESS (top-k: k=3, w=500ms)",
		1500*time.Millisecond, 40, false, "")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithPcap(t *testing.T) {
	path := t.TempDir() + "/cap.pcap"
	err := run("PARSE tcp_conn_time FROM * TO h0-0-1:80 PROCESS (diff)",
		time.Second, 20, false, path)
	if err != nil {
		t.Fatalf("run with pcap: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", time.Second, 1, false, ""); err == nil {
		t.Error("empty query accepted")
	}
	if err := run("PARSE nope FROM h0-0-0:80 PROCESS (passthrough)", time.Second, 1, false, ""); err == nil {
		t.Error("bad query accepted")
	}
	if err := run("", time.Second, 1, true, ""); err != nil {
		t.Errorf("describe path: %v", err)
	}
}
