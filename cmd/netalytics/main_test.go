package main

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"
)

func TestBuildDemoAndDescribe(t *testing.T) {
	d, err := buildDemo(runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	d.describe() // must not panic
	if d.proxy == nil || d.client == nil {
		t.Fatal("demo hosts missing")
	}
}

func TestRunQueryAgainstDemo(t *testing.T) {
	err := run(runOpts{
		query:    "PARSE http_get FROM * TO h0-0-0:80 PROCESS (top-k: k=3, w=500ms)",
		duration: 1500 * time.Millisecond,
		requests: 40,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithPcap(t *testing.T) {
	err := run(runOpts{
		query:    "PARSE tcp_conn_time FROM * TO h0-0-1:80 PROCESS (diff)",
		duration: time.Second,
		requests: 20,
		pcapPath: t.TempDir() + "/cap.pcap",
	})
	if err != nil {
		t.Fatalf("run with pcap: %v", err)
	}
}

func TestRunWithTelemetryExports(t *testing.T) {
	path := t.TempDir() + "/telemetry.json"
	err := run(runOpts{
		query:             "PARSE http_get FROM * TO h0-0-0:80 PROCESS (passthrough)",
		duration:          time.Second,
		requests:          30,
		telemetryJSON:     path,
		telemetryInterval: 100 * time.Millisecond,
		traceEvery:        1,
	})
	if err != nil {
		t.Fatalf("run with telemetry: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("telemetry dump missing: %v", err)
	}
	var dump struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("telemetry dump not JSON: %v", err)
	}
	if len(dump.Metrics) == 0 {
		t.Error("telemetry dump has no metrics")
	}
}

func TestServeMetrics(t *testing.T) {
	d, err := buildDemo(runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	addr, stop, err := serveMetrics("127.0.0.1:0", d.tb)
	if err != nil {
		t.Fatalf("serveMetrics: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	var dump struct {
		TS      time.Time         `json:"ts"`
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if dump.TS.IsZero() {
		t.Error("/metrics dump has no timestamp")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runOpts{duration: time.Second, requests: 1}); err == nil {
		t.Error("empty query accepted")
	}
	if err := run(runOpts{query: "PARSE nope FROM h0-0-0:80 PROCESS (passthrough)", duration: time.Second, requests: 1}); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(runOpts{duration: time.Second, requests: 1, describe: true}); err != nil {
		t.Errorf("describe path: %v", err)
	}
}
