package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/pcap"
	"netalytics/internal/proto"
)

func TestBuildDemoAndDescribe(t *testing.T) {
	d, err := buildDemo(runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	d.describe() // must not panic
	if d.proxy == nil || d.client == nil {
		t.Fatal("demo hosts missing")
	}
}

func TestRunQueryAgainstDemo(t *testing.T) {
	err := run(runOpts{
		query:    "PARSE http_get FROM * TO h0-0-0:80 PROCESS (top-k: k=3, w=500ms)",
		duration: 1500 * time.Millisecond,
		requests: 40,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithPcap(t *testing.T) {
	err := run(runOpts{
		query:    "PARSE tcp_conn_time FROM * TO h0-0-1:80 PROCESS (diff)",
		duration: time.Second,
		requests: 20,
		pcapPath: t.TempDir() + "/cap.pcap",
	})
	if err != nil {
		t.Fatalf("run with pcap: %v", err)
	}
}

// TestRunWithPcapSource records a small capture addressed to the demo proxy
// and replays it as the run's workload, looping at max rate.
func TestRunWithPcapSource(t *testing.T) {
	d, err := buildDemo(runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	proxy, client := d.proxy, d.client
	d.close() // only needed the (deterministic) addresses

	path := t.TempDir() + "/src.pcap"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var b packet.Builder
	base := time.Now()
	for i := 0; i < 60; i++ {
		raw := b.TCP(packet.TCPSpec{
			Src: client.Addr, Dst: proxy.Addr,
			SrcPort: uint16(25000 + i), DstPort: 80,
			Flags:   packet.TCPFlagACK | packet.TCPFlagPSH,
			Payload: proto.BuildHTTPGet(fmt.Sprintf("/p%d", i%4), proxy.Name),
		})
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	err = run(runOpts{
		query:      fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", proxy.Name),
		duration:   1200 * time.Millisecond,
		requests:   1,
		pcapSource: path,
		pcapLoop:   true,
	})
	if err != nil {
		t.Fatalf("run with pcap source: %v", err)
	}

	if err := run(runOpts{
		query:      fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", proxy.Name),
		duration:   time.Second,
		requests:   1,
		pcapSource: t.TempDir() + "/missing.pcap",
	}); err == nil {
		t.Error("missing pcap source accepted")
	}
}

func TestRunWithTelemetryExports(t *testing.T) {
	path := t.TempDir() + "/telemetry.json"
	err := run(runOpts{
		query:             "PARSE http_get FROM * TO h0-0-0:80 PROCESS (passthrough)",
		duration:          time.Second,
		requests:          30,
		telemetryJSON:     path,
		telemetryInterval: 100 * time.Millisecond,
		traceEvery:        1,
	})
	if err != nil {
		t.Fatalf("run with telemetry: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("telemetry dump missing: %v", err)
	}
	var dump struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("telemetry dump not JSON: %v", err)
	}
	if len(dump.Metrics) == 0 {
		t.Error("telemetry dump has no metrics")
	}
}

func TestServeMetrics(t *testing.T) {
	d, err := buildDemo(runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	addr, stop, err := serveMetrics("127.0.0.1:0", d.tb)
	if err != nil {
		t.Fatalf("serveMetrics: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	var dump struct {
		TS      time.Time         `json:"ts"`
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if dump.TS.IsZero() {
		t.Error("/metrics dump has no timestamp")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runOpts{duration: time.Second, requests: 1}); err == nil {
		t.Error("empty query accepted")
	}
	if err := run(runOpts{query: "PARSE nope FROM h0-0-0:80 PROCESS (passthrough)", duration: time.Second, requests: 1}); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(runOpts{duration: time.Second, requests: 1, describe: true}); err != nil {
		t.Errorf("describe path: %v", err)
	}
}
