// Command replay runs NetAlytics parsers over a recorded pcap capture —
// offline analysis of traffic recorded earlier (e.g. with
// `netalytics -pcap`), in the record-and-replay style of the paper's
// related work (OFRewind) but reusing the exact monitor pipeline.
//
// Usage:
//
//	replay -pcap capture.pcap [-parsers http_get,tcp_conn_time] [-json]
//
// Without -json, a summary per parser is printed (tuple counts, top keys);
// with it, every extracted tuple is emitted as one JSON object per line.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"netalytics/internal/monitor"
	"netalytics/internal/parsers"
	"netalytics/internal/pcap"
	"netalytics/internal/report"
	"netalytics/internal/stream"
	"netalytics/internal/tuple"
)

func main() {
	pcapPath := flag.String("pcap", "", "capture file to replay (required)")
	parserList := flag.String("parsers", "tcp_conn_time,http_get", "comma-separated parsers to run")
	jsonOut := flag.Bool("json", false, "emit one JSON tuple per line instead of a summary")
	flag.Parse()

	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "replay: -pcap is required")
		os.Exit(2)
	}
	if err := run(*pcapPath, strings.Split(*parserList, ","), *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, parserNames []string, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}

	factories := make([]monitor.Factory, 0, len(parserNames))
	for _, name := range parserNames {
		factory, err := parsers.Lookup(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		factories = append(factories, factory)
	}

	var mu sync.Mutex
	perParser := map[string][]tuple.Tuple{}
	enc := json.NewEncoder(os.Stdout)
	sink := monitor.SinkFunc(func(b *tuple.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if jsonOut {
			for _, t := range b.Tuples {
				if err := enc.Encode(t); err != nil {
					return err
				}
			}
			return nil
		}
		perParser[b.Parser] = append(perParser[b.Parser], b.Tuples...)
		return nil
	})

	mon, err := monitor.New(monitor.Config{Parsers: factories, Sink: sink, QueueDepth: 1 << 14})
	if err != nil {
		return err
	}
	mon.Start()
	frames := 0
	var readErr error
	for {
		pkt, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// A corrupt mid-file record must surface, not silently end the
			// replay as if the capture were complete.
			readErr = fmt.Errorf("after %d frames: %w", frames, err)
			break
		}
		frames++
		for !mon.Deliver(pkt.Data, pkt.TS) {
		}
	}
	mon.Stop()
	if readErr != nil {
		return readErr
	}

	if jsonOut {
		return nil
	}
	st := mon.Stats()
	fmt.Printf("replayed %d frames: %d tuples extracted, %d malformed frames\n\n",
		frames, st.Tuples, st.Malformed)
	names := make([]string, 0, len(perParser))
	for name := range perParser {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tuples := perParser[name]
		counts := map[string]float64{}
		for _, t := range tuples {
			key := t.Key
			if key == "" {
				key = "(unkeyed)"
			}
			counts[key]++
		}
		entries := make([]stream.RankEntry, 0, len(counts))
		for k, n := range counts {
			entries = append(entries, stream.RankEntry{Key: k, Count: n})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Count != entries[j].Count {
				return entries[i].Count > entries[j].Count
			}
			return entries[i].Key < entries[j].Key
		})
		if len(entries) > 10 {
			entries = entries[:10]
		}
		fmt.Print(report.Rankings(fmt.Sprintf("%s: %d tuples, top keys", name, len(tuples)), entries))
		fmt.Println()
	}
	return nil
}
