package main

import (
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/pcap"
	"netalytics/internal/proto"
)

func writeTestCapture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var b packet.Builder
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	frames := [][]byte{
		b.TCP(packet.TCPSpec{Src: src, Dst: dst, SrcPort: 5000, DstPort: 80, Flags: packet.TCPFlagSYN}),
		b.TCP(packet.TCPSpec{Src: src, Dst: dst, SrcPort: 5000, DstPort: 80, Flags: packet.TCPFlagPSH,
			Payload: proto.BuildHTTPGet("/replayed", "h")}),
		b.TCP(packet.TCPSpec{Src: src, Dst: dst, SrcPort: 5000, DstPort: 80, Flags: packet.TCPFlagFIN}),
	}
	for i, raw := range frames {
		if err := w.WritePacket(time.Unix(int64(i), 0), raw); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTestCapture(t)
	if err := run(path, []string{"http_get", "tcp_conn_time"}, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	path := writeTestCapture(t)
	if err := run(path, []string{"http_get"}, true); err != nil {
		t.Fatalf("run json: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.pcap"), []string{"http_get"}, false); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestCapture(t)
	if err := run(path, []string{"no_such_parser"}, false); err == nil {
		t.Error("unknown parser accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.pcap")
	if err := os.WriteFile(bad, []byte("not a pcap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, []string{"http_get"}, false); err == nil {
		t.Error("garbage capture accepted")
	}
}

// A record truncated mid-file must surface as an error — the replay used to
// stop silently, reporting a partial capture as a complete one.
func TestRunTruncatedMidFile(t *testing.T) {
	path := writeTestCapture(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.pcap")
	if err := os.WriteFile(trunc, blob[:len(blob)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(trunc, []string{"http_get"}, false)
	if !errors.Is(err, pcap.ErrTruncated) {
		t.Errorf("truncated capture: err = %v, want ErrTruncated", err)
	}
}
