// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so CI can archive monitor throughput as a machine-read
// artifact (BENCH_monitor.json) and diff it across commits.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkAblationBurstSize . | benchjson > BENCH_monitor.json
//
// Each benchmark line becomes one entry with its ns/op and, since every
// monitor benchmark counts one delivered frame per op, a derived pkts/sec.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"netalytics/internal/benchparse"
)

func main() {
	report, err := benchparse.Parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
