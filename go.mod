module netalytics

go 1.22
