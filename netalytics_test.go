package netalytics

import (
	"fmt"
	"testing"
	"time"

	"netalytics/internal/apps"
)

func TestNewTestbedValidation(t *testing.T) {
	if _, err := NewTestbed(TestbedConfig{FatTreeK: 3}); err == nil {
		t.Error("odd k accepted")
	}
	tb, err := NewTestbed(TestbedConfig{})
	if err != nil {
		t.Fatalf("default testbed: %v", err)
	}
	defer tb.Close()
	if got := len(tb.Topology().Hosts()); got != 16 {
		t.Errorf("default hosts = %d, want 16 (k=4)", got)
	}
	if tb.Network() == nil || tb.Controller() == nil || tb.Aggregation() == nil || tb.Engine() == nil {
		t.Error("testbed accessors returned nil")
	}
}

func TestTestbedResourceSeed(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{ResourceSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	h := tb.Topology().Hosts()[0]
	if h.Res.CPUCores == 0 {
		t.Error("ResourceSeed did not randomize host resources")
	}
}

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: testbed, emulated server, query, traffic, rankings.
func TestFacadeEndToEnd(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{FatTreeK: 4, Engine: EngineConfig{TickInterval: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	hosts := tb.Topology().Hosts()
	server, client := hosts[0], hosts[12]
	web, err := apps.StartApp(tb.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer web.Stop()

	sess, err := tb.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 LIMIT 10s PROCESS (top-k: k=2, w=200ms)", server.Name))
	if err != nil {
		t.Fatal(err)
	}

	res := apps.RunHTTPLoad(tb.Network(), client, apps.LoadConfig{
		Requests: 30, Target: server,
		URL: func(i int) string {
			if i%3 != 0 {
				return "/hot"
			}
			return "/cold"
		},
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}
	time.Sleep(150 * time.Millisecond)
	sess.Stop()

	var best []RankEntry
	for tu := range sess.Results() {
		if entries, ok := DecodeRankings(tu); ok && len(entries) > 0 {
			if len(best) == 0 || entries[0].Count > best[0].Count {
				best = entries
			}
		}
	}
	if len(best) == 0 || best[0].Key != "/hot" {
		t.Errorf("best ranking = %+v, want /hot on top", best)
	}
}

func TestPoliciesExported(t *testing.T) {
	names := map[string]PlacementPolicy{
		"Local-Random":       PolicyLocalRandom,
		"Netalytics-Node":    PolicyNetalyticsNode,
		"Netalytics-Network": PolicyNetalyticsNetwork,
	}
	for want, pol := range names {
		if pol.Name != want {
			t.Errorf("policy name = %q, want %q", pol.Name, want)
		}
	}
}
