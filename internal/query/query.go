// Package query implements the NetAlytics query language of §3.3 (Table 3):
//
//	query        ::= parser-clause addr-clause attr-clause process-clause
//	parser-clause::= PARSE parser-list
//	addr-clause  ::= FROM address-list TO address-list
//	address      ::= ip:port | hostname:port | *
//	attr-clause  ::= LIMIT limit-rate SAMPLE sample-rate
//	limit-rate   ::= amount_of_time | number_of_packets     (90s | 5000p)
//	sample-rate  ::= interval | auto | *                    (0.1 | auto | *)
//	process-clause ::= PROCESS processor-list
//	processor    ::= (processor_name: argument-list)
//
// A parsed Query carries everything the engine needs: which parsers to
// deploy, which flows to mirror (translated into OpenFlow-style matches by
// the engine), how long to run, the sampling policy, and the processing
// topology to instantiate.
package query

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// SampleMode selects the sampling policy of the SAMPLE clause.
type SampleMode int

// Sampling modes.
const (
	// SampleAll disables sampling (SAMPLE *), the default.
	SampleAll SampleMode = iota
	// SampleAuto enables feedback-driven sampling (SAMPLE auto).
	SampleAuto
	// SampleRate samples a fixed fraction of flows (SAMPLE 0.1).
	SampleRate
)

// Address is one endpoint filter from a FROM or TO list.
type Address struct {
	// Any is true for a bare "*": any host, any port.
	Any bool
	// Host is an IP literal or hostname; empty with Any false means "*".
	Host string
	// Port 0 matches any port.
	Port uint16
}

func (a Address) String() string {
	if a.Any {
		return "*"
	}
	port := "*"
	if a.Port != 0 {
		port = strconv.Itoa(int(a.Port))
	}
	host := a.Host
	if host == "" {
		host = "*"
	}
	return host + ":" + port
}

// Limit bounds how long monitors and processors run.
type Limit struct {
	// Duration, when non-zero, stops the query after the elapsed time.
	Duration time.Duration
	// Packets, when non-zero, stops the query after that many packets
	// have been dispatched to parsers.
	Packets int
}

// IsZero reports whether no limit was specified.
func (l Limit) IsZero() bool { return l.Duration == 0 && l.Packets == 0 }

// Sample is the SAMPLE clause.
type Sample struct {
	Mode SampleMode
	Rate float64 // valid for SampleRate
}

// ProcessorSpec names a processing topology and its arguments.
type ProcessorSpec struct {
	Name string
	Args map[string]string
}

// Query is a parsed NetAlytics query.
type Query struct {
	Parsers    []string
	From       []Address
	To         []Address
	Limit      Limit
	Sample     Sample
	Processors []ProcessorSpec
}

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at offset %d: %s", e.Offset, e.Msg)
}

// ErrEmpty is returned for inputs with no tokens.
var ErrEmpty = errors.New("query: empty query")

type tokenKind int

const (
	tokWord tokenKind = iota + 1
	tokComma
	tokColon
	tokLParen
	tokRParen
	tokEquals
	tokStar
)

type token struct {
	kind tokenKind
	text string
	off  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEquals, "=", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '#':
			// Comment: skip to end of line.
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case isWordByte(c):
			start := i
			for i < len(input) && isWordByte(input[i]) {
				i++
			}
			toks = append(toks, token{tokWord, input[start:i], start})
		default:
			return nil, &ParseError{Offset: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	return toks, nil
}

// isWordByte admits identifier characters including those found in IPs,
// hostnames, durations and URLs (10.0.2.8, h1-2, 90s, /index.php).
func isWordByte(c byte) bool {
	return c == '.' || c == '_' || c == '-' || c == '/' ||
		('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

type parser struct {
	toks []token
	pos  int
	n    int // total input length, for EOF offsets
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) errorf(format string, args ...any) error {
	off := p.n
	if t, ok := p.peek(); ok {
		off = t.off
	}
	return &ParseError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) keyword(want string) bool {
	t, ok := p.peek()
	if ok && t.kind == tokWord && strings.EqualFold(t.text, want) {
		p.pos++
		return true
	}
	return false
}

// Parse parses a query string.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, ErrEmpty
	}
	p := &parser{toks: toks, n: len(input)}
	q := &Query{}

	if !p.keyword("PARSE") {
		return nil, p.errorf("expected PARSE")
	}
	if q.Parsers, err = p.parseNameList(); err != nil {
		return nil, err
	}

	if p.keyword("FROM") {
		if q.From, err = p.parseAddressList(); err != nil {
			return nil, err
		}
	}
	if p.keyword("TO") {
		if q.To, err = p.parseAddressList(); err != nil {
			return nil, err
		}
	}
	if len(q.From) == 0 && len(q.To) == 0 {
		return nil, p.errorf("query needs a FROM and/or TO clause")
	}

	if p.keyword("LIMIT") {
		if q.Limit, err = p.parseLimit(); err != nil {
			return nil, err
		}
	}
	if p.keyword("SAMPLE") {
		if q.Sample, err = p.parseSample(); err != nil {
			return nil, err
		}
	}

	if !p.keyword("PROCESS") {
		return nil, p.errorf("expected PROCESS")
	}
	if q.Processors, err = p.parseProcessorList(); err != nil {
		return nil, err
	}

	if t, ok := p.peek(); ok {
		return nil, &ParseError{Offset: t.off, Msg: fmt.Sprintf("unexpected trailing token %q", t.text)}
	}
	return q, nil
}

func (p *parser) parseNameList() ([]string, error) {
	var names []string
	for {
		t, ok := p.next()
		if !ok || t.kind != tokWord {
			return nil, p.errorf("expected name")
		}
		names = append(names, t.text)
		if t, ok := p.peek(); !ok || t.kind != tokComma {
			return names, nil
		}
		p.pos++
	}
}

func (p *parser) parseAddressList() ([]Address, error) {
	var addrs []Address
	for {
		a, err := p.parseAddress()
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, a)
		if t, ok := p.peek(); !ok || t.kind != tokComma {
			return addrs, nil
		}
		p.pos++
	}
}

func (p *parser) parseAddress() (Address, error) {
	t, ok := p.next()
	if !ok {
		return Address{}, p.errorf("expected address")
	}
	switch t.kind {
	case tokStar:
		// "*" or "*:port"
		if nxt, ok := p.peek(); ok && nxt.kind == tokColon {
			p.pos++
			return p.finishAddress("")
		}
		return Address{Any: true}, nil
	case tokWord:
		host := t.text
		nxt, ok := p.peek()
		if !ok || nxt.kind != tokColon {
			return Address{Host: host}, nil
		}
		p.pos++
		return p.finishAddress(host)
	default:
		return Address{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad address token %q", t.text)}
	}
}

func (p *parser) finishAddress(host string) (Address, error) {
	t, ok := p.next()
	if !ok {
		return Address{}, p.errorf("expected port after ':'")
	}
	switch t.kind {
	case tokStar:
		return Address{Host: host}, nil
	case tokWord:
		port, err := strconv.ParseUint(t.text, 10, 16)
		if err != nil {
			return Address{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad port %q", t.text)}
		}
		return Address{Host: host, Port: uint16(port)}, nil
	default:
		return Address{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad port token %q", t.text)}
	}
}

func (p *parser) parseLimit() (Limit, error) {
	t, ok := p.next()
	if !ok || t.kind != tokWord {
		return Limit{}, p.errorf("expected limit (e.g. 90s or 5000p)")
	}
	text := t.text
	if strings.HasSuffix(text, "p") {
		n, err := strconv.Atoi(strings.TrimSuffix(text, "p"))
		if err != nil || n <= 0 {
			return Limit{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad packet limit %q", text)}
		}
		return Limit{Packets: n}, nil
	}
	d, err := time.ParseDuration(text)
	if err != nil || d <= 0 {
		return Limit{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad time limit %q", text)}
	}
	return Limit{Duration: d}, nil
}

func (p *parser) parseSample() (Sample, error) {
	t, ok := p.next()
	if !ok {
		return Sample{}, p.errorf("expected sample rate (0.1, auto or *)")
	}
	switch {
	case t.kind == tokStar:
		return Sample{Mode: SampleAll}, nil
	case t.kind == tokWord && strings.EqualFold(t.text, "auto"):
		return Sample{Mode: SampleAuto}, nil
	case t.kind == tokWord:
		rate, err := strconv.ParseFloat(t.text, 64)
		if err != nil || rate <= 0 || rate > 1 {
			return Sample{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad sample rate %q (want (0,1], auto or *)", t.text)}
		}
		return Sample{Mode: SampleRate, Rate: rate}, nil
	default:
		return Sample{}, &ParseError{Offset: t.off, Msg: fmt.Sprintf("bad sample token %q", t.text)}
	}
}

func (p *parser) parseProcessorList() ([]ProcessorSpec, error) {
	var specs []ProcessorSpec
	for {
		spec, err := p.parseProcessor()
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		if t, ok := p.peek(); !ok || t.kind != tokComma {
			return specs, nil
		}
		p.pos++
	}
}

func (p *parser) parseProcessor() (ProcessorSpec, error) {
	t, ok := p.next()
	if !ok || t.kind != tokLParen {
		return ProcessorSpec{}, p.errorf("expected '(' to open processor")
	}
	t, ok = p.next()
	if !ok || t.kind != tokWord {
		return ProcessorSpec{}, p.errorf("expected processor name")
	}
	spec := ProcessorSpec{Name: t.text, Args: map[string]string{}}

	t, ok = p.next()
	if !ok {
		return ProcessorSpec{}, p.errorf("unterminated processor")
	}
	if t.kind == tokRParen {
		return spec, nil
	}
	if t.kind != tokColon {
		return ProcessorSpec{}, &ParseError{Offset: t.off, Msg: "expected ':' or ')' after processor name"}
	}
	for {
		name, ok := p.next()
		if !ok || name.kind != tokWord {
			return ProcessorSpec{}, p.errorf("expected argument name")
		}
		eq, ok := p.next()
		if !ok || eq.kind != tokEquals {
			return ProcessorSpec{}, p.errorf("expected '=' after argument %q", name.text)
		}
		val, ok := p.next()
		if !ok || (val.kind != tokWord && val.kind != tokStar) {
			return ProcessorSpec{}, p.errorf("expected value for argument %q", name.text)
		}
		spec.Args[name.text] = val.text

		t, ok = p.next()
		if !ok {
			return ProcessorSpec{}, p.errorf("unterminated processor")
		}
		if t.kind == tokRParen {
			return spec, nil
		}
		if t.kind != tokComma {
			return ProcessorSpec{}, &ParseError{Offset: t.off, Msg: "expected ',' or ')' in argument list"}
		}
	}
}

// Validate checks the query against the sets of known parser and processor
// names (nil sets skip that check).
func Validate(q *Query, knownParsers, knownProcessors map[string]bool) error {
	if len(q.Parsers) == 0 {
		return errors.New("query: no parsers")
	}
	if knownParsers != nil {
		for _, name := range q.Parsers {
			if !knownParsers[name] {
				return fmt.Errorf("query: unknown parser %q", name)
			}
		}
	}
	if len(q.Processors) == 0 {
		return errors.New("query: no processors")
	}
	if knownProcessors != nil {
		for _, spec := range q.Processors {
			if !knownProcessors[spec.Name] {
				return fmt.Errorf("query: unknown processor %q", spec.Name)
			}
		}
	}
	seen := make(map[string]bool, len(q.Parsers))
	for _, name := range q.Parsers {
		if seen[name] {
			return fmt.Errorf("query: parser %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

// String renders the query back in canonical syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("PARSE ")
	b.WriteString(strings.Join(q.Parsers, ", "))
	if len(q.From) > 0 {
		b.WriteString(" FROM ")
		writeAddrs(&b, q.From)
	}
	if len(q.To) > 0 {
		b.WriteString(" TO ")
		writeAddrs(&b, q.To)
	}
	if q.Limit.Duration > 0 {
		fmt.Fprintf(&b, " LIMIT %s", q.Limit.Duration)
	} else if q.Limit.Packets > 0 {
		fmt.Fprintf(&b, " LIMIT %dp", q.Limit.Packets)
	}
	switch q.Sample.Mode {
	case SampleAuto:
		b.WriteString(" SAMPLE auto")
	case SampleRate:
		fmt.Fprintf(&b, " SAMPLE %g", q.Sample.Rate)
	}
	b.WriteString(" PROCESS ")
	for i, spec := range q.Processors {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		b.WriteString(spec.Name)
		if len(spec.Args) > 0 {
			b.WriteString(":")
			keys := make([]string, 0, len(spec.Args))
			for k := range spec.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for j, k := range keys {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " %s=%s", k, spec.Args[k])
			}
		}
		b.WriteString(")")
	}
	return b.String()
}

func writeAddrs(b *strings.Builder, addrs []Address) {
	for i, a := range addrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
}
