package query

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParsePaperQuery1(t *testing.T) {
	// First example query from §3.3.
	q, err := Parse(`PARSE tcp_conn_time, http_get
		FROM 10.0.2.8:5555 TO 10.0.2.9:80
		LIMIT 90s SAMPLE auto
		PROCESS (top-k: k=10, w=10s)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Parsers) != 2 || q.Parsers[0] != "tcp_conn_time" || q.Parsers[1] != "http_get" {
		t.Errorf("parsers = %v", q.Parsers)
	}
	if len(q.From) != 1 || q.From[0].Host != "10.0.2.8" || q.From[0].Port != 5555 {
		t.Errorf("from = %+v", q.From)
	}
	if len(q.To) != 1 || q.To[0].Host != "10.0.2.9" || q.To[0].Port != 80 {
		t.Errorf("to = %+v", q.To)
	}
	if q.Limit.Duration != 90*time.Second || q.Limit.Packets != 0 {
		t.Errorf("limit = %+v", q.Limit)
	}
	if q.Sample.Mode != SampleAuto {
		t.Errorf("sample = %+v", q.Sample)
	}
	if len(q.Processors) != 1 {
		t.Fatalf("processors = %+v", q.Processors)
	}
	p := q.Processors[0]
	if p.Name != "top-k" || p.Args["k"] != "10" || p.Args["w"] != "10s" {
		t.Errorf("processor = %+v", p)
	}
}

func TestParsePaperQuery2(t *testing.T) {
	// Second example query from §3.3.
	q, err := Parse(`PARSE http_get FROM * TO h1:80, h2:3306
		LIMIT 5000p SAMPLE 0.1
		PROCESS (diff-group: group=get)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 1 || !q.From[0].Any {
		t.Errorf("from = %+v, want wildcard", q.From)
	}
	if len(q.To) != 2 {
		t.Fatalf("to = %+v", q.To)
	}
	if q.To[0].Host != "h1" || q.To[0].Port != 80 || q.To[1].Host != "h2" || q.To[1].Port != 3306 {
		t.Errorf("to = %+v", q.To)
	}
	if q.Limit.Packets != 5000 || q.Limit.Duration != 0 {
		t.Errorf("limit = %+v", q.Limit)
	}
	if q.Sample.Mode != SampleRate || q.Sample.Rate != 0.1 {
		t.Errorf("sample = %+v", q.Sample)
	}
	if q.Processors[0].Args["group"] != "get" {
		t.Errorf("processor = %+v", q.Processors[0])
	}
}

func TestParseUseCaseQuery(t *testing.T) {
	// §7.2's query, with SAMPLE *.
	q, err := Parse(`PARSE tcp_conn_time FROM * TO h1:80, h2:3306 LIMIT 500s SAMPLE * PROCESS (diff-group: group=destIP)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Sample.Mode != SampleAll {
		t.Errorf("sample = %+v", q.Sample)
	}
	if q.Limit.Duration != 500*time.Second {
		t.Errorf("limit = %+v", q.Limit)
	}
}

func TestParseAddressVariants(t *testing.T) {
	tests := []struct {
		in   string
		want Address
	}{
		{"h1:80", Address{Host: "h1", Port: 80}},
		{"h1", Address{Host: "h1"}},
		{"h1:*", Address{Host: "h1"}},
		{"*:80", Address{Port: 80}},
		{"*", Address{Any: true}},
		{"10.1.2.3:443", Address{Host: "10.1.2.3", Port: 443}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			q, err := Parse("PARSE http_get FROM " + tt.in + " PROCESS (passthrough)")
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if q.From[0] != tt.want {
				t.Errorf("addr = %+v, want %+v", q.From[0], tt.want)
			}
		})
	}
}

func TestParseMultipleProcessors(t *testing.T) {
	q, err := Parse(`PARSE http_get FROM * TO h1:80 PROCESS (top-k: k=5), (group-sum: group=dstIP)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Processors) != 2 || q.Processors[0].Name != "top-k" || q.Processors[1].Name != "group-sum" {
		t.Errorf("processors = %+v", q.Processors)
	}
}

func TestParseProcessorNoArgs(t *testing.T) {
	q, err := Parse(`PARSE http_get TO h1:80 PROCESS (passthrough)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Processors[0].Name != "passthrough" || len(q.Processors[0].Args) != 0 {
		t.Errorf("processor = %+v", q.Processors[0])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", "   "},
		{"missing parse", "FROM h1:80 PROCESS (x)"},
		{"missing process", "PARSE http_get FROM h1:80"},
		{"no from or to", "PARSE http_get LIMIT 5s PROCESS (x)"},
		{"bad port", "PARSE p FROM h1:99999 PROCESS (x)"},
		{"bad port word", "PARSE p FROM h1:abc PROCESS (x)"},
		{"bad limit", "PARSE p FROM h1:80 LIMIT bogus PROCESS (x)"},
		{"negative limit", "PARSE p FROM h1:80 LIMIT -5s PROCESS (x)"},
		{"zero packets", "PARSE p FROM h1:80 LIMIT 0p PROCESS (x)"},
		{"bad sample", "PARSE p FROM h1:80 SAMPLE 1.5 PROCESS (x)"},
		{"sample zero", "PARSE p FROM h1:80 SAMPLE 0 PROCESS (x)"},
		{"unterminated processor", "PARSE p FROM h1:80 PROCESS (x"},
		{"processor missing value", "PARSE p FROM h1:80 PROCESS (x: k=)"},
		{"processor missing equals", "PARSE p FROM h1:80 PROCESS (x: k 10)"},
		{"trailing junk", "PARSE p FROM h1:80 PROCESS (x) extra"},
		{"bad char", "PARSE p FROM h1:80 PROCESS (x) ;"},
		{"dangling colon", "PARSE p FROM h1: PROCESS (x)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestParseErrorHasOffset(t *testing.T) {
	_, err := Parse("PARSE p FROM h1:80 PROCESS (x) ;")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *ParseError", err, err)
	}
	if pe.Offset != strings.Index("PARSE p FROM h1:80 PROCESS (x) ;", ";") {
		t.Errorf("offset = %d", pe.Offset)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestComments(t *testing.T) {
	q, err := Parse(`# watch the web tier
		PARSE http_get           # request urls
		FROM * TO h1:80          # the front end
		PROCESS (top-k: k=5)     # trending pages`)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if len(q.Parsers) != 1 || q.To[0].Host != "h1" || q.Processors[0].Name != "top-k" {
		t.Errorf("q = %+v", q)
	}
	if _, err := Parse("# only a comment"); !errors.Is(err, ErrEmpty) {
		t.Errorf("comment-only input: err = %v", err)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`parse http_get from h1:80 to h2:81 limit 9s sample auto process (top-k)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Parsers) != 1 || q.Sample.Mode != SampleAuto {
		t.Errorf("q = %+v", q)
	}
}

func TestValidate(t *testing.T) {
	known := map[string]bool{"http_get": true, "tcp_conn_time": true}
	procs := map[string]bool{"top-k": true}

	ok := &Query{Parsers: []string{"http_get"}, Processors: []ProcessorSpec{{Name: "top-k"}}}
	if err := Validate(ok, known, procs); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	tests := []struct {
		name string
		q    *Query
	}{
		{"no parsers", &Query{Processors: []ProcessorSpec{{Name: "top-k"}}}},
		{"unknown parser", &Query{Parsers: []string{"nope"}, Processors: []ProcessorSpec{{Name: "top-k"}}}},
		{"no processors", &Query{Parsers: []string{"http_get"}}},
		{"unknown processor", &Query{Parsers: []string{"http_get"}, Processors: []ProcessorSpec{{Name: "nope"}}}},
		{"duplicate parser", &Query{Parsers: []string{"http_get", "http_get"}, Processors: []ProcessorSpec{{Name: "top-k"}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(tt.q, known, procs); err == nil {
				t.Error("invalid query accepted")
			}
		})
	}

	// nil sets skip the registry checks.
	loose := &Query{Parsers: []string{"anything"}, Processors: []ProcessorSpec{{Name: "whatever"}}}
	if err := Validate(loose, nil, nil); err != nil {
		t.Errorf("nil-set validation failed: %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		`PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO 10.0.2.9:80 LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)`,
		`PARSE http_get FROM * TO h1:80, h2:3306 LIMIT 5000p SAMPLE 0.1 PROCESS (diff-group: group=get)`,
		`PARSE tcp_pkt_size TO h1:3306 PROCESS (group-sum: group=dstIP)`,
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n %q\n %q", q1.String(), q2.String())
		}
	}
}

func TestAddressString(t *testing.T) {
	tests := []struct {
		a    Address
		want string
	}{
		{Address{Any: true}, "*"},
		{Address{Host: "h1", Port: 80}, "h1:80"},
		{Address{Host: "h1"}, "h1:*"},
		{Address{Port: 80}, "*:80"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestLimitIsZero(t *testing.T) {
	if !(Limit{}).IsZero() {
		t.Error("zero limit not IsZero")
	}
	if (Limit{Duration: time.Second}).IsZero() || (Limit{Packets: 1}).IsZero() {
		t.Error("non-zero limit reported IsZero")
	}
}

// Property: Parse never panics and either errors or returns a query whose
// String() reparses, for arbitrary byte soup and for mutations of a valid
// query.
func TestParseRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	valid := `PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO h1:80, 10.0.0.0/24:3306 LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)`
	alphabet := []byte("PARSEFROMTOLIMITSAMPLEPROCESS():=,.*0123456789abchs /-_")
	prop := func() bool {
		var input string
		if rng.Intn(2) == 0 {
			// Random soup.
			b := make([]byte, rng.Intn(120))
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(b)
		} else {
			// Mutated valid query: delete or duplicate a span.
			start := rng.Intn(len(valid))
			end := start + rng.Intn(len(valid)-start)
			if rng.Intn(2) == 0 {
				input = valid[:start] + valid[end:]
			} else {
				input = valid[:start] + valid[start:end] + valid[start:end] + valid[end:]
			}
		}
		q, err := Parse(input)
		if err != nil {
			return true
		}
		_, err = Parse(q.String())
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	in := `PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO 10.0.2.9:80 LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}
