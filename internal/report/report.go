// Package report renders query results for humans: it is the Result
// Interface of Fig. 1, turning rankings, group aggregates and latency
// distributions into aligned text tables and ASCII histograms for the CLI
// and examples.
package report

import (
	"fmt"
	"sort"
	"strings"

	"netalytics/internal/metrics"
	"netalytics/internal/stream"
)

// Rankings renders a top-k result as an aligned two-column table with
// proportional bars.
func Rankings(title string, entries []stream.RankEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(entries) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	keyWidth := 0
	maxCount := entries[0].Count
	for _, e := range entries {
		if len(e.Key) > keyWidth {
			keyWidth = len(e.Key)
		}
		if e.Count > maxCount {
			maxCount = e.Count
		}
	}
	for i, e := range entries {
		fmt.Fprintf(&b, "  %2d. %-*s %8.0f %s\n", i+1, keyWidth, e.Key, e.Count, bar(e.Count, maxCount, 24))
	}
	return b.String()
}

// Row is one entry of a group table.
type Row struct {
	Key string
	Val float64
}

// GroupTable renders (group, value) aggregates sorted by descending value.
// The unit string is appended to each value.
func GroupTable(title string, rows map[string]float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	sorted := make([]Row, 0, len(rows))
	keyWidth := 0
	for k, v := range rows {
		sorted = append(sorted, Row{Key: k, Val: v})
		if len(k) > keyWidth {
			keyWidth = len(k)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Val != sorted[j].Val {
			return sorted[i].Val > sorted[j].Val
		}
		return sorted[i].Key < sorted[j].Key
	})
	maxVal := sorted[0].Val
	for _, r := range sorted {
		fmt.Fprintf(&b, "  %-*s %12.2f%s %s\n", keyWidth, r.Key, r.Val, unit, bar(r.Val, maxVal, 24))
	}
	return b.String()
}

// Histogram renders a series as an ASCII histogram with the given bin width.
func Histogram(title string, s *metrics.Series, binWidth float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%s)\n", title, s.Summary())
	bins := s.Histogram(binWidth)
	if len(bins) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	maxCount := 0
	for _, bin := range bins {
		if bin.Count > maxCount {
			maxCount = bin.Count
		}
	}
	for _, bin := range bins {
		if bin.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%8.1f, %8.1f) %6d %s\n",
			bin.Lo, bin.Hi, bin.Count, bar(float64(bin.Count), float64(maxCount), 32))
	}
	return b.String()
}

// bar renders a proportional bar of at most width characters (always at
// least one for non-zero values).
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 1 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
