package report

import (
	"strings"
	"testing"

	"netalytics/internal/metrics"
	"netalytics/internal/stream"
)

func TestRankings(t *testing.T) {
	out := Rankings("top urls", []stream.RankEntry{
		{Key: "/hot", Count: 100},
		{Key: "/warm", Count: 50},
		{Key: "/c", Count: 1},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "top urls" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1. /hot") || !strings.Contains(lines[1], "100") {
		t.Errorf("first row = %q", lines[1])
	}
	// Bars are proportional: the top entry's bar is the longest.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// Tiny non-zero values still render a bar.
	if strings.Count(lines[3], "#") != 1 {
		t.Errorf("minimum bar missing: %q", lines[3])
	}
}

func TestRankingsEmpty(t *testing.T) {
	if out := Rankings("t", nil); !strings.Contains(out, "no data") {
		t.Errorf("empty rankings = %q", out)
	}
}

func TestGroupTableSorted(t *testing.T) {
	out := GroupTable("per-edge", map[string]float64{
		"a->b": 5, "c->d": 25, "e->f": 10,
	}, "ms")
	idx := func(sub string) int { return strings.Index(out, sub) }
	if !(idx("c->d") < idx("e->f") && idx("e->f") < idx("a->b")) {
		t.Errorf("rows not sorted by value:\n%s", out)
	}
	if !strings.Contains(out, "25.00ms") {
		t.Errorf("unit missing:\n%s", out)
	}
	if out := GroupTable("t", nil, ""); !strings.Contains(out, "no data") {
		t.Errorf("empty table = %q", out)
	}
}

func TestHistogram(t *testing.T) {
	var s metrics.Series
	for i := 0; i < 30; i++ {
		s.Add(5)
	}
	s.Add(95)
	out := Histogram("latency", &s, 10)
	if !strings.Contains(out, "[     0.0,     10.0)") {
		t.Errorf("first bin missing:\n%s", out)
	}
	if !strings.Contains(out, "30") {
		t.Errorf("count missing:\n%s", out)
	}
	// Empty middle bins are elided.
	if strings.Contains(out, "[    20.0,") {
		t.Errorf("empty bin rendered:\n%s", out)
	}
	var empty metrics.Series
	if out := Histogram("x", &empty, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty histogram = %q", out)
	}
}
