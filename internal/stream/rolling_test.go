package stream

import (
	"testing"

	"netalytics/internal/tuple"
)

func TestBoolArg(t *testing.T) {
	spec := ProcessorSpec{Args: map[string]string{"rolling": "true", "bad": "maybe", "zero": "0"}}
	if v, err := spec.BoolArg("rolling", false); err != nil || !v {
		t.Errorf("BoolArg(rolling) = %v, %v", v, err)
	}
	if v, err := spec.BoolArg("zero", true); err != nil || v {
		t.Errorf("BoolArg(zero) = %v, %v", v, err)
	}
	if v, err := spec.BoolArg("missing", true); err != nil || !v {
		t.Errorf("BoolArg(missing) = %v, %v (default must apply)", v, err)
	}
	if _, err := spec.BoolArg("bad", false); err == nil {
		t.Error("BoolArg accepted a non-boolean value")
	}
}

func TestGroupBoltRolling(t *testing.T) {
	b := NewGroupBolt("", AggAvg, true)
	var out []tuple.Tuple
	emit := func(tp tuple.Tuple) { out = append(out, tp) }

	b.Execute(tuple.Tuple{Val: 10}, emit)
	b.Execute(tuple.Tuple{Val: 20}, emit)
	b.Tick(emit)
	if len(out) != 1 || out[0].Val != 15 {
		t.Fatalf("first window = %v, want one avg of 15", out)
	}
	out = nil
	// Rolling: the second window's average covers only its own samples. A
	// cumulative bolt would report (10+20+100)/3 ≈ 43 and dilute the shift.
	b.Execute(tuple.Tuple{Val: 100}, emit)
	b.Tick(emit)
	if len(out) != 1 || out[0].Val != 100 {
		t.Fatalf("second window = %v, want one avg of 100", out)
	}
	out = nil
	b.Tick(emit) // empty window emits nothing
	if len(out) != 0 {
		t.Fatalf("empty window emitted %v", out)
	}
}

func TestGroupBoltCumulativeUnchanged(t *testing.T) {
	b := NewGroupBolt("", AggAvg, false)
	var out []tuple.Tuple
	emit := func(tp tuple.Tuple) { out = append(out, tp) }
	b.Execute(tuple.Tuple{Val: 10}, emit)
	b.Tick(emit)
	b.Execute(tuple.Tuple{Val: 20}, emit)
	b.Tick(emit)
	if len(out) != 2 || out[1].Val != 15 {
		t.Fatalf("cumulative windows = %v, want second avg 15", out)
	}
}

func TestPercentileBoltRolling(t *testing.T) {
	b := NewPercentileBolt("", []float64{50})
	b.SetRolling(true)
	var out []tuple.Tuple
	emit := func(tp tuple.Tuple) { out = append(out, tp) }
	for i := 1; i <= 100; i++ {
		b.Execute(tuple.Tuple{Val: float64(i)}, emit)
	}
	b.Tick(emit)
	if len(out) != 1 || out[0].Val < 49 || out[0].Val > 52 {
		t.Fatalf("first window p50 = %v", out)
	}
	if len(b.samples) != 0 {
		t.Fatalf("rolling percentile bolt retained %d sample groups after flush", len(b.samples))
	}
	out = nil
	b.Execute(tuple.Tuple{Val: 1000}, emit)
	b.Tick(emit)
	if len(out) != 1 || out[0].Val != 1000 {
		t.Fatalf("second window p50 = %v, want 1000 (window-scoped)", out)
	}
}

// TestRollingArgThreadsThroughBuild verifies the query-facing wiring: the
// rolling argument parses through BuildTopology for the group-family
// processors and a bad value is rejected at build time.
func TestRollingArgThreadsThroughBuild(t *testing.T) {
	for _, spec := range []ProcessorSpec{
		{Name: "diff-group", Args: map[string]string{"group": "dst", "agg": "avg", "rolling": "true"}},
		{Name: "diff-percentile", Args: map[string]string{"rolling": "true"}},
		{Name: "group-avg", Args: map[string]string{"rolling": "1"}},
	} {
		if _, err := BuildTopology(spec, func() Spout { return &sliceSpout{} }, 1, func(tuple.Tuple) {}, 0); err != nil {
			t.Errorf("BuildTopology(%s rolling): %v", spec.Name, err)
		}
	}
	bad := ProcessorSpec{Name: "group-avg", Args: map[string]string{"rolling": "sideways"}}
	if _, err := BuildTopology(bad, func() Spout { return &sliceSpout{} }, 1, func(tuple.Tuple) {}, 0); err == nil {
		t.Error("BuildTopology accepted a non-boolean rolling arg")
	}
}
