package stream

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// Tests for the batch-vectorized executor: routing parity with the per-tuple
// path, flush/drain guarantees, the allocation-free fields hash, the
// tuples-in-flight QueueLag, and the WaitSpout/BatchBolt fast paths.

// taskRecorder hands out recording bolts and remembers which task instance
// saw which keys. Start instantiates tasks in index order, so the n-th
// factory call is task n.
type taskRecorder struct {
	mu   sync.Mutex
	next int
	seen map[int][]string
}

func newTaskRecorder() *taskRecorder {
	return &taskRecorder{seen: make(map[int][]string)}
}

func (r *taskRecorder) factory() func() Bolt {
	return func() Bolt {
		r.mu.Lock()
		id := r.next
		r.next++
		r.mu.Unlock()
		return BoltFunc(func(t tuple.Tuple, emit EmitFunc) {
			r.mu.Lock()
			r.seen[id] = append(r.seen[id], t.Key)
			r.mu.Unlock()
		})
	}
}

// snapshot returns each task's sorted key multiset.
func (r *taskRecorder) snapshot() map[int][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int][]string, len(r.seen))
	for id, keys := range r.seen {
		cp := append([]string(nil), keys...)
		sort.Strings(cp)
		out[id] = cp
	}
	return out
}

// routeSnapshot runs one spout against three bolts — one per grouping — at
// the given batch size and returns the per-task key multisets.
func routeSnapshot(t *testing.T, batchSize int) map[string]map[int][]string {
	t.Helper()
	tuples := make([]tuple.Tuple, 500)
	for i := range tuples {
		tuples[i] = tuple.Tuple{FlowID: uint64(i), Key: fmt.Sprintf("key-%d", i%53), Val: 1}
	}
	recs := map[string]*taskRecorder{
		"shuffle": newTaskRecorder(),
		"fields":  newTaskRecorder(),
		"global":  newTaskRecorder(),
	}
	topo := NewTopology("parity")
	if err := topo.AddSpout("src", func() Spout { return &sliceSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("shuffle", recs["shuffle"].factory(), 3).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("fields", recs["fields"].factory(), 3).FieldsFrom("src", "").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("global", recs["global"].factory(), 3).GlobalFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(batchSize), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(20 * time.Millisecond)
	ex.Stop()

	out := make(map[string]map[int][]string)
	for name, rec := range recs {
		out[name] = rec.snapshot()
	}
	return out
}

// TestBatchSingleParity pins the vectorized executor to the per-tuple
// routing semantics: for every grouping, each task must receive exactly the
// same tuple multiset regardless of batch size (batch 1 is the
// pre-vectorization behavior; 7 exercises ragged sub-batches; 32 the
// default).
func TestBatchSingleParity(t *testing.T) {
	base := routeSnapshot(t, 1)
	for _, size := range []int{7, 32} {
		got := routeSnapshot(t, size)
		for grouping, tasks := range base {
			if !reflect.DeepEqual(tasks, got[grouping]) {
				t.Errorf("batch %d: %s grouping per-task multisets differ from batch 1:\nbatch 1: %v\nbatch %d: %v",
					size, grouping, tasks, size, got[grouping])
			}
		}
	}
}

// raggedSpout emits a fixed tuple list across polls of varying sizes, so
// sub-batch buffers fill and flush at awkward boundaries.
type raggedSpout struct {
	mu     sync.Mutex
	tuples []tuple.Tuple
	off    int
	step   int
}

func (s *raggedSpout) Next() []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.off >= len(s.tuples) {
		return nil
	}
	s.step = s.step%11 + 1 // poll sizes cycle 1..11
	end := s.off + s.step
	if end > len(s.tuples) {
		end = len(s.tuples)
	}
	out := s.tuples[s.off:end]
	s.off = end
	return out
}

// TestFieldsGroupingBatchBoundaries is the same-key-same-task property test:
// whatever the poll sizes and sub-batch boundaries, every key must land on
// exactly one task, and that task must be the one fieldHash assigns.
func TestFieldsGroupingBatchBoundaries(t *testing.T) {
	const tasks = 4
	tuples := make([]tuple.Tuple, 997)
	for i := range tuples {
		tuples[i] = tuple.Tuple{FlowID: uint64(i), Key: fmt.Sprintf("url-%d", i%89), Val: 1}
	}
	rec := newTaskRecorder()
	topo := NewTopology("fields-prop")
	if err := topo.AddSpout("src", func() Spout { return &raggedSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("count", rec.factory(), tasks).FieldsFrom("src", "").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(8), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(30 * time.Millisecond)
	ex.Stop()

	owner := make(map[string]int)
	total := 0
	for id, keys := range rec.snapshot() {
		total += len(keys)
		for _, k := range keys {
			if prev, ok := owner[k]; ok && prev != id {
				t.Fatalf("key %q seen on tasks %d and %d", k, prev, id)
			}
			owner[k] = id
			tu := tuple.Tuple{Key: k}
			if want := int(fieldHash(&tu, "") % tasks); id != want {
				t.Fatalf("key %q on task %d, hash says %d", k, id, want)
			}
		}
	}
	if total != len(tuples) {
		t.Fatalf("received %d tuples, want %d", total, len(tuples))
	}
}

// TestStopDrainsPartialSubBatches checks the drain path: a tuple count that
// is not a multiple of the batch size leaves partially filled sub-batch
// buffers at both the spout and an intermediate bolt, and Stop must flush
// every one of them downstream — no tuple lost, none duplicated.
func TestStopDrainsPartialSubBatches(t *testing.T) {
	const n = 105 // 105 % 32 != 0 at every layer
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.Tuple{FlowID: uint64(i), Key: fmt.Sprintf("k%d", i)}
	}
	var mu sync.Mutex
	got := make(map[uint64]int)
	topo := NewTopology("drain")
	if err := topo.AddSpout("src", func() Spout { return &sliceSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	relay := func() Bolt {
		return BoltFunc(func(t tuple.Tuple, emit EmitFunc) { emit(t) })
	}
	if err := topo.AddBolt("relay", relay, 3).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	sink := func() Bolt {
		return BoltFunc(func(t tuple.Tuple, emit EmitFunc) {
			mu.Lock()
			got[t.FlowID]++
			mu.Unlock()
		})
	}
	if err := topo.AddBolt("sink", sink, 2).FieldsFrom("relay", "flow").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(32), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(20 * time.Millisecond)
	ex.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("sink saw %d distinct tuples, want %d", len(got), n)
	}
	for id, c := range got {
		if c != 1 {
			t.Fatalf("tuple %d delivered %d times", id, c)
		}
	}
}

// TestFieldHashMatchesFNV pins the inline hash to hash/fnv's FNV-1a so
// routing stays byte-for-byte compatible with the pre-vectorized executor.
func TestFieldHashMatchesFNV(t *testing.T) {
	for _, s := range []string{"", "a", "abc", "/videos/0001.mp4", strings.Repeat("x", 300)} {
		h := fnv.New64a()
		h.Write([]byte(s))
		tu := tuple.Tuple{Key: s}
		if got, want := fieldHash(&tu, ""), h.Sum64(); got != want {
			t.Errorf("fieldHash(%q) = %#x, fnv says %#x", s, got, want)
		}
	}
}

// TestFieldHashZeroAlloc is the acceptance criterion: hashing a routing key
// must not allocate (no hasher object, no string→[]byte copy).
func TestFieldHashZeroAlloc(t *testing.T) {
	tu := tuple.Tuple{Key: "/videos/0001.mp4", SrcIP: "10.0.0.1"}
	if a := testing.AllocsPerRun(200, func() { fieldHash(&tu, "") }); a != 0 {
		t.Errorf("fieldHash on Key allocates %.1f per run, want 0", a)
	}
	// Direct-field attributes (key, srcIP, ...) stay allocation-free too;
	// composite attributes like "pair" pay their own Sprintf regardless.
	if a := testing.AllocsPerRun(200, func() { fieldHash(&tu, "srcIP") }); a != 0 {
		t.Errorf("fieldHash on srcIP allocates %.1f per run, want 0", a)
	}
}

// TestQueueLagCountsTuples checks the new QueueLag semantics: it reports
// tuples in flight (queued between tasks plus executing), not channel
// occupancy, and returns to zero once the topology drains.
func TestQueueLagCountsTuples(t *testing.T) {
	const n = 64
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.Tuple{FlowID: uint64(i), Key: "k"}
	}
	gate := make(chan struct{})
	topo := NewTopology("lag")
	if err := topo.AddSpout("src", func() Spout { return &sliceSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	blocked := func() Bolt {
		return BoltFunc(func(t tuple.Tuple, emit EmitFunc) { <-gate })
	}
	if err := topo.AddBolt("block", blocked, 1).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(16), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	deadline := time.Now().Add(5 * time.Second)
	for ex.QueueLag() != n {
		if time.Now().After(deadline) {
			t.Fatalf("QueueLag = %d, want %d (all emitted tuples in flight)", ex.QueueLag(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	ex.Stop()
	if lag := ex.QueueLag(); lag != 0 {
		t.Fatalf("QueueLag after drain = %d, want 0", lag)
	}
}

// waitOnlySpout delivers data exclusively through NextWait, so tuples
// arriving at the sink prove the executor actually used the WaitSpout path.
type waitOnlySpout struct {
	mu    sync.Mutex
	fed   bool
	waits int
}

func (s *waitOnlySpout) Next() []tuple.Tuple { return nil }

func (s *waitOnlySpout) NextWait(timeout time.Duration) []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waits++
	if !s.fed {
		s.fed = true
		return keyed("a", "b", "c")
	}
	return nil
}

func (s *waitOnlySpout) stats() (bool, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fed, s.waits
}

// TestWaitSpoutUsedWhenIdle checks the adaptive backoff's final tier: a
// spout implementing WaitSpout is parked in NextWait instead of
// sleep-retried, and tuples it returns from there flow normally.
func TestWaitSpoutUsedWhenIdle(t *testing.T) {
	spout := &waitOnlySpout{}
	g := &gather{}
	topo := NewTopology("wait")
	if err := topo.AddSpout("src", func() Spout { return spout }, 1); err != nil {
		t.Fatal(err)
	}
	sink := func() Bolt { return NewCallbackBolt(g.add) }
	if err := topo.AddBolt("sink", sink, 1).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	deadline := time.Now().Add(5 * time.Second)
	for len(g.tuples()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sink got %d tuples, want 3", len(g.tuples()))
		}
		time.Sleep(time.Millisecond)
	}
	ex.Stop()
	if fed, waits := spout.stats(); !fed || waits == 0 {
		t.Fatalf("NextWait never used (fed=%v waits=%d)", fed, waits)
	}
}

// batchRecorder asserts the BatchBolt fast path: when a bolt implements
// ExecuteBatch, the executor must never fall back to per-tuple Execute.
type batchRecorder struct {
	mu      sync.Mutex
	sizes   []int
	total   int
	singles int
}

func (b *batchRecorder) Execute(t tuple.Tuple, emit EmitFunc) {
	b.mu.Lock()
	b.singles++
	b.mu.Unlock()
}

func (b *batchRecorder) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	b.mu.Lock()
	b.sizes = append(b.sizes, len(ts))
	b.total += len(ts)
	b.mu.Unlock()
}

func TestBatchBoltFastPath(t *testing.T) {
	const n = 100
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.Tuple{FlowID: uint64(i), Key: "k"}
	}
	rec := &batchRecorder{}
	topo := NewTopology("batchbolt")
	if err := topo.AddSpout("src", func() Spout { return &sliceSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("sink", func() Bolt { return rec }, 1).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(8), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(20 * time.Millisecond)
	ex.Stop()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.singles != 0 {
		t.Errorf("BatchBolt got %d per-tuple Execute calls, want 0", rec.singles)
	}
	if rec.total != n {
		t.Fatalf("ExecuteBatch saw %d tuples, want %d", rec.total, n)
	}
	for _, s := range rec.sizes {
		if s < 1 || s > 8 {
			t.Fatalf("sub-batch of %d tuples, want 1..8", s)
		}
	}
}

// TestWithMetricsBatchHistogram checks that the executor's sub-batch-size
// histogram lands in the registry and observes every flush.
func TestWithMetricsBatchHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	tuples := keyed("a", "b", "c", "d", "e")
	g := &gather{}
	topo := NewTopology("metrics")
	if err := topo.AddSpout("src", func() Spout { return &sliceSpout{tuples: tuples} }, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("sink", func() Bolt { return NewCallbackBolt(g.add) }, 1).ShuffleFrom("src").Err(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithBatchSize(2), WithTickInterval(time.Hour), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(20 * time.Millisecond)
	ex.Stop()
	if got := len(g.tuples()); got != 5 {
		t.Fatalf("sink got %d tuples, want 5", got)
	}
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == "stream_batch_len" && p.Kind == telemetry.KindHistogram && p.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("stream_batch_len histogram missing or empty in registry snapshot")
	}
}
