// Package stream implements the real-time analytics engine of §3.2 and §5.3,
// modeled on Apache Storm: a topology is a DAG of spouts (data sources) and
// bolts (processors) connected by groupings, executed by a pool of task
// goroutines per node. Fields grouping hashes a tuple attribute so that all
// tuples sharing a key reach the same task — the property the paper's
// counting bolts rely on — while shuffle grouping balances load and global
// grouping funnels everything into a single task (the final ranking reducer).
package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/tuple"
)

// DefaultTickInterval is how often bolts with windowed state advance.
const DefaultTickInterval = 100 * time.Millisecond

// DefaultQueueDepth bounds each task's input queue.
const DefaultQueueDepth = 1024

// Engine errors.
var (
	ErrCycle        = errors.New("stream: topology has a cycle")
	ErrUnknownNode  = errors.New("stream: unknown upstream node")
	ErrDuplicate    = errors.New("stream: duplicate node name")
	ErrEmptyTopo    = errors.New("stream: topology has no spouts")
	ErrNotConnected = errors.New("stream: bolt has no inputs")
)

// EmitFunc forwards a tuple to the downstream bolts of the emitting node.
type EmitFunc func(t tuple.Tuple)

// Spout is a data source. Next returns the next available tuples, or nil
// when none are ready (the executor backs off briefly before retrying).
type Spout interface {
	Next() []tuple.Tuple
}

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func() []tuple.Tuple

// Next implements Spout.
func (f SpoutFunc) Next() []tuple.Tuple { return f() }

// Bolt processes tuples. Instances are per task, so implementations may keep
// state without locking.
type Bolt interface {
	Execute(t tuple.Tuple, emit EmitFunc)
}

// Ticker is implemented by bolts with windowed state that advances on the
// executor's tick interval (rolling counters, rankers).
type Ticker interface {
	Tick(emit EmitFunc)
}

// Cleaner is implemented by bolts that must flush state at shutdown.
type Cleaner interface {
	Cleanup(emit EmitFunc)
}

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t tuple.Tuple, emit EmitFunc)

// Execute implements Bolt.
func (f BoltFunc) Execute(t tuple.Tuple, emit EmitFunc) { f(t, emit) }

// Grouping selects how tuples from an upstream node are distributed across a
// bolt's tasks.
type Grouping int

// Supported groupings.
const (
	// Shuffle distributes tuples round-robin.
	Shuffle Grouping = iota + 1
	// Fields routes tuples by hashing an attribute, so equal keys reach
	// the same task.
	Fields
	// Global routes every tuple to task 0.
	Global
)

type edge struct {
	from     string
	grouping Grouping
	field    string // attribute name for Fields ("" = Key)
}

type nodeDecl struct {
	name         string
	parallelism  int
	spoutFactory func() Spout
	boltFactory  func() Bolt
	inputs       []edge
}

// Topology declares a DAG of spouts and bolts.
type Topology struct {
	name  string
	nodes map[string]*nodeDecl
	order []string
}

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{name: name, nodes: make(map[string]*nodeDecl)}
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// AddSpout declares a spout with the given parallelism (min 1). The factory
// is invoked once per task.
func (t *Topology) AddSpout(name string, factory func() Spout, parallelism int) error {
	if _, dup := t.nodes[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	t.nodes[name] = &nodeDecl{name: name, parallelism: parallelism, spoutFactory: factory}
	t.order = append(t.order, name)
	return nil
}

// BoltBuilder connects a declared bolt to its inputs.
type BoltBuilder struct {
	topo *Topology
	node *nodeDecl
	err  error
}

// AddBolt declares a bolt with the given parallelism (min 1).
func (t *Topology) AddBolt(name string, factory func() Bolt, parallelism int) *BoltBuilder {
	if _, dup := t.nodes[name]; dup {
		return &BoltBuilder{err: fmt.Errorf("%w: %q", ErrDuplicate, name)}
	}
	if parallelism < 1 {
		parallelism = 1
	}
	n := &nodeDecl{name: name, parallelism: parallelism, boltFactory: factory}
	t.nodes[name] = n
	t.order = append(t.order, name)
	return &BoltBuilder{topo: t, node: n}
}

// ShuffleFrom subscribes the bolt to an upstream node with shuffle grouping.
func (b *BoltBuilder) ShuffleFrom(from string) *BoltBuilder {
	return b.subscribe(from, Shuffle, "")
}

// FieldsFrom subscribes with fields grouping on the given attribute
// ("" groups by Key).
func (b *BoltBuilder) FieldsFrom(from, field string) *BoltBuilder {
	return b.subscribe(from, Fields, field)
}

// GlobalFrom subscribes with global grouping.
func (b *BoltBuilder) GlobalFrom(from string) *BoltBuilder {
	return b.subscribe(from, Global, "")
}

func (b *BoltBuilder) subscribe(from string, g Grouping, field string) *BoltBuilder {
	if b.err != nil {
		return b
	}
	b.node.inputs = append(b.node.inputs, edge{from: from, grouping: g, field: field})
	return b
}

// Err returns any error accumulated while building.
func (b *BoltBuilder) Err() error { return b.err }

// validate checks the topology is a connected DAG.
func (t *Topology) validate() error {
	hasSpout := false
	for _, n := range t.nodes {
		if n.spoutFactory != nil {
			hasSpout = true
		}
		if n.boltFactory != nil && len(n.inputs) == 0 {
			return fmt.Errorf("%w: %q", ErrNotConnected, n.name)
		}
		for _, in := range n.inputs {
			if _, ok := t.nodes[in.from]; !ok {
				return fmt.Errorf("%w: %q <- %q", ErrUnknownNode, n.name, in.from)
			}
		}
	}
	if !hasSpout {
		return ErrEmptyTopo
	}
	// Kahn's algorithm for cycle detection.
	indeg := make(map[string]int, len(t.nodes))
	down := make(map[string][]string, len(t.nodes))
	for _, n := range t.nodes {
		indeg[n.name] += 0
		for _, in := range n.inputs {
			indeg[n.name]++
			down[in.from] = append(down[in.from], n.name)
		}
	}
	queue := make([]string, 0, len(t.nodes))
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		seen++
		for _, next := range down[name] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if seen != len(t.nodes) {
		return ErrCycle
	}
	return nil
}

// ExecutorOption customizes an Executor.
type ExecutorOption func(*Executor)

// WithTickInterval overrides the window-advance interval.
func WithTickInterval(d time.Duration) ExecutorOption {
	return func(e *Executor) {
		if d > 0 {
			e.tickInterval = d
		}
	}
}

// WithQueueDepth overrides each task's input queue depth.
func WithQueueDepth(n int) ExecutorOption {
	return func(e *Executor) {
		if n > 0 {
			e.queueDepth = n
		}
	}
}

// Executor runs a topology: one goroutine per task.
type Executor struct {
	topo         *Topology
	tickInterval time.Duration
	queueDepth   int

	queues  map[string][]chan tuple.Tuple
	pending map[string]*atomic.Int32 // upstream tasks still running
	counts  map[string]*atomic.Uint64

	spoutStop chan struct{}
	wg        sync.WaitGroup
	started   bool
	stopped   bool
	mu        sync.Mutex
}

// NewExecutor validates the topology and prepares an executor.
func NewExecutor(t *Topology, opts ...ExecutorOption) (*Executor, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	e := &Executor{
		topo:         t,
		tickInterval: DefaultTickInterval,
		queueDepth:   DefaultQueueDepth,
		queues:       make(map[string][]chan tuple.Tuple),
		pending:      make(map[string]*atomic.Int32),
		counts:       make(map[string]*atomic.Uint64),
		spoutStop:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	for _, name := range t.order {
		n := t.nodes[name]
		e.counts[name] = &atomic.Uint64{}
		if n.boltFactory == nil {
			continue
		}
		chans := make([]chan tuple.Tuple, n.parallelism)
		for i := range chans {
			chans[i] = make(chan tuple.Tuple, e.queueDepth)
		}
		e.queues[name] = chans
		p := &atomic.Int32{}
		for _, in := range n.inputs {
			p.Add(int32(t.nodes[in.from].parallelism))
		}
		e.pending[name] = p
	}
	return e, nil
}

// TaskCount returns the total number of task goroutines the executor runs —
// the paper's "#processes" unit for the analytics layer.
func (e *Executor) TaskCount() int {
	n := 0
	for _, node := range e.topo.nodes {
		n += node.parallelism
	}
	return n
}

// QueueLag returns the total number of tuples sitting in bolt input queues —
// the executor's internal backlog. The queues map is built once in
// NewExecutor and read-only afterwards, so sampling needs no lock.
func (e *Executor) QueueLag() int {
	total := 0
	for _, chans := range e.queues {
		for _, ch := range chans {
			total += len(ch)
		}
	}
	return total
}

// Processed returns how many tuples each node has handled (spouts: emitted).
func (e *Executor) Processed(node string) uint64 {
	c, ok := e.counts[node]
	if !ok {
		return 0
	}
	return c.Load()
}

// Start launches all tasks.
func (e *Executor) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true

	for _, name := range e.topo.order {
		n := e.topo.nodes[name]
		for i := 0; i < n.parallelism; i++ {
			if n.spoutFactory != nil {
				spout := n.spoutFactory()
				emit := e.emitFunc(n)
				e.wg.Add(1)
				go e.runSpout(n, spout, emit)
			} else {
				bolt := n.boltFactory()
				emit := e.emitFunc(n)
				e.wg.Add(1)
				go e.runBolt(n, i, bolt, emit)
			}
		}
	}
}

// Stop halts the spouts, lets every queued tuple drain through the DAG,
// flushes windowed bolt state, and waits for all tasks to exit.
func (e *Executor) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()

	close(e.spoutStop)
	e.wg.Wait()
}

// emitFunc builds the routing closure for one task of node n.
func (e *Executor) emitFunc(n *nodeDecl) EmitFunc {
	type route struct {
		chans    []chan tuple.Tuple
		grouping Grouping
		field    string
		rr       uint64
	}
	var routes []*route
	for _, name := range e.topo.order {
		down := e.topo.nodes[name]
		for _, in := range down.inputs {
			if in.from != n.name {
				continue
			}
			routes = append(routes, &route{
				chans:    e.queues[down.name],
				grouping: in.grouping,
				field:    in.field,
			})
		}
	}
	count := e.counts[n.name]
	return func(t tuple.Tuple) {
		count.Add(1)
		for _, r := range routes {
			var idx int
			switch r.grouping {
			case Fields:
				idx = int(fieldHash(&t, r.field) % uint64(len(r.chans)))
			case Global:
				idx = 0
			default:
				idx = int(r.rr % uint64(len(r.chans)))
				r.rr++
			}
			r.chans[idx] <- t
		}
	}
}

func fieldHash(t *tuple.Tuple, field string) uint64 {
	var key string
	if field == "" {
		key = t.Key
	} else {
		key = t.Attr(field)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

func (e *Executor) runSpout(n *nodeDecl, spout Spout, emit EmitFunc) {
	defer e.wg.Done()
	defer e.taskFinished(n)
	for {
		select {
		case <-e.spoutStop:
			return
		default:
		}
		batch := spout.Next()
		if len(batch) == 0 {
			select {
			case <-e.spoutStop:
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		for _, t := range batch {
			emit(t)
		}
	}
}

func (e *Executor) runBolt(n *nodeDecl, idx int, bolt Bolt, emit EmitFunc) {
	defer e.wg.Done()
	in := e.queues[n.name][idx]
	ticker := time.NewTicker(e.tickInterval)
	defer ticker.Stop()
	for {
		select {
		case t, ok := <-in:
			if !ok {
				if c, isCleaner := bolt.(Cleaner); isCleaner {
					c.Cleanup(emit)
				}
				e.taskFinished(n)
				return
			}
			bolt.Execute(t, emit)
		case <-ticker.C:
			if tk, isTicker := bolt.(Ticker); isTicker {
				tk.Tick(emit)
			}
		}
	}
}

// taskFinished propagates completion downstream: when the last upstream task
// of a bolt exits, the bolt's input queues are closed so it can drain and
// clean up.
func (e *Executor) taskFinished(n *nodeDecl) {
	for _, name := range e.topo.order {
		down := e.topo.nodes[name]
		feeds := 0
		for _, in := range down.inputs {
			if in.from == n.name {
				feeds++
			}
		}
		if feeds == 0 {
			continue
		}
		if e.pending[down.name].Add(int32(-feeds)) == 0 {
			for _, ch := range e.queues[down.name] {
				close(ch)
			}
		}
	}
}
