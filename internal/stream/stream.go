// Package stream implements the real-time analytics engine of §3.2 and §5.3,
// modeled on Apache Storm: a topology is a DAG of spouts (data sources) and
// bolts (processors) connected by groupings, executed by a pool of task
// goroutines per node. Fields grouping hashes a tuple attribute so that all
// tuples sharing a key reach the same task — the property the paper's
// counting bolts rely on — while shuffle grouping balances load and global
// grouping funnels everything into a single task (the final ranking reducer).
//
// The executor is batch-vectorized: task input queues carry []tuple.Tuple,
// emitters scatter tuples into per-route per-task sub-batch buffers, and one
// channel send moves a whole sub-batch, so per-tuple synchronization
// amortizes over the batch size. Latency stays bounded at low rates by the
// flush policy: a sub-batch flushes when full, when its task is about to
// block on input, on every tick, and at task exit.
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// DefaultTickInterval is how often bolts with windowed state advance.
const DefaultTickInterval = 100 * time.Millisecond

// DefaultQueueDepth bounds each task's input queue (in batches).
const DefaultQueueDepth = 1024

// DefaultBatchSize is the sub-batch size: how many tuples ride one channel
// send between tasks. 32 matches the monitor burst size — past it the sends
// are already amortized while queueing latency keeps growing.
const DefaultBatchSize = 32

// spoutWaitQuantum bounds how long a WaitSpout may park per NextWait call so
// the executor still observes Stop promptly while the topology idles.
const spoutWaitQuantum = 20 * time.Millisecond

// Engine errors.
var (
	ErrCycle        = errors.New("stream: topology has a cycle")
	ErrUnknownNode  = errors.New("stream: unknown upstream node")
	ErrDuplicate    = errors.New("stream: duplicate node name")
	ErrEmptyTopo    = errors.New("stream: topology has no spouts")
	ErrNotConnected = errors.New("stream: bolt has no inputs")
)

// EmitFunc forwards a tuple to the downstream bolts of the emitting node.
type EmitFunc func(t tuple.Tuple)

// Spout is a data source. Next returns the next available tuples, or nil
// when none are ready (the executor backs off before retrying).
type Spout interface {
	Next() []tuple.Tuple
}

// WaitSpout is an optional spout extension for sources that can block until
// data arrives (mq-backed spouts use Consumer.PollWait). When Next returns
// nothing the executor parks in NextWait instead of sleep-retrying, so idle
// topologies stop burning periodic wakeups. NextWait must return — possibly
// with no tuples — within roughly the given timeout.
type WaitSpout interface {
	Spout
	NextWait(timeout time.Duration) []tuple.Tuple
}

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func() []tuple.Tuple

// Next implements Spout.
func (f SpoutFunc) Next() []tuple.Tuple { return f() }

// Bolt processes tuples. Instances are per task, so implementations may keep
// state without locking.
type Bolt interface {
	Execute(t tuple.Tuple, emit EmitFunc)
}

// BatchBolt is an optional bolt fast path: the executor hands over whole
// sub-batches as they arrive instead of unrolling to per-tuple Execute
// calls. The slice belongs to the executor and is recycled as soon as
// ExecuteBatch returns — implementations must not retain it (copy tuples
// out if they need them later).
type BatchBolt interface {
	Bolt
	ExecuteBatch(ts []tuple.Tuple, emit EmitFunc)
}

// Ticker is implemented by bolts with windowed state that advances on the
// executor's tick interval (rolling counters, rankers).
type Ticker interface {
	Tick(emit EmitFunc)
}

// Cleaner is implemented by bolts that must flush state at shutdown.
type Cleaner interface {
	Cleanup(emit EmitFunc)
}

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t tuple.Tuple, emit EmitFunc)

// Execute implements Bolt.
func (f BoltFunc) Execute(t tuple.Tuple, emit EmitFunc) { f(t, emit) }

// Grouping selects how tuples from an upstream node are distributed across a
// bolt's tasks.
type Grouping int

// Supported groupings.
const (
	// Shuffle distributes tuples round-robin.
	Shuffle Grouping = iota + 1
	// Fields routes tuples by hashing an attribute, so equal keys reach
	// the same task.
	Fields
	// Global routes every tuple to task 0.
	Global
)

type edge struct {
	from     string
	grouping Grouping
	field    string // attribute name for Fields ("" = Key)
}

type nodeDecl struct {
	name         string
	parallelism  int
	spoutFactory func() Spout
	boltFactory  func() Bolt
	inputs       []edge
}

// Topology declares a DAG of spouts and bolts.
type Topology struct {
	name  string
	nodes map[string]*nodeDecl
	order []string
}

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{name: name, nodes: make(map[string]*nodeDecl)}
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// AddSpout declares a spout with the given parallelism (min 1). The factory
// is invoked once per task.
func (t *Topology) AddSpout(name string, factory func() Spout, parallelism int) error {
	if _, dup := t.nodes[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	t.nodes[name] = &nodeDecl{name: name, parallelism: parallelism, spoutFactory: factory}
	t.order = append(t.order, name)
	return nil
}

// BoltBuilder connects a declared bolt to its inputs.
type BoltBuilder struct {
	topo *Topology
	node *nodeDecl
	err  error
}

// AddBolt declares a bolt with the given parallelism (min 1).
func (t *Topology) AddBolt(name string, factory func() Bolt, parallelism int) *BoltBuilder {
	if _, dup := t.nodes[name]; dup {
		return &BoltBuilder{err: fmt.Errorf("%w: %q", ErrDuplicate, name)}
	}
	if parallelism < 1 {
		parallelism = 1
	}
	n := &nodeDecl{name: name, parallelism: parallelism, boltFactory: factory}
	t.nodes[name] = n
	t.order = append(t.order, name)
	return &BoltBuilder{topo: t, node: n}
}

// ShuffleFrom subscribes the bolt to an upstream node with shuffle grouping.
func (b *BoltBuilder) ShuffleFrom(from string) *BoltBuilder {
	return b.subscribe(from, Shuffle, "")
}

// FieldsFrom subscribes with fields grouping on the given attribute
// ("" groups by Key).
func (b *BoltBuilder) FieldsFrom(from, field string) *BoltBuilder {
	return b.subscribe(from, Fields, field)
}

// GlobalFrom subscribes with global grouping.
func (b *BoltBuilder) GlobalFrom(from string) *BoltBuilder {
	return b.subscribe(from, Global, "")
}

func (b *BoltBuilder) subscribe(from string, g Grouping, field string) *BoltBuilder {
	if b.err != nil {
		return b
	}
	b.node.inputs = append(b.node.inputs, edge{from: from, grouping: g, field: field})
	return b
}

// Err returns any error accumulated while building.
func (b *BoltBuilder) Err() error { return b.err }

// validate checks the topology is a connected DAG.
func (t *Topology) validate() error {
	hasSpout := false
	for _, n := range t.nodes {
		if n.spoutFactory != nil {
			hasSpout = true
		}
		if n.boltFactory != nil && len(n.inputs) == 0 {
			return fmt.Errorf("%w: %q", ErrNotConnected, n.name)
		}
		for _, in := range n.inputs {
			if _, ok := t.nodes[in.from]; !ok {
				return fmt.Errorf("%w: %q <- %q", ErrUnknownNode, n.name, in.from)
			}
		}
	}
	if !hasSpout {
		return ErrEmptyTopo
	}
	// Kahn's algorithm for cycle detection.
	indeg := make(map[string]int, len(t.nodes))
	down := make(map[string][]string, len(t.nodes))
	for _, n := range t.nodes {
		indeg[n.name] += 0
		for _, in := range n.inputs {
			indeg[n.name]++
			down[in.from] = append(down[in.from], n.name)
		}
	}
	queue := make([]string, 0, len(t.nodes))
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		seen++
		for _, next := range down[name] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if seen != len(t.nodes) {
		return ErrCycle
	}
	return nil
}

// ExecutorOption customizes an Executor.
type ExecutorOption func(*Executor)

// WithTickInterval overrides the window-advance interval.
func WithTickInterval(d time.Duration) ExecutorOption {
	return func(e *Executor) {
		if d > 0 {
			e.tickInterval = d
		}
	}
}

// WithQueueDepth overrides each task's input queue depth (in batches).
func WithQueueDepth(n int) ExecutorOption {
	return func(e *Executor) {
		if n > 0 {
			e.queueDepth = n
		}
	}
}

// WithBatchSize overrides the sub-batch size — how many tuples one channel
// send carries between tasks. 1 disables batching (every tuple is its own
// send, the pre-vectorization behavior); values ≤ 0 keep the default.
func WithBatchSize(n int) ExecutorOption {
	return func(e *Executor) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithMetrics registers the executor's instruments — currently the
// stream_batch_len histogram of flushed sub-batch sizes — on a telemetry
// registry under the given labels.
func WithMetrics(reg *telemetry.Registry, labels ...telemetry.Label) ExecutorOption {
	return func(e *Executor) {
		e.batchLen = reg.Histogram("stream_batch_len", labels...)
	}
}

// Executor runs a topology: one goroutine per task.
type Executor struct {
	topo         *Topology
	tickInterval time.Duration
	queueDepth   int
	batchSize    int

	queues  map[string][]chan []tuple.Tuple
	pending map[string]*atomic.Int32 // upstream tasks still running
	counts  map[string]*atomic.Uint64

	inflight atomic.Int64         // tuples sent downstream, not yet executed
	bufPool  sync.Pool            // *[]tuple.Tuple, cap batchSize
	batchLen *telemetry.Histogram // flushed sub-batch sizes

	spoutStop chan struct{}
	wg        sync.WaitGroup
	started   bool
	stopped   bool
	mu        sync.Mutex
}

// NewExecutor validates the topology and prepares an executor.
func NewExecutor(t *Topology, opts ...ExecutorOption) (*Executor, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	e := &Executor{
		topo:         t,
		tickInterval: DefaultTickInterval,
		queueDepth:   DefaultQueueDepth,
		batchSize:    DefaultBatchSize,
		queues:       make(map[string][]chan []tuple.Tuple),
		pending:      make(map[string]*atomic.Int32),
		counts:       make(map[string]*atomic.Uint64),
		spoutStop:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.batchLen == nil {
		e.batchLen = &telemetry.Histogram{} // unregistered, still observable
	}
	size := e.batchSize
	e.bufPool.New = func() any {
		b := make([]tuple.Tuple, 0, size)
		return &b
	}
	for _, name := range t.order {
		n := t.nodes[name]
		e.counts[name] = &atomic.Uint64{}
		if n.boltFactory == nil {
			continue
		}
		chans := make([]chan []tuple.Tuple, n.parallelism)
		for i := range chans {
			chans[i] = make(chan []tuple.Tuple, e.queueDepth)
		}
		e.queues[name] = chans
		p := &atomic.Int32{}
		for _, in := range n.inputs {
			p.Add(int32(t.nodes[in.from].parallelism))
		}
		e.pending[name] = p
	}
	return e, nil
}

// TaskCount returns the total number of task goroutines the executor runs —
// the paper's "#processes" unit for the analytics layer.
func (e *Executor) TaskCount() int {
	n := 0
	for _, node := range e.topo.nodes {
		n += node.parallelism
	}
	return n
}

// Nodes returns the topology's node names in declaration order — spouts
// first, then bolts — so callers can introspect which pipeline variant a
// query compiled to (e.g. the sketch merge stage vs the exact rank stage).
func (e *Executor) Nodes() []string {
	return append([]string(nil), e.topo.order...)
}

// QueueLag returns the number of tuples in flight inside the executor:
// emitted into a downstream task queue (or being executed right now) but
// not yet fully processed. Counting tuples rather than channel occupancy
// keeps the gauge's meaning independent of the batch size.
func (e *Executor) QueueLag() int {
	n := e.inflight.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Processed returns how many tuples each node has handled (spouts: emitted).
func (e *Executor) Processed(node string) uint64 {
	c, ok := e.counts[node]
	if !ok {
		return 0
	}
	return c.Load()
}

// Start launches all tasks.
func (e *Executor) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true

	for _, name := range e.topo.order {
		n := e.topo.nodes[name]
		for i := 0; i < n.parallelism; i++ {
			if n.spoutFactory != nil {
				spout := n.spoutFactory()
				e.wg.Add(1)
				go e.runSpout(n, spout, e.newEmitter(n))
			} else {
				bolt := n.boltFactory()
				e.wg.Add(1)
				go e.runBolt(n, i, bolt, e.newEmitter(n))
			}
		}
	}
}

// Stop halts the spouts, lets every queued tuple drain through the DAG,
// flushes windowed bolt state, and waits for all tasks to exit.
func (e *Executor) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()

	close(e.spoutStop)
	e.wg.Wait()
}

func (e *Executor) getBuf() []tuple.Tuple {
	return (*e.bufPool.Get().(*[]tuple.Tuple))[:0]
}

func (e *Executor) putBuf(b []tuple.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	e.bufPool.Put(&b)
}

// routeState is one downstream subscription of an emitting task: the target
// channels, the grouping that picks among them, and a sub-batch buffer per
// target task. rr and bufs are task-local (each task owns its emitter), so
// no locking is needed.
type routeState struct {
	chans    []chan []tuple.Tuple
	grouping Grouping
	field    string
	rr       uint64
	bufs     [][]tuple.Tuple
}

// emitter is the batched routing state for one task. Tuples scatter into
// per-route, per-task sub-batch buffers; each buffer is flushed as a single
// channel send when it reaches the batch size, when the owning task is
// about to block, on tick, and at task exit.
type emitter struct {
	ex     *Executor
	count  *atomic.Uint64
	routes []*routeState
}

// newEmitter builds the routing state for one task of node n.
func (e *Executor) newEmitter(n *nodeDecl) *emitter {
	em := &emitter{ex: e, count: e.counts[n.name]}
	for _, name := range e.topo.order {
		down := e.topo.nodes[name]
		for _, in := range down.inputs {
			if in.from != n.name {
				continue
			}
			em.routes = append(em.routes, &routeState{
				chans:    e.queues[down.name],
				grouping: in.grouping,
				field:    in.field,
				bufs:     make([][]tuple.Tuple, len(e.queues[down.name])),
			})
		}
	}
	return em
}

// emit routes a single tuple — the EmitFunc handed to bolts and spouts.
func (em *emitter) emit(t tuple.Tuple) {
	em.count.Add(1)
	for _, r := range em.routes {
		var idx int
		switch r.grouping {
		case Fields:
			idx = int(fieldHash(&t, r.field) % uint64(len(r.chans)))
		case Global:
			idx = 0
		default:
			idx = int(r.rr % uint64(len(r.chans)))
			r.rr++
		}
		em.push(r, idx, t)
	}
}

// emitBatch scatters a whole tuple batch. Routing runs batch-at-a-time —
// the grouping switch is hoisted out of the per-tuple loop — and produces
// the same per-task tuple sequences as per-tuple emit: tuples are visited
// in emission order within each route, so the round-robin counter and the
// per-task buffers advance identically.
func (em *emitter) emitBatch(ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	em.count.Add(uint64(len(ts)))
	for _, r := range em.routes {
		switch r.grouping {
		case Fields:
			n := uint64(len(r.chans))
			for i := range ts {
				em.push(r, int(fieldHash(&ts[i], r.field)%n), ts[i])
			}
		case Global:
			for i := range ts {
				em.push(r, 0, ts[i])
			}
		default:
			n := uint64(len(r.chans))
			for i := range ts {
				em.push(r, int(r.rr%n), ts[i])
				r.rr++
			}
		}
	}
}

// push appends a tuple to a route's sub-batch buffer, flushing the buffer
// downstream when it reaches the batch size.
func (em *emitter) push(r *routeState, idx int, t tuple.Tuple) {
	buf := r.bufs[idx]
	if buf == nil {
		buf = em.ex.getBuf()
	}
	buf = append(buf, t)
	if len(buf) >= em.ex.batchSize {
		r.bufs[idx] = nil
		em.send(r.chans[idx], buf)
		return
	}
	r.bufs[idx] = buf
}

func (em *emitter) send(ch chan []tuple.Tuple, buf []tuple.Tuple) {
	em.ex.inflight.Add(int64(len(buf)))
	em.ex.batchLen.Observe(int64(len(buf)))
	ch <- buf
}

// flush sends every partially filled sub-batch buffer downstream.
func (em *emitter) flush() {
	for _, r := range em.routes {
		for idx, buf := range r.bufs {
			if len(buf) > 0 {
				r.bufs[idx] = nil
				em.send(r.chans[idx], buf)
			}
		}
	}
}

// fieldHash hashes the routing key with inline FNV-1a — bit-identical to
// hash/fnv's Sum64a but with no hasher allocation and no string→[]byte
// copy, so fields routing costs zero allocations per tuple.
func fieldHash(t *tuple.Tuple, field string) uint64 {
	key := t.Key
	if field != "" {
		key = t.Attr(field)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (e *Executor) runSpout(n *nodeDecl, spout Spout, em *emitter) {
	defer e.wg.Done()
	// LIFO: flush residual sub-batches first, then cascade completion.
	defer e.taskFinished(n)
	defer em.flush()
	ws, canWait := spout.(WaitSpout)
	idle := 0
	for {
		select {
		case <-e.spoutStop:
			return
		default:
		}
		batch := spout.Next()
		if len(batch) > 0 {
			em.emitBatch(batch)
			idle = 0
			continue
		}
		// The source is idle: flush residual sub-batches so a trickle of
		// tuples doesn't wait on a buffer filling, then back off — spin,
		// then short growing sleeps, or the spout's own blocking wait.
		em.flush()
		if canWait {
			if batch := ws.NextWait(spoutWaitQuantum); len(batch) > 0 {
				em.emitBatch(batch)
				idle = 0
			}
			continue
		}
		idle++
		if idle <= 4 {
			runtime.Gosched()
			continue
		}
		d := time.Duration(idle-4) * 50 * time.Microsecond
		if d > time.Millisecond {
			d = time.Millisecond
		}
		select {
		case <-e.spoutStop:
			return
		case <-time.After(d):
		}
	}
}

func (e *Executor) runBolt(n *nodeDecl, idx int, bolt Bolt, em *emitter) {
	defer e.wg.Done()
	in := e.queues[n.name][idx]
	ticker := time.NewTicker(e.tickInterval)
	defer ticker.Stop()
	// Bind the method value once: evaluating em.emit allocates a closure,
	// which must not happen per tuple on the Execute fallback path.
	emit := EmitFunc(em.emit)
	bb, isBatch := bolt.(BatchBolt)
	exec := func(batch []tuple.Tuple) {
		if isBatch {
			bb.ExecuteBatch(batch, emit)
		} else {
			for i := range batch {
				bolt.Execute(batch[i], emit)
			}
		}
		e.inflight.Add(int64(-len(batch)))
		e.putBuf(batch)
	}
	cleanup := func() {
		if c, isCleaner := bolt.(Cleaner); isCleaner {
			c.Cleanup(emit)
		}
		em.flush()
		e.taskFinished(n)
	}
	tick := func() {
		if tk, isTicker := bolt.(Ticker); isTicker {
			tk.Tick(emit)
		}
		em.flush()
	}
	for {
		// Fast path: drain whatever is queued without flushing, but keep
		// serving ticks so windows still advance under sustained load.
		select {
		case batch, ok := <-in:
			if !ok {
				cleanup()
				return
			}
			exec(batch)
			select {
			case <-ticker.C:
				tick()
			default:
			}
			continue
		default:
		}
		// About to block: flush this task's own residual sub-batches so
		// downstream sees them before the pipeline goes quiet.
		em.flush()
		select {
		case batch, ok := <-in:
			if !ok {
				cleanup()
				return
			}
			exec(batch)
		case <-ticker.C:
			tick()
		}
	}
}

// taskFinished propagates completion downstream: when the last upstream task
// of a bolt exits, the bolt's input queues are closed so it can drain and
// clean up.
func (e *Executor) taskFinished(n *nodeDecl) {
	for _, name := range e.topo.order {
		down := e.topo.nodes[name]
		feeds := 0
		for _, in := range down.inputs {
			if in.from == n.name {
				feeds++
			}
		}
		if feeds == 0 {
			continue
		}
		if e.pending[down.name].Add(int32(-feeds)) == 0 {
			for _, ch := range e.queues[down.name] {
				close(ch)
			}
		}
	}
}
