package stream

import (
	"encoding/json"
	"sort"
	"time"

	"netalytics/internal/tuple"
)

// This file implements the common NetAlytics topology building blocks of
// Table 2 (top-k, max/min, sum, avg, diff, group) plus the Fig. 4 top-k
// pipeline bolts (parsing, rolling count, local/global ranking, database).

// ParseBolt is Fig. 4's parsing bolt: it normalizes raw records into
// (signature, 1) pairs for the counting stage. Tuples without a key (e.g.
// HTTP response records) carry nothing to count and are dropped.
type ParseBolt struct{}

// Execute implements Bolt.
func (b *ParseBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	if t.Key == "" {
		return
	}
	t.Val = 1
	emit(t)
}

// ExecuteBatch implements BatchBolt.
func (b *ParseBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		b.Execute(ts[i], emit)
	}
}

// RollingCountBolt maintains per-key rolling counts over a window of slots,
// like the Storm-Starter rolling count bolt the paper builds on. Every
// Tick advances the window one slot and emits the current total per key.
type RollingCountBolt struct {
	slots   int
	current int
	counts  map[string][]float64
}

// NewRollingCountBolt creates a counting bolt with the given number of
// window slots (min 1); one slot advances per executor tick.
func NewRollingCountBolt(slots int) *RollingCountBolt {
	if slots < 1 {
		slots = 1
	}
	return &RollingCountBolt{slots: slots, counts: make(map[string][]float64)}
}

// Execute implements Bolt: it accumulates t.Val (or 1 when zero) for t.Key.
func (b *RollingCountBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	ring, ok := b.counts[t.Key]
	if !ok {
		ring = make([]float64, b.slots)
		b.counts[t.Key] = ring
	}
	v := t.Val
	if v == 0 {
		v = 1
	}
	ring[b.current] += v
}

// ExecuteBatch implements BatchBolt: adjacent tuples for the same key (the
// common case after fields grouping) reuse one ring lookup.
func (b *RollingCountBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	var ring []float64
	var last string
	for i := range ts {
		t := &ts[i]
		if ring == nil || t.Key != last {
			var ok bool
			ring, ok = b.counts[t.Key]
			if !ok {
				ring = make([]float64, b.slots)
				b.counts[t.Key] = ring
			}
			last = t.Key
		}
		v := t.Val
		if v == 0 {
			v = 1
		}
		ring[b.current] += v
	}
}

// Tick implements Ticker: emit totals and advance the window.
func (b *RollingCountBolt) Tick(emit EmitFunc) {
	b.flush(emit)
	b.current = (b.current + 1) % b.slots
	for key, ring := range b.counts {
		ring[b.current] = 0
		total := 0.0
		for _, v := range ring {
			total += v
		}
		if total == 0 {
			delete(b.counts, key)
		}
	}
}

// Cleanup implements Cleaner.
func (b *RollingCountBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *RollingCountBolt) flush(emit EmitFunc) {
	for key, ring := range b.counts {
		total := 0.0
		for _, v := range ring {
			total += v
		}
		if total > 0 {
			emit(tuple.Tuple{Key: key, Val: total})
		}
	}
}

// RankEntry is one entry of a ranking.
type RankEntry struct {
	Key   string  `json:"key"`
	Count float64 `json:"count"`
}

// RankingsKey marks tuples whose Key field carries a JSON-encoded
// []RankEntry produced by a ranking bolt.
const RankingsKey = "__rankings__"

// EncodeRankings packs entries into a tuple understood by DatabaseBolt.
func EncodeRankings(entries []RankEntry) tuple.Tuple {
	data, err := json.Marshal(entries)
	if err != nil {
		// []RankEntry always marshals; keep the signature clean.
		panic("stream: encoding rankings: " + err.Error())
	}
	return tuple.Tuple{Key: string(data), SrcIP: RankingsKey, Val: float64(len(entries))}
}

// DecodeRankings unpacks a rankings tuple; ok is false for other tuples.
func DecodeRankings(t tuple.Tuple) ([]RankEntry, bool) {
	if t.SrcIP != RankingsKey {
		return nil, false
	}
	var entries []RankEntry
	if err := json.Unmarshal([]byte(t.Key), &entries); err != nil {
		return nil, false
	}
	return entries, true
}

// RankBolt keeps the top-k of the (key, count) pairs it has seen since the
// last tick. Intermediate rankers run with fields grouping (each sees a key
// subset); a final ranker runs with global grouping and merges.
type RankBolt struct {
	k      int
	latest map[string]float64
}

// NewRankBolt creates a ranker retaining the top k keys.
func NewRankBolt(k int) *RankBolt {
	if k < 1 {
		k = 1
	}
	return &RankBolt{k: k, latest: make(map[string]float64)}
}

// Execute implements Bolt: counts arrive either as plain (key, val) pairs
// from a counting bolt or as encoded rankings from an intermediate ranker.
func (b *RankBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	if entries, ok := DecodeRankings(t); ok {
		for _, e := range entries {
			b.latest[e.Key] = e.Count
		}
		return
	}
	b.latest[t.Key] = t.Val
}

// Tick implements Ticker: emit the current top-k and reset.
func (b *RankBolt) Tick(emit EmitFunc) { b.flush(emit) }

// Cleanup implements Cleaner.
func (b *RankBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *RankBolt) flush(emit EmitFunc) {
	if len(b.latest) == 0 {
		return
	}
	emit(EncodeRankings(topEntries(b.latest, b.k)))
	clear(b.latest)
}

// rankWeaker orders rank entries by selection priority: a is weaker than b
// when it ranks lower (smaller count, or equal count with the greater key —
// the inverse of the emitted count-desc/key-asc order).
func rankWeaker(a, b RankEntry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key
}

// topEntries selects the k strongest entries of m in emission order. It
// keeps a bounded min-heap of size k — the weakest retained entry at the
// root — so selection costs O(n log k) instead of the O(n log n) full sort
// that dominated rank flushes at large key counts.
func topEntries(m map[string]float64, k int) []RankEntry {
	if k > len(m) {
		k = len(m)
	}
	heap := make([]RankEntry, 0, k)
	for key, count := range m {
		e := RankEntry{Key: key, Count: count}
		if len(heap) < k {
			heap = append(heap, e)
			// Sift up.
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !rankWeaker(heap[i], heap[parent]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if !rankWeaker(heap[0], e) {
			continue
		}
		// Replace the weakest retained entry and sift down.
		heap[0] = e
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < k && rankWeaker(heap[l], heap[min]) {
				min = l
			}
			if r < k && rankWeaker(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				break
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].Count != heap[j].Count {
			return heap[i].Count > heap[j].Count
		}
		return heap[i].Key < heap[j].Key
	})
	return heap
}

// DatabaseBolt is Fig. 4's terminal bolt: it stores each global top-k into a
// user callback (the paper uses Redis) — the hook automation like the §7.3
// replication Updater attaches to.
type DatabaseBolt struct {
	fn func([]RankEntry)
}

// NewDatabaseBolt creates a database bolt invoking fn for every ranking.
func NewDatabaseBolt(fn func([]RankEntry)) *DatabaseBolt {
	return &DatabaseBolt{fn: fn}
}

// Execute implements Bolt.
func (b *DatabaseBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	if entries, ok := DecodeRankings(t); ok && b.fn != nil {
		b.fn(entries)
	}
}

// DiffBolt pairs "start" and "end" tuples sharing a flow ID and emits their
// difference — e.g. TCP connection duration from tcp_conn_time tuples.
//
// Tuples from other parsers sharing the flow ID (e.g. an http_get URL) are
// remembered as the flow's label, and the emitted diff carries that label as
// its key. This is the §7.2 join: combining network-level timing from one
// parser with application-level data from another via the tuple ID field.
type DiffBolt struct {
	startKey, endKey string
	starts           map[uint64]tuple.Tuple
	labels           map[uint64]string
	// pending holds completed diffs still waiting for their label: tuples
	// from different parsers ride different aggregation topics, so a flow's
	// URL may arrive after its FIN. Unlabeled diffs are held for one tick
	// and then emitted with the generic "diff" key.
	pending map[uint64]pendingDiff
}

type pendingDiff struct {
	t   tuple.Tuple
	age int
}

// NewDiffBolt creates a diff bolt pairing tuples with the given keys
// (defaults "start"/"end").
func NewDiffBolt(startKey, endKey string) *DiffBolt {
	if startKey == "" {
		startKey = "start"
	}
	if endKey == "" {
		endKey = "end"
	}
	return &DiffBolt{
		startKey: startKey,
		endKey:   endKey,
		starts:   make(map[uint64]tuple.Tuple),
		labels:   make(map[uint64]string),
		pending:  make(map[uint64]pendingDiff),
	}
}

// Execute implements Bolt.
func (b *DiffBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	switch t.Key {
	case b.startKey:
		b.starts[t.FlowID] = t
	case b.endKey:
		start, ok := b.starts[t.FlowID]
		if !ok {
			return
		}
		delete(b.starts, t.FlowID)
		out := t
		out.Key = "diff"
		out.Val = t.Val - start.Val
		if label, ok := b.labels[t.FlowID]; ok {
			out.Key = label
			delete(b.labels, t.FlowID)
			emit(out)
			return
		}
		b.pending[t.FlowID] = pendingDiff{t: out}
	case "":
		// Unlabeled tuple (e.g. an HTTP response): nothing to join on.
	default:
		if pd, ok := b.pending[t.FlowID]; ok {
			delete(b.pending, t.FlowID)
			pd.t.Key = t.Key
			emit(pd.t)
			return
		}
		b.labels[t.FlowID] = t.Key
	}
}

// Tick implements Ticker: pending diffs that outlived a full tick without a
// label are emitted with the generic key.
func (b *DiffBolt) Tick(emit EmitFunc) {
	for id, pd := range b.pending {
		pd.age++
		if pd.age >= 2 {
			delete(b.pending, id)
			emit(pd.t)
			continue
		}
		b.pending[id] = pd
	}
}

// Cleanup implements Cleaner: flush every pending diff.
func (b *DiffBolt) Cleanup(emit EmitFunc) {
	for id, pd := range b.pending {
		delete(b.pending, id)
		emit(pd.t)
	}
}

// Agg selects a GroupBolt aggregation.
type Agg int

// Supported aggregations.
const (
	AggSum Agg = iota + 1
	AggAvg
	AggMax
	AggMin
	AggCount
)

// GroupBolt groups tuples by an attribute and aggregates their values,
// emitting one (group, aggregate) tuple per group on every tick. It
// implements the paper's group/sum/avg/max/min blocks in one parameterized
// bolt; convenience constructors below give each block its Table 2 name.
type GroupBolt struct {
	attr    string
	agg     Agg
	rolling bool // reset accumulators after each tick

	sums   map[string]float64
	counts map[string]float64
	exts   map[string]float64
}

// NewGroupBolt creates a grouping bolt. attr "" groups everything into one
// group named "all". When rolling is true, accumulators reset at each tick;
// otherwise aggregates are cumulative and emitted on tick and cleanup.
func NewGroupBolt(attr string, agg Agg, rolling bool) *GroupBolt {
	if agg == 0 {
		agg = AggSum
	}
	return &GroupBolt{
		attr:    attr,
		agg:     agg,
		rolling: rolling,
		sums:    make(map[string]float64),
		counts:  make(map[string]float64),
		exts:    make(map[string]float64),
	}
}

// NewSumBolt returns the Table 2 "sum" block grouped by attr.
func NewSumBolt(attr string) *GroupBolt { return NewGroupBolt(attr, AggSum, false) }

// NewAvgBolt returns the Table 2 "avg" block grouped by attr.
func NewAvgBolt(attr string) *GroupBolt { return NewGroupBolt(attr, AggAvg, false) }

// NewMaxBolt returns the Table 2 "max" block grouped by attr.
func NewMaxBolt(attr string) *GroupBolt { return NewGroupBolt(attr, AggMax, false) }

// NewMinBolt returns the Table 2 "min" block grouped by attr.
func NewMinBolt(attr string) *GroupBolt { return NewGroupBolt(attr, AggMin, false) }

// Execute implements Bolt.
func (b *GroupBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	group := "all"
	if b.attr != "" {
		if g := t.Attr(b.attr); g != "" {
			group = g
		}
	}
	b.counts[group]++
	b.sums[group] += t.Val
	ext, seen := b.exts[group]
	switch b.agg {
	case AggMax:
		if !seen || t.Val > ext {
			b.exts[group] = t.Val
		}
	case AggMin:
		if !seen || t.Val < ext {
			b.exts[group] = t.Val
		}
	}
}

// ExecuteBatch implements BatchBolt.
func (b *GroupBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		b.Execute(ts[i], emit)
	}
}

// Tick implements Ticker.
func (b *GroupBolt) Tick(emit EmitFunc) {
	b.flush(emit)
	if b.rolling {
		clear(b.sums)
		clear(b.counts)
		clear(b.exts)
	}
}

// Cleanup implements Cleaner.
func (b *GroupBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *GroupBolt) flush(emit EmitFunc) {
	for group, n := range b.counts {
		if n == 0 {
			continue
		}
		var v float64
		switch b.agg {
		case AggAvg:
			v = b.sums[group] / n
		case AggMax, AggMin:
			v = b.exts[group]
		case AggCount:
			v = n
		default:
			v = b.sums[group]
		}
		emit(tuple.Tuple{Key: group, Val: v})
	}
}

// JoinBolt correlates tuples from two parsers by flow ID — the explicit
// join operation §3.4 leaves as future work. Left tuples label the flow
// (e.g. an http_get URL); each right tuple seen for a labeled flow is
// re-emitted with the label as its key, so downstream grouping can pivot
// network-layer measurements by application-layer attributes.
type JoinBolt struct {
	leftParser  string
	rightParser string
	labels      map[uint64]string
	// pendingRight buffers right tuples whose label has not arrived yet:
	// topics are not ordered across parsers, and a short flow's packets can
	// all be batched before its label flushes. Pending tuples are evicted
	// after maxAge ticks.
	pendingRight map[uint64]*pendingJoin
	maxAge       int
}

type pendingJoin struct {
	tuples []tuple.Tuple
	age    int
}

// joinPendingTicks is how many executor ticks a right tuple waits for its
// label; it must comfortably exceed the monitors' batch flush interval.
const joinPendingTicks = 20

// NewJoinBolt creates a join of rightParser tuples against leftParser
// labels.
func NewJoinBolt(leftParser, rightParser string) *JoinBolt {
	return &JoinBolt{
		leftParser:   leftParser,
		rightParser:  rightParser,
		labels:       make(map[uint64]string),
		pendingRight: make(map[uint64]*pendingJoin),
		maxAge:       joinPendingTicks,
	}
}

// Execute implements Bolt.
func (b *JoinBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	switch t.Parser {
	case b.leftParser:
		if t.Key == "" {
			return
		}
		b.labels[t.FlowID] = t.Key
		if pend, ok := b.pendingRight[t.FlowID]; ok {
			delete(b.pendingRight, t.FlowID)
			for _, rt := range pend.tuples {
				rt.Key = t.Key
				emit(rt)
			}
		}
	case b.rightParser:
		if label, ok := b.labels[t.FlowID]; ok {
			t.Key = label
			emit(t)
			return
		}
		pend, ok := b.pendingRight[t.FlowID]
		if !ok {
			pend = &pendingJoin{}
			b.pendingRight[t.FlowID] = pend
		}
		pend.tuples = append(pend.tuples, t)
	}
}

// Tick implements Ticker: right tuples that never find a label are dropped
// after maxAge ticks so state stays bounded.
func (b *JoinBolt) Tick(emit EmitFunc) {
	for id, pend := range b.pendingRight {
		pend.age++
		if pend.age >= b.maxAge {
			delete(b.pendingRight, id)
		}
	}
}

// Cleanup implements Cleaner: at shutdown, pending rights get one last
// chance against the labels that have arrived.
func (b *JoinBolt) Cleanup(emit EmitFunc) {
	for id, pend := range b.pendingRight {
		if label, ok := b.labels[id]; ok {
			for _, rt := range pend.tuples {
				rt.Key = label
				emit(rt)
			}
		}
		delete(b.pendingRight, id)
	}
}

// PercentileBolt groups tuples by an attribute and emits latency-style
// percentile summaries per group on each tick — the building block behind
// server-side CDF queries (Figs. 12–15 compute these client-side; this bolt
// moves the reduction into the topology). Each emitted tuple carries the
// group in Key, the percentile in SrcPort (e.g. 50, 95, 99) and the value
// in Val.
type PercentileBolt struct {
	attr        string
	percentiles []float64
	rolling     bool
	maxSamples  int
	rngState    uint64
	samples     map[string][]float64
	seen        map[string]uint64 // samples offered per group (reservoir index)
}

// DefaultMaxPercentileSamples caps each group's sample buffer. Past the cap,
// reservoir sampling (Vitter's Algorithm R) keeps a uniform sample of the
// group's history, so percentiles stay unbiased estimates while memory stays
// bounded — cumulative-mode bolts on long soaks used to grow without bound.
const DefaultMaxPercentileSamples = 4096

// NewPercentileBolt creates a percentile bolt over the given group attribute
// ("" = one global group) and percentile list (default 50, 95, 99).
func NewPercentileBolt(attr string, percentiles []float64) *PercentileBolt {
	if len(percentiles) == 0 {
		percentiles = []float64{50, 95, 99}
	}
	return &PercentileBolt{
		attr:        attr,
		percentiles: percentiles,
		maxSamples:  DefaultMaxPercentileSamples,
		rngState:    0x9e3779b97f4a7c15,
		samples:     make(map[string][]float64),
		seen:        make(map[string]uint64),
	}
}

// SetRolling makes each tick's summary cover only that window's samples:
// the sample buffers reset after every flush instead of accumulating for the
// query's lifetime.
func (b *PercentileBolt) SetRolling(rolling bool) { b.rolling = rolling }

// SetMaxSamples overrides the per-group reservoir capacity (min 1). Larger
// reservoirs tighten tail percentiles at the cost of memory.
func (b *PercentileBolt) SetMaxSamples(n int) {
	if n >= 1 {
		b.maxSamples = n
	}
}

// nextRand is xorshift64*: deterministic, allocation-free randomness for the
// reservoir (bolts are per-task, so no locking and no global rng contention).
func (b *PercentileBolt) nextRand() uint64 {
	x := b.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	b.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// Execute implements Bolt.
func (b *PercentileBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	group := "all"
	if b.attr != "" {
		if g := t.Attr(b.attr); g != "" {
			group = g
		}
	}
	b.seen[group]++
	buf := b.samples[group]
	if len(buf) < b.maxSamples {
		b.samples[group] = append(buf, t.Val)
		return
	}
	// Reservoir full: replace a uniformly chosen slot with probability
	// cap/seen, keeping the retained set a uniform sample of the history.
	if j := b.nextRand() % b.seen[group]; j < uint64(b.maxSamples) {
		buf[j] = t.Val
	}
}

// Tick implements Ticker.
func (b *PercentileBolt) Tick(emit EmitFunc) { b.flush(emit) }

// Cleanup implements Cleaner.
func (b *PercentileBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *PercentileBolt) flush(emit EmitFunc) {
	for group, vals := range b.samples {
		if len(vals) == 0 {
			continue
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for _, p := range b.percentiles {
			emit(tuple.Tuple{
				Key:     group,
				SrcPort: uint16(p),
				Val:     percentileOf(sorted, p),
			})
		}
		if b.rolling {
			delete(b.samples, group)
			delete(b.seen, group)
		}
	}
}

// percentileOf returns the p-th percentile of sorted samples by linear
// interpolation.
func percentileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CallbackBolt invokes fn for every tuple; it is the usual terminal node
// delivering results to the query session.
type CallbackBolt struct {
	fn func(tuple.Tuple)
}

// NewCallbackBolt wraps fn as a bolt.
func NewCallbackBolt(fn func(tuple.Tuple)) *CallbackBolt {
	return &CallbackBolt{fn: fn}
}

// Execute implements Bolt.
func (b *CallbackBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	if b.fn != nil {
		b.fn(t)
	}
}

// ExecuteBatch implements BatchBolt.
func (b *CallbackBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	if b.fn == nil {
		return
	}
	for i := range ts {
		b.fn(ts[i])
	}
}

// BatchPoller abstracts the aggregation layer a KafkaSpout pulls from;
// *mq.Consumer satisfies it.
type BatchPoller interface {
	Poll(max int) []*tuple.Batch
}

// WaitPoller is a BatchPoller that can block until data arrives instead of
// returning empty; *mq.Consumer satisfies it via its wakeup-driven PollWait.
type WaitPoller interface {
	BatchPoller
	PollWait(max int, timeout time.Duration) []*tuple.Batch
}

// FlattenBatches copies polled batches into one contiguous tuple slice —
// the shape spouts hand to the executor's batch path.
func FlattenBatches(batches []*tuple.Batch) []tuple.Tuple {
	if len(batches) == 0 {
		return nil
	}
	n := 0
	for _, b := range batches {
		n += len(b.Tuples)
	}
	out := make([]tuple.Tuple, 0, n)
	for _, b := range batches {
		out = append(out, b.Tuples...)
	}
	return out
}

// KafkaSpout adapts an aggregation-layer consumer into a spout (the Kafka
// spouts of Fig. 4).
type KafkaSpout struct {
	poller BatchPoller
	max    int
}

// NewKafkaSpout wraps a consumer; max bounds batches per Next call.
func NewKafkaSpout(poller BatchPoller, max int) *KafkaSpout {
	if max < 1 {
		max = 16
	}
	return &KafkaSpout{poller: poller, max: max}
}

// Next implements Spout.
func (s *KafkaSpout) Next() []tuple.Tuple {
	return FlattenBatches(s.poller.Poll(s.max))
}

// NextWait implements WaitSpout: when the poller supports blocking polls
// (mq consumers do) the spout parks in it; otherwise it falls back to a
// short sleep-then-poll so behavior degrades to the old retry loop.
func (s *KafkaSpout) NextWait(timeout time.Duration) []tuple.Tuple {
	if wp, ok := s.poller.(WaitPoller); ok {
		return FlattenBatches(wp.PollWait(s.max, timeout))
	}
	if timeout > time.Millisecond {
		timeout = time.Millisecond
	}
	time.Sleep(timeout)
	return s.Next()
}
