package stream

import (
	"fmt"
	"strconv"
	"time"

	"netalytics/internal/tuple"
)

// ProcessorSpec names a prebuilt topology and its arguments, as produced by
// a query's PROCESS clause, e.g. (top-k: k=10, w=10s) or
// (diff-group: group=destIP).
type ProcessorSpec struct {
	Name string
	Args map[string]string
}

// Arg returns a named argument or the default.
func (s ProcessorSpec) Arg(name, def string) string {
	if v, ok := s.Args[name]; ok {
		return v
	}
	return def
}

// IntArg returns a named integer argument or the default.
func (s ProcessorSpec) IntArg(name string, def int) (int, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("stream: argument %s=%q is not an integer", name, v)
	}
	return n, nil
}

// BoolArg returns a named boolean argument ("true"/"false", "1"/"0") or the
// default.
func (s ProcessorSpec) BoolArg(name string, def bool) (bool, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("stream: argument %s=%q is not a boolean", name, v)
	}
	return b, nil
}

// DurationArg returns a named duration argument (e.g. "10s") or the default.
func (s ProcessorSpec) DurationArg(name string, def time.Duration) (time.Duration, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("stream: argument %s=%q is not a duration", name, v)
	}
	return d, nil
}

// ProcessorNames lists the prebuilt topologies a PROCESS clause may use.
func ProcessorNames() []string {
	return []string{"top-k", "diff", "diff-group", "diff-group-avg", "diff-percentile", "join", "join-group", "group-sum", "group-avg", "group-count", "passthrough"}
}

// BuildTopology assembles a named topology reading from spouts built by
// spoutFactory (spoutPar tasks) and delivering results to out. For "top-k"
// the result tuples are encoded rankings (use DecodeRankings); for the
// grouping topologies each result tuple is one (group, aggregate) pair per
// window.
//
// tick is the executor tick interval the topology will run with; window
// arguments (w=10s) are converted into rolling-count slots against it.
//
// The built topologies need no batching awareness: the executor moves
// sub-batches between tasks and unrolls them for bolts that only implement
// Execute, while bolts with an ExecuteBatch fast path (the parsing,
// counting, grouping, and callback blocks here) receive whole sub-batches.
func BuildTopology(spec ProcessorSpec, spoutFactory func() Spout, spoutPar int, out func(tuple.Tuple), tick time.Duration) (*Topology, error) {
	if tick <= 0 {
		tick = DefaultTickInterval
	}
	topo := NewTopology(spec.Name)
	if err := topo.AddSpout("spout", spoutFactory, spoutPar); err != nil {
		return nil, err
	}
	sink := func() Bolt { return NewCallbackBolt(out) }

	tasks, err := spec.IntArg("tasks", 2)
	if err != nil {
		return nil, err
	}

	switch spec.Name {
	case "top-k":
		k, err := spec.IntArg("k", 10)
		if err != nil {
			return nil, err
		}
		window, err := spec.DurationArg("w", 10*tick)
		if err != nil {
			return nil, err
		}
		slots := int(window / tick)
		if slots < 1 {
			slots = 1
		}
		if slots > 600 {
			slots = 600
		}
		if err := topo.AddBolt("parse", func() Bolt { return &ParseBolt{} }, tasks).
			ShuffleFrom("spout").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("count", func() Bolt { return NewRollingCountBolt(slots) }, tasks).
			FieldsFrom("parse", "").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("rank", func() Bolt { return NewRankBolt(k) }, tasks).
			FieldsFrom("count", "").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("merge", func() Bolt { return NewRankBolt(k) }, 1).
			GlobalFrom("rank").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("merge").Err(); err != nil {
			return nil, err
		}

	case "diff":
		// Raw per-pair differences, e.g. one tuple per TCP connection with
		// its duration — the input for client-side histograms and CDFs.
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("diff").Err(); err != nil {
			return nil, err
		}

	case "diff-group", "diff-group-avg":
		group := spec.Arg("group", "dstIP")
		agg, err := parseAgg(spec.Arg("agg", "avg"))
		if err != nil {
			return nil, err
		}
		// rolling=true resets the aggregates every tick, turning the output
		// into per-window values instead of cumulative ones — what a
		// detector wants, since cumulative averages dilute shifts away.
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt(group, agg, rolling) }, tasks).
			FieldsFrom("diff", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "diff-percentile":
		// Connection durations reduced to per-group percentile summaries
		// inside the topology, e.g. (diff-percentile: group=get).
		group := spec.Arg("group", "dstIP")
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("pct", func() Bolt {
			b := NewPercentileBolt(group, nil)
			b.SetRolling(rolling)
			return b
		}, tasks).
			FieldsFrom("diff", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("pct").Err(); err != nil {
			return nil, err
		}

	case "join", "join-group":
		// (join: left=http_get, right=tcp_pkt_size) relabels right-parser
		// tuples with the left parser's key per flow; join-group follows
		// with an aggregation by that key.
		left := spec.Arg("left", "http_get")
		right := spec.Arg("right", "tcp_pkt_size")
		if err := topo.AddBolt("join", func() Bolt { return NewJoinBolt(left, right) }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if spec.Name == "join" {
			if err := topo.AddBolt("sink", sink, 1).GlobalFrom("join").Err(); err != nil {
				return nil, err
			}
			break
		}
		agg, err := parseAgg(spec.Arg("agg", "sum"))
		if err != nil {
			return nil, err
		}
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt("key", agg, rolling) }, tasks).
			FieldsFrom("join", "key").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "group-sum", "group-avg", "group-count":
		group := spec.Arg("group", "dstIP")
		def := map[string]string{"group-sum": "sum", "group-avg": "avg", "group-count": "count"}[spec.Name]
		agg, err := parseAgg(spec.Arg("agg", def))
		if err != nil {
			return nil, err
		}
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt(group, agg, rolling) }, tasks).
			FieldsFrom("spout", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "passthrough":
		if err := topo.AddBolt("sink", sink, 1).ShuffleFrom("spout").Err(); err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("stream: unknown processor %q", spec.Name)
	}
	return topo, nil
}

func parseAgg(name string) (Agg, error) {
	switch name {
	case "sum":
		return AggSum, nil
	case "avg":
		return AggAvg, nil
	case "max":
		return AggMax, nil
	case "min":
		return AggMin, nil
	case "count":
		return AggCount, nil
	default:
		return 0, fmt.Errorf("stream: unknown aggregation %q", name)
	}
}
