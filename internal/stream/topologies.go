package stream

import (
	"fmt"
	"strconv"
	"time"

	"netalytics/internal/sketch"
	"netalytics/internal/tuple"
)

// ProcessorSpec names a prebuilt topology and its arguments, as produced by
// a query's PROCESS clause, e.g. (top-k: k=10, w=10s) or
// (diff-group: group=destIP).
type ProcessorSpec struct {
	Name string
	Args map[string]string
}

// Arg returns a named argument or the default.
func (s ProcessorSpec) Arg(name, def string) string {
	if v, ok := s.Args[name]; ok {
		return v
	}
	return def
}

// IntArg returns a named integer argument or the default.
func (s ProcessorSpec) IntArg(name string, def int) (int, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("stream: argument %s=%q is not an integer", name, v)
	}
	return n, nil
}

// BoolArg returns a named boolean argument ("true"/"false", "1"/"0") or the
// default.
func (s ProcessorSpec) BoolArg(name string, def bool) (bool, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("stream: argument %s=%q is not a boolean", name, v)
	}
	return b, nil
}

// DurationArg returns a named duration argument (e.g. "10s") or the default.
func (s ProcessorSpec) DurationArg(name string, def time.Duration) (time.Duration, error) {
	v, ok := s.Args[name]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("stream: argument %s=%q is not a duration", name, v)
	}
	return d, nil
}

// ProcessorNames lists the prebuilt topologies a PROCESS clause may use.
func ProcessorNames() []string {
	return []string{"top-k", "diff", "diff-group", "diff-group-avg", "diff-percentile", "join", "join-group", "group-sum", "group-avg", "group-count", "distinct-count", "passthrough"}
}

// TopologyOptions selects deployment-wide topology construction defaults —
// today, whether the counting pipelines are built from bounded-memory
// mergeable sketches instead of exact per-key state (see "Sketch analytics"
// in DESIGN.md). A query can override the mode per processor with the
// sketch=true/false argument.
type TopologyOptions struct {
	// Sketch builds top-k, group-sum/group-count and distinct-count from
	// partition-local sketch bolts plus an O(parallelism) merge stage, in
	// place of exact hash-map bolts behind a global-grouping shuffle.
	Sketch bool
	// SketchTopKCapacity is the space-saving counter budget for top-k
	// pipelines; 0 derives sketch.DefaultCapacity(k) from the query's k.
	SketchTopKCapacity int
	// CountMinDepth/CountMinWidth size the count-min grid of counting
	// pipelines; 0 uses DefaultCountMinDepth/DefaultCountMinWidth.
	CountMinDepth int
	CountMinWidth int
	// HLLPrecision is the distinct-count register exponent; 0 uses
	// sketch.DefaultHLLPrecision.
	HLLPrecision int
}

// Count-min defaults: depth 4 → δ = e⁻⁴ ≈ 1.8%, width 2048 → ε ≈ 0.13% of
// the window's total weight, 64 KB per task.
const (
	DefaultCountMinDepth = 4
	DefaultCountMinWidth = 2048
)

func (o TopologyOptions) withDefaults() TopologyOptions {
	if o.CountMinDepth <= 0 {
		o.CountMinDepth = DefaultCountMinDepth
	}
	if o.CountMinWidth <= 0 {
		o.CountMinWidth = DefaultCountMinWidth
	}
	if o.HLLPrecision <= 0 {
		o.HLLPrecision = sketch.DefaultHLLPrecision
	}
	return o
}

// topKCapacity resolves the space-saving budget for a top-k of k.
func (o TopologyOptions) topKCapacity(k int) int {
	if o.SketchTopKCapacity > 0 {
		return o.SketchTopKCapacity
	}
	return sketch.DefaultCapacity(k)
}

// BuildTopology assembles a named topology reading from spouts built by
// spoutFactory (spoutPar tasks) and delivering results to out. For "top-k"
// the result tuples are encoded rankings (use DecodeRankings); for the
// grouping topologies each result tuple is one (group, aggregate) pair per
// window.
//
// tick is the executor tick interval the topology will run with; window
// arguments (w=10s) are converted into rolling-count slots against it.
//
// The built topologies need no batching awareness: the executor moves
// sub-batches between tasks and unrolls them for bolts that only implement
// Execute, while bolts with an ExecuteBatch fast path (the parsing,
// counting, grouping, sketching, and callback blocks here) receive whole
// sub-batches.
func BuildTopology(spec ProcessorSpec, spoutFactory func() Spout, spoutPar int, out func(tuple.Tuple), tick time.Duration) (*Topology, error) {
	return BuildTopologyOpts(spec, spoutFactory, spoutPar, out, tick, TopologyOptions{})
}

// BuildTopologyOpts is BuildTopology with explicit construction options —
// the entry point the engine uses to honor core.Config.SketchAnalytics.
func BuildTopologyOpts(spec ProcessorSpec, spoutFactory func() Spout, spoutPar int, out func(tuple.Tuple), tick time.Duration, opts TopologyOptions) (*Topology, error) {
	if tick <= 0 {
		tick = DefaultTickInterval
	}
	opts = opts.withDefaults()
	topo := NewTopology(spec.Name)
	if err := topo.AddSpout("spout", spoutFactory, spoutPar); err != nil {
		return nil, err
	}
	sink := func() Bolt { return NewCallbackBolt(out) }

	tasks, err := spec.IntArg("tasks", 2)
	if err != nil {
		return nil, err
	}

	switch spec.Name {
	case "top-k":
		k, err := spec.IntArg("k", 10)
		if err != nil {
			return nil, err
		}
		window, err := spec.DurationArg("w", 10*tick)
		if err != nil {
			return nil, err
		}
		slots := int(window / tick)
		if slots < 1 {
			slots = 1
		}
		if slots > 600 {
			slots = 600
		}
		sketchOn, err := spec.BoolArg("sketch", opts.Sketch)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("parse", func() Bolt { return &ParseBolt{} }, tasks).
			ShuffleFrom("spout").Err(); err != nil {
			return nil, err
		}
		if sketchOn {
			// Sketch pipeline: partition-local space-saving summaries over a
			// shuffle (no per-key routing, no hot-key imbalance), merged per
			// tick by a combiner that sees O(tasks) sketches instead of every
			// tuple. O(capacity) memory regardless of distinct-key count.
			capacity, err := spec.IntArg("cap", opts.topKCapacity(k))
			if err != nil {
				return nil, err
			}
			if err := topo.AddBolt("sketch", func() Bolt { return NewSketchTopKBolt(capacity) }, tasks).
				ShuffleFrom("parse").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("merge", func() Bolt { return NewSketchTopKMergeBolt(k, capacity, slots) }, 1).
				GlobalFrom("sketch").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("sink", sink, 1).GlobalFrom("merge").Err(); err != nil {
				return nil, err
			}
			break
		}
		if err := topo.AddBolt("count", func() Bolt { return NewRollingCountBolt(slots) }, tasks).
			FieldsFrom("parse", "").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("rank", func() Bolt { return NewRankBolt(k) }, tasks).
			FieldsFrom("count", "").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("merge", func() Bolt { return NewRankBolt(k) }, 1).
			GlobalFrom("rank").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("merge").Err(); err != nil {
			return nil, err
		}

	case "diff":
		// Raw per-pair differences, e.g. one tuple per TCP connection with
		// its duration — the input for client-side histograms and CDFs.
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("diff").Err(); err != nil {
			return nil, err
		}

	case "diff-group", "diff-group-avg":
		group := spec.Arg("group", "dstIP")
		agg, err := parseAgg(spec.Arg("agg", "avg"))
		if err != nil {
			return nil, err
		}
		// rolling=true resets the aggregates every tick, turning the output
		// into per-window values instead of cumulative ones — what a
		// detector wants, since cumulative averages dilute shifts away.
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt(group, agg, rolling) }, tasks).
			FieldsFrom("diff", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "diff-percentile":
		// Connection durations reduced to per-group percentile summaries
		// inside the topology, e.g. (diff-percentile: group=get).
		group := spec.Arg("group", "dstIP")
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("diff", func() Bolt { return NewDiffBolt("", "") }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("pct", func() Bolt {
			b := NewPercentileBolt(group, nil)
			b.SetRolling(rolling)
			return b
		}, tasks).
			FieldsFrom("diff", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("pct").Err(); err != nil {
			return nil, err
		}

	case "join", "join-group":
		// (join: left=http_get, right=tcp_pkt_size) relabels right-parser
		// tuples with the left parser's key per flow; join-group follows
		// with an aggregation by that key.
		left := spec.Arg("left", "http_get")
		right := spec.Arg("right", "tcp_pkt_size")
		if err := topo.AddBolt("join", func() Bolt { return NewJoinBolt(left, right) }, tasks).
			FieldsFrom("spout", "flow").Err(); err != nil {
			return nil, err
		}
		if spec.Name == "join" {
			if err := topo.AddBolt("sink", sink, 1).GlobalFrom("join").Err(); err != nil {
				return nil, err
			}
			break
		}
		agg, err := parseAgg(spec.Arg("agg", "sum"))
		if err != nil {
			return nil, err
		}
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt("key", agg, rolling) }, tasks).
			FieldsFrom("join", "key").Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "group-sum", "group-avg", "group-count":
		group := spec.Arg("group", "dstIP")
		def := map[string]string{"group-sum": "sum", "group-avg": "avg", "group-count": "count"}[spec.Name]
		agg, err := parseAgg(spec.Arg("agg", def))
		if err != nil {
			return nil, err
		}
		rolling, err := spec.BoolArg("rolling", false)
		if err != nil {
			return nil, err
		}
		sketchOn, err := spec.BoolArg("sketch", opts.Sketch)
		if err != nil {
			return nil, err
		}
		// Only sum and count have a count-min form; avg/max/min stay exact
		// even in sketch mode (their group side is low-cardinality anyway).
		if sketchOn && (agg == AggSum || agg == AggCount) {
			candidates, err := spec.IntArg("cap", opts.topKCapacity(64))
			if err != nil {
				return nil, err
			}
			// rolling=true keeps per-tick windows (one slot); rolling=false
			// matches the exact bolt's cumulative aggregates (slots ≤ 0).
			slots := 0
			if rolling {
				slots = 1
			}
			if err := topo.AddBolt("sketch", func() Bolt {
				return NewSketchCountBolt(group, agg == AggSum, candidates, opts.CountMinDepth, opts.CountMinWidth)
			}, tasks).ShuffleFrom("spout").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("merge", func() Bolt { return NewSketchCountMergeBolt(candidates, slots) }, 1).
				GlobalFrom("sketch").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("sink", sink, 1).GlobalFrom("merge").Err(); err != nil {
				return nil, err
			}
			break
		}
		if err := topo.AddBolt("group", func() Bolt { return NewGroupBolt(group, agg, rolling) }, tasks).
			FieldsFrom("spout", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("group").Err(); err != nil {
			return nil, err
		}

	case "distinct-count":
		// Distinct values of one attribute per group of another — e.g.
		// (distinct-count: group=dstIP, over=srcIP) tallies distinct clients
		// per service. Sketch mode keeps one HLL per group per task; the
		// exact baseline keeps a set per group behind fields grouping.
		group := spec.Arg("group", "dstIP")
		over := spec.Arg("over", "srcIP")
		window, err := spec.DurationArg("w", 10*tick)
		if err != nil {
			return nil, err
		}
		slots := int(window / tick)
		if slots < 1 {
			slots = 1
		}
		if slots > 600 {
			slots = 600
		}
		sketchOn, err := spec.BoolArg("sketch", opts.Sketch)
		if err != nil {
			return nil, err
		}
		if sketchOn {
			precision, err := spec.IntArg("p", opts.HLLPrecision)
			if err != nil {
				return nil, err
			}
			if err := topo.AddBolt("sketch", func() Bolt { return NewDistinctCountBolt(group, over, precision) }, tasks).
				ShuffleFrom("spout").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("merge", func() Bolt { return NewDistinctCountMergeBolt(precision, slots) }, 1).
				GlobalFrom("sketch").Err(); err != nil {
				return nil, err
			}
			if err := topo.AddBolt("sink", sink, 1).GlobalFrom("merge").Err(); err != nil {
				return nil, err
			}
			break
		}
		if err := topo.AddBolt("distinct", func() Bolt { return NewExactDistinctBolt(group, over, slots) }, tasks).
			FieldsFrom("spout", group).Err(); err != nil {
			return nil, err
		}
		if err := topo.AddBolt("sink", sink, 1).GlobalFrom("distinct").Err(); err != nil {
			return nil, err
		}

	case "passthrough":
		if err := topo.AddBolt("sink", sink, 1).ShuffleFrom("spout").Err(); err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("stream: unknown processor %q", spec.Name)
	}
	return topo, nil
}

func parseAgg(name string) (Agg, error) {
	switch name {
	case "sum":
		return AggSum, nil
	case "avg":
		return AggAvg, nil
	case "max":
		return AggMax, nil
	case "min":
		return AggMin, nil
	case "count":
		return AggCount, nil
	default:
		return 0, fmt.Errorf("stream: unknown aggregation %q", name)
	}
}
