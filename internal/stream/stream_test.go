package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/tuple"
)

// sliceSpout emits a fixed tuple list once.
type sliceSpout struct {
	mu     sync.Mutex
	tuples []tuple.Tuple
	done   bool
}

func (s *sliceSpout) Next() []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	s.done = true
	return s.tuples
}

// gather collects sink tuples thread-safely.
type gather struct {
	mu  sync.Mutex
	out []tuple.Tuple
}

func (g *gather) add(t tuple.Tuple) {
	g.mu.Lock()
	g.out = append(g.out, t)
	g.mu.Unlock()
}

func (g *gather) tuples() []tuple.Tuple {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]tuple.Tuple(nil), g.out...)
}

func keyed(keys ...string) []tuple.Tuple {
	out := make([]tuple.Tuple, len(keys))
	for i, k := range keys {
		out[i] = tuple.Tuple{Key: k, Val: 1, FlowID: uint64(i)}
	}
	return out
}

func TestTopologyValidation(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		topo := NewTopology("t")
		if _, err := NewExecutor(topo); !errors.Is(err, ErrEmptyTopo) {
			t.Errorf("err = %v, want ErrEmptyTopo", err)
		}
	})
	t.Run("unconnected bolt", func(t *testing.T) {
		topo := NewTopology("t")
		_ = topo.AddSpout("s", func() Spout { return &sliceSpout{} }, 1)
		topo.AddBolt("b", func() Bolt { return &ParseBolt{} }, 1)
		if _, err := NewExecutor(topo); !errors.Is(err, ErrNotConnected) {
			t.Errorf("err = %v, want ErrNotConnected", err)
		}
	})
	t.Run("unknown upstream", func(t *testing.T) {
		topo := NewTopology("t")
		_ = topo.AddSpout("s", func() Spout { return &sliceSpout{} }, 1)
		topo.AddBolt("b", func() Bolt { return &ParseBolt{} }, 1).ShuffleFrom("ghost")
		if _, err := NewExecutor(topo); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("err = %v, want ErrUnknownNode", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		topo := NewTopology("t")
		_ = topo.AddSpout("s", func() Spout { return &sliceSpout{} }, 1)
		topo.AddBolt("a", func() Bolt { return &ParseBolt{} }, 1).ShuffleFrom("s").ShuffleFrom("b")
		topo.AddBolt("b", func() Bolt { return &ParseBolt{} }, 1).ShuffleFrom("a")
		if _, err := NewExecutor(topo); !errors.Is(err, ErrCycle) {
			t.Errorf("err = %v, want ErrCycle", err)
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		topo := NewTopology("t")
		_ = topo.AddSpout("x", func() Spout { return &sliceSpout{} }, 1)
		if err := topo.AddSpout("x", func() Spout { return &sliceSpout{} }, 1); !errors.Is(err, ErrDuplicate) {
			t.Errorf("spout dup err = %v", err)
		}
		if err := topo.AddBolt("x", func() Bolt { return &ParseBolt{} }, 1).ShuffleFrom("x").Err(); !errors.Is(err, ErrDuplicate) {
			t.Errorf("bolt dup err = %v", err)
		}
	})
}

// run executes a topology until all input drains, then stops it.
func run(t *testing.T, topo *Topology, opts ...ExecutorOption) *Executor {
	t.Helper()
	ex, err := NewExecutor(topo, opts...)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Start()
	time.Sleep(50 * time.Millisecond) // let the spout drain through
	ex.Stop()
	return ex
}

func TestWordCountEndToEnd(t *testing.T) {
	spout := &sliceSpout{tuples: keyed("a", "b", "a", "c", "a", "b")}
	g := &gather{}
	topo := NewTopology("wordcount")
	_ = topo.AddSpout("s", func() Spout { return spout }, 1)
	if err := topo.AddBolt("count", func() Bolt { return NewGroupBolt("key", AggCount, false) }, 3).
		FieldsFrom("s", "key").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("sink", func() Bolt { return NewCallbackBolt(g.add) }, 1).
		GlobalFrom("count").Err(); err != nil {
		t.Fatal(err)
	}
	run(t, topo, WithTickInterval(time.Hour)) // only cleanup flushes

	counts := map[string]float64{}
	for _, tu := range g.tuples() {
		counts[tu.Key] = tu.Val // cumulative: last write wins
	}
	want := map[string]float64{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %v, want %v", k, counts[k], v)
		}
	}
}

func TestFieldsGroupingRoutesConsistently(t *testing.T) {
	// With 4 stateful counting tasks, per-key counts must still be exact,
	// proving all tuples of one key reach one task.
	var tuples []tuple.Tuple
	for i := 0; i < 200; i++ {
		tuples = append(tuples, tuple.Tuple{Key: fmt.Sprintf("k%d", i%10), Val: 1})
	}
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo := NewTopology("t")
	_ = topo.AddSpout("s", func() Spout { return spout }, 1)
	_ = topo.AddBolt("count", func() Bolt { return NewGroupBolt("key", AggCount, false) }, 4).
		FieldsFrom("s", "key").Err()
	_ = topo.AddBolt("sink", func() Bolt { return NewCallbackBolt(g.add) }, 1).
		GlobalFrom("count").Err()
	run(t, topo, WithTickInterval(time.Hour))

	counts := map[string]float64{}
	for _, tu := range g.tuples() {
		counts[tu.Key] = tu.Val
	}
	if len(counts) != 10 {
		t.Fatalf("got %d keys, want 10: %v", len(counts), counts)
	}
	for k, v := range counts {
		if v != 20 {
			t.Errorf("count[%s] = %v, want 20 (key split across tasks?)", k, v)
		}
	}
}

func TestShuffleDistributesAcrossTasks(t *testing.T) {
	var mu sync.Mutex
	perTask := map[int]int{}
	var nextID int
	factory := func() Bolt {
		mu.Lock()
		id := nextID
		nextID++
		mu.Unlock()
		return BoltFunc(func(tuple.Tuple, EmitFunc) {
			mu.Lock()
			perTask[id]++
			mu.Unlock()
		})
	}
	spout := &sliceSpout{tuples: keyed(make([]string, 100)...)}
	topo := NewTopology("t")
	_ = topo.AddSpout("s", func() Spout { return spout }, 1)
	_ = topo.AddBolt("b", factory, 4).ShuffleFrom("s").Err()
	run(t, topo)

	mu.Lock()
	defer mu.Unlock()
	if len(perTask) != 4 {
		t.Fatalf("tuples reached %d tasks, want 4: %v", len(perTask), perTask)
	}
	for id, n := range perTask {
		if n != 25 {
			t.Errorf("task %d got %d tuples, want 25 (round-robin)", id, n)
		}
	}
}

func TestRollingCountWindowExpiry(t *testing.T) {
	b := NewRollingCountBolt(2)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }

	b.Execute(tuple.Tuple{Key: "x", Val: 3}, emit)
	b.Tick(emit) // emits x=3, advances
	if len(got) != 1 || got[0].Val != 3 {
		t.Fatalf("after first tick: %+v", got)
	}
	got = nil
	b.Execute(tuple.Tuple{Key: "x"}, emit) // Val 0 counts as 1
	b.Tick(emit)                           // window still holds 3+1
	if len(got) != 1 || got[0].Val != 4 {
		t.Fatalf("after second tick: %+v", got)
	}
	got = nil
	b.Tick(emit) // slot with 3 expired; only the 1 remains
	if len(got) != 1 || got[0].Val != 1 {
		t.Fatalf("after third tick: %+v", got)
	}
	got = nil
	b.Tick(emit) // everything expired: key evicted, nothing emitted
	if len(got) != 0 {
		t.Fatalf("after expiry: %+v", got)
	}
}

func TestRankBoltTopKOrder(t *testing.T) {
	b := NewRankBolt(3)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	for key, count := range map[string]float64{"a": 5, "b": 9, "c": 1, "d": 7, "e": 3} {
		b.Execute(tuple.Tuple{Key: key, Val: count}, emit)
	}
	b.Tick(emit)
	if len(got) != 1 {
		t.Fatalf("emitted %d tuples, want 1 encoded ranking", len(got))
	}
	entries, ok := DecodeRankings(got[0])
	if !ok {
		t.Fatal("tuple is not a ranking")
	}
	want := []RankEntry{{"b", 9}, {"d", 7}, {"a", 5}}
	if len(entries) != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, entries[i], want[i])
		}
	}
	// State resets after flush.
	got = nil
	b.Tick(emit)
	if len(got) != 0 {
		t.Errorf("rank emitted %+v after reset", got)
	}
}

func TestRankBoltMergesRankings(t *testing.T) {
	merge := NewRankBolt(2)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	merge.Execute(EncodeRankings([]RankEntry{{"a", 5}, {"b", 2}}), emit)
	merge.Execute(EncodeRankings([]RankEntry{{"c", 9}}), emit)
	merge.Tick(emit)
	entries, ok := DecodeRankings(got[0])
	if !ok || len(entries) != 2 || entries[0].Key != "c" || entries[1].Key != "a" {
		t.Errorf("merged = %+v", entries)
	}
}

func TestDecodeRankingsRejectsPlainTuples(t *testing.T) {
	if _, ok := DecodeRankings(tuple.Tuple{Key: "just a url"}); ok {
		t.Error("plain tuple decoded as rankings")
	}
}

func TestDiffBolt(t *testing.T) {
	b := NewDiffBolt("", "")
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{FlowID: 1, Key: "start", Val: 100, DstIP: "10.0.0.1"}, emit)
	b.Execute(tuple.Tuple{FlowID: 2, Key: "end", Val: 300}, emit) // no start: dropped
	b.Execute(tuple.Tuple{FlowID: 1, Key: "end", Val: 250, DstIP: "10.0.0.1"}, emit)
	if len(got) != 0 {
		t.Fatalf("unlabeled diff emitted before tick: %+v", got)
	}
	// Unlabeled diffs flush after a full tick.
	b.Tick(emit)
	b.Tick(emit)
	if len(got) != 1 {
		t.Fatalf("emitted %d after ticks, want 1", len(got))
	}
	if got[0].Val != 150 || got[0].Key != "diff" || got[0].DstIP != "10.0.0.1" {
		t.Errorf("diff tuple = %+v", got[0])
	}
	// Each pair fires once.
	b.Execute(tuple.Tuple{FlowID: 1, Key: "end", Val: 400}, emit)
	b.Cleanup(emit)
	if len(got) != 1 {
		t.Errorf("duplicate end re-emitted: %+v", got)
	}
}

func TestDiffBoltLateLabel(t *testing.T) {
	// The label arriving after the end tuple (cross-topic reordering) must
	// still join, as long as it beats the tick flush.
	b := NewDiffBolt("", "")
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{FlowID: 3, Key: "start", Val: 100}, emit)
	b.Execute(tuple.Tuple{FlowID: 3, Key: "end", Val: 180}, emit)
	b.Execute(tuple.Tuple{FlowID: 3, Key: "/late.php"}, emit)
	if len(got) != 1 || got[0].Key != "/late.php" || got[0].Val != 80 {
		t.Fatalf("late-label join = %+v", got)
	}
}

func TestDiffBoltJoinsLabels(t *testing.T) {
	// §7.2: http_get URL tuples and tcp_conn_time start/end tuples share a
	// flow ID; the diff must come out keyed by the URL.
	b := NewDiffBolt("", "")
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{FlowID: 9, Key: "start", Val: 1000}, emit)
	b.Execute(tuple.Tuple{FlowID: 9, Key: "/films/slow.php", Parser: "http_get"}, emit)
	b.Execute(tuple.Tuple{FlowID: 9, Key: "", Val: 200}, emit) // response tuple: ignored
	b.Execute(tuple.Tuple{FlowID: 9, Key: "end", Val: 4000}, emit)
	if len(got) != 1 {
		t.Fatalf("emitted %d, want 1", len(got))
	}
	if got[0].Key != "/films/slow.php" || got[0].Val != 3000 {
		t.Errorf("joined diff = %+v", got[0])
	}
}

func TestGroupBoltAggregations(t *testing.T) {
	samples := []tuple.Tuple{
		{DstIP: "h1", Val: 10},
		{DstIP: "h1", Val: 30},
		{DstIP: "h2", Val: 5},
	}
	tests := []struct {
		agg  Agg
		want map[string]float64
	}{
		{AggSum, map[string]float64{"h1": 40, "h2": 5}},
		{AggAvg, map[string]float64{"h1": 20, "h2": 5}},
		{AggMax, map[string]float64{"h1": 30, "h2": 5}},
		{AggMin, map[string]float64{"h1": 10, "h2": 5}},
		{AggCount, map[string]float64{"h1": 2, "h2": 1}},
	}
	for _, tt := range tests {
		b := NewGroupBolt("dstIP", tt.agg, false)
		var got []tuple.Tuple
		emit := func(t tuple.Tuple) { got = append(got, t) }
		for _, s := range samples {
			b.Execute(s, emit)
		}
		b.Cleanup(emit)
		result := map[string]float64{}
		for _, tu := range got {
			result[tu.Key] = tu.Val
		}
		for k, v := range tt.want {
			if result[k] != v {
				t.Errorf("agg %d: result[%s] = %v, want %v", tt.agg, k, result[k], v)
			}
		}
	}
}

func TestJoinBolt(t *testing.T) {
	b := NewJoinBolt("http_get", "tcp_pkt_size")
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }

	// Label first, then right tuples.
	b.Execute(tuple.Tuple{FlowID: 1, Parser: "http_get", Key: "/a"}, emit)
	b.Execute(tuple.Tuple{FlowID: 1, Parser: "tcp_pkt_size", Key: "size", Val: 100}, emit)
	b.Execute(tuple.Tuple{FlowID: 1, Parser: "tcp_pkt_size", Key: "size", Val: 200}, emit)
	if len(got) != 2 || got[0].Key != "/a" || got[1].Val != 200 {
		t.Fatalf("labeled joins = %+v", got)
	}

	// Right before left: buffered until the label lands.
	got = nil
	b.Execute(tuple.Tuple{FlowID: 2, Parser: "tcp_pkt_size", Val: 50}, emit)
	if len(got) != 0 {
		t.Fatalf("unlabeled right emitted early: %+v", got)
	}
	b.Execute(tuple.Tuple{FlowID: 2, Parser: "http_get", Key: "/b"}, emit)
	if len(got) != 1 || got[0].Key != "/b" || got[0].Val != 50 {
		t.Fatalf("late-label join = %+v", got)
	}

	// Unkeyed left tuples (HTTP responses) and stale rights are ignored.
	got = nil
	b.Execute(tuple.Tuple{FlowID: 3, Parser: "http_get", Key: ""}, emit)
	b.Execute(tuple.Tuple{FlowID: 4, Parser: "tcp_pkt_size", Val: 9}, emit)
	for i := 0; i < joinPendingTicks; i++ {
		b.Tick(emit) // ages flow 4's pending tuple out
	}
	b.Execute(tuple.Tuple{FlowID: 4, Parser: "http_get", Key: "/late"}, emit)
	if len(got) != 0 {
		t.Fatalf("unexpected emissions: %+v", got)
	}

	// Cleanup joins pendings whose label already arrived.
	b.Execute(tuple.Tuple{FlowID: 5, Parser: "tcp_pkt_size", Val: 3}, emit)
	b.Execute(tuple.Tuple{FlowID: 5, Parser: "http_get", Key: "/c"}, emit) // joins immediately
	b.Execute(tuple.Tuple{FlowID: 6, Parser: "tcp_pkt_size", Val: 4}, emit)
	got = nil
	b.Cleanup(emit)
	if len(got) != 0 {
		t.Fatalf("cleanup emitted unlabeled rights: %+v", got)
	}
}

func TestBuildTopologyJoinGroup(t *testing.T) {
	tuples := []tuple.Tuple{
		{FlowID: 1, Parser: "http_get", Key: "/big"},
		{FlowID: 1, Parser: "tcp_pkt_size", Val: 1000},
		{FlowID: 1, Parser: "tcp_pkt_size", Val: 500},
		{FlowID: 2, Parser: "http_get", Key: "/small"},
		{FlowID: 2, Parser: "tcp_pkt_size", Val: 10},
	}
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo, err := BuildTopology(
		ProcessorSpec{Name: "join-group", Args: map[string]string{"left": "http_get", "right": "tcp_pkt_size"}},
		func() Spout { return spout }, 1, g.add, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(50 * time.Millisecond)
	ex.Stop()

	sums := map[string]float64{}
	for _, tu := range g.tuples() {
		sums[tu.Key] = tu.Val
	}
	if sums["/big"] != 1500 || sums["/small"] != 10 {
		t.Errorf("per-url byte sums = %v", sums)
	}
}

func TestPercentileBolt(t *testing.T) {
	b := NewPercentileBolt("dstIP", []float64{50, 100})
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	for i := 1; i <= 100; i++ {
		b.Execute(tuple.Tuple{DstIP: "h1", Val: float64(i)}, emit)
	}
	b.Execute(tuple.Tuple{DstIP: "h2", Val: 7}, emit)
	b.Tick(emit)

	result := map[string]map[uint16]float64{}
	for _, tu := range got {
		if result[tu.Key] == nil {
			result[tu.Key] = map[uint16]float64{}
		}
		result[tu.Key][tu.SrcPort] = tu.Val
	}
	if p50 := result["h1"][50]; p50 < 50 || p50 > 51 {
		t.Errorf("h1 p50 = %v, want ~50.5", p50)
	}
	if p100 := result["h1"][100]; p100 != 100 {
		t.Errorf("h1 p100 = %v, want 100", p100)
	}
	if p50 := result["h2"][50]; p50 != 7 {
		t.Errorf("h2 p50 = %v, want 7", p50)
	}
}

func TestPercentileBoltDefaults(t *testing.T) {
	b := NewPercentileBolt("", nil)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{Val: 5}, emit)
	b.Cleanup(emit)
	if len(got) != 3 { // default p50/p95/p99
		t.Fatalf("emitted %d, want 3", len(got))
	}
	for _, tu := range got {
		if tu.Key != "all" || tu.Val != 5 {
			t.Errorf("tuple = %+v", tu)
		}
	}
}

func TestBuildTopologyDiffPercentile(t *testing.T) {
	var tuples []tuple.Tuple
	for i := 0; i < 20; i++ {
		tuples = append(tuples,
			tuple.Tuple{FlowID: uint64(i), Key: "start", Val: 0, DstIP: "h1"},
			tuple.Tuple{FlowID: uint64(i), Key: "end", Val: float64((i + 1) * 10), DstIP: "h1"},
		)
	}
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo, err := BuildTopology(
		ProcessorSpec{Name: "diff-percentile", Args: map[string]string{"group": "dstIP"}},
		func() Spout { return spout }, 1, g.add, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(50 * time.Millisecond)
	ex.Stop()

	pcts := map[uint16]float64{}
	for _, tu := range g.tuples() {
		if tu.Key == "h1" {
			pcts[tu.SrcPort] = tu.Val
		}
	}
	if len(pcts) != 3 {
		t.Fatalf("percentiles = %v, want p50/p95/p99", pcts)
	}
	if pcts[50] < 100 || pcts[50] > 110 {
		t.Errorf("p50 = %v, want ~105", pcts[50])
	}
	if pcts[99] < pcts[95] || pcts[95] < pcts[50] {
		t.Errorf("percentiles not monotone: %v", pcts)
	}
}

func TestGroupBoltRollingResets(t *testing.T) {
	b := NewGroupBolt("", AggSum, true)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{Val: 5}, emit)
	b.Tick(emit)
	if len(got) != 1 || got[0].Key != "all" || got[0].Val != 5 {
		t.Fatalf("first window: %+v", got)
	}
	got = nil
	b.Tick(emit)
	if len(got) != 0 {
		t.Errorf("rolling group emitted %+v after reset", got)
	}
}

func TestGroupBoltNegativeAggMinZero(t *testing.T) {
	// Regression guard: first value must seed max/min even if extreme.
	b := NewGroupBolt("", AggMin, false)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	b.Execute(tuple.Tuple{Val: -7}, emit)
	b.Execute(tuple.Tuple{Val: 3}, emit)
	b.Cleanup(emit)
	if len(got) != 1 || got[0].Val != -7 {
		t.Errorf("min = %+v, want -7", got)
	}
}

type fakePoller struct {
	mu      sync.Mutex
	batches []*tuple.Batch
}

func (f *fakePoller) Poll(max int) []*tuple.Batch {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.batches) == 0 {
		return nil
	}
	if max > len(f.batches) {
		max = len(f.batches)
	}
	out := f.batches[:max]
	f.batches = f.batches[max:]
	return out
}

func TestKafkaSpout(t *testing.T) {
	p := &fakePoller{batches: []*tuple.Batch{
		{Tuples: keyed("a", "b")},
		{Tuples: keyed("c")},
	}}
	s := NewKafkaSpout(p, 8)
	got := s.Next()
	if len(got) != 3 {
		t.Errorf("Next = %d tuples, want 3", len(got))
	}
	if s.Next() != nil {
		t.Error("drained spout returned tuples")
	}
}

func TestBuildTopologyTopK(t *testing.T) {
	urls := []string{"a", "a", "a", "b", "b", "c"}
	spout := &sliceSpout{tuples: keyed(urls...)}
	g := &gather{}
	topo, err := BuildTopology(
		ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "2", "w": "1h"}},
		func() Spout { return spout }, 1, g.add, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(150 * time.Millisecond)
	ex.Stop()

	var last []RankEntry
	for _, tu := range g.tuples() {
		if entries, ok := DecodeRankings(tu); ok && len(entries) > 0 {
			last = entries
		}
	}
	if len(last) != 2 {
		t.Fatalf("final ranking = %+v, want 2 entries", last)
	}
	if last[0].Key != "a" || last[0].Count != 3 {
		t.Errorf("top entry = %+v, want a:3", last[0])
	}
	if last[1].Key != "b" || last[1].Count != 2 {
		t.Errorf("second entry = %+v, want b:2", last[1])
	}
}

func TestBuildTopologyDiffGroup(t *testing.T) {
	tuples := []tuple.Tuple{
		{FlowID: 1, Key: "start", Val: 100, DstIP: "h1"},
		{FlowID: 1, Key: "end", Val: 400, DstIP: "h1"},
		{FlowID: 2, Key: "start", Val: 100, DstIP: "h1"},
		{FlowID: 2, Key: "end", Val: 200, DstIP: "h1"},
		{FlowID: 3, Key: "start", Val: 0, DstIP: "h2"},
		{FlowID: 3, Key: "end", Val: 50, DstIP: "h2"},
	}
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo, err := BuildTopology(
		ProcessorSpec{Name: "diff-group", Args: map[string]string{"group": "dstIP"}},
		func() Spout { return spout }, 1, g.add, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(50 * time.Millisecond)
	ex.Stop()

	result := map[string]float64{}
	for _, tu := range g.tuples() {
		result[tu.Key] = tu.Val
	}
	if result["h1"] != 200 { // avg(300, 100)
		t.Errorf("h1 avg = %v, want 200", result["h1"])
	}
	if result["h2"] != 50 {
		t.Errorf("h2 avg = %v, want 50", result["h2"])
	}
}

func TestBuildTopologyGroupSum(t *testing.T) {
	tuples := []tuple.Tuple{
		{DstIP: "db", Val: 100}, {DstIP: "db", Val: 200}, {DstIP: "cache", Val: 10},
	}
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo, err := BuildTopology(
		ProcessorSpec{Name: "group-sum", Args: map[string]string{"group": "dstIP"}},
		func() Spout { return spout }, 1, g.add, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(50 * time.Millisecond)
	ex.Stop()

	result := map[string]float64{}
	for _, tu := range g.tuples() {
		result[tu.Key] = tu.Val
	}
	if result["db"] != 300 || result["cache"] != 10 {
		t.Errorf("sums = %v", result)
	}
}

func TestBuildTopologyErrors(t *testing.T) {
	spout := func() Spout { return &sliceSpout{} }
	out := func(tuple.Tuple) {}
	if _, err := BuildTopology(ProcessorSpec{Name: "nope"}, spout, 1, out, 0); err == nil {
		t.Error("unknown processor accepted")
	}
	if _, err := BuildTopology(ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "x"}}, spout, 1, out, 0); err == nil {
		t.Error("bad k accepted")
	}
	if _, err := BuildTopology(ProcessorSpec{Name: "top-k", Args: map[string]string{"w": "x"}}, spout, 1, out, 0); err == nil {
		t.Error("bad window accepted")
	}
	if _, err := BuildTopology(ProcessorSpec{Name: "group-sum", Args: map[string]string{"agg": "median"}}, spout, 1, out, 0); err == nil {
		t.Error("bad agg accepted")
	}
}

func TestExecutorCountsAndTaskCount(t *testing.T) {
	spout := &sliceSpout{tuples: keyed("a", "b", "c")}
	g := &gather{}
	topo := NewTopology("t")
	_ = topo.AddSpout("s", func() Spout { return spout }, 2)
	_ = topo.AddBolt("sink", func() Bolt { return NewCallbackBolt(g.add) }, 3).ShuffleFrom("s").Err()
	ex := run(t, topo)

	if got := ex.TaskCount(); got != 5 {
		t.Errorf("TaskCount = %d, want 5", got)
	}
	if got := ex.Processed("s"); got != 3 {
		t.Errorf("Processed(s) = %d, want 3", got)
	}
	if got := ex.Processed("ghost"); got != 0 {
		t.Errorf("Processed(ghost) = %d, want 0", got)
	}
	if len(g.tuples()) != 3 {
		t.Errorf("sink got %d tuples, want 3", len(g.tuples()))
	}
}

// TestTupleConservation: under concurrent multi-task execution, every tuple
// a spout emits reaches the sink exactly once through a stateless two-stage
// pipeline — no loss, no duplication.
func TestTupleConservation(t *testing.T) {
	const total = 5000
	var emitted atomic.Int64
	spoutFactory := func() Spout {
		return SpoutFunc(func() []tuple.Tuple {
			out := make([]tuple.Tuple, 0, 100)
			for len(out) < 100 {
				n := emitted.Add(1)
				if n > total {
					return out
				}
				out = append(out, tuple.Tuple{FlowID: uint64(n), Key: fmt.Sprintf("k%d", n%37)})
			}
			return out
		})
	}
	var received atomic.Int64
	seen := sync.Map{}
	var dups atomic.Int64
	topo := NewTopology("conserve")
	_ = topo.AddSpout("s", spoutFactory, 3)
	_ = topo.AddBolt("relay", func() Bolt {
		return BoltFunc(func(t tuple.Tuple, emit EmitFunc) { emit(t) })
	}, 4).ShuffleFrom("s").Err()
	_ = topo.AddBolt("sink", func() Bolt {
		return NewCallbackBolt(func(t tuple.Tuple) {
			received.Add(1)
			if _, dup := seen.LoadOrStore(t.FlowID, true); dup {
				dups.Add(1)
			}
		})
	}, 2).FieldsFrom("relay", "flow").Err()

	ex, err := NewExecutor(topo, WithQueueDepth(512))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ex.Stop()
	if got := received.Load(); got != total {
		t.Errorf("sink received %d tuples, want %d", got, total)
	}
	if dups.Load() != 0 {
		t.Errorf("%d duplicated tuples", dups.Load())
	}
}

func TestStopIdempotent(t *testing.T) {
	topo := NewTopology("t")
	_ = topo.AddSpout("s", func() Spout { return &sliceSpout{} }, 1)
	ex, err := NewExecutor(topo)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	ex.Start()
	ex.Stop()
	ex.Stop()
}

func TestProcessorNamesBuildable(t *testing.T) {
	for _, name := range ProcessorNames() {
		topo, err := BuildTopology(ProcessorSpec{Name: name}, func() Spout { return &sliceSpout{} }, 1, func(tuple.Tuple) {}, 0)
		if err != nil {
			t.Errorf("BuildTopology(%q): %v", name, err)
			continue
		}
		if _, err := NewExecutor(topo); err != nil {
			t.Errorf("NewExecutor(%q): %v", name, err)
		}
	}
}

func TestRankingsSortedDeterministically(t *testing.T) {
	// Equal counts break ties by key so output is stable.
	b := NewRankBolt(4)
	var got []tuple.Tuple
	emit := func(t tuple.Tuple) { got = append(got, t) }
	for _, k := range []string{"z", "m", "a"} {
		b.Execute(tuple.Tuple{Key: k, Val: 2}, emit)
	}
	b.Tick(emit)
	entries, _ := DecodeRankings(got[0])
	keys := []string{entries[0].Key, entries[1].Key, entries[2].Key}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("tie-broken order = %v, want sorted", keys)
	}
}

func BenchmarkTopKPipeline(b *testing.B) {
	urls := make([]string, 1000)
	for i := range urls {
		urls[i] = fmt.Sprintf("/video/%d", i%50)
	}
	var idx int
	var mu sync.Mutex
	spout := SpoutFunc(func() []tuple.Tuple {
		mu.Lock()
		defer mu.Unlock()
		if idx >= b.N {
			return nil
		}
		n := 256
		if b.N-idx < n {
			n = b.N - idx
		}
		out := make([]tuple.Tuple, n)
		for i := range out {
			out[i] = tuple.Tuple{Key: urls[(idx+i)%len(urls)], Val: 1}
		}
		idx += n
		return out
	})
	topo, err := BuildTopology(ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "10"}},
		func() Spout { return spout }, 1, func(tuple.Tuple) {}, 50*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(50*time.Millisecond), WithQueueDepth(8192))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ex.Start()
	for {
		mu.Lock()
		done := idx >= b.N
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ex.Stop()
}
