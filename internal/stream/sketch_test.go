package stream

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"netalytics/internal/tuple"
)

// runTopology builds and drains a topology spec, returning the gathered sink
// tuples.
func runTopology(t *testing.T, spec ProcessorSpec, tuples []tuple.Tuple, opts TopologyOptions) []tuple.Tuple {
	t.Helper()
	spout := &sliceSpout{tuples: tuples}
	g := &gather{}
	topo, err := BuildTopologyOpts(spec, func() Spout { return spout }, 1, g.add, 10*time.Millisecond, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(topo, WithTickInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	time.Sleep(150 * time.Millisecond)
	ex.Stop()
	return g.tuples()
}

func TestSketchTopKTopologyMatchesExact(t *testing.T) {
	// Skewed stream: key-i appears (40-i) times, so the exact top 3 is
	// unambiguous and well separated — the sketch must reproduce it.
	var urls []string
	for i := 0; i < 20; i++ {
		for j := 0; j < 40-i; j++ {
			urls = append(urls, fmt.Sprintf("key-%02d", i))
		}
	}
	got := runTopology(t,
		ProcessorSpec{Name: "top-k", Args: map[string]string{"k": "3", "w": "1h", "sketch": "true"}},
		keyed(urls...), TopologyOptions{})

	var last []RankEntry
	for _, tu := range got {
		if entries, ok := DecodeRankings(tu); ok && len(entries) > 0 {
			last = entries
		}
	}
	if len(last) != 3 {
		t.Fatalf("final ranking = %+v, want 3 entries", last)
	}
	for i, want := range []RankEntry{{Key: "key-00", Count: 40}, {Key: "key-01", Count: 39}, {Key: "key-02", Count: 38}} {
		if last[i].Key != want.Key || last[i].Count != want.Count {
			t.Errorf("rank[%d] = %+v, want %+v", i, last[i], want)
		}
	}
}

func TestSketchTopologyPerQueryOverride(t *testing.T) {
	// Deployment default on, query arg off → exact pipeline (has a "rank"
	// bolt); and the reverse → sketch pipeline (has a "merge" bolt).
	spoutF := func() Spout { return &sliceSpout{} }
	sink := func(tuple.Tuple) {}

	topo, err := BuildTopologyOpts(
		ProcessorSpec{Name: "top-k", Args: map[string]string{"sketch": "false"}},
		spoutF, 1, sink, time.Second, TopologyOptions{Sketch: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.nodes["rank"]; !ok {
		t.Errorf("sketch=false override: nodes = %v, want exact rank stage", topo.order)
	}
	if _, ok := topo.nodes["sketch"]; ok {
		t.Errorf("sketch=false override still built a sketch stage: %v", topo.order)
	}

	topo, err = BuildTopologyOpts(
		ProcessorSpec{Name: "top-k", Args: map[string]string{"sketch": "true"}},
		spoutF, 1, sink, time.Second, TopologyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.nodes["sketch"]; !ok {
		t.Errorf("sketch=true override: nodes = %v, want sketch stage", topo.order)
	}
}

func TestSketchGroupCountTopology(t *testing.T) {
	var tuples []tuple.Tuple
	for i := 0; i < 30; i++ {
		tuples = append(tuples, tuple.Tuple{DstIP: "h1", Val: 2, FlowID: uint64(i)})
	}
	for i := 0; i < 10; i++ {
		tuples = append(tuples, tuple.Tuple{DstIP: "h2", Val: 5, FlowID: uint64(100 + i)})
	}

	got := runTopology(t,
		ProcessorSpec{Name: "group-sum", Args: map[string]string{"group": "dstIP", "sketch": "true"}},
		tuples, TopologyOptions{})

	sums := map[string]float64{}
	for _, tu := range got {
		sums[tu.Key] = tu.Val // cumulative: the last emission covers everything
	}
	if sums["h1"] != 60 || sums["h2"] != 50 {
		t.Errorf("sketch group sums = %v, want h1:60 h2:50", sums)
	}
}

func TestDistinctCountTopologySketchAndExact(t *testing.T) {
	var tuples []tuple.Tuple
	for i := 0; i < 200; i++ {
		tuples = append(tuples, tuple.Tuple{
			DstIP:  "svc-a",
			SrcIP:  fmt.Sprintf("10.0.%d.%d", i/250, i%250),
			FlowID: uint64(i),
		})
	}
	for i := 0; i < 5; i++ {
		tuples = append(tuples, tuple.Tuple{DstIP: "svc-b", SrcIP: "10.9.9.9", FlowID: uint64(1000 + i)})
	}

	for _, sk := range []string{"true", "false"} {
		got := runTopology(t,
			ProcessorSpec{Name: "distinct-count", Args: map[string]string{"group": "dstIP", "over": "srcIP", "w": "1h", "sketch": sk}},
			tuples, TopologyOptions{})

		counts := map[string]float64{}
		for _, tu := range got {
			counts[tu.Key] = tu.Val
		}
		if math.Abs(counts["svc-a"]-200) > 200*0.1 {
			t.Errorf("sketch=%s: svc-a distinct = %v, want ~200", sk, counts["svc-a"])
		}
		if math.Abs(counts["svc-b"]-1) > 0.5 {
			t.Errorf("sketch=%s: svc-b distinct = %v, want 1", sk, counts["svc-b"])
		}
	}
}

func TestSketchTopKMergeBoltWindow(t *testing.T) {
	// Ring of 2 slots: a key offered two ticks ago must age out of the window.
	local := NewSketchTopKBolt(16)
	merge := NewSketchTopKMergeBolt(5, 16, 2)

	var toMerge []tuple.Tuple
	collect := func(t tuple.Tuple) { toMerge = append(toMerge, t) }
	var ranked []tuple.Tuple
	sink := func(t tuple.Tuple) { ranked = append(ranked, t) }

	window := func() map[string]float64 {
		out := map[string]float64{}
		for _, tu := range ranked {
			if entries, ok := DecodeRankings(tu); ok {
				out = map[string]float64{}
				for _, e := range entries {
					out[e.Key] = e.Count
				}
			}
		}
		return out
	}

	step := func(keys ...string) {
		for _, k := range keys {
			local.Execute(tuple.Tuple{Key: k, Val: 1}, collect)
		}
		local.Tick(collect)
		for _, tu := range toMerge {
			merge.Execute(tu, sink)
		}
		toMerge = nil
		ranked = nil
		merge.Tick(sink)
	}

	step("old", "old", "old")
	if w := window(); w["old"] != 3 {
		t.Fatalf("tick 1 window = %v, want old:3", w)
	}
	step("new")
	if w := window(); w["old"] != 3 || w["new"] != 1 {
		t.Fatalf("tick 2 window = %v, want old:3 new:1", w)
	}
	step("new")
	// "old" was offered in tick 1; a 2-slot window at tick 3 covers ticks 2-3.
	if w := window(); w["old"] != 0 || w["new"] != 2 {
		t.Errorf("tick 3 window = %v, want old aged out, new:2", w)
	}
}

func TestSketchTupleRoundTrip(t *testing.T) {
	tu := encodeSketchTuple([]byte{0x01, 0x02, 0xff}, "grp")
	payload, group, ok := decodeSketchTuple(tu)
	if !ok || group != "grp" || len(payload) != 3 || payload[2] != 0xff {
		t.Errorf("round trip = (%v, %q, %v)", payload, group, ok)
	}
	if _, _, ok := decodeSketchTuple(tuple.Tuple{Key: "plain"}); ok {
		t.Error("plain tuple decoded as sketch")
	}
}

func TestDistinctCountProcessorListed(t *testing.T) {
	for _, name := range ProcessorNames() {
		if name == "distinct-count" {
			return
		}
	}
	t.Errorf("ProcessorNames() = %v, missing distinct-count", ProcessorNames())
}

// --- satellite: RankBolt bounded-heap flush ---------------------------------

func TestTopEntriesMatchesSort(t *testing.T) {
	m := map[string]float64{}
	for i := 0; i < 500; i++ {
		m[fmt.Sprintf("k%03d", i)] = float64((i * 37) % 101) // repeated counts exercise ties
	}
	want := make([]RankEntry, 0, len(m))
	for k, v := range m {
		want = append(want, RankEntry{Key: k, Count: v})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].Count != want[j].Count {
			return want[i].Count > want[j].Count
		}
		return want[i].Key < want[j].Key
	})
	for _, k := range []int{1, 3, 10, 100, 499, 500, 1000} {
		got := topEntries(m, k)
		expect := want
		if len(expect) > k {
			expect = expect[:k]
		}
		if len(got) != len(expect) {
			t.Fatalf("k=%d: len = %d, want %d", k, len(got), len(expect))
		}
		for i := range got {
			if got[i] != expect[i] {
				t.Fatalf("k=%d: entry %d = %+v, want %+v", k, i, got[i], expect[i])
			}
		}
	}
}

func BenchmarkRankBoltFlush(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		entries := map[string]float64{}
		for i := 0; i < n; i++ {
			entries[fmt.Sprintf("key-%07d", i)] = float64(i % 997)
		}
		b.Run(fmt.Sprintf("heap/n=%d/k=10", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topEntries(entries, 10)
			}
		})
		b.Run(fmt.Sprintf("sort/n=%d/k=10", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				all := make([]RankEntry, 0, len(entries))
				for k, v := range entries {
					all = append(all, RankEntry{Key: k, Count: v})
				}
				sort.Slice(all, func(i, j int) bool {
					if all[i].Count != all[j].Count {
						return all[i].Count > all[j].Count
					}
					return all[i].Key < all[j].Key
				})
				_ = all[:10]
			}
		})
	}
}

// --- satellite: PercentileBolt reservoir cap --------------------------------

func TestPercentileBoltReservoirCap(t *testing.T) {
	b := NewPercentileBolt("", []float64{50})
	b.SetMaxSamples(256)
	emit := func(tuple.Tuple) {}
	for i := 0; i < 100000; i++ {
		b.Execute(tuple.Tuple{Val: float64(i % 1000)}, emit)
	}
	if n := len(b.samples["all"]); n != 256 {
		t.Fatalf("reservoir holds %d samples, want cap 256", n)
	}
	if b.seen["all"] != 100000 {
		t.Errorf("seen = %d, want 100000", b.seen["all"])
	}

	var got []tuple.Tuple
	b.Cleanup(func(t tuple.Tuple) { got = append(got, t) })
	if len(got) != 1 {
		t.Fatalf("emitted %d tuples, want 1", len(got))
	}
	// Uniform values in [0,1000): the reservoir median should land near 500.
	// With 256 uniform samples the sample median's stderr is ~31, so ±150 is
	// a >4σ allowance — deterministic rng makes this stable anyway.
	if p50 := got[0].Val; p50 < 350 || p50 > 650 {
		t.Errorf("reservoir p50 = %v, want ~500", p50)
	}
}

func TestPercentileBoltRollingResetsReservoir(t *testing.T) {
	b := NewPercentileBolt("", []float64{50})
	b.SetRolling(true)
	b.SetMaxSamples(8)
	emit := func(tuple.Tuple) {}
	for i := 0; i < 100; i++ {
		b.Execute(tuple.Tuple{Val: 1}, emit)
	}
	b.Tick(emit)
	if len(b.samples) != 0 || len(b.seen) != 0 {
		t.Fatalf("rolling flush left samples=%v seen=%v", b.samples, b.seen)
	}
	// After the reset the reservoir must refill eagerly, not gate on the old
	// seen count.
	b.Execute(tuple.Tuple{Val: 42}, emit)
	if len(b.samples["all"]) != 1 {
		t.Errorf("post-reset reservoir = %v, want the new sample", b.samples["all"])
	}
}
