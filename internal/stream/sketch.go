package stream

import (
	"netalytics/internal/sketch"
	"netalytics/internal/tuple"
)

// This file wires the bounded-memory sketches of internal/sketch into the
// topology as drop-in bolt alternatives to the exact counting blocks. The
// shape is the same for all three sketch families:
//
//	spout → [local sketch bolt × P, shuffle] → [merge bolt × 1] → sink
//
// Each local task keeps its own sketch over whatever share of the stream the
// shuffle grouping hands it — no fields grouping, so no per-tuple key
// hashing and no hot-key task imbalance — and on every tick it emits the
// encoded sketch downstream and resets. The merge stage still runs with
// global grouping, but it receives O(parallelism) sketch payloads per tick
// instead of every tuple: the global-grouping shuffle that made the exact
// pipeline's reducer a serial choke point becomes a lightweight combiner.
// Windowing lives in the merge bolt as a ring of per-tick merged sketches
// (merge-of-merges is sound because the sketches are mergeable).

// SketchTupleKey marks tuples whose Key field carries an encoded sketch
// payload from a partition-local sketch bolt. The payload is raw binary —
// sketch tuples only ever travel in-process between bolt tasks, never
// through the aggregation layer's JSON wire format.
const SketchTupleKey = "__sketch__"

// encodeSketchTuple packs an encoded sketch (and an optional group name for
// group-keyed sketches) into a tuple for the merge stage.
func encodeSketchTuple(payload []byte, group string) tuple.Tuple {
	return tuple.Tuple{Key: string(payload), SrcIP: SketchTupleKey, DstIP: group}
}

// decodeSketchTuple recognizes sketch tuples; ok is false for other tuples.
func decodeSketchTuple(t tuple.Tuple) (payload []byte, group string, ok bool) {
	if t.SrcIP != SketchTupleKey {
		return nil, "", false
	}
	return []byte(t.Key), t.DstIP, true
}

// windowRing is the merge stage's window state: one merged sketch slot per
// tick, oldest slot cleared as the window advances — the sketch counterpart
// of RollingCountBolt's per-key slot rings, except it holds W sketches total
// instead of W floats per distinct key.
type windowRing[S any] struct {
	slots   []S
	current int
}

func newWindowRing[S any](slots int) windowRing[S] {
	if slots < 1 {
		slots = 1
	}
	return windowRing[S]{slots: make([]S, slots)}
}

// advance steps the window one slot and returns the index whose content must
// be cleared (the slot being reused).
func (w *windowRing[S]) advance() int {
	w.current = (w.current + 1) % len(w.slots)
	return w.current
}

// SketchTopKBolt is the partition-local half of the sketch top-k pipeline: a
// space-saving summary over this task's share of the stream, emitted and
// reset on every tick.
type SketchTopKBolt struct {
	sk *sketch.TopK
}

// NewSketchTopKBolt creates a local top-k sketch bolt with the given counter
// capacity (see sketch.DefaultCapacity).
func NewSketchTopKBolt(capacity int) *SketchTopKBolt {
	return &SketchTopKBolt{sk: sketch.NewTopK(capacity)}
}

// Execute implements Bolt.
func (b *SketchTopKBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	if t.Key == "" {
		return
	}
	b.sk.Offer(t.Key, t.Val)
}

// ExecuteBatch implements BatchBolt.
func (b *SketchTopKBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		if ts[i].Key == "" {
			continue
		}
		b.sk.Offer(ts[i].Key, ts[i].Val)
	}
}

// Tick implements Ticker: ship this tick's local sketch to the merge stage
// and start the next one.
func (b *SketchTopKBolt) Tick(emit EmitFunc) { b.flush(emit) }

// Cleanup implements Cleaner.
func (b *SketchTopKBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *SketchTopKBolt) flush(emit EmitFunc) {
	if b.sk.Len() == 0 {
		return
	}
	emit(encodeSketchTuple(b.sk.Encode(), ""))
	b.sk.Reset()
}

// SketchTopKMergeBolt is the combiner: it merges the per-task sketches of
// each tick into a window ring and emits the window's top-k as encoded
// rankings — the same output contract as the exact RankBolt, so DatabaseBolt
// and result decoding are unchanged.
type SketchTopKMergeBolt struct {
	k        int
	capacity int
	ring     windowRing[*sketch.TopK]
}

// NewSketchTopKMergeBolt creates the merge stage for a top-k of k over a
// window of the given tick slots.
func NewSketchTopKMergeBolt(k, capacity, slots int) *SketchTopKMergeBolt {
	if k < 1 {
		k = 1
	}
	return &SketchTopKMergeBolt{k: k, capacity: capacity, ring: newWindowRing[*sketch.TopK](slots)}
}

// Execute implements Bolt: fold an arriving local sketch into the current
// window slot. Non-sketch tuples are ignored.
func (b *SketchTopKMergeBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	payload, _, ok := decodeSketchTuple(t)
	if !ok {
		return
	}
	sk, err := sketch.DecodeTopK(payload)
	if err != nil {
		return
	}
	slot := b.ring.slots[b.ring.current]
	if slot == nil {
		b.ring.slots[b.ring.current] = sk
		return
	}
	slot.Merge(sk)
}

// Tick implements Ticker: emit the windowed top-k and advance the ring.
func (b *SketchTopKMergeBolt) Tick(emit EmitFunc) {
	b.emitWindow(emit)
	b.ring.slots[b.ring.advance()] = nil
}

// Cleanup implements Cleaner.
func (b *SketchTopKMergeBolt) Cleanup(emit EmitFunc) { b.emitWindow(emit) }

func (b *SketchTopKMergeBolt) emitWindow(emit EmitFunc) {
	window := sketch.NewTopK(b.capacity)
	seen := false
	for _, s := range b.ring.slots {
		if s == nil {
			continue
		}
		window.Merge(s)
		seen = true
	}
	if !seen {
		return
	}
	items := window.Top(b.k)
	entries := make([]RankEntry, len(items))
	for i, it := range items {
		entries[i] = RankEntry{Key: it.Key, Count: it.Count}
	}
	if len(entries) > 0 {
		emit(EncodeRankings(entries))
	}
}

// SketchCountBolt is the partition-local half of the sketch counting
// pipeline: a count-min sketch accumulates per-key weight while a small
// space-saving summary tracks which keys are worth reporting. Count-min
// gives much tighter estimates than space-saving counts on skewed streams;
// space-saving supplies the candidate set count-min cannot enumerate.
type SketchCountBolt struct {
	attr   string // key attribute ("" = tuple Key)
	useVal bool   // weight by Val (sum) instead of 1 (count)
	cm     *sketch.CountMin
	cands  *sketch.TopK
}

// NewSketchCountBolt creates a local counting sketch bolt keyed on attr (""
// keys on the tuple Key). useVal weights each tuple by its Val — the sum
// aggregation — instead of counting tuples. candidates bounds the reported
// key set, depth/width size the count-min grid.
func NewSketchCountBolt(attr string, useVal bool, candidates, depth, width int) *SketchCountBolt {
	return &SketchCountBolt{
		attr:   attr,
		useVal: useVal,
		cm:     sketch.NewCountMin(depth, width),
		cands:  sketch.NewTopK(candidates),
	}
}

// Execute implements Bolt.
func (b *SketchCountBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	b.observe(&t)
}

// ExecuteBatch implements BatchBolt.
func (b *SketchCountBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		b.observe(&ts[i])
	}
}

func (b *SketchCountBolt) observe(t *tuple.Tuple) {
	key := t.Key
	if b.attr != "" {
		key = t.Attr(b.attr)
	}
	if key == "" {
		return
	}
	w := 1.0
	if b.useVal {
		w = t.Val
	}
	b.cm.Offer(key, w)
	b.cands.Offer(key, w)
}

// Tick implements Ticker: ship both local sketches and reset.
func (b *SketchCountBolt) Tick(emit EmitFunc) { b.flush(emit) }

// Cleanup implements Cleaner.
func (b *SketchCountBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *SketchCountBolt) flush(emit EmitFunc) {
	if b.cands.Len() == 0 {
		return
	}
	emit(encodeSketchTuple(b.cm.Encode(), ""))
	emit(encodeSketchTuple(b.cands.Encode(), ""))
	b.cm.Reset()
	b.cands.Reset()
}

// countSlot pairs the window-slot sketches of the counting pipeline.
type countSlot struct {
	cm    *sketch.CountMin
	cands *sketch.TopK
}

// SketchCountMergeBolt combines per-task counting sketches and emits one
// (key, windowed count-min estimate) tuple per tracked candidate per tick —
// the bounded-cardinality replacement for RollingCountBolt/GroupBolt output
// at millions of distinct keys.
type SketchCountMergeBolt struct {
	candidates int
	cumulative bool // slots ≤ 0: accumulate forever, like a non-rolling GroupBolt
	ring       windowRing[countSlot]
}

// NewSketchCountMergeBolt creates the merge stage reporting up to candidates
// keys over a window of the given tick slots. slots ≤ 0 makes the window
// cumulative — estimates cover the whole stream, matching a non-rolling
// GroupBolt — while memory stays bounded by the sketch sizes either way.
func NewSketchCountMergeBolt(candidates, slots int) *SketchCountMergeBolt {
	if candidates < 1 {
		candidates = 1
	}
	return &SketchCountMergeBolt{
		candidates: candidates,
		cumulative: slots <= 0,
		ring:       newWindowRing[countSlot](slots),
	}
}

// Execute implements Bolt: sketch payloads dispatch on their kind byte.
func (b *SketchCountMergeBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	payload, _, ok := decodeSketchTuple(t)
	if !ok || len(payload) == 0 {
		return
	}
	slot := &b.ring.slots[b.ring.current]
	if cm, err := sketch.DecodeCountMin(payload); err == nil {
		if slot.cm == nil {
			slot.cm = cm
		} else {
			_ = slot.cm.Merge(cm) // same builder ⇒ same dimensions
		}
		return
	}
	if tk, err := sketch.DecodeTopK(payload); err == nil {
		if slot.cands == nil {
			slot.cands = tk
		} else {
			slot.cands.Merge(tk)
		}
	}
}

// Tick implements Ticker.
func (b *SketchCountMergeBolt) Tick(emit EmitFunc) {
	b.emitWindow(emit)
	if !b.cumulative {
		b.ring.slots[b.ring.advance()] = countSlot{}
	}
}

// Cleanup implements Cleaner.
func (b *SketchCountMergeBolt) Cleanup(emit EmitFunc) { b.emitWindow(emit) }

func (b *SketchCountMergeBolt) emitWindow(emit EmitFunc) {
	var cm *sketch.CountMin
	var cands *sketch.TopK
	for _, s := range b.ring.slots {
		if s.cm != nil {
			if cm == nil {
				cm = sketch.NewCountMin(s.cm.Depth(), s.cm.Width())
			}
			_ = cm.Merge(s.cm)
		}
		if s.cands != nil {
			if cands == nil {
				cands = sketch.NewTopK(s.cands.Capacity())
			}
			cands.Merge(s.cands)
		}
	}
	if cm == nil || cands == nil {
		return
	}
	for _, it := range cands.Top(b.candidates) {
		emit(tuple.Tuple{Key: it.Key, Val: cm.Estimate(it.Key)})
	}
}

// DistinctCountBolt is the partition-local half of the distinct-count
// pipeline: one HyperLogLog per group tracks the distinct values of an
// attribute (e.g. distinct client IPs per service). Groups are expected to
// be low-cardinality (the distinct explosion is on the value side, which is
// exactly what the HLL bounds); maxGroups caps pathological group blowup.
type DistinctCountBolt struct {
	group     string // attribute naming the group ("" = one global group)
	over      string // attribute whose distinct values are counted
	precision int
	maxGroups int
	hlls      map[string]*sketch.HLL
}

// defaultMaxGroups bounds the per-task group map: past it, new groups are
// dropped (existing groups keep counting) so a group-cardinality explosion
// degrades coverage instead of memory.
const defaultMaxGroups = 4096

// NewDistinctCountBolt creates a local distinct-count bolt counting distinct
// `over`-attribute values per `group`-attribute value.
func NewDistinctCountBolt(group, over string, precision int) *DistinctCountBolt {
	return &DistinctCountBolt{
		group:     group,
		over:      over,
		precision: precision,
		maxGroups: defaultMaxGroups,
		hlls:      make(map[string]*sketch.HLL),
	}
}

// Execute implements Bolt.
func (b *DistinctCountBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	b.observe(&t)
}

// ExecuteBatch implements BatchBolt.
func (b *DistinctCountBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		b.observe(&ts[i])
	}
}

func (b *DistinctCountBolt) observe(t *tuple.Tuple) {
	val := t.Attr(b.over)
	if val == "" {
		return
	}
	group := "all"
	if b.group != "" {
		if g := t.Attr(b.group); g != "" {
			group = g
		}
	}
	h, ok := b.hlls[group]
	if !ok {
		if len(b.hlls) >= b.maxGroups {
			return
		}
		h = sketch.NewHLL(b.precision)
		b.hlls[group] = h
	}
	h.Offer(val)
}

// Tick implements Ticker: ship one encoded HLL per group and reset.
func (b *DistinctCountBolt) Tick(emit EmitFunc) { b.flush(emit) }

// Cleanup implements Cleaner.
func (b *DistinctCountBolt) Cleanup(emit EmitFunc) { b.flush(emit) }

func (b *DistinctCountBolt) flush(emit EmitFunc) {
	for group, h := range b.hlls {
		emit(encodeSketchTuple(h.Encode(), group))
		delete(b.hlls, group)
	}
}

// DistinctCountMergeBolt combines per-task HLLs by group and emits one
// (group, distinct-count estimate) tuple per group per tick, windowed over
// the ring like the other merge stages.
type DistinctCountMergeBolt struct {
	precision int
	maxGroups int
	ring      windowRing[map[string]*sketch.HLL]
}

// NewDistinctCountMergeBolt creates the merge stage over a window of the
// given tick slots.
func NewDistinctCountMergeBolt(precision, slots int) *DistinctCountMergeBolt {
	return &DistinctCountMergeBolt{
		precision: precision,
		maxGroups: defaultMaxGroups,
		ring:      newWindowRing[map[string]*sketch.HLL](slots),
	}
}

// Execute implements Bolt.
func (b *DistinctCountMergeBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	payload, group, ok := decodeSketchTuple(t)
	if !ok {
		return
	}
	h, err := sketch.DecodeHLL(payload)
	if err != nil {
		return
	}
	slot := b.ring.slots[b.ring.current]
	if slot == nil {
		slot = make(map[string]*sketch.HLL)
		b.ring.slots[b.ring.current] = slot
	}
	if cur, ok := slot[group]; ok {
		_ = cur.Merge(h) // same precision by construction
		return
	}
	if len(slot) >= b.maxGroups {
		return
	}
	slot[group] = h
}

// Tick implements Ticker.
func (b *DistinctCountMergeBolt) Tick(emit EmitFunc) {
	b.emitWindow(emit)
	b.ring.slots[b.ring.advance()] = nil
}

// Cleanup implements Cleaner.
func (b *DistinctCountMergeBolt) Cleanup(emit EmitFunc) { b.emitWindow(emit) }

func (b *DistinctCountMergeBolt) emitWindow(emit EmitFunc) {
	window := make(map[string]*sketch.HLL)
	for _, slot := range b.ring.slots {
		for group, h := range slot {
			if cur, ok := window[group]; ok {
				_ = cur.Merge(h)
				continue
			}
			merged := sketch.NewHLL(b.precision)
			_ = merged.Merge(h)
			window[group] = merged
		}
	}
	for group, h := range window {
		emit(tuple.Tuple{Key: group, Val: h.Estimate()})
	}
}

// ExactDistinctBolt is the exact A/B baseline for distinct counting: a set
// per group. Memory grows with the number of distinct values — the behavior
// the sketch path exists to avoid — so it is only built when sketch
// analytics is off.
type ExactDistinctBolt struct {
	group   string
	over    string
	rolling windowRing[map[string]map[string]struct{}]
}

// NewExactDistinctBolt creates the exact baseline over a window of the given
// tick slots.
func NewExactDistinctBolt(group, over string, slots int) *ExactDistinctBolt {
	return &ExactDistinctBolt{group: group, over: over, rolling: newWindowRing[map[string]map[string]struct{}](slots)}
}

// Execute implements Bolt.
func (b *ExactDistinctBolt) Execute(t tuple.Tuple, emit EmitFunc) {
	val := t.Attr(b.over)
	if val == "" {
		return
	}
	group := "all"
	if b.group != "" {
		if g := t.Attr(b.group); g != "" {
			group = g
		}
	}
	slot := b.rolling.slots[b.rolling.current]
	if slot == nil {
		slot = make(map[string]map[string]struct{})
		b.rolling.slots[b.rolling.current] = slot
	}
	set, ok := slot[group]
	if !ok {
		set = make(map[string]struct{})
		slot[group] = set
	}
	set[val] = struct{}{}
}

// ExecuteBatch implements BatchBolt.
func (b *ExactDistinctBolt) ExecuteBatch(ts []tuple.Tuple, emit EmitFunc) {
	for i := range ts {
		b.Execute(ts[i], emit)
	}
}

// Tick implements Ticker.
func (b *ExactDistinctBolt) Tick(emit EmitFunc) {
	b.emitWindow(emit)
	b.rolling.slots[b.rolling.advance()] = nil
}

// Cleanup implements Cleaner.
func (b *ExactDistinctBolt) Cleanup(emit EmitFunc) { b.emitWindow(emit) }

func (b *ExactDistinctBolt) emitWindow(emit EmitFunc) {
	window := make(map[string]map[string]struct{})
	for _, slot := range b.rolling.slots {
		for group, set := range slot {
			union, ok := window[group]
			if !ok {
				union = make(map[string]struct{}, len(set))
				window[group] = union
			}
			for v := range set {
				union[v] = struct{}{}
			}
		}
	}
	for group, set := range window {
		emit(tuple.Tuple{Key: group, Val: float64(len(set))})
	}
}
