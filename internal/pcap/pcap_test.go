package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"netalytics/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b packet.Builder
	frames := [][]byte{
		b.TCP(packet.TCPSpec{Src: addr("10.0.0.1"), Dst: addr("10.0.0.2"), SrcPort: 1, DstPort: 80, Payload: []byte("one")}),
		b.TCP(packet.TCPSpec{Src: addr("10.0.0.2"), Dst: addr("10.0.0.1"), SrcPort: 80, DstPort: 1, Payload: []byte("two!")}),
	}
	ts := time.Unix(1700000000, 123456000)
	for i, f := range frames {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 2 {
		t.Errorf("Packets = %d", w.Packets())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		if p.OrigLen != len(frames[i]) {
			t.Errorf("packet %d OrigLen = %d", i, p.OrigLen)
		}
		want := ts.Add(time.Duration(i) * time.Second)
		if p.TS.Unix() != want.Unix() || p.TS.Nanosecond()/1000 != want.Nanosecond()/1000 {
			t.Errorf("packet %d ts = %v, want %v", i, p.TS, want)
		}
		// Frames in the capture remain decodable.
		if _, err := packet.Decode(p.Data); err != nil {
			t.Errorf("packet %d not decodable: %v", i, err)
		}
	}
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestHeaderBytes(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header len = %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		t.Errorf("magic = %#x", hdr[0:4])
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Error("version != 2.4")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != 1 {
		t.Error("linktype != ethernet")
	}
}

func TestTruncationAtSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, DefaultSnapLen+100)
	if err := w.WritePacket(time.Now(), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != DefaultSnapLen {
		t.Errorf("captured %d bytes, want snaplen %d", len(p.Data), DefaultSnapLen)
	}
	if p.OrigLen != len(big) {
		t.Errorf("OrigLen = %d, want %d", p.OrigLen, len(big))
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: err = %v", err)
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v", err)
	}

	// Truncated record body.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Now(), []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated record: err = %v", err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty capture Next: err = %v", err)
	}
	got, err := r.ReadAll()
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAll = %v, %v", got, err)
	}
}

// Property: arbitrary payload sets round-trip in order with exact bytes.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func() bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(20)
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = make([]byte, rng.Intn(2000))
			rng.Read(payloads[i])
			if err := w.WritePacket(time.Unix(int64(i), 0), payloads[i]); err != nil {
				return false
			}
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, payloads[i]) || got[i].TS.Unix() != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with an arbitrary snap length, every record's captured bytes are
// the payload's prefix of min(len, snaplen) and OrigLen is always the
// original wire length — truncation loses bytes, never accounting.
func TestSnapLenTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func() bool {
		snap := 1 + rng.Intn(300)
		var buf bytes.Buffer
		w, err := NewWriterSnapLen(&buf, snap)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(10)
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = make([]byte, rng.Intn(2*snap))
			rng.Read(payloads[i])
			if err := w.WritePacket(time.Unix(int64(i), 0), payloads[i]); err != nil {
				return false
			}
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil || r.SnapLen != snap {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i, p := range got {
			want := payloads[i]
			if len(want) > snap {
				want = want[:snap]
			}
			if !bytes.Equal(p.Data, want) || p.OrigLen != len(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriterSnapLenClamped(t *testing.T) {
	for _, req := range []int{-5, 0, DefaultSnapLen + 1} {
		var buf bytes.Buffer
		if _, err := NewWriterSnapLen(&buf, req); err != nil {
			t.Fatal(err)
		}
		got := int(binary.LittleEndian.Uint32(buf.Bytes()[16:20]))
		if got < 1 || got > DefaultSnapLen {
			t.Errorf("requested snaplen %d recorded as %d, outside [1, %d]", req, got, DefaultSnapLen)
		}
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512)
	ts := time.Now()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(ts, data); err != nil {
			b.Fatal(err)
		}
	}
}
