// Package pcap reads and writes the classic libpcap capture format
// (tcpdump's native file format), so traffic mirrored by NetAlytics taps can
// be saved and inspected with standard tools — the escape hatch the paper's
// related work (tcpdump, OFRewind) provides for offline analysis.
//
// Only the original microsecond-resolution format (magic 0xa1b2c3d4,
// version 2.4, LINKTYPE_ETHERNET) is implemented; that is what tcpdump and
// wireshark read by default.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicMicroseconds = 0xa1b2c3d4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1

	// DefaultSnapLen is the per-packet capture limit.
	DefaultSnapLen = 65535

	globalHeaderLen = 24
	recordHeaderLen = 16
)

// Format errors.
var (
	ErrBadMagic  = errors.New("pcap: bad magic (not a microsecond pcap file)")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Writer emits a pcap stream. Create one with NewWriter.
type Writer struct {
	w       io.Writer
	snapLen uint32
	packets uint64
	hdr     [recordHeaderLen]byte
}

// NewWriter writes the global header and returns a packet writer capturing
// full frames (DefaultSnapLen).
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterSnapLen(w, DefaultSnapLen)
}

// NewWriterSnapLen is NewWriter with an explicit per-packet capture limit,
// recorded in the global header as a real capture tool would. Values outside
// [1, DefaultSnapLen] are clamped.
func NewWriterSnapLen(w io.Writer, snapLen int) (*Writer, error) {
	if snapLen < 1 {
		snapLen = 1
	}
	if snapLen > DefaultSnapLen {
		snapLen = DefaultSnapLen
	}
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone (4) and sigfigs (4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w, snapLen: uint32(snapLen)}, nil
}

// WritePacket appends one captured frame with the given timestamp. Frames
// longer than the snap length are truncated, with the original length
// recorded, as a capturing NIC would.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	captured := data
	if uint32(len(captured)) > w.snapLen {
		captured = captured[:w.snapLen]
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(captured)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(captured); err != nil {
		return fmt.Errorf("pcap: writing record: %w", err)
	}
	w.packets++
	return nil
}

// Packets returns the number of packets written.
func (w *Writer) Packets() uint64 { return w.packets }

// Packet is one record read from a capture.
type Packet struct {
	TS time.Time
	// OrigLen is the packet's length on the wire; len(Data) may be smaller
	// if the capture was truncated at the snap length.
	OrigLen int
	Data    []byte
}

// Reader consumes a pcap stream. Create one with NewReader.
type Reader struct {
	r io.Reader
	// SnapLen is the capture limit recorded in the file's global header;
	// records longer than it were truncated by the capturing tool.
	SnapLen int
}

// NewReader validates the global header and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicroseconds {
		return nil, ErrBadMagic
	}
	return &Reader{r: r, SnapLen: int(binary.LittleEndian.Uint32(hdr[16:20]))}, nil
}

// Next returns the next packet, or io.EOF at the end of the capture.
func (r *Reader) Next() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	incl := binary.LittleEndian.Uint32(hdr[8:12])
	orig := binary.LittleEndian.Uint32(hdr[12:16])
	if incl > DefaultSnapLen {
		return Packet{}, fmt.Errorf("pcap: implausible record length %d", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return Packet{
		TS:      time.Unix(int64(sec), int64(usec)*1000),
		OrigLen: int(orig),
		Data:    data,
	}, nil
}

// ReadAll drains the capture into memory.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
