// Package mq implements the distributed queuing service of NetAlytics's
// aggregation layer (§3.2), modeled on Kafka: topics split into partitions
// hosted by brokers, batching producers, polling consumers, and bounded
// in-memory buffers that absorb bursts while the analytics engine catches up.
//
// Two behaviors from the paper are modeled explicitly:
//
//   - Persistence (§6.1): in disk mode every append is throttled to the
//     broker's simulated disk write rate (the paper measured 70 MB/s);
//     in RAM mode appends are throttled only by the broker's network ingest
//     rate, "more than an order of magnitude" faster.
//   - Back pressure (§4.2): when a partition's occupancy crosses the high
//     watermark, subscribers (monitors) receive an overload status so they
//     can lower their sampling rate; recovery is signaled when occupancy
//     falls below the low watermark.
package mq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// Defaults for Config fields left zero.
const (
	DefaultPartitions    = 1
	DefaultBufferBatches = 1024
	DefaultHighWatermark = 0.75

	// DefaultDiskBytesPerSec is the paper's measured disk write rate.
	DefaultDiskBytesPerSec = 70 << 20
)

// ErrBufferFull is returned when a partition cannot absorb another batch.
var ErrBufferFull = errors.New("mq: partition buffer full")

// ErrUnavailable is returned when a partition rejects an operation because a
// fault made it unavailable (broker down, injected produce error). Like
// ErrBufferFull it is retryable; Producer.Send retries both up to
// Config.ProduceRetries times before surfacing the error to the caller.
var ErrUnavailable = errors.New("mq: partition unavailable")

// FaultHook lets a fault-injection layer (internal/fault) fail produce and
// consume operations. The cluster calls it on every partition append and pop;
// returning true makes the operation fail with ErrUnavailable (produce) or
// behave as if no data were ready (consume — offsets are untouched, so a
// consumer simply resumes where it left off once the fault clears).
type FaultHook interface {
	ProduceUnavailable(topic string, partition int) bool
	ConsumeUnavailable(topic string, partition int) bool
}

// PersistMode selects the durability/throughput trade-off of §6.1.
type PersistMode int

// Persistence modes.
const (
	// PersistRAM buffers batches in memory only (the paper's tuned
	// configuration: RAM disk + short retention).
	PersistRAM PersistMode = iota
	// PersistDisk throttles appends to the simulated disk write rate.
	PersistDisk
)

// Config parameterizes a Cluster.
type Config struct {
	// Partitions per topic (default 1).
	Partitions int
	// BufferBatches bounds each partition's buffer (default 1024). With
	// IngestShards > 0 the budget is split across the shard rings.
	BufferBatches int
	// IngestShards, when > 0, replaces each partition's mutex-guarded log
	// with that many single-writer ring segments appended lock-free and
	// merged at consume time (see shard.go), so concurrent producers on one
	// topic stop serializing on a partition lock. 0 keeps the legacy locked
	// path — the A/B baseline.
	IngestShards int
	// HighWatermark is the occupancy fraction that triggers overload
	// statuses (default 0.75). The low watermark is half of it.
	HighWatermark float64
	// Persist selects RAM or disk persistence.
	Persist PersistMode
	// DiskBytesPerSec is the simulated disk write rate for PersistDisk
	// (default 70 MB/s).
	DiskBytesPerSec float64
	// IngestBytesPerSec throttles each broker's network ingest in RAM mode;
	// 0 disables throttling (tests). The Fig. 6 harness sets it to model
	// per-process capacity.
	IngestBytesPerSec float64
	// ProduceRetries is how many times Producer.Send retries a failed append
	// (buffer full or partition unavailable) before counting the batch as
	// dropped and returning the error. 0 (the default) fails immediately,
	// preserving the pre-retry behavior.
	ProduceRetries int
	// RetryBackoff is the first retry's sleep; each subsequent retry doubles
	// it up to RetryBackoffMax (defaults 1ms / 50ms).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Metrics, when non-nil, registers per-topic counters (mq_appended,
	// mq_consumed, mq_dropped, mq_bytes, mq_overloads, mq_attempts,
	// mq_retries and the tuple-granular mq_*_tuples series) and
	// occupancy/backlog gauges in the telemetry registry, labeled
	// topic=<name>.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = DefaultPartitions
	}
	if c.BufferBatches <= 0 {
		c.BufferBatches = DefaultBufferBatches
	}
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = DefaultHighWatermark
	}
	if c.DiskBytesPerSec <= 0 {
		c.DiskBytesPerSec = DefaultDiskBytesPerSec
	}
	if c.ProduceRetries < 0 {
		c.ProduceRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 50 * time.Millisecond
	}
	return c
}

// Status is a back-pressure report delivered to subscribers.
type Status struct {
	Topic      string
	Overloaded bool
	Occupancy  float64 // occupancy of the partition that transitioned
}

// TopicStats is a snapshot of a topic's counters. Appended/Consumed/Dropped
// count batches; the *Tuples fields count the tuples inside them, which is
// what the chaos harness's conservation ledger balances (a batch either lands
// — possibly after retries — or is dropped with its tuple count attributed).
type TopicStats struct {
	Appended  uint64
	Consumed  uint64
	Dropped   uint64
	Buffered  int
	Bytes     uint64 // wire bytes appended
	Occupancy float64

	Attempts       uint64 // Send calls (one per batch, regardless of retries)
	Retries        uint64 // individual retry attempts across all Sends
	AppendedTuples uint64
	ConsumedTuples uint64
	DroppedTuples  uint64
}

// broker models one aggregation-layer process; its throttle serializes
// simulated I/O so that broker count bounds cluster throughput.
type broker struct {
	id int

	mu     sync.Mutex
	freeAt time.Time
}

// write charges the broker for n bytes at rate bytes/sec. Time debt
// accumulates across writes and is only slept off once it exceeds a couple
// of milliseconds, so the modeled rate is honored without paying the OS
// timer granularity on every small batch.
func (b *broker) write(n int, rate float64) {
	if rate <= 0 || n <= 0 {
		return
	}
	const sleepThreshold = 2 * time.Millisecond
	dur := time.Duration(float64(n) / rate * float64(time.Second))
	b.mu.Lock()
	now := time.Now()
	start := b.freeAt
	if start.Before(now) {
		start = now
	}
	b.freeAt = start.Add(dur)
	wait := b.freeAt.Sub(now)
	b.mu.Unlock()
	if wait > sleepThreshold {
		time.Sleep(wait)
	}
}

// partition is a bounded in-memory log segment with per-consumer-group
// offsets, Kafka-style: every group reads the whole stream independently; a
// record is retained until the slowest group has consumed it. With ingest
// sharding enabled, rings is non-nil and owns the data path; the mutex-
// guarded fields below are the legacy single-owner log.
type partition struct {
	topic  *topic
	broker *broker
	idx    int // ordinal within the topic, for fault targeting

	rings *shardedLog // non-nil when Config.IngestShards > 0

	mu      sync.Mutex
	buf     []*tuple.Batch
	base    uint64 // log offset of buf[0]
	next    uint64 // log offset the next append receives
	groups  map[string]uint64
	cap     int
	over    bool
	retain  bool // retain-latest: evict oldest on full instead of rejecting
	dropped atomic.Uint64
}

// errBufferFull builds the typed, retryable full error for a topic.
func errBufferFull(topic string) error {
	return fmt.Errorf("%w: topic %q", ErrBufferFull, topic)
}

// backlog returns the records not yet consumed by the slowest group (or the
// whole buffer when no group exists yet). Caller holds the lock.
func (p *partition) backlog() int {
	slowest := p.next
	for _, off := range p.groups {
		if off < slowest {
			slowest = off
		}
	}
	if len(p.groups) == 0 {
		slowest = p.base
	}
	return int(p.next - slowest)
}

// trim retires records every group has consumed, returning the dropped
// prefix so the caller can nil its entries *outside* the critical section
// (the compaction loop was the longest lock-held work on the legacy pop
// path). The prefix's array region is unreachable through p.buf once
// resliced, so clearing it after unlock races nothing. Caller holds the lock.
func (p *partition) trim() []*tuple.Batch {
	if len(p.groups) == 0 {
		return nil
	}
	slowest := p.next
	for _, off := range p.groups {
		if off < slowest {
			slowest = off
		}
	}
	k := 0
	for p.base+uint64(k) < slowest && k < len(p.buf) {
		k++
	}
	if k == 0 {
		return nil
	}
	drop := p.buf[:k]
	p.buf = p.buf[k:]
	p.base += uint64(k)
	return drop
}

// append pushes one batch into the partition's log. It returns a typed,
// retryable error — ErrUnavailable (fault hook) or ErrBufferFull (back
// pressure) — without counting drops: drop accounting belongs to
// Producer.Send, which owns the retry policy and knows when a batch is
// finally lost rather than merely deferred. hint is the producer's home
// shard on the sharded path (ignored by the legacy path).
//
// The fault hook and the broker-throttle sleep are deliberately evaluated
// before any lock or ring claim is taken, so injected faults and modeled
// I/O never extend the producer-visible critical section.
func (p *partition) append(b *tuple.Batch, hint int) error {
	if h := p.topic.cluster.faultHook(); h != nil && h.ProduceUnavailable(p.topic.name, p.idx) {
		return fmt.Errorf("%w: topic %q partition %d", ErrUnavailable, p.topic.name, p.idx)
	}

	// Stamp the aggregation-layer arrival time for latency tracing. Written
	// by the appending producer before the batch becomes visible to
	// consumers (publication is the locked append below, or the ring's
	// atomic head store), so readers never race it.
	b.ProduceNS = time.Now().UnixNano()
	size := b.WireSize()
	cfg := p.topic.cluster.cfg
	switch cfg.Persist {
	case PersistDisk:
		p.broker.write(size, cfg.DiskBytesPerSec)
	default:
		p.broker.write(size, cfg.IngestBytesPerSec)
	}

	if p.rings != nil {
		if err := p.rings.append(b, hint); err != nil {
			return err
		}
	} else {
		lockStart := time.Now()
		p.mu.Lock()
		wait := time.Since(lockStart)
		var evicted, evictedTuples uint64
		if p.backlog() >= p.cap {
			if !p.retain {
				p.mu.Unlock()
				p.topic.lockWait.Observe(wait.Nanoseconds())
				return errBufferFull(p.topic.name)
			}
			// Retain-latest: evict the oldest records (bumping any group
			// offset that pointed into the evicted prefix) so the newest
			// record always lands. An incident stream with no consumer yet
			// must keep the latest incidents, not the first N.
			for p.backlog() >= p.cap && len(p.buf) > 0 {
				old := p.buf[0]
				p.buf[0] = nil
				p.buf = p.buf[1:]
				p.base++
				evicted++
				evictedTuples += uint64(len(old.Tuples))
				for g, off := range p.groups {
					if off < p.base {
						p.groups[g] = p.base
					}
				}
			}
		}
		p.buf = append(p.buf, b)
		p.next++
		occ := float64(p.backlog()) / float64(p.cap)
		transition := false
		if !p.over && occ >= cfg.HighWatermark {
			p.over = true
			transition = true
		}
		p.mu.Unlock()
		p.topic.lockWait.Observe(wait.Nanoseconds())
		if evicted > 0 {
			p.dropped.Add(evicted)
			p.topic.dropped.Add(evicted)
			p.topic.droppedTuples.Add(evictedTuples)
		}
		if transition {
			p.topic.overloads.Add(1)
			p.topic.cluster.notify(Status{Topic: p.topic.name, Overloaded: true, Occupancy: occ})
		}
	}

	p.topic.appended.Add(1)
	p.topic.appendedTuples.Add(uint64(len(b.Tuples)))
	p.topic.bytes.Add(uint64(size))
	p.topic.signalData()
	return nil
}

// register ensures the group exists, starting at the earliest retained
// record (Kafka's earliest auto-offset policy) so a topology attaching just
// after its query's monitors misses nothing.
func (p *partition) register(group string) {
	if p.rings != nil {
		p.rings.cursors(group)
		return
	}
	p.mu.Lock()
	if _, ok := p.groups[group]; !ok {
		p.groups[group] = p.base
	}
	p.mu.Unlock()
}

func (p *partition) pop(group string, hint int) *tuple.Batch {
	// An unavailable partition reads as empty. The group's offset is not
	// advanced, so the consumer's reconnect after the fault clears resumes at
	// exactly the next unread record — offset preservation by construction.
	// This holds identically on the sharded path: ring cursors only move on
	// a successful claim, so a fault window leaves every cursor in place.
	if h := p.topic.cluster.faultHook(); h != nil && h.ConsumeUnavailable(p.topic.name, p.idx) {
		return nil
	}

	var b *tuple.Batch
	if p.rings != nil {
		b = p.rings.pop(group, hint)
		if b == nil {
			return nil
		}
	} else {
		cfg := p.topic.cluster.cfg
		lockStart := time.Now()
		p.mu.Lock()
		wait := time.Since(lockStart)
		off, ok := p.groups[group]
		if !ok {
			off = p.base
		}
		if off >= p.next {
			p.mu.Unlock()
			p.topic.lockWait.Observe(wait.Nanoseconds())
			return nil
		}
		b = p.buf[off-p.base]
		p.groups[group] = off + 1
		drop := p.trim()
		occ := float64(p.backlog()) / float64(p.cap)
		transition := false
		if p.over && occ <= cfg.HighWatermark/2 {
			p.over = false
			transition = true
		}
		p.mu.Unlock()
		p.topic.lockWait.Observe(wait.Nanoseconds())
		// Compaction outside the lock: the dropped prefix is unreachable
		// through p.buf now, so clearing the references for the GC cannot
		// race another append/pop.
		for i := range drop {
			drop[i] = nil
		}
		if transition {
			p.topic.cluster.notify(Status{Topic: p.topic.name, Overloaded: false, Occupancy: occ})
		}
	}

	p.topic.consumed.Add(1)
	p.topic.consumedTuples.Add(uint64(len(b.Tuples)))
	return b
}

type topic struct {
	name       string
	cluster    *Cluster
	partitions []*partition

	// Registry-backed when the cluster config carries a telemetry registry;
	// standalone atomics otherwise. Same hot-path cost either way.
	appended  *telemetry.Counter
	consumed  *telemetry.Counter
	dropped   *telemetry.Counter
	bytes     *telemetry.Counter
	overloads *telemetry.Counter // high-watermark transitions (back-pressure events)

	// Retry/fault accounting (tentpole of the fault-injection PR): attempts
	// and retries at batch granularity, plus tuple-granular appended /
	// consumed / dropped counters for the chaos conservation ledger.
	attempts       *telemetry.Counter // mq_attempts: Send calls
	retries        *telemetry.Counter // mq_retries: retry attempts
	appendedTuples *telemetry.Counter
	consumedTuples *telemetry.Counter
	droppedTuples  *telemetry.Counter

	// lockWait records how long legacy-path producers and consumers waited
	// for a partition lock (mq_partition_lock_wait_ns) — the contention the
	// sharded ingest path exists to remove. Unused (zero observations) when
	// IngestShards > 0.
	lockWait *telemetry.Histogram

	// nextShard hands each new producer a home shard round-robin, so N
	// producers spread across the N rings before any claim contention.
	nextShard atomic.Uint64

	// Blocking-poll wakeup: PollWait parks on dataCh and append closes it,
	// but only when someone is actually waiting — the waiters guard keeps
	// the producer hot path at a single atomic load.
	waiters atomic.Int32
	dataMu  sync.Mutex
	dataCh  chan struct{}
}

// dataSignal returns the channel the next append will close. Consumers must
// register in waiters before calling it and re-poll afterwards: an append
// racing the registration may have found waiters still zero.
func (t *topic) dataSignal() <-chan struct{} {
	t.dataMu.Lock()
	if t.dataCh == nil {
		t.dataCh = make(chan struct{})
	}
	ch := t.dataCh
	t.dataMu.Unlock()
	return ch
}

// signalData wakes parked PollWait callers after new data became visible.
func (t *topic) signalData() {
	if t.waiters.Load() == 0 {
		return
	}
	t.dataMu.Lock()
	if t.dataCh != nil {
		close(t.dataCh)
		t.dataCh = nil
	}
	t.dataMu.Unlock()
}

// Cluster is a set of brokers hosting topics.
type Cluster struct {
	cfg     Config
	brokers []*broker

	mu     sync.Mutex
	topics map[string]*topic
	subs   map[string][]chan Status
	retain map[string]bool // topics in retain-latest (drop-oldest) mode
	nextBk int

	fault atomic.Pointer[FaultHook]
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
// Takes effect on the next produce/consume operation.
func (c *Cluster) SetFaultHook(h FaultHook) {
	if h == nil {
		c.fault.Store(nil)
		return
	}
	c.fault.Store(&h)
}

func (c *Cluster) faultHook() FaultHook {
	if hp := c.fault.Load(); hp != nil {
		return *hp
	}
	return nil
}

// NewCluster creates a cluster with the given number of brokers (minimum 1).
func NewCluster(numBrokers int, cfg Config) *Cluster {
	if numBrokers < 1 {
		numBrokers = 1
	}
	c := &Cluster{
		cfg:    cfg.withDefaults(),
		topics: make(map[string]*topic),
		subs:   make(map[string][]chan Status),
	}
	for i := 0; i < numBrokers; i++ {
		c.brokers = append(c.brokers, &broker{id: i})
	}
	return c
}

// BrokerCount returns the number of brokers.
func (c *Cluster) BrokerCount() int { return len(c.brokers) }

// SetRetainLatest switches a topic to retain-latest mode: when its buffer
// fills, the oldest record is evicted (and counted dropped) so the newest
// always lands. Normal topics do the opposite — reject the new batch and
// retain history — which is right for query pipelines with attached
// consumers, but wrong for an always-on stream like `_incidents` that may
// have no consumer at all: without eviction it would fill once and then
// reject every incident after the first BufferBatches forever. Call before
// the topic's first use; retain-latest topics always use the legacy locked
// log (eviction needs the single-owner buffer), regardless of IngestShards.
func (c *Cluster) SetRetainLatest(name string) {
	c.mu.Lock()
	if c.retain == nil {
		c.retain = make(map[string]bool)
	}
	c.retain[name] = true
	t := c.topics[name]
	c.mu.Unlock()
	if t == nil {
		return
	}
	// Already-created topic: flip the flag on its legacy partitions (sharded
	// partitions keep reject semantics — eviction needs the locked log).
	for _, p := range t.partitions {
		if p.rings != nil {
			continue
		}
		p.mu.Lock()
		p.retain = true
		p.mu.Unlock()
	}
}

// getTopic returns the topic, creating it with partitions spread across
// brokers round-robin. Metric registration happens outside the cluster lock:
// registry snapshots evaluate the occupancy gauges (registry lock → cluster
// lock), so registering under the cluster lock (cluster lock → registry
// lock) would invert the order and risk deadlock. Registry accessors are
// idempotent, so losing a creation race just re-resolves the same series.
func (c *Cluster) getTopic(name string) *topic {
	c.mu.Lock()
	t, ok := c.topics[name]
	c.mu.Unlock()
	if ok {
		return t
	}

	reg := c.cfg.Metrics
	label := telemetry.L("topic", name)
	cand := &topic{
		name:           name,
		cluster:        c,
		appended:       reg.Counter("mq_appended", label),
		consumed:       reg.Counter("mq_consumed", label),
		dropped:        reg.Counter("mq_dropped", label),
		bytes:          reg.Counter("mq_bytes", label),
		overloads:      reg.Counter("mq_overloads", label),
		attempts:       reg.Counter("mq_attempts", label),
		retries:        reg.Counter("mq_retries", label),
		appendedTuples: reg.Counter("mq_appended_tuples", label),
		consumedTuples: reg.Counter("mq_consumed_tuples", label),
		droppedTuples:  reg.Counter("mq_dropped_tuples", label),
		lockWait:       reg.Histogram("mq_partition_lock_wait_ns", label),
	}
	if reg != nil {
		// Occupancy and backlog are sampled at snapshot time; Stats takes
		// the cluster and partition locks only, never the registry's.
		reg.GaugeFunc("mq_occupancy", func() float64 {
			return c.Stats(name).Occupancy
		}, label)
		reg.GaugeFunc("mq_buffered", func() float64 {
			return float64(c.Stats(name).Buffered)
		}, label)
		// Per-shard occupancy, so a hot ring is visible even when the
		// topic-level max hides which producer is responsible.
		for s := 0; s < c.cfg.IngestShards; s++ {
			shard := s
			reg.GaugeFunc("mq_shard_occupancy", func() float64 {
				maxOcc := 0.0
				for _, ps := range c.ShardStats(name) {
					if shard < len(ps) && ps[shard].Occupancy > maxOcc {
						maxOcc = ps[shard].Occupancy
					}
				}
				return maxOcc
			}, label, telemetry.L("shard", fmt.Sprintf("%d", shard)))
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok = c.topics[name]; ok {
		return t
	}
	retain := c.retain[name]
	for i := 0; i < c.cfg.Partitions; i++ {
		bk := c.brokers[c.nextBk%len(c.brokers)]
		c.nextBk++
		p := &partition{
			topic:  cand,
			broker: bk,
			idx:    i,
			groups: make(map[string]uint64),
			cap:    c.cfg.BufferBatches,
			retain: retain,
		}
		if c.cfg.IngestShards > 0 && !retain {
			p.rings = newShardedLog(p, c.cfg.IngestShards, c.cfg.BufferBatches)
		}
		cand.partitions = append(cand.partitions, p)
	}
	c.topics[name] = cand
	return cand
}

// ShardStats snapshots each partition's per-shard ring telemetry for a
// topic: one []ShardStats per partition. Nil for unknown topics or when
// ingest sharding is off.
func (c *Cluster) ShardStats(topicName string) [][]ShardStats {
	c.mu.Lock()
	t := c.topics[topicName]
	c.mu.Unlock()
	if t == nil {
		return nil
	}
	var out [][]ShardStats
	for _, p := range t.partitions {
		if p.rings != nil {
			out = append(out, p.rings.shardStats())
		}
	}
	return out
}

// Topics lists existing topic names.
func (c *Cluster) Topics() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.topics))
	for name := range c.topics {
		out = append(out, name)
	}
	return out
}

// DeleteTopic removes a topic and unregisters its telemetry series (every
// metric labeled topic=<name>). A session retiring its per-query topics calls
// this after its executors stop, so a long-lived cluster hosting a churn of
// queries does not accumulate dead topics and gauges forever. Back-pressure
// subscriber channels for the topic are released (not closed: notify may hold
// a reference concurrently, and receivers select with a default). Producers
// or consumers still holding the old *topic keep working against the orphaned
// partitions; a later getTopic(name) creates a fresh topic. Returns false for
// unknown topics.
func (c *Cluster) DeleteTopic(name string) bool {
	c.mu.Lock()
	_, ok := c.topics[name]
	delete(c.topics, name)
	delete(c.subs, name)
	c.mu.Unlock()
	if !ok {
		return false
	}
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.DropLabeled("topic", name)
	}
	return true
}

// Subscribe registers for back-pressure statuses on a topic. The channel is
// buffered; statuses are dropped rather than blocking the data path.
func (c *Cluster) Subscribe(topicName string) <-chan Status {
	ch := make(chan Status, 16)
	c.mu.Lock()
	c.subs[topicName] = append(c.subs[topicName], ch)
	c.mu.Unlock()
	return ch
}

func (c *Cluster) notify(s Status) {
	c.mu.Lock()
	subs := c.subs[s.Topic]
	c.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- s:
		default:
		}
	}
}

// Pressure returns the topic's worst partition occupancy in [0,1].
func (c *Cluster) Pressure(topicName string) float64 {
	return c.Stats(topicName).Occupancy
}

// HighWatermark returns the configured overload threshold.
func (c *Cluster) HighWatermark() float64 { return c.cfg.HighWatermark }

// Stats snapshots a topic's counters; unknown topics return zeros.
func (c *Cluster) Stats(topicName string) TopicStats {
	c.mu.Lock()
	t := c.topics[topicName]
	c.mu.Unlock()
	if t == nil {
		return TopicStats{}
	}
	st := TopicStats{
		Appended:       t.appended.Value(),
		Consumed:       t.consumed.Value(),
		Dropped:        t.dropped.Value(),
		Bytes:          t.bytes.Value(),
		Attempts:       t.attempts.Value(),
		Retries:        t.retries.Value(),
		AppendedTuples: t.appendedTuples.Value(),
		ConsumedTuples: t.consumedTuples.Value(),
		DroppedTuples:  t.droppedTuples.Value(),
	}
	maxOcc := 0.0
	for _, p := range t.partitions {
		var occ float64
		if p.rings != nil {
			st.Buffered += p.rings.backlogTotal()
			occ = p.rings.maxOccupancy()
		} else {
			p.mu.Lock()
			st.Buffered += p.backlog()
			occ = float64(p.backlog()) / float64(p.cap)
			p.mu.Unlock()
		}
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	st.Occupancy = maxOcc
	return st
}

// LockWaitNS returns the topic's legacy-path partition lock-wait histogram
// (mq_partition_lock_wait_ns): how long producers and consumers stalled
// acquiring partition locks. Always non-nil; empty on the sharded path.
func (c *Cluster) LockWaitNS(topicName string) *telemetry.Histogram {
	return c.getTopic(topicName).lockWait
}

// Producer publishes batches to one topic. It implements monitor.Sink.
type Producer struct {
	t     *topic
	next  atomic.Uint64
	shard int // home shard on the sharded ingest path
}

// Producer creates a producer for a topic (creating the topic on demand).
// Each producer gets a distinct home shard round-robin, so on the sharded
// path concurrent producers start on disjoint rings.
func (c *Cluster) Producer(topicName string) *Producer {
	t := c.getTopic(topicName)
	return &Producer{t: t, shard: int(t.nextShard.Add(1) - 1)}
}

// Send appends a batch to the next partition round-robin. Retryable failures
// (ErrBufferFull back pressure, ErrUnavailable faults) are retried against
// the same partition up to Config.ProduceRetries times with bounded
// exponential backoff; only when the budget is exhausted is the batch counted
// as dropped — with its tuple count attributed — and the typed error
// returned, so callers can distinguish deferred from lost.
func (p *Producer) Send(b *tuple.Batch) error {
	t := p.t
	cfg := t.cluster.cfg
	t.attempts.Add(1)
	part := t.partitions[p.next.Add(1)%uint64(len(t.partitions))]

	err := part.append(b, p.shard)
	backoff := cfg.RetryBackoff
	for tries := 0; err != nil && tries < cfg.ProduceRetries; tries++ {
		t.retries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > cfg.RetryBackoffMax {
			backoff = cfg.RetryBackoffMax
		}
		err = part.append(b, p.shard)
	}
	if err != nil {
		part.dropped.Add(1)
		t.dropped.Add(1)
		t.droppedTuples.Add(uint64(len(b.Tuples)))
	}
	return err
}

// Deliver implements the monitor sink interface.
func (p *Producer) Deliver(b *tuple.Batch) error { return p.Send(b) }

// Consumer pulls batches from a topic on behalf of a consumer group:
// consumers sharing a group split the stream between them (each batch is
// delivered once per group), while distinct groups each receive the whole
// stream — exactly Kafka's model, which lets several processing topologies
// subscribe to one query's data independently.
type Consumer struct {
	t        *topic
	group    string
	next     int
	affinity int // shard scan start on the sharded ingest path
}

// SetShardAffinity gives the consumer a partition-to-core affinity hint: on
// the sharded ingest path its pops scan the rings starting at this index, so
// co-scheduled spout tasks drain the shards "their" producers fill before
// touching anyone else's. Purely a preference — every ring is still visited,
// so no data is stranded. No-op on the legacy path.
func (cs *Consumer) SetShardAffinity(hint int) {
	if hint < 0 {
		hint = 0
	}
	cs.affinity = hint
}

// DefaultGroup is the consumer group used by Consumer.
const DefaultGroup = "default"

// Consumer creates a consumer in the default group (creating the topic on
// demand).
func (c *Cluster) Consumer(topicName string) *Consumer {
	return c.GroupConsumer(topicName, DefaultGroup)
}

// GroupConsumer creates a consumer in a named group. The group's offsets
// start at the earliest retained record.
func (c *Cluster) GroupConsumer(topicName, group string) *Consumer {
	if group == "" {
		group = DefaultGroup
	}
	t := c.getTopic(topicName)
	for _, p := range t.partitions {
		p.register(group)
	}
	return &Consumer{t: t, group: group}
}

// Poll returns up to max buffered batches without blocking.
func (cs *Consumer) Poll(max int) []*tuple.Batch {
	if max <= 0 {
		max = 1
	}
	var out []*tuple.Batch
	parts := cs.t.partitions
	for tries := 0; tries < len(parts) && len(out) < max; {
		p := parts[cs.next%len(parts)]
		cs.next++
		b := p.pop(cs.group, cs.affinity)
		if b == nil {
			tries++
			continue
		}
		tries = 0
		out = append(out, b)
	}
	return out
}

// PollWait polls until at least one batch arrives or the timeout elapses
// (returning nil). Waiting is wakeup-driven rather than poll-driven: the
// consumer parks on the topic's data signal and the producer's append wakes
// it, so an idle consumer costs nothing between batches and a new batch is
// seen within a scheduler hop instead of a sleep quantum.
func (cs *Consumer) PollWait(max int, timeout time.Duration) []*tuple.Batch {
	if out := cs.Poll(max); len(out) > 0 {
		return out
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		cs.t.waiters.Add(1)
		sig := cs.t.dataSignal()
		// Re-poll after registering: an append that raced the registration
		// saw no waiters and skipped the signal.
		if out := cs.Poll(max); len(out) > 0 {
			cs.t.waiters.Add(-1)
			return out
		}
		select {
		case <-sig:
			cs.t.waiters.Add(-1)
			// Another consumer in the group may have taken the batch; loop
			// and park again if so.
			if out := cs.Poll(max); len(out) > 0 {
				return out
			}
		case <-timer.C:
			cs.t.waiters.Add(-1)
			return cs.Poll(max)
		}
	}
}
