package mq

import (
	"errors"
	"sync"
	"testing"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

func batchOf(n int) *tuple.Batch {
	b := &tuple.Batch{Parser: "p"}
	for i := 0; i < n; i++ {
		b.Tuples = append(b.Tuples, tuple.Tuple{FlowID: uint64(i), Key: "/url"})
	}
	return b
}

func TestProduceConsume(t *testing.T) {
	c := NewCluster(2, Config{Partitions: 3})
	prod := c.Producer("http_get")
	cons := c.Consumer("http_get")

	for i := 0; i < 10; i++ {
		if err := prod.Send(batchOf(2)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	var got int
	for {
		bs := cons.Poll(4)
		if len(bs) == 0 {
			break
		}
		got += len(bs)
	}
	if got != 10 {
		t.Errorf("consumed %d batches, want 10", got)
	}
	st := c.Stats("http_get")
	if st.Appended != 10 || st.Consumed != 10 || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Error("no bytes accounted")
	}
}

func TestTopicsAndUnknownStats(t *testing.T) {
	c := NewCluster(1, Config{})
	c.Producer("a")
	c.Producer("b")
	c.Producer("a") // same topic reused
	if got := len(c.Topics()); got != 2 {
		t.Errorf("Topics = %v", c.Topics())
	}
	if st := c.Stats("missing"); st != (TopicStats{}) {
		t.Errorf("unknown topic stats = %+v", st)
	}
}

func TestBufferFull(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 4})
	prod := c.Producer("t")
	for i := 0; i < 4; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := prod.Send(batchOf(1)); !errors.Is(err, ErrBufferFull) {
		t.Errorf("err = %v, want ErrBufferFull", err)
	}
	st := c.Stats("t")
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	if st.Occupancy != 1 {
		t.Errorf("Occupancy = %v, want 1", st.Occupancy)
	}
}

func TestConsumerGroupSemantics(t *testing.T) {
	// Two consumers of one topic each receive a disjoint subset.
	c := NewCluster(1, Config{Partitions: 2})
	prod := c.Producer("t")
	const n = 40
	for i := 0; i < n; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	c1 := c.Consumer("t")
	c2 := c.Consumer("t")
	total := len(c1.Poll(n)) + len(c2.Poll(n))
	if total != n {
		t.Errorf("both consumers saw %d batches total, want %d", total, n)
	}
}

func TestConsumerGroupsFanOut(t *testing.T) {
	// Two groups each receive the full stream; consumers within one group
	// split it.
	c := NewCluster(1, Config{Partitions: 2})
	prod := c.Producer("t")
	gA := c.GroupConsumer("t", "alpha")
	gB1 := c.GroupConsumer("t", "beta")
	gB2 := c.GroupConsumer("t", "beta")

	const n = 30
	for i := 0; i < n; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(gA.Poll(n * 2)); got != n {
		t.Errorf("group alpha received %d batches, want %d", got, n)
	}
	betaTotal := len(gB1.Poll(n*2)) + len(gB2.Poll(n*2))
	if betaTotal != n {
		t.Errorf("group beta received %d batches total, want %d", betaTotal, n)
	}
	// Everything consumed by both groups: the log is trimmed.
	if st := c.Stats("t"); st.Buffered != 0 {
		t.Errorf("Buffered = %d after both groups drained", st.Buffered)
	}
}

func TestRetentionWaitsForSlowestGroup(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 8})
	prod := c.Producer("t")
	fast := c.GroupConsumer("t", "fast")
	_ = c.GroupConsumer("t", "slow") // registered but never polls

	for i := 0; i < 8; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Fast drains, slow does not: records stay retained and the partition
	// stays full for the slow group.
	if got := len(fast.Poll(16)); got != 8 {
		t.Fatalf("fast group got %d", got)
	}
	if st := c.Stats("t"); st.Buffered != 8 {
		t.Errorf("Buffered = %d, want 8 (slow group unconsumed)", st.Buffered)
	}
	if err := prod.Send(batchOf(1)); !errors.Is(err, ErrBufferFull) {
		t.Errorf("append despite slow group backlog: %v", err)
	}
	// A new group attaching now replays the retained history.
	late := c.GroupConsumer("t", "late")
	if got := len(late.Poll(16)); got != 8 {
		t.Errorf("late group replayed %d records, want 8", got)
	}
}

func TestEmptyGroupNameDefaults(t *testing.T) {
	c := NewCluster(1, Config{})
	prod := c.Producer("t")
	g := c.GroupConsumer("t", "")
	def := c.Consumer("t")
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	// "" aliases the default group: the two consumers compete.
	total := len(g.Poll(4)) + len(def.Poll(4))
	if total != 1 {
		t.Errorf("default-group consumers received %d copies, want 1", total)
	}
}

func TestBackPressureStatuses(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 10, HighWatermark: 0.5})
	sub := c.Subscribe("t")
	prod := c.Producer("t")
	cons := c.Consumer("t")

	// Fill to the high watermark: expect one overloaded=true transition.
	for i := 0; i < 6; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case s := <-sub:
		if !s.Overloaded || s.Topic != "t" {
			t.Errorf("status = %+v, want overloaded on t", s)
		}
	default:
		t.Fatal("no overload status emitted")
	}

	// Drain below the low watermark (0.25): expect recovery.
	for i := 0; i < 5; i++ {
		if cons.Poll(1) == nil {
			t.Fatal("unexpected empty poll")
		}
	}
	select {
	case s := <-sub:
		if s.Overloaded {
			t.Errorf("status = %+v, want recovery", s)
		}
	default:
		t.Fatal("no recovery status emitted")
	}
}

func TestStatusTransitionsNotRepeated(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 10, HighWatermark: 0.5})
	sub := c.Subscribe("t")
	prod := c.Producer("t")
	for i := 0; i < 9; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sub); got != 1 {
		t.Errorf("received %d statuses while filling, want 1 transition", got)
	}
}

func TestPollWait(t *testing.T) {
	c := NewCluster(1, Config{})
	cons := c.Consumer("t")
	prod := c.Producer("t")

	start := time.Now()
	if got := cons.PollWait(1, 30*time.Millisecond); got != nil {
		t.Errorf("PollWait on empty topic = %v", got)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("PollWait returned before timeout")
	}

	done := make(chan []*tuple.Batch, 1)
	go func() { done <- cons.PollWait(1, time.Second) }()
	time.Sleep(5 * time.Millisecond)
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if len(got) != 1 {
			t.Errorf("PollWait = %d batches, want 1", len(got))
		}
	case <-time.After(time.Second):
		t.Fatal("PollWait never returned after Send")
	}
}

// TestPollWaitWakeupPrompt checks that PollWait is wakeup-driven: a parked
// consumer must see a new batch well before its (long) timeout, and the
// producer path must not leave waiter state behind that breaks later waits.
func TestPollWaitWakeupPrompt(t *testing.T) {
	c := NewCluster(1, Config{})
	cons := c.Consumer("w")
	prod := c.Producer("w")

	for round := 0; round < 3; round++ {
		done := make(chan []*tuple.Batch, 1)
		go func() { done <- cons.PollWait(1, 10*time.Second) }()
		time.Sleep(10 * time.Millisecond) // let the consumer park
		sent := time.Now()
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-done:
			if len(got) != 1 {
				t.Fatalf("round %d: PollWait = %d batches, want 1", round, len(got))
			}
			if lat := time.Since(sent); lat > 500*time.Millisecond {
				t.Errorf("round %d: wakeup took %v, want prompt", round, lat)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: PollWait never woke after Send", round)
		}
	}
	if w := c.getTopic("w").waiters.Load(); w != 0 {
		t.Errorf("waiters = %d after all waits returned, want 0", w)
	}
}

func TestDiskModeSlowerThanRAM(t *testing.T) {
	const batches = 200
	big := batchOf(64)

	measure := func(cfg Config) time.Duration {
		c := NewCluster(1, cfg)
		prod := c.Producer("t")
		start := time.Now()
		for i := 0; i < batches; i++ {
			if err := prod.Send(big); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	ram := measure(Config{BufferBatches: batches + 1})
	disk := measure(Config{BufferBatches: batches + 1, Persist: PersistDisk, DiskBytesPerSec: 10 << 20})
	if disk < 10*ram {
		t.Errorf("disk mode (%v) not an order of magnitude slower than RAM (%v)", disk, ram)
	}
}

func TestIngestThrottleBoundsThroughput(t *testing.T) {
	// 1 MB/s ingest, ~5KB batches: 20 batches should take ~100ms.
	c := NewCluster(1, Config{BufferBatches: 64, IngestBytesPerSec: 1 << 20})
	prod := c.Producer("t")
	size := batchOf(64).WireSize()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := prod.Send(batchOf(64)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(20*size) / float64(1<<20) * float64(time.Second))
	if elapsed < want/2 {
		t.Errorf("throttled send took %v, want >= %v", elapsed, want/2)
	}
}

func TestConcurrentProducersAndConsumers(t *testing.T) {
	c := NewCluster(4, Config{Partitions: 4, BufferBatches: 10000})
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prod := c.Producer("t")
			for i := 0; i < perProducer; i++ {
				if err := prod.Send(batchOf(1)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	cons := c.Consumer("t")
	total := 0
	for {
		bs := cons.Poll(64)
		if len(bs) == 0 {
			break
		}
		total += len(bs)
	}
	if total != producers*perProducer {
		t.Errorf("consumed %d, want %d", total, producers*perProducer)
	}
}

func BenchmarkProduceConsumeRAM(b *testing.B) {
	c := NewCluster(2, Config{Partitions: 4, BufferBatches: 1 << 20})
	prod := c.Producer("bench")
	cons := c.Consumer("bench")
	batch := batchOf(64)
	b.SetBytes(int64(batch.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prod.Send(batch); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			cons.Poll(64)
		}
	}
}

// scriptedHook is a FaultHook whose produce path fails a fixed number of
// times and whose consume path is toggled explicitly — deterministic stand-in
// for the fault injector in retry/reconnect tests.
type scriptedHook struct {
	mu          sync.Mutex
	produceFail int
	consumeDown bool
}

func (h *scriptedHook) ProduceUnavailable(topic string, partition int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.produceFail > 0 {
		h.produceFail--
		return true
	}
	return false
}

func (h *scriptedHook) ConsumeUnavailable(topic string, partition int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consumeDown
}

func (h *scriptedHook) setConsumeDown(v bool) {
	h.mu.Lock()
	h.consumeDown = v
	h.mu.Unlock()
}

// TestProducerRetriesUnavailable: transient unavailability is absorbed by the
// producer's bounded backoff retry — the batch lands, the retries are
// counted, nothing is dropped.
func TestProducerRetriesUnavailable(t *testing.T) {
	hook := &scriptedHook{produceFail: 3}
	c := NewCluster(1, Config{Partitions: 1, ProduceRetries: 5, RetryBackoff: 100 * time.Microsecond})
	c.SetFaultHook(hook)
	prod := c.Producer("t")
	if err := prod.Send(batchOf(4)); err != nil {
		t.Fatalf("Send with retry budget: %v", err)
	}
	st := c.Stats("t")
	if st.Appended != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want 1 appended 0 dropped", st)
	}
	if st.Attempts != 1 || st.Retries != 3 {
		t.Errorf("attempts=%d retries=%d, want 1/3", st.Attempts, st.Retries)
	}
	if st.AppendedTuples != 4 {
		t.Errorf("appended tuples = %d, want 4", st.AppendedTuples)
	}
}

// TestProducerUnavailableTypedError: when the retry budget is exhausted the
// caller sees the typed ErrUnavailable — not a silent drop — and the drop is
// attributed in both batch and tuple counters.
func TestProducerUnavailableTypedError(t *testing.T) {
	hook := &scriptedHook{produceFail: 100}
	c := NewCluster(1, Config{Partitions: 1, ProduceRetries: 2, RetryBackoff: 50 * time.Microsecond})
	c.SetFaultHook(hook)
	prod := c.Producer("t")
	err := prod.Send(batchOf(3))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	st := c.Stats("t")
	if st.Appended != 0 || st.Dropped != 1 || st.DroppedTuples != 3 {
		t.Errorf("stats = %+v, want 0 appended, 1 dropped, 3 dropped tuples", st)
	}
	if st.Attempts != 1 || st.Retries != 2 {
		t.Errorf("attempts=%d retries=%d, want 1/2", st.Attempts, st.Retries)
	}
}

// TestProducerRetriesBufferFull: back pressure is retryable too — a Send
// racing a draining consumer succeeds once capacity frees up.
func TestProducerRetriesBufferFull(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 2, ProduceRetries: 50, RetryBackoff: 200 * time.Microsecond})
	prod := c.Producer("t")
	cons := c.Consumer("t")
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	// Partition full. Drain one batch shortly after the blocked Send begins
	// retrying; the retry must then land.
	go func() {
		time.Sleep(2 * time.Millisecond)
		cons.Poll(1)
	}()
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatalf("Send under back pressure with retries: %v", err)
	}
	st := c.Stats("t")
	if st.Appended != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Retries == 0 {
		t.Error("no retries counted for the back-pressured Send")
	}
}

// TestConsumerOffsetPreservingReconnect: a consume-side outage reads as "no
// data"; once it clears the same group resumes at the exact next offset — no
// loss, no duplicates, order preserved.
func TestConsumerOffsetPreservingReconnect(t *testing.T) {
	hook := &scriptedHook{}
	c := NewCluster(1, Config{Partitions: 1})
	c.SetFaultHook(hook)
	prod := c.Producer("t")
	cons := c.GroupConsumer("t", "g")

	for i := 0; i < 10; i++ {
		b := batchOf(1)
		b.Tuples[0].FlowID = uint64(i)
		if err := prod.Send(b); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	drain := func(want int) {
		t.Helper()
		for _, b := range cons.Poll(want) {
			seen = append(seen, b.Tuples[0].FlowID)
		}
	}
	drain(4)
	if len(seen) != 4 {
		t.Fatalf("pre-fault consumed %d, want 4", len(seen))
	}

	hook.setConsumeDown(true)
	if got := cons.Poll(4); len(got) != 0 {
		t.Fatalf("unavailable partition returned %d batches", len(got))
	}
	hook.setConsumeDown(false)

	drain(100)
	if len(seen) != 10 {
		t.Fatalf("total consumed %d, want 10 (offset lost or duplicated)", len(seen))
	}
	for i, id := range seen {
		if id != uint64(i) {
			t.Fatalf("order broken at %d: got flow %d; all=%v", i, id, seen)
		}
	}
	st := c.Stats("t")
	if st.Consumed != 10 || st.ConsumedTuples != 10 || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeleteTopic(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCluster(1, Config{Partitions: 2, Metrics: reg})
	prod := c.Producer("doomed")
	if err := prod.Send(batchOf(3)); err != nil {
		t.Fatal(err)
	}
	c.Producer("survivor")
	before := reg.Len()
	if before == 0 {
		t.Fatal("no metrics registered for topics")
	}

	if !c.DeleteTopic("doomed") {
		t.Fatal("DeleteTopic(doomed) = false, want true")
	}
	if c.DeleteTopic("doomed") {
		t.Error("second DeleteTopic(doomed) = true, want false")
	}
	for _, name := range c.Topics() {
		if name == "doomed" {
			t.Error("deleted topic still listed")
		}
	}
	// Every topic=doomed series is gone; survivor's series remain.
	for _, p := range reg.Snapshot() {
		if p.Labels["topic"] == "doomed" {
			t.Fatalf("leaked series %s{%v}", p.Name, p.Labels)
		}
	}
	if reg.Len() >= before {
		t.Errorf("registry len %d not reduced from %d", reg.Len(), before)
	}
	if got := c.Stats("survivor"); got.Appended != 0 {
		t.Errorf("survivor stats disturbed: %+v", got)
	}
	// Recreating the name yields a fresh, working topic.
	if err := c.Producer("doomed").Send(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats("doomed").Appended; got != 1 {
		t.Errorf("recreated topic Appended = %d, want 1", got)
	}
}
