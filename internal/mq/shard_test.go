package mq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shardedCluster is the sharded-ingest analogue of the default test cluster.
func shardedCluster(shards int, cfg Config) *Cluster {
	cfg.IngestShards = shards
	return NewCluster(2, cfg)
}

// TestShardedParityWithLegacy: the sharded path must deliver the same tuple
// multiset as the legacy path for the same workload — sharding changes who
// holds which lock, never what arrives.
func TestShardedParityWithLegacy(t *testing.T) {
	workload := func(c *Cluster) map[uint64]int {
		prod := c.Producer("t")
		for i := 0; i < 100; i++ {
			b := batchOf(1)
			b.Tuples[0].FlowID = uint64(i)
			if err := prod.Send(b); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		cons := c.Consumer("t")
		got := make(map[uint64]int)
		for {
			bs := cons.Poll(16)
			if len(bs) == 0 {
				break
			}
			for _, b := range bs {
				for _, tu := range b.Tuples {
					got[tu.FlowID]++
				}
			}
		}
		return got
	}
	legacy := workload(NewCluster(2, Config{Partitions: 3}))
	sharded := workload(shardedCluster(4, Config{Partitions: 3}))
	if len(legacy) != 100 || len(sharded) != 100 {
		t.Fatalf("multiset sizes: legacy %d sharded %d, want 100", len(legacy), len(sharded))
	}
	for id, n := range legacy {
		if sharded[id] != n {
			t.Fatalf("flow %d: legacy %d sharded %d", id, n, sharded[id])
		}
	}
}

// TestShardedConcurrentConservation: N producers and K group consumers
// hammer one sharded topic concurrently; every batch must arrive exactly
// once (run under -race in CI).
func TestShardedConcurrentConservation(t *testing.T) {
	c := shardedCluster(4, Config{Partitions: 2, BufferBatches: 1 << 14})
	const producers, perProducer, consumers = 4, 300, 3
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			prod := c.Producer("t")
			for i := 0; i < perProducer; i++ {
				b := batchOf(1)
				b.Tuples[0].FlowID = uint64(g*perProducer + i)
				if err := prod.Send(b); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}

	var seen sync.Map
	var total atomic.Int64
	var dups atomic.Int64
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for k := 0; k < consumers; k++ {
		k := k
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			cons := c.GroupConsumer("t", "g")
			cons.SetShardAffinity(k)
			for {
				bs := cons.Poll(32)
				for _, b := range bs {
					id := b.Tuples[0].FlowID
					if _, loaded := seen.LoadOrStore(id, true); loaded {
						dups.Add(1)
					}
					total.Add(1)
				}
				if len(bs) == 0 {
					select {
					case <-stop:
						if len(cons.Poll(32)) == 0 {
							return
						}
					default:
						time.Sleep(100 * time.Microsecond)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()

	// Final sweep in case the last producer batch landed after every
	// consumer's exit check.
	cons := c.GroupConsumer("t", "g")
	for {
		bs := cons.Poll(32)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			if _, loaded := seen.LoadOrStore(b.Tuples[0].FlowID, true); loaded {
				dups.Add(1)
			}
			total.Add(1)
		}
	}

	want := int64(producers * perProducer)
	if total.Load() != want || dups.Load() != 0 {
		t.Fatalf("consumed %d (dups %d), want %d with 0 dups", total.Load(), dups.Load(), want)
	}
	st := c.Stats("t")
	if st.Appended != uint64(want) || st.Consumed != uint64(want) || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestShardedBufferFullRetryable: a full shard set returns the typed
// ErrBufferFull (so Producer.Send's retry policy applies) and drains back to
// health.
func TestShardedBufferFullRetryable(t *testing.T) {
	// 2 shards floored at minShardSlots slots each.
	c := shardedCluster(2, Config{Partitions: 1, BufferBatches: 4})
	prod := c.Producer("t")
	capacity := 2 * minShardSlots
	for i := 0; i < capacity; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := prod.Send(batchOf(1)); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	st := c.Stats("t")
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	cons := c.Consumer("t")
	if len(cons.Poll(1)) != 1 {
		t.Fatal("drain failed")
	}
	if err := prod.Send(batchOf(1)); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

// TestShardedOffsetPreservingReconnect: PR 5's consume-outage semantics hold
// on the sharded path — the group resumes at the exact next offset, in
// order, with no loss or duplication.
func TestShardedOffsetPreservingReconnect(t *testing.T) {
	hook := &scriptedHook{}
	c := shardedCluster(4, Config{Partitions: 1})
	c.SetFaultHook(hook)
	prod := c.Producer("t") // home shard 0; sole producer, so ring 0 FIFO
	cons := c.GroupConsumer("t", "g")

	for i := 0; i < 10; i++ {
		b := batchOf(1)
		b.Tuples[0].FlowID = uint64(i)
		if err := prod.Send(b); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	drain := func(want int) {
		t.Helper()
		for _, b := range cons.Poll(want) {
			seen = append(seen, b.Tuples[0].FlowID)
		}
	}
	drain(4)
	if len(seen) != 4 {
		t.Fatalf("pre-fault consumed %d, want 4", len(seen))
	}

	hook.setConsumeDown(true)
	if got := cons.Poll(4); len(got) != 0 {
		t.Fatalf("unavailable partition returned %d batches", len(got))
	}
	hook.setConsumeDown(false)

	drain(100)
	if len(seen) != 10 {
		t.Fatalf("total consumed %d, want 10 (offset lost or duplicated)", len(seen))
	}
	for i, id := range seen {
		if id != uint64(i) {
			t.Fatalf("order broken at %d: got flow %d; all=%v", i, id, seen)
		}
	}
}

// TestShardedBackPressureStatuses: the watermark transitions fire on the
// sharded path too — overload when the hot ring crosses the high watermark,
// recovery once every ring drains below half of it.
func TestShardedBackPressureStatuses(t *testing.T) {
	// 2 shards × 8 slots; high watermark 0.5 trips at 4 batches in one ring.
	c := shardedCluster(2, Config{Partitions: 1, BufferBatches: 16, HighWatermark: 0.5})
	sub := c.Subscribe("t")
	prod := c.Producer("t")
	cons := c.Consumer("t")

	for i := 0; i < 4; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case s := <-sub:
		if !s.Overloaded || s.Topic != "t" {
			t.Errorf("status = %+v, want overloaded on t", s)
		}
	default:
		t.Fatal("no overload status emitted")
	}

	for i := 0; i < 3; i++ {
		if cons.Poll(1) == nil {
			t.Fatal("unexpected empty poll")
		}
	}
	select {
	case s := <-sub:
		if s.Overloaded {
			t.Errorf("status = %+v, want recovery", s)
		}
	default:
		t.Fatal("no recovery status emitted")
	}
}

// TestLockWaitHistogramPaths: the legacy path records lock waits in
// mq_partition_lock_wait_ns; the sharded path, having no partition lock on
// the datapath, records none.
func TestLockWaitHistogramPaths(t *testing.T) {
	legacy := NewCluster(1, Config{Partitions: 1})
	prod := legacy.Producer("t")
	cons := legacy.Consumer("t")
	for i := 0; i < 8; i++ {
		if err := prod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	cons.Poll(8)
	if n := legacy.LockWaitNS("t").Count(); n == 0 {
		t.Error("legacy path recorded no lock waits")
	}

	sharded := shardedCluster(2, Config{Partitions: 1})
	sprod := sharded.Producer("t")
	scons := sharded.Consumer("t")
	for i := 0; i < 8; i++ {
		if err := sprod.Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	scons.Poll(8)
	if n := sharded.LockWaitNS("t").Count(); n != 0 {
		t.Errorf("sharded path recorded %d lock waits, want 0", n)
	}
}

// TestShardStatsSpread: each producer's batches land on its own home ring
// when capacity allows — the telemetry view a hot-shard investigation needs.
func TestShardStatsSpread(t *testing.T) {
	c := shardedCluster(4, Config{Partitions: 1, BufferBatches: 1 << 10})
	prods := make([]*Producer, 4)
	for i := range prods {
		prods[i] = c.Producer("t")
	}
	for i, p := range prods {
		for j := 0; j <= i; j++ { // producer i sends i+1 batches
			if err := p.Send(batchOf(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	per := c.ShardStats("t")
	if len(per) != 1 || len(per[0]) != 4 {
		t.Fatalf("ShardStats shape = %d partitions", len(per))
	}
	for shard, ss := range per[0] {
		if ss.Appended != uint64(shard+1) {
			t.Errorf("shard %d appended %d, want %d (home-shard spread broken)",
				shard, ss.Appended, shard+1)
		}
	}
	if got := c.ShardStats("missing"); got != nil {
		t.Errorf("unknown topic ShardStats = %v, want nil", got)
	}
}

// TestShardAffinityClamp: negative hints clamp to 0 and affinity never
// strands data — an affine consumer still drains every ring.
func TestShardAffinityClamp(t *testing.T) {
	c := shardedCluster(4, Config{Partitions: 1})
	prods := make([]*Producer, 4)
	for i := range prods {
		prods[i] = c.Producer("t")
		if err := prods[i].Send(batchOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	cons := c.Consumer("t")
	cons.SetShardAffinity(-5)
	if cons.affinity != 0 {
		t.Errorf("affinity = %d, want clamped 0", cons.affinity)
	}
	cons.SetShardAffinity(2)
	total := 0
	for {
		bs := cons.Poll(8)
		if len(bs) == 0 {
			break
		}
		total += len(bs)
	}
	if total != 4 {
		t.Errorf("affine consumer drained %d batches, want 4 (data stranded)", total)
	}
}

// TestShardedRetentionWaitsForSlowestGroup: a ring slot is only reclaimed
// once every registered group has consumed it, so a slow group never loses
// data to a fast one.
func TestShardedRetentionWaitsForSlowestGroup(t *testing.T) {
	c := shardedCluster(2, Config{Partitions: 1, BufferBatches: 16})
	fast := c.GroupConsumer("t", "fast")
	slow := c.GroupConsumer("t", "slow")
	prod := c.Producer("t")
	const n = 8
	for i := 0; i < n; i++ {
		b := batchOf(1)
		b.Tuples[0].FlowID = uint64(i)
		if err := prod.Send(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fast.Poll(n * 2)); got != n {
		t.Fatalf("fast group consumed %d, want %d", got, n)
	}
	// Everything is still retained for the slow group.
	got := make([]uint64, 0, n)
	for _, b := range slow.Poll(n * 2) {
		got = append(got, b.Tuples[0].FlowID)
	}
	if len(got) != n {
		t.Fatalf("slow group consumed %d, want %d", len(got), n)
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("slow group order broken at %d: %v", i, got)
		}
	}
	if st := c.Stats("t"); st.Buffered != 0 {
		t.Errorf("Buffered = %d after both groups drained", st.Buffered)
	}
}

// BenchmarkShardedVsLegacyProduce: the contended produce path, for a quick
// local A/B without the full scale-out sweep.
func BenchmarkShardedVsLegacyProduce(b *testing.B) {
	run := func(b *testing.B, c *Cluster) {
		batch := batchOf(16)
		b.SetBytes(int64(batch.WireSize()))
		var drained atomic.Bool
		go func() {
			cons := c.Consumer("bench")
			for !drained.Load() {
				if len(cons.Poll(256)) == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			prod := c.Producer("bench")
			for pb.Next() {
				if err := prod.Send(batch); err != nil && !errors.Is(err, ErrBufferFull) {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		drained.Store(true)
	}
	b.Run("legacy", func(b *testing.B) {
		run(b, NewCluster(2, Config{Partitions: 4, BufferBatches: 1 << 16}))
	})
	b.Run("sharded", func(b *testing.B) {
		run(b, shardedCluster(8, Config{Partitions: 4, BufferBatches: 1 << 16}))
	})
}
