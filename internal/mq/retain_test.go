package mq

import (
	"testing"

	"netalytics/internal/tuple"
)

// markedBatch carries an identifying FlowID so tests can tell which batches
// survived eviction.
func markedBatch(id uint64) *tuple.Batch {
	return &tuple.Batch{Parser: "p", Tuples: []tuple.Tuple{{FlowID: id, Key: "k"}}}
}

func polledIDs(cs *Consumer) []uint64 {
	var ids []uint64
	for {
		bs := cs.Poll(64)
		if len(bs) == 0 {
			return ids
		}
		for _, b := range bs {
			ids = append(ids, b.Tuples[0].FlowID)
		}
	}
}

func TestRetainLatestKeepsNewest(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 4})
	c.SetRetainLatest("_incidents")
	prod := c.Producer("_incidents")
	for i := uint64(0); i < 10; i++ {
		if err := prod.Send(markedBatch(i)); err != nil {
			t.Fatalf("retain-latest Send(%d) rejected: %v", i, err)
		}
	}
	st := c.Stats("_incidents")
	if st.Appended != 10 {
		t.Errorf("appended = %d, want 10", st.Appended)
	}
	if st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6 (evictions are accounted)", st.Dropped)
	}
	if st.DroppedTuples != 6 {
		t.Errorf("dropped tuples = %d, want 6", st.DroppedTuples)
	}
	// A consumer attaching late sees exactly the newest capacity's worth.
	ids := polledIDs(c.Consumer("_incidents"))
	if len(ids) != 4 {
		t.Fatalf("late consumer got %d batches, want 4: %v", len(ids), ids)
	}
	for i, id := range ids {
		if want := uint64(6 + i); id != want {
			t.Errorf("retained[%d] = %d, want %d (newest survive, in order)", i, id, want)
		}
	}
}

func TestRetainLatestBumpsLaggingGroup(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 4})
	c.SetRetainLatest("_incidents")
	prod := c.Producer("_incidents")
	cons := c.Consumer("_incidents") // registers at offset 0 before any data
	if got := cons.Poll(4); len(got) != 0 {
		t.Fatalf("empty topic polled %d batches", len(got))
	}
	for i := uint64(0); i < 12; i++ {
		if err := prod.Send(markedBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The group's offset pointed into the evicted prefix; it must have been
	// bumped to the new base, not left to stall or replay freed slots.
	ids := polledIDs(cons)
	if len(ids) != 4 {
		t.Fatalf("lagging group got %d batches, want 4: %v", len(ids), ids)
	}
	if ids[0] != 8 || ids[3] != 11 {
		t.Errorf("lagging group read %v, want [8 9 10 11]", ids)
	}
}

func TestRetainLatestRetrofitsExistingTopic(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 2})
	prod := c.Producer("late") // topic exists before the retain flag
	if err := prod.Send(markedBatch(0)); err != nil {
		t.Fatal(err)
	}
	c.SetRetainLatest("late")
	for i := uint64(1); i < 6; i++ {
		if err := prod.Send(markedBatch(i)); err != nil {
			t.Fatalf("Send(%d) after retrofit: %v", i, err)
		}
	}
	ids := polledIDs(c.Consumer("late"))
	if len(ids) != 2 || ids[1] != 5 {
		t.Errorf("retained %v, want the newest 2 ending in 5", ids)
	}
}

func TestNonRetainTopicStillRejectsWhenFull(t *testing.T) {
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 2})
	c.SetRetainLatest("_incidents") // a different topic
	prod := c.Producer("normal")
	var rejected bool
	for i := uint64(0); i < 5; i++ {
		if err := prod.Send(markedBatch(i)); err != nil {
			rejected = true
		}
	}
	if !rejected {
		t.Error("non-retain topic accepted past capacity")
	}
}

func TestRetainLatestForcesLegacyLog(t *testing.T) {
	// Sharded rings cannot evict; a retain topic must fall back to the
	// locked log even when the cluster runs sharded ingest.
	c := NewCluster(1, Config{Partitions: 1, BufferBatches: 4, IngestShards: 4})
	c.SetRetainLatest("_incidents")
	prod := c.Producer("_incidents")
	for i := uint64(0); i < 20; i++ {
		if err := prod.Send(markedBatch(i)); err != nil {
			t.Fatalf("Send(%d) on sharded cluster: %v", i, err)
		}
	}
	ids := polledIDs(c.Consumer("_incidents"))
	if len(ids) != 4 || ids[3] != 19 {
		t.Errorf("retained %v, want the newest 4 ending in 19", ids)
	}
	// Sanity: an ordinary topic on the same cluster still uses shards.
	if c.Stats("_incidents").Dropped != 16 {
		t.Errorf("dropped = %d, want 16", c.Stats("_incidents").Dropped)
	}
}
