package mq

import (
	"runtime"
	"sync"
	"sync/atomic"

	"netalytics/internal/tuple"
)

// This file is the sharded ingest path of a partition (DESIGN.md "Sharded
// ingest & work-stealing"). With Config.IngestShards > 0 a partition's
// mutex-guarded log is replaced by IngestShards single-writer ring segments:
//
//   - Produce: a producer claims one ring with a CAS (the claim is held for
//     a handful of instructions — no mutex, no parking), writes the batch
//     into the ring's next slot and publishes it with an atomic store of the
//     ring's head index. N producers on one topic append to N different
//     rings and never serialize on a shared lock.
//   - Consume: consumer groups keep one atomic cursor per ring; a pop scans
//     the rings starting at the consumer's affinity hint, claims the next
//     unread slot with a cursor CAS, and advances the ring's reclaim tail
//     once every group has passed a slot. Merging is at consume time — the
//     produce path never coordinates across rings.
//   - Ordering: batches from one producer stay FIFO within the ring they
//     landed in. A flow's tuples are emitted by a single monitor worker
//     shard, which ships through a single producer, so per-flow order is
//     preserved shard-locally — the same contract a Kafka partition gives.
//   - Back pressure and retry semantics are unchanged: a full ring set
//     returns ErrBufferFull (retryable, Producer.Send owns the policy), the
//     fault hook can still make the partition unavailable, and watermark
//     transitions fire exactly as on the legacy path.

// minShardSlots floors each ring's capacity so tiny BufferBatches configs
// still leave room for a burst per shard.
const minShardSlots = 8

// ring is one single-writer segment of a sharded partition log. Slots form a
// power-of-two circular buffer; head counts published batches, tail counts
// batches every consumer group has consumed (the reclaim horizon). The
// writer claim is a CAS-held flag, not a mutex: a producer that loses the
// claim moves to the next ring instead of blocking.
type ring struct {
	slots []atomic.Pointer[tuple.Batch]
	mask  uint64

	writer atomic.Bool   // CAS claim; held only across one push
	head   atomic.Uint64 // batches published: slots[tail:head) are live
	tail   atomic.Uint64 // min group cursor: slots below are reclaimable

	appended atomic.Uint64 // per-shard produce counter (telemetry)
}

// full reports whether the ring has no free slot, against the possibly stale
// tail — stale reads err toward "full", which is retryable and safe.
func (r *ring) full() bool {
	return r.head.Load()-r.tail.Load() >= uint64(len(r.slots))
}

// push appends one batch. Caller must hold the writer claim.
func (r *ring) push(b *tuple.Batch) bool {
	h := r.head.Load()
	if h-r.tail.Load() >= uint64(len(r.slots)) {
		return false
	}
	r.slots[h&r.mask].Store(b)
	// Publish: consumers acquire the slot write via this store (Go atomics
	// establish happens-before), so the batch is never read half-written.
	r.head.Store(h + 1)
	r.appended.Add(1)
	return true
}

// backlog is the ring's unconsumed depth (relative to the slowest group).
func (r *ring) backlog() uint64 {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	return h - t
}

// groupCursors is one consumer group's read state: an atomic cursor per
// ring. Cursors are claimed with CAS, so consumers in a group can pop
// concurrently without a shared lock.
type groupCursors struct {
	offs []atomic.Uint64
}

// shardedLog replaces a partition's locked buffer when ingest sharding is
// on. Producers touch only their claimed ring; the groups map is mutated
// copy-on-write (cold path: group registration), so the pop path reads it
// with a single atomic load.
type shardedLog struct {
	p     *partition
	rings []*ring

	groupsMu sync.Mutex // serializes registration (COW map swap)
	groups   atomic.Pointer[map[string]*groupCursors]

	over atomic.Bool // high-watermark state for back-pressure transitions
}

func newShardedLog(p *partition, shards, bufferBatches int) *shardedLog {
	per := bufferBatches / shards
	if per < minShardSlots {
		per = minShardSlots
	}
	// Round up to a power of two so slot indexing is a mask.
	capPer := 1
	for capPer < per {
		capPer <<= 1
	}
	s := &shardedLog{p: p}
	for i := 0; i < shards; i++ {
		s.rings = append(s.rings, &ring{
			slots: make([]atomic.Pointer[tuple.Batch], capPer),
			mask:  uint64(capPer - 1),
		})
	}
	empty := make(map[string]*groupCursors)
	s.groups.Store(&empty)
	return s
}

// capacity is the log's total slot count (for occupancy fractions).
func (s *shardedLog) capacity() int { return len(s.rings) * len(s.rings[0].slots) }

// append publishes one batch into the first ring the producer can claim,
// starting at its home-shard hint. Busy rings (another producer holds the
// claim) are retried; only when every ring is genuinely full does the append
// fail with ErrBufferFull, preserving the legacy path's retry contract.
func (s *shardedLog) append(b *tuple.Batch, hint int) error {
	n := len(s.rings)
	for {
		anyBusy := false
		for i := 0; i < n; i++ {
			r := s.rings[(hint+i)%n]
			if r.full() {
				continue
			}
			if !r.writer.CompareAndSwap(false, true) {
				anyBusy = true
				continue
			}
			ok := r.push(b)
			r.writer.Store(false)
			if ok {
				s.checkOverload(r)
				return nil
			}
		}
		if !anyBusy {
			return errBufferFull(s.p.topic.name)
		}
		runtime.Gosched()
	}
}

// checkOverload raises the high-watermark transition when the just-written
// ring crosses the threshold. Only the hot ring is inspected on the produce
// path — recovery (which must observe *all* rings calming down) is checked
// on pop, where a scan is already cheap.
func (s *shardedLog) checkOverload(r *ring) {
	cfg := s.p.topic.cluster.cfg
	occ := float64(r.backlog()) / float64(len(r.slots))
	if occ >= cfg.HighWatermark && s.over.CompareAndSwap(false, true) {
		s.p.topic.overloads.Add(1)
		s.p.topic.cluster.notify(Status{Topic: s.p.topic.name, Overloaded: true, Occupancy: occ})
	}
}

// cursors returns the group's cursor set, registering it on first use at
// each ring's current reclaim tail (the earliest retained record — Kafka's
// earliest auto-offset policy, matching the legacy path).
func (s *shardedLog) cursors(group string) *groupCursors {
	if gc, ok := (*s.groups.Load())[group]; ok {
		return gc
	}
	s.groupsMu.Lock()
	defer s.groupsMu.Unlock()
	old := *s.groups.Load()
	if gc, ok := old[group]; ok {
		return gc
	}
	gc := &groupCursors{offs: make([]atomic.Uint64, len(s.rings))}
	for i, r := range s.rings {
		gc.offs[i].Store(r.tail.Load())
	}
	next := make(map[string]*groupCursors, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[group] = gc
	s.groups.Store(&next)
	return gc
}

// pop claims the next unread batch for the group, scanning rings from the
// consumer's affinity hint so co-located spout tasks drain "their" shards
// first. Returns nil when every ring is drained for this group.
func (s *shardedLog) pop(group string, hint int) *tuple.Batch {
	gc := s.cursors(group)
	n := len(s.rings)
	for i := 0; i < n; i++ {
		ri := (hint + i) % n
		r := s.rings[ri]
		for {
			off := gc.offs[ri].Load()
			if off >= r.head.Load() {
				break
			}
			// Read the slot before claiming it: while our cursor is still at
			// off, the reclaim tail cannot pass off, so the slot cannot be
			// overwritten. If another consumer wins the claim first, the CAS
			// below fails and the (possibly stale) read is discarded.
			b := r.slots[off&r.mask].Load()
			if !gc.offs[ri].CompareAndSwap(off, off+1) {
				continue
			}
			s.advanceTail(ri)
			s.checkRecovery()
			return b
		}
	}
	return nil
}

// advanceTail moves ring ri's reclaim tail to the slowest group cursor.
// Monotonic CAS-max: concurrent pops may race, the tail only moves forward.
func (s *shardedLog) advanceTail(ri int) {
	groups := *s.groups.Load()
	r := s.rings[ri]
	slowest := r.head.Load()
	for _, gc := range groups {
		if off := gc.offs[ri].Load(); off < slowest {
			slowest = off
		}
	}
	for {
		t := r.tail.Load()
		if slowest <= t || r.tail.CompareAndSwap(t, slowest) {
			return
		}
	}
}

// checkRecovery lowers the back-pressure flag once every ring has drained
// below the low watermark. Scanned only while overloaded.
func (s *shardedLog) checkRecovery() {
	if !s.over.Load() {
		return
	}
	cfg := s.p.topic.cluster.cfg
	maxOcc := 0.0
	for _, r := range s.rings {
		if occ := float64(r.backlog()) / float64(len(r.slots)); occ > maxOcc {
			maxOcc = occ
		}
	}
	if maxOcc <= cfg.HighWatermark/2 && s.over.CompareAndSwap(true, false) {
		s.p.topic.cluster.notify(Status{Topic: s.p.topic.name, Overloaded: false, Occupancy: maxOcc})
	}
}

// backlogTotal sums unconsumed batches across rings (Stats.Buffered).
func (s *shardedLog) backlogTotal() int {
	total := 0
	for _, r := range s.rings {
		total += int(r.backlog())
	}
	return total
}

// maxOccupancy is the hottest ring's occupancy fraction.
func (s *shardedLog) maxOccupancy() float64 {
	maxOcc := 0.0
	for _, r := range s.rings {
		if occ := float64(r.backlog()) / float64(len(r.slots)); occ > maxOcc {
			maxOcc = occ
		}
	}
	return maxOcc
}

// ShardStats is one ring's telemetry snapshot.
type ShardStats struct {
	Appended  uint64
	Backlog   int
	Occupancy float64
}

// shardStats snapshots every ring.
func (s *shardedLog) shardStats() []ShardStats {
	out := make([]ShardStats, len(s.rings))
	for i, r := range s.rings {
		out[i] = ShardStats{
			Appended:  r.appended.Load(),
			Backlog:   int(r.backlog()),
			Occupancy: float64(r.backlog()) / float64(len(r.slots)),
		}
	}
	return out
}
