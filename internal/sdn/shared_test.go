package sdn

import (
	"fmt"
	"math"
	"testing"

	"netalytics/internal/topology"
)

func TestInstallSharedMirrorMergesDemands(t *testing.T) {
	c := NewController()
	const sw, tap = topology.NodeID(1), topology.NodeID(99)
	m := Match{DstIP: ipB, DstPort: 80}

	id1 := c.InstallSharedMirror("q1", sw, m, tap, 100)
	id2 := c.InstallSharedMirror("q2", sw, m, tap, 100)
	if id1 != id2 {
		t.Fatalf("shared installs returned different rule IDs: %d vs %d", id1, id2)
	}
	if got := c.Table(sw).Len(); got != 1 {
		t.Fatalf("table has %d rules, want 1 merged rule", got)
	}
	if got := c.SharedRuleCount(); got != 1 {
		t.Errorf("SharedRuleCount = %d, want 1", got)
	}
	if owners := c.RuleOwners(id1); len(owners) != 2 || owners[0] != "q1" || owners[1] != "q2" {
		t.Errorf("RuleOwners = %v, want [q1 q2]", owners)
	}

	// A different demand is not merged.
	other := c.InstallSharedMirror("q1", sw, Match{DstIP: ipC}, tap, 100)
	if other == id1 {
		t.Fatal("distinct match merged into the same rule")
	}
	if got := c.SharedRuleCount(); got != 1 {
		t.Errorf("SharedRuleCount after single-owner install = %d, want 1", got)
	}

	// Same query re-installing the same demand is idempotent.
	if again := c.InstallSharedMirror("q1", sw, m, tap, 100); again != id1 {
		t.Fatalf("re-install by same owner returned %d, want %d", again, id1)
	}
	if owners := c.RuleOwners(id1); len(owners) != 2 {
		t.Errorf("owners after idempotent re-install = %v, want 2 owners", owners)
	}
}

func TestSharedMirrorRefcountedTeardown(t *testing.T) {
	c := NewController()
	const sw, tap = topology.NodeID(1), topology.NodeID(99)
	m := Match{DstIP: ipB, DstPort: 80}

	c.InstallSharedMirror("q1", sw, m, tap, 100)
	id := c.InstallSharedMirror("q2", sw, m, tap, 100)
	c.InstallMirror("q1", sw, Match{DstIP: ipC}, tap, 100) // exclusive rides along

	// First owner out: the shared rule must survive, its exclusive must go.
	if removed := c.RemoveQuery("q1"); removed != 1 {
		t.Fatalf("RemoveQuery(q1) uninstalled %d rules, want 1 (exclusive only)", removed)
	}
	if got := c.Table(sw).Len(); got != 1 {
		t.Fatalf("table has %d rules after first release, want the shared rule", got)
	}
	if owners := c.RuleOwners(id); len(owners) != 1 || owners[0] != "q2" {
		t.Errorf("owners after q1 left = %v, want [q2]", owners)
	}
	if got := c.SharedRuleCount(); got != 0 {
		t.Errorf("SharedRuleCount with one owner left = %d, want 0", got)
	}

	// Last owner out: now it is uninstalled.
	if removed := c.RemoveQuery("q2"); removed != 1 {
		t.Fatalf("RemoveQuery(q2) uninstalled %d rules, want 1", removed)
	}
	if got := c.Table(sw).Len(); got != 0 {
		t.Errorf("table has %d rules after last release, want 0", got)
	}
	if got := c.RuleCount(); got != 0 {
		t.Errorf("RuleCount = %d, want 0", got)
	}
	if owners := c.RuleOwners(id); owners != nil {
		t.Errorf("RuleOwners after teardown = %v, want nil", owners)
	}
}

func TestSharedMirrorSamplingMaxWins(t *testing.T) {
	c := NewController()
	const sw, tap = topology.NodeID(1), topology.NodeID(99)
	m := Match{DstIP: ipB, DstPort: 80}
	id := c.InstallSharedMirror("q1", sw, m, tap, 100)
	c.InstallSharedMirror("q2", sw, m, tap, 100)
	rule := c.QueryRules("q1")[0].Rule
	if rule.ID != id {
		t.Fatalf("QueryRules returned rule %d, want %d", rule.ID, id)
	}

	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }

	// One overloaded owner cannot throttle the rule while the other still
	// wants every flow: the effective rate is the max over owners.
	if updated := c.SetQuerySampling("q1", 0.25); updated != 1 {
		t.Fatalf("SetQuerySampling(q1) updated %d rules, want 1", updated)
	}
	if got := rule.MirrorSampling(); !near(got, 1) {
		t.Errorf("effective rate with q2 unsampled = %v, want 1", got)
	}

	// Both throttled: the most permissive request wins.
	c.SetQuerySampling("q2", 0.5)
	if got := rule.MirrorSampling(); !near(got, 0.5) {
		t.Errorf("effective rate = %v, want max(0.25, 0.5) = 0.5", got)
	}

	// The permissive owner leaving tightens the rule to the survivor's rate.
	epochBefore := c.Epoch()
	c.RemoveQuery("q2")
	if got := rule.MirrorSampling(); !near(got, 0.25) {
		t.Errorf("effective rate after q2 left = %v, want 0.25", got)
	}
	if c.Epoch() == epochBefore {
		t.Error("tightening the effective rate did not bump the epoch")
	}
}

func TestRemoveRuleDropsIndex(t *testing.T) {
	c := NewController()
	const sw, tap = topology.NodeID(1), topology.NodeID(99)
	id := c.InstallMirror("q1", sw, Match{DstIP: ipB}, tap, 100)
	sid := c.InstallSharedMirror("q1", sw, Match{DstIP: ipC}, tap, 100)
	c.InstallSharedMirror("q2", sw, Match{DstIP: ipC}, tap, 100)

	if !c.RemoveRule(sw, id) {
		t.Fatal("RemoveRule(exclusive) = false, want true")
	}
	if !c.RemoveRule(sw, sid) {
		t.Fatal("RemoveRule(shared) = false, want true")
	}
	if got := c.QueryRules("q1"); len(got) != 0 {
		t.Errorf("QueryRules(q1) after RemoveRule = %d rules, want 0", len(got))
	}
	if got := c.QueryRules("q2"); len(got) != 0 {
		t.Errorf("QueryRules(q2) after RemoveRule = %d rules, want 0", len(got))
	}
	// A fresh shared install must not resurrect the removed rule's ID.
	if again := c.InstallSharedMirror("q3", sw, Match{DstIP: ipC}, tap, 100); again == sid {
		t.Error("shared key still mapped to the removed rule")
	}
}

func TestReinstallTapRules(t *testing.T) {
	c := NewController()
	const sw, tap, otherTap = topology.NodeID(1), topology.NodeID(99), topology.NodeID(98)
	m := Match{DstIP: ipB, DstPort: 80}
	shared := c.InstallSharedMirror("q1", sw, m, tap, 100)
	c.InstallSharedMirror("q2", sw, m, tap, 100)
	excl := c.InstallMirror("q3", sw, Match{DstIP: ipC}, tap, 100)
	bystander := c.InstallMirror("q4", sw, Match{DstIP: ipA}, otherTap, 100)
	c.SetQuerySampling("q3", 0.5)

	epochBefore := c.Epoch()
	if n := c.ReinstallTapRules(tap); n != 2 {
		t.Fatalf("ReinstallTapRules = %d rules, want 2", n)
	}
	if c.Epoch() == epochBefore {
		t.Error("reinstall did not bump the epoch")
	}
	if got := c.Table(sw).Len(); got != 3 {
		t.Fatalf("table has %d rules after reinstall, want 3", got)
	}

	// Owner sets, sampling and the bystander survive; rule IDs change.
	q1 := c.QueryRules("q1")
	if len(q1) != 1 || q1[0].Rule.ID == shared {
		t.Errorf("q1 rules after reinstall = %+v, want one fresh rule", q1)
	}
	if owners := c.RuleOwners(q1[0].Rule.ID); len(owners) != 2 {
		t.Errorf("owners after reinstall = %v, want [q1 q2]", owners)
	}
	q3 := c.QueryRules("q3")
	if len(q3) != 1 || q3[0].Rule.ID == excl {
		t.Fatalf("q3 rules after reinstall = %+v, want one fresh rule", q3)
	}
	if got := q3[0].Rule.MirrorSampling(); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("q3 sampling after reinstall = %v, want 0.5", got)
	}
	q4 := c.QueryRules("q4")
	if len(q4) != 1 || q4[0].Rule.ID != bystander {
		t.Errorf("bystander on another tap was touched: %+v", q4)
	}
}

// BenchmarkRemoveQueryTeardown measures the teardown path with 128 concurrent
// queries installed across a large switch fabric: the controller index must
// make each RemoveQuery O(rules-of-query), not O(switches×rules).
func BenchmarkRemoveQueryTeardown(b *testing.B) {
	const queries, switches, rulesPerQuery = 128, 80, 4
	const tap = topology.NodeID(10_000)
	for b.Loop() {
		b.StopTimer()
		c := NewController()
		for q := 0; q < queries; q++ {
			for r := 0; r < rulesPerQuery; r++ {
				sw := topology.NodeID((q*rulesPerQuery + r) % switches)
				m := Match{DstPort: uint16(1024 + q), SrcPort: uint16(1 + r)}
				c.InstallMirror(fmt.Sprintf("q%03d", q), sw, m, tap, 100)
			}
		}
		b.StartTimer()
		for q := 0; q < queries; q++ {
			if removed := c.RemoveQuery(fmt.Sprintf("q%03d", q)); removed != rulesPerQuery {
				b.Fatalf("RemoveQuery removed %d, want %d", removed, rulesPerQuery)
			}
		}
	}
	b.ReportMetric(queries, "queries/op")
}
