// Package sdn implements the OpenFlow-like control plane NetAlytics uses to
// steer traffic: per-switch flow tables of prioritized match/action rules and
// a logically centralized controller that installs and removes them.
//
// A NetAlytics query compiles into mirror rules (§3.4): the match portion is
// derived from the FROM/TO clauses, and the action list carries both the
// standard forwarding action and a secondary mirror action toward a monitor,
// so monitoring stays off the critical path.
package sdn

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"netalytics/internal/packet"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// Match selects flows by five-tuple fields. The zero value of each field is
// a wildcard: an invalid netip.Addr matches any address, port 0 matches any
// port and proto 0 matches any protocol. SrcNet/DstNet, when valid, match by
// CIDR prefix (the query language's subnet:port addresses); an exact IP and
// a prefix on the same side must both hold.
type Match struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcNet  netip.Prefix
	DstNet  netip.Prefix
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// MatchAll is the fully wildcarded match.
var MatchAll = Match{}

// Matches reports whether the five-tuple satisfies every non-wildcard field.
func (m Match) Matches(ft packet.FiveTuple) bool {
	if m.SrcIP.IsValid() && m.SrcIP != ft.Src {
		return false
	}
	if m.DstIP.IsValid() && m.DstIP != ft.Dst {
		return false
	}
	if m.SrcNet.IsValid() && !m.SrcNet.Contains(ft.Src) {
		return false
	}
	if m.DstNet.IsValid() && !m.DstNet.Contains(ft.Dst) {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != ft.SrcPort {
		return false
	}
	if m.DstPort != 0 && m.DstPort != ft.DstPort {
		return false
	}
	if m.Proto != 0 && m.Proto != ft.Proto {
		return false
	}
	return true
}

// Specificity counts the non-wildcard fields; more specific rules win ties
// at equal priority. Exact IPs count more than prefixes.
func (m Match) Specificity() int {
	n := 0
	if m.SrcIP.IsValid() {
		n += 2
	} else if m.SrcNet.IsValid() {
		n++
	}
	if m.DstIP.IsValid() {
		n += 2
	} else if m.DstNet.IsValid() {
		n++
	}
	if m.SrcPort != 0 {
		n++
	}
	if m.DstPort != 0 {
		n++
	}
	if m.Proto != 0 {
		n++
	}
	return n
}

func (m Match) String() string {
	part := func(ip netip.Addr, net netip.Prefix, port uint16) string {
		ipStr, portStr := "*", "*"
		switch {
		case ip.IsValid():
			ipStr = ip.String()
		case net.IsValid():
			ipStr = net.String()
		}
		if port != 0 {
			portStr = fmt.Sprint(port)
		}
		return ipStr + ":" + portStr
	}
	return fmt.Sprintf("%s->%s", part(m.SrcIP, m.SrcNet, m.SrcPort), part(m.DstIP, m.DstNet, m.DstPort))
}

// Reverse returns the match with source and destination sides swapped.
func (m Match) Reverse() Match {
	return Match{
		SrcIP: m.DstIP, DstIP: m.SrcIP,
		SrcNet: m.DstNet, DstNet: m.SrcNet,
		SrcPort: m.DstPort, DstPort: m.SrcPort,
		Proto: m.Proto,
	}
}

// ActionType enumerates the supported rule actions.
type ActionType int

// Supported actions: forward toward the normal destination, or mirror a copy
// to a monitoring host.
const (
	ActionForward ActionType = iota + 1
	ActionMirror
)

// Action is one entry in a rule's action list. Dst is the node the frame (or
// its mirror copy) is sent toward.
type Action struct {
	Type ActionType
	Dst  topology.NodeID
}

// Rule is an installed flow-table entry.
type Rule struct {
	ID       uint64
	QueryID  string // owning query, for batch removal
	Priority int
	Match    Match
	Actions  []Action

	matches atomic.Uint64
	// sampleThreshold gates mirror actions by flow hash (top 32 bits),
	// implementing switch-level flow sampling (§4.2's escalation: when a
	// monitor is overloaded, the controller reduces the flows sent to it).
	// Zero means no rule-level sampling.
	sampleThreshold atomic.Uint64
}

// SetMirrorSampling sets the fraction of flows (by canonical flow hash) the
// rule's mirror actions apply to; rate >= 1 disables rule-level sampling.
func (r *Rule) SetMirrorSampling(rate float64) {
	if rate >= 1 || rate < 0 {
		r.sampleThreshold.Store(0)
		return
	}
	r.sampleThreshold.Store(uint64(rate*math.MaxUint32) | 1) // |1: distinguish "set" from "off"
}

// MirrorSampling returns the rule's mirror sampling rate (1 = no sampling).
func (r *Rule) MirrorSampling() float64 {
	t := r.sampleThreshold.Load()
	if t == 0 {
		return 1
	}
	return float64(t) / math.MaxUint32
}

// admitsMirror reports whether the flow passes the rule's mirror sampling.
func (r *Rule) admitsMirror(ft packet.FiveTuple) bool {
	t := r.sampleThreshold.Load()
	if t == 0 {
		return true
	}
	return ft.CanonicalHash()>>32 <= t
}

// MatchCount returns how many lookups this rule has won.
func (r *Rule) MatchCount() uint64 { return r.matches.Load() }

// FlowTable is one switch's rule set. The zero value is ready to use.
type FlowTable struct {
	mu     sync.RWMutex
	rules  []*Rule // sorted: priority desc, specificity desc, id asc
	misses atomic.Uint64

	// epoch, when non-nil, is the owning controller's rule-generation
	// counter, shared by every table the controller owns. It is bumped
	// after each mutation completes, so a reader that loads the epoch
	// before consulting tables can detect any later rule change by
	// comparing epochs (seqlock-style) — the invalidation signal the
	// vnet flow-decision cache relies on.
	epoch *atomic.Uint64
}

func (t *FlowTable) bumpEpoch() {
	if t.epoch != nil {
		t.epoch.Add(1)
	}
}

// Install adds a rule to the table.
func (t *FlowTable) Install(r *Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
	sort.SliceStable(t.rules, func(i, j int) bool {
		a, b := t.rules[i], t.rules[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		sa, sb := a.Match.Specificity(), b.Match.Specificity()
		if sa != sb {
			return sa > sb
		}
		return a.ID < b.ID
	})
	t.bumpEpoch()
}

// Remove deletes the rule with the given ID, reporting whether it existed.
func (t *FlowTable) Remove(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rules {
		if r.ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			t.bumpEpoch()
			return true
		}
	}
	return false
}

// Lookup returns the highest-priority rule matching the tuple, or nil on a
// table miss.
func (t *FlowTable) Lookup(ft packet.FiveTuple) *Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.Match.Matches(ft) {
			r.matches.Add(1)
			return r
		}
	}
	t.misses.Add(1)
	return nil
}

// MirrorTargets returns the mirror destinations of every rule matching the
// tuple, deduplicated. Unlike Lookup it scans all matching rules, because
// several concurrent queries may each mirror the same flow to different
// monitors.
func (t *FlowTable) MirrorTargets(ft packet.FiveTuple) []topology.NodeID {
	return t.MirrorTargetsAppend(ft, nil)
}

// smallTargetSet is the mirror-target count up to which dedup stays a linear
// scan of the output slice; beyond it a map takes over. Nearly every flow is
// mirrored to a handful of monitors at most, so the map path exists only to
// keep pathological rule sets (hundreds of monitors on one flow) linear.
const smallTargetSet = 16

// MirrorTargetsAppend is MirrorTargets appending into a caller-owned buffer:
// matching mirror destinations are appended to out, deduplicated against
// everything already in it, and the extended slice is returned. Passing one
// buffer across the switches of a path both amortizes the per-switch slice
// allocation MirrorTargets pays and performs the cross-switch dedup (one
// query mirroring at several levels must deliver one copy) in the same pass.
func (t *FlowTable) MirrorTargetsAppend(ft packet.FiveTuple, out []topology.NodeID) []topology.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var seen map[topology.NodeID]struct{} // built once out outgrows smallTargetSet
	for _, r := range t.rules {
		if !r.Match.Matches(ft) {
			continue
		}
		r.matches.Add(1)
		if !r.admitsMirror(ft) {
			continue
		}
		for _, a := range r.Actions {
			if a.Type != ActionMirror {
				continue
			}
			if seen == nil && len(out) >= smallTargetSet {
				seen = make(map[topology.NodeID]struct{}, 2*len(out))
				for _, d := range out {
					seen[d] = struct{}{}
				}
			}
			if seen != nil {
				if _, dup := seen[a.Dst]; !dup {
					seen[a.Dst] = struct{}{}
					out = append(out, a.Dst)
				}
				continue
			}
			dup := false
			for _, d := range out {
				if d == a.Dst {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, a.Dst)
			}
		}
	}
	return out
}

// Len returns the number of installed rules.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Misses returns the number of lookups that matched no rule.
func (t *FlowTable) Misses() uint64 { return t.misses.Load() }

// SharedRuleOwner is the QueryID stamped on rules installed through
// InstallSharedMirror: a shared rule belongs to its owner set (see
// RuleOwners), not to any single query, so its QueryID field is a sentinel.
const SharedRuleOwner = "shared"

// sharedKey identifies a mergeable mirror demand: two queries asking for the
// same match mirrored from the same switch to the same tap at the same
// priority share one installed rule. Match is comparable (netip types are),
// so the key can index a map directly.
type sharedKey struct {
	sw       topology.NodeID
	match    Match
	tap      topology.NodeID
	priority int
}

// ownerState is one query's stake in an installed rule: the mirror-sampling
// rate it last asked for (1 = unsampled). A query that installs the same
// shared demand twice (FROM/TO clauses compiling to duplicate matches, e.g.
// a symmetric match equal to its own reverse) joins the owner set once and
// releases once at RemoveQuery.
type ownerState struct {
	rate float64
}

// ruleRef is the controller's index entry for one installed rule. Exclusive
// rules (InstallMirror) have exactly one owner; shared rules (
// InstallSharedMirror) carry the full owner set and stay installed until the
// last owner releases them. The rule's effective mirror sampling is the max
// (most permissive) of the owners' requested rates, so no subscriber ever
// loses flows another subscriber still wants.
type ruleRef struct {
	sw     topology.NodeID
	rule   *Rule
	owners map[string]*ownerState
	shared bool
	key    sharedKey // valid only when shared
	eff    float64   // last applied effective sampling rate (1 = unsampled)
}

// Controller is the logically centralized SDN controller: it owns one flow
// table per switch and provides the northbound API the query interpreter
// talks to.
type Controller struct {
	mu     sync.Mutex
	tables map[topology.NodeID]*FlowTable
	nextID atomic.Uint64
	reg    *telemetry.Registry

	// byQuery, byID and shared form the rule index: every rule installed
	// through the controller API (InstallMirror / InstallSharedMirror) is
	// registered here, making RemoveQuery, QueryRules and SetQuerySampling
	// O(rules-of-query) instead of a scan over every switch's full table.
	// Rules installed directly via Table().Install bypass the index and the
	// query-level API does not see them.
	byQuery map[string][]*ruleRef
	byID    map[uint64]*ruleRef
	shared  map[sharedKey]*ruleRef

	// epoch counts rule-set generations across every table the controller
	// owns: it advances after each Install, Remove, RemoveQuery and
	// SetQuerySampling completes. Consumers caching per-flow forwarding
	// decisions (internal/vnet's flow cache) stamp the epoch they resolved
	// under and re-resolve on mismatch, so a new query's mirror rules take
	// effect on the very next frame of already-cached flows.
	epoch atomic.Uint64
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{
		tables:  make(map[topology.NodeID]*FlowTable),
		byQuery: make(map[string][]*ruleRef),
		byID:    make(map[uint64]*ruleRef),
		shared:  make(map[sharedKey]*ruleRef),
	}
}

// Epoch returns the controller's rule-generation counter. Read it before
// consulting flow tables: if Epoch still returns the same value later, no
// rule changed in between (direct Rule.SetMirrorSampling calls excepted —
// the controller's SetQuerySampling is the epoch-visible path).
func (c *Controller) Epoch() uint64 { return c.epoch.Load() }

// Table returns the flow table of a switch, creating it on first use.
func (c *Controller) Table(sw topology.NodeID) *FlowTable {
	c.mu.Lock()
	t, ok := c.tables[sw]
	if !ok {
		t = &FlowTable{epoch: &c.epoch}
		c.tables[sw] = t
	}
	reg := c.reg
	c.mu.Unlock()
	if !ok && reg != nil {
		registerTable(reg, sw, t)
	}
	return t
}

// registerTable publishes one switch's rule count. Called outside c.mu:
// snapshotting takes registry lock then layer locks, so registering under
// c.mu would invert the order against the sdn_flowtable_misses gauge.
func registerTable(reg *telemetry.Registry, sw topology.NodeID, t *FlowTable) {
	reg.GaugeFunc("sdn_rules", func() float64 { return float64(t.Len()) },
		telemetry.L("switch", strconv.Itoa(int(sw))))
}

// RegisterMetrics publishes flow-table pressure in the telemetry registry:
// sdn_flowtable_misses (lookups matching no rule, summed across switches),
// sdn_rules_total, and a per-switch sdn_rules{switch=<id>} gauge for every
// table, present and future. All are gauge funcs sampled at snapshot time,
// so the lookup path pays nothing. A nil registry is a no-op.
func (c *Controller) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	c.reg = reg
	existing := make(map[topology.NodeID]*FlowTable, len(c.tables))
	for sw, t := range c.tables {
		existing[sw] = t
	}
	c.mu.Unlock()
	reg.GaugeFunc("sdn_flowtable_misses", func() float64 { return float64(c.Misses()) })
	reg.GaugeFunc("sdn_rules_total", func() float64 { return float64(c.RuleCount()) })
	reg.GaugeFunc("sdn_shared_rules", func() float64 { return float64(c.SharedRuleCount()) })
	for sw, t := range existing {
		registerTable(reg, sw, t)
	}
}

// Misses sums the table-miss counts across all switches.
func (c *Controller) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, t := range c.tables {
		n += t.Misses()
	}
	return n
}

// InstalledRule pairs a rule with the switch it lives on.
type InstalledRule struct {
	Switch topology.NodeID
	Rule   *Rule
}

// indexRuleLocked registers a ref under every owner. Caller holds c.mu.
func (c *Controller) indexRuleLocked(queryID string, ref *ruleRef) {
	c.byQuery[queryID] = append(c.byQuery[queryID], ref)
	c.byID[ref.rule.ID] = ref
}

// dropFromQueryLocked unlinks ref from one query's index slice.
func (c *Controller) dropFromQueryLocked(queryID string, ref *ruleRef) {
	refs := c.byQuery[queryID]
	for i, r := range refs {
		if r == ref {
			refs[i] = refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			break
		}
	}
	if len(refs) == 0 {
		delete(c.byQuery, queryID)
	} else {
		c.byQuery[queryID] = refs
	}
}

// applySamplingLocked recomputes a rule's effective mirror sampling as the
// max of its owners' requested rates and applies it, reporting whether the
// effective rate changed. Caller holds c.mu and bumps the epoch on change.
func (c *Controller) applySamplingLocked(ref *ruleRef) bool {
	eff := 0.0
	for _, st := range ref.owners {
		if st.rate > eff {
			eff = st.rate
		}
	}
	if ref.eff == eff {
		return false
	}
	ref.eff = eff
	ref.rule.SetMirrorSampling(eff)
	return true
}

// InstallMirror installs a mirror rule on a switch: matched frames keep
// their normal forwarding and a copy is sent to tap. Returns the rule ID.
// The rule is exclusive to queryID; overlapping queries that want to share
// one rule use InstallSharedMirror.
func (c *Controller) InstallMirror(queryID string, sw topology.NodeID, m Match, tap topology.NodeID, priority int) uint64 {
	t := c.Table(sw) // outside c.mu: first use registers telemetry
	r := &Rule{
		ID:       c.nextID.Add(1),
		QueryID:  queryID,
		Priority: priority,
		Match:    m,
		Actions: []Action{
			{Type: ActionForward, Dst: 0},
			{Type: ActionMirror, Dst: tap},
		},
	}
	c.mu.Lock()
	c.indexRuleLocked(queryID, &ruleRef{
		sw: sw, rule: r, eff: 1,
		owners: map[string]*ownerState{queryID: {rate: 1}},
	})
	t.Install(r)
	c.mu.Unlock()
	return r.ID
}

// InstallSharedMirror installs a refcounted mirror rule, merging the demand
// with any query already mirroring the same (switch, match, tap, priority):
// the first caller installs one rule, later callers join its owner set and
// get the same rule ID back, and the rule stays installed until every owner
// has released it (RemoveQuery decrements instead of deleting). The rule's
// QueryID field carries the SharedRuleOwner sentinel.
func (c *Controller) InstallSharedMirror(queryID string, sw topology.NodeID, m Match, tap topology.NodeID, priority int) uint64 {
	t := c.Table(sw)
	key := sharedKey{sw: sw, match: m, tap: tap, priority: priority}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ref, ok := c.shared[key]; ok {
		if ref.owners[queryID] == nil {
			ref.owners[queryID] = &ownerState{rate: 1}
			c.byQuery[queryID] = append(c.byQuery[queryID], ref)
			if c.applySamplingLocked(ref) {
				c.epoch.Add(1)
			}
		}
		return ref.rule.ID
	}
	r := &Rule{
		ID:       c.nextID.Add(1),
		QueryID:  SharedRuleOwner,
		Priority: priority,
		Match:    m,
		Actions: []Action{
			{Type: ActionForward, Dst: 0},
			{Type: ActionMirror, Dst: tap},
		},
	}
	ref := &ruleRef{
		sw: sw, rule: r, shared: true, key: key, eff: 1,
		owners: map[string]*ownerState{queryID: {rate: 1}},
	}
	c.indexRuleLocked(queryID, ref)
	c.shared[key] = ref
	t.Install(r)
	return r.ID
}

// RemoveRule uninstalls a single rule from one switch's table, bumping the
// epoch so cached flow decisions re-resolve. Returns false when the rule was
// not installed there. Monitor failover uses this to retire a crashed
// instance's mirror rules before re-installing them at the replacement.
func (c *Controller) RemoveRule(sw topology.NodeID, id uint64) bool {
	t := c.Table(sw)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ref, ok := c.byID[id]; ok {
		delete(c.byID, id)
		if ref.shared {
			delete(c.shared, ref.key)
		}
		for q := range ref.owners {
			c.dropFromQueryLocked(q, ref)
		}
	}
	return t.Remove(id)
}

// RemoveQuery releases every rule the query owns: exclusive rules are
// uninstalled; shared rules lose this owner and are uninstalled only when no
// other query still holds them. Returns the number of rules actually
// uninstalled (a shared release that leaves owners behind counts zero).
// O(rules-of-query) via the controller index.
func (c *Controller) RemoveQuery(queryID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	refs := c.byQuery[queryID]
	delete(c.byQuery, queryID)
	removed := 0
	for _, ref := range refs {
		if _, ok := ref.owners[queryID]; !ok {
			continue
		}
		delete(ref.owners, queryID)
		if len(ref.owners) > 0 {
			if c.applySamplingLocked(ref) {
				c.epoch.Add(1)
			}
			continue
		}
		delete(c.byID, ref.rule.ID)
		if ref.shared {
			delete(c.shared, ref.key)
		}
		if t := c.tables[ref.sw]; t != nil && t.Remove(ref.rule.ID) {
			removed++
		}
	}
	return removed
}

// QueryRules lists every installed rule the query owns (exclusively or as a
// member of a shared rule's owner set), via the controller index.
func (c *Controller) QueryRules(queryID string) []InstalledRule {
	c.mu.Lock()
	defer c.mu.Unlock()
	refs := c.byQuery[queryID]
	out := make([]InstalledRule, 0, len(refs))
	for _, ref := range refs {
		out = append(out, InstalledRule{Switch: ref.sw, Rule: ref.rule})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.ID < out[j].Rule.ID })
	return out
}

// RuleOwners returns the sorted owner set of an installed rule: the single
// owning query for exclusive rules, every subscribed query for shared ones.
// Nil when the rule is not in the controller index.
func (c *Controller) RuleOwners(id uint64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.byID[id]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ref.owners))
	for q := range ref.owners {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// SharedRuleCount returns the number of installed rules currently carrying
// more than one owner — the control plane's merge win. Exported to telemetry
// as sdn_shared_rules.
func (c *Controller) SharedRuleCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ref := range c.shared {
		if len(ref.owners) > 1 {
			n++
		}
	}
	return n
}

// SetQuerySampling applies switch-level mirror sampling to every rule of a
// query (§4.2's controller escalation), returning the number of rules
// updated. rate >= 1 disables sampling. On shared rules the query's rate is
// recorded in its owner state and the rule's effective rate becomes the max
// over owners, so one overloaded query can never starve its co-subscribers.
// O(rules-of-query) via the controller index.
func (c *Controller) SetQuerySampling(queryID string, rate float64) int {
	if rate > 1 {
		rate = 1
	}
	if rate < 0 {
		rate = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	updated := 0
	for _, ref := range c.byQuery[queryID] {
		st := ref.owners[queryID]
		if st == nil {
			continue
		}
		st.rate = rate
		c.applySamplingLocked(ref)
		updated++
	}
	if updated > 0 {
		c.epoch.Add(1)
	}
	return updated
}

// ReinstallTapRules retires and freshly installs every indexed rule whose
// mirror action targets tap, preserving match, priority, owner sets and
// effective sampling. Shared-monitor failover uses this: when the instance
// on a host crashes and a replacement is launched, one call re-installs the
// mirror rules of *every* subscribed query (rule IDs change; the index and
// owner sets carry over). Returns the number of rules reinstalled.
func (c *Controller) ReinstallTapRules(tap topology.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var refs []*ruleRef
	for _, ref := range c.byID {
		for _, a := range ref.rule.Actions {
			if a.Type == ActionMirror && a.Dst == tap {
				refs = append(refs, ref)
				break
			}
		}
	}
	for _, ref := range refs {
		old := ref.rule
		r := &Rule{
			ID:       c.nextID.Add(1),
			QueryID:  old.QueryID,
			Priority: old.Priority,
			Match:    old.Match,
			Actions:  append([]Action(nil), old.Actions...),
		}
		r.SetMirrorSampling(ref.eff)
		t := c.tables[ref.sw]
		if t == nil || !t.Remove(old.ID) {
			continue
		}
		delete(c.byID, old.ID)
		ref.rule = r
		c.byID[r.ID] = ref
		t.Install(r)
	}
	return len(refs)
}

// RuleCount returns the total number of rules installed across all switches.
func (c *Controller) RuleCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.tables {
		n += t.Len()
	}
	return n
}
