package sdn

import (
	"net/netip"
	"sync"
	"testing"

	"netalytics/internal/packet"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

var (
	ipA = netip.MustParseAddr("10.0.2.8")
	ipB = netip.MustParseAddr("10.0.2.9")
	ipC = netip.MustParseAddr("10.0.3.7")
)

func tuple(src netip.Addr, sport uint16, dst netip.Addr, dport uint16) packet.FiveTuple {
	return packet.FiveTuple{Src: src, SrcPort: sport, Dst: dst, DstPort: dport, Proto: packet.ProtoTCP}
}

func TestMatchWildcards(t *testing.T) {
	ft := tuple(ipA, 5555, ipB, 80)
	tests := []struct {
		name string
		m    Match
		want bool
	}{
		{"match all", MatchAll, true},
		{"exact", Match{SrcIP: ipA, SrcPort: 5555, DstIP: ipB, DstPort: 80, Proto: packet.ProtoTCP}, true},
		{"dst only", Match{DstIP: ipB, DstPort: 80}, true},
		{"dst ip any port", Match{DstIP: ipB}, true},
		{"wrong dst port", Match{DstIP: ipB, DstPort: 3306}, false},
		{"wrong src ip", Match{SrcIP: ipC}, false},
		{"wrong proto", Match{Proto: packet.ProtoUDP}, false},
		{"src port only", Match{SrcPort: 5555}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.Matches(ft); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchSpecificityAndString(t *testing.T) {
	m := Match{DstIP: ipB, DstPort: 80}
	if got := m.Specificity(); got != 3 { // exact IP counts 2, port 1
		t.Errorf("Specificity = %d, want 3", got)
	}
	if got := MatchAll.Specificity(); got != 0 {
		t.Errorf("MatchAll Specificity = %d, want 0", got)
	}
	sub := Match{DstNet: netip.MustParsePrefix("10.0.2.0/24"), DstPort: 80}
	if got := sub.Specificity(); got != 2 { // prefix counts 1, port 1
		t.Errorf("subnet Specificity = %d, want 2", got)
	}
	if got := m.String(); got != "*:*->10.0.2.9:80" {
		t.Errorf("String = %q", got)
	}
}

func TestMatchSubnets(t *testing.T) {
	rack := netip.MustParsePrefix("10.0.2.0/24")
	m := Match{DstNet: rack, DstPort: 80}
	if !m.Matches(tuple(ipC, 1, ipA, 80)) {
		t.Error("in-subnet tuple rejected")
	}
	if m.Matches(tuple(ipA, 1, ipC, 80)) {
		t.Error("out-of-subnet tuple matched")
	}
	if m.Matches(tuple(ipC, 1, ipB, 443)) {
		t.Error("wrong port matched")
	}
	src := Match{SrcNet: rack}
	if !src.Matches(tuple(ipA, 1, ipC, 80)) || src.Matches(tuple(ipC, 1, ipA, 80)) {
		t.Error("SrcNet matching wrong")
	}
	if got := m.String(); got != "*:*->10.0.2.0/24:80" {
		t.Errorf("String = %q", got)
	}
}

func TestMatchReverse(t *testing.T) {
	m := Match{
		SrcIP: ipA, DstNet: netip.MustParsePrefix("10.0.3.0/24"),
		SrcPort: 5555, DstPort: 80, Proto: packet.ProtoTCP,
	}
	r := m.Reverse()
	if r.DstIP != ipA || r.SrcNet != m.DstNet || r.SrcPort != 80 || r.DstPort != 5555 || r.Proto != m.Proto {
		t.Errorf("Reverse = %+v", r)
	}
	if rr := r.Reverse(); rr != m {
		t.Errorf("double Reverse = %+v, want original", rr)
	}
}

func TestFlowTablePriorityOrder(t *testing.T) {
	var ft FlowTable
	low := &Rule{ID: 1, Priority: 1, Match: MatchAll}
	high := &Rule{ID: 2, Priority: 10, Match: Match{DstIP: ipB}}
	ft.Install(low)
	ft.Install(high)

	got := ft.Lookup(tuple(ipA, 1, ipB, 80))
	if got != high {
		t.Errorf("Lookup returned rule %d, want high-priority rule 2", got.ID)
	}
	// A tuple missing the specific rule falls through to the wildcard.
	if got := ft.Lookup(tuple(ipA, 1, ipC, 80)); got != low {
		t.Errorf("fallthrough returned %v, want low rule", got)
	}
	if high.MatchCount() != 1 || low.MatchCount() != 1 {
		t.Errorf("match counts = %d/%d, want 1/1", high.MatchCount(), low.MatchCount())
	}
}

func TestFlowTableSpecificityTieBreak(t *testing.T) {
	var ft FlowTable
	wide := &Rule{ID: 1, Priority: 5, Match: Match{DstIP: ipB}}
	narrow := &Rule{ID: 2, Priority: 5, Match: Match{DstIP: ipB, DstPort: 80}}
	ft.Install(wide)
	ft.Install(narrow)
	if got := ft.Lookup(tuple(ipA, 1, ipB, 80)); got != narrow {
		t.Errorf("Lookup = rule %d, want the more specific rule 2", got.ID)
	}
}

func TestFlowTableMiss(t *testing.T) {
	var ft FlowTable
	ft.Install(&Rule{ID: 1, Match: Match{DstIP: ipB}})
	if got := ft.Lookup(tuple(ipA, 1, ipC, 80)); got != nil {
		t.Errorf("Lookup = %v, want nil", got)
	}
	if ft.Misses() != 1 {
		t.Errorf("Misses = %d, want 1", ft.Misses())
	}
}

func TestFlowTableRemove(t *testing.T) {
	var ft FlowTable
	ft.Install(&Rule{ID: 7, Match: MatchAll})
	if !ft.Remove(7) {
		t.Error("Remove(7) = false")
	}
	if ft.Remove(7) {
		t.Error("second Remove(7) = true")
	}
	if ft.Len() != 0 {
		t.Errorf("Len = %d, want 0", ft.Len())
	}
}

func TestMirrorTargetsDeduplicated(t *testing.T) {
	var ft FlowTable
	mon1, mon2 := topology.NodeID(100), topology.NodeID(200)
	ft.Install(&Rule{ID: 1, Match: Match{DstIP: ipB}, Actions: []Action{{Type: ActionMirror, Dst: mon1}}})
	ft.Install(&Rule{ID: 2, Match: Match{DstPort: 80}, Actions: []Action{{Type: ActionMirror, Dst: mon1}, {Type: ActionMirror, Dst: mon2}}})
	ft.Install(&Rule{ID: 3, Match: Match{DstIP: ipC}, Actions: []Action{{Type: ActionMirror, Dst: mon2}}})

	got := ft.MirrorTargets(tuple(ipA, 1, ipB, 80))
	if len(got) != 2 {
		t.Fatalf("targets = %v, want two deduplicated monitors", got)
	}
	if got[0] != mon1 || got[1] != mon2 {
		t.Errorf("targets = %v, want [%d %d]", got, mon1, mon2)
	}
	// Non-matching tuple yields nothing.
	if got := ft.MirrorTargets(tuple(ipA, 1, ipC, 443)); len(got) != 1 || got[0] != mon2 {
		t.Errorf("targets for ipC = %v, want only mon2", got)
	}
}

func TestRuleMirrorSampling(t *testing.T) {
	var ft FlowTable
	mon := topology.NodeID(42)
	rule := &Rule{ID: 1, Match: Match{DstPort: 80}, Actions: []Action{{Type: ActionMirror, Dst: mon}}}
	ft.Install(rule)

	if got := rule.MirrorSampling(); got != 1 {
		t.Errorf("default MirrorSampling = %v, want 1", got)
	}

	countMirrored := func() int {
		n := 0
		for i := 0; i < 400; i++ {
			probe := tuple(ipA, uint16(1000+i), ipB, 80)
			if len(ft.MirrorTargets(probe)) > 0 {
				n++
			}
		}
		return n
	}
	if got := countMirrored(); got != 400 {
		t.Fatalf("unsampled rule mirrored %d/400", got)
	}

	rule.SetMirrorSampling(0.5)
	if got := rule.MirrorSampling(); got < 0.49 || got > 0.51 {
		t.Errorf("MirrorSampling = %v, want ~0.5", got)
	}
	got := countMirrored()
	if got < 120 || got > 280 {
		t.Errorf("rule at rate 0.5 mirrored %d/400, outside [120,280]", got)
	}

	// Flow-consistency: the same flow is always mirrored or always dropped.
	probe := tuple(ipA, 1234, ipB, 80)
	first := len(ft.MirrorTargets(probe)) > 0
	for i := 0; i < 10; i++ {
		if (len(ft.MirrorTargets(probe)) > 0) != first {
			t.Fatal("rule sampling not flow-consistent")
		}
	}

	rule.SetMirrorSampling(1.5) // out of range disables sampling
	if got := countMirrored(); got != 400 {
		t.Errorf("disabled sampling mirrored %d/400", got)
	}
}

func TestControllerSetQuerySampling(t *testing.T) {
	c := NewController()
	tap := topology.NodeID(9)
	c.InstallMirror("q1", 1, Match{DstPort: 80}, tap, 10)
	c.InstallMirror("q1", 2, Match{DstPort: 80}, tap, 10)
	c.InstallMirror("q2", 1, Match{DstPort: 81}, tap, 10)

	if updated := c.SetQuerySampling("q1", 0.25); updated != 2 {
		t.Errorf("updated %d rules, want 2", updated)
	}
	for _, ir := range c.QueryRules("q1") {
		if got := ir.Rule.MirrorSampling(); got > 0.26 || got < 0.24 {
			t.Errorf("q1 rule sampling = %v, want 0.25", got)
		}
	}
	for _, ir := range c.QueryRules("q2") {
		if got := ir.Rule.MirrorSampling(); got != 1 {
			t.Errorf("q2 rule sampling = %v, want untouched 1", got)
		}
	}
}

func TestControllerInstallAndRemoveQuery(t *testing.T) {
	c := NewController()
	sw1, sw2 := topology.NodeID(10), topology.NodeID(20)
	tap := topology.NodeID(99)

	id1 := c.InstallMirror("q1", sw1, Match{DstIP: ipB, DstPort: 80}, tap, 100)
	id2 := c.InstallMirror("q1", sw2, Match{DstIP: ipB, DstPort: 80}, tap, 100)
	c.InstallMirror("q2", sw1, Match{DstIP: ipC}, tap, 100)

	if id1 == id2 {
		t.Error("rule IDs not unique")
	}
	if got := c.RuleCount(); got != 3 {
		t.Errorf("RuleCount = %d, want 3", got)
	}
	rules := c.QueryRules("q1")
	if len(rules) != 2 {
		t.Fatalf("QueryRules(q1) = %d rules, want 2", len(rules))
	}
	for _, ir := range rules {
		hasMirror := false
		for _, a := range ir.Rule.Actions {
			if a.Type == ActionMirror && a.Dst == tap {
				hasMirror = true
			}
		}
		if !hasMirror {
			t.Errorf("rule %d has no mirror action to tap", ir.Rule.ID)
		}
	}

	if removed := c.RemoveQuery("q1"); removed != 2 {
		t.Errorf("RemoveQuery(q1) = %d, want 2", removed)
	}
	if got := c.RuleCount(); got != 1 {
		t.Errorf("RuleCount after removal = %d, want 1", got)
	}
	if removed := c.RemoveQuery("q1"); removed != 0 {
		t.Errorf("second RemoveQuery(q1) = %d, want 0", removed)
	}
}

func TestControllerTableReuse(t *testing.T) {
	c := NewController()
	sw := topology.NodeID(5)
	if c.Table(sw) != c.Table(sw) {
		t.Error("Table returned different instances for one switch")
	}
}

func TestControllerConcurrentAccess(t *testing.T) {
	c := NewController()
	tap := topology.NodeID(999)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sw := topology.NodeID(g % 4)
			for i := 0; i < 50; i++ {
				c.InstallMirror("load", sw, Match{DstPort: uint16(i + 1)}, tap, i)
				c.Table(sw).Lookup(tuple(ipA, 1, ipB, uint16(i+1)))
			}
		}(g)
	}
	wg.Wait()
	if got := c.RuleCount(); got != 8*50 {
		t.Errorf("RuleCount = %d, want 400", got)
	}
	if removed := c.RemoveQuery("load"); removed != 400 {
		t.Errorf("RemoveQuery = %d, want 400", removed)
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	var ft FlowTable
	for i := 0; i < 64; i++ {
		ft.Install(&Rule{ID: uint64(i), Priority: i, Match: Match{DstPort: uint16(i + 1000)}})
	}
	ft.Install(&Rule{ID: 1000, Priority: -1, Match: MatchAll})
	probe := tuple(ipA, 1, ipB, 80) // falls through to the wildcard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ft.Lookup(probe)
	}
}

func TestControllerEpoch(t *testing.T) {
	c := NewController()
	tap := topology.NodeID(9)
	probe := tuple(ipA, 1, ipB, 80)

	start := c.Epoch()
	id := c.InstallMirror("q", 1, Match{DstPort: 80}, tap, 10)
	if got := c.Epoch(); got != start+1 {
		t.Errorf("Epoch after InstallMirror = %d, want %d", got, start+1)
	}

	// Reads never bump: cached flow decisions stay valid across lookups.
	c.Table(1).Lookup(probe)
	c.Table(1).MirrorTargets(probe)
	if got := c.Epoch(); got != start+1 {
		t.Errorf("Epoch after lookups = %d, want unchanged %d", got, start+1)
	}

	if updated := c.SetQuerySampling("q", 0.5); updated != 1 {
		t.Fatalf("SetQuerySampling updated %d, want 1", updated)
	}
	if got := c.Epoch(); got != start+2 {
		t.Errorf("Epoch after SetQuerySampling = %d, want %d", got, start+2)
	}
	// Sampling a query with no rules leaves the epoch alone.
	if updated := c.SetQuerySampling("missing", 0.5); updated != 0 {
		t.Fatalf("SetQuerySampling(missing) updated %d, want 0", updated)
	}
	if got := c.Epoch(); got != start+2 {
		t.Errorf("Epoch after no-op sampling = %d, want unchanged %d", got, start+2)
	}

	if !c.Table(1).Remove(id) {
		t.Fatal("Remove failed")
	}
	if got := c.Epoch(); got != start+3 {
		t.Errorf("Epoch after Remove = %d, want %d", got, start+3)
	}
	// Removing a rule that is already gone is not a visible change.
	if c.Table(1).Remove(id) {
		t.Fatal("second Remove succeeded")
	}
	if got := c.Epoch(); got != start+3 {
		t.Errorf("Epoch after no-op Remove = %d, want unchanged %d", got, start+3)
	}

	c.InstallMirror("q2", 2, Match{DstPort: 81}, tap, 10)
	after := c.Epoch()
	if removed := c.RemoveQuery("q2"); removed != 1 {
		t.Fatalf("RemoveQuery removed %d, want 1", removed)
	}
	if got := c.Epoch(); got != after+1 {
		t.Errorf("Epoch after RemoveQuery = %d, want %d", got, after+1)
	}
	if removed := c.RemoveQuery("q2"); removed != 0 {
		t.Fatalf("second RemoveQuery removed %d, want 0", removed)
	}
	if got := c.Epoch(); got != after+1 {
		t.Errorf("Epoch after no-op RemoveQuery = %d, want unchanged %d", got, after+1)
	}
}

func TestMirrorTargetsAppend(t *testing.T) {
	var ft FlowTable
	mon1, mon2 := topology.NodeID(100), topology.NodeID(200)
	ft.Install(&Rule{ID: 1, Match: Match{DstIP: ipB}, Actions: []Action{{Type: ActionMirror, Dst: mon1}}})
	ft.Install(&Rule{ID: 2, Match: Match{DstPort: 80}, Actions: []Action{{Type: ActionMirror, Dst: mon2}}})
	probe := tuple(ipA, 1, ipB, 80)

	// Appends into the caller's buffer, deduplicating against what is
	// already there — the cross-switch dedup the forward path relies on.
	buf := []topology.NodeID{mon1, 7}
	got := ft.MirrorTargetsAppend(probe, buf)
	want := []topology.NodeID{mon1, 7, mon2}
	if len(got) != len(want) {
		t.Fatalf("MirrorTargetsAppend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MirrorTargetsAppend = %v, want %v", got, want)
		}
	}
	// Nil buffer behaves like MirrorTargets.
	if got := ft.MirrorTargetsAppend(probe, nil); len(got) != 2 {
		t.Fatalf("MirrorTargetsAppend(nil) = %v, want 2 targets", got)
	}
}

func TestMirrorTargetsAppendLargeSet(t *testing.T) {
	// Past smallTargetSet entries the dedup switches from a linear scan to
	// a map; duplicates must still be suppressed across the boundary.
	var ft FlowTable
	const total = 3 * smallTargetSet
	for i := 0; i < total; i++ {
		ft.Install(&Rule{ID: uint64(i + 1), Match: Match{DstPort: 80}, Actions: []Action{
			{Type: ActionMirror, Dst: topology.NodeID(1000 + i)},
			{Type: ActionMirror, Dst: topology.NodeID(1000 + (i+1)%total)}, // overlaps neighbor
		}})
	}
	got := ft.MirrorTargetsAppend(tuple(ipA, 1, ipB, 80), nil)
	if len(got) != total {
		t.Fatalf("got %d targets, want %d deduplicated", len(got), total)
	}
	seen := make(map[topology.NodeID]bool, len(got))
	for _, tgt := range got {
		if seen[tgt] {
			t.Fatalf("duplicate target %d in %v", tgt, got)
		}
		seen[tgt] = true
	}
}

func TestControllerRegisterMetrics(t *testing.T) {
	c := NewController()
	tap := topology.NodeID(9)
	c.InstallMirror("q", 1, Match{DstPort: 80}, tap, 10) // table exists pre-registration
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)
	c.InstallMirror("q", 2, Match{DstPort: 80}, tap, 10) // and post-registration
	c.Table(1).Lookup(tuple(ipA, 1, ipB, 443))           // one miss

	points := map[string]float64{}
	for _, p := range reg.Snapshot() {
		key := p.Name
		if sw, ok := p.Labels["switch"]; ok {
			key += ":" + sw
		}
		points[key] = p.Value
	}
	if points["sdn_rules_total"] != 2 {
		t.Errorf("sdn_rules_total = %v, want 2", points["sdn_rules_total"])
	}
	if points["sdn_flowtable_misses"] != 1 {
		t.Errorf("sdn_flowtable_misses = %v, want 1", points["sdn_flowtable_misses"])
	}
	if points["sdn_rules:1"] != 1 || points["sdn_rules:2"] != 1 {
		t.Errorf("per-switch sdn_rules = %v/%v, want 1/1 (pre- and post-registration tables)",
			points["sdn_rules:1"], points["sdn_rules:2"])
	}
}
