package vnet

// Tests for the per-flow forwarding-decision cache: hit/miss accounting,
// epoch-driven invalidation (every control-plane mutation must be visible on
// the very next frame of an already-cached flow), bounded eviction, and
// race-detector coverage of injection racing control-plane churn.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/fault"
	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/topology"
)

// buildFlowFrame is buildFrame with a caller-chosen source port, so tests
// can mint distinct flows that all target the same server.
func buildFlowFrame(src, dst *topology.Host, srcPort, dstPort uint16, flags uint8) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: src.Addr, Dst: dst.Addr,
		SrcPort: srcPort, DstPort: dstPort,
		Flags: flags,
	})
}

func TestFlowCacheHitReplay(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(DefaultFlowCacheSize)
	hosts := ft.Hosts()
	server, client, monitor := hosts[0], hosts[len(hosts)-1], hosts[1]
	tap := n.OpenTap(monitor.ID, 64)
	n.Controller().InstallMirror("q", server.Edge, sdn.Match{DstIP: server.Addr, DstPort: 80}, monitor.ID, 100)

	raw := buildFrame(client, server, 80, packet.TCPFlagACK)
	const frames = 10
	for i := 0; i < frames; i++ {
		if err := n.Inject(raw); err != nil {
			t.Fatalf("Inject %d: %v", i, err)
		}
	}

	cs := n.FlowCacheStats()
	if cs.Misses != 1 || cs.Hits != frames-1 {
		t.Errorf("cache stats = %+v, want 1 miss and %d hits", cs, frames-1)
	}
	if got := len(tap.C); got != frames {
		t.Errorf("tap received %d copies, want %d (replay must keep mirroring)", got, frames)
	}
	st := n.Stats()
	if st.Frames != frames || st.BytesCore != st.Bytes {
		t.Errorf("stats = %+v, want %d cross-pod frames counted on the hit path", st, frames)
	}
}

func TestFlowCacheDisabled(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[len(hosts)-1]
	raw := buildFrame(client, server, 80, packet.TCPFlagACK)

	// The cache starts disabled: no counters move.
	if err := n.Inject(raw); err != nil {
		t.Fatal(err)
	}
	if cs := n.FlowCacheStats(); cs != (FlowCacheStats{}) {
		t.Errorf("cache stats with cache off = %+v, want zeros", cs)
	}

	// Enable, warm, then disable again: SetFlowCacheSize(0) is the A/B off
	// switch and must drop both the entries and the counters.
	n.SetFlowCacheSize(64)
	if err := n.Inject(raw); err != nil {
		t.Fatal(err)
	}
	if cs := n.FlowCacheStats(); cs.Misses != 1 {
		t.Errorf("cache stats after enable = %+v, want 1 miss", cs)
	}
	n.SetFlowCacheSize(0)
	if err := n.Inject(raw); err != nil {
		t.Fatal(err)
	}
	if cs := n.FlowCacheStats(); cs != (FlowCacheStats{}) {
		t.Errorf("cache stats after disable = %+v, want zeros", cs)
	}
}

// TestFlowCacheInvalidation drives one flow through every control-plane
// mutation the epochs guard and asserts the frame injected immediately after
// each mutation observes it — the correctness core of the cache.
func TestFlowCacheInvalidation(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(DefaultFlowCacheSize)
	hosts := ft.Hosts()
	server, client, monitor := hosts[0], hosts[len(hosts)-1], hosts[1]
	raw := buildFrame(client, server, 80, packet.TCPFlagACK)
	inject := func() {
		t.Helper()
		if err := n.Inject(raw); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the cache with no rules, no taps, no endpoint.
	inject()
	if st := n.Stats(); st.UnknownDst != 1 {
		t.Fatalf("UnknownDst = %d, want 1 (no endpoint attached yet)", st.UnknownDst)
	}

	// 1. InstallMirror on a cached flow: rule visible on the next frame
	//    (the tap already exists, so delivery must start immediately).
	tap := n.OpenTap(monitor.ID, 64)
	n.Controller().InstallMirror("q", server.Edge, sdn.Match{DstIP: server.Addr, DstPort: 80}, monitor.ID, 100)
	inject()
	if got := len(tap.C); got != 1 {
		t.Fatalf("after InstallMirror: tap has %d frames, want 1", got)
	}

	// 2. OpenTap on a host already targeted by a cached mirror decision:
	//    the second tap must receive the very next frame too.
	tap2 := n.OpenTap(monitor.ID, 64)
	inject()
	if got, got2 := len(tap.C), len(tap2.C); got != 2 || got2 != 1 {
		t.Fatalf("after OpenTap: taps have %d/%d frames, want 2/1", got, got2)
	}

	// 3. SetQuerySampling to zero: the flow stops being mirrored on the
	//    next frame even though the rule is still installed.
	if updated := n.Controller().SetQuerySampling("q", 0); updated != 1 {
		t.Fatalf("SetQuerySampling updated %d rules, want 1", updated)
	}
	inject()
	if got, got2 := len(tap.C), len(tap2.C); got != 2 || got2 != 1 {
		t.Fatalf("after SetQuerySampling(0): taps grew to %d/%d frames, want 2/1", got, got2)
	}
	if updated := n.Controller().SetQuerySampling("q", 1); updated != 1 {
		t.Fatalf("SetQuerySampling restore updated %d rules, want 1", updated)
	}

	// 4. CloseTap: the closed tap is dropped from the decision on the next
	//    frame; the surviving tap keeps receiving.
	n.CloseTap(tap2)
	inject()
	if got := len(tap.C); got != 3 {
		t.Fatalf("after CloseTap: surviving tap has %d frames, want 3", got)
	}

	// 5. Endpoint attach: a flow cached with "no endpoint" must reach the
	//    endpoint attached mid-stream.
	n.Endpoint(server)
	before := n.Stats().UnknownDst
	inject()
	if got := n.Stats().UnknownDst; got != before {
		t.Fatalf("after Endpoint attach: UnknownDst grew %d -> %d, want unchanged", before, got)
	}

	// 6. RemoveQuery: mirroring stops on the next frame.
	if removed := n.Controller().RemoveQuery("q"); removed == 0 {
		t.Fatal("RemoveQuery removed no rules")
	}
	inject()
	if got := len(tap.C); got != 4 {
		t.Fatalf("after RemoveQuery: tap has %d frames, want 4 (no new mirror)", got)
	}
}

func TestFlowCacheEviction(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(cacheWays) // one shard: flows 5..N must evict
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[len(hosts)-1]

	const flows = 3 * cacheWays
	for p := 0; p < flows; p++ {
		raw := buildFlowFrame(client, server, uint16(20000+p), 80, packet.TCPFlagACK)
		if err := n.Inject(raw); err != nil {
			t.Fatal(err)
		}
	}
	cs := n.FlowCacheStats()
	if cs.Misses != flows {
		t.Errorf("misses = %d, want %d (every flow distinct)", cs.Misses, flows)
	}
	if cs.Evictions != flows-cacheWays {
		t.Errorf("evictions = %d, want %d (bounded shard must recycle)", cs.Evictions, flows-cacheWays)
	}
}

func TestMirrorDedupAcrossSwitchesCached(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(DefaultFlowCacheSize)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[len(hosts)-1]
	monitor := hosts[1]
	tap := n.OpenTap(monitor.ID, 64)

	// Same mirror on both ToR switches: one copy per frame, on the miss
	// path (first frame) and the cached replay path (second) alike.
	m := sdn.Match{DstIP: server.Addr, DstPort: 80}
	n.Controller().InstallMirror("q", server.Edge, m, monitor.ID, 100)
	n.Controller().InstallMirror("q", client.Edge, m, monitor.ID, 100)

	raw := buildFrame(client, server, 80, packet.TCPFlagSYN)
	for i := 0; i < 2; i++ {
		if err := n.Inject(raw); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	if got := len(tap.C); got != 2 {
		t.Errorf("tap received %d copies over 2 frames, want 2", got)
	}
	if cs := n.FlowCacheStats(); cs.Hits != 1 {
		t.Errorf("cache stats = %+v, want the second frame to hit", cs)
	}
}

// TestFlowCacheConcurrentControlChurn races injectors against continuous
// control-plane churn — rule install/remove, sampling flips, taps opening
// and closing — under the race detector. It asserts only invariants (no
// panic from a send on a closed channel, drained taps, sane counters):
// interleavings decide the actual mirror counts.
func TestFlowCacheConcurrentControlChurn(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(64) // small: exercise eviction under load too
	hosts := ft.Hosts()
	server, monitor := hosts[0], hosts[1]
	clients := []*topology.Host{hosts[2], hosts[4], hosts[len(hosts)-1]}
	n.Endpoint(server)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var injected atomic.Uint64

	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *topology.Host) {
			defer wg.Done()
			for p := 0; ; p++ {
				select {
				case <-stop:
					return
				default:
				}
				raw := buildFlowFrame(client, server, uint16(20000+i*100+p%8), 80, packet.TCPFlagACK)
				if err := n.Inject(raw); err != nil {
					t.Errorf("Inject: %v", err)
					return
				}
				injected.Add(1)
			}
		}(i, client)
	}

	// Control loop: open a tap, install mirrors, flip sampling, tear it
	// all down — repeatedly, while frames are in flight. Wait for the
	// injectors to actually start before opening the churn window: on a
	// single-core box the tight churn loop can otherwise ping-pong with its
	// own drainer goroutines and starve the injectors for the whole window.
	waitForInjection(t, &injected)
	m := sdn.Match{DstIP: server.Addr, DstPort: 80}
	deadline := time.After(300 * time.Millisecond)
	for round := 0; ; round++ {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			if injected.Load() == 0 {
				t.Fatal("no frames injected during churn")
			}
			if st := n.Stats(); st.Frames != injected.Load() {
				t.Errorf("frames = %d, want %d", st.Frames, injected.Load())
			}
			return
		default:
		}
		tap := n.OpenTap(monitor.ID, 16)
		drained := make(chan struct{})
		go func() {
			for range tap.C {
			}
			close(drained)
		}()
		n.Controller().InstallMirror("churn", server.Edge, m, monitor.ID, 100)
		n.Controller().InstallMirror("churn", clients[round%len(clients)].Edge, m, monitor.ID, 100)
		n.Controller().SetQuerySampling("churn", 0.5)
		n.Controller().SetQuerySampling("churn", 1)
		n.Controller().RemoveQuery("churn")
		n.CloseTap(tap)
		<-drained
	}
}

// waitForInjection blocks until at least one injector goroutine has pushed a
// frame, yielding the processor so the injectors can get scheduled at all.
func waitForInjection(t *testing.T, injected *atomic.Uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for injected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injectors never started")
		}
		runtime.Gosched()
	}
}

// TestChaosFlowCacheFaultChurnTapCloseMidBurst drives the cache through
// fault-injected churn: loss windows open and close around tap/rule churn,
// and each round closes its tap mid-burst — while injectors are in full
// flight and the tap's small queue is backed up by a deliberately slow
// drainer. Cached decisions holding the dead tap must be invalidated by the
// epoch bump (no sends on a closed tap, no panics), and the frame ledger
// must balance exactly: every injected frame is either forwarded or booked
// as a fault drop.
func TestChaosFlowCacheFaultChurnTapCloseMidBurst(t *testing.T) {
	n, ft := newTestNet(t)
	n.SetFlowCacheSize(64)
	inj := fault.NewInjector(7, nil)
	inj.SetPods(ft.K)
	n.SetFaultHook(inj)
	hosts := ft.Hosts()
	server, monitor := hosts[0], hosts[1]
	clients := []*topology.Host{hosts[2], hosts[4], hosts[len(hosts)-1]}
	n.Endpoint(server)

	// A standing loss window spans the whole churn so a steady fraction of
	// frames is fault-dropped; the per-round windows below churn the active
	// set on top of it.
	standing := fault.Event{Kind: fault.LinkLoss, Param: 0.25, Duration: time.Hour}
	inj.Apply(standing)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var injected atomic.Uint64
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *topology.Host) {
			defer wg.Done()
			for p := 0; ; p++ {
				select {
				case <-stop:
					return
				default:
				}
				raw := buildFlowFrame(client, server, uint16(21000+i*100+p%8), 80, packet.TCPFlagACK)
				if err := n.Inject(raw); err != nil {
					t.Errorf("Inject: %v", err)
					return
				}
				injected.Add(1)
			}
		}(i, client)
	}

	waitForInjection(t, &injected)
	m := sdn.Match{DstIP: server.Addr, DstPort: 80}
	deadline := time.After(300 * time.Millisecond)
	for round := 0; ; round++ {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			inj.ClearAll()
			if injected.Load() == 0 {
				t.Fatal("no frames injected during churn")
			}
			st := n.Stats()
			if st.Frames+st.FaultDrops != injected.Load() {
				t.Errorf("frame ledger: %d forwarded + %d fault drops != %d injected",
					st.Frames, st.FaultDrops, injected.Load())
			}
			if st.FaultDrops == 0 {
				t.Error("loss windows never dropped a frame")
			}
			return
		default:
		}
		// A small tap with a slow drainer: the queue backs up, so the close
		// below lands mid-burst with frames still queued and in flight.
		tap := n.OpenTap(monitor.ID, 8)
		drained := make(chan struct{})
		go func() {
			for range tap.C {
				time.Sleep(50 * time.Microsecond)
			}
			close(drained)
		}()
		loss := fault.Event{Kind: fault.LinkLoss, Param: 0.6, Duration: time.Second}
		inj.Apply(loss)
		n.Controller().InstallMirror("churn", server.Edge, m, monitor.ID, 100)
		n.Controller().InstallMirror("churn", clients[round%len(clients)].Edge, m, monitor.ID, 100)
		n.CloseTap(tap)
		inj.Clear(loss)
		n.Controller().RemoveQuery("churn")
		<-drained
	}
}
