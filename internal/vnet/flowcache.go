package vnet

// The flow-decision cache is the vnet analogue of Open vSwitch's microflow
// cache: the first frame of a flow pays the full forwarding resolution —
// host lookups, the fat-tree switch path, a walk of every on-path flow
// table, mirror-target dedup, tap and endpoint registry reads — and every
// subsequent frame replays the memoized decision with zero allocations and
// zero lock acquisitions. Correctness against control-plane churn comes
// from generation counters: decisions are stamped with the SDN controller's
// rule epoch and the network's tap/endpoint epoch as they were before
// resolution started, and a stamped-stale entry is re-resolved on its next
// frame (seqlock-style validation), so a freshly installed query's mirror
// rules take effect on the very next frame of an already-cached flow.
//
// The cache is bounded: power-of-two shards of cacheWays entries each, with
// a per-shard clock hand picking eviction victims, so long-tail flows
// recycle slots instead of growing the table. Entries are immutable once
// published through atomic pointers — insertion and eviction are plain
// pointer stores, making every path lock-free.

import (
	"sync/atomic"

	"netalytics/internal/packet"
	"netalytics/internal/topology"
)

// DefaultFlowCacheSize is the default capacity, in cached flow decisions,
// of the forwarding-decision cache (see Network.SetFlowCacheSize).
const DefaultFlowCacheSize = 8192

// cacheWays is the shard associativity: how many flows hashing to one shard
// can be cached before the clock hand starts evicting.
const cacheWays = 4

// Traffic-locality classes, in the order of Stats' byte counters.
const (
	localitySameRack = iota
	localitySamePod
	localityCore
)

// flowDecision is one flow's memoized forwarding decision. Immutable after
// publication; re-resolution replaces the pointer, never the contents.
type flowDecision struct {
	ft       packet.FiveTuple
	sdnEpoch uint64 // sdn.Controller.Epoch at resolution
	netEpoch uint64 // Network tap/endpoint epoch at resolution

	src, dst *topology.Host
	links    int   // path link traversals charged by per-hop delay
	locality uint8 // localitySameRack / localitySamePod / localityCore
	taps     []*Tap
	ep       *Endpoint // nil: destination host has no endpoint attached
}

type flowShard struct {
	ways [cacheWays]atomic.Pointer[flowDecision]
	hand atomic.Uint32
}

type flowCache struct {
	shards []flowShard // power-of-two length
	mask   uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

func newFlowCache(entries int) *flowCache {
	shards := 1
	for shards*cacheWays < entries {
		shards <<= 1
	}
	return &flowCache{shards: make([]flowShard, shards), mask: uint64(shards - 1)}
}

// lookup returns the cached decision for the flow, or nil when none is
// cached or the cached one was resolved under an older rule or registry
// epoch. Stale entries are left for insert to overwrite in place.
func (c *flowCache) lookup(h uint64, ft packet.FiveTuple, sdnEpoch, netEpoch uint64) *flowDecision {
	s := &c.shards[h&c.mask]
	for i := range s.ways {
		d := s.ways[i].Load()
		if d == nil || d.ft != ft {
			continue
		}
		if d.sdnEpoch == sdnEpoch && d.netEpoch == netEpoch {
			c.hits.Add(1)
			return d
		}
		break // stale: the re-resolution's insert refreshes this way
	}
	c.misses.Add(1)
	return nil
}

// insert publishes a freshly resolved decision, preferring the flow's own
// (stale) slot, then an empty way, then the shard's clock victim.
func (c *flowCache) insert(h uint64, d *flowDecision) {
	s := &c.shards[h&c.mask]
	victim := -1
	for i := range s.ways {
		old := s.ways[i].Load()
		if old == nil {
			if victim < 0 {
				victim = i
			}
			continue
		}
		if old.ft == d.ft {
			s.ways[i].Store(d)
			return
		}
	}
	if victim < 0 {
		victim = int(s.hand.Add(1)) % cacheWays
		c.evictions.Add(1)
	}
	s.ways[victim].Store(d)
}

// FlowCacheStats is a snapshot of the forwarding-decision cache counters.
// Misses include frames forwarded with a stale cached decision (which
// re-resolve in line); evictions count live entries displaced by capacity.
type FlowCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// SetFlowCacheSize installs a forwarding-decision cache of the given
// capacity (rounded up to a power-of-two shard count), replacing any
// existing one and its counters; entries <= 0 disables caching, the A/B
// baseline. The default network starts with no cache.
func (n *Network) SetFlowCacheSize(entries int) {
	if entries <= 0 {
		n.cache.Store(nil)
		return
	}
	n.cache.Store(newFlowCache(entries))
}

// FlowCacheStats returns the flow-decision cache counters; zeros when the
// cache is disabled.
func (n *Network) FlowCacheStats() FlowCacheStats {
	c := n.cache.Load()
	if c == nil {
		return FlowCacheStats{}
	}
	return FlowCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
