package vnet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/topology"
)

const testTimeout = 2 * time.Second

func newTestNet(t *testing.T) (*Network, *topology.FatTree) {
	t.Helper()
	ft := topology.MustNew(4)
	return New(ft, sdn.NewController()), ft
}

// echoServer starts a listener that echoes each message back, prefixed.
func echoServer(t *testing.T, n *Network, h *topology.Host, port uint16) *Listener {
	t.Helper()
	ln, err := n.Endpoint(h).Listen(port)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go ln.Serve(func(c *Conn) {
		for {
			msg, err := c.Recv(testTimeout)
			if err != nil {
				return
			}
			if err := c.Send(append([]byte("echo:"), msg...)); err != nil {
				return
			}
		}
	})
	t.Cleanup(ln.Close)
	return ln
}

func TestDialSendRecvClose(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[len(hosts)-1] // cross-pod
	echoServer(t, n, server, 80)

	c, err := n.Endpoint(client).Dial(server.Addr, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	resp, err := c.Request([]byte("hello"), testTimeout)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if string(resp) != "echo:hello" {
		t.Errorf("resp = %q", resp)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if !c.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestDialNoListener(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	dstEP := n.Endpoint(hosts[1]) // attached but not listening
	_, err := n.Endpoint(hosts[0]).Dial(hosts[1].Addr, 9999)
	if !errors.Is(err, ErrNoListener) {
		t.Errorf("err = %v, want ErrNoListener", err)
	}
	if got := dstEP.Refused(); got != 1 {
		t.Errorf("Refused = %d, want 1", got)
	}
}

func TestListenPortInUse(t *testing.T) {
	n, ft := newTestNet(t)
	ep := n.Endpoint(ft.Hosts()[0])
	if _, err := ep.Listen(80); err != nil {
		t.Fatalf("first Listen: %v", err)
	}
	if _, err := ep.Listen(80); !errors.Is(err, ErrPortInUse) {
		t.Errorf("err = %v, want ErrPortInUse", err)
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	n, ft := newTestNet(t)
	ep := n.Endpoint(ft.Hosts()[0])
	ln, err := ep.Listen(80)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ln.Close()
	ln.Close() // idempotent
	if _, err := ep.Listen(80); err != nil {
		t.Errorf("Listen after Close: %v", err)
	}
	if _, err := ln.Accept(10 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept on closed listener: err = %v", err)
	}
}

func TestLargeMessageSegmentation(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	echoServer(t, n, hosts[0], 80)

	big := bytes.Repeat([]byte("x"), 4*MSS+100)
	c, err := n.Endpoint(hosts[2]).Dial(hosts[0].Addr, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	resp, err := c.Request(big, testTimeout)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if len(resp) != len(big)+5 || !bytes.Equal(resp[5:], big) {
		t.Errorf("large message corrupted: got %d bytes, want %d", len(resp), len(big)+5)
	}
}

func TestRecvTimeout(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	ln, err := n.Endpoint(hosts[0]).Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	go ln.Serve(func(c *Conn) { /* never respond */ })
	defer ln.Close()

	c, err := n.Endpoint(hosts[1]).Dial(hosts[0].Addr, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestPeerCloseDeliversErrClosed(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	ln, err := n.Endpoint(hosts[0]).Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	go ln.Serve(func(c *Conn) {
		_ = c.Send([]byte("parting gift"))
		_ = c.Close()
	})
	defer ln.Close()

	c, err := n.Endpoint(hosts[1]).Dial(hosts[0].Addr, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// The buffered message survives the close...
	msg, err := c.Recv(testTimeout)
	if err != nil || string(msg) != "parting gift" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	// ...then the connection reports closed.
	deadline := time.Now().Add(testTimeout)
	for {
		_, err = c.Recv(20 * time.Millisecond)
		if errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrClosed, last err = %v", err)
		}
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: err = %v, want ErrClosed", err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	echoServer(t, n, hosts[0], 80)

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := hosts[1+i%(len(hosts)-1)]
			c, err := n.Endpoint(client).Dial(hosts[0].Addr, 80)
			if err != nil {
				errCh <- fmt.Errorf("dial %d: %w", i, err)
				return
			}
			defer c.Close()
			msg := []byte(fmt.Sprintf("req-%d", i))
			resp, err := c.Request(msg, testTimeout)
			if err != nil {
				errCh <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if string(resp) != "echo:"+string(msg) {
				errCh <- fmt.Errorf("resp %d = %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestMirrorDeliversToTap(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[4] // different pods on k=4? hosts[4] is pod 1
	if server.Pod == client.Pod {
		t.Fatal("fixture: expected cross-pod pair")
	}
	monitor := hosts[1] // same rack as server
	tap := n.OpenTap(monitor.ID, 64)

	// Mirror everything to server:80 at the server's ToR switch.
	n.Controller().InstallMirror("q1", server.Edge, sdn.Match{DstIP: server.Addr, DstPort: 80}, monitor.ID, 100)

	echoServer(t, n, server, 80)
	c, err := n.Endpoint(client).Dial(server.Addr, 80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := c.Request([]byte("payload"), testTimeout); err != nil {
		t.Fatalf("Request: %v", err)
	}
	c.Close()

	// Expect at least SYN + data + FIN mirrored (client->server direction).
	var flags []uint8
	deadline := time.After(testTimeout)
loop:
	for {
		select {
		case tf := <-tap.C:
			f, err := packet.Decode(tf.Raw)
			if err != nil {
				t.Fatalf("decode mirrored: %v", err)
			}
			if f.IP.Dst != server.Addr {
				t.Errorf("mirrored frame for %s, rule matched only dst %s", f.IP.Dst, server.Addr)
			}
			flags = append(flags, f.TCP.Flags)
			if f.TCP.FIN() {
				break loop
			}
		case <-deadline:
			break loop
		}
	}
	if len(flags) < 3 {
		t.Fatalf("mirrored %d frames, want >= 3 (SYN, data, FIN)", len(flags))
	}
	if flags[0]&packet.TCPFlagSYN == 0 {
		t.Errorf("first mirrored frame flags = %06b, want SYN", flags[0])
	}
	st := n.Stats()
	if st.Mirrored == 0 || st.MirroredBytes == 0 {
		t.Errorf("stats = %+v, want mirrored counters > 0", st)
	}
}

func TestMirrorDedupAcrossSwitches(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[len(hosts)-1]
	monitor := hosts[1]
	tap := n.OpenTap(monitor.ID, 64)

	// Install the same mirror on both endpoints' ToR switches: each frame
	// must still be delivered to the tap exactly once.
	m := sdn.Match{DstIP: server.Addr, DstPort: 80}
	n.Controller().InstallMirror("q", server.Edge, m, monitor.ID, 100)
	n.Controller().InstallMirror("q", client.Edge, m, monitor.ID, 100)

	raw := buildFrame(client, server, 80, packet.TCPFlagSYN)
	if err := n.Inject(raw); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if got := len(tap.C); got != 1 {
		t.Errorf("tap received %d copies, want 1", got)
	}
}

func TestTapOverflowDrops(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client, monitor := hosts[0], hosts[4], hosts[1]
	tap := n.OpenTap(monitor.ID, 2)
	n.Controller().InstallMirror("q", server.Edge, sdn.Match{DstIP: server.Addr}, monitor.ID, 100)

	raw := buildFrame(client, server, 80, packet.TCPFlagACK)
	for i := 0; i < 5; i++ {
		if err := n.Inject(raw); err != nil {
			t.Fatal(err)
		}
	}
	if tap.Drops() != 3 {
		t.Errorf("tap drops = %d, want 3", tap.Drops())
	}
	if n.Stats().TapDrops != 3 {
		t.Errorf("network tap drops = %d, want 3", n.Stats().TapDrops)
	}
}

func TestCloseTapStopsDelivery(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client, monitor := hosts[0], hosts[4], hosts[1]
	tap := n.OpenTap(monitor.ID, 8)
	n.Controller().InstallMirror("q", server.Edge, sdn.Match{DstIP: server.Addr}, monitor.ID, 100)
	n.CloseTap(tap)

	if err := n.Inject(buildFrame(client, server, 80, packet.TCPFlagACK)); err != nil {
		t.Fatal(err)
	}
	if _, open := <-tap.C; open {
		t.Error("tap channel still open / delivered after CloseTap")
	}
}

func TestInjectErrors(t *testing.T) {
	n, _ := newTestNet(t)
	if err := n.Inject([]byte{1, 2, 3}); !errors.Is(err, ErrFrameRejected) {
		t.Errorf("garbage: err = %v", err)
	}
	var b packet.Builder
	outside := b.TCP(packet.TCPSpec{
		Src: mustAddr("192.168.1.1"), Dst: mustAddr("192.168.1.2"),
		SrcPort: 1, DstPort: 2,
	})
	if err := n.Inject(outside); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("outside topology: err = %v", err)
	}
}

func TestUDPDatagram(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	server, client := hosts[0], hosts[3]

	got := make(chan string, 1)
	ep := n.Endpoint(server)
	err := ep.HandleDatagram(11211, func(src netip.Addr, srcPort uint16, payload []byte) {
		got <- fmt.Sprintf("%s:%d %s", src, srcPort, payload)
	})
	if err != nil {
		t.Fatalf("HandleDatagram: %v", err)
	}
	if err := ep.HandleDatagram(11211, func(netip.Addr, uint16, []byte) {}); !errors.Is(err, ErrPortInUse) {
		t.Errorf("duplicate handler: err = %v, want ErrPortInUse", err)
	}

	if err := n.Endpoint(client).SendDatagram(server.Addr, 5000, 11211, []byte("get k")); err != nil {
		t.Fatalf("SendDatagram: %v", err)
	}
	select {
	case s := <-got:
		want := fmt.Sprintf("%s:5000 get k", client.Addr)
		if s != want {
			t.Errorf("datagram = %q, want %q", s, want)
		}
	case <-time.After(testTimeout):
		t.Fatal("datagram never delivered")
	}

	// Datagram to a port with no handler is counted, not delivered.
	if err := n.Endpoint(client).SendDatagram(server.Addr, 5000, 9999, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if ep.Orphaned() == 0 {
		t.Error("Orphaned = 0, want > 0 after unhandled datagram")
	}
}

func TestFrameToUnattachedHost(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	raw := buildFrame(hosts[1], hosts[0], 80, packet.TCPFlagSYN)
	if err := n.Inject(raw); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if n.Stats().UnknownDst != 1 {
		t.Errorf("UnknownDst = %d, want 1", n.Stats().UnknownDst)
	}
}

func TestTrafficLocalityAccounting(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	sameRack := buildFrame(hosts[1], hosts[0], 80, packet.TCPFlagACK) // rack 0
	samePod := buildFrame(hosts[2], hosts[0], 80, packet.TCPFlagACK)  // pod 0, other rack
	crossPod := buildFrame(hosts[4], hosts[0], 80, packet.TCPFlagACK) // pod 1

	for i, raw := range [][]byte{sameRack, samePod, samePod, crossPod, crossPod, crossPod} {
		if err := n.Inject(raw); err != nil {
			t.Fatalf("inject %d: %v", i, err)
		}
	}
	st := n.Stats()
	frameLen := uint64(len(sameRack))
	if st.BytesSameRack != frameLen {
		t.Errorf("BytesSameRack = %d, want %d", st.BytesSameRack, frameLen)
	}
	if st.BytesSamePod != 2*frameLen {
		t.Errorf("BytesSamePod = %d, want %d", st.BytesSamePod, 2*frameLen)
	}
	if st.BytesCore != 3*frameLen {
		t.Errorf("BytesCore = %d, want %d", st.BytesCore, 3*frameLen)
	}
	if st.BytesSameRack+st.BytesSamePod+st.BytesCore != st.Bytes {
		t.Errorf("locality classes do not sum to total: %+v", st)
	}
}

func TestEndpointAccessors(t *testing.T) {
	n, ft := newTestNet(t)
	h := ft.Hosts()[3]
	ep := n.Endpoint(h)
	if ep != n.Endpoint(h) {
		t.Error("Endpoint not idempotent")
	}
	if ep.Host() != h || ep.Addr() != h.Addr {
		t.Error("endpoint host/addr wrong")
	}
	if n.EndpointByAddr(h.Addr) != ep {
		t.Error("EndpointByAddr mismatch")
	}
	if n.EndpointByAddr(mustAddr("192.0.2.1")) != nil {
		t.Error("EndpointByAddr for foreign address not nil")
	}
	if n.Controller() == nil || n.Topology() != ft {
		t.Error("network accessors wrong")
	}
}

func TestConnAccessors(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	echoServer(t, n, hosts[0], 8080)
	c, err := n.Endpoint(hosts[1]).Dial(hosts[0].Addr, 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.LocalAddr() != hosts[1].Addr || c.RemoteAddr() != hosts[0].Addr {
		t.Errorf("addrs = %v -> %v", c.LocalAddr(), c.RemoteAddr())
	}
	if c.RemotePort() != 8080 || c.LocalPort() == 0 {
		t.Errorf("ports = %d -> %d", c.LocalPort(), c.RemotePort())
	}
}

func TestListenerBacklogOverflow(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	// Listener that never accepts: the backlog fills at acceptBacklog.
	if _, err := n.Endpoint(hosts[0]).Listen(80); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < acceptBacklog; i++ {
		if _, err := n.Endpoint(hosts[1+i%3]).Dial(hosts[0].Addr, 80); err != nil {
			t.Fatalf("dial %d within backlog failed: %v", i, err)
		}
	}
	if _, err := n.Endpoint(hosts[4]).Dial(hosts[0].Addr, 80); !errors.Is(err, ErrNoListener) {
		t.Errorf("dial past backlog: err = %v, want timeout/refused", err)
	}
}

// Property: arbitrary messages between random host pairs round trip intact
// through the echo server, regardless of size (segmentation) and distance.
func TestRandomTrafficProperty(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	echoServer(t, n, hosts[0], 80)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		client := hosts[1+rng.Intn(len(hosts)-1)]
		msg := make([]byte, rng.Intn(3*MSS))
		rng.Read(msg)
		c, err := n.Endpoint(client).Dial(hosts[0].Addr, 80)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		resp, err := c.Request(msg, testTimeout)
		if err != nil {
			t.Fatalf("request %d (%d bytes): %v", i, len(msg), err)
		}
		if len(resp) != len(msg)+5 || !bytes.Equal(resp[5:], msg) {
			t.Fatalf("round trip %d corrupted (%d bytes)", i, len(msg))
		}
		c.Close()
	}
}

func TestPerHopDelay(t *testing.T) {
	n, ft := newTestNet(t)
	hosts := ft.Hosts()
	sameRack := hosts[1]  // 1 switch, 2 links from hosts[0]
	crossPod := hosts[15] // 5 switches, 6 links from hosts[0]
	echoServer(t, n, hosts[0], 80)

	measure := func(client *topology.Host) time.Duration {
		c, err := n.Endpoint(client).Dial(hosts[0].Addr, 80)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Request([]byte("ping"), testTimeout); err != nil {
			t.Fatalf("Request: %v", err)
		}
		return time.Since(start)
	}

	n.SetPerHopDelay(2 * time.Millisecond)
	if got := n.PerHopDelay(); got != 2*time.Millisecond {
		t.Fatalf("PerHopDelay = %v", got)
	}
	near := measure(sameRack) // 2 links × 2ms × 2 directions ≈ 8ms/RTT
	far := measure(crossPod)  // 6 links × 2ms × 2 directions ≈ 24ms/RTT
	if far < near+8*time.Millisecond {
		t.Errorf("cross-pod RTT %v not sufficiently above same-rack %v", far, near)
	}

	n.SetPerHopDelay(-1) // negative clamps to disabled
	if got := n.PerHopDelay(); got != 0 {
		t.Errorf("clamped PerHopDelay = %v", got)
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildFrame(src, dst *topology.Host, dstPort uint16, flags uint8) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: src.Addr, Dst: dst.Addr,
		SrcPort: 30000, DstPort: dstPort,
		Flags: flags,
	})
}

func TestTapReadBurst(t *testing.T) {
	n, ft := newTestNet(t)
	tap := n.OpenTap(ft.Hosts()[1].ID, 64)

	// Queue five frames directly, then drain: the first read blocks for one
	// frame and greedily takes the rest without blocking again.
	for i := 0; i < 5; i++ {
		tap.ch <- TapFrame{Raw: []byte{byte(i)}, TS: time.Now()}
	}
	buf := make([]TapFrame, 3)
	if got := tap.ReadBurst(buf); got != 3 {
		t.Fatalf("first ReadBurst = %d, want 3 (capped by buf)", got)
	}
	for i, tf := range buf {
		if tf.Raw[0] != byte(i) {
			t.Fatalf("frame %d out of order: %v", i, tf.Raw)
		}
	}
	if got := tap.ReadBurst(buf); got != 2 {
		t.Fatalf("second ReadBurst = %d, want 2 (queue drained)", got)
	}

	// Closed and drained tap reports 0.
	n.CloseTap(tap)
	if got := tap.ReadBurst(buf); got != 0 {
		t.Fatalf("ReadBurst on closed tap = %d, want 0", got)
	}
	if got := tap.ReadBurst(nil); got != 0 {
		t.Fatalf("ReadBurst with empty buf = %d, want 0", got)
	}
}
