// Package vnet is the in-memory virtual data-center network NetAlytics runs
// on in this reproduction. It substitutes for the paper's physical testbed
// (10 GbE switches + DPDK hosts): frames are real serialized
// Ethernet/IPv4/TCP byte slices, they traverse the fat-tree switch path of
// their endpoints, every switch consults its SDN flow table, and mirror
// actions deliver frame copies to monitor taps — exactly the "match and
// mirror" mechanism the paper's query instantiation relies on (§3.4), off
// the critical path of the application traffic.
package vnet

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// Errors returned by the network and connection layers.
var (
	ErrUnknownHost   = errors.New("vnet: destination host not in topology")
	ErrPortInUse     = errors.New("vnet: port already bound")
	ErrTimeout       = errors.New("vnet: operation timed out")
	ErrClosed        = errors.New("vnet: connection closed")
	ErrNoListener    = errors.New("vnet: connection refused")
	ErrNotAttached   = errors.New("vnet: host has no endpoint")
	ErrFrameRejected = errors.New("vnet: frame rejected")
)

// TapFrame is a mirrored frame delivered to a monitor tap, stamped with the
// mirror time.
type TapFrame struct {
	Raw []byte
	TS  time.Time
}

// Tap is a monitor's receive queue for mirrored frames. Frames that arrive
// while the queue is full are dropped and counted, mimicking NIC RX-queue
// overruns. Several taps may share a host (e.g. two queries monitoring from
// the same rack); each receives every frame mirrored to that host.
type Tap struct {
	C     <-chan TapFrame
	host  topology.NodeID
	ch    chan TapFrame
	drops atomic.Uint64
}

// Host returns the monitor host this tap is attached to.
func (t *Tap) Host() topology.NodeID { return t.host }

// ReadBurst blocks until at least one mirrored frame is available, then
// greedily drains up to len(buf) frames without blocking again — the tap
// analogue of a DPDK rx_burst, letting pumps amortize per-frame costs when
// mirror traffic backs up. It returns the number of frames stored in buf;
// 0 means the tap was closed and fully drained (or buf was empty).
func (t *Tap) ReadBurst(buf []TapFrame) int {
	if len(buf) == 0 {
		return 0
	}
	tf, ok := <-t.ch
	if !ok {
		return 0
	}
	buf[0] = tf
	n := 1
	for n < len(buf) {
		select {
		case tf, ok := <-t.ch:
			if !ok {
				return n
			}
			buf[n] = tf
			n++
		default:
			return n
		}
	}
	return n
}

// Drops returns the number of mirrored frames dropped at this tap.
func (t *Tap) Drops() uint64 { return t.drops.Load() }

// Depth returns the number of mirrored frames currently queued — the tap's
// RX backlog. A depth near the tap's buffer size means the pump is falling
// behind mirror traffic and drops are imminent.
func (t *Tap) Depth() int { return len(t.ch) }

// Stats is a snapshot of network counters.
type Stats struct {
	Frames        uint64 // frames delivered end to end
	Bytes         uint64 // application frame bytes delivered
	Mirrored      uint64 // mirror copies delivered to taps
	MirroredBytes uint64
	TapDrops      uint64 // mirror copies dropped at full taps
	UnknownDst    uint64 // frames to hosts without an endpoint
	InboxDrops    uint64 // messages dropped at full connection inboxes

	// Traffic locality: bytes whose path stayed inside one rack, one pod,
	// or crossed the core — the link classes the paper's weighted
	// bandwidth metric prices at 1/2/4.
	BytesSameRack uint64
	BytesSamePod  uint64
	BytesCore     uint64
}

// Network binds a fat-tree topology to an SDN controller and moves frames
// between host endpoints.
type Network struct {
	topo *topology.FatTree
	ctrl *sdn.Controller

	mu        sync.RWMutex
	endpoints map[topology.NodeID]*Endpoint
	taps      map[topology.NodeID][]*Tap

	// perHopDelay, when non-zero, charges each link traversal (host-switch
	// and switch-switch) a fixed latency, so cross-pod connections are
	// measurably slower than rack-local ones.
	perHopDelay atomic.Int64

	frames        atomic.Uint64
	bytes         atomic.Uint64
	mirrored      atomic.Uint64
	mirroredBytes atomic.Uint64
	tapDrops      atomic.Uint64
	unknownDst    atomic.Uint64
	inboxDrops    atomic.Uint64
	bytesSameRack atomic.Uint64
	bytesSamePod  atomic.Uint64
	bytesCore     atomic.Uint64
}

// New creates a network over the given topology and controller.
func New(topo *topology.FatTree, ctrl *sdn.Controller) *Network {
	return &Network{
		topo:      topo,
		ctrl:      ctrl,
		endpoints: make(map[topology.NodeID]*Endpoint),
		taps:      make(map[topology.NodeID][]*Tap),
	}
}

// Topology returns the underlying fat tree.
func (n *Network) Topology() *topology.FatTree { return n.topo }

// SetPerHopDelay sets the per-link propagation/forwarding latency applied to
// every frame (0 disables delay modeling, the default). Delay is charged on
// the sender's goroutine, modeling store-and-forward across the path.
func (n *Network) SetPerHopDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.perHopDelay.Store(int64(d))
}

// PerHopDelay returns the configured per-link latency.
func (n *Network) PerHopDelay() time.Duration {
	return time.Duration(n.perHopDelay.Load())
}

// Controller returns the SDN controller the switches consult.
func (n *Network) Controller() *sdn.Controller { return n.ctrl }

// Endpoint attaches (or returns the existing) network endpoint for a host.
func (n *Network) Endpoint(h *topology.Host) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[h.ID]
	if !ok {
		ep = &Endpoint{
			net:       n,
			host:      h,
			listeners: make(map[uint16]*Listener),
		}
		ep.nextPort.Store(40000)
		n.endpoints[h.ID] = ep
	}
	return ep
}

// EndpointByAddr attaches an endpoint for the host owning addr, or nil when
// the address is not in the topology.
func (n *Network) EndpointByAddr(addr netip.Addr) *Endpoint {
	h := n.topo.HostByAddr(addr)
	if h == nil {
		return nil
	}
	return n.Endpoint(h)
}

// OpenTap registers a mirror tap on a monitor host. Mirror actions whose
// destination is that host deliver frame copies into the returned tap.
func (n *Network) OpenTap(host topology.NodeID, buffer int) *Tap {
	if buffer <= 0 {
		buffer = 4096
	}
	t := &Tap{host: host, ch: make(chan TapFrame, buffer)}
	t.C = t.ch
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps[host] = append(n.taps[host], t)
	return t
}

// CloseTap removes a tap; its channel is closed so consumers drain and stop.
// Closing an already-closed tap is a no-op.
func (n *Network) CloseTap(t *Tap) {
	n.mu.Lock()
	list := n.taps[t.host]
	found := false
	for i, have := range list {
		if have == t {
			n.taps[t.host] = append(list[:i], list[i+1:]...)
			if len(n.taps[t.host]) == 0 {
				delete(n.taps, t.host)
			}
			found = true
			break
		}
	}
	n.mu.Unlock()
	if found {
		close(t.ch)
	}
}

// Inject pushes a raw frame into the network as if a host transmitted it:
// the frame traverses the fat-tree switch path between its source and
// destination hosts, mirror rules fire along the way, and the frame is
// finally handed to the destination endpoint if one is attached.
func (n *Network) Inject(raw []byte) error {
	var f packet.Frame
	if err := f.Decode(raw); err != nil {
		return fmt.Errorf("%w: %w", ErrFrameRejected, err)
	}
	return n.forward(raw, &f)
}

func (n *Network) forward(raw []byte, f *packet.Frame) error {
	src := n.topo.HostByAddr(f.IP.Src)
	dst := n.topo.HostByAddr(f.IP.Dst)
	if src == nil || dst == nil {
		return fmt.Errorf("%w: %s->%s", ErrUnknownHost, f.IP.Src, f.IP.Dst)
	}
	ft, ok := f.FlowTuple()
	if !ok {
		return ErrFrameRejected
	}

	if d := n.perHopDelay.Load(); d > 0 {
		// Links traversed: host->ToR, inter-switch hops, ToR->host.
		links := len(n.topo.SwitchPath(src, dst)) + 1
		time.Sleep(time.Duration(d) * time.Duration(links))
	}

	// Walk the switch path and collect mirror targets, deduplicated across
	// switches so one query mirroring at several levels delivers one copy.
	var targets []topology.NodeID
	for _, sw := range n.topo.SwitchPath(src, dst) {
		for _, tgt := range n.ctrl.Table(sw).MirrorTargets(ft) {
			dup := false
			for _, have := range targets {
				if have == tgt {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, tgt)
			}
		}
	}
	now := time.Now()
	for _, tgt := range targets {
		// The non-blocking sends stay under the read lock: CloseTap closes
		// the channel under the write lock, so a send can never race a close.
		n.mu.RLock()
		for _, tap := range n.taps[tgt] {
			select {
			case tap.ch <- TapFrame{Raw: raw, TS: now}:
				n.mirrored.Add(1)
				n.mirroredBytes.Add(uint64(len(raw)))
			default:
				tap.drops.Add(1)
				n.tapDrops.Add(1)
			}
		}
		n.mu.RUnlock()
	}

	n.frames.Add(1)
	n.bytes.Add(uint64(len(raw)))
	switch {
	case src.Edge == dst.Edge:
		n.bytesSameRack.Add(uint64(len(raw)))
	case src.Pod == dst.Pod:
		n.bytesSamePod.Add(uint64(len(raw)))
	default:
		n.bytesCore.Add(uint64(len(raw)))
	}

	n.mu.RLock()
	ep := n.endpoints[dst.ID]
	n.mu.RUnlock()
	if ep == nil {
		n.unknownDst.Add(1)
		return nil // delivered into the void: host exists but nothing attached
	}
	ep.handleFrame(raw, f, ft)
	return nil
}

// TapQueueDepth returns the total number of mirrored frames queued across
// all open taps.
func (n *Network) TapQueueDepth() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, list := range n.taps {
		for _, t := range list {
			total += len(t.ch)
		}
	}
	return total
}

// RegisterMetrics publishes the network counters as gauges in the telemetry
// registry, sampled lazily at snapshot time so the frame path pays nothing.
// A nil registry is a no-op.
func (n *Network) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("vnet_frames", func() float64 { return float64(n.frames.Load()) })
	reg.GaugeFunc("vnet_bytes", func() float64 { return float64(n.bytes.Load()) })
	reg.GaugeFunc("vnet_mirrored", func() float64 { return float64(n.mirrored.Load()) })
	reg.GaugeFunc("vnet_mirrored_bytes", func() float64 { return float64(n.mirroredBytes.Load()) })
	reg.GaugeFunc("vnet_tap_drops", func() float64 { return float64(n.tapDrops.Load()) })
	reg.GaugeFunc("vnet_tap_queue_depth", func() float64 { return float64(n.TapQueueDepth()) })
	reg.GaugeFunc("vnet_unknown_dst", func() float64 { return float64(n.unknownDst.Load()) })
	reg.GaugeFunc("vnet_inbox_drops", func() float64 { return float64(n.inboxDrops.Load()) })
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Frames:        n.frames.Load(),
		Bytes:         n.bytes.Load(),
		Mirrored:      n.mirrored.Load(),
		MirroredBytes: n.mirroredBytes.Load(),
		TapDrops:      n.tapDrops.Load(),
		UnknownDst:    n.unknownDst.Load(),
		InboxDrops:    n.inboxDrops.Load(),
		BytesSameRack: n.bytesSameRack.Load(),
		BytesSamePod:  n.bytesSamePod.Load(),
		BytesCore:     n.bytesCore.Load(),
	}
}
