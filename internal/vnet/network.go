// Package vnet is the in-memory virtual data-center network NetAlytics runs
// on in this reproduction. It substitutes for the paper's physical testbed
// (10 GbE switches + DPDK hosts): frames are real serialized
// Ethernet/IPv4/TCP byte slices, they traverse the fat-tree switch path of
// their endpoints, every switch consults its SDN flow table, and mirror
// actions deliver frame copies to monitor taps — exactly the "match and
// mirror" mechanism the paper's query instantiation relies on (§3.4), off
// the critical path of the application traffic.
package vnet

import (
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// Errors returned by the network and connection layers.
var (
	ErrUnknownHost   = errors.New("vnet: destination host not in topology")
	ErrPortInUse     = errors.New("vnet: port already bound")
	ErrTimeout       = errors.New("vnet: operation timed out")
	ErrClosed        = errors.New("vnet: connection closed")
	ErrNoListener    = errors.New("vnet: connection refused")
	ErrNotAttached   = errors.New("vnet: host has no endpoint")
	ErrFrameRejected = errors.New("vnet: frame rejected")
)

// TapFrame is a mirrored frame delivered to a monitor tap, stamped with the
// mirror time.
type TapFrame struct {
	Raw []byte
	TS  time.Time
}

// Tap is a monitor's receive queue for mirrored frames. Frames that arrive
// while the queue is full are dropped and counted, mimicking NIC RX-queue
// overruns. Several taps may share a host (e.g. two queries monitoring from
// the same rack); each receives every frame mirrored to that host.
type Tap struct {
	C     <-chan TapFrame
	host  topology.NodeID
	ch    chan TapFrame
	drops atomic.Uint64

	// closed + inflight implement the lock-free close protocol: senders
	// announce themselves in inflight and recheck closed before touching
	// the channel; CloseTap flips closed, waits for inflight to drain and
	// only then closes ch. A sender holding this tap's pointer — from a
	// registry snapshot or a cached flow decision — therefore can never
	// send on a closed channel, without any lock on the delivery path.
	closed   atomic.Bool
	inflight atomic.Int64
}

// Host returns the monitor host this tap is attached to.
func (t *Tap) Host() topology.NodeID { return t.host }

// ReadBurst blocks until at least one mirrored frame is available, then
// greedily drains up to len(buf) frames without blocking again — the tap
// analogue of a DPDK rx_burst, letting pumps amortize per-frame costs when
// mirror traffic backs up. It returns the number of frames stored in buf;
// 0 means the tap was closed and fully drained (or buf was empty).
func (t *Tap) ReadBurst(buf []TapFrame) int {
	if len(buf) == 0 {
		return 0
	}
	tf, ok := <-t.ch
	if !ok {
		return 0
	}
	buf[0] = tf
	n := 1
	for n < len(buf) {
		select {
		case tf, ok := <-t.ch:
			if !ok {
				return n
			}
			buf[n] = tf
			n++
		default:
			return n
		}
	}
	return n
}

// Drops returns the number of mirrored frames dropped at this tap.
func (t *Tap) Drops() uint64 { return t.drops.Load() }

// Depth returns the number of mirrored frames currently queued — the tap's
// RX backlog. A depth near the tap's buffer size means the pump is falling
// behind mirror traffic and drops are imminent.
func (t *Tap) Depth() int { return len(t.ch) }

// deliver attempts a non-blocking mirror send, counting the outcome on the
// network. See the closed/inflight protocol note on the Tap struct.
func (t *Tap) deliver(n *Network, raw []byte, now time.Time) {
	if t.closed.Load() {
		return
	}
	t.inflight.Add(1)
	if t.closed.Load() {
		t.inflight.Add(-1)
		return
	}
	select {
	case t.ch <- TapFrame{Raw: raw, TS: now}:
		n.mirrored.Add(1)
		n.mirroredBytes.Add(uint64(len(raw)))
	default:
		t.drops.Add(1)
		n.tapDrops.Add(1)
	}
	t.inflight.Add(-1)
}

// Stats is a snapshot of network counters.
type Stats struct {
	Frames        uint64 // frames delivered end to end
	Bytes         uint64 // application frame bytes delivered
	Mirrored      uint64 // mirror copies delivered to taps
	MirroredBytes uint64
	TapDrops      uint64 // mirror copies dropped at full taps
	UnknownDst    uint64 // frames to hosts without an endpoint
	InboxDrops    uint64 // messages dropped at full connection inboxes
	FaultDrops    uint64 // frames dropped by the fault hook (loss, partition)

	// Traffic locality: bytes whose path stayed inside one rack, one pod,
	// or crossed the core — the link classes the paper's weighted
	// bandwidth metric prices at 1/2/4.
	BytesSameRack uint64
	BytesSamePod  uint64
	BytesCore     uint64
}

// Network binds a fat-tree topology to an SDN controller and moves frames
// between host endpoints.
type Network struct {
	topo *topology.FatTree
	ctrl *sdn.Controller

	// mu serializes the registry writers (endpoint attach, tap open/close).
	// The frame path never takes it: it reads the copy-on-write snapshots
	// below, which writers replace wholesale under mu and then bump epoch —
	// mutation first, bump second, so a reader that loaded the epoch before
	// a snapshot can detect the change (seqlock-style).
	mu        sync.Mutex
	endpoints atomic.Pointer[map[topology.NodeID]*Endpoint]
	taps      atomic.Pointer[map[topology.NodeID][]*Tap]

	// epoch counts tap/endpoint registry generations; with the controller's
	// rule epoch it validates cached flow decisions (see flowcache.go).
	epoch atomic.Uint64

	cache atomic.Pointer[flowCache]

	// perHopDelay, when non-zero, charges each link traversal (host-switch
	// and switch-switch) a fixed latency, so cross-pod connections are
	// measurably slower than rack-local ones.
	perHopDelay atomic.Int64

	// faultHook, when set, intercedes on every forwarded frame (injected
	// loss, latency, partitions). Nil in normal operation: the fast path pays
	// one atomic load.
	faultHook atomic.Pointer[FaultHook]

	frames        atomic.Uint64
	bytes         atomic.Uint64
	mirrored      atomic.Uint64
	mirroredBytes atomic.Uint64
	tapDrops      atomic.Uint64
	unknownDst    atomic.Uint64
	inboxDrops    atomic.Uint64
	faultDrops    atomic.Uint64
	bytesSameRack atomic.Uint64
	bytesSamePod  atomic.Uint64
	bytesCore     atomic.Uint64
}

// FaultHook lets a fault-injection layer (internal/fault) intercede on the
// frame path. It is consulted once per forwarded frame with the flow's
// resolved source and destination hosts; drop discards the frame (counted in
// Stats.FaultDrops, not Frames), delay adds sender-side latency.
type FaultHook interface {
	FrameFault(src, dst *topology.Host) (drop bool, delay time.Duration)
}

// SetFaultHook installs (or, with nil, removes) the frame-path fault hook.
// Takes effect on the next injected frame.
func (n *Network) SetFaultHook(h FaultHook) {
	if h == nil {
		n.faultHook.Store(nil)
		return
	}
	n.faultHook.Store(&h)
}

// New creates a network over the given topology and controller. The flow-
// decision cache starts disabled; see SetFlowCacheSize.
func New(topo *topology.FatTree, ctrl *sdn.Controller) *Network {
	n := &Network{topo: topo, ctrl: ctrl}
	endpoints := make(map[topology.NodeID]*Endpoint)
	taps := make(map[topology.NodeID][]*Tap)
	n.endpoints.Store(&endpoints)
	n.taps.Store(&taps)
	return n
}

// Topology returns the underlying fat tree.
func (n *Network) Topology() *topology.FatTree { return n.topo }

// SetPerHopDelay sets the per-link propagation/forwarding latency applied to
// every frame (0 disables delay modeling, the default). Delay is charged on
// the sender's goroutine, modeling store-and-forward across the path.
func (n *Network) SetPerHopDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.perHopDelay.Store(int64(d))
}

// PerHopDelay returns the configured per-link latency.
func (n *Network) PerHopDelay() time.Duration {
	return time.Duration(n.perHopDelay.Load())
}

// Controller returns the SDN controller the switches consult.
func (n *Network) Controller() *sdn.Controller { return n.ctrl }

// Endpoint attaches (or returns the existing) network endpoint for a host.
func (n *Network) Endpoint(h *topology.Host) *Endpoint {
	if ep, ok := (*n.endpoints.Load())[h.ID]; ok {
		return ep
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	old := *n.endpoints.Load()
	if ep, ok := old[h.ID]; ok {
		return ep
	}
	ep := &Endpoint{
		net:       n,
		host:      h,
		listeners: make(map[uint16]*Listener),
	}
	ep.nextPort.Store(40000)
	next := make(map[topology.NodeID]*Endpoint, len(old)+1)
	for id, e := range old {
		next[id] = e
	}
	next[h.ID] = ep
	n.endpoints.Store(&next)
	n.epoch.Add(1) // cached decisions for this destination resolved ep == nil
	return ep
}

// EndpointByAddr attaches an endpoint for the host owning addr, or nil when
// the address is not in the topology.
func (n *Network) EndpointByAddr(addr netip.Addr) *Endpoint {
	h := n.topo.HostByAddr(addr)
	if h == nil {
		return nil
	}
	return n.Endpoint(h)
}

// Service is one listening (host, port) pair — a discoverable server the
// insight tier's observation queries can target without any hand-written
// configuration.
type Service struct {
	Host *topology.Host
	Port uint16
}

// Services enumerates every live listener across all endpoints, ordered by
// host name then port. This is the network's own service inventory: whatever
// is listening right now, learned from the datapath rather than declared.
func (n *Network) Services() []Service {
	eps := *n.endpoints.Load()
	out := make([]Service, 0, len(eps))
	for _, ep := range eps {
		for _, port := range ep.Ports() {
			out = append(out, Service{Host: ep.Host(), Port: port})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host.Name != out[j].Host.Name {
			return out[i].Host.Name < out[j].Host.Name
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// OpenTap registers a mirror tap on a monitor host. Mirror actions whose
// destination is that host deliver frame copies into the returned tap.
func (n *Network) OpenTap(host topology.NodeID, buffer int) *Tap {
	if buffer <= 0 {
		buffer = 4096
	}
	t := &Tap{host: host, ch: make(chan TapFrame, buffer)}
	t.C = t.ch
	n.mu.Lock()
	defer n.mu.Unlock()
	old := *n.taps.Load()
	next := make(map[topology.NodeID][]*Tap, len(old)+1)
	for h, list := range old {
		next[h] = list
	}
	// The modified host's slice is rebuilt, never appended in place:
	// readers iterate snapshot slices without a lock.
	next[host] = append(append(make([]*Tap, 0, len(old[host])+1), old[host]...), t)
	n.taps.Store(&next)
	n.epoch.Add(1)
	return t
}

// CloseTap removes a tap; its channel is closed so consumers drain and stop.
// Closing an already-closed tap is a no-op.
func (n *Network) CloseTap(t *Tap) {
	n.mu.Lock()
	old := *n.taps.Load()
	list := old[t.host]
	idx := -1
	for i, have := range list {
		if have == t {
			idx = i
			break
		}
	}
	if idx >= 0 {
		next := make(map[topology.NodeID][]*Tap, len(old))
		for h, l := range old {
			next[h] = l
		}
		if len(list) == 1 {
			delete(next, t.host)
		} else {
			rest := make([]*Tap, 0, len(list)-1)
			rest = append(rest, list[:idx]...)
			next[t.host] = append(rest, list[idx+1:]...)
		}
		n.taps.Store(&next)
		n.epoch.Add(1)
	}
	n.mu.Unlock()
	if idx < 0 {
		return
	}
	// Snapshot readers and cached decisions may still hold the tap: flip
	// closed, wait out in-flight deliveries, and only then close the
	// channel (see Tap.deliver).
	t.closed.Store(true)
	for t.inflight.Load() != 0 {
		runtime.Gosched()
	}
	close(t.ch)
}

// framePool recycles decode scratch Frames across Inject calls. Decode's
// self-referential f.TCP = &f.tcp forces any fresh Frame to the heap, which
// would put one allocation on every injected frame; the pool amortizes it
// away. Pooling is safe because forward and handleFrame run synchronously
// and retain only f.Payload, which aliases raw, never the Frame itself.
var framePool = sync.Pool{New: func() any { return new(packet.Frame) }}

// Inject pushes a raw frame into the network as if a host transmitted it:
// the frame traverses the fat-tree switch path between its source and
// destination hosts, mirror rules fire along the way, and the frame is
// finally handed to the destination endpoint if one is attached.
func (n *Network) Inject(raw []byte) error {
	f := framePool.Get().(*packet.Frame)
	err := f.Decode(raw)
	if err == nil {
		err = n.forward(raw, f)
	} else {
		err = fmt.Errorf("%w: %w", ErrFrameRejected, err)
	}
	framePool.Put(f)
	return err
}

func (n *Network) forward(raw []byte, f *packet.Frame) error {
	ft, ok := f.FlowTuple()
	if !ok {
		return ErrFrameRejected
	}

	// Fast path: replay the flow's memoized decision. A hit costs the hash,
	// one shard probe and two epoch loads — no locks, no allocations, no
	// path or flow-table walks (see flowcache.go).
	var h uint64
	var dec *flowDecision
	cache := n.cache.Load()
	if cache != nil {
		h = ft.Hash()
		dec = cache.lookup(h, ft, n.ctrl.Epoch(), n.epoch.Load())
	}
	if dec == nil {
		var err error
		dec, err = n.resolve(ft)
		if err != nil {
			return err
		}
		if cache != nil {
			cache.insert(h, dec)
		}
	}

	// Fault hook: injected loss and partitions drop the frame before any
	// counter or tap sees it (a lost frame reaches nothing), so the chaos
	// ledger's first equation holds exactly: injected = Frames + FaultDrops.
	if hp := n.faultHook.Load(); hp != nil {
		drop, delay := (*hp).FrameFault(dec.src, dec.dst)
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			n.faultDrops.Add(1)
			return nil
		}
	}

	if d := n.perHopDelay.Load(); d > 0 {
		// Links traversed: host->ToR, inter-switch hops, ToR->host.
		time.Sleep(time.Duration(d) * time.Duration(dec.links))
	}

	if len(dec.taps) > 0 {
		now := time.Now()
		for _, t := range dec.taps {
			t.deliver(n, raw, now)
		}
	}

	n.frames.Add(1)
	n.bytes.Add(uint64(len(raw)))
	switch dec.locality {
	case localitySameRack:
		n.bytesSameRack.Add(uint64(len(raw)))
	case localitySamePod:
		n.bytesSamePod.Add(uint64(len(raw)))
	default:
		n.bytesCore.Add(uint64(len(raw)))
	}

	if dec.ep == nil {
		n.unknownDst.Add(1)
		return nil // delivered into the void: host exists but nothing attached
	}
	dec.ep.handleFrame(raw, f, ft)
	return nil
}

// resolve computes a flow's forwarding decision from scratch — the slow path
// every flow pays once (and again after control-plane churn). The epochs are
// read before the tables and registries, mirroring the writers' mutate-then-
// bump order: a writer racing the resolution leaves the decision stamped
// with the pre-mutation epoch, so it fails validation and re-resolves on the
// flow's next frame instead of serving stale state indefinitely.
func (n *Network) resolve(ft packet.FiveTuple) (*flowDecision, error) {
	sdnEpoch := n.ctrl.Epoch()
	netEpoch := n.epoch.Load()

	src := n.topo.HostByAddr(ft.Src)
	dst := n.topo.HostByAddr(ft.Dst)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("%w: %s->%s", ErrUnknownHost, ft.Src, ft.Dst)
	}
	path := n.topo.SwitchPath(src, dst)
	dec := &flowDecision{
		ft:       ft,
		sdnEpoch: sdnEpoch,
		netEpoch: netEpoch,
		src:      src,
		dst:      dst,
		links:    len(path) + 1, // host->ToR, inter-switch hops, ToR->host
	}
	switch {
	case src.Edge == dst.Edge:
		dec.locality = localitySameRack
	case src.Pod == dst.Pod:
		dec.locality = localitySamePod
	default:
		dec.locality = localityCore
	}

	// Walk the switch path and collect mirror targets into one shared
	// buffer, deduplicated across switches so one query mirroring at
	// several levels delivers one copy.
	var targets []topology.NodeID
	for _, sw := range path {
		targets = n.ctrl.Table(sw).MirrorTargetsAppend(ft, targets)
	}
	if len(targets) > 0 {
		taps := *n.taps.Load()
		for _, tgt := range targets {
			dec.taps = append(dec.taps, taps[tgt]...)
		}
	}
	dec.ep = (*n.endpoints.Load())[dst.ID]
	return dec, nil
}

// TapQueueDepth returns the total number of mirrored frames queued across
// all open taps.
func (n *Network) TapQueueDepth() int {
	total := 0
	for _, list := range *n.taps.Load() {
		for _, t := range list {
			total += len(t.ch)
		}
	}
	return total
}

// TapCount returns the number of open taps across all hosts — the leak
// detector for crash/failover tests: after every query is stopped it must be
// zero.
func (n *Network) TapCount() int {
	total := 0
	for _, list := range *n.taps.Load() {
		total += len(list)
	}
	return total
}

// RegisterMetrics publishes the network counters as gauges in the telemetry
// registry, sampled lazily at snapshot time so the frame path pays nothing.
// A nil registry is a no-op.
func (n *Network) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("vnet_frames", func() float64 { return float64(n.frames.Load()) })
	reg.GaugeFunc("vnet_bytes", func() float64 { return float64(n.bytes.Load()) })
	reg.GaugeFunc("vnet_mirrored", func() float64 { return float64(n.mirrored.Load()) })
	reg.GaugeFunc("vnet_mirrored_bytes", func() float64 { return float64(n.mirroredBytes.Load()) })
	reg.GaugeFunc("vnet_tap_drops", func() float64 { return float64(n.tapDrops.Load()) })
	reg.GaugeFunc("vnet_tap_queue_depth", func() float64 { return float64(n.TapQueueDepth()) })
	reg.GaugeFunc("vnet_unknown_dst", func() float64 { return float64(n.unknownDst.Load()) })
	reg.GaugeFunc("vnet_inbox_drops", func() float64 { return float64(n.inboxDrops.Load()) })
	reg.GaugeFunc("vnet_fault_drops", func() float64 { return float64(n.faultDrops.Load()) })
	reg.GaugeFunc("vnet_flowcache_hits", func() float64 { return float64(n.FlowCacheStats().Hits) })
	reg.GaugeFunc("vnet_flowcache_misses", func() float64 { return float64(n.FlowCacheStats().Misses) })
	reg.GaugeFunc("vnet_flowcache_evictions", func() float64 { return float64(n.FlowCacheStats().Evictions) })
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Frames:        n.frames.Load(),
		Bytes:         n.bytes.Load(),
		Mirrored:      n.mirrored.Load(),
		MirroredBytes: n.mirroredBytes.Load(),
		TapDrops:      n.tapDrops.Load(),
		UnknownDst:    n.unknownDst.Load(),
		InboxDrops:    n.inboxDrops.Load(),
		FaultDrops:    n.faultDrops.Load(),
		BytesSameRack: n.bytesSameRack.Load(),
		BytesSamePod:  n.bytesSamePod.Load(),
		BytesCore:     n.bytesCore.Load(),
	}
}
