package vnet

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/topology"
)

// MSS is the maximum TCP payload per frame; larger messages are segmented,
// so multi-frame messages look realistic to packet-size parsers.
const MSS = 1460

const (
	dialTimeout   = 2 * time.Second
	inboxSize     = 256
	acceptBacklog = 256
)

// Endpoint is a host's attachment to the network: it owns the host's
// listeners and connections and handles frames addressed to the host.
type Endpoint struct {
	net  *Network
	host *topology.Host

	mu        sync.Mutex
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	udp       map[uint16]func(src netip.Addr, srcPort uint16, payload []byte)

	nextPort atomic.Uint32
	refused  atomic.Uint64
	orphaned atomic.Uint64

	builder packet.Builder
}

type connKey struct {
	localPort  uint16
	remoteIP   netip.Addr
	remotePort uint16
}

// Host returns the topology host this endpoint is attached to.
func (e *Endpoint) Host() *topology.Host { return e.host }

// Addr returns the endpoint's IP address.
func (e *Endpoint) Addr() netip.Addr { return e.host.Addr }

// Refused returns the count of SYNs that arrived for ports with no listener.
func (e *Endpoint) Refused() uint64 { return e.refused.Load() }

// Orphaned returns the count of non-SYN segments with no matching connection.
func (e *Endpoint) Orphaned() uint64 { return e.orphaned.Load() }

// Ports lists the ports with live TCP-like listeners, sorted.
func (e *Endpoint) Ports() []uint16 {
	e.mu.Lock()
	out := make([]uint16, 0, len(e.listeners))
	for port := range e.listeners {
		out = append(out, port)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Listen binds a TCP-like listener to a port.
func (e *Endpoint) Listen(port uint16) (*Listener, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns == nil {
		e.conns = make(map[connKey]*Conn)
	}
	if _, exists := e.listeners[port]; exists {
		return nil, fmt.Errorf("%w: %s:%d", ErrPortInUse, e.host.Addr, port)
	}
	l := &Listener{
		ep:     e,
		port:   port,
		accept: make(chan *Conn, acceptBacklog),
		done:   make(chan struct{}),
	}
	e.listeners[port] = l
	return l, nil
}

// HandleDatagram registers a UDP receive handler on a port. The handler runs
// on the sender's goroutine and must not block.
func (e *Endpoint) HandleDatagram(port uint16, h func(src netip.Addr, srcPort uint16, payload []byte)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.udp == nil {
		e.udp = make(map[uint16]func(netip.Addr, uint16, []byte))
	}
	if _, exists := e.udp[port]; exists {
		return fmt.Errorf("%w: udp %s:%d", ErrPortInUse, e.host.Addr, port)
	}
	e.udp[port] = h
	return nil
}

// StopDatagram unregisters the UDP handler on a port, freeing it for reuse.
// Unregistering a port with no handler is a no-op.
func (e *Endpoint) StopDatagram(port uint16) {
	e.mu.Lock()
	delete(e.udp, port)
	e.mu.Unlock()
}

// SendDatagram transmits a UDP frame.
func (e *Endpoint) SendDatagram(dst netip.Addr, srcPort, dstPort uint16, payload []byte) error {
	raw := e.builder.UDP(packet.UDPSpec{
		Src: e.host.Addr, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	})
	return e.net.Inject(raw)
}

// Dial opens a connection to a remote host and port, completing the
// SYN / SYN-ACK handshake through the network so monitors observe it.
func (e *Endpoint) Dial(dst netip.Addr, dstPort uint16) (*Conn, error) {
	localPort := uint16(e.nextPort.Add(1))
	if localPort < 1024 { // wrapped
		localPort += 40000
	}
	c := &Conn{
		ep:          e,
		localAddr:   e.host.Addr,
		localPort:   localPort,
		remoteAddr:  dst,
		remotePort:  dstPort,
		established: make(chan struct{}),
		done:        make(chan struct{}),
		inbox:       make(chan []byte, inboxSize),
	}
	key := connKey{localPort: localPort, remoteIP: dst, remotePort: dstPort}
	e.mu.Lock()
	if e.conns == nil {
		e.conns = make(map[connKey]*Conn)
	}
	e.conns[key] = c
	e.mu.Unlock()

	if err := c.sendFlags(packet.TCPFlagSYN, nil); err != nil {
		e.unregister(key)
		return nil, err
	}
	select {
	case <-c.established:
		return c, nil
	case <-time.After(dialTimeout):
		e.unregister(key)
		return nil, fmt.Errorf("%w: dial %s:%d", ErrNoListener, dst, dstPort)
	}
}

func (e *Endpoint) unregister(key connKey) {
	e.mu.Lock()
	delete(e.conns, key)
	e.mu.Unlock()
}

// handleFrame dispatches an arriving frame. It runs on the sender's
// goroutine; everything it does is non-blocking.
func (e *Endpoint) handleFrame(raw []byte, f *packet.Frame, ft packet.FiveTuple) {
	if f.UDP != nil {
		e.mu.Lock()
		h := e.udp[ft.DstPort]
		e.mu.Unlock()
		if h != nil {
			h(ft.Src, ft.SrcPort, f.Payload)
		} else {
			e.orphaned.Add(1)
		}
		return
	}
	if f.TCP == nil {
		return
	}
	flags := f.TCP.Flags
	key := connKey{localPort: ft.DstPort, remoteIP: ft.Src, remotePort: ft.SrcPort}

	switch {
	case flags&packet.TCPFlagSYN != 0 && flags&packet.TCPFlagACK == 0:
		e.acceptSYN(key)
	case flags&packet.TCPFlagSYN != 0 && flags&packet.TCPFlagACK != 0:
		if c := e.lookup(key); c != nil {
			c.markEstablished()
		} else {
			e.orphaned.Add(1)
		}
	case flags&packet.TCPFlagRST != 0:
		if c := e.lookup(key); c != nil {
			e.unregister(key)
			c.markDone()
		}
	case flags&packet.TCPFlagFIN != 0:
		c := e.lookup(key)
		if c == nil {
			e.orphaned.Add(1)
			return
		}
		e.unregister(key)
		if flags&packet.TCPFlagACK == 0 {
			// Passive close: acknowledge with FIN|ACK before tearing down.
			_ = c.sendFlags(packet.TCPFlagFIN|packet.TCPFlagACK, nil)
		}
		c.markDone()
	default:
		c := e.lookup(key)
		if c == nil {
			e.orphaned.Add(1)
			return
		}
		c.receiveSegment(f.Payload, flags&packet.TCPFlagPSH != 0)
	}
}

func (e *Endpoint) lookup(key connKey) *Conn {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conns[key]
}

// acceptSYN creates the server half of a connection and replies SYN|ACK.
func (e *Endpoint) acceptSYN(key connKey) {
	e.mu.Lock()
	l := e.listeners[key.localPort]
	if l == nil {
		e.mu.Unlock()
		e.refused.Add(1)
		return
	}
	if _, dup := e.conns[key]; dup {
		e.mu.Unlock()
		return // retransmitted SYN
	}
	c := &Conn{
		ep:          e,
		server:      true,
		localAddr:   e.host.Addr,
		localPort:   key.localPort,
		remoteAddr:  key.remoteIP,
		remotePort:  key.remotePort,
		established: make(chan struct{}),
		done:        make(chan struct{}),
		inbox:       make(chan []byte, inboxSize),
	}
	c.markEstablished()
	if e.conns == nil {
		e.conns = make(map[connKey]*Conn)
	}
	e.conns[key] = c
	accepted := true
	select {
	case l.accept <- c:
	default:
		delete(e.conns, key) // backlog full: behave like a dropped SYN
		accepted = false
	}
	e.mu.Unlock()
	if accepted {
		_ = c.sendFlags(packet.TCPFlagSYN|packet.TCPFlagACK, nil)
	}
}

// Listener accepts inbound connections on one port.
type Listener struct {
	ep     *Endpoint
	port   uint16
	accept chan *Conn
	done   chan struct{}
	once   sync.Once
}

// Port returns the bound port.
func (l *Listener) Port() uint16 { return l.port }

// Accept waits for the next inbound connection.
func (l *Listener) Accept(timeout time.Duration) (*Conn, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// Serve accepts connections until the listener closes, invoking handler on a
// new goroutine per connection. It returns when the listener is closed.
func (l *Listener) Serve(handler func(*Conn)) {
	for {
		select {
		case c := <-l.accept:
			go handler(c)
		case <-l.done:
			return
		}
	}
}

// Close unbinds the listener. Established connections are unaffected.
func (l *Listener) Close() {
	l.once.Do(func() {
		l.ep.mu.Lock()
		delete(l.ep.listeners, l.port)
		l.ep.mu.Unlock()
		close(l.done)
	})
}

// Conn is a reliable, message-oriented connection. Messages are segmented
// into MSS-sized TCP frames on the wire with the final segment PSH-marked,
// so parsers observe realistic packet trains while applications exchange
// whole requests and responses.
//
// Send must not be called concurrently from multiple goroutines for one
// direction; request/response usage (one outstanding message) is the
// intended pattern.
type Conn struct {
	ep         *Endpoint
	server     bool
	localAddr  netip.Addr
	localPort  uint16
	remoteAddr netip.Addr
	remotePort uint16

	established chan struct{}
	done        chan struct{}
	estOnce     sync.Once
	doneOnce    sync.Once
	inbox       chan []byte

	asmMu sync.Mutex
	asm   []byte

	seq atomic.Uint32
}

// LocalAddr returns the local IP address.
func (c *Conn) LocalAddr() netip.Addr { return c.localAddr }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the remote IP address.
func (c *Conn) RemoteAddr() netip.Addr { return c.remoteAddr }

// RemotePort returns the remote port.
func (c *Conn) RemotePort() uint16 { return c.remotePort }

func (c *Conn) markEstablished() {
	c.estOnce.Do(func() { close(c.established) })
}

func (c *Conn) markDone() {
	c.doneOnce.Do(func() { close(c.done) })
}

// Closed reports whether the connection has terminated.
func (c *Conn) Closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

func (c *Conn) sendFlags(flags uint8, payload []byte) error {
	raw := c.ep.builder.TCP(packet.TCPSpec{
		Src: c.localAddr, Dst: c.remoteAddr,
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: c.seq.Add(uint32(len(payload))), Flags: flags,
		Payload: payload,
	})
	return c.ep.net.Inject(raw)
}

// Send transmits one message, segmenting it into MSS-sized frames.
func (c *Conn) Send(payload []byte) error {
	if c.Closed() {
		return ErrClosed
	}
	for off := 0; ; off += MSS {
		end := off + MSS
		last := end >= len(payload)
		if last {
			end = len(payload)
		}
		flags := packet.TCPFlagACK
		if last {
			flags |= packet.TCPFlagPSH
		}
		if err := c.sendFlags(flags, payload[off:end]); err != nil {
			return err
		}
		if last {
			return nil
		}
	}
}

// receiveSegment reassembles inbound segments into messages.
func (c *Conn) receiveSegment(payload []byte, push bool) {
	c.asmMu.Lock()
	c.asm = append(c.asm, payload...)
	if !push {
		c.asmMu.Unlock()
		return
	}
	msg := c.asm
	c.asm = nil
	c.asmMu.Unlock()

	select {
	case c.inbox <- msg:
	default:
		c.ep.net.inboxDrops.Add(1)
	}
}

// Recv waits for the next complete message. Buffered messages remain
// readable after the peer closes; once drained, Recv returns ErrClosed.
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	select {
	case msg := <-c.inbox:
		return msg, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-c.inbox:
		return msg, nil
	case <-c.done:
		select {
		case msg := <-c.inbox:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// Request sends a message and waits for the reply: the client side of the
// request/response pattern all emulated applications use.
func (c *Conn) Request(payload []byte, timeout time.Duration) ([]byte, error) {
	if err := c.Send(payload); err != nil {
		return nil, err
	}
	return c.Recv(timeout)
}

// Close terminates the connection, emitting a FIN so connection-time parsers
// observe the end of the flow. Closing an already-closed connection is a
// no-op.
func (c *Conn) Close() error {
	if c.Closed() {
		return nil
	}
	key := connKey{localPort: c.localPort, remoteIP: c.remoteAddr, remotePort: c.remotePort}
	c.ep.unregister(key)
	err := c.sendFlags(packet.TCPFlagFIN, nil)
	c.markDone()
	return err
}
