package sketch

import (
	"errors"
	"fmt"
	"math"
)

// CountMin is a count-min sketch over weighted string keys: a d×w grid of
// counters where each row hashes the key independently and Estimate takes
// the minimum over rows. Estimates only ever overestimate, and with
// w = ⌈e/ε⌉, d = ⌈ln(1/δ)⌉ the overestimate exceeds ε·N with probability at
// most δ (N = total offered weight). Merging is element-wise addition, so a
// merged sketch is bit-identical to one built over the concatenated stream.
type CountMin struct {
	depth  int
	width  int
	cells  []float64 // depth rows × width columns, row-major
	weight float64
}

// NewCountMin creates a sketch with the given depth (rows, ≥1) and width
// (columns per row, ≥1). Width is rounded up to a power of two so row
// indexing is a mask instead of a modulo.
func NewCountMin(depth, width int) *CountMin {
	if depth < 1 {
		depth = 1
	}
	if width < 1 {
		width = 1
	}
	w := 1
	for w < width {
		w <<= 1
	}
	return &CountMin{depth: depth, width: w, cells: make([]float64, depth*w)}
}

// NewCountMinWithError creates a sketch sized for relative error ε with
// failure probability δ: width ⌈e/ε⌉ (rounded to a power of two), depth
// ⌈ln(1/δ)⌉.
func NewCountMinWithError(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.001
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(depth, width)
}

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// Width returns the (power-of-two) columns per row.
func (c *CountMin) Width() int { return c.width }

// Weight returns the total offered weight N.
func (c *CountMin) Weight() float64 { return c.weight }

// Epsilon returns the additive error factor e/width: estimates exceed the
// true count by more than Epsilon()·Weight() with probability ≤ Delta().
func (c *CountMin) Epsilon() float64 { return math.E / float64(c.width) }

// Delta returns the per-query failure probability e^-depth.
func (c *CountMin) Delta() float64 { return math.Exp(-float64(c.depth)) }

// rowIndexes derives the per-row cell indexes from one key hash using the
// Kirsch–Mitzenmacher double-hashing construction h_i = h1 + i·h2.
func (c *CountMin) rowIndex(h uint64, row int) int {
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	return int((h1 + uint32(row)*h2) & uint32(c.width-1))
}

// Offer adds weight w (≤0 counts as 1) for key.
func (c *CountMin) Offer(key string, w float64) {
	if w <= 0 {
		w = 1
	}
	c.weight += w
	h := mix64(hashString(key))
	for row := 0; row < c.depth; row++ {
		c.cells[row*c.width+c.rowIndex(h, row)] += w
	}
}

// Estimate returns the count estimate for key: never below the true count,
// above it by more than ε·N with probability at most δ.
func (c *CountMin) Estimate(key string) float64 {
	h := mix64(hashString(key))
	est := math.Inf(1)
	for row := 0; row < c.depth; row++ {
		if v := c.cells[row*c.width+c.rowIndex(h, row)]; v < est {
			est = v
		}
	}
	return est
}

// Merge folds other into c by element-wise addition. The sketches must have
// identical dimensions.
func (c *CountMin) Merge(other *CountMin) error {
	if other == nil {
		return nil
	}
	if other.depth != c.depth || other.width != c.width {
		return fmt.Errorf("sketch: count-min dimension mismatch: %dx%d vs %dx%d",
			c.depth, c.width, other.depth, other.width)
	}
	for i, v := range other.cells {
		c.cells[i] += v
	}
	c.weight += other.weight
	return nil
}

// Reset zeroes the sketch for the next window, retaining its dimensions.
func (c *CountMin) Reset() {
	clear(c.cells)
	c.weight = 0
}

// Bytes returns the fixed memory footprint in bytes.
func (c *CountMin) Bytes() int { return len(c.cells) * 8 }

// Encode serializes the sketch for transport between bolt tasks.
func (c *CountMin) Encode() []byte {
	b := make([]byte, 0, 1+8*3+len(c.cells)*8)
	b = append(b, kindCountMin)
	b = appendUint64(b, uint64(c.depth))
	b = appendUint64(b, uint64(c.width))
	b = appendFloat64(b, c.weight)
	for _, v := range c.cells {
		b = appendFloat64(b, v)
	}
	return b
}

// DecodeCountMin reconstructs a sketch produced by Encode.
func DecodeCountMin(data []byte) (*CountMin, error) {
	if len(data) < 1 || data[0] != kindCountMin {
		return nil, errors.New("sketch: not a count-min encoding")
	}
	rest := data[1:]
	depth, rest, ok := readUint64(rest)
	if !ok {
		return nil, errors.New("sketch: truncated count-min encoding")
	}
	width, rest, ok := readUint64(rest)
	if !ok {
		return nil, errors.New("sketch: truncated count-min encoding")
	}
	weight, rest, ok := readFloat64(rest)
	if !ok || uint64(len(rest)) < depth*width*8 {
		return nil, errors.New("sketch: truncated count-min cells")
	}
	c := NewCountMin(int(depth), int(width))
	if c.width != int(width) {
		return nil, fmt.Errorf("sketch: count-min encoding width %d is not a power of two", width)
	}
	c.weight = weight
	for i := range c.cells {
		c.cells[i], rest, _ = readFloat64(rest)
	}
	return c, nil
}
