package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"netalytics/internal/workload"
)

// zipfStream draws n keys from a Zipf law over `distinct` possible keys,
// returning the stream and exact ground-truth counts.
func zipfStream(n int, distinct uint64, seed int64) ([]string, map[string]float64) {
	z := workload.NewZipfURLs(distinct, 1.2, uint64(seed), rand.New(rand.NewSource(seed)))
	stream := make([]string, n)
	truth := make(map[string]float64)
	for i := range stream {
		stream[i] = z.Next()
		truth[stream[i]]++
	}
	return stream, truth
}

// adversarialStream is the space-saving worst case: a long run of equal-count
// distinct keys (every insertion evicts), then a burst of moderately frequent
// keys that must displace the noise.
func adversarialStream(singletons, hot, hotCount int) ([]string, map[string]float64) {
	var stream []string
	truth := make(map[string]float64)
	add := func(k string) {
		stream = append(stream, k)
		truth[k]++
	}
	for i := 0; i < singletons; i++ {
		add("noise-" + strconv.Itoa(i))
	}
	for r := 0; r < hotCount; r++ {
		for i := 0; i < hot; i++ {
			add("hot-" + strconv.Itoa(i))
		}
	}
	return stream, truth
}

// --- space-saving ----------------------------------------------------------

func checkSpaceSavingInvariants(t *testing.T, sk *TopK, truth map[string]float64) {
	t.Helper()
	n := 0.0
	for _, c := range truth {
		n += c
	}
	if sk.Weight() != n {
		t.Errorf("Weight = %v, want %v", sk.Weight(), n)
	}
	bound := n / float64(sk.Capacity())
	if got := sk.ErrorBound(); math.Abs(got-bound) > 1e-9 {
		t.Errorf("ErrorBound = %v, want %v", got, bound)
	}
	for _, it := range sk.Top(sk.Capacity()) {
		true_ := truth[it.Key]
		if it.Count < true_ {
			t.Errorf("key %s: estimate %v underestimates true %v", it.Key, it.Count, true_)
		}
		if it.Count-true_ > it.Err+1e-9 {
			t.Errorf("key %s: overestimate %v exceeds recorded err %v", it.Key, it.Count-true_, it.Err)
		}
		if it.Err > bound+1e-9 {
			t.Errorf("key %s: err %v exceeds N/m = %v", it.Key, it.Err, bound)
		}
	}
	// Completeness: every key with true count > N/m must be tracked.
	for key, c := range truth {
		if c > bound {
			if _, _, ok := sk.Estimate(key); !ok {
				t.Errorf("heavy key %s (count %v > bound %v) not tracked", key, c, bound)
			}
		}
	}
}

func TestSpaceSavingZipfInvariants(t *testing.T) {
	stream, truth := zipfStream(200_000, 1_000_000, 1)
	sk := NewTopK(256)
	for _, k := range stream {
		sk.Offer(k, 1)
	}
	checkSpaceSavingInvariants(t, sk, truth)
}

func TestSpaceSavingAdversarialInvariants(t *testing.T) {
	stream, truth := adversarialStream(50_000, 20, 100)
	sk := NewTopK(64)
	for _, k := range stream {
		sk.Offer(k, 1)
	}
	checkSpaceSavingInvariants(t, sk, truth)
	// The hot keys each have count 100; N/m = 52000/64 ≈ 812 > 100, so the
	// bound alone doesn't force tracking — but with the hot burst last, all
	// 20 must still be present (they displaced the stale singletons).
	for i := 0; i < 20; i++ {
		if _, _, ok := sk.Estimate("hot-" + strconv.Itoa(i)); !ok {
			t.Errorf("hot-%d lost to adversarial noise", i)
		}
	}
}

func TestSpaceSavingWeightedOffers(t *testing.T) {
	sk := NewTopK(8)
	sk.Offer("a", 10)
	sk.Offer("b", 3)
	sk.Offer("a", 0) // ≤0 counts as 1
	if c, _, _ := sk.Estimate("a"); c != 11 {
		t.Errorf("a = %v, want 11", c)
	}
	if sk.Weight() != 14 {
		t.Errorf("Weight = %v, want 14", sk.Weight())
	}
	top := sk.Top(1)
	if len(top) != 1 || top[0].Key != "a" {
		t.Errorf("Top(1) = %+v", top)
	}
}

func TestSpaceSavingTopOrderingTieBreak(t *testing.T) {
	sk := NewTopK(8)
	for _, k := range []string{"b", "a", "c"} {
		sk.Offer(k, 5)
	}
	top := sk.Top(3)
	if top[0].Key != "a" || top[1].Key != "b" || top[2].Key != "c" {
		t.Errorf("equal counts must tie-break by key asc: %+v", top)
	}
}

func TestSpaceSavingMergeEquivalence(t *testing.T) {
	stream, truth := zipfStream(120_000, 500_000, 2)
	const parts = 6
	const capacity = 256

	whole := NewTopK(capacity)
	partials := make([]*TopK, parts)
	for i := range partials {
		partials[i] = NewTopK(capacity)
	}
	for i, k := range stream {
		whole.Offer(k, 1)
		partials[i%parts].Offer(k, 1)
	}
	merged := NewTopK(capacity)
	for _, p := range partials {
		merged.Merge(p)
	}
	if merged.Weight() != whole.Weight() {
		t.Errorf("merged weight %v != whole weight %v", merged.Weight(), whole.Weight())
	}
	// The merged sketch must satisfy the same space-saving guarantees as a
	// single sketch over the union stream.
	checkSpaceSavingInvariants(t, merged, truth)
	// And the clear heavy hitters must agree with the single-sketch ranking.
	wholeTop := whole.Top(10)
	mergedSet := map[string]bool{}
	for _, it := range merged.Top(20) {
		mergedSet[it.Key] = true
	}
	for _, it := range wholeTop[:5] {
		if !mergedSet[it.Key] {
			t.Errorf("whole-stream top key %s missing from merged top 20", it.Key)
		}
	}
}

func TestSpaceSavingMergeNilAndEmpty(t *testing.T) {
	sk := NewTopK(4)
	sk.Offer("a", 2)
	sk.Merge(nil)
	sk.Merge(NewTopK(4))
	if c, _, _ := sk.Estimate("a"); c != 2 || sk.Weight() != 2 {
		t.Errorf("merge with nil/empty changed state: a=%v weight=%v", c, sk.Weight())
	}
}

func TestSpaceSavingEncodeDecode(t *testing.T) {
	stream, _ := zipfStream(10_000, 50_000, 3)
	sk := NewTopK(128)
	for _, k := range stream {
		sk.Offer(k, 1)
	}
	dec, err := DecodeTopK(sk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Weight() != sk.Weight() || dec.Capacity() != sk.Capacity() || dec.Len() != sk.Len() {
		t.Fatalf("decode mismatch: weight %v/%v cap %d/%d len %d/%d",
			dec.Weight(), sk.Weight(), dec.Capacity(), sk.Capacity(), dec.Len(), sk.Len())
	}
	for _, it := range sk.Top(sk.Len()) {
		c, e, ok := dec.Estimate(it.Key)
		if !ok || c != it.Count || e != it.Err {
			t.Fatalf("key %s: decoded (%v,%v,%v), want (%v,%v,true)", it.Key, c, e, ok, it.Count, it.Err)
		}
	}
}

func TestDecodeTopKRejectsMalformed(t *testing.T) {
	for _, data := range [][]byte{nil, {0xff}, {kindTopK}, {kindTopK, 1, 2, 3}} {
		if _, err := DecodeTopK(data); err == nil {
			t.Errorf("DecodeTopK(%v) accepted malformed input", data)
		}
	}
	// An entry count beyond the declared capacity must be rejected. The
	// capacity field is the little-endian uint64 at offset 1: patch 2 → 1.
	sk := NewTopK(2)
	sk.Offer("a", 1)
	sk.Offer("b", 1)
	enc := sk.Encode()
	enc[1] = 1
	if _, err := DecodeTopK(enc); err == nil {
		t.Error("DecodeTopK accepted entry count beyond capacity")
	}
}

// TestSpaceSavingTenMillionKeysBoundedMemory is the O(k)-memory acceptance
// test: stream >10M distinct keys through a small sketch and assert the
// retained footprint depends on the capacity, not the cardinality.
func TestSpaceSavingTenMillionKeysBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-key stream")
	}
	const capacity = 80 // DefaultCapacity(10)
	const distinct = 10_000_001

	sk := NewTopK(capacity)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// Keys 0..9 carry weight 200k — above the final N/m ≈ 150k, so the
	// space-saving completeness guarantee (count > N/m ⇒ tracked) applies to
	// them; the other 10M keys are singletons.
	const heavy = 200_000.0
	buf := make([]byte, 0, 32)
	for i := 0; i < distinct; i++ {
		buf = append(buf[:0], "key-"...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		w := 1.0
		if i < 10 {
			w = heavy
		}
		sk.Offer(string(buf), w)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	if sk.Len() != capacity {
		t.Errorf("Len = %d, want full capacity %d", sk.Len(), capacity)
	}
	if b := sk.Bytes(); b > 64*1024 {
		t.Errorf("sketch reports %d bytes for %d keys; footprint must be O(k)", b, distinct)
	}
	// Heap growth across the whole stream must be nowhere near the ~600 MB an
	// exact count map over 10M keys costs; allow generous slack for runtime
	// noise.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 16<<20 {
		t.Errorf("heap grew %d bytes over a 10M-key stream; want O(k) retention", grew)
	}
	// The heavy keys must all be present with counts within the bound.
	bound := sk.ErrorBound()
	for i := 0; i < 10; i++ {
		key := "key-" + strconv.Itoa(i)
		c, _, ok := sk.Estimate(key)
		if !ok {
			t.Errorf("heavy key %s lost among 10M distinct keys", key)
			continue
		}
		if c < heavy || c-heavy > bound+1e-6 {
			t.Errorf("key %s estimate %v outside [%v, %v+bound]", key, c, heavy, heavy)
		}
	}
	// And they must headline the reported top 10.
	topSet := map[string]bool{}
	for _, it := range sk.Top(10) {
		topSet[it.Key] = true
	}
	for i := 0; i < 10; i++ {
		if !topSet["key-"+strconv.Itoa(i)] {
			t.Errorf("key-%d missing from Top(10): %v", i, sk.Top(10))
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	if DefaultCapacity(10) != 80 || DefaultCapacity(0) != 8 {
		t.Errorf("DefaultCapacity = %d, %d", DefaultCapacity(10), DefaultCapacity(0))
	}
}

// --- count-min -------------------------------------------------------------

func TestCountMinBoundsOnZipf(t *testing.T) {
	stream, truth := zipfStream(200_000, 1_000_000, 4)
	cm := NewCountMin(4, 2048)
	for _, k := range stream {
		cm.Offer(k, 1)
	}
	if cm.Weight() != float64(len(stream)) {
		t.Fatalf("Weight = %v", cm.Weight())
	}
	epsN := cm.Epsilon() * cm.Weight()
	violations := 0
	for key, true_ := range truth {
		est := cm.Estimate(key)
		if est < true_ {
			t.Fatalf("key %s: estimate %v underestimates %v (count-min must only overestimate)", key, est, true_)
		}
		if est-true_ > epsN {
			violations++
		}
	}
	// The ε·N bound fails per query with probability ≤ δ = e^-4 ≈ 1.8%.
	// Allow 3× that for statistical slack.
	if frac := float64(violations) / float64(len(truth)); frac > 3*cm.Delta() {
		t.Errorf("%.4f of estimates exceeded εN, want ≤ ~δ = %.4f", frac, cm.Delta())
	}
}

func TestCountMinWithErrorSizing(t *testing.T) {
	cm := NewCountMinWithError(0.001, 0.01)
	if cm.Epsilon() > 0.001 {
		t.Errorf("Epsilon = %v, want ≤ 0.001", cm.Epsilon())
	}
	if cm.Delta() > 0.01 {
		t.Errorf("Delta = %v, want ≤ 0.01", cm.Delta())
	}
	// Degenerate parameters fall back to defaults instead of exploding.
	cm = NewCountMinWithError(-1, 2)
	if cm.Width() < 1 || cm.Depth() < 1 {
		t.Errorf("degenerate sizing: %dx%d", cm.Depth(), cm.Width())
	}
}

func TestCountMinMergeEquivalence(t *testing.T) {
	stream, _ := zipfStream(100_000, 200_000, 5)
	const parts = 4
	whole := NewCountMin(4, 1024)
	partials := make([]*CountMin, parts)
	for i := range partials {
		partials[i] = NewCountMin(4, 1024)
	}
	for i, k := range stream {
		whole.Offer(k, 1)
		partials[i%parts].Offer(k, 1)
	}
	merged := NewCountMin(4, 1024)
	for _, p := range partials {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	// Unit weights sum exactly, so merge-of-parts must be bit-identical to
	// the single sketch over the whole stream.
	if !bytes.Equal(merged.Encode(), whole.Encode()) {
		t.Error("merged count-min differs from single sketch over the union stream")
	}
}

func TestCountMinMergeDimensionMismatch(t *testing.T) {
	a := NewCountMin(4, 1024)
	if err := a.Merge(NewCountMin(4, 2048)); err == nil {
		t.Error("merge accepted mismatched width")
	}
	if err := a.Merge(NewCountMin(5, 1024)); err == nil {
		t.Error("merge accepted mismatched depth")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
}

func TestCountMinEncodeDecode(t *testing.T) {
	cm := NewCountMin(3, 64)
	cm.Offer("x", 7)
	cm.Offer("y", 2)
	dec, err := DecodeCountMin(cm.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), cm.Encode()) {
		t.Error("decode(encode) not idempotent")
	}
	if dec.Estimate("x") != cm.Estimate("x") {
		t.Errorf("decoded estimate %v != %v", dec.Estimate("x"), cm.Estimate("x"))
	}
	for _, data := range [][]byte{nil, {0xff}, {kindCountMin}, {kindCountMin, 1, 2}} {
		if _, err := DecodeCountMin(data); err == nil {
			t.Errorf("DecodeCountMin(%v) accepted malformed input", data)
		}
	}
}

// --- hyperloglog -----------------------------------------------------------

func TestHLLAccuracy(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	tolerance := 3 * h.StdError() // ~4.9% at p=12
	for _, n := range []int{100, 10_000, 1_000_000} {
		h.Reset()
		buf := make([]byte, 0, 32)
		for i := 0; i < n; i++ {
			buf = append(buf[:0], "ip-"...)
			buf = strconv.AppendInt(buf, int64(i), 10)
			h.Offer(string(buf))
		}
		est := h.Estimate()
		if rel := math.Abs(est-float64(n)) / float64(n); rel > tolerance {
			t.Errorf("n=%d: estimate %.0f (%.2f%% off), want within %.2f%%", n, est, rel*100, tolerance*100)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(12)
	for round := 0; round < 100; round++ {
		for i := 0; i < 500; i++ {
			h.Offer("key-" + strconv.Itoa(i))
		}
	}
	est := h.Estimate()
	if math.Abs(est-500) > 500*3*h.StdError() {
		t.Errorf("50k offers of 500 distinct keys estimated %.0f", est)
	}
}

func TestHLLMergeEquivalence(t *testing.T) {
	const parts = 5
	whole := NewHLL(12)
	partials := make([]*HLL, parts)
	for i := range partials {
		partials[i] = NewHLL(12)
	}
	for i := 0; i < 50_000; i++ {
		key := "k-" + strconv.Itoa(i)
		whole.Offer(key)
		partials[i%parts].Offer(key)
	}
	merged := NewHLL(12)
	for _, p := range partials {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	// Element-wise max: merged registers are bit-identical to the union's.
	if !bytes.Equal(merged.Encode(), whole.Encode()) {
		t.Error("merged HLL differs from single sketch over the union stream")
	}
}

func TestHLLMergePrecisionMismatch(t *testing.T) {
	if err := NewHLL(12).Merge(NewHLL(10)); err == nil {
		t.Error("merge accepted mismatched precision")
	}
	if err := NewHLL(12).Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
}

func TestHLLPrecisionClampAndBytes(t *testing.T) {
	if p := NewHLL(1).Precision(); p != 4 {
		t.Errorf("low clamp = %d, want 4", p)
	}
	if p := NewHLL(30).Precision(); p != 18 {
		t.Errorf("high clamp = %d, want 18", p)
	}
	if b := NewHLL(12).Bytes(); b != 4096 {
		t.Errorf("Bytes = %d, want 4096", b)
	}
}

func TestHLLEncodeDecode(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 1000; i++ {
		h.Offer(strconv.Itoa(i))
	}
	dec, err := DecodeHLL(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Estimate() != h.Estimate() {
		t.Errorf("decoded estimate %v != %v", dec.Estimate(), h.Estimate())
	}
	for _, data := range [][]byte{nil, {0xff}, {kindHLL}, {kindHLL, 12, 0}, {kindHLL, 3}} {
		if _, err := DecodeHLL(data); err == nil {
			t.Errorf("DecodeHLL(%v) accepted malformed input", data)
		}
	}
}

// --- shared ----------------------------------------------------------------

func TestResetClearsState(t *testing.T) {
	sk := NewTopK(4)
	sk.Offer("a", 5)
	sk.Reset()
	if sk.Len() != 0 || sk.Weight() != 0 {
		t.Errorf("TopK reset left len=%d weight=%v", sk.Len(), sk.Weight())
	}
	cm := NewCountMin(2, 8)
	cm.Offer("a", 5)
	cm.Reset()
	if cm.Weight() != 0 || cm.Estimate("a") != 0 {
		t.Errorf("CountMin reset left weight=%v est=%v", cm.Weight(), cm.Estimate("a"))
	}
	h := NewHLL(4)
	h.Offer("a")
	h.Reset()
	if h.Estimate() != 0 {
		t.Errorf("HLL reset left estimate %v", h.Estimate())
	}
}

// --- benchmarks (see bench_test.go at the repo root for exact-vs-sketch) ----

func BenchmarkTopKOffer(b *testing.B) {
	stream, _ := zipfStream(1<<16, 1_000_000, 9)
	sk := NewTopK(800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Offer(stream[i&(1<<16-1)], 1)
	}
}

func BenchmarkCountMinOffer(b *testing.B) {
	stream, _ := zipfStream(1<<16, 1_000_000, 10)
	cm := NewCountMin(4, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Offer(stream[i&(1<<16-1)], 1)
	}
}

func BenchmarkHLLOffer(b *testing.B) {
	stream, _ := zipfStream(1<<16, 1_000_000, 11)
	h := NewHLL(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Offer(stream[i&(1<<16-1)])
	}
}
