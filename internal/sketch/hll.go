package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// DefaultHLLPrecision is the register-count exponent used when a deployment
// doesn't pin one: p=12 → 4096 one-byte registers (4 KB) and a standard
// error of 1.04/√4096 ≈ 1.6%, comfortably inside the ~2% target.
const DefaultHLLPrecision = 12

// HLL is a HyperLogLog distinct-count sketch: 2^p one-byte registers, each
// holding the maximum leading-zero run observed in its hash bucket. The
// relative standard error is 1.04/√(2^p); merging is element-wise max, so a
// merged sketch is bit-identical to one built over the union of the streams.
type HLL struct {
	precision uint8
	registers []uint8
}

// NewHLL creates a sketch with 2^p registers, clamping p into [4, 18].
func NewHLL(p int) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return &HLL{precision: uint8(p), registers: make([]uint8, 1<<p)}
}

// Precision returns the register-count exponent p.
func (h *HLL) Precision() int { return int(h.precision) }

// StdError returns the relative standard error 1.04/√m.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}

// Offer observes a key.
func (h *HLL) Offer(key string) {
	h.OfferHash(mix64(hashString(key)))
}

// OfferHash observes a pre-hashed key (callers that already hash for other
// sketches can reuse the value).
func (h *HLL) OfferHash(x uint64) {
	idx := x >> (64 - h.precision)
	// Rank of the first set bit in the remaining 64-p bits, 1-based.
	rest := x<<h.precision | 1<<(h.precision-1) // guard bit keeps rank ≤ 64-p+1
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the approximate number of distinct keys observed.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(h.registers)) * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	// 64-bit hashes make the large-range collision correction unnecessary at
	// any cardinality this system can produce.
	return est
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds other into h by element-wise max. The sketches must share a
// precision.
func (h *HLL) Merge(other *HLL) error {
	if other == nil {
		return nil
	}
	if other.precision != h.precision {
		return fmt.Errorf("sketch: hll precision mismatch: %d vs %d", h.precision, other.precision)
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Reset zeroes the registers for the next window.
func (h *HLL) Reset() { clear(h.registers) }

// Bytes returns the fixed memory footprint in bytes.
func (h *HLL) Bytes() int { return len(h.registers) }

// Encode serializes the sketch for transport between bolt tasks.
func (h *HLL) Encode() []byte {
	b := make([]byte, 0, 2+len(h.registers))
	b = append(b, kindHLL, h.precision)
	return append(b, h.registers...)
}

// DecodeHLL reconstructs a sketch produced by Encode.
func DecodeHLL(data []byte) (*HLL, error) {
	if len(data) < 2 || data[0] != kindHLL {
		return nil, errors.New("sketch: not an hll encoding")
	}
	p := int(data[1])
	if p < 4 || p > 18 || len(data) != 2+(1<<p) {
		return nil, fmt.Errorf("sketch: hll encoding malformed (p=%d, %d bytes)", p, len(data))
	}
	h := NewHLL(p)
	copy(h.registers, data[2:])
	return h, nil
}
