package sketch

import (
	"errors"
	"fmt"
	"sort"
)

// TopK is a space-saving (stream-summary) heavy-hitter sketch: it maintains
// at most m counters and guarantees, after observing total weight N, that
//
//   - every reported estimate overestimates: count(x) ≤ Est(x), and
//   - the overestimate is bounded: Est(x) − count(x) ≤ Err(x) ≤ N/m, and
//   - every key with true count > N/m is present in the summary.
//
// Internally the counters form a min-heap on the estimate so an Offer that
// must evict the minimum costs O(log m); keys are located through a map.
// Weighted offers are supported (Val-carrying tuples add their value, not 1).
type TopK struct {
	capacity int
	entries  []ssEntry      // heap-ordered: entries[0] has the min count
	index    map[string]int // key -> position in entries
	weight   float64        // total offered weight N (survives Merge)
}

type ssEntry struct {
	key   string
	count float64 // overestimated count
	err   float64 // max overestimation: count - err ≤ true ≤ count
}

// Item is one reported heavy hitter.
type Item struct {
	Key   string
	Count float64 // overestimate of the true count
	Err   float64 // Count - Err is a lower bound on the true count
}

// NewTopK creates a space-saving sketch with the given counter capacity
// (min 1). Capacity m bounds the per-key error by N/m, so tracking the top k
// reliably wants m a few multiples of k (see DefaultCapacity).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{
		capacity: capacity,
		entries:  make([]ssEntry, 0, capacity),
		index:    make(map[string]int, capacity),
	}
}

// DefaultCapacity is the counter budget used for a top-k query when the
// deployment doesn't pin one: 8× the requested k keeps the N/m error small
// relative to the k-th count under Zipfian skew while staying O(k).
func DefaultCapacity(k int) int {
	if k < 1 {
		k = 1
	}
	return 8 * k
}

// Capacity returns the counter budget m.
func (t *TopK) Capacity() int { return t.capacity }

// Len returns the number of keys currently tracked (≤ capacity).
func (t *TopK) Len() int { return len(t.entries) }

// Weight returns the total offered weight N (the error bound is N/m).
func (t *TopK) Weight() float64 { return t.weight }

// ErrorBound returns the worst-case overestimation N/m.
func (t *TopK) ErrorBound() float64 { return t.weight / float64(t.capacity) }

// Offer adds weight w (≤0 counts as 1) for key.
func (t *TopK) Offer(key string, w float64) {
	if w <= 0 {
		w = 1
	}
	t.weight += w
	if i, ok := t.index[key]; ok {
		t.entries[i].count += w
		t.siftDown(i)
		return
	}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, ssEntry{key: key, count: w})
		t.index[key] = len(t.entries) - 1
		t.siftUp(len(t.entries) - 1)
		return
	}
	// Space-saving eviction: the new key inherits the minimum counter, and
	// the inherited value is recorded as its possible overestimation.
	min := &t.entries[0]
	delete(t.index, min.key)
	t.index[key] = 0
	min.err = min.count
	min.count += w
	min.key = key
	t.siftDown(0)
}

// Estimate returns the tracked estimate for key and whether it is tracked.
// Untracked keys have true count ≤ the sketch's minimum counter.
func (t *TopK) Estimate(key string) (count, err float64, ok bool) {
	i, ok := t.index[key]
	if !ok {
		return 0, 0, false
	}
	return t.entries[i].count, t.entries[i].err, true
}

// minCount returns the smallest tracked estimate, or 0 while the sketch has
// spare capacity (an absent key then truly has count 0 … minCount).
func (t *TopK) minCount() float64 {
	if len(t.entries) < t.capacity || len(t.entries) == 0 {
		return 0
	}
	return t.entries[0].count
}

// Top returns the k largest estimates, ordered by count descending with keys
// ascending as the tie-break (matching the exact ranker's ordering).
func (t *TopK) Top(k int) []Item {
	if k <= 0 || len(t.entries) == 0 {
		return nil
	}
	items := make([]Item, len(t.entries))
	for i, e := range t.entries {
		items[i] = Item{Key: e.key, Count: e.count, Err: e.err}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// Merge folds other into t so the result summarizes the union of both input
// streams. For keys both sketches track, counts and errors add; a key only
// one side tracks picks up the other side's minimum counter as additional
// (bounded) uncertainty — the space-saving invariant guarantees an untracked
// key's true count never exceeds that minimum. The merged error bound stays
// ≤ (N₁+N₂)/m. The merge is the standard mergeable-summaries construction
// (Agarwal et al.), so merge-of-parts is equivalent, within bounds, to one
// sketch over the concatenated stream.
func (t *TopK) Merge(other *TopK) {
	if other == nil || len(other.entries) == 0 {
		t.weight += otherWeight(other)
		return
	}
	minT := t.minCount()
	minO := other.minCount()
	merged := make([]ssEntry, 0, len(t.entries)+len(other.entries))
	seen := make(map[string]bool, len(t.entries)+len(other.entries))
	for _, e := range t.entries {
		me := e
		if oc, oe, ok := other.Estimate(e.key); ok {
			me.count += oc
			me.err += oe
			seen[e.key] = true
		} else {
			me.count += minO
			me.err += minO
		}
		merged = append(merged, me)
	}
	for _, e := range other.entries {
		if seen[e.key] {
			continue
		}
		me := e
		me.count += minT
		me.err += minT
		merged = append(merged, me)
	}
	// Keep the m largest merged counters.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].count != merged[j].count {
			return merged[i].count > merged[j].count
		}
		return merged[i].key < merged[j].key
	})
	if len(merged) > t.capacity {
		merged = merged[:t.capacity]
	}
	t.entries = t.entries[:0]
	clear(t.index)
	for _, e := range merged {
		t.entries = append(t.entries, e)
	}
	t.heapify()
	t.weight += other.weight
}

func otherWeight(other *TopK) float64 {
	if other == nil {
		return 0
	}
	return other.weight
}

// Reset clears the sketch for the next window, retaining its capacity.
func (t *TopK) Reset() {
	t.entries = t.entries[:0]
	clear(t.index)
	t.weight = 0
}

// Bytes returns the fixed memory footprint in bytes: capacity counters plus
// the index, independent of how many distinct keys the stream carried.
func (t *TopK) Bytes() int {
	// entry ≈ 16B header + 16B floats + key; index entry ≈ 48B. Keys are
	// workload-dependent but bounded by capacity entries.
	keyBytes := 0
	for i := range t.entries {
		keyBytes += len(t.entries[i].key)
	}
	return t.capacity*(32+48) + keyBytes
}

// heap maintenance (min-heap on count) --------------------------------------

func (t *TopK) heapify() {
	for i := len(t.entries)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
	for i := range t.entries {
		t.index[t.entries[i].key] = i
	}
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.entries[parent].count <= t.entries[i].count {
			break
		}
		t.swap(parent, i)
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.entries[l].count < t.entries[min].count {
			min = l
		}
		if r < n && t.entries[r].count < t.entries[min].count {
			min = r
		}
		if min == i {
			return
		}
		t.swap(min, i)
		i = min
	}
}

func (t *TopK) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.index[t.entries[i].key] = i
	t.index[t.entries[j].key] = j
}

// Encode serializes the sketch for transport between bolt tasks.
func (t *TopK) Encode() []byte {
	size := 1 + 8*3 + len(t.entries)*24
	for i := range t.entries {
		size += len(t.entries[i].key)
	}
	b := make([]byte, 0, size)
	b = append(b, kindTopK)
	b = appendUint64(b, uint64(t.capacity))
	b = appendFloat64(b, t.weight)
	b = appendUint64(b, uint64(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		b = appendUint64(b, uint64(len(e.key)))
		b = append(b, e.key...)
		b = appendFloat64(b, e.count)
		b = appendFloat64(b, e.err)
	}
	return b
}

// DecodeTopK reconstructs a sketch produced by Encode.
func DecodeTopK(data []byte) (*TopK, error) {
	if len(data) < 1 || data[0] != kindTopK {
		return nil, errors.New("sketch: not a top-k encoding")
	}
	rest := data[1:]
	capU, rest, ok := readUint64(rest)
	if !ok {
		return nil, errors.New("sketch: truncated top-k encoding")
	}
	weight, rest, ok := readFloat64(rest)
	if !ok {
		return nil, errors.New("sketch: truncated top-k encoding")
	}
	n, rest, ok := readUint64(rest)
	if !ok || n > uint64(capU) {
		return nil, fmt.Errorf("sketch: top-k encoding carries %d entries for capacity %d", n, capU)
	}
	t := NewTopK(int(capU))
	t.weight = weight
	for i := uint64(0); i < n; i++ {
		var klen uint64
		klen, rest, ok = readUint64(rest)
		if !ok || uint64(len(rest)) < klen+16 {
			return nil, errors.New("sketch: truncated top-k entry")
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		var count, errv float64
		count, rest, _ = readFloat64(rest)
		errv, rest, ok = readFloat64(rest)
		if !ok {
			return nil, errors.New("sketch: truncated top-k entry")
		}
		t.entries = append(t.entries, ssEntry{key: key, count: count, err: errv})
	}
	t.heapify()
	return t, nil
}
