// Package sketch implements the bounded-memory, mergeable summaries the
// analytics tier uses to survive million-key cardinality: space-saving top-k
// (Metwally et al.), count-min (Cormode & Muthukrishnan) and HyperLogLog
// distinct counting (Flajolet et al.).
//
// All three share two properties the stream engine leans on:
//
//   - Bounded memory. A sketch's footprint is fixed at construction — O(k)
//     counters for top-k, d×w cells for count-min, 2^p registers for HLL —
//     and independent of how many distinct keys the stream carries. Exact
//     per-key state melts at 10M+ distinct URLs/flows; sketches don't.
//
//   - Mergeability. Merge(other) folds another sketch of the same shape into
//     the receiver such that the result summarizes the union of both input
//     streams, with the error bounds degrading no worse than additively.
//     This is what converts the analytics tier's global-grouping shuffle
//     (every tuple funneled through one bolt task) into partition-local
//     sketching plus an O(parallelism) merge per tick.
//
// Sketches are not safe for concurrent use; the stream executor gives each
// bolt task its own instance, which is the intended usage.
package sketch

import (
	"encoding/binary"
	"math"
)

// hashString is FNV-1a 64 over the key bytes — the same zero-allocation hash
// the stream executor routes with, inlined to avoid a hasher allocation.
func hashString(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// mix64 finalizes a hash with the splitmix64 mixer, giving count-min and HLL
// well-distributed high bits even for short or structured keys (FNV alone is
// weak in the high bits for small inputs).
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Binary encoding helpers shared by the sketches' Encode/Decode pairs. Every
// encoding starts with a one-byte kind tag so a merging bolt can dispatch on
// the payload alone.
const (
	kindTopK     = 1
	kindCountMin = 2
	kindHLL      = 3
)

func appendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func readUint64(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(b), b[8:], true
}

func readFloat64(b []byte) (float64, []byte, bool) {
	v, rest, ok := readUint64(b)
	return math.Float64frombits(v), rest, ok
}
