// Package apps provides the emulated distributed applications the use-case
// experiments (§7) run on the virtual network: a mini-MySQL database server
// (with the general-query-log overhead toggle of §7.2), a memcached server,
// HTTP application servers with configurable backend behavior, a
// load-balancing proxy whose backend pool lives in a small in-memory KV
// store, closed-loop load clients, and the autoscaling Updater of §7.3.
//
// All servers speak the real wire encodings of internal/proto over
// internal/vnet connections, so NetAlytics monitors observe genuine traffic.
package apps

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/proto"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

const serverRecvTimeout = 5 * time.Second

// MySQLConfig parameterizes a mini-MySQL server.
type MySQLConfig struct {
	// Port to listen on (default 3306).
	Port uint16
	// DefaultCost is the simulated execution time per query.
	DefaultCost time.Duration
	// Costs overrides the cost for queries containing a substring key.
	Costs map[string]time.Duration
	// QueryLog, when non-nil, receives one line per query — the "general
	// query log" whose overhead §7.2 measures.
	QueryLog io.Writer
	// LogOverhead is the additional per-query time charged when QueryLog
	// is enabled (defaults to 25 % of the query's cost, reproducing the
	// paper's ~20 % throughput drop).
	LogOverhead time.Duration
}

// MySQLServer is the emulated database tier.
type MySQLServer struct {
	cfg     MySQLConfig
	ln      *vnet.Listener
	queries atomic.Uint64

	// costOverride, when non-zero, replaces cfg.DefaultCost at runtime —
	// the §7 bug-injection knob (a suddenly slow database) flipped while
	// request handlers are reading costs concurrently.
	costOverride atomic.Int64

	logMu sync.Mutex
}

// StartMySQL launches a mini-MySQL server on the host.
func StartMySQL(net *vnet.Network, host *topology.Host, cfg MySQLConfig) (*MySQLServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 3306
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting mysql on %s: %w", host.Name, err)
	}
	s := &MySQLServer{cfg: cfg, ln: ln}
	go ln.Serve(s.handle)
	return s, nil
}

// Stop shuts the listener down.
func (s *MySQLServer) Stop() { s.ln.Close() }

// Queries returns the number of queries served.
func (s *MySQLServer) Queries() uint64 { return s.queries.Load() }

func (s *MySQLServer) handle(c *vnet.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		// A message may carry several pipelined frames.
		for len(msg) > 0 {
			frame, n, err := proto.ParseMySQLFrame(msg)
			if err != nil {
				return
			}
			msg = msg[n:]
			if frame.Command != proto.MySQLComQuery {
				continue
			}
			sql := string(frame.Body)
			cost := s.cost(sql)
			if s.cfg.QueryLog != nil {
				s.logMu.Lock()
				fmt.Fprintf(s.cfg.QueryLog, "%d Query\t%s\n", time.Now().UnixNano(), sql)
				s.logMu.Unlock()
				over := s.cfg.LogOverhead
				if over == 0 {
					over = cost / 4
				}
				cost += over
			}
			if cost > 0 {
				time.Sleep(cost)
			}
			s.queries.Add(1)
			if err := c.Send(proto.BuildMySQLOK(frame.Seq+1, []byte("rows"))); err != nil {
				return
			}
		}
	}
}

// SetDefaultCost overrides the per-query execution time at runtime (0
// restores the configured default). Safe to call while queries are in
// flight.
func (s *MySQLServer) SetDefaultCost(d time.Duration) {
	s.costOverride.Store(int64(d))
}

func (s *MySQLServer) cost(sql string) time.Duration {
	for substr, cost := range s.cfg.Costs {
		if strings.Contains(sql, substr) {
			return cost
		}
	}
	if over := s.costOverride.Load(); over > 0 {
		return time.Duration(over)
	}
	return s.cfg.DefaultCost
}

// MySQLClient issues queries over one shared connection — the situation that
// hides per-query times from connection-level monitoring (§7.2, Fig. 15).
type MySQLClient struct {
	conn *vnet.Conn
	seq  uint8
}

// DialMySQL connects a client host to a mini-MySQL server.
func DialMySQL(net *vnet.Network, from *topology.Host, server *topology.Host, port uint16) (*MySQLClient, error) {
	if port == 0 {
		port = 3306
	}
	conn, err := net.Endpoint(from).Dial(server.Addr, port)
	if err != nil {
		return nil, fmt.Errorf("apps: dialing mysql: %w", err)
	}
	return &MySQLClient{conn: conn}, nil
}

// Query executes one SQL statement and waits for its response.
func (c *MySQLClient) Query(sql string, timeout time.Duration) error {
	c.seq += 2
	resp, err := c.conn.Request(proto.BuildMySQLQuery(c.seq, sql), timeout)
	if err != nil {
		return fmt.Errorf("apps: mysql query: %w", err)
	}
	frame, _, err := proto.ParseMySQLFrame(resp)
	if err != nil {
		return fmt.Errorf("apps: mysql response: %w", err)
	}
	if frame.Command == proto.MySQLComErr {
		return fmt.Errorf("apps: mysql error: %s", frame.Body)
	}
	return nil
}

// Close terminates the connection.
func (c *MySQLClient) Close() error { return c.conn.Close() }

// MemcachedConfig parameterizes a memcached server.
type MemcachedConfig struct {
	// Port to listen on (default 11211).
	Port uint16
	// Cost is the simulated per-get latency.
	Cost time.Duration
	// ValueSize is the size of returned values (default 64 bytes).
	ValueSize int
}

// MemcachedServer is the emulated cache tier.
type MemcachedServer struct {
	cfg  MemcachedConfig
	ln   *vnet.Listener
	gets atomic.Uint64
}

// StartMemcached launches a memcached server on the host.
func StartMemcached(net *vnet.Network, host *topology.Host, cfg MemcachedConfig) (*MemcachedServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 11211
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting memcached on %s: %w", host.Name, err)
	}
	s := &MemcachedServer{cfg: cfg, ln: ln}
	go ln.Serve(s.handle)
	return s, nil
}

// Stop shuts the listener down.
func (s *MemcachedServer) Stop() { s.ln.Close() }

// Gets returns the number of get commands served.
func (s *MemcachedServer) Gets() uint64 { return s.gets.Load() }

func (s *MemcachedServer) handle(c *vnet.Conn) {
	defer c.Close()
	value := make([]byte, s.cfg.ValueSize)
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		key, err := proto.ParseMemcachedGet(msg)
		if err != nil {
			return
		}
		if s.cfg.Cost > 0 {
			time.Sleep(s.cfg.Cost)
		}
		s.gets.Add(1)
		if err := c.Send(proto.BuildMemcachedValue(key, value)); err != nil {
			return
		}
	}
}
