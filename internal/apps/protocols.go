package apps

// The protocol-breadth application tier: a mini-Redis server, an
// authoritative DNS server with a matching stub resolver, and a TLS
// front-end that completes a ClientHello/ServerHello exchange. Like the
// MySQL and memcached servers they speak the real wire encodings of
// internal/proto over internal/vnet, so the resp_command, dns_query and
// tls_sni parsers observe genuine traffic end to end.

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/proto"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

// RedisConfig parameterizes a mini-Redis server.
type RedisConfig struct {
	// Port to listen on (default 6379).
	Port uint16
	// Cost is the simulated per-command execution time.
	Cost time.Duration
}

// RedisServer is the emulated key-value tier. It implements GET, SET, DEL
// and PING over RESP, enough for command-mix and latency monitoring.
type RedisServer struct {
	cfg      RedisConfig
	ln       *vnet.Listener
	commands atomic.Uint64

	mu    sync.Mutex
	store map[string]string
}

// StartRedis launches a mini-Redis server on the host.
func StartRedis(net *vnet.Network, host *topology.Host, cfg RedisConfig) (*RedisServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 6379
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting redis on %s: %w", host.Name, err)
	}
	s := &RedisServer{cfg: cfg, ln: ln, store: make(map[string]string)}
	go ln.Serve(s.handle)
	return s, nil
}

// Stop shuts the listener down.
func (s *RedisServer) Stop() { s.ln.Close() }

// Commands returns the number of commands served.
func (s *RedisServer) Commands() uint64 { return s.commands.Load() }

func (s *RedisServer) handle(c *vnet.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		// A message may carry several pipelined commands; each gets its own
		// reply, in order.
		var replies []byte
		for len(msg) > 0 {
			args, n, err := proto.ParseRESPCommand(msg)
			if err != nil {
				return
			}
			msg = msg[n:]
			if s.cfg.Cost > 0 {
				time.Sleep(s.cfg.Cost)
			}
			replies = append(replies, s.execute(args)...)
			s.commands.Add(1)
		}
		if len(replies) > 0 {
			if err := c.Send(replies); err != nil {
				return
			}
		}
	}
}

func (s *RedisServer) execute(args []string) []byte {
	cmd := strings.ToUpper(args[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case cmd == "PING":
		return proto.BuildRESPSimple("PONG")
	case cmd == "GET" && len(args) == 2:
		if v, ok := s.store[args[1]]; ok {
			return proto.BuildRESPBulk([]byte(v))
		}
		return proto.BuildRESPBulk(nil)
	case cmd == "SET" && len(args) == 3:
		s.store[args[1]] = args[2]
		return proto.BuildRESPSimple("OK")
	case cmd == "DEL" && len(args) >= 2:
		n := 0
		for _, key := range args[1:] {
			if _, ok := s.store[key]; ok {
				delete(s.store, key)
				n++
			}
		}
		return proto.BuildRESPInteger(int64(n))
	default:
		return proto.BuildRESPError("ERR unknown command '" + args[0] + "'")
	}
}

// RedisClient issues commands over one shared connection, the way real
// clients pool connections — per-command latency is only visible to payload
// inspection, not connection timing.
type RedisClient struct {
	conn *vnet.Conn
}

// DialRedis connects a client host to a mini-Redis server.
func DialRedis(net *vnet.Network, from *topology.Host, server *topology.Host, port uint16) (*RedisClient, error) {
	if port == 0 {
		port = 6379
	}
	conn, err := net.Endpoint(from).Dial(server.Addr, port)
	if err != nil {
		return nil, fmt.Errorf("apps: dialing redis: %w", err)
	}
	return &RedisClient{conn: conn}, nil
}

// Do executes one command and returns the server's reply.
func (c *RedisClient) Do(timeout time.Duration, args ...string) (proto.RESPReply, error) {
	resp, err := c.conn.Request(proto.BuildRESPCommand(args...), timeout)
	if err != nil {
		return proto.RESPReply{}, fmt.Errorf("apps: redis %s: %w", args[0], err)
	}
	reply, _, err := proto.ParseRESPReply(resp)
	if err != nil {
		return proto.RESPReply{}, fmt.Errorf("apps: redis reply: %w", err)
	}
	return reply, nil
}

// Close terminates the connection.
func (c *RedisClient) Close() error { return c.conn.Close() }

// DNSConfig parameterizes an authoritative DNS server.
type DNSConfig struct {
	// Port to listen on (default 53).
	Port uint16
	// Zone maps fully-qualified names to their addresses; names outside the
	// zone resolve to NXDOMAIN.
	Zone map[string][]netip.Addr
}

// DNSServer answers A/AAAA queries for its zone over UDP.
type DNSServer struct {
	cfg      DNSConfig
	ep       *vnet.Endpoint
	queries  atomic.Uint64
	nxdomain atomic.Uint64
}

// StartDNS launches a DNS server on the host.
func StartDNS(net *vnet.Network, host *topology.Host, cfg DNSConfig) (*DNSServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 53
	}
	s := &DNSServer{cfg: cfg, ep: net.Endpoint(host)}
	if err := s.ep.HandleDatagram(cfg.Port, s.handle); err != nil {
		return nil, fmt.Errorf("apps: starting dns on %s: %w", host.Name, err)
	}
	return s, nil
}

// Stop unregisters the UDP handler.
func (s *DNSServer) Stop() { s.ep.StopDatagram(s.cfg.Port) }

// Queries returns the number of queries answered.
func (s *DNSServer) Queries() uint64 { return s.queries.Load() }

// NXDomains returns how many of them were answered NXDOMAIN.
func (s *DNSServer) NXDomains() uint64 { return s.nxdomain.Load() }

func (s *DNSServer) handle(src netip.Addr, srcPort uint16, payload []byte) {
	m, err := proto.ParseDNS(payload)
	if err != nil || m.Response {
		return
	}
	s.queries.Add(1)
	addrs := s.cfg.Zone[m.Question.Name]
	rcode := uint8(proto.DNSRCodeNoError)
	if len(addrs) == 0 {
		rcode = proto.DNSRCodeNXDomain
		s.nxdomain.Add(1)
	}
	resp := proto.BuildDNSResponse(m.ID, m.Question.Name, m.Question.Type, rcode, addrs)
	_ = s.ep.SendDatagram(src, s.cfg.Port, srcPort, resp)
}

// dnsResolverPort hands each resolver its own UDP client port, clear of the
// TCP ephemeral range the endpoints use.
var dnsResolverPort atomic.Uint32

// DNSResolver is a stub resolver bound to one UDP client port; concurrent
// queries are matched to responses by DNS transaction ID.
type DNSResolver struct {
	ep     *vnet.Endpoint
	server netip.Addr
	port   uint16 // server port
	local  uint16 // our client port
	nextID atomic.Uint32

	mu      sync.Mutex
	waiters map[uint16]chan proto.DNSMessage
}

// NewDNSResolver binds a resolver on the client host pointed at a DNS server.
func NewDNSResolver(net *vnet.Network, from *topology.Host, server *topology.Host, port uint16) (*DNSResolver, error) {
	if port == 0 {
		port = 53
	}
	local := uint16(33000 + dnsResolverPort.Add(1)%16000)
	r := &DNSResolver{
		ep:      net.Endpoint(from),
		server:  server.Addr,
		port:    port,
		local:   local,
		waiters: make(map[uint16]chan proto.DNSMessage),
	}
	if err := r.ep.HandleDatagram(local, r.handle); err != nil {
		return nil, fmt.Errorf("apps: binding resolver: %w", err)
	}
	return r, nil
}

// Close unregisters the resolver's UDP port.
func (r *DNSResolver) Close() { r.ep.StopDatagram(r.local) }

func (r *DNSResolver) handle(src netip.Addr, srcPort uint16, payload []byte) {
	m, err := proto.ParseDNS(payload)
	if err != nil || !m.Response {
		return
	}
	r.mu.Lock()
	ch, ok := r.waiters[m.ID]
	if ok {
		delete(r.waiters, m.ID)
	}
	r.mu.Unlock()
	if ok {
		// Buffered; never blocks the sender's goroutine.
		ch <- m
	}
}

// Resolve queries the server and waits for the matching response. The
// returned message's RCode distinguishes NOERROR from NXDOMAIN and friends.
func (r *DNSResolver) Resolve(name string, qtype uint16, timeout time.Duration) (proto.DNSMessage, error) {
	id := uint16(r.nextID.Add(1))
	ch := make(chan proto.DNSMessage, 1)
	r.mu.Lock()
	r.waiters[id] = ch
	r.mu.Unlock()
	if err := r.ep.SendDatagram(r.server, r.local, r.port, proto.BuildDNSQuery(id, name, qtype)); err != nil {
		r.abandon(id)
		return proto.DNSMessage{}, fmt.Errorf("apps: dns query: %w", err)
	}
	select {
	case m := <-ch:
		return m, nil
	case <-time.After(timeout):
		r.abandon(id)
		return proto.DNSMessage{}, fmt.Errorf("apps: dns query %q: timeout", name)
	}
}

func (r *DNSResolver) abandon(id uint16) {
	r.mu.Lock()
	delete(r.waiters, id)
	r.mu.Unlock()
}

// TLSConfig parameterizes a TLS front-end.
type TLSConfig struct {
	// Port to listen on (default 443).
	Port uint16
	// Cost is the simulated per-request handling time.
	Cost time.Duration
}

// TLSServer terminates emulated TLS sessions: it answers ClientHellos with a
// ServerHello and echoes application data records. Per-SNI connection counts
// mirror what the tls_sni parser extracts from the same traffic.
type TLSServer struct {
	cfg TLSConfig
	ln  *vnet.Listener

	mu   sync.Mutex
	snis map[string]uint64
}

// StartTLS launches a TLS front-end on the host.
func StartTLS(net *vnet.Network, host *topology.Host, cfg TLSConfig) (*TLSServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 443
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting tls on %s: %w", host.Name, err)
	}
	s := &TLSServer{cfg: cfg, ln: ln, snis: make(map[string]uint64)}
	go ln.Serve(s.handle)
	return s, nil
}

// Stop shuts the listener down.
func (s *TLSServer) Stop() { s.ln.Close() }

// SNICounts returns a copy of the per-SNI connection counts.
func (s *TLSServer) SNICounts() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.snis))
	for k, v := range s.snis {
		out[k] = v
	}
	return out
}

func (s *TLSServer) handle(c *vnet.Conn) {
	defer c.Close()
	hello, err := c.Recv(serverRecvTimeout)
	if err != nil {
		return
	}
	ch, err := proto.ParseTLSClientHello(hello)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.snis[ch.SNI]++
	s.mu.Unlock()
	if err := c.Send(proto.BuildTLSServerHello()); err != nil {
		return
	}
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		if s.cfg.Cost > 0 {
			time.Sleep(s.cfg.Cost)
		}
		if err := c.Send(proto.BuildTLSAppData(msg)); err != nil {
			return
		}
	}
}

// TLSConn is a client-side emulated TLS session.
type TLSConn struct {
	conn *vnet.Conn
}

// DialTLS connects to a TLS front-end and completes the hello exchange,
// offering the given SNI.
func DialTLS(net *vnet.Network, from *topology.Host, server *topology.Host, port uint16, sni string) (*TLSConn, error) {
	if port == 0 {
		port = 443
	}
	conn, err := net.Endpoint(from).Dial(server.Addr, port)
	if err != nil {
		return nil, fmt.Errorf("apps: dialing tls: %w", err)
	}
	resp, err := conn.Request(proto.BuildTLSClientHello(sni), serverRecvTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("apps: tls handshake: %w", err)
	}
	if _, err := proto.ParseTLSServerHello(resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("apps: tls handshake: %w", err)
	}
	return &TLSConn{conn: conn}, nil
}

// Request sends one application-data record and waits for the echoed reply.
func (c *TLSConn) Request(payload []byte, timeout time.Duration) ([]byte, error) {
	resp, err := c.conn.Request(proto.BuildTLSAppData(payload), timeout)
	if err != nil {
		return nil, fmt.Errorf("apps: tls request: %w", err)
	}
	return resp, nil
}

// Close terminates the session.
func (c *TLSConn) Close() error { return c.conn.Close() }
