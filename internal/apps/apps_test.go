package apps

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"netalytics/internal/sdn"
	"netalytics/internal/stream"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

func testNet(t *testing.T) (*vnet.Network, []*topology.Host) {
	t.Helper()
	ft := topology.MustNew(4)
	return vnet.New(ft, sdn.NewController()), ft.Hosts()
}

func TestMySQLServerQueryRoundTrip(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartMySQL(net, hosts[0], MySQLConfig{DefaultCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cli, err := DialMySQL(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	if err := cli.Query("SELECT 1", time.Second); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("query returned in %v, cost not applied", elapsed)
	}
	if srv.Queries() != 1 {
		t.Errorf("Queries = %d", srv.Queries())
	}
}

func TestMySQLSharedConnectionMultipleQueries(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartMySQL(net, hosts[0], MySQLConfig{
		Costs: map[string]time.Duration{"slow": 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cli, err := DialMySQL(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for _, sql := range []string{"SELECT fast", "SELECT slow_thing", "SELECT fast2"} {
		if err := cli.Query(sql, time.Second); err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
	}
	if srv.Queries() != 3 {
		t.Errorf("Queries = %d, want 3", srv.Queries())
	}
}

func TestMySQLQueryLogWritesAndSlowsDown(t *testing.T) {
	net, hosts := testNet(t)
	var log strings.Builder
	var logMu sync.Mutex
	safeLog := writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return log.Write(p)
	})
	srv, err := StartMySQL(net, hosts[0], MySQLConfig{
		DefaultCost: 2 * time.Millisecond,
		QueryLog:    safeLog,
		LogOverhead: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cli, err := DialMySQL(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if err := cli.Query("SELECT logged", time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("logged query took %v, want >= cost+overhead", elapsed)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(log.String(), "SELECT logged") {
		t.Errorf("query log = %q", log.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestMemcachedServer(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartMemcached(net, hosts[0], MemcachedConfig{ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, err := net.Endpoint(hosts[1]).Dial(hosts[0].Addr, 11211)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Request([]byte("get user:9\r\n"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "VALUE user:9 0 32") {
		t.Errorf("resp = %q", resp)
	}
	if srv.Gets() != 1 {
		t.Errorf("Gets = %d", srv.Gets())
	}
}

func TestAppServerRoutesAndBackends(t *testing.T) {
	net, hosts := testNet(t)
	db, err := StartMySQL(net, hosts[0], MySQLConfig{DefaultCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Stop()
	cache, err := StartMemcached(net, hosts[1], MemcachedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Stop()

	app, err := StartApp(net, hosts[2], AppConfig{
		Routes: map[string]Route{
			"/db":     {Backend: BackendMySQL, BackendHost: hosts[0], Query: "SELECT x"},
			"/cache":  {Backend: BackendMemcached, BackendHost: hosts[1], Query: "k"},
			"/static": {Cost: time.Millisecond},
			"/broken": {Backend: BackendMySQL, BackendHost: hosts[0], Query: "SELECT y", Broken: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	client := hosts[4]
	res := RunHTTPLoad(net, client, LoadConfig{
		Requests: 4, Target: app.Host(),
		URL: func(i int) string {
			return []string{"/db", "/cache", "/static", "/broken"}[i]
		},
	})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if db.Queries() != 1 {
		t.Errorf("db queries = %d, want 1 (broken route must skip the DB)", db.Queries())
	}
	if cache.Gets() != 1 {
		t.Errorf("cache gets = %d, want 1", cache.Gets())
	}
	if app.Requests() != 4 {
		t.Errorf("app requests = %d", app.Requests())
	}
}

func TestAppServerHTTPBackendChain(t *testing.T) {
	// frontend -> middle -> mysql: a microservice chain over BackendHTTP.
	net, hosts := testNet(t)
	db, err := StartMySQL(net, hosts[0], MySQLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Stop()
	middle, err := StartApp(net, hosts[1], AppConfig{Routes: map[string]Route{
		"/inner": {Backend: BackendMySQL, BackendHost: hosts[0], Query: "SELECT 1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer middle.Stop()
	front, err := StartApp(net, hosts[2], AppConfig{Routes: map[string]Route{
		"/outer": {Calls: []BackendCall{
			{Kind: BackendHTTP, Host: hosts[1], Query: "/inner"},
			{Kind: BackendHTTP, Host: hosts[1], Query: "/inner"},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Stop()

	res := RunHTTPLoad(net, hosts[4], LoadConfig{
		Requests: 3, Target: front.Host(), URL: func(int) string { return "/outer" },
	})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if got := middle.Requests(); got != 6 {
		t.Errorf("middle requests = %d, want 6 (two calls per request)", got)
	}
	if got := db.Queries(); got != 6 {
		t.Errorf("db queries = %d, want 6", got)
	}
}

func TestAppServerHTTPBackendPropagatesFailure(t *testing.T) {
	net, hosts := testNet(t)
	// Middle returns 404 for the URL the frontend asks for.
	middle, err := StartApp(net, hosts[1], AppConfig{Routes: map[string]Route{"/known": {}}})
	if err != nil {
		t.Fatal(err)
	}
	defer middle.Stop()
	front, err := StartApp(net, hosts[2], AppConfig{Routes: map[string]Route{
		"/outer": {Calls: []BackendCall{{Kind: BackendHTTP, Host: hosts[1], Query: "/missing"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Stop()

	res := RunHTTPLoad(net, hosts[4], LoadConfig{
		Requests: 1, Target: front.Host(), URL: func(int) string { return "/outer" },
	})
	if res.Errors != 1 {
		t.Errorf("errors = %d, want 1 (502 from broken downstream)", res.Errors)
	}
}

func TestAppServer404(t *testing.T) {
	net, hosts := testNet(t)
	app, err := StartApp(net, hosts[0], AppConfig{Routes: map[string]Route{"/known": {}}})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	res := RunHTTPLoad(net, hosts[1], LoadConfig{
		Requests: 1, Target: app.Host(), URL: func(int) string { return "/unknown" },
	})
	if res.Errors != 1 {
		t.Errorf("errors = %d, want 1 (404 is a failed request)", res.Errors)
	}
}

func TestKVStore(t *testing.T) {
	kv := NewKVStore()
	if _, ok := kv.Get("missing"); ok {
		t.Error("missing key found")
	}
	rev := kv.Revision()
	kv.Set("a", "1")
	if v, ok := kv.Get("a"); !ok || v != "1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if kv.Revision() == rev {
		t.Error("revision not bumped")
	}
	kv.SetPool([]string{"h1", "h2"})
	if got := kv.Pool(); len(got) != 2 || got[0] != "h1" {
		t.Errorf("Pool = %v", got)
	}
	kv.SetPool(nil)
	if got := kv.Pool(); got != nil {
		t.Errorf("empty Pool = %v", got)
	}
}

func TestProxyRoundRobinAndDynamicPool(t *testing.T) {
	net, hosts := testNet(t)
	routes := map[string]Route{"/": {}}
	app1, err := StartApp(net, hosts[0], AppConfig{Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	defer app1.Stop()
	app2, err := StartApp(net, hosts[1], AppConfig{Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	defer app2.Stop()

	kv := NewKVStore()
	kv.SetPool([]string{hosts[0].Name})
	proxy, err := StartProxy(net, hosts[2], ProxyConfig{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Stop()

	client := hosts[4]
	res := RunHTTPLoad(net, client, LoadConfig{Requests: 4, Target: hosts[2], URL: func(int) string { return "/x" }})
	if res.Errors != 0 {
		t.Fatalf("phase 1 errors = %d", res.Errors)
	}
	if got := proxy.PerHost()[hosts[0].Name]; got != 4 {
		t.Errorf("app1 got %d requests, want 4", got)
	}

	// Grow the pool: traffic must now split across both servers.
	kv.SetPool([]string{hosts[0].Name, hosts[1].Name})
	res = RunHTTPLoad(net, client, LoadConfig{Requests: 10, Target: hosts[2], URL: func(int) string { return "/x" }})
	if res.Errors != 0 {
		t.Fatalf("phase 2 errors = %d", res.Errors)
	}
	per := proxy.PerHost()
	if per[hosts[1].Name] == 0 {
		t.Errorf("app2 received no traffic after pool grow: %v", per)
	}
}

func TestProxyEmptyPool(t *testing.T) {
	net, hosts := testNet(t)
	kv := NewKVStore()
	proxy, err := StartProxy(net, hosts[0], ProxyConfig{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Stop()
	res := RunHTTPLoad(net, hosts[1], LoadConfig{Requests: 1, Target: hosts[0]})
	if res.Errors != 1 {
		t.Errorf("errors = %d, want 1 (503)", res.Errors)
	}
	if proxy.Errors() != 1 {
		t.Errorf("proxy errors = %d", proxy.Errors())
	}
}

func TestProxyNeedsStore(t *testing.T) {
	net, hosts := testNet(t)
	if _, err := StartProxy(net, hosts[0], ProxyConfig{}); err == nil {
		t.Error("proxy without store accepted")
	}
}

func TestLoadConcurrency(t *testing.T) {
	net, hosts := testNet(t)
	app, err := StartApp(net, hosts[0], AppConfig{Routes: map[string]Route{"/": {Cost: 2 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	start := time.Now()
	res := RunHTTPLoad(net, hosts[1], LoadConfig{Requests: 20, Concurrency: 10, Target: app.Host()})
	elapsed := time.Since(start)
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Latencies.Len() != 20 {
		t.Errorf("latencies = %d", res.Latencies.Len())
	}
	// Sequential would be >= 40ms; concurrent should be well under.
	if elapsed > 35*time.Millisecond {
		t.Errorf("20 requests at concurrency 10 took %v", elapsed)
	}
}

func TestLoadExpGap(t *testing.T) {
	net, hosts := testNet(t)
	app, err := StartApp(net, hosts[0], AppConfig{Routes: map[string]Route{"/": {}}})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	start := time.Now()
	res := RunHTTPLoad(net, hosts[1], LoadConfig{
		Requests: 20, Target: app.Host(),
		Gap: 3 * time.Millisecond, ExpGap: true,
	})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// Mean gap 3ms over 20 requests: the run must take noticeable time but
	// not the worst case of a fixed-gap run many times over.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("exp-gap run finished in %v; gaps not applied", elapsed)
	}
}

func TestAutoscaler(t *testing.T) {
	kv := NewKVStore()
	now := time.Unix(0, 0)
	var replicated []string
	a := NewAutoscaler(AutoscalerConfig{
		Store:          kv,
		AllServers:     []string{"s1", "s2", "s3"},
		MinServers:     1,
		UpperThreshold: 100,
		LowerThreshold: 10,
		Backoff:        time.Second,
		Replicate:      func(s string, _ []stream.RankEntry) { replicated = append(replicated, s) },
		Now:            func() time.Time { return now },
	})
	if a.Active() != 1 || len(kv.Pool()) != 1 {
		t.Fatalf("initial pool = %v", kv.Pool())
	}

	hot := []stream.RankEntry{{Key: "/v1", Count: 500}}
	now = now.Add(2 * time.Second)
	a.OnRankings(hot)
	if a.Active() != 2 {
		t.Fatalf("after surge: active = %d, want 2", a.Active())
	}
	if len(replicated) != 1 || replicated[0] != "s2" {
		t.Errorf("replicated = %v", replicated)
	}

	// Backoff: an immediate second surge is ignored.
	a.OnRankings(hot)
	if a.Active() != 2 {
		t.Errorf("backoff violated: active = %d", a.Active())
	}
	// After backoff, scale again.
	now = now.Add(2 * time.Second)
	a.OnRankings(hot)
	if a.Active() != 3 {
		t.Errorf("second scale-up failed: active = %d", a.Active())
	}
	// Pool is capped at AllServers.
	now = now.Add(2 * time.Second)
	a.OnRankings(hot)
	if a.Active() != 3 {
		t.Errorf("scaled past cap: active = %d", a.Active())
	}

	// Cool down: scale back to the floor.
	cold := []stream.RankEntry{{Key: "/v1", Count: 1}}
	for i := 0; i < 5; i++ {
		now = now.Add(2 * time.Second)
		a.OnRankings(cold)
	}
	if a.Active() != 1 {
		t.Errorf("after cooldown: active = %d, want 1", a.Active())
	}
	if len(a.Actions()) != 5 { // 2 up + ... wait: 2 up, then cap no-op, then 2 down
		// 2 scale-ups + 2 scale-downs = 4 actions
		t.Logf("actions = %+v", a.Actions())
	}
	actions := a.Actions()
	if len(actions) != 4 {
		t.Errorf("actions = %d, want 4", len(actions))
	}
	// Empty rankings are ignored.
	a.OnRankings(nil)
}

func TestMySQLThroughputLogOverheadShape(t *testing.T) {
	// §7.2's comparison: enabling the query log costs ~20 % throughput.
	net, hosts := testNet(t)
	measure := func(logger io.Writer) float64 {
		cfg := MySQLConfig{DefaultCost: 4 * time.Millisecond, QueryLog: logger}
		srv, err := StartMySQL(net, hosts[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		cli, err := DialMySQL(net, hosts[1], hosts[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		const n = 50
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := cli.Query("SELECT 1", time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return n / time.Since(start).Seconds()
	}
	off := measure(nil)
	on := measure(io.Discard)
	drop := (off - on) / off
	if drop < 0.05 {
		t.Errorf("query log dropped throughput by %.1f%%, want noticeable overhead (~20%%)", drop*100)
	}
	if on >= off {
		t.Errorf("logged throughput %f >= unlogged %f", on, off)
	}
}
