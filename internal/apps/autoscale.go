package apps

import (
	"sync"
	"time"

	"netalytics/internal/stream"
)

// AutoscalerConfig parameterizes the §7.3 Updater: it watches the top-k
// rankings NetAlytics produces and grows or shrinks the proxy's backend pool
// when content popularity crosses thresholds, backing off between actions to
// avoid oscillation.
type AutoscalerConfig struct {
	// Store is the KV store holding the proxy pool; required.
	Store *KVStore
	// AllServers is the ordered server pool to grow into; the first
	// MinServers entries are always active.
	AllServers []string
	// MinServers is the floor of active servers (default 1).
	MinServers int
	// UpperThreshold adds a server when the top item's frequency exceeds it.
	UpperThreshold float64
	// LowerThreshold removes a server when the top frequency falls below it.
	LowerThreshold float64
	// Backoff is the minimum time between scaling actions (default 2s).
	Backoff time.Duration
	// Replicate, when non-nil, is invoked with the server name and the
	// current top-k before the server joins the pool — content replication.
	Replicate func(server string, top []stream.RankEntry)
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Autoscaler consumes rankings (wire it as the top-k topology's database
// bolt) and adjusts the active server pool.
type Autoscaler struct {
	cfg AutoscalerConfig

	mu         sync.Mutex
	active     int
	lastAction time.Time
	actions    []ScaleAction
}

// ScaleAction records one pool change for inspection.
type ScaleAction struct {
	Time    time.Time
	Up      bool
	Servers int // active servers after the action
	TopFreq float64
}

// NewAutoscaler creates the updater and initializes the pool to MinServers.
func NewAutoscaler(cfg AutoscalerConfig) *Autoscaler {
	if cfg.MinServers < 1 {
		cfg.MinServers = 1
	}
	if cfg.MinServers > len(cfg.AllServers) {
		cfg.MinServers = len(cfg.AllServers)
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	a := &Autoscaler{cfg: cfg, active: cfg.MinServers}
	cfg.Store.SetPool(cfg.AllServers[:a.active])
	return a
}

// Active returns the current number of active servers.
func (a *Autoscaler) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Actions returns the scaling history.
func (a *Autoscaler) Actions() []ScaleAction {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ScaleAction(nil), a.actions...)
}

// OnRankings feeds one top-k result into the updater; wire it via
// stream.NewDatabaseBolt(a.OnRankings).
func (a *Autoscaler) OnRankings(top []stream.RankEntry) {
	if len(top) == 0 {
		return
	}
	topFreq := top[0].Count

	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Now()
	if now.Sub(a.lastAction) < a.cfg.Backoff {
		return
	}
	switch {
	case topFreq > a.cfg.UpperThreshold && a.active < len(a.cfg.AllServers):
		server := a.cfg.AllServers[a.active]
		if a.cfg.Replicate != nil {
			a.cfg.Replicate(server, top)
		}
		a.active++
		a.cfg.Store.SetPool(a.cfg.AllServers[:a.active])
		a.lastAction = now
		a.actions = append(a.actions, ScaleAction{Time: now, Up: true, Servers: a.active, TopFreq: topFreq})
	case topFreq < a.cfg.LowerThreshold && a.active > a.cfg.MinServers:
		a.active--
		a.cfg.Store.SetPool(a.cfg.AllServers[:a.active])
		a.lastAction = now
		a.actions = append(a.actions, ScaleAction{Time: now, Up: false, Servers: a.active, TopFreq: topFreq})
	}
}
