package apps

import (
	"math/rand"
	"sync"
	"time"

	"netalytics/internal/metrics"
	"netalytics/internal/proto"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

// LoadConfig parameterizes a closed-loop HTTP load run.
type LoadConfig struct {
	// Requests is the total request count.
	Requests int
	// Concurrency is the number of parallel workers (default 1).
	Concurrency int
	// URL supplies the URL of the i-th request.
	URL func(i int) string
	// Target is the server (proxy or app) host and port.
	Target *topology.Host
	Port   uint16
	// Timeout per request (default 5s).
	Timeout time.Duration
	// Gap, when non-zero, sleeps between requests per worker, giving an
	// open-ish arrival rate.
	Gap time.Duration
	// ExpGap draws each gap from an exponential distribution with mean
	// Gap — Poisson-like arrivals instead of a fixed pace.
	ExpGap bool
	// Rand seeds the exponential gaps (default: a fixed-seed source).
	Rand *rand.Rand
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Latencies holds per-request response times in milliseconds.
	Latencies *metrics.Series
	// Errors counts failed requests.
	Errors int
}

// RunHTTPLoad issues closed-loop HTTP GETs from a client host, one
// connection per request so connection-time parsers observe request
// latencies — the access pattern of the §7.1/§7.3 experiments.
func RunHTTPLoad(net *vnet.Network, from *topology.Host, cfg LoadConfig) *LoadResult {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.URL == nil {
		cfg.URL = func(int) string { return "/" }
	}

	result := &LoadResult{Latencies: &metrics.Series{}}
	var errMu sync.Mutex
	ep := net.Endpoint(from)

	var gapMu sync.Mutex
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	nextGap := func() time.Duration {
		if cfg.Gap <= 0 {
			return 0
		}
		if !cfg.ExpGap {
			return cfg.Gap
		}
		gapMu.Lock()
		defer gapMu.Unlock()
		return time.Duration(rng.ExpFloat64() * float64(cfg.Gap))
	}

	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				ok := doRequest(ep, cfg.Target, cfg.Port, cfg.URL(i), cfg.Timeout)
				elapsed := time.Since(start)
				if ok {
					result.Latencies.Add(float64(elapsed.Nanoseconds()) / 1e6)
				} else {
					errMu.Lock()
					result.Errors++
					errMu.Unlock()
				}
				if gap := nextGap(); gap > 0 {
					time.Sleep(gap)
				}
			}
		}()
	}
	wg.Wait()
	return result
}

func doRequest(ep *vnet.Endpoint, target *topology.Host, port uint16, url string, timeout time.Duration) bool {
	conn, err := ep.Dial(target.Addr, port)
	if err != nil {
		return false
	}
	defer conn.Close()
	respBytes, err := conn.Request(proto.BuildHTTPGet(url, target.Name), timeout)
	if err != nil {
		return false
	}
	resp, err := proto.ParseHTTPResponse(respBytes)
	return err == nil && resp.Status == 200
}
