package apps

import (
	"net/netip"
	"testing"
	"time"

	"netalytics/internal/proto"
)

func TestRedisServerCommands(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartRedis(net, hosts[0], RedisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cli, err := DialRedis(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if r, err := cli.Do(time.Second, "PING"); err != nil || r.Text != "PONG" {
		t.Fatalf("PING = %+v, %v", r, err)
	}
	if r, err := cli.Do(time.Second, "SET", "k", "v"); err != nil || r.Text != "OK" {
		t.Fatalf("SET = %+v, %v", r, err)
	}
	if r, err := cli.Do(time.Second, "GET", "k"); err != nil || r.Text != "v" {
		t.Fatalf("GET = %+v, %v", r, err)
	}
	if r, err := cli.Do(time.Second, "GET", "missing"); err != nil || !r.Nil {
		t.Fatalf("GET missing = %+v, %v, want nil bulk", r, err)
	}
	if r, err := cli.Do(time.Second, "DEL", "k"); err != nil || r.Text != "1" {
		t.Fatalf("DEL = %+v, %v", r, err)
	}
	if r, err := cli.Do(time.Second, "BOGUS"); err != nil || !r.IsError() {
		t.Fatalf("BOGUS = %+v, %v, want error reply", r, err)
	}
	if srv.Commands() != 6 {
		t.Errorf("Commands = %d, want 6", srv.Commands())
	}
}

func TestDNSServerResolvesZone(t *testing.T) {
	net, hosts := testNet(t)
	zone := map[string][]netip.Addr{
		"api.example.com": {netip.MustParseAddr("10.0.9.1")},
	}
	srv, err := StartDNS(net, hosts[0], DNSConfig{Zone: zone})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	r, err := NewDNSResolver(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	m, err := r.Resolve("api.example.com", proto.DNSTypeA, time.Second)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if m.RCode != proto.DNSRCodeNoError || len(m.Addrs) != 1 || m.Addrs[0].String() != "10.0.9.1" {
		t.Fatalf("answer = %+v", m)
	}

	m, err = r.Resolve("nope.example.com", proto.DNSTypeA, time.Second)
	if err != nil {
		t.Fatalf("Resolve miss: %v", err)
	}
	if m.RCode != proto.DNSRCodeNXDomain {
		t.Fatalf("miss rcode = %d, want NXDOMAIN", m.RCode)
	}
	if srv.Queries() != 2 || srv.NXDomains() != 1 {
		t.Errorf("queries = %d nxdomain = %d, want 2/1", srv.Queries(), srv.NXDomains())
	}
}

func TestDNSResolverConcurrentQueries(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartDNS(net, hosts[0], DNSConfig{Zone: map[string][]netip.Addr{
		"a.example.com": {netip.MustParseAddr("10.0.9.1")},
		"b.example.com": {netip.MustParseAddr("10.0.9.2")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	r, err := NewDNSResolver(net, hosts[1], hosts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		name := "a.example.com"
		if i%2 == 1 {
			name = "b.example.com"
		}
		go func(name string) {
			_, err := r.Resolve(name, proto.DNSTypeA, time.Second)
			errs <- err
		}(name)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent resolve: %v", err)
		}
	}
}

func TestDNSStopFreesPort(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartDNS(net, hosts[0], DNSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	srv2, err := StartDNS(net, hosts[0], DNSConfig{})
	if err != nil {
		t.Fatalf("port not freed after Stop: %v", err)
	}
	srv2.Stop()
}

func TestTLSServerCountsSNI(t *testing.T) {
	net, hosts := testNet(t)
	srv, err := StartTLS(net, hosts[0], TLSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	for _, sni := range []string{"shop.example.com", "shop.example.com", "api.example.com"} {
		c, err := DialTLS(net, hosts[1], hosts[0], 0, sni)
		if err != nil {
			t.Fatalf("DialTLS(%s): %v", sni, err)
		}
		resp, err := c.Request([]byte("hello"), time.Second)
		if err != nil {
			t.Fatalf("Request: %v", err)
		}
		if len(resp) == 0 {
			t.Error("empty app-data response")
		}
		c.Close()
	}
	counts := srv.SNICounts()
	if counts["shop.example.com"] != 2 || counts["api.example.com"] != 1 {
		t.Errorf("SNI counts = %v", counts)
	}
}
