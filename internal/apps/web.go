package apps

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/proto"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

// BackendKind selects the tier an app-server route calls into.
type BackendKind int

// Backend kinds.
const (
	BackendNone BackendKind = iota
	BackendMySQL
	BackendMemcached
	// BackendHTTP issues an HTTP GET to another app server — the
	// service-to-service call of a microservice graph.
	BackendHTTP
)

// BackendCall is one downstream call a route performs.
type BackendCall struct {
	Kind BackendKind
	Host *topology.Host
	Port uint16
	// Query is the SQL text (MySQL), key (memcached) or URL path (HTTP).
	Query string
}

// Route describes how an app server handles one URL.
type Route struct {
	// Cost is local compute time before answering.
	Cost time.Duration
	// Backend, when not BackendNone, is called once per request.
	Backend BackendKind
	// BackendHost and BackendPort locate the backend server.
	BackendHost *topology.Host
	BackendPort uint16
	// Query is the SQL text (MySQL) or key (memcached) sent to the backend.
	Query string
	// Calls, when non-empty, is executed in order instead of the single
	// Backend fields — a microservice route fanning out to several
	// downstream services.
	Calls []BackendCall
	// BodySize is the response body size (default 128).
	BodySize int
	// Broken simulates the §7.2 PHP bug: the backend call is silently
	// skipped, so the page returns fast without doing its work.
	Broken bool
}

// AppConfig parameterizes an HTTP application server.
type AppConfig struct {
	// Port to listen on (default 80).
	Port uint16
	// Routes maps URL prefixes to behavior; the longest matching prefix
	// wins. A "/" route acts as the default.
	Routes map[string]Route
	// Timeout bounds each backend call (default 5s).
	Timeout time.Duration
}

// AppServer is an emulated web/application tier server.
type AppServer struct {
	cfg      AppConfig
	net      *vnet.Network
	host     *topology.Host
	ln       *vnet.Listener
	requests atomic.Uint64

	// routes/prefixes are guarded so SetRoute can rewrite behavior (e.g.
	// breaking a page mid-run, §7.2) while handler goroutines match URLs.
	routeMu  sync.RWMutex
	routes   map[string]Route
	prefixes []string // sorted longest-first for matching
}

// StartApp launches an application server on the host.
func StartApp(net *vnet.Network, host *topology.Host, cfg AppConfig) (*AppServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting app on %s: %w", host.Name, err)
	}
	s := &AppServer{cfg: cfg, net: net, host: host, ln: ln, routes: make(map[string]Route, len(cfg.Routes))}
	for p, r := range cfg.Routes {
		s.routes[p] = r
		s.prefixes = append(s.prefixes, p)
	}
	sort.Slice(s.prefixes, func(i, j int) bool { return len(s.prefixes[i]) > len(s.prefixes[j]) })
	go ln.Serve(s.handle)
	return s, nil
}

// SetRoute installs or replaces one route at runtime — the §7 bug-injection
// knob (flipping a page to Broken, raising its cost) while requests are in
// flight.
func (s *AppServer) SetRoute(prefix string, r Route) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if _, exists := s.routes[prefix]; !exists {
		s.prefixes = append(s.prefixes, prefix)
		sort.Slice(s.prefixes, func(i, j int) bool { return len(s.prefixes[i]) > len(s.prefixes[j]) })
	}
	s.routes[prefix] = r
}

// Stop shuts the listener down.
func (s *AppServer) Stop() { s.ln.Close() }

// Host returns the server's topology host.
func (s *AppServer) Host() *topology.Host { return s.host }

// Requests returns the number of requests served.
func (s *AppServer) Requests() uint64 { return s.requests.Load() }

func (s *AppServer) handle(c *vnet.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		req, err := proto.ParseHTTPRequest(msg)
		if err != nil {
			return
		}
		status := s.serveRoute(req.URL)
		bodySize := 128
		if r, ok := s.route(req.URL); ok && r.BodySize > 0 {
			bodySize = r.BodySize
		}
		s.requests.Add(1)
		if err := c.Send(proto.BuildHTTPResponse(status, make([]byte, bodySize))); err != nil {
			return
		}
	}
}

func (s *AppServer) route(url string) (Route, bool) {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	for _, p := range s.prefixes {
		if strings.HasPrefix(url, p) {
			return s.routes[p], true
		}
	}
	return Route{}, false
}

func (s *AppServer) serveRoute(url string) int {
	r, ok := s.route(url)
	if !ok {
		return 404
	}
	if r.Cost > 0 {
		time.Sleep(r.Cost)
	}
	if r.Broken {
		return 200
	}
	calls := r.Calls
	if len(calls) == 0 && r.Backend != BackendNone {
		calls = []BackendCall{{Kind: r.Backend, Host: r.BackendHost, Port: r.BackendPort, Query: r.Query}}
	}
	for _, call := range calls {
		if status := s.doCall(call); status != 200 {
			return status
		}
	}
	return 200
}

// doCall performs one downstream request and maps failures to HTTP statuses.
func (s *AppServer) doCall(call BackendCall) int {
	switch call.Kind {
	case BackendMySQL:
		cli, err := DialMySQL(s.net, s.host, call.Host, call.Port)
		if err != nil {
			return 503
		}
		defer cli.Close()
		if err := cli.Query(call.Query, s.cfg.Timeout); err != nil {
			return 500
		}
	case BackendMemcached:
		port := call.Port
		if port == 0 {
			port = 11211
		}
		conn, err := s.net.Endpoint(s.host).Dial(call.Host.Addr, port)
		if err != nil {
			return 503
		}
		defer conn.Close()
		if _, err := conn.Request(proto.BuildMemcachedGet(call.Query), s.cfg.Timeout); err != nil {
			return 500
		}
	case BackendHTTP:
		port := call.Port
		if port == 0 {
			port = 80
		}
		conn, err := s.net.Endpoint(s.host).Dial(call.Host.Addr, port)
		if err != nil {
			return 503
		}
		defer conn.Close()
		respBytes, err := conn.Request(proto.BuildHTTPGet(call.Query, call.Host.Name), s.cfg.Timeout)
		if err != nil {
			return 500
		}
		resp, err := proto.ParseHTTPResponse(respBytes)
		if err != nil || resp.Status != 200 {
			return 502
		}
	}
	return 200
}

// KVStore is the small in-memory key/value store standing in for Redis: the
// top-k database bolt writes the popular-content list and server pool here,
// and the proxy reads its backend pool from it (§7.3).
type KVStore struct {
	mu       sync.RWMutex
	m        map[string]string
	revision uint64
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{m: make(map[string]string)}
}

// Set stores a value.
func (kv *KVStore) Set(key, value string) {
	kv.mu.Lock()
	kv.m[key] = value
	kv.revision++
	kv.mu.Unlock()
}

// Get fetches a value.
func (kv *KVStore) Get(key string) (string, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.m[key]
	return v, ok
}

// Revision increments on every write; pollers use it to detect changes.
func (kv *KVStore) Revision() uint64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.revision
}

// poolKey is where the proxy's backend pool lives in the KV store.
const poolKey = "proxy/pool"

// SetPool stores the proxy backend pool as host names.
func (kv *KVStore) SetPool(hosts []string) {
	kv.Set(poolKey, strings.Join(hosts, ","))
}

// Pool reads the proxy backend pool.
func (kv *KVStore) Pool() []string {
	v, ok := kv.Get(poolKey)
	if !ok || v == "" {
		return nil
	}
	return strings.Split(v, ",")
}

// ProxyConfig parameterizes the load-balancing proxy.
type ProxyConfig struct {
	// Port to listen on (default 80).
	Port uint16
	// BackendPort is the app servers' port (default 80).
	BackendPort uint16
	// Store supplies the backend pool (host names); required.
	Store *KVStore
	// Timeout bounds each proxied request (default 5s).
	Timeout time.Duration
}

// Proxy is the NGINX-like front end: it forwards each request to a backend
// chosen round-robin from the KV-store pool, re-reading the pool on every
// request so §7.3's dynamic replication takes effect immediately.
type Proxy struct {
	cfg      ProxyConfig
	net      *vnet.Network
	host     *topology.Host
	ln       *vnet.Listener
	rr       atomic.Uint64
	forwards atomic.Uint64
	errors   atomic.Uint64

	mu      sync.Mutex
	perHost map[string]uint64 // forwarded requests per backend host
}

// StartProxy launches the proxy on the host.
func StartProxy(net *vnet.Network, host *topology.Host, cfg ProxyConfig) (*Proxy, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("apps: proxy on %s needs a pool store", host.Name)
	}
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.BackendPort == 0 {
		cfg.BackendPort = 80
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	ln, err := net.Endpoint(host).Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("apps: starting proxy on %s: %w", host.Name, err)
	}
	p := &Proxy{cfg: cfg, net: net, host: host, ln: ln, perHost: make(map[string]uint64)}
	go ln.Serve(p.handle)
	return p, nil
}

// Stop shuts the listener down.
func (p *Proxy) Stop() { p.ln.Close() }

// Forwards returns the number of successfully proxied requests.
func (p *Proxy) Forwards() uint64 { return p.forwards.Load() }

// Errors returns the number of failed proxied requests.
func (p *Proxy) Errors() uint64 { return p.errors.Load() }

// PerHost snapshots forwarded-request counts per backend.
func (p *Proxy) PerHost() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.perHost))
	for k, v := range p.perHost {
		out[k] = v
	}
	return out
}

func (p *Proxy) handle(c *vnet.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(serverRecvTimeout)
		if err != nil {
			return
		}
		resp := p.forward(msg)
		if resp == nil {
			resp = proto.BuildHTTPResponse(503, nil)
			p.errors.Add(1)
		} else {
			p.forwards.Add(1)
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

func (p *Proxy) forward(reqBytes []byte) []byte {
	pool := p.cfg.Store.Pool()
	if len(pool) == 0 {
		return nil
	}
	name := pool[p.rr.Add(1)%uint64(len(pool))]
	backend := p.net.Topology().HostByName(name)
	if backend == nil {
		return nil
	}
	conn, err := p.net.Endpoint(p.host).Dial(backend.Addr, p.cfg.BackendPort)
	if err != nil {
		return nil
	}
	defer conn.Close()
	resp, err := conn.Request(reqBytes, p.cfg.Timeout)
	if err != nil {
		return nil
	}
	p.mu.Lock()
	p.perHost[name]++
	p.mu.Unlock()
	return resp
}
