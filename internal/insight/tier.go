package insight

import (
	"fmt"
	"sync"
	"time"

	"netalytics/internal/mq"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// Tier defaults.
const (
	// DefaultSnapshotPeriod is how often the feeder samples the registry.
	DefaultSnapshotPeriod = time.Second
	// DefaultRingSize is how many recent incidents the tier retains for the
	// /incidents endpoint.
	DefaultRingSize = 256
	// DefaultDetectTasks is the detect bolt's parallelism; series are
	// fields-grouped so each lands deterministically on one task.
	DefaultDetectTasks = 2
)

// Config parameterizes the insight tier.
type Config struct {
	// Registry is the telemetry registry the feeder snapshots (required).
	Registry *telemetry.Registry
	// Cluster, when non-nil, receives every incident on the `_incidents`
	// topic (retain-latest, so a consumerless stream keeps the newest).
	Cluster *mq.Cluster
	// Graph is the service graph the correlator walks. Nil creates an empty
	// one; the engine shares the graph its observation sessions populate.
	Graph *ServiceGraph
	// SnapshotPeriod is the feeder's sampling period (default 1s).
	SnapshotPeriod time.Duration
	// Window is the correlation window: anomalies closer than this merge
	// into one incident. Default 3x SnapshotPeriod, floored at the package
	// default.
	Window time.Duration
	// Cooldown suppresses repeat anomalies per series (default = Window).
	Cooldown time.Duration
	// Detector tunes the per-series detectors (zero values take defaults).
	Detector DetectorConfig
	// MaxSeries caps detector state per detect task (default 4096).
	MaxSeries int
	// MinAnomalies suppresses correlated groups with fewer anomalies at
	// flush time (<= 1 emits everything). A real fault shifts several
	// series at once; gating on group size keeps a lone noisy series from
	// paging.
	MinAnomalies int
	// RingSize bounds the retained incident history (default 256).
	RingSize int
	// Filter, when non-nil, restricts which metric names are observed.
	Filter func(name string) bool
	// OnIncident, when non-nil, is called for every incident (after it is
	// recorded and published). Called from the sink bolt's goroutine.
	OnIncident func(Incident)
}

func (c Config) withDefaults() Config {
	if c.SnapshotPeriod <= 0 {
		c.SnapshotPeriod = DefaultSnapshotPeriod
	}
	if c.Window <= 0 {
		c.Window = 3 * c.SnapshotPeriod
		if c.Window < DefaultCorrelationWindow {
			c.Window = DefaultCorrelationWindow
		}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	return c
}

// Tier is the always-on insight tier: a small stream topology
// (registry feeder -> per-series detectors -> topology-aware correlator ->
// incident sink) running beside the query pipelines on the same executor
// machinery. It keeps a ring of recent incidents for the /incidents
// endpoint and publishes each one to the `_incidents` mq topic.
type Tier struct {
	cfg      Config
	graph    *ServiceGraph
	exec     *stream.Executor
	producer *mq.Producer

	anomalies    *telemetry.Counter // insight_tier_anomalies
	incidents    *telemetry.Counter // insight_tier_incidents
	publishDrops *telemetry.Counter // insight_tier_publish_drops

	mu      sync.Mutex
	ring    []Incident
	total   int
	started bool
	stopped bool
}

// New builds the tier's topology. Start it with Start.
func New(cfg Config) (*Tier, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("insight: Config.Registry is required")
	}
	cfg = cfg.withDefaults()
	t := &Tier{
		cfg:          cfg,
		graph:        cfg.Graph,
		anomalies:    cfg.Registry.Counter("insight_tier_anomalies"),
		incidents:    cfg.Registry.Counter("insight_tier_incidents"),
		publishDrops: cfg.Registry.Counter("insight_tier_publish_drops"),
	}
	if t.graph == nil {
		t.graph = NewServiceGraph(nil)
	}
	if cfg.Cluster != nil {
		// Retain-latest before first use: a consumerless incident topic must
		// keep the newest incidents, not fill once and reject forever.
		cfg.Cluster.SetRetainLatest(IncidentsTopic)
		t.producer = cfg.Cluster.Producer(IncidentsTopic)
	}

	topo := stream.NewTopology("_insight")
	if err := topo.AddSpout("registry", func() stream.Spout {
		return NewFeeder(cfg.Registry, cfg.SnapshotPeriod, cfg.Filter)
	}, 1); err != nil {
		return nil, err
	}
	err := topo.AddBolt("detect", func() stream.Bolt {
		return NewDetectBolt(cfg.Detector, cfg.MaxSeries, cfg.Cooldown)
	}, DefaultDetectTasks).FieldsFrom("registry", "").Err()
	if err != nil {
		return nil, err
	}
	err = topo.AddBolt("correlate", func() stream.Bolt {
		cb := NewCorrelateBolt(t.graph, cfg.Window)
		cb.MinSize = cfg.MinAnomalies
		return cb
	}, 1).GlobalFrom("detect").Err()
	if err != nil {
		return nil, err
	}
	err = topo.AddBolt("sink", func() stream.Bolt {
		return stream.NewCallbackBolt(t.record)
	}, 1).GlobalFrom("correlate").Err()
	if err != nil {
		return nil, err
	}

	// The correlator's window advances on executor ticks; keep ticks a few
	// times finer than the snapshot period (bounded to the stream default)
	// so flushes are not quantized to coarse ticks.
	tick := cfg.SnapshotPeriod / 4
	if tick > stream.DefaultTickInterval {
		tick = stream.DefaultTickInterval
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	exec, err := stream.NewExecutor(topo, stream.WithTickInterval(tick))
	if err != nil {
		return nil, err
	}
	t.exec = exec
	return t, nil
}

// Graph returns the service graph; the engine's observation sessions feed
// communication edges into it.
func (t *Tier) Graph() *ServiceGraph { return t.graph }

// Start launches the tier's executor. Idempotent.
func (t *Tier) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return
	}
	t.started = true
	t.exec.Start()
}

// Stop flushes and stops the tier. Idempotent.
func (t *Tier) Stop() {
	t.mu.Lock()
	if !t.started || t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	t.mu.Unlock()
	t.exec.Stop()
}

// record is the sink: ring, counters, mq publication, callback.
func (t *Tier) record(tp tuple.Tuple) {
	inc, ok := DecodeIncident(tp)
	if !ok {
		return
	}
	t.incidents.Add(1)
	t.anomalies.Add(uint64(len(inc.Anomalies)))
	t.mu.Lock()
	t.total++
	t.ring = append(t.ring, inc)
	if over := len(t.ring) - t.cfg.RingSize; over > 0 {
		t.ring = append(t.ring[:0], t.ring[over:]...)
	}
	t.mu.Unlock()
	if t.producer != nil {
		if err := t.producer.Send(&tuple.Batch{Parser: "insight", Tuples: []tuple.Tuple{tp}}); err != nil {
			t.publishDrops.Add(1)
		}
	}
	if t.cfg.OnIncident != nil {
		t.cfg.OnIncident(inc)
	}
}

// Incidents snapshots the retained incidents, oldest first.
func (t *Tier) Incidents() []Incident {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Incident, len(t.ring))
	copy(out, t.ring)
	return out
}

// Total is the number of incidents ever recorded (the ring may have evicted
// older ones).
func (t *Tier) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
