package insight

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"netalytics/internal/mq"
	"netalytics/internal/telemetry"
)

// TestTierEndToEnd drives the full feeder -> detect -> correlate -> sink
// topology against a live registry: train a gauge flat, spike it, and expect
// one incident in the ring, on the mq topic, and from the HTTP handler.
func TestTierEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	cluster := mq.NewCluster(1, mq.Config{})
	gauge := reg.Gauge("svc_latency", telemetry.L("host", "h1"))
	gauge.Set(100)

	got := make(chan Incident, 16)
	tier, err := New(Config{
		Registry:       reg,
		Cluster:        cluster,
		SnapshotPeriod: 10 * time.Millisecond,
		Window:         40 * time.Millisecond,
		Detector:       DetectorConfig{LearnSamples: 8},
		OnIncident:     func(inc Incident) { got <- inc },
	})
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	defer tier.Stop()

	time.Sleep(300 * time.Millisecond) // learn the flat baseline
	gauge.Set(10000)

	var inc Incident
	select {
	case inc = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no incident within 5s of a 100x spike")
	}
	if len(inc.Anomalies) == 0 || inc.Anomalies[0].Name != "svc_latency" {
		t.Fatalf("unexpected incident: %+v", inc)
	}
	if inc.Root != "h1" {
		t.Errorf("incident root = %q, want h1", inc.Root)
	}

	if tier.Total() == 0 || len(tier.Incidents()) == 0 {
		t.Error("incident not retained in the ring")
	}

	// Published to the mq topic, decodable like any consumed batch.
	deadline := time.Now().Add(2 * time.Second)
	consumer := cluster.Consumer(IncidentsTopic)
	found := false
	for !found && time.Now().Before(deadline) {
		for _, b := range consumer.Poll(16) {
			for _, tp := range b.Tuples {
				if _, ok := DecodeIncident(tp); ok {
					found = true
				}
			}
		}
		if !found {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !found {
		t.Error("incident not published on the _incidents topic")
	}

	// Served over HTTP beside /metrics.
	rec := httptest.NewRecorder()
	tier.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/incidents?n=1", nil))
	if rec.Code != 200 {
		t.Fatalf("/incidents status = %d", rec.Code)
	}
	var page struct {
		Total     int        `json:"total"`
		Incidents []Incident `json:"incidents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("/incidents not JSON: %v", err)
	}
	if page.Total == 0 || len(page.Incidents) != 1 {
		t.Errorf("/incidents page = total %d, %d incidents; want total>0, 1 incident", page.Total, len(page.Incidents))
	}
}

// TestTierQuietRegistryStaysSilent is the false-positive guard at tier level:
// stable series must produce zero incidents after the learning period.
func TestTierQuietRegistryStaysSilent(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("a", telemetry.L("host", "h1")).Set(100)
	reg.Counter("b").Add(1)
	tier, err := New(Config{
		Registry:       reg,
		SnapshotPeriod: 5 * time.Millisecond,
		Window:         20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	time.Sleep(400 * time.Millisecond)
	tier.Stop()
	if n := tier.Total(); n != 0 {
		t.Errorf("quiet registry produced %d incidents: %+v", n, tier.Incidents())
	}
}

func TestNewRequiresRegistry(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil registry")
	}
}
