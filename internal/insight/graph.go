package insight

import (
	"math"
	"sort"
	"sync"

	"netalytics/internal/topology"
)

// ServiceGraph is the observed communication graph between hosts: who talks
// to whom, learned from the standing observation queries' (src -> dst)
// connection counts rather than declared by hand. The correlator walks it
// to decide which simultaneous anomalies are one incident and which host is
// the root. Combined with the fat-tree topology (rack/pod proximity as a
// fallback relation) this is the placement knowledge §4 gives the
// controller, reused for diagnosis.
type ServiceGraph struct {
	mu   sync.RWMutex
	out  map[string]map[string]bool // src host -> dst hosts
	in   map[string]map[string]bool // dst host -> src hosts
	topo *topology.FatTree
}

// NewServiceGraph creates an empty graph over the (optional) fat tree.
func NewServiceGraph(topo *topology.FatTree) *ServiceGraph {
	return &ServiceGraph{
		out:  make(map[string]map[string]bool),
		in:   make(map[string]map[string]bool),
		topo: topo,
	}
}

// Observe records one src -> dst communication edge.
func (g *ServiceGraph) Observe(src, dst string) {
	if src == "" || dst == "" || src == dst {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.out[src] == nil {
		g.out[src] = make(map[string]bool)
	}
	g.out[src][dst] = true
	if g.in[dst] == nil {
		g.in[dst] = make(map[string]bool)
	}
	g.in[dst][src] = true
}

// Edge reports whether src -> dst was observed.
func (g *ServiceGraph) Edge(src, dst string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.out[src][dst]
}

// Related reports whether two hosts are plausibly on one request path:
// identical, directly connected (either direction), sharing a common
// upstream caller (siblings behind one proxy), or — when a fat tree is
// attached — in the same rack (the placement fallback for hosts whose
// traffic the observers never sampled).
func (g *ServiceGraph) Related(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	if a == b {
		return true
	}
	g.mu.RLock()
	direct := g.out[a][b] || g.out[b][a]
	shared := false
	if !direct {
		for src := range g.in[a] {
			if g.in[b][src] {
				shared = true
				break
			}
		}
	}
	g.mu.RUnlock()
	if direct || shared {
		return true
	}
	if g.topo != nil {
		ha, hb := g.topo.HostByName(a), g.topo.HostByName(b)
		if ha != nil && hb != nil && g.topo.HopCount(ha, hb) <= 2 {
			return true
		}
	}
	return false
}

// Root picks the root host for a set of anomalous hosts: the sink-most
// host — one with no observed edge leading to another anomalous host — on
// the intuition that latency propagates upstream (a slow database makes the
// app and proxy slow, never the reverse). When several sinks remain and all
// of them share one common upstream caller, that caller is the root even if
// itself quiet: opposite-direction shifts on siblings (one backend's load
// up, the other's down) point at the balancer above them. Ties break by
// sorted order for determinism.
func (g *ServiceGraph) Root(hosts []string) string {
	return g.elect(hosts, nil)
}

// RootOf elects the root for a correlated anomaly group. It refines Root
// with the anomalies' directions: the common-upstream promotion only kicks
// in when the sinks genuinely diverge (the same metric shifted up on one
// sink and down on another — the load-balancer signature). Sinks that all
// shifted the same way are ranked by evidence instead, so a backend that
// picked up one collateral blip can't drag the root onto its caller.
func (g *ServiceGraph) RootOf(members []Anomaly) string {
	var hosts []string
	seen := make(map[string]bool)
	for _, a := range members {
		if h := a.Host(); h != "" && !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return g.elect(hosts, members)
}

func (g *ServiceGraph) elect(hosts []string, members []Anomaly) string {
	if len(hosts) == 0 {
		return ""
	}
	set := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		set[h] = true
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var sinks []string
	for h := range set {
		downstream := false
		for dst := range g.out[h] {
			if set[dst] {
				downstream = true
				break
			}
		}
		if !downstream {
			sinks = append(sinks, h)
		}
	}
	sort.Strings(sinks)
	if len(sinks) == 1 {
		return sinks[0]
	}
	if len(sinks) == 0 {
		// A cycle (mutual edges): fall back to deterministic member order.
		all := make([]string, 0, len(set))
		for h := range set {
			all = append(all, h)
		}
		sort.Strings(all)
		return all[0]
	}
	// Multiple sinks. With anomaly directions in hand, the caller is
	// only implicated when divergence (same metric up on one sink, down
	// on another) carries the *majority* of the sinks' evidence — the
	// balancer signature is an opposite-sign load split and little else.
	// A slow backend also skews sibling load as a side effect (starved
	// workers free capacity for the others), but then its own latency
	// shift dominates, and the strongest sink keeps the root.
	if members != nil && !divergenceDominates(sinks, members) {
		return strongestHost(sinks, members)
	}
	// A common upstream caller of every sink is the root.
	var common map[string]bool
	for _, s := range sinks {
		ins := g.in[s]
		if len(ins) == 0 {
			common = nil
			break
		}
		if common == nil {
			common = make(map[string]bool, len(ins))
			for src := range ins {
				common[src] = true
			}
			continue
		}
		for src := range common {
			if !ins[src] {
				delete(common, src)
			}
		}
		if len(common) == 0 {
			break
		}
	}
	if len(common) > 0 {
		ups := make([]string, 0, len(common))
		for src := range common {
			ups = append(ups, src)
		}
		sort.Strings(ups)
		return ups[0]
	}
	return sinks[0]
}

// divergenceDominates reports whether metrics that shifted in opposite
// directions on two different sinks account for the majority of the sinks'
// accumulated |sigma| — the signature of a misbehaving balancer above them,
// and the only case where a quiet upstream outranks its sinks.
func divergenceDominates(sinks []string, members []Anomaly) bool {
	isSink := make(map[string]bool, len(sinks))
	for _, s := range sinks {
		isSink[s] = true
	}
	up := make(map[string]map[string]bool)
	down := make(map[string]map[string]bool)
	record := func(m map[string]map[string]bool, name, host string) {
		if m[name] == nil {
			m[name] = make(map[string]bool)
		}
		m[name][host] = true
	}
	for _, a := range members {
		h := a.Host()
		if !isSink[h] {
			continue
		}
		if a.Sigma > 0 {
			record(up, a.Name, h)
		} else if a.Sigma < 0 {
			record(down, a.Name, h)
		}
	}
	diverging := make(map[string]bool)
	for name, ups := range up {
		for uh := range ups {
			for dh := range down[name] {
				if uh != dh {
					diverging[name] = true
				}
			}
		}
	}
	if len(diverging) == 0 {
		return false
	}
	var wDiv, wOther float64
	for _, a := range members {
		if !isSink[a.Host()] {
			continue
		}
		if diverging[a.Name] {
			wDiv += math.Abs(a.Sigma)
		} else {
			wOther += math.Abs(a.Sigma)
		}
	}
	return wDiv > wOther
}

// strongestHost picks the candidate with the largest accumulated |sigma|
// across its anomalies; ties break by sorted order for determinism.
func strongestHost(candidates []string, members []Anomaly) string {
	weight := make(map[string]float64, len(candidates))
	for _, a := range members {
		weight[a.Host()] += math.Abs(a.Sigma)
	}
	sort.Strings(candidates)
	best := candidates[0]
	for _, c := range candidates[1:] {
		if weight[c] > weight[best] {
			best = c
		}
	}
	return best
}
