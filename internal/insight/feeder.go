package insight

import (
	"strings"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// selfPrefix marks the tier's own metrics; the feeder never feeds them back
// into detection (an incident counter spiking because incidents fired would
// be a feedback loop).
const selfPrefix = "insight_tier_"

// Derived-series suffixes the feeder synthesizes.
const (
	// SuffixRate marks a counter's per-second derivative.
	SuffixRate = ":rate"
	// SuffixMean and SuffixP95 mark a histogram's windowed (delta between
	// consecutive snapshots) mean and 95th percentile — distribution shifts,
	// not lifetime aggregates.
	SuffixMean = ":mean"
	SuffixP95  = ":p95"
)

// DefaultFilter is the engine's default observation filter: the series the
// observation sessions write (insight_*), the pipeline's stage-latency
// histogram, and the aggregation layer's health signals. Everything else in
// the registry is operational detail whose volatility would cost detector
// state without adding diagnosable signal; pass an explicit Filter to widen.
func DefaultFilter(name string) bool {
	if strings.HasPrefix(name, "insight_") {
		return true
	}
	switch name {
	case "pipeline_latency_ns", "mq_occupancy", "mq_dropped", "session_result_drops":
		return true
	}
	return false
}

// prevSample is the feeder's memory of one instrument between snapshots.
type prevSample struct {
	counter float64
	hist    telemetry.HistSnapshot
	seen    bool
}

// Feeder is the registry spout: every period it snapshots the telemetry
// registry and emits one tuple per live series — gauges as-is, counters as
// per-second rates, histograms as windowed mean/p95 deltas — so the insight
// topology is fed through the exact spout interface query topologies use.
// It is not safe for concurrent use; run it as a single spout task.
type Feeder struct {
	reg    *telemetry.Registry
	period time.Duration
	filter func(name string) bool

	prev   map[string]*prevSample
	lastAt time.Time
	nextAt time.Time
	now    func() time.Time
}

// NewFeeder creates a feeder snapshotting reg every period. filter, when
// non-nil, restricts observation to metric names it accepts (the tier's
// self-metrics are always excluded).
func NewFeeder(reg *telemetry.Registry, period time.Duration, filter func(string) bool) *Feeder {
	if period <= 0 {
		period = time.Second
	}
	return &Feeder{
		reg:    reg,
		period: period,
		filter: filter,
		prev:   make(map[string]*prevSample),
		now:    time.Now,
	}
}

// Next implements stream.Spout: nil until the period elapses, then one
// tuple per series.
func (f *Feeder) Next() []tuple.Tuple {
	now := f.now()
	if now.Before(f.nextAt) {
		return nil
	}
	f.nextAt = now.Add(f.period)
	return f.snapshot(now)
}

// NextWait implements stream.WaitSpout: sleep toward the next snapshot
// instead of spinning through Next.
func (f *Feeder) NextWait(timeout time.Duration) []tuple.Tuple {
	if wait := time.Until(f.nextAt); wait > 0 {
		if wait > timeout {
			wait = timeout
		}
		time.Sleep(wait)
	}
	return f.Next()
}

// snapshot turns one registry snapshot into series tuples.
func (f *Feeder) snapshot(now time.Time) []tuple.Tuple {
	points := f.reg.Snapshot()
	nowNS := now.UnixNano()
	dt := f.period.Seconds()
	if !f.lastAt.IsZero() {
		if d := now.Sub(f.lastAt).Seconds(); d > 0 {
			dt = d
		}
	}
	first := f.lastAt.IsZero()
	f.lastAt = now

	live := make(map[string]bool, len(points))
	out := make([]tuple.Tuple, 0, len(points))
	emit := func(id string, v float64) {
		out = append(out, tuple.Tuple{Key: id, Val: v, TS: nowNS})
	}
	for _, p := range points {
		if strings.HasPrefix(p.Name, selfPrefix) {
			continue
		}
		if f.filter != nil && !f.filter(p.Name) {
			continue
		}
		id := SeriesID(p.Name, p.Labels, "")
		live[id] = true
		switch p.Kind {
		case telemetry.KindGauge:
			emit(id, p.Value)
		case telemetry.KindCounter:
			ps := f.prevFor(id)
			if ps.seen && !first {
				emit(id+SuffixRate, (p.Value-ps.counter)/dt)
			}
			ps.counter = p.Value
			ps.seen = true
		case telemetry.KindHistogram:
			if p.Hist == nil {
				continue
			}
			ps := f.prevFor(id)
			if ps.seen && !first {
				delta := p.Hist.Sub(ps.hist)
				// No observations this window means no information — stale
				// latency series must not train their baselines toward zero.
				if delta.Count > 0 {
					emit(id+SuffixMean, delta.Mean())
					emit(id+SuffixP95, delta.Quantile(0.95))
				}
			}
			ps.hist = *p.Hist
			ps.seen = true
		}
	}
	// Retired series (DropLabeled) free their feeder memory too.
	for id := range f.prev {
		if !live[id] {
			delete(f.prev, id)
		}
	}
	return out
}

func (f *Feeder) prevFor(id string) *prevSample {
	ps, ok := f.prev[id]
	if !ok {
		ps = &prevSample{}
		f.prev[id] = ps
	}
	return ps
}
