package insight

import (
	"math"
	"testing"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
)

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(4)
	e.Update(100)
	if e.Mean() != 100 {
		t.Fatalf("first sample should seed the mean, got %v", e.Mean())
	}
	for i := 0; i < 100; i++ {
		e.Update(200)
	}
	if math.Abs(e.Mean()-200) > 1 {
		t.Errorf("mean did not converge: %v", e.Mean())
	}
	if e.Std() > 5 {
		t.Errorf("variance did not decay on a now-flat series: std=%v", e.Std())
	}
	if e.N() != 101 {
		t.Errorf("N = %d, want 101", e.N())
	}
}

func TestEWMAHalfLife(t *testing.T) {
	// After exactly H updates toward a new level, the remaining gap should be
	// half the original (that is what "half-life in samples" means).
	const h = 8
	e := NewEWMA(h)
	e.Update(0)
	for i := 0; i < h; i++ {
		e.Update(100)
	}
	if math.Abs(e.Mean()-50) > 1 {
		t.Errorf("after one half-life mean = %v, want ~50", e.Mean())
	}
}

func TestSeasonalLearnsPattern(t *testing.T) {
	// A period-4 sawtooth: plain EWMA sees it as noise, the seasonal model
	// should predict each slot almost exactly after a few seasons.
	pattern := []float64{10, 50, 10, 50}
	s := NewSeasonal(4, 8)
	for i := 0; i < 10*len(pattern); i++ {
		s.Update(pattern[i%len(pattern)])
	}
	for i := 0; i < len(pattern); i++ {
		want := pattern[(s.n)%len(pattern)]
		if got := s.Mean(); math.Abs(got-want) > 3 {
			t.Errorf("slot %d: predicted %v, want ~%v", i, got, want)
		}
		s.Update(want)
	}
}

func TestDetectorLearningPeriod(t *testing.T) {
	d := NewDetector(DetectorConfig{LearnSamples: 12})
	for i := 0; i < 11; i++ {
		// Wild swings during learning must not alert.
		kinds, _, _ := d.Observe(float64(100 + 1000*(i%2)))
		if len(kinds) != 0 {
			t.Fatalf("alert during learning period at sample %d: %v", i, kinds)
		}
	}
	if !d.Learning() {
		t.Error("still inside the learning period, Learning() = false")
	}
}

func TestDetectorZScore(t *testing.T) {
	d := NewDetector(DetectorConfig{LearnSamples: 5})
	for i := 0; i < 20; i++ {
		if kinds, _, _ := d.Observe(100); len(kinds) != 0 {
			t.Fatalf("flat series alerted: %v", kinds)
		}
	}
	// Flat series: sigma floor is 5% of the mean, so 200 is a ~20-sigma spike.
	kinds, dev, mean := d.Observe(200)
	if !contains(kinds, KindZScore) {
		t.Fatalf("20-sigma spike not flagged, kinds=%v dev=%v", kinds, dev)
	}
	if math.Abs(mean-100) > 1 {
		t.Errorf("reported baseline %v, want ~100 (test-before-update)", mean)
	}
	if dev < 10 {
		t.Errorf("deviation %v, want >= 10 sigmas", dev)
	}
}

func TestDetectorCUSUMCatchesSmallShift(t *testing.T) {
	// A sustained +2-sigma shift never trips the 3-sigma z-score but must
	// accumulate past the CUSUM threshold within a few samples.
	d := NewDetector(DetectorConfig{LearnSamples: 5})
	for i := 0; i < 20; i++ {
		d.Observe(100)
	}
	var fired []string
	for i := 0; i < 8; i++ {
		kinds, _, _ := d.Observe(110)
		if contains(kinds, KindZScore) {
			t.Fatalf("z-score fired on a 2-sigma shift at step %d", i)
		}
		fired = append(fired, kinds...)
	}
	if !contains(fired, KindCUSUM) {
		t.Error("CUSUM never fired on a sustained small shift")
	}
}

func TestDetectorMinConsecutive(t *testing.T) {
	d := NewDetector(DetectorConfig{Sigma: 3, LearnSamples: 4, MinConsecutive: 2, CUSUMThreshold: 1000})
	for i := 0; i < 20; i++ {
		d.Observe(100)
	}
	// One isolated excursion: below the persistence requirement, no alert.
	if kinds, _, _ := d.Observe(500); len(kinds) != 0 {
		t.Fatalf("single excursion fired %v with MinConsecutive=2", kinds)
	}
	// The excursion persists: second consecutive sample past the threshold
	// fires. (The baseline absorbed one 500, but with a 100-level history the
	// next 500 is still far out.)
	if kinds, _, _ := d.Observe(500); len(kinds) != 1 || kinds[0] != KindZScore {
		t.Fatalf("second consecutive excursion fired %v, want zscore", kinds)
	}
}

func TestDetectorCUSUMClampsFreakSample(t *testing.T) {
	// One enormous blip must not trip CUSUM by itself: its contribution is
	// winsorized to CUSUMClamp sigmas.
	d := NewDetector(DetectorConfig{Sigma: 1e9, CUSUMThreshold: 5, CUSUMDrift: 0.5, CUSUMClamp: 4, LearnSamples: 4})
	for i := 0; i < 20; i++ {
		d.Observe(100)
	}
	if kinds, dev, _ := d.Observe(10000); len(kinds) != 0 {
		t.Fatalf("freak sample (dev %.0f) tripped %v despite clamp", dev, kinds)
	}
	// A second extreme sample accumulates past the threshold: persistence is
	// what CUSUM is for.
	if kinds, _, _ := d.Observe(10000); len(kinds) != 1 || kinds[0] != KindCUSUM {
		t.Fatalf("persistent shift fired %v, want cusum", kinds)
	}
}

func TestDetectorSeasonalSuppressesPattern(t *testing.T) {
	cfgSeasonal := DetectorConfig{SeasonSlots: 4, LearnSamples: 16}
	d := NewDetector(cfgSeasonal)
	pattern := []float64{100, 500, 100, 500}
	fired := 0
	for i := 0; i < 100; i++ {
		kinds, _, _ := d.Observe(pattern[i%4])
		if i >= 16*2 { // well past learning and pattern acquisition
			fired += len(kinds)
		}
	}
	if fired != 0 {
		t.Errorf("seasonal detector alerted %d times on its own learned pattern", fired)
	}
}

func TestSeriesIDRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels map[string]string
		suffix string
	}{
		{"plain", nil, ""},
		{"gauge", map[string]string{"host": "h0-0-0"}, ""},
		{"lat", map[string]string{"host": "h0-0-1", "url": "/db"}, ":p95"},
		{"rate", map[string]string{"b": "2", "a": "1"}, ":rate"},
	}
	for _, c := range cases {
		id := SeriesID(c.name, c.labels, c.suffix)
		name, labels := ParseSeriesID(id)
		if name != c.name+c.suffix {
			t.Errorf("ParseSeriesID(%q) name = %q, want %q", id, name, c.name+c.suffix)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("ParseSeriesID(%q) labels = %v, want %v", id, labels, c.labels)
			continue
		}
		for k, v := range c.labels {
			if labels[k] != v {
				t.Errorf("ParseSeriesID(%q) label %s = %q, want %q", id, k, labels[k], v)
			}
		}
	}
}

// feederAt builds a feeder with a controllable clock.
func feederAt(reg *telemetry.Registry, period time.Duration) (*Feeder, *time.Time) {
	f := NewFeeder(reg, period, nil)
	now := time.Unix(1000, 0)
	f.now = func() time.Time { return now }
	return f, &now
}

func tuplesByKey(ts []tuple.Tuple) map[string]float64 {
	m := make(map[string]float64, len(ts))
	for _, t := range ts {
		m[t.Key] = t.Val
	}
	return m
}

func TestFeederDerivations(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("load").Set(7)
	ctr := reg.Counter("requests")
	ctr.Add(100)
	h := reg.Histogram("lat")
	h.Observe(1000)

	f, now := feederAt(reg, time.Second)
	first := tuplesByKey(f.Next())
	if v, ok := first["load"]; !ok || v != 7 {
		t.Errorf("first snapshot gauge = %v (ok=%v), want 7", v, ok)
	}
	if _, ok := first["requests:rate"]; ok {
		t.Error("counter rate emitted on first snapshot (no previous sample)")
	}
	if _, ok := first["lat:mean"]; ok {
		t.Error("histogram mean emitted on first snapshot")
	}

	ctr.Add(50)
	h.Observe(3000)
	*now = now.Add(time.Second)
	second := tuplesByKey(f.Next())
	if v := second["requests:rate"]; math.Abs(v-50) > 0.5 {
		t.Errorf("counter rate = %v, want ~50/s", v)
	}
	if v, ok := second["lat:mean"]; !ok || math.Abs(v-3000) > 300 {
		// Windowed delta: only the new observation counts, not the lifetime mean.
		t.Errorf("histogram windowed mean = %v (ok=%v), want ~3000", v, ok)
	}
	if _, ok := second["lat:p95"]; !ok {
		t.Error("histogram p95 missing")
	}

	// A window with no histogram observations must stay silent, not report 0.
	ctr.Add(50)
	*now = now.Add(time.Second)
	third := tuplesByKey(f.Next())
	if _, ok := third["lat:mean"]; ok {
		t.Error("idle histogram emitted a mean (would train baseline toward zero)")
	}
	if _, ok := third["requests:rate"]; !ok {
		t.Error("counter rate missing on third snapshot")
	}
}

func TestFeederExcludesSelfAndFiltered(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("insight_tier_incidents_gauge").Set(1) // self-prefix
	reg.Gauge("wanted").Set(1)
	reg.Gauge("unwanted").Set(1)
	f := NewFeeder(reg, time.Second, func(name string) bool { return name == "wanted" })
	now := time.Unix(1000, 0)
	f.now = func() time.Time { return now }
	got := tuplesByKey(f.Next())
	if len(got) != 1 {
		t.Fatalf("snapshot = %v, want only wanted", got)
	}
	if _, ok := got["wanted"]; !ok {
		t.Fatalf("wanted series missing: %v", got)
	}
}

func TestFeederForgetsRetiredSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("per_session", telemetry.L("session", "q1")).Add(5)
	f, now := feederAt(reg, time.Second)
	f.Next()
	if len(f.prev) != 1 {
		t.Fatalf("prev entries = %d, want 1", len(f.prev))
	}
	reg.DropLabeled("session", "q1")
	*now = now.Add(time.Second)
	f.Next()
	if len(f.prev) != 0 {
		t.Errorf("retired series still held: %v", f.prev)
	}
}

func TestDefaultFilter(t *testing.T) {
	for _, name := range []string{"insight_svc_latency_ns", "pipeline_latency_ns", "mq_dropped"} {
		if !DefaultFilter(name) {
			t.Errorf("DefaultFilter(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"vnet_frames", "monitor_tuples"} {
		if DefaultFilter(name) {
			t.Errorf("DefaultFilter(%q) = true, want false", name)
		}
	}
}

// collect is a test EmitFunc capturing tuples.
type collect struct{ out []tuple.Tuple }

func (c *collect) emit(t tuple.Tuple) { c.out = append(c.out, t) }

func TestDetectBoltFiresAndCoolsDown(t *testing.T) {
	b := NewDetectBolt(DetectorConfig{LearnSamples: 5}, 0, time.Second)
	var c collect
	ts := int64(0)
	feed := func(v float64) {
		ts += int64(100 * time.Millisecond)
		b.Execute(tuple.Tuple{Key: "lat{host=h1}", Val: v, TS: ts}, c.emit)
	}
	for i := 0; i < 20; i++ {
		feed(100)
	}
	if len(c.out) != 0 {
		t.Fatalf("flat series produced %d anomalies", len(c.out))
	}
	feed(1000)
	if len(c.out) == 0 {
		t.Fatal("spike not detected")
	}
	a, ok := DecodeAnomaly(c.out[0])
	if !ok {
		t.Fatal("emitted tuple is not an anomaly")
	}
	if a.Name != "lat" || a.Labels["host"] != "h1" {
		t.Errorf("anomaly identity = %q %v", a.Name, a.Labels)
	}
	// Cooldown: an immediate second spike within 1s must not re-fire.
	n := len(c.out)
	feed(1000)
	if len(c.out) != n {
		t.Errorf("cooldown violated: %d new anomalies", len(c.out)-n)
	}
}

func TestDetectBoltEvictsPastCap(t *testing.T) {
	b := NewDetectBolt(DetectorConfig{}, 8, 0)
	var c collect
	for i := 0; i < 100; i++ {
		b.Execute(tuple.Tuple{Key: SeriesID("m", map[string]string{"i": string(rune('a' + i%26)), "j": string(rune('a' + i/26))}, ""), Val: 1, TS: int64(i)}, c.emit)
	}
	if b.Len() > 8 {
		t.Errorf("series state grew past the cap: %d", b.Len())
	}
}

func anomalyAt(host, name string, ts int64) tuple.Tuple {
	labels := map[string]string{}
	if host != "" {
		labels["host"] = host
	}
	return EncodeAnomaly(Anomaly{
		Series: SeriesID(name, labels, ""), Name: name, Labels: labels,
		Kind: KindZScore, TS: ts, Value: 1, Baseline: 0, Sigma: 5,
	})
}

func TestCorrelateBoltGroupsByTopology(t *testing.T) {
	g := NewServiceGraph(nil)
	g.Observe("proxy", "app1")
	g.Observe("proxy", "app2")
	g.Observe("app1", "db")
	g.Observe("app2", "db")

	b := NewCorrelateBolt(g, time.Second)
	now := int64(10 * time.Second)
	b.now = func() int64 { return now }

	var c collect
	// Simultaneous anomalies down one request path plus one unrelated
	// hostless series: one rooted incident plus one standalone.
	b.Execute(anomalyAt("app1", "insight_svc_latency_ns", now), c.emit)
	b.Execute(anomalyAt("db", "insight_svc_latency_ns", now), c.emit)
	b.Execute(anomalyAt("proxy", "insight_svc_latency_ns", now), c.emit)
	b.Execute(anomalyAt("", "mq_dropped:rate", now), c.emit)

	b.Tick(c.emit) // still inside the window: nothing flushes
	if len(c.out) != 0 {
		t.Fatalf("flushed %d incidents inside the quiet window", len(c.out))
	}
	now += 2 * time.Second.Nanoseconds()
	b.Tick(c.emit)
	if len(c.out) != 2 {
		t.Fatalf("got %d incidents, want 2 (one correlated group + one standalone)", len(c.out))
	}
	var rooted, standalone *Incident
	for i := range c.out {
		inc, ok := DecodeIncident(c.out[i])
		if !ok {
			t.Fatal("non-incident tuple emitted")
		}
		if len(inc.Anomalies) == 3 {
			rooted = &inc
		} else {
			standalone = &inc
		}
	}
	if rooted == nil || standalone == nil {
		t.Fatalf("expected a 3-member and a 1-member incident")
	}
	if rooted.Root != "db" {
		t.Errorf("correlated incident rooted at %q, want db (the sink)", rooted.Root)
	}
	if standalone.Root != "mq_dropped:rate" {
		t.Errorf("hostless incident rooted at %q, want its series name", standalone.Root)
	}
}

func TestCorrelateBoltMinSizeSuppressesLoneBlips(t *testing.T) {
	g := NewServiceGraph(nil)
	g.Observe("proxy", "app1")

	b := NewCorrelateBolt(g, time.Second)
	b.MinSize = 2
	now := int64(10 * time.Second)
	b.now = func() int64 { return now }

	var c collect
	// A lone anomaly is held past its quiet window (waiting for
	// corroboration), then dropped at the age bound — never emitted.
	b.Execute(anomalyAt("app1", "insight_conn_rate", now), c.emit)
	now += 2 * time.Second.Nanoseconds()
	b.Tick(c.emit)
	if len(c.out) != 0 {
		t.Fatalf("lone blip emitted %d incidents inside the age bound", len(c.out))
	}
	now += 2 * time.Second.Nanoseconds() // past maxAge (3x window)
	b.Tick(c.emit)
	if len(c.out) != 0 {
		t.Fatalf("aged-out lone blip emitted %d incidents, want suppression", len(c.out))
	}

	// Detectors react asymmetrically: a held singleton must still merge
	// with a late partner arriving after the quiet window but before the
	// age bound, and the pair clears the gate.
	b.Execute(anomalyAt("proxy", "insight_svc_latency_ns", now), c.emit)
	now += 15 * time.Second.Nanoseconds() / 10 // quiet > window, age < maxAge
	b.Tick(c.emit)
	if len(c.out) != 0 {
		t.Fatalf("held singleton emitted %d incidents, want it kept", len(c.out))
	}
	b.Execute(anomalyAt("app1", "insight_svc_latency_ns", now), c.emit)
	now += 2 * time.Second.Nanoseconds()
	b.Tick(c.emit)
	if len(c.out) != 1 {
		t.Fatalf("correlated pair emitted %d incidents, want 1", len(c.out))
	}
	if inc, ok := DecodeIncident(c.out[0]); !ok || len(inc.Anomalies) != 2 {
		t.Fatalf("emitted incident = %+v, want the 2-anomaly group", c.out[0])
	}
}

func TestCorrelateBoltMaxAgeBoundsRefreshedGroups(t *testing.T) {
	b := NewCorrelateBolt(NewServiceGraph(nil), time.Second)
	now := int64(10 * time.Second)
	b.now = func() int64 { return now }
	var c collect
	// Keep refreshing the group every half window: quiet-window flushing
	// alone would hold it forever; maxAge must force it out.
	for i := 0; i < 10 && len(c.out) == 0; i++ {
		b.Execute(anomalyAt("h1", "m", now), c.emit)
		now += time.Second.Nanoseconds() / 2
		b.Tick(c.emit)
	}
	if len(c.out) == 0 {
		t.Fatal("continuously refreshed group never flushed")
	}
}

func TestServiceGraphRelatedAndRoot(t *testing.T) {
	g := NewServiceGraph(nil)
	g.Observe("proxy", "app1")
	g.Observe("proxy", "app2")
	g.Observe("app1", "db")

	if !g.Related("proxy", "app1") || !g.Related("app1", "proxy") {
		t.Error("direct edge not related (either direction)")
	}
	if !g.Related("app1", "app2") {
		t.Error("siblings behind one proxy not related")
	}
	if g.Related("db", "app2") {
		t.Error("db and app2 related without any path evidence")
	}
	if root := g.Root([]string{"proxy", "app1", "db"}); root != "db" {
		t.Errorf("chain root = %q, want db", root)
	}
	// Opposite-direction sibling shifts: both sinks, common caller is root.
	if root := g.Root([]string{"app1", "app2"}); root != "proxy" {
		t.Errorf("sibling root = %q, want proxy", root)
	}
	if root := g.Root(nil); root != "" {
		t.Errorf("empty root = %q", root)
	}
}

func TestServiceGraphRootOfDirections(t *testing.T) {
	g := NewServiceGraph(nil)
	g.Observe("proxy", "app1")
	g.Observe("proxy", "app2")
	g.Observe("app1", "db")
	g.Observe("app2", "db")
	g.Observe("app1", "cache")
	g.Observe("app2", "cache")

	anom := func(host, name string, sigma float64) Anomaly {
		return Anomaly{
			Series: name + "{host=" + host + "}",
			Name:   name,
			Labels: map[string]string{"host": host},
			Kind:   KindZScore,
			Sigma:  sigma,
		}
	}

	// Divergent sinks (conn rate up on one backend, down on its sibling):
	// the quiet common caller is the root — the balancer signature.
	diverged := []Anomaly{
		anom("app1", "insight_conn_rate", 6),
		anom("app2", "insight_conn_rate", -4),
	}
	if root := g.RootOf(diverged); root != "proxy" {
		t.Errorf("divergent sibling root = %q, want proxy", root)
	}

	// Same-direction sinks (a slow db drags latency up everywhere, and the
	// cache catches one collateral blip): the strongest sink keeps the
	// root — its caller must NOT be promoted.
	collateral := []Anomaly{
		anom("db", "insight_svc_latency_ns", 9),
		anom("db", "insight_svc_latency_ns", 7),
		anom("cache", "insight_svc_latency_ns", 3),
		anom("app1", "insight_svc_latency_ns", 5),
	}
	if root := g.RootOf(collateral); root != "db" {
		t.Errorf("collateral-blip root = %q, want db", root)
	}

	// A slow db skews sibling load as a side effect (starved /db workers
	// free capacity elsewhere): conn rate down on db, up on cache — a
	// coincidental divergence. The latency evidence dominates, so the
	// strongest sink keeps the root and the caller is NOT promoted.
	sideEffect := []Anomaly{
		anom("db", "insight_svc_latency_ns", 20),
		anom("db", "insight_conn_rate", -4),
		anom("cache", "insight_conn_rate", 3),
		anom("app1", "insight_svc_latency_ns", 6),
	}
	if root := g.RootOf(sideEffect); root != "db" {
		t.Errorf("side-effect divergence root = %q, want db", root)
	}

	if root := g.RootOf(nil); root != "" {
		t.Errorf("empty RootOf = %q", root)
	}
}

func TestServiceGraphTopologyFallback(t *testing.T) {
	topo, err := topology.New(4)
	if err != nil {
		t.Fatal(err)
	}
	g := NewServiceGraph(topo)
	hosts := topo.Hosts()
	a, b := hosts[0], hosts[1] // same rack
	far := hosts[len(hosts)-1] // other pod
	if !g.Related(a.Name, b.Name) {
		t.Error("same-rack hosts not related via topology fallback")
	}
	if g.Related(a.Name, far.Name) {
		t.Error("cross-pod hosts related without observed edges")
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
