package insight

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"netalytics/internal/tuple"
)

// Detection kinds carried by Anomaly.Kind.
const (
	KindZScore = "zscore"
	KindCUSUM  = "cusum"
)

// Anomaly is one detector firing on one series sample.
type Anomaly struct {
	// Series is the full series identity (name{labels} plus any derived
	// suffix such as :rate or :p95).
	Series string `json:"series"`
	// Name and Labels are the parsed metric identity.
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Kind is the detector that fired (zscore, cusum).
	Kind string `json:"kind"`
	// TS is the sample timestamp in UnixNano.
	TS int64 `json:"ts"`
	// Value is the offending sample, Baseline the expectation it deviated
	// from, and Sigma the deviation in floored standard deviations
	// (negative = below baseline).
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Sigma    float64 `json:"sigma"`
}

// Host returns the anomaly's host label, or "".
func (a Anomaly) Host() string { return a.Labels["host"] }

// Incident is a rooted group of correlated anomalies: what an operator gets
// paged on instead of one alert per series.
type Incident struct {
	ID string `json:"id"`
	// Root names the entity the correlation rooted the incident at — a
	// host for topology-correlated groups (the sink-most anomalous tier, or
	// a common upstream when siblings shifted in opposite directions), else
	// the dominant series.
	Root string `json:"root"`
	// Summary is a one-line human description.
	Summary string `json:"summary"`
	// StartNS/EndNS bound the member anomalies' timestamps.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Anomalies are the correlated members, ordered by timestamp.
	Anomalies []Anomaly `json:"anomalies"`
}

// Tuple markers: insight tuples ride ordinary stream topologies, flagged in
// SrcIP the same way rankings tuples are (stream.RankingsKey).
const (
	// AnomalyKey marks tuples whose Key is a JSON-encoded Anomaly.
	AnomalyKey = "__anomaly__"
	// IncidentKey marks tuples whose Key is a JSON-encoded Incident.
	IncidentKey = "__incident__"
)

// IncidentsTopic is the mq topic incidents are published to, consumable
// like any query-result topic.
const IncidentsTopic = "_incidents"

// EncodeAnomaly packs an anomaly into a tuple.
func EncodeAnomaly(a Anomaly) tuple.Tuple {
	data, err := json.Marshal(a)
	if err != nil {
		panic("insight: encoding anomaly: " + err.Error())
	}
	return tuple.Tuple{SrcIP: AnomalyKey, Key: string(data), TS: a.TS, Val: a.Value}
}

// DecodeAnomaly unpacks an anomaly tuple; ok is false for other tuples.
func DecodeAnomaly(t tuple.Tuple) (Anomaly, bool) {
	if t.SrcIP != AnomalyKey {
		return Anomaly{}, false
	}
	var a Anomaly
	if err := json.Unmarshal([]byte(t.Key), &a); err != nil {
		return Anomaly{}, false
	}
	return a, true
}

// EncodeIncident packs an incident into a tuple.
func EncodeIncident(inc Incident) tuple.Tuple {
	data, err := json.Marshal(inc)
	if err != nil {
		panic("insight: encoding incident: " + err.Error())
	}
	return tuple.Tuple{SrcIP: IncidentKey, Key: string(data), TS: inc.StartNS, Val: float64(len(inc.Anomalies))}
}

// DecodeIncident unpacks an incident tuple; ok is false for other tuples.
func DecodeIncident(t tuple.Tuple) (Incident, bool) {
	if t.SrcIP != IncidentKey {
		return Incident{}, false
	}
	var inc Incident
	if err := json.Unmarshal([]byte(t.Key), &inc); err != nil {
		return Incident{}, false
	}
	return inc, true
}

// SeriesID builds the canonical series identity name{k=v,...}suffix with
// sorted label keys — the same shape telemetry idents use, extended by a
// derived-value suffix (":rate", ":p95", ...) for series the feeder
// synthesizes from one instrument.
func SeriesID(name string, labels map[string]string, suffix string) string {
	if len(labels) == 0 {
		return name + suffix
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	b.WriteString(suffix)
	return b.String()
}

// ParseSeriesID splits a series identity back into name and labels (the
// derived suffix stays attached to the name, keeping distinct series
// distinct). It inverts SeriesID for every identity SeriesID can produce.
func ParseSeriesID(id string) (name string, labels map[string]string) {
	open := strings.IndexByte(id, '{')
	if open < 0 {
		return id, nil
	}
	closeIdx := strings.LastIndexByte(id, '}')
	if closeIdx < open {
		return id, nil
	}
	name = id[:open] + id[closeIdx+1:]
	body := id[open+1 : closeIdx]
	if body == "" {
		return name, nil
	}
	labels = make(map[string]string)
	for _, part := range strings.Split(body, ",") {
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			labels[part[:eq]] = part[eq+1:]
		}
	}
	return name, labels
}

// describe renders a compact human summary for an incident.
func describe(root string, members []Anomaly) string {
	names := make(map[string]int)
	for _, a := range members {
		names[a.Name]++
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dir := "shifted"
	if len(members) > 0 {
		up, down := 0, 0
		for _, a := range members {
			if a.Sigma >= 0 {
				up++
			} else {
				down++
			}
		}
		switch {
		case down == 0:
			dir = "elevated"
		case up == 0:
			dir = "depressed"
		}
	}
	return fmt.Sprintf("%d anomalies rooted at %s: %s %s", len(members), root, strings.Join(keys, ", "), dir)
}
