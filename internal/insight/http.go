package insight

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the retained incidents as JSON beside /metrics. Query
// parameter n limits to the newest n incidents.
func (t *Tier) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		incidents := t.Incidents()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(incidents) {
				incidents = incidents[len(incidents)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total     int        `json:"total"`
			Incidents []Incident `json:"incidents"`
		}{Total: t.Total(), Incidents: incidents})
	})
}
