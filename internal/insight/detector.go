package insight

import "math"

// Detector defaults.
const (
	// DefaultSigma is the z-score sensitivity: a sample further than this
	// many (floored) standard deviations from the baseline is anomalous.
	DefaultSigma = 3.0
	// DefaultCUSUMThreshold is the cumulative-sum trip level in sigma units.
	DefaultCUSUMThreshold = 5.0
	// DefaultCUSUMDrift is the per-sample slack k subtracted from each
	// deviation before accumulation, so small sustained noise never trips.
	DefaultCUSUMDrift = 0.5
	// DefaultLearnSamples is the learning period: a series only alerts
	// after its baseline has absorbed this many samples.
	DefaultLearnSamples = 12
	// DefaultCUSUMClamp winsorizes each sample's contribution to the CUSUM
	// sums: one freak sample (a scheduler stall inflating a window's p95)
	// contributes at most this many sigmas, so only *persistent* shifts
	// accumulate to the threshold. The z-score test still sees the raw
	// deviation.
	DefaultCUSUMClamp = 4.0
)

// DetectorConfig tunes one series detector.
type DetectorConfig struct {
	Sigma          float64 // z-score sensitivity (default 3)
	CUSUMThreshold float64 // CUSUM trip level in sigmas (default 5)
	CUSUMDrift     float64 // CUSUM drift k in sigmas (default 0.5)
	CUSUMClamp     float64 // per-sample winsorizing bound in sigmas (default 4)
	LearnSamples   int     // samples before alerting (default 12)
	HalfLife       float64 // baseline half-life in samples (default 8)
	SeasonSlots    int     // >1 switches the baseline to Seasonal
	// MinConsecutive is the z-score persistence requirement ("for:" in
	// alerting-rule terms): the deviation must exceed Sigma on this many
	// consecutive samples before the detector fires. Default 1 (fire on the
	// first excursion); noisy heavy-tailed series want 2+ so an isolated
	// freak window does not page anyone.
	MinConsecutive int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Sigma <= 0 {
		c.Sigma = DefaultSigma
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = DefaultCUSUMThreshold
	}
	if c.CUSUMDrift <= 0 {
		c.CUSUMDrift = DefaultCUSUMDrift
	}
	if c.CUSUMClamp <= 0 {
		c.CUSUMClamp = DefaultCUSUMClamp
	}
	if c.LearnSamples <= 0 {
		c.LearnSamples = DefaultLearnSamples
	}
	if c.MinConsecutive <= 0 {
		c.MinConsecutive = 1
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	return c
}

// Detector runs the z-score and CUSUM tests for one series over one
// baseline. O(1) state: the baseline plus two cumulative sums.
type Detector struct {
	cfg      DetectorConfig
	baseline Baseline
	posSum   float64 // CUSUM of positive deviations
	negSum   float64 // CUSUM of negative deviations
	streak   int     // consecutive samples past the z-score threshold
}

// NewDetector creates a detector with its baseline chosen from the config.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	var b Baseline
	if cfg.SeasonSlots > 1 {
		b = NewSeasonal(cfg.SeasonSlots, cfg.HalfLife)
	} else {
		b = NewEWMA(cfg.HalfLife)
	}
	return &Detector{cfg: cfg, baseline: b}
}

// Baseline exposes the underlying model (tests, introspection endpoints).
func (d *Detector) Baseline() Baseline { return d.baseline }

// Learning reports whether the detector is still in its learning period.
func (d *Detector) Learning() bool { return d.baseline.N() < d.cfg.LearnSamples }

// sigmaFloor keeps the deviation denominator meaningful on quiet series: a
// flat line's std is ~0, and without a floor the first wiggle would be an
// "infinite sigma" anomaly. The floor is 5% of the baseline magnitude plus
// an absolute epsilon.
func (d *Detector) sigmaFloor() float64 {
	m := math.Abs(d.baseline.Mean())
	floor := 0.05*m + 1e-9
	if s := d.baseline.Std(); s > floor {
		return s
	}
	return floor
}

// Observe feeds one sample through both tests, then lets the baseline
// absorb it (test-before-update, so a spike is judged against the baseline
// it deviates from, not one it already contaminated). It returns the
// detection kinds that fired ("" entries filtered out), the deviation in
// floored sigmas, and the pre-update baseline mean.
func (d *Detector) Observe(v float64) (kinds []string, dev, mean float64) {
	mean = d.baseline.Mean()
	if d.baseline.N() == 0 {
		d.baseline.Update(v)
		return nil, 0, v
	}
	dev = (v - mean) / d.sigmaFloor()
	learning := d.Learning()
	d.baseline.Update(v)

	if math.Abs(dev) >= d.cfg.Sigma {
		d.streak++
	} else {
		d.streak = 0
	}
	if !learning && d.streak >= d.cfg.MinConsecutive {
		kinds = append(kinds, KindZScore)
	}
	// CUSUM accumulates deviations beyond the drift k; one-sided sums reset
	// when they trip (standard change-point restart) or decay to zero. Each
	// sample's contribution is winsorized so one freak window cannot trip
	// the threshold alone — that is the z-score test's job, with its own
	// persistence guard.
	c := dev
	if c > d.cfg.CUSUMClamp {
		c = d.cfg.CUSUMClamp
	} else if c < -d.cfg.CUSUMClamp {
		c = -d.cfg.CUSUMClamp
	}
	d.posSum = math.Max(0, d.posSum+c-d.cfg.CUSUMDrift)
	d.negSum = math.Max(0, d.negSum-c-d.cfg.CUSUMDrift)
	if learning {
		// Train only: keep the sums from tripping on startup transients.
		if d.posSum > d.cfg.CUSUMThreshold {
			d.posSum = 0
		}
		if d.negSum > d.cfg.CUSUMThreshold {
			d.negSum = 0
		}
		return nil, dev, mean
	}
	if d.posSum > d.cfg.CUSUMThreshold || d.negSum > d.cfg.CUSUMThreshold {
		kinds = append(kinds, KindCUSUM)
		d.posSum, d.negSum = 0, 0
	}
	return kinds, dev, mean
}
