// Package insight is NetAlytics' always-on statistical layer (ROADMAP item
// 3): a streaming anomaly-detection tier built from ordinary stream bolts.
// A registry feeder snapshots the telemetry plane periodically and injects
// each metric series as tuples; per-series adaptive baselines (EWMA and a
// Holt-Winters-style seasonal variant) feed z-score and CUSUM detectors; a
// topology-aware correlator collapses simultaneous per-tier anomalies into
// rooted incidents, published on the `_incidents` mq topic and an
// /incidents HTTP endpoint. The design follows the "statistical baselines
// beat ML for 80% of the value" position: every series costs O(1) state and
// every update is a handful of multiplications, so detection rides the
// existing pipeline at streaming cost.
package insight

import "math"

// Baseline is the adaptive model a detector compares samples against. N is
// the number of samples absorbed (driving the learning period), Mean the
// current expectation for the next sample, and Std the expected deviation.
type Baseline interface {
	// Update absorbs one sample.
	Update(v float64)
	// Mean predicts the next sample.
	Mean() float64
	// Std is the current estimate of sample standard deviation.
	Std() float64
	// N is the number of samples absorbed.
	N() int
}

// EWMA tracks an exponentially weighted mean and variance with O(1) state.
// The half-life H (in samples) sets the decay: alpha = 1 - 2^(-1/H), so a
// sample's weight halves every H updates. Variance uses the standard
// EW recurrence var' = (1-a)*(var + a*d^2) with d the pre-update residual,
// which keeps mean and variance consistent in one pass.
type EWMA struct {
	alpha float64
	mean  float64
	vari  float64
	n     int
}

// DefaultHalfLife is the default EWMA half-life in samples: long enough
// that a single spike barely moves the baseline, short enough to track
// diurnal drift across a few dozen snapshots.
const DefaultHalfLife = 8

// NewEWMA creates a baseline with the given half-life in samples (<=0 uses
// DefaultHalfLife).
func NewEWMA(halfLife float64) *EWMA {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &EWMA{alpha: 1 - math.Exp2(-1/halfLife)}
}

// Update implements Baseline.
func (e *EWMA) Update(v float64) {
	if e.n == 0 {
		e.mean = v
		e.n = 1
		return
	}
	d := v - e.mean
	e.mean += e.alpha * d
	e.vari = (1 - e.alpha) * (e.vari + e.alpha*d*d)
	e.n++
}

// Mean implements Baseline.
func (e *EWMA) Mean() float64 { return e.mean }

// Std implements Baseline.
func (e *EWMA) Std() float64 { return math.Sqrt(e.vari) }

// N implements Baseline.
func (e *EWMA) N() int { return e.n }

// Seasonal is the Holt-Winters-style variant: an additive seasonal model
// with a fixed number of slots per season. The level is an EWMA of the
// deseasonalized samples, each slot keeps an EW offset from the level, and
// the residual variance is shared across slots — state stays O(slots),
// fixed at construction, per series. It predicts level + offset[slot], so a
// workload with a stable periodic shape (tick-aligned batch flushes, load
// generator phases) does not look anomalous to the z-score detector.
type Seasonal struct {
	level   *EWMA
	beta    float64 // seasonal-offset smoothing
	offsets []float64
	seen    []bool
	slot    int
	n       int
}

// NewSeasonal creates a seasonal baseline with the given slots per season
// and half-life (in samples) for the level. Slots < 2 degrade to plain EWMA
// behavior with one slot.
func NewSeasonal(slots int, halfLife float64) *Seasonal {
	if slots < 1 {
		slots = 1
	}
	return &Seasonal{
		level:   NewEWMA(halfLife),
		beta:    0.25,
		offsets: make([]float64, slots),
		seen:    make([]bool, slots),
	}
}

// Update implements Baseline: deseasonalize, update the level and variance,
// then refresh the slot's offset and advance the season.
func (s *Seasonal) Update(v float64) {
	i := s.slot
	s.slot = (s.slot + 1) % len(s.offsets)
	s.n++
	deseason := v - s.offsets[i]
	s.level.Update(deseason)
	if !s.seen[i] {
		s.offsets[i] = v - s.level.Mean()
		s.seen[i] = true
		return
	}
	s.offsets[i] += s.beta * (v - (s.level.Mean() + s.offsets[i]))
}

// Mean implements Baseline: the prediction for the next sample's slot.
func (s *Seasonal) Mean() float64 { return s.level.Mean() + s.offsets[s.slot] }

// Std implements Baseline.
func (s *Seasonal) Std() float64 { return s.level.Std() }

// N implements Baseline.
func (s *Seasonal) N() int { return s.n }
