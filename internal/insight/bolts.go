package insight

import (
	"fmt"
	"sort"
	"time"

	"netalytics/internal/stream"
	"netalytics/internal/tuple"
)

// DetectBolt defaults.
const (
	// DefaultMaxSeries caps the number of per-series detectors one DetectBolt
	// task keeps; least-recently-fed series are evicted past the cap so state
	// stays bounded no matter how much label churn the registry sees.
	DefaultMaxSeries = 4096
	// DefaultCooldown suppresses repeat anomalies from one series inside the
	// window, so a sustained shift yields one anomaly per window instead of
	// one per snapshot.
	DefaultCooldown = 2 * time.Second
)

type seriesState struct {
	det      *Detector
	name     string
	labels   map[string]string
	lastSeen int64 // tuple TS, drives LRU eviction
	lastFire int64
}

// DetectBolt runs one Detector per series. Field-group it on Key so every
// series deterministically lands on one task; state is O(1) per series and
// the series map is LRU-capped.
type DetectBolt struct {
	cfg       DetectorConfig
	maxSeries int
	cooldown  int64 // ns
	series    map[string]*seriesState
}

// NewDetectBolt creates a detect bolt. maxSeries <= 0 and cooldown <= 0 use
// the defaults.
func NewDetectBolt(cfg DetectorConfig, maxSeries int, cooldown time.Duration) *DetectBolt {
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &DetectBolt{
		cfg:       cfg,
		maxSeries: maxSeries,
		cooldown:  cooldown.Nanoseconds(),
		series:    make(map[string]*seriesState),
	}
}

// Len reports the number of live series (tests, introspection).
func (b *DetectBolt) Len() int { return len(b.series) }

// Execute implements stream.Bolt: feed the sample to its series detector and
// emit anomaly tuples for whichever tests fired.
func (b *DetectBolt) Execute(t tuple.Tuple, emit stream.EmitFunc) {
	if t.SrcIP == AnomalyKey || t.SrcIP == IncidentKey || t.Key == "" {
		return
	}
	st, ok := b.series[t.Key]
	if !ok {
		if len(b.series) >= b.maxSeries {
			b.evict()
		}
		name, labels := ParseSeriesID(t.Key)
		st = &seriesState{det: NewDetector(b.cfg), name: name, labels: labels}
		b.series[t.Key] = st
	}
	st.lastSeen = t.TS
	kinds, dev, mean := st.det.Observe(t.Val)
	if len(kinds) == 0 {
		return
	}
	if st.lastFire != 0 && t.TS-st.lastFire < b.cooldown {
		return
	}
	st.lastFire = t.TS
	for _, kind := range kinds {
		emit(EncodeAnomaly(Anomaly{
			Series:   t.Key,
			Name:     st.name,
			Labels:   st.labels,
			Kind:     kind,
			TS:       t.TS,
			Value:    t.Val,
			Baseline: mean,
			Sigma:    dev,
		}))
	}
}

// evict drops the least-recently-fed series.
func (b *DetectBolt) evict() {
	var victim string
	var oldest int64
	for id, st := range b.series {
		if victim == "" || st.lastSeen < oldest {
			victim, oldest = id, st.lastSeen
		}
	}
	if victim != "" {
		delete(b.series, victim)
	}
}

// DefaultCorrelationWindow bounds how far apart two anomalies can be and
// still belong to one incident.
const DefaultCorrelationWindow = 2 * time.Second

// CorrelateBolt groups buffered anomalies into rooted incidents. Run it with
// a global grouping (single task) so every anomaly meets every other. Groups
// form by union-find over the service graph's Related relation; a group
// flushes as one Incident once it has been quiet for a full window (or aged
// out entirely), with its root picked by ServiceGraph.Root.
type CorrelateBolt struct {
	graph  *ServiceGraph
	window int64 // ns
	maxAge int64 // ns; force-flush bound for continuously refreshed groups
	buf    []Anomaly
	seq    int
	now    func() int64 // overridable for tests

	// MinSize gates incident emission on group size (<= 1 emits
	// everything). A sub-size group is held past its quiet window — up to
	// maxAge — waiting for corroboration: a real fault shifts several
	// series, but detectors react asymmetrically (an elevated shift
	// z-fires in a couple samples, a bounded depressed shift accumulates
	// through CUSUM much later), so the first anomaly must wait for its
	// partners. A group still alone at maxAge was a lone noisy series —
	// one scheduler stall on a heavily shared machine — and is dropped,
	// which is what turns "per-metric alerts" into incidents.
	MinSize int
}

// NewCorrelateBolt creates a correlator over graph. window <= 0 uses the
// default.
func NewCorrelateBolt(graph *ServiceGraph, window time.Duration) *CorrelateBolt {
	if window <= 0 {
		window = DefaultCorrelationWindow
	}
	if graph == nil {
		graph = NewServiceGraph(nil)
	}
	return &CorrelateBolt{
		graph:  graph,
		window: window.Nanoseconds(),
		maxAge: 3 * window.Nanoseconds(),
		now:    func() int64 { return time.Now().UnixNano() },
	}
}

// Execute implements stream.Bolt: buffer anomaly tuples until Tick.
func (b *CorrelateBolt) Execute(t tuple.Tuple, emit stream.EmitFunc) {
	if a, ok := DecodeAnomaly(t); ok {
		b.buf = append(b.buf, a)
	}
}

// related decides whether two anomalies belong to one incident: hosts on one
// request path when both carry host labels, or the same metric when neither
// does. A host-labeled and an unlabeled anomaly never merge.
func (b *CorrelateBolt) related(x, y Anomaly) bool {
	hx, hy := x.Host(), y.Host()
	if hx != "" && hy != "" {
		return b.graph.Related(hx, hy)
	}
	if hx == "" && hy == "" {
		return x.Name == y.Name
	}
	return false
}

// Tick implements stream.Ticker: flush every group that has gone quiet for a
// window (or exceeded the age bound) as one incident, keep the rest buffered.
func (b *CorrelateBolt) Tick(emit stream.EmitFunc) {
	b.flush(b.now(), emit)
}

// Cleanup implements stream.Cleaner: flush everything at shutdown.
func (b *CorrelateBolt) Cleanup(emit stream.EmitFunc) {
	b.flush(0, emit)
}

// flush groups the buffer by union-find and emits ripe groups. now == 0
// means flush unconditionally.
func (b *CorrelateBolt) flush(now int64, emit stream.EmitFunc) {
	if len(b.buf) == 0 {
		return
	}
	parent := make([]int, len(b.buf))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < len(b.buf); i++ {
		for j := i + 1; j < len(b.buf); j++ {
			if find(i) != find(j) && b.related(b.buf[i], b.buf[j]) {
				parent[find(j)] = find(i)
			}
		}
	}
	groups := make(map[int][]Anomaly)
	for i, a := range b.buf {
		r := find(i)
		groups[r] = append(groups[r], a)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	var keep []Anomaly
	for _, r := range roots {
		members := groups[r]
		newest, oldest := members[0].TS, members[0].TS
		for _, a := range members {
			if a.TS > newest {
				newest = a.TS
			}
			if a.TS < oldest {
				oldest = a.TS
			}
		}
		ripe := now == 0 || now-newest >= b.window || now-oldest >= b.maxAge
		if ripe && len(members) >= b.MinSize {
			emit(EncodeIncident(b.incident(members)))
			continue
		}
		if now != 0 && now-oldest < b.maxAge {
			// Not quiet yet, or quiet but sub-size: hold for corroboration.
			keep = append(keep, members...)
			continue
		}
		// Aged out (or shutting down) still below MinSize: a lone blip,
		// not a correlated incident — drop it.
	}
	b.buf = keep
}

// incident builds one Incident from a correlated group.
func (b *CorrelateBolt) incident(members []Anomaly) Incident {
	sort.Slice(members, func(i, j int) bool {
		if members[i].TS != members[j].TS {
			return members[i].TS < members[j].TS
		}
		return members[i].Series < members[j].Series
	})
	root := b.graph.RootOf(members)
	if root == "" {
		// No host labels anywhere: root at the dominant series name.
		counts := make(map[string]int)
		for _, a := range members {
			counts[a.Name]++
		}
		for name, n := range counts {
			if root == "" || n > counts[root] || (n == counts[root] && name < root) {
				root = name
			}
		}
	}
	b.seq++
	return Incident{
		ID:        fmt.Sprintf("inc%d", b.seq),
		Root:      root,
		Summary:   describe(root, members),
		StartNS:   members[0].TS,
		EndNS:     members[len(members)-1].TS,
		Anomalies: members,
	}
}
