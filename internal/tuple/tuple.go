// Package tuple defines the data records that flow from NFV monitors through
// the aggregation layer into the stream-processing engine.
//
// Per §3.1 of the paper, a parser emits tuples that are miniscule compared to
// the packets they derive from: the first element is an ID (usually a hash of
// the packet's n-tuple) that lets processors join information produced by
// different parsers about the same flow, followed by a small number of fields.
package tuple

import (
	"encoding/json"
	"fmt"
)

// Tuple is one monitoring record.
type Tuple struct {
	// FlowID is the join key: a hash of the packet's n-tuple, or a
	// parser-chosen ID for data aggregated across flows.
	FlowID uint64 `json:"id"`
	// Parser names the parser that produced the tuple; it selects the
	// aggregation-layer topic.
	Parser string `json:"parser"`
	// TS is the observation time in Unix nanoseconds.
	TS int64 `json:"ts"`

	SrcIP   string `json:"sip,omitempty"`
	DstIP   string `json:"dip,omitempty"`
	SrcPort uint16 `json:"sport,omitempty"`
	DstPort uint16 `json:"dport,omitempty"`

	// Key carries the string payload: a URL, a SQL statement, a memcached
	// key, or an event kind such as "start"/"end" for connection timing.
	Key string `json:"key,omitempty"`
	// Val carries the numeric payload: a byte count, a latency in
	// nanoseconds, or an increment.
	Val float64 `json:"val,omitempty"`

	// Trace carries per-stage timestamps when the telemetry tracer sampled
	// this tuple; nil for the (vast) untraced majority. Excluded from the
	// wire format: it is pipeline self-telemetry, not monitoring data.
	Trace *Trace `json:"-"`
}

// Trace is the stage-timestamp record of one sampled tuple, in Unix
// nanoseconds. Stages are stamped as the tuple crosses layer boundaries:
// capture at the vnet mirror tap, parse at monitor emit, produce at the mq
// partition append, consume at the stream spout poll; the sink time is taken
// when the session delivers the result. Each stage that forwards a traced
// tuple across a sharing boundary (mq consumer groups) clones the record, so
// stamps never race.
type Trace struct {
	CaptureNS int64
	ParseNS   int64
	ProduceNS int64
	ConsumeNS int64
}

// Attr returns a named attribute for group-by processing. Recognized names
// mirror the query language's group arguments: "srcIP", "dstIP", "src",
// "dst", "pair", "ips", "get"/"key", "parser" and "flow".
func (t *Tuple) Attr(name string) string {
	switch name {
	case "srcIP":
		return t.SrcIP
	case "dstIP", "destIP":
		return t.DstIP
	case "src":
		return fmt.Sprintf("%s:%d", t.SrcIP, t.SrcPort)
	case "dst":
		return fmt.Sprintf("%s:%d", t.DstIP, t.DstPort)
	case "pair":
		return fmt.Sprintf("%s:%d->%s:%d", t.SrcIP, t.SrcPort, t.DstIP, t.DstPort)
	case "ips":
		return fmt.Sprintf("%s->%s", t.SrcIP, t.DstIP)
	case "get", "key", "url":
		return t.Key
	case "parser":
		return t.Parser
	case "flow":
		return fmt.Sprintf("%d", t.FlowID)
	default:
		return ""
	}
}

// Batch is the unit monitors ship to the aggregation layer: tuples from one
// parser, sent together to amortize per-message overhead (§3.1).
type Batch struct {
	Parser string  `json:"parser"`
	Tuples []Tuple `json:"tuples"`

	// ProduceNS is stamped by the aggregation layer when the batch is
	// appended to a partition; spouts copy it into the Trace of any sampled
	// tuples the batch carries. Written once by the single producer before
	// the batch becomes visible to consumers. Not part of the wire format.
	ProduceNS int64 `json:"-"`
}

// EncodeJSON serializes the batch in the monitors' output format.
func (b *Batch) EncodeJSON() ([]byte, error) {
	return json.Marshal(b)
}

// DecodeJSON parses a batch previously encoded with EncodeJSON.
func DecodeJSON(data []byte) (*Batch, error) {
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("tuple: decoding batch: %w", err)
	}
	return &b, nil
}

// WireSize estimates the encoded size of the batch in bytes without
// serializing it; the aggregation layer uses it for rate accounting.
func (b *Batch) WireSize() int {
	n := 24 + len(b.Parser)
	for i := range b.Tuples {
		t := &b.Tuples[i]
		n += 48 + len(t.Parser) + len(t.SrcIP) + len(t.DstIP) + len(t.Key)
	}
	return n
}
