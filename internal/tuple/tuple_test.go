package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sample() Tuple {
	return Tuple{
		FlowID: 0xdeadbeef, Parser: "http_get", TS: 1234567890,
		SrcIP: "10.0.2.8", DstIP: "10.0.2.9", SrcPort: 5555, DstPort: 80,
		Key: "/index.html", Val: 42,
	}
}

func TestAttr(t *testing.T) {
	tu := sample()
	tests := []struct {
		name, want string
	}{
		{"srcIP", "10.0.2.8"},
		{"dstIP", "10.0.2.9"},
		{"destIP", "10.0.2.9"},
		{"src", "10.0.2.8:5555"},
		{"dst", "10.0.2.9:80"},
		{"pair", "10.0.2.8:5555->10.0.2.9:80"},
		{"ips", "10.0.2.8->10.0.2.9"},
		{"get", "/index.html"},
		{"key", "/index.html"},
		{"url", "/index.html"},
		{"parser", "http_get"},
		{"flow", "3735928559"},
		{"bogus", ""},
	}
	for _, tt := range tests {
		if got := tu.Attr(tt.name); got != tt.want {
			t.Errorf("Attr(%q) = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestBatchJSONRoundTrip(t *testing.T) {
	b := &Batch{Parser: "http_get", Tuples: []Tuple{sample(), {FlowID: 1, Parser: "http_get", Key: "/a"}}}
	data, err := b.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeJSON(data)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if got.Parser != b.Parser || len(got.Tuples) != len(b.Tuples) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range b.Tuples {
		if got.Tuples[i] != b.Tuples[i] {
			t.Errorf("tuple %d = %+v, want %+v", i, got.Tuples[i], b.Tuples[i])
		}
	}
}

func TestDecodeJSONError(t *testing.T) {
	if _, err := DecodeJSON([]byte("{not json")); err == nil {
		t.Error("DecodeJSON accepted garbage")
	}
}

// Property: WireSize is a usable stand-in for the encoded size — positive,
// monotone in tuple count, and within a small factor of actual JSON size.
func TestWireSizeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	prop := func() bool {
		n := 1 + r.Intn(50)
		b := &Batch{Parser: "p"}
		for i := 0; i < n; i++ {
			b.Tuples = append(b.Tuples, Tuple{
				FlowID: r.Uint64(), Parser: "p", TS: r.Int63(),
				SrcIP: "10.1.2.3", DstIP: "10.4.5.6", Key: "/some/url",
				Val: r.Float64() * 1000,
			})
		}
		est := b.WireSize()
		data, err := b.EncodeJSON()
		if err != nil || est <= 0 {
			return false
		}
		ratio := float64(est) / float64(len(data))
		return ratio > 0.25 && ratio < 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	batch := &Batch{Parser: "http_get"}
	for i := 0; i < 64; i++ {
		batch.Tuples = append(batch.Tuples, sample())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.EncodeJSON(); err != nil {
			b.Fatal(err)
		}
	}
}
