// Package metrics provides the small statistics toolkit the experiments use
// to reproduce the paper's figures: sample series with percentiles,
// fixed-width histograms (Figs. 10, 12, 15), empirical CDFs (Figs. 13, 14)
// and windowed rate meters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Series is a thread-safe collection of float64 samples.
type Series struct {
	mu   sync.Mutex
	vals []float64
}

// Add appends one sample.
func (s *Series) Add(v float64) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Values returns a copy of the samples.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest sample, or +Inf for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := math.Inf(1)
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or -Inf for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := math.Inf(-1)
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between the two closest ranks (the "exclusive" variant at
// rank p/100*(n-1), as numpy's default percentile computes), or 0 for an
// empty series. p <= 0 returns the minimum, p >= 100 the maximum.
func (s *Series) Percentile(p float64) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	rank := p / 100 * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return vals[lo]
	}
	frac := rank - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Bin is one histogram bucket.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets the samples into fixed-width bins starting at 0.
func (s *Series) Histogram(binWidth float64) []Bin {
	vals := s.Values()
	if len(vals) == 0 || binWidth <= 0 {
		return nil
	}
	maxIdx := 0
	counts := map[int]int{}
	for _, v := range vals {
		idx := int(v / binWidth)
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	out := make([]Bin, maxIdx+1)
	for i := range out {
		out[i] = Bin{Lo: float64(i) * binWidth, Hi: float64(i+1) * binWidth, Count: counts[i]}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of the samples.
func (s *Series) CDF() []CDFPoint {
	vals := s.Values()
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	out := make([]CDFPoint, len(vals))
	n := float64(len(vals))
	for i, v := range vals {
		out[i] = CDFPoint{X: v, P: float64(i+1) / n}
	}
	return out
}

// Summary formats a one-line digest of the series.
func (s *Series) Summary() string {
	if s.Len() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f",
		s.Len(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Min(), s.Max())
}

// RateMeter measures an event rate over a sliding window of fixed-width
// slots, in the style of the rolling counters Storm topologies use.
type RateMeter struct {
	mu       sync.Mutex
	slotDur  time.Duration
	slots    []float64
	current  int
	lastTick time.Time
	now      func() time.Time
}

// NewRateMeter creates a meter with the given number of slots of slotDur
// each; the reported rate covers slots*slotDur of history.
func NewRateMeter(slots int, slotDur time.Duration) *RateMeter {
	if slots < 1 {
		slots = 1
	}
	if slotDur <= 0 {
		slotDur = time.Second
	}
	return &RateMeter{
		slotDur:  slotDur,
		slots:    make([]float64, slots),
		now:      time.Now,
		lastTick: time.Now(),
	}
}

// Add records n events at the current time.
func (r *RateMeter) Add(n float64) {
	r.mu.Lock()
	r.advance()
	r.slots[r.current] += n
	r.mu.Unlock()
}

// Rate returns events per second over the window.
func (r *RateMeter) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	total := 0.0
	for _, v := range r.slots {
		total += v
	}
	window := r.slotDur * time.Duration(len(r.slots))
	return total / window.Seconds()
}

// advance rotates expired slots. Caller holds the lock.
func (r *RateMeter) advance() {
	now := r.now()
	for now.Sub(r.lastTick) >= r.slotDur {
		r.current = (r.current + 1) % len(r.slots)
		r.slots[r.current] = 0
		r.lastTick = r.lastTick.Add(r.slotDur)
		if now.Sub(r.lastTick) > r.slotDur*time.Duration(len(r.slots)) {
			// Far behind: clear everything and realign.
			for i := range r.slots {
				r.slots[i] = 0
			}
			r.lastTick = now
			break
		}
	}
}
