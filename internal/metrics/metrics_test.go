package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func seeded(vals ...float64) *Series {
	var s Series
	for _, v := range vals {
		s.Add(v)
	}
	return &s
}

func TestSeriesBasics(t *testing.T) {
	s := seeded(1, 2, 3, 4)
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series mean/percentile not 0")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty series min/max not infinities")
	}
	if s.Histogram(10) != nil || s.CDF() != nil {
		t.Error("empty series histogram/CDF not nil")
	}
	if s.Summary() != "n=0" {
		t.Errorf("Summary = %q", s.Summary())
	}
}

func TestPercentile(t *testing.T) {
	s := seeded(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 100}, {50, 55}, {-5, 10}, {110, 100}, {25, 32.5},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	s := seeded(5, 15, 15, 25, 95)
	bins := s.Histogram(10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(bins))
	}
	wantCounts := map[int]int{0: 1, 1: 2, 2: 1, 9: 1}
	total := 0
	for i, b := range bins {
		if b.Count != wantCounts[i] {
			t.Errorf("bin %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
		if b.Lo != float64(i)*10 || b.Hi != float64(i+1)*10 {
			t.Errorf("bin %d bounds = [%v,%v)", i, b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != s.Len() {
		t.Errorf("histogram total = %d, want %d", total, s.Len())
	}
	if s.Histogram(0) != nil {
		t.Error("zero bin width should return nil")
	}
}

func TestCDF(t *testing.T) {
	s := seeded(3, 1, 2)
	cdf := s.CDF()
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	wantX := []float64{1, 2, 3}
	for i, pt := range cdf {
		if pt.X != wantX[i] {
			t.Errorf("cdf[%d].X = %v, want %v", i, pt.X, wantX[i])
		}
	}
	if cdf[2].P != 1 {
		t.Errorf("final P = %v, want 1", cdf[2].P)
	}
	if cdf[0].P <= 0 {
		t.Errorf("first P = %v, want > 0", cdf[0].P)
	}
}

// Property: CDF is monotone in both coordinates and ends at probability 1;
// percentiles are monotone in p and bounded by min/max.
func TestStatsProperties(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	prop := func() bool {
		var s Series
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.NormFloat64() * 100)
		}
		cdf := s.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
				return false
			}
		}
		if cdf[len(cdf)-1].P != 1 {
			return false
		}
		prev := math.Inf(-1)
		for p := 5.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAdd(t *testing.T) {
	var s Series
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(1)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Errorf("Len = %d, want 8000", s.Len())
	}
}

func TestSummaryFormat(t *testing.T) {
	s := seeded(1, 2, 3)
	got := s.Summary()
	for _, frag := range []string{"n=3", "mean=2.00", "min=1.00", "max=3.00"} {
		if !strings.Contains(got, frag) {
			t.Errorf("Summary %q missing %q", got, frag)
		}
	}
}

func TestRateMeter(t *testing.T) {
	r := NewRateMeter(4, 250*time.Millisecond)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.lastTick = now

	r.Add(100)
	// Window is 1s, so 100 events => 100/s.
	if got := r.Rate(); math.Abs(got-100) > 1e-9 {
		t.Errorf("Rate = %v, want 100", got)
	}
	// Advance past the whole window: rate decays to 0.
	now = now.Add(2 * time.Second)
	if got := r.Rate(); got != 0 {
		t.Errorf("Rate after expiry = %v, want 0", got)
	}
	// Partial expiry: half the window elapsed drops old slots only.
	r.Add(40)
	now = now.Add(500 * time.Millisecond)
	if got := r.Rate(); math.Abs(got-40) > 1e-9 {
		t.Errorf("Rate after partial advance = %v, want 40", got)
	}
}

func TestRateMeterDefaults(t *testing.T) {
	r := NewRateMeter(0, 0)
	r.Add(5)
	if r.Rate() < 0 {
		t.Error("negative rate")
	}
}

// TestPercentileInterpolation pins Percentile's contract: linear
// interpolation between the two closest order statistics at rank
// p/100*(n-1), NOT nearest-rank. The two-sample case distinguishes the two
// unambiguously — nearest-rank can only ever return an actual sample.
func TestPercentileInterpolation(t *testing.T) {
	if got := seeded(10, 20).Percentile(50); got != 15 {
		t.Fatalf("Percentile(50) of {10,20} = %v, want 15 (linear interpolation)", got)
	}
	if got := seeded(0, 100).Percentile(25); got != 25 {
		t.Fatalf("Percentile(25) of {0,100} = %v, want 25", got)
	}

	prop := func(raw []float64, pRaw float64) bool {
		vals := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(v) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		s := seeded(vals...)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		n := len(sorted)
		// Grid points: percentile i/(n-1)*100 recovers the i-th order
		// statistic exactly.
		for i := 0; i < n; i++ {
			p := float64(i) / float64(n-1) * 100
			if got := s.Percentile(p); math.Abs(got-sorted[i]) > 1e-6 {
				return false
			}
		}
		// Arbitrary p: the result lies between the two bracketing order
		// statistics of rank p/100*(n-1).
		p := math.Mod(math.Abs(pRaw), 100)
		rank := p / 100 * float64(n-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		got := s.Percentile(p)
		return got >= sorted[lo]-1e-6 && got <= sorted[hi]+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
