package packet

import (
	"encoding/binary"
	"net/netip"
)

// Builder assembles raw frames. The zero value is ready to use; TTL defaults
// to 64 and MACs are synthesized from the IP addresses so that frames are
// self-consistent without the caller managing an ARP table.
type Builder struct {
	// TTL overrides the default IPv4 TTL of 64 when non-zero.
	TTL uint8
	// IPID is stamped into the IPv4 identification field.
	IPID uint16
}

// TCPSpec describes a TCP frame to build.
type TCPSpec struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Payload []byte
}

// UDPSpec describes a UDP frame to build.
type UDPSpec struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// TCP builds a complete Ethernet+IPv4+TCP frame.
func (b *Builder) TCP(spec TCPSpec) []byte {
	totalLen := IPv4HeaderLen + TCPHeaderLen + len(spec.Payload)
	raw := make([]byte, EthernetHeaderLen+totalLen)
	b.ethernet(raw, spec.Src, spec.Dst)
	b.ipv4(raw[EthernetHeaderLen:], spec.Src, spec.Dst, ProtoTCP, uint16(totalLen))

	t := raw[EthernetHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(t[0:2], spec.SrcPort)
	binary.BigEndian.PutUint16(t[2:4], spec.DstPort)
	binary.BigEndian.PutUint32(t[4:8], spec.Seq)
	binary.BigEndian.PutUint32(t[8:12], spec.Ack)
	t[12] = (TCPHeaderLen / 4) << 4
	t[13] = spec.Flags & 0x3f
	window := spec.Window
	if window == 0 {
		window = 65535
	}
	binary.BigEndian.PutUint16(t[14:16], window)
	copy(t[TCPHeaderLen:], spec.Payload)
	binary.BigEndian.PutUint16(t[16:18], transportChecksum(spec.Src, spec.Dst, ProtoTCP, t[:TCPHeaderLen+len(spec.Payload)]))
	return raw
}

// UDP builds a complete Ethernet+IPv4+UDP frame.
func (b *Builder) UDP(spec UDPSpec) []byte {
	totalLen := IPv4HeaderLen + UDPHeaderLen + len(spec.Payload)
	raw := make([]byte, EthernetHeaderLen+totalLen)
	b.ethernet(raw, spec.Src, spec.Dst)
	b.ipv4(raw[EthernetHeaderLen:], spec.Src, spec.Dst, ProtoUDP, uint16(totalLen))

	u := raw[EthernetHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(u[0:2], spec.SrcPort)
	binary.BigEndian.PutUint16(u[2:4], spec.DstPort)
	binary.BigEndian.PutUint16(u[4:6], uint16(UDPHeaderLen+len(spec.Payload)))
	copy(u[UDPHeaderLen:], spec.Payload)
	binary.BigEndian.PutUint16(u[6:8], transportChecksum(spec.Src, spec.Dst, ProtoUDP, u[:UDPHeaderLen+len(spec.Payload)]))
	return raw
}

func (b *Builder) ethernet(raw []byte, src, dst netip.Addr) {
	copy(raw[0:6], macFor(dst))
	copy(raw[6:12], macFor(src))
	binary.BigEndian.PutUint16(raw[12:14], EtherTypeIPv4)
}

func (b *Builder) ipv4(ip []byte, src, dst netip.Addr, proto uint8, totalLen uint16) {
	ip[0] = 4<<4 | IPv4HeaderLen/4
	binary.BigEndian.PutUint16(ip[2:4], totalLen)
	binary.BigEndian.PutUint16(ip[4:6], b.IPID)
	ttl := b.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = proto
	s, d := src.As4(), dst.As4()
	copy(ip[12:16], s[:])
	copy(ip[16:20], d[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))
}

// macFor derives a stable locally-administered MAC from an IPv4 address.
func macFor(ip netip.Addr) []byte {
	a := ip.As4()
	return []byte{0x02, 0x00, a[0], a[1], a[2], a[3]}
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum of a raw frame
// is valid. The frame must be at least MinFrameLen bytes.
func VerifyIPv4Checksum(raw []byte) bool {
	if len(raw) < MinFrameLen {
		return false
	}
	return Checksum(raw[EthernetHeaderLen:EthernetHeaderLen+IPv4HeaderLen]) == 0
}

// transportChecksum computes the TCP/UDP checksum over the IPv4 pseudo-header
// and the transport segment, with the checksum field zeroed by construction.
func transportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(segment)+1)
	s, d := src.As4(), dst.As4()
	copy(pseudo[0:4], s[:])
	copy(pseudo[4:8], d[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	pseudo = append(pseudo, segment...)
	sum := Checksum(pseudo)
	if sum == 0 && proto == ProtoUDP {
		sum = 0xffff
	}
	return sum
}

// VerifyTransportChecksum reports whether the TCP/UDP checksum of a decoded
// frame is valid.
func VerifyTransportChecksum(f *Frame) bool {
	ihl := IPv4HeaderLen
	segment := f.Raw[EthernetHeaderLen+ihl : EthernetHeaderLen+int(f.IP.TotalLen)]
	seg := make([]byte, len(segment))
	copy(seg, segment)
	switch f.IP.Protocol {
	case ProtoTCP:
		seg[16], seg[17] = 0, 0
		return transportChecksum(f.IP.Src, f.IP.Dst, ProtoTCP, seg) == f.TCP.Checksum
	case ProtoUDP:
		seg[6], seg[7] = 0, 0
		return transportChecksum(f.IP.Src, f.IP.Dst, ProtoUDP, seg) == f.UDP.Checksum
	default:
		return false
	}
}
