// Package packet implements wire-format encoding and decoding for the
// Ethernet, IPv4, TCP and UDP headers that NetAlytics monitors inspect.
//
// The package is the substrate equivalent of the slice of DPDK and libpcap
// functionality the paper's monitors rely on: frames are flat byte slices in
// network byte order, decoding is allocation-light, and a decoded Frame keeps
// pointers into the original buffer (zero-copy views) so that many parsers can
// inspect one packet concurrently.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EtherType values understood by the virtual network.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Header sizes in bytes. The implementation supports options-free IPv4 and
// TCP headers, which is what the monitor's fast path assumes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	UDPHeaderLen      = 8

	// MinFrameLen is the smallest frame Decode accepts: an Ethernet header
	// followed by an options-free IPv4 header.
	MinFrameLen = EthernetHeaderLen + IPv4HeaderLen
)

// TCP flag bits.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
	TCPFlagURG uint8 = 1 << 5
)

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrNotIPv4     = errors.New("packet: not an IPv4 frame")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadIHL      = errors.New("packet: unsupported IP header length")
	ErrBadProtocol = errors.New("packet: unsupported transport protocol")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// IPv4 is a decoded options-free IPv4 header.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      netip.Addr
	Dst      netip.Addr
}

// TCP is a decoded options-free TCP header.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
}

// FIN reports whether the FIN flag is set.
func (t *TCP) FIN() bool { return t.Flags&TCPFlagFIN != 0 }

// SYN reports whether the SYN flag is set.
func (t *TCP) SYN() bool { return t.Flags&TCPFlagSYN != 0 }

// RST reports whether the RST flag is set.
func (t *TCP) RST() bool { return t.Flags&TCPFlagRST != 0 }

// ACK reports whether the ACK flag is set.
func (t *TCP) ACK() bool { return t.Flags&TCPFlagACK != 0 }

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Frame is a decoded view over a raw frame buffer. Payload aliases the
// original buffer; callers that retain a Frame past the lifetime of the
// buffer must copy Payload themselves.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	TCP     *TCP // non-nil when IP.Protocol == ProtoTCP
	UDP     *UDP // non-nil when IP.Protocol == ProtoUDP
	Payload []byte
	Raw     []byte

	tcp TCP
	udp UDP
}

// Decode parses raw into f, overwriting any previous contents. It is the
// allocation-free entry point used by the monitor fast path: the Frame and
// its embedded header structs are reused across packets.
func (f *Frame) Decode(raw []byte) error {
	if len(raw) < MinFrameLen {
		return ErrTruncated
	}
	f.Raw = raw
	f.TCP = nil
	f.UDP = nil
	f.Payload = nil

	f.Eth.Dst = MAC(raw[0:6])
	f.Eth.Src = MAC(raw[6:12])
	f.Eth.EtherType = binary.BigEndian.Uint16(raw[12:14])
	if f.Eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}

	ip := raw[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl != IPv4HeaderLen {
		return ErrBadIHL
	}
	f.IP.TOS = ip[1]
	f.IP.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	f.IP.ID = binary.BigEndian.Uint16(ip[4:6])
	f.IP.TTL = ip[8]
	f.IP.Protocol = ip[9]
	f.IP.Checksum = binary.BigEndian.Uint16(ip[10:12])
	f.IP.Src = netip.AddrFrom4([4]byte(ip[12:16]))
	f.IP.Dst = netip.AddrFrom4([4]byte(ip[16:20]))

	end := EthernetHeaderLen + int(f.IP.TotalLen)
	if end > len(raw) {
		return ErrTruncated
	}
	transport := raw[EthernetHeaderLen+ihl : end]

	switch f.IP.Protocol {
	case ProtoTCP:
		if len(transport) < TCPHeaderLen {
			return ErrTruncated
		}
		f.tcp.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		f.tcp.DstPort = binary.BigEndian.Uint16(transport[2:4])
		f.tcp.Seq = binary.BigEndian.Uint32(transport[4:8])
		f.tcp.Ack = binary.BigEndian.Uint32(transport[8:12])
		dataOff := int(transport[12]>>4) * 4
		if dataOff < TCPHeaderLen || dataOff > len(transport) {
			return ErrTruncated
		}
		f.tcp.Flags = transport[13] & 0x3f
		f.tcp.Window = binary.BigEndian.Uint16(transport[14:16])
		f.tcp.Checksum = binary.BigEndian.Uint16(transport[16:18])
		f.TCP = &f.tcp
		f.Payload = transport[dataOff:]
	case ProtoUDP:
		if len(transport) < UDPHeaderLen {
			return ErrTruncated
		}
		f.udp.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		f.udp.DstPort = binary.BigEndian.Uint16(transport[2:4])
		f.udp.Length = binary.BigEndian.Uint16(transport[4:6])
		f.udp.Checksum = binary.BigEndian.Uint16(transport[6:8])
		f.UDP = &f.udp
		f.Payload = transport[UDPHeaderLen:]
	default:
		return ErrBadProtocol
	}
	return nil
}

// Decode parses a raw frame into a freshly allocated Frame.
func Decode(raw []byte) (*Frame, error) {
	f := new(Frame)
	if err := f.Decode(raw); err != nil {
		return nil, err
	}
	return f, nil
}

// FiveTuple identifies a transport flow.
type FiveTuple struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// FlowTuple extracts the five-tuple of a decoded frame. The second return
// value is false for frames without a TCP or UDP header.
func (f *Frame) FlowTuple() (FiveTuple, bool) {
	ft := FiveTuple{Src: f.IP.Src, Dst: f.IP.Dst, Proto: f.IP.Protocol}
	switch {
	case f.TCP != nil:
		ft.SrcPort = f.TCP.SrcPort
		ft.DstPort = f.TCP.DstPort
	case f.UDP != nil:
		ft.SrcPort = f.UDP.SrcPort
		ft.DstPort = f.UDP.DstPort
	default:
		return FiveTuple{}, false
	}
	return ft, true
}

// Reverse returns the tuple with the endpoints swapped.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Src: ft.Dst, Dst: ft.Src,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// Canonical returns a direction-independent form of the tuple: the
// lexicographically smaller endpoint is placed first. Both directions of a
// connection therefore share one canonical tuple, which is what per-flow
// sampling and per-connection parsers key on.
func (ft FiveTuple) Canonical() FiveTuple {
	a := endpointKey(ft.Src, ft.SrcPort)
	b := endpointKey(ft.Dst, ft.DstPort)
	if a <= b {
		return ft
	}
	return ft.Reverse()
}

func endpointKey(ip netip.Addr, port uint16) uint64 {
	b := ip.As4()
	return uint64(binary.BigEndian.Uint32(b[:]))<<16 | uint64(port)
}

// Hash returns an FNV-1a hash of the tuple, suitable for sampling decisions
// and worker dispatch.
func (ft FiveTuple) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	src, dst := ft.Src.As4(), ft.Dst.As4()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(ft.SrcPort >> 8))
	mix(byte(ft.SrcPort))
	mix(byte(ft.DstPort >> 8))
	mix(byte(ft.DstPort))
	mix(ft.Proto)
	return h
}

// CanonicalHash returns the hash of the canonical (direction-independent)
// tuple, so both directions of a connection hash identically.
func (ft FiveTuple) CanonicalHash() uint64 { return ft.Canonical().Hash() }

// String renders the tuple as "proto src:port->dst:port".
func (ft FiveTuple) String() string {
	proto := "ip"
	switch ft.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d->%s:%d", proto, ft.Src, ft.SrcPort, ft.Dst, ft.DstPort)
}

// Checksum computes the RFC 1071 internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
