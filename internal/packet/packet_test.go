package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcAddr = netip.MustParseAddr("10.0.2.8")
	dstAddr = netip.MustParseAddr("10.0.2.9")
)

func buildTCP(t *testing.T, flags uint8, payload []byte) []byte {
	t.Helper()
	var b Builder
	return b.TCP(TCPSpec{
		Src: srcAddr, Dst: dstAddr,
		SrcPort: 5555, DstPort: 80,
		Seq: 1000, Ack: 2000,
		Flags: flags, Payload: payload,
	})
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET /index.html HTTP/1.1\r\n\r\n")
	raw := buildTCP(t, TCPFlagPSH|TCPFlagACK, payload)

	f, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if f.IP.Src != srcAddr || f.IP.Dst != dstAddr {
		t.Errorf("IP addrs = %v -> %v, want %v -> %v", f.IP.Src, f.IP.Dst, srcAddr, dstAddr)
	}
	if f.IP.Protocol != ProtoTCP {
		t.Errorf("Protocol = %d, want %d", f.IP.Protocol, ProtoTCP)
	}
	if f.TCP == nil {
		t.Fatal("TCP header missing")
	}
	if f.TCP.SrcPort != 5555 || f.TCP.DstPort != 80 {
		t.Errorf("ports = %d -> %d, want 5555 -> 80", f.TCP.SrcPort, f.TCP.DstPort)
	}
	if f.TCP.Seq != 1000 || f.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d, want 1000/2000", f.TCP.Seq, f.TCP.Ack)
	}
	if !f.TCP.ACK() || f.TCP.SYN() || f.TCP.FIN() || f.TCP.RST() {
		t.Errorf("flags = %06b, want only PSH|ACK set", f.TCP.Flags)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload = %q, want %q", f.Payload, payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	var b Builder
	payload := []byte("get somekey\r\n")
	raw := b.UDP(UDPSpec{Src: srcAddr, Dst: dstAddr, SrcPort: 4000, DstPort: 11211, Payload: payload})

	f, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if f.UDP == nil {
		t.Fatal("UDP header missing")
	}
	if f.UDP.SrcPort != 4000 || f.UDP.DstPort != 11211 {
		t.Errorf("ports = %d -> %d, want 4000 -> 11211", f.UDP.SrcPort, f.UDP.DstPort)
	}
	if int(f.UDP.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("UDP length = %d, want %d", f.UDP.Length, UDPHeaderLen+len(payload))
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload = %q, want %q", f.Payload, payload)
	}
}

func TestChecksumsValid(t *testing.T) {
	raw := buildTCP(t, TCPFlagSYN, nil)
	if !VerifyIPv4Checksum(raw) {
		t.Error("IPv4 checksum invalid on built frame")
	}
	f, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !VerifyTransportChecksum(f) {
		t.Error("TCP checksum invalid on built frame")
	}

	// Corrupt one payload-free header byte and the transport checksum must fail.
	raw2 := buildTCP(t, TCPFlagSYN, []byte("x"))
	raw2[len(raw2)-1] ^= 0xff
	f2, err := Decode(raw2)
	if err != nil {
		t.Fatalf("Decode corrupted: %v", err)
	}
	if VerifyTransportChecksum(f2) {
		t.Error("TCP checksum verified on corrupted frame")
	}
}

func TestDecodeErrors(t *testing.T) {
	var b Builder
	good := b.TCP(TCPSpec{Src: srcAddr, Dst: dstAddr, SrcPort: 1, DstPort: 2})

	tests := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:10], ErrTruncated},
		{"truncated transport", good[:MinFrameLen+4], ErrTruncated},
		{"not ipv4 ethertype", withByte(good, 12, 0x08, 0x06), ErrNotIPv4},
		{"bad ip version", withByte(good, EthernetHeaderLen, 0x65), ErrBadVersion},
		{"options ihl", withByte(good, EthernetHeaderLen, 0x46), ErrBadIHL},
		{"unknown protocol", withByte(good, EthernetHeaderLen+9, 99), ErrBadProtocol},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.raw); !errors.Is(err, tt.want) {
				t.Errorf("Decode: err = %v, want %v", err, tt.want)
			}
		})
	}
}

func withByte(raw []byte, off int, vals ...byte) []byte {
	out := make([]byte, len(raw))
	copy(out, raw)
	copy(out[off:], vals)
	return out
}

func TestFlowTuple(t *testing.T) {
	raw := buildTCP(t, TCPFlagACK, nil)
	f, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	ft, ok := f.FlowTuple()
	if !ok {
		t.Fatal("FlowTuple: not ok")
	}
	want := FiveTuple{Src: srcAddr, Dst: dstAddr, SrcPort: 5555, DstPort: 80, Proto: ProtoTCP}
	if ft != want {
		t.Errorf("tuple = %v, want %v", ft, want)
	}
	if got := ft.String(); got != "tcp 10.0.2.8:5555->10.0.2.9:80" {
		t.Errorf("String = %q", got)
	}
}

func TestCanonicalSymmetry(t *testing.T) {
	ft := FiveTuple{Src: srcAddr, Dst: dstAddr, SrcPort: 5555, DstPort: 80, Proto: ProtoTCP}
	rev := ft.Reverse()
	if ft.Canonical() != rev.Canonical() {
		t.Errorf("Canonical differs across directions: %v vs %v", ft.Canonical(), rev.Canonical())
	}
	if ft.CanonicalHash() != rev.CanonicalHash() {
		t.Error("CanonicalHash differs across directions")
	}
	if ft.Hash() == rev.Hash() {
		t.Error("directional Hash unexpectedly identical; hash too weak")
	}
}

func randomTuple(r *rand.Rand) FiveTuple {
	var a, b [4]byte
	r.Read(a[:])
	r.Read(b[:])
	return FiveTuple{
		Src:     netip.AddrFrom4(a),
		Dst:     netip.AddrFrom4(b),
		SrcPort: uint16(r.Intn(65536)),
		DstPort: uint16(r.Intn(65536)),
		Proto:   ProtoTCP,
	}
}

// Property: canonicalization is idempotent and direction-independent for
// arbitrary tuples.
func TestCanonicalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func() bool {
		ft := randomTuple(r)
		c := ft.Canonical()
		return c.Canonical() == c && ft.Reverse().Canonical() == c
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: build→decode round-trips arbitrary payloads bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var b Builder
	prop := func() bool {
		ft := randomTuple(r)
		payload := make([]byte, r.Intn(1200))
		r.Read(payload)
		raw := b.TCP(TCPSpec{
			Src: ft.Src, Dst: ft.Dst, SrcPort: ft.SrcPort, DstPort: ft.DstPort,
			Seq: r.Uint32(), Flags: TCPFlagACK, Payload: payload,
		})
		f, err := Decode(raw)
		if err != nil {
			return false
		}
		got, ok := f.FlowTuple()
		return ok && got == ft && bytes.Equal(f.Payload, payload) &&
			VerifyIPv4Checksum(raw) && VerifyTransportChecksum(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownValues(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d (ones complement of 0xddf2).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd-length input exercises the trailing-byte path.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd Checksum = %#04x", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x0a, 0x00, 0x02, 0x08}
	if got := m.String(); got != "02:00:0a:00:02:08" {
		t.Errorf("MAC.String = %q", got)
	}
}

func TestDecodeReuse(t *testing.T) {
	var f Frame
	rawTCP := buildTCP(t, TCPFlagSYN, nil)
	var b Builder
	rawUDP := b.UDP(UDPSpec{Src: srcAddr, Dst: dstAddr, SrcPort: 9, DstPort: 10})

	if err := f.Decode(rawTCP); err != nil {
		t.Fatalf("Decode tcp: %v", err)
	}
	if f.TCP == nil || f.UDP != nil {
		t.Fatal("want TCP view after first decode")
	}
	if err := f.Decode(rawUDP); err != nil {
		t.Fatalf("Decode udp: %v", err)
	}
	if f.UDP == nil || f.TCP != nil {
		t.Fatal("stale TCP view after reuse")
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	var builder Builder
	raw := builder.TCP(TCPSpec{Src: srcAddr, Dst: dstAddr, SrcPort: 5555, DstPort: 80, Payload: make([]byte, 512)})
	var f Frame
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{Src: srcAddr, Dst: dstAddr, SrcPort: 5555, DstPort: 80, Proto: ProtoTCP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ft.Hash()
	}
}
