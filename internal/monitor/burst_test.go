package monitor

import (
	"sync"
	"testing"
	"time"

	"netalytics/internal/tuple"
)

// deliverAll pushes every frame through the single-packet path, retrying
// transient queue-full rejections.
func deliverAll(t *testing.T, m *Monitor, frames [][]byte) {
	t.Helper()
	for _, raw := range frames {
		for !m.Deliver(raw, time.Time{}) {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// deliverAllBurst pushes every frame through DeliverBurst in chunks,
// retrying the undelivered tail like a short write.
func deliverAllBurst(t *testing.T, m *Monitor, frames [][]byte, chunk int) {
	t.Helper()
	for len(frames) > 0 {
		n := chunk
		if n > len(frames) {
			n = len(frames)
		}
		burst := frames[:n]
		for len(burst) > 0 {
			k := m.DeliverBurst(burst, time.Time{})
			burst = burst[k:]
			if k == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
		frames = frames[n:]
	}
}

func TestDeliverAfterStopReturnsFalse(t *testing.T) {
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:    &memSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	raw := frameWithPorts(1, 2)

	// Hammer Deliver/DeliverBurst from several goroutines while Stop runs
	// concurrently: no send may panic on the closed input channels.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 5000; i++ {
				m.Deliver(raw, time.Time{})
				m.DeliverBurst([][]byte{raw, raw}, time.Time{})
			}
		}()
	}
	close(start)
	m.Stop()
	wg.Wait()

	if m.Deliver(raw, time.Time{}) {
		t.Error("Deliver after Stop returned true")
	}
	if n := m.DeliverBurst([][]byte{raw, raw}, time.Time{}); n != 0 {
		t.Errorf("DeliverBurst after Stop accepted %d frames, want 0", n)
	}
}

func TestDeliverBurstCountsAndStats(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers:   []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:      sink,
		BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = frameWithPorts(uint16(6000+i), 80)
	}
	deliverAllBurst(t, m, frames, 4)
	m.Stop()

	if got := len(sink.tuples()); got != 10 {
		t.Fatalf("sink received %d tuples, want 10", got)
	}
	st := m.Stats()
	if st.Received != 10 || st.Dispatched != 10 || st.Tuples != 10 {
		t.Errorf("stats = %+v", st)
	}
	if live := m.live.Load(); live != 0 {
		t.Errorf("live descriptors after Stop = %d, want 0", live)
	}
}

func TestDeliverBurstShortWriteOnFullQueue(t *testing.T) {
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:       &memSink{},
		QueueDepth: 2,
		BurstSize:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the single collector's RX queue holds QueueDepth chunk
	// slots of up to BurstSize frames each, so a 20-frame burst must stop at
	// 8 like a short write, dropping the chunk that found the queue full.
	frames := make([][]byte, 20)
	for i := range frames {
		frames[i] = frameWithPorts(1, 2)
	}
	if n := m.DeliverBurst(frames, time.Time{}); n != 8 {
		t.Errorf("DeliverBurst accepted %d, want 8", n)
	}
	st := m.Stats()
	if st.Received != 12 || st.CollectDrops != 4 {
		t.Errorf("stats after short write = %+v, want Received=12 CollectDrops=4", st)
	}
	m.Start()
	m.Stop()
}

// TestBurstSingleParity runs the same workload through Deliver and
// DeliverBurst and demands identical per-parser tuple counts and zero
// descriptor leaks on both paths.
func TestBurstSingleParity(t *testing.T) {
	const flows, perFlow = 30, 4
	frames := make([][]byte, 0, flows*perFlow)
	for f := 0; f < flows; f++ {
		raw := frameWithPorts(uint16(9000+f), 80)
		for p := 0; p < perFlow; p++ {
			frames = append(frames, raw)
		}
	}

	run := func(t *testing.T, collectors int, burst bool) map[string]uint64 {
		sink := &memSink{}
		m, err := New(Config{
			Parsers: []Factory{
				func() Parser { return &countParser{name: "a"} },
				func() Parser { return &countParser{name: "b"} },
			},
			Collectors:       collectors,
			WorkersPerParser: 2,
			BurstSize:        8,
			QueueDepth:       1 << 12,
			Sink:             sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		if burst {
			deliverAllBurst(t, m, frames, 7) // odd chunk, not a BurstSize multiple
		} else {
			deliverAll(t, m, frames)
		}
		m.Stop()
		if live := m.live.Load(); live != 0 {
			t.Errorf("collectors=%d burst=%v: live descriptors after Stop = %d, want 0",
				collectors, burst, live)
		}
		st := m.Stats()
		if st.ParserDrops != 0 || st.CollectDrops != 0 {
			t.Fatalf("collectors=%d burst=%v: unexpected drops: %+v", collectors, burst, st)
		}
		return m.PerParserTuples()
	}

	want := uint64(flows * perFlow)
	// Collectors=1 exercises the chunked single-queue fast path;
	// Collectors=2 the per-frame RSS-steered path.
	for _, collectors := range []int{1, 2} {
		single := run(t, collectors, false)
		burst := run(t, collectors, true)
		for _, name := range []string{"a", "b"} {
			if single[name] != want || burst[name] != want {
				t.Errorf("collectors=%d parser %s: single=%d burst=%d, want %d both",
					collectors, name, single[name], burst[name], want)
			}
		}
	}
}

// TestCopyModeStats pins the copy-mode ablation path's accounting: every
// packet is dispatched once per parser, decodable copies are never counted
// malformed, and no descriptor leaks.
func TestCopyModeStats(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers: []Factory{
			func() Parser { return &countParser{name: "a"} },
			func() Parser { return &countParser{name: "b"} },
		},
		Sink:     sink,
		CopyMode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	const n = 16
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = frameWithPorts(uint16(3500+i), 80)
	}
	deliverAllBurst(t, m, frames, 5)
	m.Stop()

	st := m.Stats()
	if st.Dispatched != 2*n {
		t.Errorf("Dispatched = %d, want %d (one copy per parser)", st.Dispatched, 2*n)
	}
	if st.Malformed != 0 {
		t.Errorf("Malformed = %d, want 0", st.Malformed)
	}
	if st.Tuples != 2*n {
		t.Errorf("Tuples = %d, want %d", st.Tuples, 2*n)
	}
	if live := m.live.Load(); live != 0 {
		t.Errorf("live descriptors after Stop = %d, want 0", live)
	}
}

// snapshotSink records each delivered batch pointer alongside a deep copy
// taken at delivery time, to detect later mutation of shipped slices.
type snapshotSink struct {
	mu        sync.Mutex
	batches   []*tuple.Batch
	snapshots [][]tuple.Tuple
}

func (s *snapshotSink) Deliver(b *tuple.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, b)
	s.snapshots = append(s.snapshots, append([]tuple.Tuple(nil), b.Tuples...))
	return nil
}

// TestShippedBatchesNotReused verifies the Sink ownership contract the mq
// partition buffer relies on: once a batch ships, the monitor never writes
// to its tuple slice again, even as later tuples keep flowing.
func TestShippedBatchesNotReused(t *testing.T) {
	sink := &snapshotSink{}
	m, err := New(Config{
		Parsers:   []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:      sink,
		BatchSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 31; i++ {
		raw := frameWithPorts(uint16(2500+i), 80)
		for !m.Deliver(raw, time.Time{}) {
		}
	}
	m.Stop()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	total := 0
	for i, b := range sink.batches {
		total += len(b.Tuples)
		if len(b.Tuples) != len(sink.snapshots[i]) {
			t.Fatalf("batch %d length changed after delivery", i)
		}
		for j := range b.Tuples {
			if b.Tuples[j] != sink.snapshots[i][j] {
				t.Fatalf("batch %d tuple %d mutated after delivery", i, j)
			}
		}
	}
	if total != 31 {
		t.Fatalf("sink holds %d tuples, want 31", total)
	}
}

func TestRSSHashShortFrameTail(t *testing.T) {
	// The word-at-a-time fallback must still distinguish tail-byte order
	// and word order.
	if fnv64([]byte{1, 2, 3, 4, 5}) == fnv64([]byte{1, 2, 3, 4, 6}) {
		t.Error("tail byte ignored")
	}
	if fnv64([]byte{1, 2, 3, 4, 5, 6, 7, 8}) == fnv64([]byte{5, 6, 7, 8, 1, 2, 3, 4}) {
		t.Error("word order ignored")
	}
}
