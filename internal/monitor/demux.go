// Shared-tap demux: one monitor's parsed-tuple stream fanned out to every
// subscribed query.
//
// In the legacy control plane each query launches its own monitor, so two
// queries watching the same service parse the same mirrored frames twice. A
// shared monitor runs the union of the subscribers' parser sets once and
// delivers each batch to the Demux, which routes every tuple to each
// subscriber whose match filter admits it. Tuples are shared, not deep-
// copied: each subscriber gets its own batch and tuple-header slice, but the
// string payloads (URLs, SQL, keys) point at the same backing data, and
// Trace records are cloned per additional subscriber exactly as the spout's
// PropagateBatch clones them per consumer group — stamps never race.
package monitor

import (
	"math"
	"net/netip"
	"sync"
	"sync/atomic"

	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// Demux is a monitor Sink that fans each parsed-tuple batch out to a dynamic
// set of subscribers. The subscriber list is copy-on-write: Deliver loads one
// snapshot per batch and never takes the mutex, so attach/detach of queries
// does not stall the parse datapath.
type Demux struct {
	mu     sync.Mutex
	subs   atomic.Pointer[[]*DemuxSub]
	onRate func(max float64)
	fanout *telemetry.Counter
}

// NewDemux returns an empty demux. fanout, when non-nil, counts every tuple
// delivered to a subscriber (the same tuple reaching three queries counts
// three times — fanout minus monitor_tuples is the sharing win made visible).
func NewDemux(fanout *telemetry.Counter) *Demux {
	d := &Demux{fanout: fanout}
	empty := []*DemuxSub{}
	d.subs.Store(&empty)
	return d
}

// SetRateHook installs the callback invoked with the max sample rate over
// all subscribers whenever that max changes (a subscriber joining, leaving
// or re-rating). The shared monitor uses it to run at the most permissive
// subscriber's rate; each subscriber then thins its own stream at the demux.
func (d *Demux) SetRateHook(fn func(max float64)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRate = fn
}

// DemuxSub is one query's subscription on a shared monitor: a parser set, a
// match filter, and the sink its admitted tuples are delivered to. It
// implements SampleTarget, so the session's AIMD feedback loop drives the
// subscription exactly as it would drive a dedicated monitor.
type DemuxSub struct {
	id      string
	parsers map[string]bool
	matches []sdn.Match
	sink    Sink
	d       *Demux

	// sampleThreshold mirrors Monitor's admission scheme: the top 32 bits
	// of the tuple's flow ID (the canonical flow hash for per-flow parsers)
	// are compared against rate*MaxUint32, so a subscriber sampled at the
	// same rate admits exactly the flows a dedicated monitor would have.
	sampleThreshold atomic.Uint64

	tuples atomic.Uint64
	rate   float64 // guarded by d.mu: last rate folded into the monitor max
}

// Subscribe attaches a query to the demux. parserNames selects which batches
// the subscriber sees; matches (any-of, empty = all) filters tuples within
// them; rate is the initial sample rate. Delivery to sink begins with the
// next batch after Subscribe returns.
func (d *Demux) Subscribe(id string, parserNames []string, matches []sdn.Match, sink Sink, rate float64) *DemuxSub {
	sub := &DemuxSub{
		id:      id,
		parsers: make(map[string]bool, len(parserNames)),
		matches: matches,
		sink:    sink,
		d:       d,
	}
	for _, p := range parserNames {
		sub.parsers[p] = true
	}
	sub.storeRate(rate)
	d.mu.Lock()
	sub.rate = sub.SampleRate()
	cur := *d.subs.Load()
	next := append(append([]*DemuxSub(nil), cur...), sub)
	d.subs.Store(&next)
	d.recomputeRateLocked()
	d.mu.Unlock()
	return sub
}

// Unsubscribe detaches a subscription; batches already being delivered may
// still reach its sink. Idempotent.
func (d *Demux) Unsubscribe(sub *DemuxSub) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := *d.subs.Load()
	next := make([]*DemuxSub, 0, len(cur))
	for _, s := range cur {
		if s != sub {
			next = append(next, s)
		}
	}
	if len(next) == len(cur) {
		return
	}
	d.subs.Store(&next)
	d.recomputeRateLocked()
}

// Len returns the number of attached subscriptions.
func (d *Demux) Len() int {
	return len(*d.subs.Load())
}

// recomputeRateLocked folds subscriber rates into the monitor-level max.
// Caller holds d.mu.
func (d *Demux) recomputeRateLocked() {
	if d.onRate == nil {
		return
	}
	max := 0.0
	for _, s := range *d.subs.Load() {
		if s.rate > max {
			max = s.rate
		}
	}
	d.onRate(max)
}

func (sub *DemuxSub) storeRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	sub.sampleThreshold.Store(uint64(rate * math.MaxUint32))
}

// SetSampleRate updates the subscription's admitted fraction of flows and
// re-folds the monitor-level max (SampleTarget).
func (sub *DemuxSub) SetSampleRate(rate float64) {
	sub.storeRate(rate)
	sub.d.mu.Lock()
	sub.rate = sub.SampleRate()
	sub.d.recomputeRateLocked()
	sub.d.mu.Unlock()
}

// SampleRate returns the subscription's current admitted fraction of flows
// (SampleTarget).
func (sub *DemuxSub) SampleRate() float64 {
	return float64(sub.sampleThreshold.Load()) / math.MaxUint32
}

// Tuples returns how many tuples the subscription has been delivered.
func (sub *DemuxSub) Tuples() uint64 { return sub.tuples.Load() }

// ID returns the subscriber identifier passed to Subscribe.
func (sub *DemuxSub) ID() string { return sub.id }

// admits applies the subscription's sampling and match filter to one tuple.
// ft is the tuple's endpoint five-tuple; ftOK is false when the tuple has no
// parseable endpoints (a parser's cross-flow aggregate), in which case match
// filtering cannot discriminate and the tuple is admitted to every
// subscriber of its parser.
func (sub *DemuxSub) admits(t *tuple.Tuple, ft packet.FiveTuple, ftOK bool) bool {
	if thr := sub.sampleThreshold.Load(); t.FlowID>>32 > thr {
		return false
	}
	if len(sub.matches) == 0 || !ftOK {
		return true
	}
	for _, m := range sub.matches {
		if m.Matches(ft) {
			return true
		}
	}
	return false
}

// Deliver routes one batch to every subscriber whose parser set includes the
// batch's parser and whose filter admits each tuple. The first subscriber to
// take a batch receives the original Trace pointers; later subscribers get
// clones, mirroring telemetry.PropagateBatch's per-consumer-group cloning.
// Per-subscriber batch order is the monitor's ship order. Returns the first
// sink error, after every subscriber has been offered the batch.
func (d *Demux) Deliver(b *tuple.Batch) error {
	subs := *d.subs.Load()
	var firstErr error
	// Endpoint five-tuples are parsed once per batch, shared by all
	// subscribers' filters; skipped entirely when no subscriber filters.
	var fts []packet.FiveTuple
	var ftOKs []bool
	needFT := false
	for _, sub := range subs {
		if sub.parsers[b.Parser] && len(sub.matches) > 0 {
			needFT = true
			break
		}
	}
	if needFT {
		fts = make([]packet.FiveTuple, len(b.Tuples))
		ftOKs = make([]bool, len(b.Tuples))
		for i := range b.Tuples {
			t := &b.Tuples[i]
			src, errS := netip.ParseAddr(t.SrcIP)
			dst, errD := netip.ParseAddr(t.DstIP)
			if errS != nil || errD != nil {
				continue
			}
			fts[i] = packet.FiveTuple{Src: src, Dst: dst, SrcPort: t.SrcPort, DstPort: t.DstPort}
			ftOKs[i] = true
		}
	}
	shared := false // original Trace pointers handed to a subscriber already
	for _, sub := range subs {
		if !sub.parsers[b.Parser] {
			continue
		}
		out := make([]tuple.Tuple, 0, len(b.Tuples))
		for i := range b.Tuples {
			var ft packet.FiveTuple
			ftOK := false
			if needFT {
				ft, ftOK = fts[i], ftOKs[i]
			}
			if sub.admits(&b.Tuples[i], ft, ftOK) {
				out = append(out, b.Tuples[i])
			}
		}
		if len(out) == 0 {
			continue
		}
		if shared {
			for i := range out {
				if tr := out[i].Trace; tr != nil {
					clone := *tr
					out[i].Trace = &clone
				}
			}
		}
		shared = true
		sub.tuples.Add(uint64(len(out)))
		if d.fanout != nil {
			d.fanout.Add(uint64(len(out)))
		}
		if err := sub.sink.Deliver(&tuple.Batch{Parser: b.Parser, Tuples: out}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
