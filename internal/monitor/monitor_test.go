package monitor

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/tuple"
)

var (
	srcAddr = netip.MustParseAddr("10.0.0.2")
	dstAddr = netip.MustParseAddr("10.0.0.3")
)

// memSink accumulates delivered batches.
type memSink struct {
	mu      sync.Mutex
	batches []*tuple.Batch
	fail    bool
}

func (s *memSink) Deliver(b *tuple.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("sink down")
	}
	s.batches = append(s.batches, b)
	return nil
}

func (s *memSink) tuples() []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []tuple.Tuple
	for _, b := range s.batches {
		out = append(out, b.Tuples...)
	}
	return out
}

// countParser emits one tuple per TCP packet.
type countParser struct{ name string }

func (p *countParser) Name() string { return p.name }
func (p *countParser) Handle(pkt *Packet, emit EmitFunc) {
	if pkt.Frame.TCP == nil {
		return
	}
	emit(tuple.Tuple{FlowID: pkt.FlowID, TS: pkt.TS.UnixNano(), Val: 1})
}

// slowParser blocks on a gate to back up its queue.
type slowParser struct{ gate chan struct{} }

func (p *slowParser) Name() string { return "slow" }
func (p *slowParser) Handle(pkt *Packet, emit EmitFunc) {
	<-p.gate
}

// flushParser counts packets and emits the count only at Flush.
type flushParser struct{ n int }

func (p *flushParser) Name() string { return "flush" }
func (p *flushParser) Handle(pkt *Packet, emit EmitFunc) {
	p.n++
}
func (p *flushParser) Flush(emit EmitFunc) {
	emit(tuple.Tuple{Key: "total", Val: float64(p.n)})
}

func frameWithPorts(srcPort, dstPort uint16) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: srcAddr, Dst: dstAddr,
		SrcPort: srcPort, DstPort: dstPort,
		Flags: packet.TCPFlagACK, Payload: []byte("data"),
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sink: &memSink{}}); !errors.Is(err, ErrNoParsers) {
		t.Errorf("no parsers: err = %v", err)
	}
	if _, err := New(Config{Parsers: []Factory{func() Parser { return &countParser{name: "c"} }}}); err == nil {
		t.Error("no sink accepted")
	}
	dup := func() Parser { return &countParser{name: "dup"} }
	if _, err := New(Config{Parsers: []Factory{dup, dup}, Sink: &memSink{}}); err == nil {
		t.Error("duplicate parser names accepted")
	}
}

func TestEndToEnd(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers:       []Factory{func() Parser { return &countParser{name: "count"} }},
		Sink:          sink,
		BatchSize:     4,
		FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	const n = 50
	for i := 0; i < n; i++ {
		if !m.Deliver(frameWithPorts(uint16(1000+i), 80), time.Now()) {
			t.Fatalf("Deliver %d rejected", i)
		}
	}
	m.Stop()

	got := sink.tuples()
	if len(got) != n {
		t.Fatalf("sink received %d tuples, want %d", len(got), n)
	}
	for _, tu := range got {
		if tu.Parser != "count" {
			t.Fatalf("tuple parser = %q, want count (stamped by output)", tu.Parser)
		}
	}
	st := m.Stats()
	if st.Received != n || st.Dispatched != n || st.Tuples != n {
		t.Errorf("stats = %+v", st)
	}
	if st.Batches == 0 {
		t.Error("no batches recorded")
	}
}

func TestMultipleParsersShareDescriptors(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers: []Factory{
			func() Parser { return &countParser{name: "a"} },
			func() Parser { return &countParser{name: "b"} },
		},
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 20; i++ {
		m.Deliver(frameWithPorts(uint16(2000+i), 80), time.Now())
	}
	m.Stop()

	counts := map[string]int{}
	for _, tu := range sink.tuples() {
		counts[tu.Parser]++
	}
	if counts["a"] != 20 || counts["b"] != 20 {
		t.Errorf("per-parser counts = %v, want 20 each", counts)
	}
}

func TestPerParserTuples(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers: []Factory{
			func() Parser { return &countParser{name: "a"} },
			func() Parser { return &countParser{name: "b"} },
		},
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 7; i++ {
		m.Deliver(frameWithPorts(uint16(4000+i), 80), time.Now())
	}
	m.Stop()
	counts := m.PerParserTuples()
	if counts["a"] != 7 || counts["b"] != 7 {
		t.Errorf("per-parser counts = %v, want 7 each", counts)
	}
}

func TestCopyModeEquivalence(t *testing.T) {
	for _, copyMode := range []bool{false, true} {
		sink := &memSink{}
		m, err := New(Config{
			Parsers:  []Factory{func() Parser { return &countParser{name: "c"} }},
			Sink:     sink,
			CopyMode: copyMode,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		for i := 0; i < 10; i++ {
			m.Deliver(frameWithPorts(uint16(3000+i), 80), time.Now())
		}
		m.Stop()
		if got := len(sink.tuples()); got != 10 {
			t.Errorf("copyMode=%v: %d tuples, want 10", copyMode, got)
		}
	}
}

func TestSamplingByFlow(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:       sink,
		SampleRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	// 200 flows, 2 packets each: flow-level sampling must keep or drop
	// whole flows, so every flow has 0 or 2 tuples.
	for flow := 0; flow < 200; flow++ {
		raw := frameWithPorts(uint16(5000+flow), 80)
		m.Deliver(raw, time.Now())
		m.Deliver(raw, time.Now())
	}
	m.Stop()

	perFlow := map[uint64]int{}
	for _, tu := range sink.tuples() {
		perFlow[tu.FlowID]++
	}
	for id, n := range perFlow {
		if n != 2 {
			t.Errorf("flow %d has %d tuples, want 2 (flow-atomic sampling)", id, n)
		}
	}
	admitted := len(perFlow)
	if admitted < 50 || admitted > 150 {
		t.Errorf("admitted %d/200 flows at rate 0.5, outside [50,150]", admitted)
	}
	st := m.Stats()
	if st.Sampled == 0 {
		t.Error("no packets recorded as sampled out")
	}
}

func TestSetSampleRateClamped(t *testing.T) {
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:    &memSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSampleRate(-1)
	if got := m.SampleRate(); got != 0 {
		t.Errorf("SampleRate after -1 = %v, want 0", got)
	}
	m.SetSampleRate(2)
	if got := m.SampleRate(); got < 0.999 {
		t.Errorf("SampleRate after 2 = %v, want 1", got)
	}
}

func TestCollectorQueueOverflow(t *testing.T) {
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:       &memSink{},
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the collector queue fills at QueueDepth.
	raw := frameWithPorts(1, 2)
	accepted := 0
	for i := 0; i < 20; i++ {
		if m.Deliver(raw, time.Now()) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Errorf("accepted %d, want 8", accepted)
	}
	if st := m.Stats(); st.CollectDrops != 12 {
		t.Errorf("CollectDrops = %d, want 12", st.CollectDrops)
	}
	m.Start()
	m.Stop()
}

func TestParserQueueOverflowDrops(t *testing.T) {
	gate := make(chan struct{})
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &slowParser{gate: gate} }},
		Sink:       &memSink{},
		QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	raw := frameWithPorts(1, 2)
	// Worker blocks on first packet; its queue holds 2 more; the rest must
	// drop at the parser queue. Retry Deliver so every frame reaches the
	// collector rather than dropping at the input queue.
	for i := 0; i < 10; i++ {
		for !m.Deliver(raw, time.Now()) {
			time.Sleep(time.Millisecond)
		}
	}
	// Wait until the collector has consumed the input queue.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := m.Stats()
		if st.Dispatched+st.ParserDrops == 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := m.Stats()
	if st.ParserDrops == 0 {
		t.Errorf("ParserDrops = 0, want > 0 (stats %+v)", st)
	}
	close(gate)
	m.Stop()
}

func TestMalformedFramesCounted(t *testing.T) {
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:    &memSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Deliver([]byte{1, 2, 3}, time.Now())
	m.Stop()
	if st := m.Stats(); st.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", st.Malformed)
	}
}

func TestFlusherRunsOnStop(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &flushParser{} }},
		Sink:    sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 5; i++ {
		m.Deliver(frameWithPorts(uint16(100+i), 80), time.Now())
	}
	m.Stop()
	got := sink.tuples()
	if len(got) != 1 || got[0].Key != "total" || got[0].Val != 5 {
		t.Errorf("flush tuples = %+v, want one total=5", got)
	}
}

func TestSinkErrorsCounted(t *testing.T) {
	sink := &memSink{fail: true}
	m, err := New(Config{
		Parsers:   []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:      sink,
		BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Deliver(frameWithPorts(1, 2), time.Now())
	m.Stop()
	if st := m.Stats(); st.SinkErrors == 0 {
		t.Error("SinkErrors = 0, want > 0")
	}
}

func TestStopIdempotentAndStartTwice(t *testing.T) {
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:    &memSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Start() // no-op
	m.Stop()
	m.Stop() // no-op
}

func TestMultipleCollectorsRSS(t *testing.T) {
	// Four collectors, stateful per-flow parser: per-flow counts must stay
	// exact, proving RSS keeps each conversation on one ordered path.
	sink := &memSink{}
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &flushParser{} }},
		Collectors: 4,
		Sink:       sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	const flows, perFlow = 32, 4
	for f := 0; f < flows; f++ {
		raw := frameWithPorts(uint16(8000+f), 80)
		for p := 0; p < perFlow; p++ {
			for !m.Deliver(raw, time.Now()) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	m.Stop()
	total := 0.0
	for _, tu := range sink.tuples() {
		if tu.Key == "total" {
			total += tu.Val
		}
	}
	if total != flows*perFlow {
		t.Errorf("processed %v packets, want %d", total, flows*perFlow)
	}
}

func TestRSSHashSymmetric(t *testing.T) {
	var b packet.Builder
	fwd := b.TCP(packet.TCPSpec{Src: srcAddr, Dst: dstAddr, SrcPort: 1000, DstPort: 80})
	rev := b.TCP(packet.TCPSpec{Src: dstAddr, Dst: srcAddr, SrcPort: 80, DstPort: 1000})
	if rssHash(fwd) != rssHash(rev) {
		t.Error("rssHash differs across directions of one connection")
	}
	if rssHash([]byte{1, 2}) == rssHash([]byte{2, 1}) {
		t.Error("short-frame fallback hash too weak")
	}
}

func TestAIMDSampler(t *testing.T) {
	m, err := New(Config{
		Parsers: []Factory{func() Parser { return &countParser{name: "c"} }},
		Sink:    &memSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAIMDSampler(m)

	a.OnStatus(true)
	if got := m.SampleRate(); got > 0.51 || got < 0.49 {
		t.Errorf("rate after one overload = %v, want ~0.5", got)
	}
	for i := 0; i < 20; i++ {
		a.OnStatus(true)
	}
	if got := m.SampleRate(); got < a.MinRate-1e-9 || got > a.MinRate+1e-6 {
		t.Errorf("rate floored at %v, want MinRate %v", got, a.MinRate)
	}
	for i := 0; i < 100; i++ {
		a.OnStatus(false)
	}
	if got := m.SampleRate(); got < 0.999 {
		t.Errorf("rate after recovery = %v, want 1", got)
	}
}

func TestWorkersPerParserFlowAffinity(t *testing.T) {
	// With per-worker instances and flow dispatch, a stateful parser must
	// see all packets of one flow on one instance. flushParser counts per
	// instance; the sum must equal total packets.
	sink := &memSink{}
	m, err := New(Config{
		Parsers:          []Factory{func() Parser { return &flushParser{} }},
		WorkersPerParser: 4,
		Sink:             sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	const flows, perFlow = 40, 3
	for f := 0; f < flows; f++ {
		raw := frameWithPorts(uint16(7000+f), 80)
		for p := 0; p < perFlow; p++ {
			m.Deliver(raw, time.Now())
		}
	}
	m.Stop()
	total := 0.0
	for _, tu := range sink.tuples() {
		if tu.Key == "total" {
			total += tu.Val
		}
	}
	if total != flows*perFlow {
		t.Errorf("workers processed %v packets total, want %d", total, flows*perFlow)
	}
}

func BenchmarkMonitorSharedVsCopy(b *testing.B) {
	for _, mode := range []struct {
		name string
		copy bool
	}{{"shared", false}, {"copy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m, err := New(Config{
				Parsers: []Factory{
					func() Parser { return &countParser{name: "a"} },
					func() Parser { return &countParser{name: "b"} },
				},
				Sink:       SinkFunc(func(*tuple.Batch) error { return nil }),
				QueueDepth: 65536,
				CopyMode:   mode.copy,
			})
			if err != nil {
				b.Fatal(err)
			}
			m.Start()
			raw := frameWithPorts(1234, 80)
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !m.Deliver(raw, time.Time{}) {
					time.Sleep(10 * time.Microsecond)
				}
			}
			b.StopTimer()
			m.Stop()
		})
	}
}
