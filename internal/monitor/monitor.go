// Package monitor implements the NFV packet monitor of §5.1–5.2: a Collector
// that polls an input queue and fans packet descriptors out to per-parser
// worker queues, pluggable parsers that extract tuples, a batching output
// interface toward the aggregation layer, and flow-hash sampling with a
// feedback-driven (AIMD) controller.
//
// The design mirrors the paper's DPDK pipeline on a virtual substrate:
//
//   - Zero-copy, lockless-style: one decoded descriptor per packet is shared
//     by every parser via a reference count; queues are Go channels.
//   - Burst mode: collectors drain their RX queue greedily (up to BurstSize,
//     like DPDK's rx_burst) and descriptors travel to workers in per-burst
//     groups, so channel synchronization is amortized over many packets.
//   - Multi-level queuing: a collector queue feeds per-worker parser queues;
//     dispatch is by flow hash, so stateful parsers see whole flows and need
//     no locks.
//   - Batching: tuples leave in per-parser batches, flushed by size or time.
//     Each worker owns a private output shard, so the per-tuple emit path
//     takes no shared lock.
//   - Sampling: flows (not packets) are dropped early by hashing the
//     canonical five-tuple against the sampling threshold.
package monitor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueDepth    = 4096
	DefaultBatchSize     = 64
	DefaultFlushInterval = 50 * time.Millisecond
	// DefaultBurstSize matches the rx_burst size DPDK drivers conventionally
	// use (§5.1): big enough to amortize per-wakeup costs, small enough to
	// keep latency and cache footprint low.
	DefaultBurstSize = 32
)

// ErrNoParsers is returned by New when the config names no parsers.
var ErrNoParsers = errors.New("monitor: config has no parsers")

// Packet is the shared descriptor handed to parsers: a decoded view plus the
// flow identity and arrival timestamp. Descriptors are pooled and reference
// counted; parsers must not retain one after Handle returns.
type Packet struct {
	Frame packet.Frame
	Tuple packet.FiveTuple
	// FlowID is the canonical (direction-independent) flow hash, the ID
	// field parsers put first in emitted tuples (§3.1).
	FlowID uint64
	TS     time.Time

	refs atomic.Int32
	mon  *Monitor
}

func (p *Packet) release() {
	if p.refs.Add(-1) == 0 {
		p.mon.putPacket(p)
	}
}

// EmitFunc delivers one tuple from a parser to the output interface.
type EmitFunc func(tuple.Tuple)

// Parser extracts data from packets. Implementations are created per worker
// (see Factory) so they may keep per-flow state without locking: the
// dispatcher routes all packets of a flow to one worker.
type Parser interface {
	// Name identifies the parser; it is stamped into emitted tuples and
	// selects the aggregation topic.
	Name() string
	// Handle inspects one packet and may emit any number of tuples.
	Handle(p *Packet, emit EmitFunc)
}

// Flusher is implemented by parsers holding aggregate state they want to
// emit when the monitor stops.
type Flusher interface {
	Flush(emit EmitFunc)
}

// Factory creates one parser instance per worker.
type Factory func() Parser

// Sink receives finished tuple batches; mq producers implement it. Batches
// hand over ownership of their tuple slice: the monitor never touches a
// shipped slice again, so sinks may retain batches without copying.
type Sink interface {
	Deliver(b *tuple.Batch) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(b *tuple.Batch) error

// Deliver implements Sink.
func (f SinkFunc) Deliver(b *tuple.Batch) error { return f(b) }

// Config parameterizes a Monitor.
type Config struct {
	// Parsers lists the parser factories to run; required.
	Parsers []Factory
	// Collectors sets the number of collector threads draining the input
	// queue (default 1). The paper's design dedicates one collector core
	// per 10 Gbps port and scales with Receive Side Scaling on faster
	// links; flow-affine worker dispatch keeps parser state correct
	// regardless of which collector decoded a frame.
	Collectors int
	// WorkersPerParser sets per-parser worker counts (default 1).
	WorkersPerParser int
	// QueueDepth bounds the collector queues and the per-worker queues, both
	// in queue slots: Deliver consumes one RX slot per frame, DeliverBurst
	// one per chunk of up to BurstSize frames, and each worker slot holds
	// one dispatched burst group.
	QueueDepth int
	// BurstSize caps how many frames a collector drains from its RX queue
	// per wakeup and how many descriptors travel per worker channel
	// operation (default 32, mirroring DPDK's rx_burst).
	BurstSize int
	// WorkSteal replaces the per-collector RX channels with per-collector
	// ring shards that idle collectors steal bursts from (steal.go), so one
	// hot RSS bucket cannot starve the other collector cores. Only
	// meaningful with Collectors > 1; the single-collector datapath is
	// already steal-free.
	WorkSteal bool
	// BatchSize is the output batch size per parser.
	BatchSize int
	// FlushInterval bounds how long a non-full batch may wait.
	FlushInterval time.Duration
	// SampleRate in (0,1] is the initial fraction of flows admitted;
	// 0 means 1.0 (no sampling).
	SampleRate float64
	// Sink receives output batches; required.
	Sink Sink
	// CopyMode disables descriptor sharing: each parser gets its own copy
	// of every packet. Exists for the zero-copy ablation benchmark.
	CopyMode bool
	// Metrics, when non-nil, registers every monitor counter in the
	// telemetry registry under monitor_* names with MetricLabels attached.
	// Counters are identical atomics either way; a nil registry just leaves
	// them unexported.
	Metrics *telemetry.Registry
	// MetricLabels are attached to every registered metric (typically the
	// owning session and host), keeping per-instance series distinct.
	MetricLabels []telemetry.Label
	// Tracer, when enabled, stamps sampled tuples on the emit path with
	// capture and parse timestamps for the pipeline latency breakdown.
	Tracer *telemetry.Tracer
}

// Stats is a snapshot of monitor counters.
type Stats struct {
	Received     uint64 // packets offered to the collector queue
	CollectDrops uint64 // packets dropped at the full collector queue
	Sampled      uint64 // packets dropped by flow sampling
	Malformed    uint64 // undecodable frames
	Dispatched   uint64 // descriptor enqueues to parser workers
	ParserDrops  uint64 // descriptors dropped at full worker queues
	Tuples       uint64 // tuples shipped to the sink (flushed parser output)
	Batches      uint64 // batches delivered to the sink
	SinkErrors   uint64
	Steals       uint64 // successful steal operations (work-steal mode)
	StealFrames  uint64 // frames drained by thieves from sibling shards
	Redirects    uint64 // frames redirected to the least-loaded shard on overflow
	HotFallbacks uint64 // hot-shard steering latches (pair hash → 5-tuple hash)
}

// Monitor is one NFV monitor instance.
type Monitor struct {
	cfg Config
	// inputs holds one RX queue per collector; Deliver steers frames by an
	// RSS-style header hash so all packets of a flow stay in order on one
	// collector.
	inputs []chan rawBurst
	// stealRings replaces inputs in work-steal mode (Config.WorkSteal with
	// Collectors > 1): one claimable ring shard per collector; see steal.go.
	stealRings []*rxRing
	// parsers is a copy-on-write snapshot of the parser runtimes: collectors
	// load it once per burst, AddParsers publishes an extended copy, so a
	// shared monitor can grow its parser set while frames are in flight
	// without a lock on the dispatch path. Within one burst every packet's
	// refcount and fan-out use the same snapshot.
	parsers atomic.Pointer[[]*parserRuntime]
	out     *outputBatcher
	pool       sync.Pool
	// burstPool recycles the []*Packet group slices that carry bursts over
	// worker channels; workers return each slice after releasing its
	// descriptors.
	burstPool sync.Pool
	// framePool recycles the []rawFrame chunks DeliverBurst ships over the
	// RX queue; collectors return each chunk after decoding it.
	framePool sync.Pool
	// live audits descriptor ownership: +1 on every pool get, -1 on every
	// put. It must read 0 once the monitor has fully stopped; the parity
	// tests assert this to prove bursts leak no descriptors.
	live atomic.Int64

	// sampleThreshold is a 32-bit admission threshold compared against the
	// top 32 bits of the canonical flow hash, avoiding the precision loss
	// of a float64→uint64 conversion at rate 1.0.
	sampleThreshold atomic.Uint64

	// The pipeline counters live in the telemetry registry when one is
	// configured (standalone atomics otherwise); either way each is one
	// atomic add on the hot path.
	received     *telemetry.Counter
	collectDrops *telemetry.Counter
	sampled      *telemetry.Counter
	malformed    *telemetry.Counter
	dispatched   *telemetry.Counter
	parserDrops  *telemetry.Counter
	steals       *telemetry.Counter
	stealFrames  *telemetry.Counter
	redirects    *telemetry.Counter
	hotFallbacks *telemetry.Counter

	// hotSteer is the one-way RSS fallback latch: once the pair-hash
	// steering is caught funneling traffic into one near-full shard while
	// the least-loaded shard idles, steering switches to the port-aware
	// canonical 5-tuple hash for the rest of the monitor's life (steal.go).
	hotSteer atomic.Bool

	// Steal-mode collector parking: rxWaiters counts parked collectors,
	// rxCh is the broadcast channel the next publish closes.
	rxWaiters atomic.Int32
	rxMu      sync.Mutex
	rxCh      chan struct{}

	// deliverMu fences Deliver/DeliverBurst against Stop closing the input
	// channels: senders hold the read side only around a non-blocking send,
	// Stop sets stopping and closes under the write side, so a send can
	// never hit a closed channel.
	deliverMu sync.RWMutex
	stopping  atomic.Bool

	wg          sync.WaitGroup
	collectorWG sync.WaitGroup
	started     bool
	stopped     bool
	mu          sync.Mutex
}

type rawFrame struct {
	data []byte
	ts   time.Time
}

// rawBurst is one RX queue slot: either a single frame (the Deliver path,
// which stays allocation-free) or a pooled chunk of frames (the
// DeliverBurst path, which amortizes the channel operation over the chunk).
type rawBurst struct {
	single rawFrame
	frames []rawFrame // when non-nil, carries the chunk and single is unused
}

type parserRuntime struct {
	name    string
	workers []chan []*Packet
	insts   []Parser
}

// newParserRuntime builds one parser's worker instances and queues; probe is
// the already-constructed first instance (its Name was just read).
func newParserRuntime(probe Parser, factory Factory, cfg Config) *parserRuntime {
	rt := &parserRuntime{name: probe.Name()}
	rt.insts = append(rt.insts, probe)
	for w := 1; w < cfg.WorkersPerParser; w++ {
		rt.insts = append(rt.insts, factory())
	}
	for w := 0; w < cfg.WorkersPerParser; w++ {
		rt.workers = append(rt.workers, make(chan []*Packet, cfg.QueueDepth))
	}
	return rt
}

// New builds a monitor from the config. Call Start to begin processing.
func New(cfg Config) (*Monitor, error) {
	if len(cfg.Parsers) == 0 {
		return nil, ErrNoParsers
	}
	if cfg.Sink == nil {
		return nil, errors.New("monitor: config needs a sink")
	}
	if cfg.Collectors <= 0 {
		cfg.Collectors = 1
	}
	if cfg.WorkersPerParser <= 0 {
		cfg.WorkersPerParser = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BurstSize <= 0 {
		cfg.BurstSize = DefaultBurstSize
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}

	m := &Monitor{cfg: cfg}
	// A nil registry hands back live, unregistered counters — same atomics,
	// nothing exported.
	m.received = cfg.Metrics.Counter("monitor_received", cfg.MetricLabels...)
	m.collectDrops = cfg.Metrics.Counter("monitor_collect_drops", cfg.MetricLabels...)
	m.sampled = cfg.Metrics.Counter("monitor_sampled_drops", cfg.MetricLabels...)
	m.malformed = cfg.Metrics.Counter("monitor_malformed", cfg.MetricLabels...)
	m.dispatched = cfg.Metrics.Counter("monitor_dispatched", cfg.MetricLabels...)
	m.parserDrops = cfg.Metrics.Counter("monitor_parser_drops", cfg.MetricLabels...)
	m.steals = cfg.Metrics.Counter("monitor_steals", cfg.MetricLabels...)
	m.stealFrames = cfg.Metrics.Counter("monitor_steal_frames", cfg.MetricLabels...)
	m.redirects = cfg.Metrics.Counter("monitor_steal_redirects", cfg.MetricLabels...)
	m.hotFallbacks = cfg.Metrics.Counter("monitor_hot_fallbacks", cfg.MetricLabels...)
	if cfg.WorkSteal && cfg.Collectors > 1 {
		for c := 0; c < cfg.Collectors; c++ {
			m.stealRings = append(m.stealRings, newRXRing(cfg.QueueDepth))
		}
		if cfg.Metrics != nil {
			for i := range m.stealRings {
				r := m.stealRings[i]
				cfg.Metrics.GaugeFunc("monitor_rx_backlog", func() float64 {
					return float64(r.occupied())
				}, append([]telemetry.Label{telemetry.L("shard", fmt.Sprintf("%d", i))}, cfg.MetricLabels...)...)
			}
		}
	} else {
		for c := 0; c < cfg.Collectors; c++ {
			m.inputs = append(m.inputs, make(chan rawBurst, cfg.QueueDepth))
		}
	}
	m.pool.New = func() any { return &Packet{mon: m} }
	m.burstPool.New = func() any { return make([]*Packet, 0, cfg.BurstSize) }
	m.framePool.New = func() any { return make([]rawFrame, 0, cfg.BurstSize) }
	m.SetSampleRate(cfg.SampleRate)

	names := make(map[string]bool, len(cfg.Parsers))
	var parsers []*parserRuntime
	for _, factory := range cfg.Parsers {
		probe := factory()
		if names[probe.Name()] {
			return nil, fmt.Errorf("monitor: duplicate parser %q", probe.Name())
		}
		names[probe.Name()] = true
		parsers = append(parsers, newParserRuntime(probe, factory, cfg))
	}
	m.parsers.Store(&parsers)
	m.out = newOutputBatcher(cfg.BatchSize, cfg.FlushInterval, cfg.Sink)
	m.out.tuples = cfg.Metrics.Counter("monitor_tuples", cfg.MetricLabels...)
	m.out.batches = cfg.Metrics.Counter("monitor_batches", cfg.MetricLabels...)
	m.out.sinkErrors = cfg.Metrics.Counter("monitor_sink_errors", cfg.MetricLabels...)
	if tr := cfg.Tracer; tr.Enabled() {
		m.out.tracer = tr
	}
	return m, nil
}

func (m *Monitor) getPacket() *Packet {
	m.live.Add(1)
	return m.pool.Get().(*Packet)
}

func (m *Monitor) putPacket(p *Packet) {
	m.live.Add(-1)
	m.pool.Put(p)
}

func (m *Monitor) getBurstSlice() []*Packet {
	return m.burstPool.Get().([]*Packet)[:0]
}

func (m *Monitor) putBurstSlice(s []*Packet) {
	m.burstPool.Put(s[:0]) //nolint:staticcheck // slice header alloc amortized over the burst
}

func (m *Monitor) getFrameSlice() []rawFrame {
	return m.framePool.Get().([]rawFrame)[:0]
}

func (m *Monitor) putFrameSlice(s []rawFrame) {
	m.framePool.Put(s[:0]) //nolint:staticcheck // slice header alloc amortized over the chunk
}

// Start launches the collector, parser workers and output flusher.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true

	m.out.start(&m.wg)
	for _, rt := range *m.parsers.Load() {
		m.startParserWorkers(rt)
	}
	m.collectorWG.Add(m.cfg.Collectors)
	for c := 0; c < m.cfg.Collectors; c++ {
		m.wg.Add(1)
		if m.stealRings != nil {
			go m.runStealCollector(c)
		} else {
			go m.runCollector(m.inputs[c])
		}
	}
	// Parser queues close once every collector has drained.
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.collectorWG.Wait()
		m.shutdownWorkers()
	}()
}

// startParserWorkers registers output shards and launches the workers of one
// parser runtime. Caller holds m.mu with m.started set.
func (m *Monitor) startParserWorkers(rt *parserRuntime) {
	for w := range rt.workers {
		shard := m.out.newShard(rt.name) // register writer before launch
		m.wg.Add(1)
		go m.runWorker(rt, w, shard.emit)
	}
}

// AddParsers extends a running monitor with additional parsers, so a shared
// monitor can serve a newly attached query whose parser set is not yet
// running on this host. Parsers the monitor already runs are skipped by
// name (attach is idempotent); new ones start receiving packets from the
// next dispatched burst. Fails once the monitor has stopped.
func (m *Monitor) AddParsers(factories ...Factory) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return errors.New("monitor: stopped")
	}
	cur := *m.parsers.Load()
	have := make(map[string]bool, len(cur))
	for _, rt := range cur {
		have[rt.name] = true
	}
	next := cur
	for _, factory := range factories {
		probe := factory()
		if have[probe.Name()] {
			continue
		}
		have[probe.Name()] = true
		rt := newParserRuntime(probe, factory, m.cfg)
		if m.started {
			m.startParserWorkers(rt)
		}
		if len(next) == len(cur) { // first addition: copy before appending
			next = append(append([]*parserRuntime(nil), cur...), rt)
		} else {
			next = append(next, rt)
		}
	}
	if len(next) != len(cur) {
		m.parsers.Store(&next)
	}
	return nil
}

// ParserNames lists the parsers the monitor currently runs.
func (m *Monitor) ParserNames() []string {
	parsers := *m.parsers.Load()
	out := make([]string, 0, len(parsers))
	for _, rt := range parsers {
		out = append(out, rt.name)
	}
	return out
}

// Stop drains in-flight packets, flushes parser state and output batches,
// and waits for all goroutines. The monitor cannot be restarted. Deliver and
// DeliverBurst reject frames from the moment Stop begins, so concurrent
// producers simply observe a full NIC going away.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()

	m.deliverMu.Lock()
	m.stopping.Store(true)
	for _, in := range m.inputs {
		close(in)
	}
	m.deliverMu.Unlock()
	// Steal-mode collectors park on the RX signal instead of a channel
	// receive; wake them so they observe stopping and drain the rings.
	if m.stealRings != nil {
		m.rxBroadcast()
	}
	m.wg.Wait()
}

// Deliver offers a frame to the monitor, returning false when the target
// collector queue is full (the frame is dropped, as a saturated NIC RX
// queue would) or the monitor is stopping. With multiple collectors the RX
// queue is chosen by hashing the frame's address bytes, like hardware RSS,
// so a flow's packets stay in order on one collector.
func (m *Monitor) Deliver(data []byte, ts time.Time) bool {
	m.received.Add(1)
	m.deliverMu.RLock()
	defer m.deliverMu.RUnlock()
	if m.stopping.Load() {
		m.collectDrops.Add(1)
		return false
	}
	if m.stealRings != nil {
		return m.stealDeliver(data, ts)
	}
	select {
	case m.rxQueue(data) <- rawBurst{single: rawFrame{data: data, ts: ts}}:
		return true
	default:
		m.collectDrops.Add(1)
		return false
	}
}

// DeliverBurst offers a burst of frames sharing one arrival timestamp, the
// software analogue of a DPDK rx_burst handoff. Frames are enqueued in
// order until the RX queue rejects one (queue full, or the monitor
// stopping); the count of frames enqueued is returned, so callers can retry
// the remainder like a short write. Per-flow ordering is preserved because
// a retried tail replays in its original order.
//
// With a single collector, the burst crosses the RX queue in pooled chunks
// of up to BurstSize frames, amortizing the channel operation; rejection
// happens at chunk granularity. With multiple collectors, RSS steering is
// per frame (batching across queues would break the short-write contract),
// so ingest parallelism comes from the collectors instead.
func (m *Monitor) DeliverBurst(frames [][]byte, ts time.Time) int {
	m.deliverMu.RLock()
	defer m.deliverMu.RUnlock()
	if m.stopping.Load() {
		m.received.Add(uint64(len(frames)))
		m.collectDrops.Add(uint64(len(frames)))
		return 0
	}
	if m.stealRings != nil {
		// Steering is per frame, like the multi-collector channel path; ring
		// publishes are a mutex-guarded slot write, so there is no channel
		// operation to amortize with chunking.
		for i, data := range frames {
			if !m.stealDeliver(data, ts) {
				m.received.Add(uint64(i + 1))
				return i
			}
		}
		m.received.Add(uint64(len(frames)))
		return len(frames)
	}
	if len(m.inputs) > 1 {
		for i, data := range frames {
			select {
			case m.rxQueue(data) <- rawBurst{single: rawFrame{data: data, ts: ts}}:
			default:
				m.received.Add(uint64(i + 1))
				m.collectDrops.Add(1)
				return i
			}
		}
		m.received.Add(uint64(len(frames)))
		return len(frames)
	}
	q := m.inputs[0]
	sent := 0
	for sent < len(frames) {
		n := m.cfg.BurstSize
		if len(frames)-sent < n {
			n = len(frames) - sent
		}
		chunk := m.getFrameSlice()
		for _, data := range frames[sent : sent+n] {
			chunk = append(chunk, rawFrame{data: data, ts: ts})
		}
		select {
		case q <- rawBurst{frames: chunk}:
			sent += n
		default:
			m.putFrameSlice(chunk)
			m.received.Add(uint64(sent + n))
			m.collectDrops.Add(uint64(n))
			return sent
		}
	}
	m.received.Add(uint64(sent))
	return sent
}

// rxQueue steers a frame to its collector's RX queue by RSS hash, with the
// same hot-shard fallback as the steal path (steal.go steerIdx): when the
// pair hash funnels traffic into one near-full queue while the least-loaded
// queue sits nearly idle, steering latches to the port-aware canonical
// 5-tuple hash so one elephant src/dst pair cannot idle every other
// collector.
func (m *Monitor) rxQueue(data []byte) chan rawBurst {
	if len(m.inputs) == 1 {
		return m.inputs[0]
	}
	n := uint64(len(m.inputs))
	if m.hotSteer.Load() {
		return m.inputs[rss5Hash(data)%n]
	}
	q := m.inputs[rssHash(data)%n]
	if occ := len(q); occ >= cap(q)/2 {
		min := occ
		for _, in := range m.inputs {
			if l := len(in); l < min {
				min = l
			}
		}
		if min*8 <= occ {
			if m.hotSteer.CompareAndSwap(false, true) {
				m.hotFallbacks.Add(1)
			}
			return m.inputs[rss5Hash(data)%n]
		}
	}
	return q
}

// rssHash hashes the IPv4 source/destination address bytes at their fixed
// offsets in an untagged Ethernet frame (what symmetric hardware RSS does).
// The two addresses are hashed independently and combined commutatively so
// both directions of a connection land on the same collector — stateful
// parsers then see each conversation in order. Each address is consumed as
// one 4-byte load fed through a multiply-shift finalizer; this runs on
// every delivered frame, before any queueing. Frames too short for an IPv4
// header hash over their whole contents.
func rssHash(data []byte) uint64 {
	const srcOff, dstOff = 26, 30
	if len(data) < dstOff+4 {
		return fnv64(data)
	}
	return mix32(binary.BigEndian.Uint32(data[srcOff:srcOff+4])) ^
		mix32(binary.BigEndian.Uint32(data[dstOff:dstOff+4]))
}

// mix32 finalizes one 32-bit word into a well-distributed 64-bit hash with
// two 64-bit multiplies (splitmix64's finalizer), replacing the former
// byte-at-a-time FNV loop on the per-frame fast path.
func mix32(v uint32) uint64 {
	h := (uint64(v) + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// fnv64 is the short-frame fallback hash: FNV-1a consuming 4-byte words
// while it can, then the remaining tail bytes one at a time so ordering of
// every byte still matters.
func fnv64(b []byte) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for len(b) >= 4 {
		h ^= uint64(binary.BigEndian.Uint32(b))
		h *= prime64
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// SetSampleRate updates the admitted fraction of flows, clamped to [0, 1].
func (m *Monitor) SetSampleRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	m.sampleThreshold.Store(uint64(rate * math.MaxUint32))
}

// SampleRate returns the current admitted fraction of flows.
func (m *Monitor) SampleRate() float64 {
	return float64(m.sampleThreshold.Load()) / math.MaxUint32
}

// PerParserTuples snapshots how many tuples each parser has emitted.
func (m *Monitor) PerParserTuples() map[string]uint64 {
	return m.out.perParserCounts()
}

// Stats returns a snapshot of the monitor counters.
func (m *Monitor) Stats() Stats {
	s := Stats{
		Received:     m.received.Value(),
		CollectDrops: m.collectDrops.Value(),
		Sampled:      m.sampled.Value(),
		Malformed:    m.malformed.Value(),
		Dispatched:   m.dispatched.Value(),
		ParserDrops:  m.parserDrops.Value(),
		Steals:       m.steals.Value(),
		StealFrames:  m.stealFrames.Value(),
		Redirects:    m.redirects.Value(),
		HotFallbacks: m.hotFallbacks.Value(),
	}
	s.Tuples = m.out.tuples.Value()
	s.Batches = m.out.batches.Value()
	s.SinkErrors = m.out.sinkErrors.Value()
	return s
}

// runCollector is the Collector of Fig. 3 in burst mode: it blocks for one
// RX slot, then greedily drains its queue until at least BurstSize frames
// have been decoded into a reusable descriptor scratch slice, and
// dispatches the whole burst at once.
func (m *Monitor) runCollector(input <-chan rawBurst) {
	defer m.wg.Done()
	defer m.collectorWG.Done()

	// Scratch holds up to one slot's overshoot past BurstSize, since a
	// drained chunk may carry up to BurstSize frames of its own.
	burst := make([]*Packet, 0, 2*m.cfg.BurstSize)
	groups := make([][]*Packet, m.cfg.WorkersPerParser)
	for {
		rb, ok := <-input
		if !ok {
			return
		}
		burst = m.decodeBurst(rb, burst[:0])
	drain:
		for len(burst) < m.cfg.BurstSize {
			select {
			case rb, ok := <-input:
				if !ok {
					m.dispatchBurst(burst, groups)
					return
				}
				burst = m.decodeBurst(rb, burst)
			default:
				break drain
			}
		}
		m.dispatchBurst(burst, groups)
	}
}

// decodeBurst decodes one RX slot's frames into the scratch slice,
// returning the chunk's carrier to the frame pool.
func (m *Monitor) decodeBurst(rb rawBurst, scratch []*Packet) []*Packet {
	if rb.frames == nil {
		if pkt := m.decodeFrame(rb.single); pkt != nil {
			scratch = append(scratch, pkt)
		}
		return scratch
	}
	for _, rf := range rb.frames {
		if pkt := m.decodeFrame(rf); pkt != nil {
			scratch = append(scratch, pkt)
		}
	}
	m.putFrameSlice(rb.frames)
	return scratch
}

// decodeFrame decodes one frame into a pooled descriptor, applying the
// malformed and flow-sampling filters. It returns nil when a filter consumed
// the frame.
func (m *Monitor) decodeFrame(rf rawFrame) *Packet {
	pkt := m.getPacket()
	if err := pkt.Frame.Decode(rf.data); err != nil {
		m.malformed.Add(1)
		m.putPacket(pkt)
		return nil
	}
	ft, ok := pkt.Frame.FlowTuple()
	if !ok {
		m.malformed.Add(1)
		m.putPacket(pkt)
		return nil
	}
	pkt.Tuple = ft
	pkt.FlowID = ft.CanonicalHash()
	pkt.TS = rf.ts

	if pkt.FlowID>>32 > m.sampleThreshold.Load() {
		m.sampled.Add(1)
		m.putPacket(pkt)
		return nil
	}
	return pkt
}

// dispatchBurst fans one decoded burst out to the parser workers.
// Descriptors are grouped by worker index (FlowID % workers — the same
// mapping single-packet dispatch used, so flow affinity survives burst
// grouping) and each group crosses a worker channel as one operation.
// groups is collector-owned scratch, recycled across bursts.
func (m *Monitor) dispatchBurst(burst []*Packet, groups [][]*Packet) {
	if len(burst) == 0 {
		return
	}
	// One parser-set snapshot covers the whole burst: refcounts and fan-out
	// must agree even if AddParsers publishes a new set mid-burst.
	parsers := *m.parsers.Load()
	if m.cfg.CopyMode {
		for _, pkt := range burst {
			m.dispatchCopies(pkt, parsers)
		}
		return
	}

	// Shared-descriptor fast path: one refcount store per packet covers all
	// parsers; the descriptor returns to the pool when the last worker is
	// done with it.
	nParsers := int32(len(parsers))
	if len(groups) == 1 {
		for _, pkt := range burst {
			pkt.refs.Store(nParsers)
		}
		for _, rt := range parsers {
			m.sendGroup(rt.workers[0], burst)
		}
		return
	}
	for _, pkt := range burst {
		pkt.refs.Store(nParsers)
		w := pkt.FlowID % uint64(len(groups))
		groups[w] = append(groups[w], pkt)
	}
	for w, group := range groups {
		if len(group) == 0 {
			continue
		}
		for _, rt := range parsers {
			m.sendGroup(rt.workers[w], group)
		}
		groups[w] = group[:0]
	}
}

// sendGroup ships one worker's share of a burst as a single channel
// operation. The group is copied into a pooled slice the worker returns
// after processing; a full worker queue drops the whole group, releasing
// one reference per descriptor.
func (m *Monitor) sendGroup(w chan []*Packet, group []*Packet) {
	sl := append(m.getBurstSlice(), group...)
	select {
	case w <- sl:
		m.dispatched.Add(uint64(len(group)))
	default:
		m.parserDrops.Add(uint64(len(group)))
		for _, pkt := range group {
			pkt.release()
		}
		m.putBurstSlice(sl)
	}
}

// dispatchCopies is the ablation path: each parser receives its own decoded
// copy of the frame, as a copying monitor design would. Copies that fail to
// re-decode count as malformed, like any other undecodable frame.
func (m *Monitor) dispatchCopies(pkt *Packet, parsers []*parserRuntime) {
	raw := pkt.Frame.Raw
	for _, rt := range parsers {
		cp := m.getPacket()
		data := make([]byte, len(raw))
		copy(data, raw)
		if err := cp.Frame.Decode(data); err != nil {
			m.malformed.Add(1)
			m.putPacket(cp)
			continue
		}
		cp.Tuple = pkt.Tuple
		cp.FlowID = pkt.FlowID
		cp.TS = pkt.TS
		cp.refs.Store(1)
		w := rt.workers[cp.FlowID%uint64(len(rt.workers))]
		sl := append(m.getBurstSlice(), cp)
		select {
		case w <- sl:
			m.dispatched.Add(1)
		default:
			m.parserDrops.Add(1)
			m.putPacket(cp)
			m.putBurstSlice(sl)
		}
	}
	m.putPacket(pkt)
}

func (m *Monitor) shutdownWorkers() {
	for _, rt := range *m.parsers.Load() {
		for _, w := range rt.workers {
			close(w)
		}
	}
}

func (m *Monitor) runWorker(rt *parserRuntime, idx int, emit EmitFunc) {
	defer m.wg.Done()
	inst := rt.insts[idx]
	for sl := range rt.workers[idx] {
		for _, pkt := range sl {
			inst.Handle(pkt, emit)
			pkt.release()
		}
		m.putBurstSlice(sl)
	}
	if fl, ok := inst.(Flusher); ok {
		fl.Flush(emit)
	}
	m.out.workerDone()
}

// outputBatcher is the Output Interface of Fig. 3: it accumulates tuples in
// per-worker shards and ships batches to the sink on size or time triggers.
// The batcher itself holds no per-tuple state; its mutex guards only the
// shard registry and writer count (cold paths).
type outputBatcher struct {
	batchSize int
	interval  time.Duration
	sink      Sink
	// tracer, when non-nil, samples tuples on the emit path for the
	// stage-latency breakdown. It is left nil for a disabled tracer so the
	// per-tuple cost of tracing-off is a single nil check.
	tracer *telemetry.Tracer

	mu      sync.Mutex
	shards  []*outputShard
	writers int

	stop     chan struct{}
	stopOnce sync.Once

	// tuples counts tuples shipped to the sink. Registry-backed (like
	// batches), so a failover replacement with the same labels resumes the
	// series and query-level stats stay cumulative across monitor restarts —
	// the property the chaos ledger's tuple equation depends on.
	tuples     *telemetry.Counter
	batches    *telemetry.Counter
	sinkErrors *telemetry.Counter
}

// outputShard is one worker's private slice of the output interface. Only
// the owning worker appends tuples and performs size-triggered flushes; the
// periodic flusher steals pending tuples through the shard mutex, which is
// uncontended in steady state (the owner holds it only around an append).
// No lock is shared between shards, so parser workers never serialize on
// the emit path.
type outputShard struct {
	parser string
	out    *outputBatcher

	mu      sync.Mutex
	pending []tuple.Tuple

	count atomic.Uint64 // tuples emitted through this shard
}

func newOutputBatcher(batchSize int, interval time.Duration, sink Sink) *outputBatcher {
	return &outputBatcher{
		batchSize:  batchSize,
		interval:   interval,
		sink:       sink,
		stop:       make(chan struct{}),
		tuples:     &telemetry.Counter{},
		batches:    &telemetry.Counter{},
		sinkErrors: &telemetry.Counter{},
	}
}

func (o *outputBatcher) start(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(o.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				o.flushAll()
			case <-o.stop:
				o.flushAll()
				return
			}
		}
	}()
}

// newShard registers one writer and returns its private output shard.
func (o *outputBatcher) newShard(parser string) *outputShard {
	s := &outputShard{parser: parser, out: o}
	o.mu.Lock()
	o.shards = append(o.shards, s)
	o.writers++
	o.mu.Unlock()
	return s
}

// emit appends one tuple to the shard, shipping a full batch without
// touching any shared lock. Shipped slices are handed to the sink and never
// reused, so sinks may retain them (the mq partition buffer does).
func (s *outputShard) emit(t tuple.Tuple) {
	t.Parser = s.parser
	s.count.Add(1)
	if s.out.tracer != nil {
		s.out.tracer.MaybeStamp(&t)
	}
	var full []tuple.Tuple
	s.mu.Lock()
	if s.pending == nil {
		s.pending = make([]tuple.Tuple, 0, s.out.batchSize)
	}
	s.pending = append(s.pending, t)
	if len(s.pending) >= s.out.batchSize {
		full = s.pending
		s.pending = nil
	}
	s.mu.Unlock()
	if full != nil {
		s.out.ship(s.parser, full)
	}
}

// workerDone signals that one writer finished; when the last writer across
// all parsers is done, the flusher is stopped.
func (o *outputBatcher) workerDone() {
	o.mu.Lock()
	o.writers--
	remaining := o.writers
	o.mu.Unlock()
	if remaining == 0 {
		o.stopOnce.Do(func() { close(o.stop) })
	}
}

func (o *outputBatcher) snapshotShards() []*outputShard {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shards
}

func (o *outputBatcher) perParserCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for _, s := range o.snapshotShards() {
		out[s.parser] += s.count.Load()
	}
	return out
}

// flushAll steals every shard's pending tuples and ships them. Called by
// the periodic flusher and on stop.
func (o *outputBatcher) flushAll() {
	for _, s := range o.snapshotShards() {
		s.mu.Lock()
		pending := s.pending
		s.pending = nil
		s.mu.Unlock()
		if len(pending) > 0 {
			o.ship(s.parser, pending)
		}
	}
}

func (o *outputBatcher) ship(parser string, tuples []tuple.Tuple) {
	b := &tuple.Batch{Parser: parser, Tuples: tuples}
	// Counted whether or not the sink accepts: a rejected batch is still
	// attributed downstream (the mq producer books it as dropped tuples), so
	// shipped = appended + dropped holds across sink errors too.
	o.tuples.Add(uint64(len(tuples)))
	if err := o.sink.Deliver(b); err != nil {
		o.sinkErrors.Add(1)
		return
	}
	o.batches.Add(1)
}

// AIMDSampler implements the feedback-driven sampling of §4.2: on overload
// reports from the aggregation layer it halves the monitor's sample rate
// (multiplicative decrease); on healthy reports it raises the rate additively
// until sampling is effectively off again.
type AIMDSampler struct {
	mon SampleTarget
	// MinRate floors the sample rate (default 0.01).
	MinRate float64
	// Step is the additive recovery increment (default 0.05).
	Step float64
}

// SampleTarget is anything whose flow-sampling rate the AIMD controller can
// drive: a Monitor in the dedicated-tap path, or one query's demux
// subscription on a shared monitor.
type SampleTarget interface {
	SampleRate() float64
	SetSampleRate(float64)
}

// NewAIMDSampler wraps a sample target with the feedback controller.
func NewAIMDSampler(m SampleTarget) *AIMDSampler {
	return &AIMDSampler{mon: m, MinRate: 0.01, Step: 0.05}
}

// OnStatus feeds one aggregation-layer status report into the controller.
func (a *AIMDSampler) OnStatus(overloaded bool) {
	rate := a.mon.SampleRate()
	if overloaded {
		rate /= 2
		if rate < a.MinRate {
			rate = a.MinRate
		}
	} else {
		rate += a.Step
		if rate > 1 {
			rate = 1
		}
	}
	a.mon.SetSampleRate(rate)
}
