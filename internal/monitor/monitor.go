// Package monitor implements the NFV packet monitor of §5.1–5.2: a Collector
// that polls an input queue and fans packet descriptors out to per-parser
// worker queues, pluggable parsers that extract tuples, a batching output
// interface toward the aggregation layer, and flow-hash sampling with a
// feedback-driven (AIMD) controller.
//
// The design mirrors the paper's DPDK pipeline on a virtual substrate:
//
//   - Zero-copy, lockless-style: one decoded descriptor per packet is shared
//     by every parser via a reference count; queues are Go channels.
//   - Multi-level queuing: a collector queue feeds per-worker parser queues;
//     dispatch is by flow hash, so stateful parsers see whole flows and need
//     no locks.
//   - Batching: tuples leave in per-parser batches, flushed by size or time.
//   - Sampling: flows (not packets) are dropped early by hashing the
//     canonical five-tuple against the sampling threshold.
package monitor

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/tuple"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueDepth    = 4096
	DefaultBatchSize     = 64
	DefaultFlushInterval = 50 * time.Millisecond
)

// ErrNoParsers is returned by New when the config names no parsers.
var ErrNoParsers = errors.New("monitor: config has no parsers")

// Packet is the shared descriptor handed to parsers: a decoded view plus the
// flow identity and arrival timestamp. Descriptors are pooled and reference
// counted; parsers must not retain one after Handle returns.
type Packet struct {
	Frame packet.Frame
	Tuple packet.FiveTuple
	// FlowID is the canonical (direction-independent) flow hash, the ID
	// field parsers put first in emitted tuples (§3.1).
	FlowID uint64
	TS     time.Time

	refs atomic.Int32
	mon  *Monitor
}

func (p *Packet) release() {
	if p.refs.Add(-1) == 0 {
		p.mon.pool.Put(p)
	}
}

// EmitFunc delivers one tuple from a parser to the output interface.
type EmitFunc func(tuple.Tuple)

// Parser extracts data from packets. Implementations are created per worker
// (see Factory) so they may keep per-flow state without locking: the
// dispatcher routes all packets of a flow to one worker.
type Parser interface {
	// Name identifies the parser; it is stamped into emitted tuples and
	// selects the aggregation topic.
	Name() string
	// Handle inspects one packet and may emit any number of tuples.
	Handle(p *Packet, emit EmitFunc)
}

// Flusher is implemented by parsers holding aggregate state they want to
// emit when the monitor stops.
type Flusher interface {
	Flush(emit EmitFunc)
}

// Factory creates one parser instance per worker.
type Factory func() Parser

// Sink receives finished tuple batches; mq producers implement it.
type Sink interface {
	Deliver(b *tuple.Batch) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(b *tuple.Batch) error

// Deliver implements Sink.
func (f SinkFunc) Deliver(b *tuple.Batch) error { return f(b) }

// Config parameterizes a Monitor.
type Config struct {
	// Parsers lists the parser factories to run; required.
	Parsers []Factory
	// Collectors sets the number of collector threads draining the input
	// queue (default 1). The paper's design dedicates one collector core
	// per 10 Gbps port and scales with Receive Side Scaling on faster
	// links; flow-affine worker dispatch keeps parser state correct
	// regardless of which collector decoded a frame.
	Collectors int
	// WorkersPerParser sets per-parser worker counts (default 1).
	WorkersPerParser int
	// QueueDepth bounds the collector and per-worker queues.
	QueueDepth int
	// BatchSize is the output batch size per parser.
	BatchSize int
	// FlushInterval bounds how long a non-full batch may wait.
	FlushInterval time.Duration
	// SampleRate in (0,1] is the initial fraction of flows admitted;
	// 0 means 1.0 (no sampling).
	SampleRate float64
	// Sink receives output batches; required.
	Sink Sink
	// CopyMode disables descriptor sharing: each parser gets its own copy
	// of every packet. Exists for the zero-copy ablation benchmark.
	CopyMode bool
}

// Stats is a snapshot of monitor counters.
type Stats struct {
	Received     uint64 // packets offered to the collector queue
	CollectDrops uint64 // packets dropped at the full collector queue
	Sampled      uint64 // packets dropped by flow sampling
	Malformed    uint64 // undecodable frames
	Dispatched   uint64 // descriptor enqueues to parser workers
	ParserDrops  uint64 // descriptors dropped at full worker queues
	Tuples       uint64 // tuples emitted by parsers
	Batches      uint64 // batches delivered to the sink
	SinkErrors   uint64
}

// Monitor is one NFV monitor instance.
type Monitor struct {
	cfg Config
	// inputs holds one RX queue per collector; Deliver steers frames by an
	// RSS-style header hash so all packets of a flow stay in order on one
	// collector.
	inputs  []chan rawFrame
	parsers []*parserRuntime
	out     *outputBatcher
	pool    sync.Pool

	// sampleThreshold is a 32-bit admission threshold compared against the
	// top 32 bits of the canonical flow hash, avoiding the precision loss
	// of a float64→uint64 conversion at rate 1.0.
	sampleThreshold atomic.Uint64

	received     atomic.Uint64
	collectDrops atomic.Uint64
	sampled      atomic.Uint64
	malformed    atomic.Uint64
	dispatched   atomic.Uint64
	parserDrops  atomic.Uint64

	wg          sync.WaitGroup
	collectorWG sync.WaitGroup
	started     bool
	stopped     bool
	mu          sync.Mutex
}

type rawFrame struct {
	data []byte
	ts   time.Time
}

type parserRuntime struct {
	name    string
	workers []chan *Packet
	insts   []Parser
}

// New builds a monitor from the config. Call Start to begin processing.
func New(cfg Config) (*Monitor, error) {
	if len(cfg.Parsers) == 0 {
		return nil, ErrNoParsers
	}
	if cfg.Sink == nil {
		return nil, errors.New("monitor: config needs a sink")
	}
	if cfg.Collectors <= 0 {
		cfg.Collectors = 1
	}
	if cfg.WorkersPerParser <= 0 {
		cfg.WorkersPerParser = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}

	m := &Monitor{cfg: cfg}
	for c := 0; c < cfg.Collectors; c++ {
		m.inputs = append(m.inputs, make(chan rawFrame, cfg.QueueDepth))
	}
	m.pool.New = func() any { return &Packet{mon: m} }
	m.SetSampleRate(cfg.SampleRate)

	names := make(map[string]bool, len(cfg.Parsers))
	for _, factory := range cfg.Parsers {
		probe := factory()
		if names[probe.Name()] {
			return nil, fmt.Errorf("monitor: duplicate parser %q", probe.Name())
		}
		names[probe.Name()] = true
		rt := &parserRuntime{name: probe.Name()}
		rt.insts = append(rt.insts, probe)
		for w := 1; w < cfg.WorkersPerParser; w++ {
			rt.insts = append(rt.insts, factory())
		}
		for w := 0; w < cfg.WorkersPerParser; w++ {
			rt.workers = append(rt.workers, make(chan *Packet, cfg.QueueDepth))
		}
		m.parsers = append(m.parsers, rt)
	}
	m.out = newOutputBatcher(cfg.BatchSize, cfg.FlushInterval, cfg.Sink)
	return m, nil
}

// Start launches the collector, parser workers and output flusher.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true

	m.out.start(&m.wg)
	for _, rt := range m.parsers {
		for w := range rt.workers {
			emit := m.out.emitFunc(rt.name) // register writer before launch
			m.wg.Add(1)
			go m.runWorker(rt, w, emit)
		}
	}
	m.collectorWG.Add(m.cfg.Collectors)
	for c := 0; c < m.cfg.Collectors; c++ {
		m.wg.Add(1)
		go m.runCollector(m.inputs[c])
	}
	// Parser queues close once every collector has drained.
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.collectorWG.Wait()
		m.shutdownWorkers()
	}()
}

// Stop drains in-flight packets, flushes parser state and output batches,
// and waits for all goroutines. The monitor cannot be restarted.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()

	for _, in := range m.inputs {
		close(in)
	}
	m.wg.Wait()
}

// Deliver offers a frame to the monitor, returning false when the target
// collector queue is full (the frame is dropped, as a saturated NIC RX
// queue would). With multiple collectors the RX queue is chosen by hashing
// the frame's address bytes, like hardware RSS, so a flow's packets stay in
// order on one collector.
func (m *Monitor) Deliver(data []byte, ts time.Time) bool {
	m.received.Add(1)
	in := m.inputs[0]
	if len(m.inputs) > 1 {
		in = m.inputs[rssHash(data)%uint64(len(m.inputs))]
	}
	select {
	case in <- rawFrame{data: data, ts: ts}:
		return true
	default:
		m.collectDrops.Add(1)
		return false
	}
}

// rssHash hashes the IPv4 source/destination address bytes at their fixed
// offsets in an untagged Ethernet frame (what symmetric hardware RSS does).
// The two addresses are hashed independently and combined commutatively so
// both directions of a connection land on the same collector — stateful
// parsers then see each conversation in order. Frames too short for an
// IPv4 header hash over their whole contents.
func rssHash(data []byte) uint64 {
	const srcOff, dstOff = 26, 30
	if len(data) < dstOff+4 {
		return fnv64(data)
	}
	return fnv64(data[srcOff:srcOff+4]) ^ fnv64(data[dstOff:dstOff+4])
}

func fnv64(b []byte) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// SetSampleRate updates the admitted fraction of flows, clamped to [0, 1].
func (m *Monitor) SetSampleRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	m.sampleThreshold.Store(uint64(rate * math.MaxUint32))
}

// SampleRate returns the current admitted fraction of flows.
func (m *Monitor) SampleRate() float64 {
	return float64(m.sampleThreshold.Load()) / math.MaxUint32
}

// PerParserTuples snapshots how many tuples each parser has emitted.
func (m *Monitor) PerParserTuples() map[string]uint64 {
	return m.out.perParserCounts()
}

// Stats returns a snapshot of the monitor counters.
func (m *Monitor) Stats() Stats {
	s := Stats{
		Received:     m.received.Load(),
		CollectDrops: m.collectDrops.Load(),
		Sampled:      m.sampled.Load(),
		Malformed:    m.malformed.Load(),
		Dispatched:   m.dispatched.Load(),
		ParserDrops:  m.parserDrops.Load(),
	}
	s.Tuples = m.out.tuples.Load()
	s.Batches = m.out.batches.Load()
	s.SinkErrors = m.out.sinkErrors.Load()
	return s
}

// runCollector is the Collector of Fig. 3: it decodes arriving frames,
// applies flow sampling, and fans descriptors out to every parser.
func (m *Monitor) runCollector(input <-chan rawFrame) {
	defer m.wg.Done()
	defer m.collectorWG.Done()

	for rf := range input {
		pkt := m.pool.Get().(*Packet)
		if err := pkt.Frame.Decode(rf.data); err != nil {
			m.malformed.Add(1)
			m.pool.Put(pkt)
			continue
		}
		ft, ok := pkt.Frame.FlowTuple()
		if !ok {
			m.malformed.Add(1)
			m.pool.Put(pkt)
			continue
		}
		pkt.Tuple = ft
		pkt.FlowID = ft.CanonicalHash()
		pkt.TS = rf.ts

		if pkt.FlowID>>32 > m.sampleThreshold.Load() {
			m.sampled.Add(1)
			m.pool.Put(pkt)
			continue
		}

		if m.cfg.CopyMode {
			m.dispatchCopies(pkt, rf)
			continue
		}

		// Shared-descriptor fast path: one refcount increment per parser,
		// the descriptor returns to the pool when the last worker is done.
		pkt.refs.Store(int32(len(m.parsers)))
		delivered := int32(0)
		for _, rt := range m.parsers {
			w := rt.workers[pkt.FlowID%uint64(len(rt.workers))]
			select {
			case w <- pkt:
				m.dispatched.Add(1)
				delivered++
			default:
				m.parserDrops.Add(1)
			}
		}
		if undelivered := int32(len(m.parsers)) - delivered; undelivered > 0 {
			if pkt.refs.Add(-undelivered) == 0 {
				m.pool.Put(pkt)
			}
		}
	}
}

// dispatchCopies is the ablation path: each parser receives its own decoded
// copy of the frame, as a copying monitor design would.
func (m *Monitor) dispatchCopies(pkt *Packet, rf rawFrame) {
	for _, rt := range m.parsers {
		cp := m.pool.Get().(*Packet)
		data := make([]byte, len(rf.data))
		copy(data, rf.data)
		if err := cp.Frame.Decode(data); err != nil {
			m.pool.Put(cp)
			continue
		}
		cp.Tuple = pkt.Tuple
		cp.FlowID = pkt.FlowID
		cp.TS = pkt.TS
		cp.refs.Store(1)
		w := rt.workers[cp.FlowID%uint64(len(rt.workers))]
		select {
		case w <- cp:
			m.dispatched.Add(1)
		default:
			m.parserDrops.Add(1)
			m.pool.Put(cp)
		}
	}
	m.pool.Put(pkt)
}

func (m *Monitor) shutdownWorkers() {
	for _, rt := range m.parsers {
		for _, w := range rt.workers {
			close(w)
		}
	}
}

func (m *Monitor) runWorker(rt *parserRuntime, idx int, emit EmitFunc) {
	defer m.wg.Done()
	inst := rt.insts[idx]
	for pkt := range rt.workers[idx] {
		inst.Handle(pkt, emit)
		pkt.release()
	}
	if fl, ok := inst.(Flusher); ok {
		fl.Flush(emit)
	}
	m.out.workerDone(rt.name)
}

// outputBatcher is the Output Interface of Fig. 3: it accumulates tuples per
// parser and ships batches to the sink on size or time triggers.
type outputBatcher struct {
	batchSize int
	interval  time.Duration
	sink      Sink

	mu        sync.Mutex
	pending   map[string][]tuple.Tuple
	writers   map[string]int
	perParser map[string]uint64

	stop     chan struct{}
	stopOnce sync.Once

	tuples     atomic.Uint64
	batches    atomic.Uint64
	sinkErrors atomic.Uint64
}

func newOutputBatcher(batchSize int, interval time.Duration, sink Sink) *outputBatcher {
	return &outputBatcher{
		batchSize: batchSize,
		interval:  interval,
		sink:      sink,
		pending:   make(map[string][]tuple.Tuple),
		writers:   make(map[string]int),
		perParser: make(map[string]uint64),
		stop:      make(chan struct{}),
	}
}

func (o *outputBatcher) start(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(o.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				o.flushAll()
			case <-o.stop:
				o.flushAll()
				return
			}
		}
	}()
}

func (o *outputBatcher) emitFunc(parser string) EmitFunc {
	o.mu.Lock()
	o.writers[parser]++
	o.mu.Unlock()
	return func(t tuple.Tuple) {
		t.Parser = parser
		o.tuples.Add(1)
		var full []tuple.Tuple
		o.mu.Lock()
		o.perParser[parser]++
		o.pending[parser] = append(o.pending[parser], t)
		if len(o.pending[parser]) >= o.batchSize {
			full = o.pending[parser]
			o.pending[parser] = nil
		}
		o.mu.Unlock()
		if full != nil {
			o.ship(parser, full)
		}
	}
}

// workerDone signals that one writer for the parser finished; when the last
// writer across all parsers is done, the flusher is stopped.
func (o *outputBatcher) workerDone(parser string) {
	o.mu.Lock()
	o.writers[parser]--
	remaining := 0
	for _, n := range o.writers {
		remaining += n
	}
	o.mu.Unlock()
	if remaining == 0 {
		o.stopOnce.Do(func() { close(o.stop) })
	}
}

func (o *outputBatcher) perParserCounts() map[string]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]uint64, len(o.perParser))
	for k, v := range o.perParser {
		out[k] = v
	}
	return out
}

func (o *outputBatcher) flushAll() {
	o.mu.Lock()
	drained := o.pending
	o.pending = make(map[string][]tuple.Tuple, len(drained))
	o.mu.Unlock()
	for parser, tuples := range drained {
		if len(tuples) > 0 {
			o.ship(parser, tuples)
		}
	}
}

func (o *outputBatcher) ship(parser string, tuples []tuple.Tuple) {
	b := &tuple.Batch{Parser: parser, Tuples: tuples}
	if err := o.sink.Deliver(b); err != nil {
		o.sinkErrors.Add(1)
		return
	}
	o.batches.Add(1)
}

// AIMDSampler implements the feedback-driven sampling of §4.2: on overload
// reports from the aggregation layer it halves the monitor's sample rate
// (multiplicative decrease); on healthy reports it raises the rate additively
// until sampling is effectively off again.
type AIMDSampler struct {
	mon *Monitor
	// MinRate floors the sample rate (default 0.01).
	MinRate float64
	// Step is the additive recovery increment (default 0.05).
	Step float64
}

// NewAIMDSampler wraps a monitor with the feedback controller.
func NewAIMDSampler(m *Monitor) *AIMDSampler {
	return &AIMDSampler{mon: m, MinRate: 0.01, Step: 0.05}
}

// OnStatus feeds one aggregation-layer status report into the controller.
func (a *AIMDSampler) OnStatus(overloaded bool) {
	rate := a.mon.SampleRate()
	if overloaded {
		rate /= 2
		if rate < a.MinRate {
			rate = a.MinRate
		}
	} else {
		rate += a.Step
		if rate > 1 {
			rate = 1
		}
	}
	a.mon.SetSampleRate(rate)
}
