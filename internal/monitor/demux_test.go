package monitor

import (
	"math"
	"testing"
	"time"

	"netalytics/internal/sdn"
	"netalytics/internal/tuple"
)

func demuxTuple(src, dst string, dstPort uint16, flowID uint64) tuple.Tuple {
	return tuple.Tuple{FlowID: flowID, Parser: "p", SrcIP: src, DstIP: dst, DstPort: dstPort, Val: 1}
}

func TestDemuxRoutesByParserAndMatch(t *testing.T) {
	d := NewDemux(nil)
	web := &memSink{}
	all := &memSink{}
	other := &memSink{}
	d.Subscribe("web", []string{"p"}, []sdn.Match{{DstPort: 80}}, web, 1)
	d.Subscribe("all", []string{"p"}, nil, all, 1)
	d.Subscribe("other", []string{"q"}, nil, other, 1)

	batch := &tuple.Batch{Parser: "p", Tuples: []tuple.Tuple{
		demuxTuple("10.0.0.1", "10.0.0.2", 80, 1),
		demuxTuple("10.0.0.1", "10.0.0.2", 81, 2),
		{FlowID: 3, Parser: "p", Key: "aggregate", Val: 7}, // no endpoints
	}}
	if err := d.Deliver(batch); err != nil {
		t.Fatal(err)
	}

	// The match-filtered subscriber sees its port plus the aggregate tuple
	// (no endpoints to discriminate on: fail open so parser-level aggregates
	// reach every subscriber of that parser).
	if got := web.tuples(); len(got) != 2 || got[0].DstPort != 80 || got[1].Key != "aggregate" {
		t.Errorf("web sink got %+v, want port-80 tuple + aggregate", got)
	}
	if got := all.tuples(); len(got) != 3 {
		t.Errorf("unfiltered sink got %d tuples, want all 3", len(got))
	}
	if got := other.tuples(); len(got) != 0 {
		t.Errorf("sink of another parser got %d tuples, want 0", len(got))
	}
	if got := d.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestDemuxTraceCloning(t *testing.T) {
	d := NewDemux(nil)
	s1 := &memSink{}
	s2 := &memSink{}
	d.Subscribe("q1", []string{"p"}, nil, s1, 1)
	d.Subscribe("q2", []string{"p"}, nil, s2, 1)

	orig := &tuple.Trace{CaptureNS: 42}
	tt := demuxTuple("10.0.0.1", "10.0.0.2", 80, 1)
	tt.Trace = orig
	if err := d.Deliver(&tuple.Batch{Parser: "p", Tuples: []tuple.Tuple{tt}}); err != nil {
		t.Fatal(err)
	}

	got1, got2 := s1.tuples(), s2.tuples()
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", len(got1), len(got2))
	}
	if got1[0].Trace != orig {
		t.Error("first subscriber should share the original trace record")
	}
	if got2[0].Trace == orig {
		t.Error("second subscriber must get a cloned trace record")
	}
	if got2[0].Trace == nil || got2[0].Trace.CaptureNS != 42 {
		t.Errorf("cloned trace = %+v, want CaptureNS 42 carried over", got2[0].Trace)
	}
}

func TestDemuxSubscriberSampling(t *testing.T) {
	d := NewDemux(nil)
	sampled := &memSink{}
	full := &memSink{}
	sub := d.Subscribe("sampled", []string{"p"}, nil, sampled, 1)
	d.Subscribe("full", []string{"p"}, nil, full, 1)
	sub.SetSampleRate(0.5)

	lowFlow := uint64(1)                 // top 32 bits zero: always admitted
	highFlow := uint64(0xFFFFFFFF) << 32 // top 32 bits max: dropped below rate 1
	b := &tuple.Batch{Parser: "p", Tuples: []tuple.Tuple{
		demuxTuple("10.0.0.1", "10.0.0.2", 80, lowFlow),
		demuxTuple("10.0.0.1", "10.0.0.2", 80, highFlow),
	}}
	if err := d.Deliver(b); err != nil {
		t.Fatal(err)
	}
	if got := sampled.tuples(); len(got) != 1 || got[0].FlowID != lowFlow {
		t.Errorf("sampled subscriber got %+v, want only the low-hash flow", got)
	}
	if got := full.tuples(); len(got) != 2 {
		t.Errorf("unsampled subscriber got %d tuples, want both", len(got))
	}
	if got := sub.Tuples(); got != 1 {
		t.Errorf("sub.Tuples = %d, want 1", got)
	}
}

func TestDemuxRateHookMaxOverSubscribers(t *testing.T) {
	d := NewDemux(nil)
	var last float64
	d.SetRateHook(func(max float64) { last = max })
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }

	s1 := d.Subscribe("q1", []string{"p"}, nil, &memSink{}, 0.5)
	if !near(last, 0.5) {
		t.Errorf("after first subscribe max = %v, want 0.5", last)
	}
	s2 := d.Subscribe("q2", []string{"p"}, nil, &memSink{}, 1)
	if last != 1 {
		t.Errorf("after second subscribe max = %v, want 1", last)
	}
	s2.SetSampleRate(0.2)
	if !near(last, 0.5) {
		t.Errorf("after re-rate max = %v, want 0.5", last)
	}
	d.Unsubscribe(s1)
	if got := s2.SampleRate(); last != got {
		t.Errorf("after unsubscribe max = %v, want survivor's rate %v", last, got)
	}
	d.Unsubscribe(s2)
	if last != 0 {
		t.Errorf("after last unsubscribe max = %v, want 0", last)
	}
}

// TestMonitorAddParsersLive grows a running monitor's parser set mid-stream:
// frames delivered before the addition reach only the original parser,
// frames after it reach both, and Stop still flushes and leaks nothing.
func TestMonitorAddParsersLive(t *testing.T) {
	sink := &memSink{}
	m, err := New(Config{
		Parsers:       []Factory{func() Parser { return &countParser{name: "a"} }},
		Sink:          sink,
		BatchSize:     1,
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()

	deliverAll := func(n int) {
		for i := 0; i < n; i++ {
			for !m.Deliver(frameWithPorts(uint16(30000+i), 80), time.Now()) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	deliverAll(10)
	waitFor(t, func() bool { return m.PerParserTuples()["a"] == 10 })

	if err := m.AddParsers(func() Parser { return &countParser{name: "b"} }); err != nil {
		t.Fatal(err)
	}
	// Re-adding an existing parser is an idempotent no-op.
	if err := m.AddParsers(func() Parser { return &countParser{name: "a"} }); err != nil {
		t.Fatal(err)
	}
	if got := m.ParserNames(); len(got) != 2 {
		t.Fatalf("ParserNames = %v, want [a b]", got)
	}

	deliverAll(10)
	waitFor(t, func() bool {
		per := m.PerParserTuples()
		return per["a"] == 20 && per["b"] == 10
	})

	m.Stop()
	if got := m.live.Load(); got != 0 {
		t.Errorf("descriptor audit after Stop = %d, want 0", got)
	}
	if err := m.AddParsers(func() Parser { return &countParser{name: "c"} }); err == nil {
		t.Error("AddParsers after Stop succeeded, want error")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
