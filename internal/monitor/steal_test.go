package monitor

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/tuple"
)

// stealFrame builds a TCP frame between two hosts of pair p with the given
// ports — distinct p values land on distinct collector shards, distinct
// ports within one pair are distinct flows on the same shard.
func stealFrame(p int, srcPort, dstPort uint16) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src:     netip.AddrFrom4([4]byte{10, 1, byte(p), 2}),
		Dst:     netip.AddrFrom4([4]byte{10, 1, byte(p), 3}),
		SrcPort: srcPort, DstPort: dstPort,
		Flags: packet.TCPFlagACK, Payload: []byte("data"),
	})
}

// orderParser records the per-flow sequence numbers it observes, in Handle
// order. Sequence numbers travel in the frame timestamp, so the test needs
// no payload decoding. One flow maps to one worker, so append order is the
// order the pipeline delivered that flow's frames.
type orderParser struct {
	mu  *sync.Mutex
	seq map[uint64][]int64
}

func (p *orderParser) Name() string { return "order" }
func (p *orderParser) Handle(pkt *Packet, emit EmitFunc) {
	p.mu.Lock()
	p.seq[pkt.FlowID] = append(p.seq[pkt.FlowID], pkt.TS.UnixNano())
	p.mu.Unlock()
	emit(tuple.Tuple{FlowID: pkt.FlowID, Val: 1})
}

// TestStealParityMultiset: satellite 3's parity test — a work-steal monitor
// and a legacy monitor fed the same frames must ship identical tuple
// multisets, with zero loss and zero leaked descriptors in both.
func TestStealParityMultiset(t *testing.T) {
	const pairs, flowsPerPair, framesPerFlow = 5, 4, 40
	run := func(workSteal bool) map[uint64]int {
		t.Helper()
		sink := &memSink{}
		m, err := New(Config{
			Parsers:    []Factory{func() Parser { return &countParser{name: "count"} }},
			Sink:       sink,
			Collectors: 4,
			WorkSteal:  workSteal,
			QueueDepth: 8192,
			BurstSize:  16,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		for f := 0; f < framesPerFlow; f++ {
			for p := 0; p < pairs; p++ {
				for fl := 0; fl < flowsPerPair; fl++ {
					if !m.Deliver(stealFrame(p, uint16(2000+fl), 80), time.Now()) {
						t.Fatalf("Deliver rejected (pair %d flow %d frame %d)", p, fl, f)
					}
				}
			}
		}
		m.Stop()
		if n := m.live.Load(); n != 0 {
			t.Fatalf("workSteal=%v leaked %d descriptors", workSteal, n)
		}
		st := m.Stats()
		if st.CollectDrops != 0 || st.ParserDrops != 0 {
			t.Fatalf("workSteal=%v dropped frames: %+v", workSteal, st)
		}
		got := make(map[uint64]int)
		for _, tu := range sink.tuples() {
			got[tu.FlowID]++
		}
		return got
	}

	legacy := run(false)
	stolen := run(true)
	if len(legacy) != pairs*flowsPerPair || len(stolen) != len(legacy) {
		t.Fatalf("flow counts: legacy %d stolen %d, want %d", len(legacy), len(stolen), pairs*flowsPerPair)
	}
	for id, n := range legacy {
		if stolen[id] != n {
			t.Fatalf("flow %x: legacy %d stolen %d", id, n, stolen[id])
		}
	}
}

// TestStealFlowOrderPreserved: per-FiveTuple ordering must survive steals.
// Every frame targets one src/dst pair, so all of them land on a single RX
// ring; the other three collectors only ever get work by stealing, and the
// dispatch ticket must still deliver each flow's frames in arrival order.
// Per-flow order is asserted on every attempt; the steals-happened check
// retries a few times because which collector the scheduler runs first is
// not under the test's control (an owner that gets the first quantum can
// drain a preloaded ring alone).
func TestStealFlowOrderPreserved(t *testing.T) {
	const flows, framesPerFlow = 8, 400
	const preloadFrames = flows * framesPerFlow * 3 / 4
	attempt := func() Stats {
		t.Helper()
		mu := &sync.Mutex{}
		seqs := map[uint64][]int64{}
		sink := &memSink{}
		m, err := New(Config{
			Parsers: []Factory{func() Parser {
				return &orderParser{mu: mu, seq: seqs}
			}},
			Sink:             sink,
			Collectors:       4,
			WorkSteal:        true,
			WorkersPerParser: 2,
			// Ring capacity 8192: total load (3200) stays under the
			// hot-steer trigger (half capacity), so steering stays pure
			// pair-hash and the only balancing in play is stealing.
			QueueDepth: 8192,
			BurstSize:  16,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Phase 1 preloads a deep backlog; phase 2 keeps delivering while
		// the collectors run, so every publish wakes all parked collectors
		// and thieves race the owner for the new frames.
		seq := int64(0)
		deliver := func() {
			seq++
			fl := seq % flows
			if !m.Deliver(stealFrame(1, uint16(3000+fl), 80), time.Unix(0, seq)) {
				t.Fatalf("Deliver rejected at seq %d", seq)
			}
		}
		for i := 0; i < preloadFrames; i++ {
			deliver()
		}
		m.Start()
		for i := preloadFrames; i < flows*framesPerFlow; i++ {
			deliver()
		}
		m.Stop()

		st := m.Stats()
		if st.CollectDrops != 0 || st.ParserDrops != 0 {
			t.Fatalf("dropped frames: %+v", st)
		}
		if st.HotFallbacks != 0 {
			t.Errorf("hot fallback latched (%d): load was sized to stay below the trigger", st.HotFallbacks)
		}
		if len(seqs) != flows {
			t.Fatalf("observed %d flows, want %d", len(seqs), flows)
		}
		total := 0
		for id, got := range seqs {
			total += len(got)
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("flow %x reordered at %d: %d after %d", id, i, got[i], got[i-1])
				}
			}
		}
		if total != flows*framesPerFlow {
			t.Errorf("total frames %d, want %d", total, flows*framesPerFlow)
		}
		return st
	}

	for i := 0; i < 5; i++ {
		if attempt().Steals > 0 {
			return
		}
	}
	t.Error("no steals recorded in any attempt against a deep single-ring backlog")
}

// TestStealStarvationThroughput: satellite 3's starvation test — all
// traffic on one hot shard with 7 idle collectors must reach at least 90%
// of the throughput of the same load spread evenly over all 8 shards,
// because the idle collectors steal the hot shard's backlog. Each variant
// takes its best of three runs to keep scheduler noise out of the ratio.
func TestStealStarvationThroughput(t *testing.T) {
	const frames = 4096
	elapsed := func(skewed bool) time.Duration {
		t.Helper()
		best := time.Duration(1<<63 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			sink := &memSink{}
			m, err := New(Config{
				Parsers:    []Factory{func() Parser { return &countParser{name: "count"} }},
				Sink:       sink,
				Collectors: 8,
				WorkSteal:  true,
				QueueDepth: 16384, // half-capacity trigger stays out of reach
				BurstSize:  32,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < frames; i++ {
				pair := 1
				if !skewed {
					pair = i % 8
				}
				if !m.Deliver(stealFrame(pair, uint16(1024+i%512), 80), time.Now()) {
					t.Fatal("Deliver rejected")
				}
			}
			start := time.Now()
			m.Start()
			m.Stop() // waits for full drain and flush
			if d := time.Since(start); d < best {
				best = d
			}
			if got := m.Stats().Dispatched; got != frames {
				t.Fatalf("skewed=%v dispatched %d, want %d", skewed, got, frames)
			}
		}
		return best
	}

	balanced := elapsed(false)
	skewed := elapsed(true)
	// throughput_skewed >= 0.9 * throughput_balanced, i.e. the hot-shard run
	// may take at most 1/0.9 of the balanced time (plus scheduling slack).
	limit := balanced*10/9 + 20*time.Millisecond
	if skewed > limit {
		t.Errorf("hot shard starved: skewed %v vs balanced %v (limit %v)", skewed, balanced, limit)
	}
}

// TestHotShardFallbackSteal: satellite 1 on the steal path — when one
// elephant src/dst pair fills its ring while every other ring idles,
// steering must latch to the 5-tuple hash and spread that pair's flows
// across all shards. Collectors are deliberately not started so occupancy
// is fully deterministic.
func TestHotShardFallbackSteal(t *testing.T) {
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "count"} }},
		Sink:       &memSink{},
		Collectors: 4,
		WorkSteal:  true,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 150 // < total ring capacity (4×64), so nothing can drop
	for i := 0; i < frames; i++ {
		if !m.Deliver(stealFrame(1, uint16(5000+i), 80), time.Now()) {
			t.Fatalf("Deliver %d rejected", i)
		}
	}
	st := m.Stats()
	if st.HotFallbacks != 1 {
		t.Fatalf("HotFallbacks = %d, want exactly 1 latch", st.HotFallbacks)
	}
	if st.CollectDrops != 0 {
		t.Errorf("CollectDrops = %d, want 0", st.CollectDrops)
	}
	occupied := 0
	for _, r := range m.stealRings {
		if r.occupied() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("only %d rings occupied after fallback; elephant pair still owns one shard", occupied)
	}
}

// TestHotShardFallbackLegacyChannels: the same pathology fix applies to the
// legacy channel-steered path (WorkSteal off).
func TestHotShardFallbackLegacyChannels(t *testing.T) {
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "count"} }},
		Sink:       &memSink{},
		Collectors: 4,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !m.Deliver(stealFrame(1, uint16(5000+i), 80), time.Now()) {
			t.Fatalf("Deliver %d rejected", i)
		}
	}
	if got := m.Stats().HotFallbacks; got != 1 {
		t.Fatalf("HotFallbacks = %d, want exactly 1 latch", got)
	}
	occupied := 0
	for _, in := range m.inputs {
		if len(in) > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("only %d collector queues occupied after fallback", occupied)
	}
}

// TestStealDeliverBurstShortWrite: the burst contract on the steal path —
// frames land in order until the rings are genuinely full (steered ring
// full AND least-loaded ring full means all full), then a short write.
func TestStealDeliverBurstShortWrite(t *testing.T) {
	m, err := New(Config{
		Parsers:    []Factory{func() Parser { return &countParser{name: "count"} }},
		Sink:       &memSink{},
		Collectors: 4,
		WorkSteal:  true,
		QueueDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 300)
	for i := range frames {
		frames[i] = stealFrame(1, uint16(6000+i), 80)
	}
	sent := m.DeliverBurst(frames, time.Now())
	if want := 4 * 16; sent != want {
		t.Fatalf("short write sent %d, want full capacity %d", sent, want)
	}
	st := m.Stats()
	if st.Received != uint64(sent+1) || st.CollectDrops != 1 {
		t.Errorf("received %d drops %d, want %d/1", st.Received, st.CollectDrops, sent+1)
	}
	// Redirects must have kicked in once the steered ring filled.
	if st.Redirects == 0 {
		t.Error("no least-loaded redirects while filling all rings")
	}
}

// TestStealRingClaimSpans exercises the rxRing cursor math directly:
// claims are contiguous, exclusive and bounded by the published head.
func TestStealRingClaimSpans(t *testing.T) {
	r := newRXRing(8)
	for i := 0; i < 5; i++ {
		if !r.push(rawFrame{ts: time.Unix(0, int64(i))}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if got := r.backlog(); got != 5 {
		t.Fatalf("backlog = %d, want 5", got)
	}
	s1, n1 := r.claimSpan(3)
	s2, n2 := r.claimSpan(64)
	if s1 != 0 || n1 != 3 || s2 != 3 || n2 != 2 {
		t.Fatalf("spans = [%d,+%d) [%d,+%d), want [0,+3) [3,+2)", s1, n1, s2, n2)
	}
	if _, n := r.claimSpan(1); n != 0 {
		t.Fatalf("empty ring claimed %d", n)
	}
	// Ring full until spans are dispatched.
	for i := 0; i < 3; i++ {
		r.push(rawFrame{})
	}
	if r.push(rawFrame{}) {
		t.Fatal("push into full ring succeeded")
	}
	r.disp.Store(5)
	if !r.push(rawFrame{}) {
		t.Fatal("push after dispatch freed slots failed")
	}
}

// TestRSS5HashFlowSticky: the fallback hash is symmetric per connection and
// spreads distinct port pairs of one address pair.
func TestRSS5HashFlowSticky(t *testing.T) {
	fwd := stealFrame(1, 4000, 80)
	rev := func() []byte {
		var b packet.Builder
		return b.TCP(packet.TCPSpec{
			Src: netip.AddrFrom4([4]byte{10, 1, 1, 3}), Dst: netip.AddrFrom4([4]byte{10, 1, 1, 2}),
			SrcPort: 80, DstPort: 4000,
			Flags: packet.TCPFlagACK, Payload: []byte("data"),
		})
	}()
	if rss5Hash(fwd) != rss5Hash(rev) {
		t.Error("rss5Hash not symmetric: directions of one connection split across shards")
	}
	buckets := map[uint64]bool{}
	for port := 0; port < 64; port++ {
		buckets[rss5Hash(stealFrame(1, uint16(4000+port), 80))%8] = true
	}
	if len(buckets) < 4 {
		t.Errorf("64 flows of one pair hit only %d/8 buckets", len(buckets))
	}
	if rss5Hash([]byte{1, 2, 3}) != fnv64([]byte{1, 2, 3}) {
		t.Error("short frame did not fall back to fnv64")
	}
}

// TestStealStopDrains: frames already accepted when Stop begins are still
// parsed — steal-mode shutdown drains every ring before workers close.
func TestStealStopDrains(t *testing.T) {
	for round := 0; round < 10; round++ {
		sink := &memSink{}
		m, err := New(Config{
			Parsers:    []Factory{func() Parser { return &countParser{name: fmt.Sprintf("c%d", round)} }},
			Sink:       sink,
			Collectors: 3,
			WorkSteal:  true,
			QueueDepth: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		const n = 200
		for i := 0; i < n; i++ {
			if !m.Deliver(stealFrame(i%3, uint16(7000+i%16), 80), time.Now()) {
				t.Fatalf("Deliver %d rejected", i)
			}
		}
		m.Stop()
		if got := len(sink.tuples()); got != n {
			t.Fatalf("round %d: sink received %d tuples, want %d", round, got, n)
		}
		if live := m.live.Load(); live != 0 {
			t.Fatalf("round %d: %d descriptors leaked", round, live)
		}
	}
}
