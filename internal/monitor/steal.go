package monitor

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the monitor half of the sharded-ingest tentpole (DESIGN.md
// "Sharded ingest & work-stealing"): with Config.WorkSteal and Collectors >
// 1, the per-collector RX channels are replaced by per-collector ring
// queues that idle collectors can steal from, so one hot RSS bucket no
// longer pins every frame to a single core while the other collectors idle
// — the non-linear many-core degradation retina documents for per-CPU
// buffers drained by a single reader.
//
// Mechanics:
//
//   - Produce (Deliver): frames are steered to a ring by the symmetric RSS
//     hash, written under a tiny per-ring mutex and published with an
//     atomic head store. Rings are bounded; a full ring drops the frame
//     (saturated NIC semantics), after one least-loaded redirect attempt.
//   - Consume: collectors claim contiguous spans from the *oldest* end of a
//     ring with a CAS on the ring's claim cursor — the owner drains its own
//     ring first, and when empty steals up to half the backlog (capped at
//     BurstSize) from the hottest sibling it finds.
//   - Ordering invariant: decoding of claimed spans runs in parallel, but
//     dispatch into the flow-affine parser worker queues is serialized per
//     ring by a ticket (disp cursor): a claimer may only dispatch when
//     every earlier span of that ring has dispatched. Flows are
//     ring-sticky (the steering hash is deterministic per flow), so
//     per-flow order into each parser worker is preserved no matter who
//     stole what. FIFO-local *and* FIFO-steal, deliberately: a LIFO local
//     end (classic Chase-Lev) would reorder a flow's frames against the
//     thief's older span, which stateful parsers cannot tolerate.
//   - Hot-shard fallback: when the pair-hash steering degenerates (one
//     elephant src/dst pair fills one ring while the least-loaded ring
//     idles), steering latches to a port-aware canonical 5-tuple hash that
//     spreads the pair's many connections across all rings, each flow still
//     sticky to one ring. Only a frame that would otherwise be *dropped* at
//     a full ring is redirected to the least-loaded ring — trading order
//     for delivery exactly where the legacy path would lose the frame.

// stealParkTimeout bounds how long an idle steal-mode collector parks
// before rescanning; the wakeup signal makes this a lost-signal backstop,
// not the steady-state latency.
const stealParkTimeout = 50 * time.Millisecond

// paddedAtomic is an atomic.Uint64 padded to its own cache line: a ring's
// three cursors are written by different cores (producers, claimers,
// dispatchers) and must not false-share.
type paddedAtomic struct {
	atomic.Uint64
	_ [56]byte
}

// rxRing is one collector's RX shard: a bounded power-of-two ring of raw
// frames with three cursors — head (published by producers), claim (taken
// by collectors, owner or thief) and disp (dispatch ticket: spans below it
// have entered the parser worker queues).
type rxRing struct {
	slots []rawFrame
	mask  uint64

	mu    sync.Mutex // producers only; held across one slot write
	head  paddedAtomic
	claim paddedAtomic
	disp  paddedAtomic
}

func newRXRing(depth int) *rxRing {
	capSlots := 1
	for capSlots < depth {
		capSlots <<= 1
	}
	return &rxRing{
		slots: make([]rawFrame, capSlots),
		mask:  uint64(capSlots - 1),
	}
}

// push publishes one frame; false when the ring is full (the frame is the
// caller's to drop-account). The mutex serializes producers only — consumers
// synchronize through the atomic head.
func (r *rxRing) push(rf rawFrame) bool {
	r.mu.Lock()
	h := r.head.Load()
	if h-r.disp.Load() >= uint64(len(r.slots)) {
		r.mu.Unlock()
		return false
	}
	r.slots[h&r.mask] = rf
	r.head.Store(h + 1) // publish: consumers acquire the slot write here
	r.mu.Unlock()
	return true
}

// backlog is the unclaimed depth — what a thief could take.
func (r *rxRing) backlog() uint64 {
	h, c := r.head.Load(), r.claim.Load()
	if h < c {
		return 0
	}
	return h - c
}

// occupied is the undisposed depth — what bounds producers.
func (r *rxRing) occupied() uint64 {
	return r.head.Load() - r.disp.Load()
}

// claimSpan claims up to max of the oldest unclaimed slots, returning the
// span start and length (0 when empty). Contiguity is what lets the ticket
// below serialize dispatch in arrival order.
func (r *rxRing) claimSpan(max int) (uint64, int) {
	for {
		c := r.claim.Load()
		h := r.head.Load()
		if c >= h {
			return 0, 0
		}
		take := h - c
		if take > uint64(max) {
			take = uint64(max)
		}
		if r.claim.CompareAndSwap(c, c+take) {
			return c, int(take)
		}
	}
}

// awaitTicket spins (yielding) until every span before start has been
// dispatched. The wait is bounded by a sibling's decode of at most
// BurstSize frames, and dispatch itself never blocks (full worker queues
// drop), so the ticket cannot deadlock.
func (r *rxRing) awaitTicket(start uint64) {
	for r.disp.Load() != start {
		runtime.Gosched()
	}
}

// drainSpan claims up to max frames from r, decodes them, and dispatches
// the burst in ticket order. Returns the number of frames claimed (0 when
// the ring was empty). scratch slices are collector-owned and reused.
func (m *Monitor) drainSpan(r *rxRing, max int, scratch *[]*Packet, groups [][]*Packet) int {
	start, n := r.claimSpan(max)
	if n == 0 {
		return 0
	}
	burst := (*scratch)[:0]
	for off := start; off < start+uint64(n); off++ {
		if pkt := m.decodeFrame(r.slots[off&r.mask]); pkt != nil {
			burst = append(burst, pkt)
		}
	}
	r.awaitTicket(start)
	m.dispatchBurst(burst, groups)
	r.disp.Store(start + uint64(n))
	*scratch = burst
	return n
}

// runStealCollector is the steal-mode collector loop for shard idx: drain
// the home ring, then steal from the deepest sibling, then park on the RX
// signal. Exit: once the monitor is stopping and every ring is fully
// claimed and dispatched.
func (m *Monitor) runStealCollector(idx int) {
	defer m.wg.Done()
	defer m.collectorWG.Done()

	scratch := make([]*Packet, 0, 2*m.cfg.BurstSize)
	groups := make([][]*Packet, m.cfg.WorkersPerParser)
	rings := m.stealRings
	own := rings[idx]
	for {
		if m.drainSpan(own, m.cfg.BurstSize, &scratch, groups) > 0 {
			continue
		}

		// Steal: pick the deepest sibling and take half its backlog (capped
		// at one burst), oldest-first. Half leaves the victim a working set
		// and keeps a single thief from ping-ponging the whole queue.
		victim, depth := -1, uint64(0)
		for off := 1; off < len(rings); off++ {
			v := (idx + off) % len(rings)
			if bl := rings[v].backlog(); bl > depth {
				victim, depth = v, bl
			}
		}
		if victim >= 0 {
			take := int((depth + 1) / 2)
			if take > m.cfg.BurstSize {
				take = m.cfg.BurstSize
			}
			if got := m.drainSpan(rings[victim], take, &scratch, groups); got > 0 {
				m.steals.Add(1)
				m.stealFrames.Add(uint64(got))
				continue
			}
		}

		if m.stopping.Load() {
			if m.ringsDrained() {
				return
			}
			// Another collector holds the last claims; let it finish.
			runtime.Gosched()
			continue
		}

		// Park until a producer publishes. Register as waiter first, then
		// re-scan: a producer that raced the registration saw no waiters
		// and skipped the signal.
		m.rxWaiters.Add(1)
		sig := m.rxSignal()
		if m.anyRingBacklog() || m.stopping.Load() {
			m.rxWaiters.Add(-1)
			continue
		}
		timer := time.NewTimer(stealParkTimeout)
		select {
		case <-sig:
		case <-timer.C:
		}
		timer.Stop()
		m.rxWaiters.Add(-1)
	}
}

// ringsDrained reports whether every ring's frames have been claimed and
// dispatched — the steal-mode shutdown condition.
func (m *Monitor) ringsDrained() bool {
	for _, r := range m.stealRings {
		if r.claim.Load() < r.head.Load() || r.disp.Load() < r.claim.Load() {
			return false
		}
	}
	return true
}

func (m *Monitor) anyRingBacklog() bool {
	for _, r := range m.stealRings {
		if r.backlog() > 0 {
			return true
		}
	}
	return false
}

// rxSignal returns the channel the next publish will close; the waiter
// protocol mirrors mq's topic wakeup (register, re-poll, park).
func (m *Monitor) rxSignal() <-chan struct{} {
	m.rxMu.Lock()
	if m.rxCh == nil {
		m.rxCh = make(chan struct{})
	}
	ch := m.rxCh
	m.rxMu.Unlock()
	return ch
}

// rxSignalData wakes parked collectors after a publish; a single atomic
// load on the producer hot path when nobody is parked.
func (m *Monitor) rxSignalData() {
	if m.rxWaiters.Load() == 0 {
		return
	}
	m.rxBroadcast()
}

// rxBroadcast unconditionally wakes every parked collector (publishes and
// Stop both use it).
func (m *Monitor) rxBroadcast() {
	m.rxMu.Lock()
	if m.rxCh != nil {
		close(m.rxCh)
		m.rxCh = nil
	}
	m.rxMu.Unlock()
}

// stealDeliver is Deliver's steal-mode datapath: steer, push, and on a full
// ring redirect once to the least-loaded ring before dropping. Caller holds
// deliverMu read side and has checked stopping.
func (m *Monitor) stealDeliver(data []byte, ts time.Time) bool {
	r := m.stealRings[m.steerIdx(data)]
	if r.push(rawFrame{data: data, ts: ts}) {
		m.rxSignalData()
		return true
	}
	// The steered ring is full: this frame is a goner on the legacy path.
	// Redirect it to the least-loaded ring instead — per-flow order is
	// sacrificed for this frame only in the regime where it would have been
	// lost entirely.
	if lr := m.stealRings[m.leastLoadedRing()]; lr != r && lr.push(rawFrame{data: data, ts: ts}) {
		m.redirects.Add(1)
		m.rxSignalData()
		return true
	}
	m.collectDrops.Add(1)
	return false
}

// leastLoadedRing returns the index of the shallowest RX ring.
func (m *Monitor) leastLoadedRing() int {
	best, bestOcc := 0, m.stealRings[0].occupied()
	for i := 1; i < len(m.stealRings); i++ {
		if occ := m.stealRings[i].occupied(); occ < bestOcc {
			best, bestOcc = i, occ
		}
	}
	return best
}

// steerIdx maps a frame to its RX shard. Normal steering is the symmetric
// IP-pair RSS hash (what the hardware does). When that degenerates — the
// steered shard at half capacity while the least-loaded shard sits nearly
// idle, i.e. one elephant src/dst pair owns the hash bucket — steering
// latches to the port-aware canonical 5-tuple hash, which spreads the
// pair's connections across every shard while keeping each flow sticky to
// exactly one (the ordering invariant). The latch is one-way: flapping
// between hashes would re-home live flows on every transition.
func (m *Monitor) steerIdx(data []byte) int {
	n := len(m.stealRings)
	if m.hotSteer.Load() {
		return int(rss5Hash(data) % uint64(n))
	}
	idx := int(rssHash(data) % uint64(n))
	if occ := m.stealRings[idx].occupied(); occ >= uint64(len(m.stealRings[idx].slots))/2 {
		min := m.stealRings[m.leastLoadedRing()].occupied()
		if min*8 <= occ {
			if m.hotSteer.CompareAndSwap(false, true) {
				m.hotFallbacks.Add(1)
			}
			return int(rss5Hash(data) % uint64(n))
		}
	}
	return idx
}

// rss5Hash hashes the canonical 5-tuple of an untagged IPv4 TCP/UDP frame:
// each (address, port) endpoint is one 48-bit word fed through a splitmix
// finalizer, combined commutatively so both directions of a connection land
// on the same shard. Frames too short for L4 ports fall back to fnv64.
func rss5Hash(data []byte) uint64 {
	const srcOff, dstOff, sportOff, dportOff = 26, 30, 34, 36
	if len(data) < dportOff+2 {
		return fnv64(data)
	}
	src := uint64(binary.BigEndian.Uint32(data[srcOff:srcOff+4]))<<16 |
		uint64(binary.BigEndian.Uint16(data[sportOff:sportOff+2]))
	dst := uint64(binary.BigEndian.Uint32(data[dstOff:dstOff+4]))<<16 |
		uint64(binary.BigEndian.Uint16(data[dportOff:dportOff+2]))
	return mix64(src) ^ mix64(dst)
}

// mix64 is splitmix64's finalizer over a full 64-bit word.
func mix64(v uint64) uint64 {
	v = (v + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return v
}
