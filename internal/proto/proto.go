// Package proto implements minimal application-layer codecs for the
// protocols the paper's parsers understand: HTTP/1.1 GET requests and
// responses, the memcached text protocol's get command, and a compact
// MySQL-style client/server framing.
//
// The emulated servers in internal/apps speak these encodings over the
// virtual network, and the monitor parsers in internal/parsers decode them
// from raw packet payloads — so the monitoring path exercises genuine wire
// bytes rather than in-process shortcuts.
package proto

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Codec errors.
var (
	ErrNotHTTP      = errors.New("proto: not an HTTP message")
	ErrNotMemcached = errors.New("proto: not a memcached command")
	ErrShortFrame   = errors.New("proto: short frame")
	ErrBadFrame     = errors.New("proto: malformed frame")
)

// --- HTTP ---

// HTTPRequest is a parsed HTTP/1.1 request line plus the headers the
// monitors care about.
type HTTPRequest struct {
	Method string
	URL    string
	Host   string
}

// BuildHTTPGet encodes a minimal HTTP/1.1 GET request.
func BuildHTTPGet(url, host string) []byte {
	var b bytes.Buffer
	b.Grow(len(url) + len(host) + 48)
	b.WriteString("GET ")
	b.WriteString(url)
	b.WriteString(" HTTP/1.1\r\nHost: ")
	b.WriteString(host)
	b.WriteString("\r\n\r\n")
	return b.Bytes()
}

// ParseHTTPRequest decodes an HTTP request from a packet payload. It only
// needs the first bytes of the stream; trailing data is ignored.
func ParseHTTPRequest(payload []byte) (HTTPRequest, error) {
	line, rest, ok := cutLine(payload)
	if !ok {
		return HTTPRequest{}, ErrNotHTTP
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return HTTPRequest{}, ErrNotHTTP
	}
	req := HTTPRequest{Method: parts[0], URL: parts[1]}
	for {
		var hdr string
		hdr, rest, ok = cutLine(rest)
		if !ok || hdr == "" {
			break
		}
		if v, found := strings.CutPrefix(hdr, "Host: "); found {
			req.Host = v
		}
	}
	return req, nil
}

// HTTPResponse is a parsed HTTP/1.1 status line and body.
type HTTPResponse struct {
	Status int
	Body   []byte
}

// BuildHTTPResponse encodes a minimal HTTP/1.1 response.
func BuildHTTPResponse(status int, body []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(body) + 64)
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\nContent-Length: %d\r\n\r\n", status, statusText(status), len(body))
	b.Write(body)
	return b.Bytes()
}

// ParseHTTPResponse decodes an HTTP response from a packet payload.
func ParseHTTPResponse(payload []byte) (HTTPResponse, error) {
	line, rest, ok := cutLine(payload)
	if !ok || !strings.HasPrefix(line, "HTTP/") {
		return HTTPResponse{}, ErrNotHTTP
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return HTTPResponse{}, ErrNotHTTP
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return HTTPResponse{}, ErrNotHTTP
	}
	contentLen := -1
	for {
		var hdr string
		hdr, rest, ok = cutLine(rest)
		if !ok {
			return HTTPResponse{}, ErrNotHTTP
		}
		if hdr == "" {
			break
		}
		if v, found := strings.CutPrefix(hdr, "Content-Length: "); found {
			if contentLen, err = strconv.Atoi(v); err != nil {
				return HTTPResponse{}, ErrNotHTTP
			}
		}
	}
	body := rest
	if contentLen >= 0 {
		if contentLen > len(rest) {
			return HTTPResponse{}, ErrShortFrame
		}
		body = rest[:contentLen]
	}
	return HTTPResponse{Status: status, Body: body}, nil
}

func statusText(status int) string {
	switch status {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

func cutLine(b []byte) (line string, rest []byte, ok bool) {
	i := bytes.Index(b, []byte("\r\n"))
	if i < 0 {
		return "", nil, false
	}
	return string(b[:i]), b[i+2:], true
}

// --- Memcached text protocol (get subset) ---

// BuildMemcachedGet encodes a memcached text-protocol get command.
func BuildMemcachedGet(key string) []byte {
	return []byte("get " + key + "\r\n")
}

// ParseMemcachedGet extracts the key of a memcached get command.
func ParseMemcachedGet(payload []byte) (key string, err error) {
	line, _, ok := cutLine(payload)
	if !ok {
		return "", ErrNotMemcached
	}
	k, found := strings.CutPrefix(line, "get ")
	if !found || k == "" {
		return "", ErrNotMemcached
	}
	return k, nil
}

// BuildMemcachedValue encodes a memcached VALUE response followed by END.
func BuildMemcachedValue(key string, value []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(key) + len(value) + 32)
	fmt.Fprintf(&b, "VALUE %s 0 %d\r\n", key, len(value))
	b.Write(value)
	b.WriteString("\r\nEND\r\n")
	return b.Bytes()
}

// ParseMemcachedValue decodes a memcached VALUE response. A bare "END\r\n"
// (miss) returns ok=false with no error.
func ParseMemcachedValue(payload []byte) (key string, value []byte, ok bool, err error) {
	line, rest, found := cutLine(payload)
	if !found {
		return "", nil, false, ErrNotMemcached
	}
	if line == "END" {
		return "", nil, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return "", nil, false, ErrNotMemcached
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n > len(rest) {
		return "", nil, false, ErrNotMemcached
	}
	return fields[1], rest[:n], true, nil
}

// --- Mini MySQL wire framing ---
//
// A simplified MySQL client/server protocol: every message is a frame of
//
//	[3-byte little-endian length][1-byte sequence][1-byte command][body]
//
// mirroring the real protocol's packet header. Command 0x03 (COM_QUERY)
// carries the SQL text; responses use command 0x00 (OK, body = rows payload)
// or 0xff (ERR). Several queries may share one connection, which is exactly
// the situation the paper's mysql parser exists to disentangle (§7.2).

// MySQL command bytes.
const (
	MySQLComQuery byte = 0x03
	MySQLComOK    byte = 0x00
	MySQLComErr   byte = 0xff
)

const mysqlHeaderLen = 5

// MySQLFrame is a decoded mini-MySQL message.
type MySQLFrame struct {
	Seq     uint8
	Command byte
	Body    []byte
}

// BuildMySQLQuery encodes a COM_QUERY frame carrying the SQL text.
func BuildMySQLQuery(seq uint8, sql string) []byte {
	return buildMySQLFrame(seq, MySQLComQuery, []byte(sql))
}

// BuildMySQLOK encodes an OK response frame with a result payload.
func BuildMySQLOK(seq uint8, rows []byte) []byte {
	return buildMySQLFrame(seq, MySQLComOK, rows)
}

// BuildMySQLErr encodes an error response frame.
func BuildMySQLErr(seq uint8, msg string) []byte {
	return buildMySQLFrame(seq, MySQLComErr, []byte(msg))
}

func buildMySQLFrame(seq uint8, cmd byte, body []byte) []byte {
	out := make([]byte, mysqlHeaderLen+len(body))
	putUint24(out[0:3], uint32(1+len(body)))
	out[3] = seq
	out[4] = cmd
	copy(out[mysqlHeaderLen:], body)
	return out
}

// ParseMySQLFrame decodes one frame from the front of payload and returns
// the number of bytes consumed, so multiple frames per packet can be walked.
func ParseMySQLFrame(payload []byte) (MySQLFrame, int, error) {
	if len(payload) < mysqlHeaderLen {
		return MySQLFrame{}, 0, ErrShortFrame
	}
	n := int(uint24(payload[0:3]))
	if n < 1 {
		return MySQLFrame{}, 0, ErrBadFrame
	}
	total := 4 + n
	if total > len(payload) {
		return MySQLFrame{}, 0, ErrShortFrame
	}
	return MySQLFrame{
		Seq:     payload[3],
		Command: payload[4],
		Body:    payload[mysqlHeaderLen:total],
	}, total, nil
}

func putUint24(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
}

func uint24(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}
