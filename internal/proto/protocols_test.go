package proto

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
)

// --- RESP ---

func TestRESPCommandRoundTrip(t *testing.T) {
	raw := BuildRESPCommand("SET", "user:7", "alice")
	args, n, err := ParseRESPCommand(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d", n, len(raw))
	}
	if len(args) != 3 || args[0] != "SET" || args[1] != "user:7" || args[2] != "alice" {
		t.Errorf("args = %v", args)
	}
}

func TestRESPPipelinedCommands(t *testing.T) {
	raw := append(BuildRESPCommand("GET", "a"), BuildRESPCommand("GET", "b")...)
	args1, n, err := ParseRESPCommand(raw)
	if err != nil {
		t.Fatal(err)
	}
	args2, m, err := ParseRESPCommand(raw[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(raw) {
		t.Errorf("consumed %d+%d of %d", n, m, len(raw))
	}
	if args1[1] != "a" || args2[1] != "b" {
		t.Errorf("args = %v, %v", args1, args2)
	}
}

func TestRESPReplies(t *testing.T) {
	tests := []struct {
		raw  []byte
		want RESPReply
	}{
		{BuildRESPSimple("OK"), RESPReply{Kind: '+', Text: "OK"}},
		{BuildRESPError("ERR nope"), RESPReply{Kind: '-', Text: "ERR nope"}},
		{BuildRESPInteger(42), RESPReply{Kind: ':', Text: "42"}},
		{BuildRESPBulk([]byte("val")), RESPReply{Kind: '$', Text: "val"}},
		{BuildRESPBulk(nil), RESPReply{Kind: '$', Nil: true}},
	}
	for _, tt := range tests {
		got, n, err := ParseRESPReply(tt.raw)
		if err != nil {
			t.Errorf("ParseRESPReply(%q): %v", tt.raw, err)
			continue
		}
		if n != len(tt.raw) {
			t.Errorf("%q: consumed %d of %d", tt.raw, n, len(tt.raw))
		}
		if got != tt.want {
			t.Errorf("%q: reply = %+v, want %+v", tt.raw, got, tt.want)
		}
	}
	if got, _, err := ParseRESPReply(BuildRESPError("ERR x")); err != nil || !got.IsError() {
		t.Errorf("IsError = false for error reply")
	}
}

func TestRESPTruncatedIsShortFrame(t *testing.T) {
	for _, full := range [][]byte{
		BuildRESPCommand("SET", "key", "value"),
		BuildRESPBulk([]byte("payload")),
		BuildRESPInteger(1234),
	} {
		for cut := 1; cut < len(full); cut++ {
			if _, _, err := ParseRESPCommand(full[:cut]); full[0] == '*' && err == nil {
				t.Errorf("command prefix %d/%d parsed", cut, len(full))
			}
			if full[0] != '*' {
				if _, _, err := ParseRESPReply(full[:cut]); err == nil {
					t.Errorf("reply prefix %q parsed", full[:cut])
				}
			}
		}
	}
}

func TestRESPMalformed(t *testing.T) {
	for _, raw := range [][]byte{
		[]byte("hello"),
		[]byte("*x\r\n"),
		[]byte("*2\r\n+not-bulk\r\n+x\r\n"),
		[]byte("*999999\r\n"),
		[]byte("$5\r\nabcde??"), // bad bulk terminator
	} {
		if _, _, err := ParseRESPCommand(raw); err == nil {
			t.Errorf("ParseRESPCommand(%q) accepted", raw)
		}
	}
	if _, _, err := ParseRESPReply([]byte("?weird\r\n")); !errors.Is(err, ErrNotRESP) {
		t.Errorf("unknown kind: err = %v", err)
	}
	if _, _, err := ParseRESPReply([]byte(":notanint\r\n")); !errors.Is(err, ErrNotRESP) {
		t.Errorf("bad integer: err = %v", err)
	}
}

// --- DNS ---

func TestDNSQueryRoundTrip(t *testing.T) {
	raw := BuildDNSQuery(0x1234, "api.example.com", DNSTypeA)
	m, err := ParseDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || m.Response || m.Question.Name != "api.example.com" || m.Question.Type != DNSTypeA {
		t.Errorf("message = %+v", m)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	addrs := []netip.Addr{netip.MustParseAddr("10.1.2.3"), netip.MustParseAddr("10.1.2.4")}
	raw := BuildDNSResponse(7, "cdn.example.com", DNSTypeA, DNSRCodeNoError, addrs)
	m, err := ParseDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Response || m.RCode != DNSRCodeNoError || m.Question.Name != "cdn.example.com" {
		t.Errorf("message = %+v", m)
	}
	if len(m.Addrs) != 2 || m.Addrs[0] != addrs[0] || m.Addrs[1] != addrs[1] {
		t.Errorf("addrs = %v", m.Addrs)
	}
}

func TestDNSNXDomain(t *testing.T) {
	raw := BuildDNSResponse(9, "nope.example.com", DNSTypeA, DNSRCodeNXDomain,
		[]netip.Addr{netip.MustParseAddr("10.0.0.1")})
	m, err := ParseDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.RCode != DNSRCodeNXDomain || m.Answers != 0 || len(m.Addrs) != 0 {
		t.Errorf("nxdomain response carried answers: %+v", m)
	}
	if DNSRCodeName(m.RCode) != "NXDOMAIN" || DNSRCodeName(DNSRCodeNoError) != "NOERROR" {
		t.Errorf("rcode names wrong")
	}
}

func TestDNSTruncatedIsError(t *testing.T) {
	full := BuildDNSResponse(1, "a.example.com", DNSTypeA, DNSRCodeNoError,
		[]netip.Addr{netip.MustParseAddr("10.9.9.9")})
	for cut := 0; cut < len(full); cut++ {
		if _, err := ParseDNS(full[:cut]); err == nil {
			t.Errorf("prefix %d/%d parsed", cut, len(full))
		}
	}
}

func TestDNSPointerLoopRejected(t *testing.T) {
	// A question name that is a compression pointer to itself.
	raw := make([]byte, 18)
	raw[4], raw[5] = 0, 1 // QDCOUNT=1
	raw[12], raw[13] = 0xc0, 12
	if _, err := ParseDNS(raw); err == nil {
		t.Error("self-referential pointer accepted")
	}
}

func TestDNSNoQuestionRejected(t *testing.T) {
	raw := make([]byte, dnsHeaderLen)
	if _, err := ParseDNS(raw); !errors.Is(err, ErrNotDNS) {
		t.Errorf("questionless message: err = %v", err)
	}
}

// --- TLS ---

func TestTLSClientHelloRoundTrip(t *testing.T) {
	raw := BuildTLSClientHello("shop.example.com")
	hello, err := ParseTLSClientHello(raw)
	if err != nil {
		t.Fatal(err)
	}
	if hello.SNI != "shop.example.com" {
		t.Errorf("SNI = %q", hello.SNI)
	}
	if hello.Version != tlsVersion12 {
		t.Errorf("version = %#x", hello.Version)
	}
}

func TestTLSClientHelloNoSNI(t *testing.T) {
	hello, err := ParseTLSClientHello(BuildTLSClientHello(""))
	if err != nil {
		t.Fatal(err)
	}
	if hello.SNI != "" {
		t.Errorf("SNI = %q, want empty", hello.SNI)
	}
}

func TestTLSServerHelloAndAppData(t *testing.T) {
	v, err := ParseTLSServerHello(BuildTLSServerHello())
	if err != nil || v != tlsVersion12 {
		t.Errorf("server hello: v=%#x err=%v", v, err)
	}
	if _, err := ParseTLSClientHello(BuildTLSServerHello()); !errors.Is(err, ErrNotTLS) {
		t.Errorf("server hello parsed as client hello: %v", err)
	}
	if _, err := ParseTLSClientHello(BuildTLSAppData([]byte("ciphertext"))); !errors.Is(err, ErrNotTLS) {
		t.Errorf("app data parsed as client hello: %v", err)
	}
}

func TestTLSTruncatedIsError(t *testing.T) {
	full := BuildTLSClientHello("truncated.example.com")
	for cut := 0; cut < len(full); cut++ {
		if _, err := ParseTLSClientHello(full[:cut]); err == nil {
			t.Errorf("prefix %d/%d parsed", cut, len(full))
		}
	}
}

func TestTLSNotHandshake(t *testing.T) {
	if _, err := ParseTLSClientHello(BuildHTTPGet("/", "h")); !errors.Is(err, ErrNotTLS) {
		t.Errorf("HTTP accepted as TLS: %v", err)
	}
	if !bytes.Equal(BuildTLSAppData(nil)[:1], []byte{0x17}) {
		t.Error("app data record type wrong")
	}
}
