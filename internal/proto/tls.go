package proto

// TLS ClientHello parsing, the slice of TLS a monitor needs to identify
// services on encrypted flows: the handshake record framing and the
// server_name (SNI) extension. Nothing is decrypted — the hello is the one
// cleartext message that names the service being contacted.

import (
	"encoding/binary"
	"errors"
)

// ErrNotTLS reports a payload that is not a TLS handshake record.
var ErrNotTLS = errors.New("proto: not a TLS handshake")

// TLS record and handshake constants.
const (
	tlsRecordHandshake   = 0x16
	tlsRecordAppData     = 0x17
	tlsHandshakeClient   = 0x01
	tlsHandshakeServer   = 0x02
	tlsExtServerName     = 0x0000
	tlsSNIHostname       = 0
	tlsRecordHeaderLen   = 5
	tlsVersion12         = 0x0303
	tlsLegacyRecordVer   = 0x0301
	tlsMaxHelloLen       = 1 << 14
	tlsClientCipherSuite = 0x1301 // TLS_AES_128_GCM_SHA256
)

// TLSClientHello is the monitored slice of a ClientHello.
type TLSClientHello struct {
	// Version is the client's offered protocol version.
	Version uint16
	// SNI is the server_name extension's hostname ("" when absent).
	SNI string
}

// BuildTLSClientHello encodes a minimal ClientHello carrying the SNI. The
// 32-byte random is a fixed pattern, keeping generated fixtures
// deterministic; monitors never look at it.
func BuildTLSClientHello(sni string) []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, tlsVersion12)
	for i := 0; i < 32; i++ { // client random
		body = append(body, byte(i))
	}
	body = append(body, 0) // session id length
	body = binary.BigEndian.AppendUint16(body, 2)
	body = binary.BigEndian.AppendUint16(body, tlsClientCipherSuite)
	body = append(body, 1, 0) // compression: null only

	var ext []byte
	if sni != "" {
		var list []byte
		list = binary.BigEndian.AppendUint16(list, uint16(len(sni)+3))
		list = append(list, tlsSNIHostname)
		list = binary.BigEndian.AppendUint16(list, uint16(len(sni)))
		list = append(list, sni...)
		ext = binary.BigEndian.AppendUint16(ext, tlsExtServerName)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(list)))
		ext = append(ext, list...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	return wrapTLSHandshake(tlsHandshakeClient, body)
}

// BuildTLSServerHello encodes a minimal ServerHello answering the hellos
// BuildTLSClientHello produces.
func BuildTLSServerHello() []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, tlsVersion12)
	for i := 0; i < 32; i++ { // server random
		body = append(body, byte(0xff-i))
	}
	body = append(body, 0) // session id length
	body = binary.BigEndian.AppendUint16(body, tlsClientCipherSuite)
	body = append(body, 0) // compression: null
	return wrapTLSHandshake(tlsHandshakeServer, body)
}

// BuildTLSAppData wraps payload in an application-data record — opaque bytes
// standing in for ciphertext.
func BuildTLSAppData(payload []byte) []byte {
	out := make([]byte, 0, tlsRecordHeaderLen+len(payload))
	out = append(out, tlsRecordAppData)
	out = binary.BigEndian.AppendUint16(out, tlsVersion12)
	out = binary.BigEndian.AppendUint16(out, uint16(len(payload)))
	return append(out, payload...)
}

func wrapTLSHandshake(msgType byte, body []byte) []byte {
	out := make([]byte, 0, tlsRecordHeaderLen+4+len(body))
	out = append(out, tlsRecordHandshake)
	out = binary.BigEndian.AppendUint16(out, tlsLegacyRecordVer)
	out = binary.BigEndian.AppendUint16(out, uint16(4+len(body)))
	out = append(out, msgType, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(out, body...)
}

// ParseTLSClientHello decodes the version and SNI from a ClientHello at the
// front of payload. Non-handshake records and non-ClientHello handshakes
// return ErrNotTLS; records cut short by segmentation return ErrShortFrame.
func ParseTLSClientHello(payload []byte) (TLSClientHello, error) {
	body, err := tlsHandshakeBody(payload, tlsHandshakeClient)
	if err != nil {
		return TLSClientHello{}, err
	}
	if len(body) < 2+32+1 {
		return TLSClientHello{}, ErrShortFrame
	}
	hello := TLSClientHello{Version: binary.BigEndian.Uint16(body[0:2])}
	off := 2 + 32
	sidLen := int(body[off])
	off += 1 + sidLen
	if off+2 > len(body) {
		return TLSClientHello{}, ErrShortFrame
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2 + csLen
	if off+1 > len(body) {
		return TLSClientHello{}, ErrShortFrame
	}
	compLen := int(body[off])
	off += 1 + compLen
	if off+2 > len(body) {
		// Extensions are optional; a hello may legitimately end here.
		return hello, nil
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+extLen > len(body) {
		return TLSClientHello{}, ErrShortFrame
	}
	ext := body[off : off+extLen]
	for len(ext) >= 4 {
		etype := binary.BigEndian.Uint16(ext[0:2])
		elen := int(binary.BigEndian.Uint16(ext[2:4]))
		if 4+elen > len(ext) {
			return TLSClientHello{}, ErrShortFrame
		}
		if etype == tlsExtServerName {
			hello.SNI = parseSNI(ext[4 : 4+elen])
		}
		ext = ext[4+elen:]
	}
	return hello, nil
}

// ParseTLSServerHello validates a ServerHello and returns its version.
func ParseTLSServerHello(payload []byte) (uint16, error) {
	body, err := tlsHandshakeBody(payload, tlsHandshakeServer)
	if err != nil {
		return 0, err
	}
	if len(body) < 2 {
		return 0, ErrShortFrame
	}
	return binary.BigEndian.Uint16(body[0:2]), nil
}

// tlsHandshakeBody peels the record and handshake headers, returning the
// handshake body when the message type matches.
func tlsHandshakeBody(payload []byte, msgType byte) ([]byte, error) {
	if len(payload) < tlsRecordHeaderLen {
		return nil, ErrShortFrame
	}
	if payload[0] != tlsRecordHandshake {
		return nil, ErrNotTLS
	}
	recLen := int(binary.BigEndian.Uint16(payload[3:5]))
	if recLen < 4 || recLen > tlsMaxHelloLen {
		return nil, ErrNotTLS
	}
	if tlsRecordHeaderLen+recLen > len(payload) {
		return nil, ErrShortFrame
	}
	rec := payload[tlsRecordHeaderLen : tlsRecordHeaderLen+recLen]
	if rec[0] != msgType {
		return nil, ErrNotTLS
	}
	bodyLen := int(rec[1])<<16 | int(rec[2])<<8 | int(rec[3])
	if 4+bodyLen > len(rec) {
		return nil, ErrShortFrame
	}
	return rec[4 : 4+bodyLen], nil
}

// parseSNI extracts the first hostname entry of a server_name list.
func parseSNI(list []byte) string {
	if len(list) < 2 {
		return ""
	}
	listLen := int(binary.BigEndian.Uint16(list[0:2]))
	entries := list[2:]
	if listLen < len(entries) {
		entries = entries[:listLen]
	}
	for len(entries) >= 3 {
		nameType := entries[0]
		nameLen := int(binary.BigEndian.Uint16(entries[1:3]))
		if 3+nameLen > len(entries) {
			return ""
		}
		if nameType == tlsSNIHostname {
			return string(entries[3 : 3+nameLen])
		}
		entries = entries[3+nameLen:]
	}
	return ""
}
