package proto

// DNS wire format (RFC 1035), the subset resolution monitoring needs: the
// 12-byte header, the question section, and enough of the answer section to
// build realistic responses. Name parsing follows compression pointers with
// a jump guard, since a monitor must survive adversarial payloads.

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"strings"
)

// ErrNotDNS reports a payload that is not a DNS message.
var ErrNotDNS = errors.New("proto: not a DNS message")

// DNS query types and response codes.
const (
	DNSTypeA     uint16 = 1
	DNSTypeCNAME uint16 = 5
	DNSTypeAAAA  uint16 = 28

	DNSRCodeNoError  uint8 = 0
	DNSRCodeFormErr  uint8 = 1
	DNSRCodeServFail uint8 = 2
	DNSRCodeNXDomain uint8 = 3
)

const (
	dnsHeaderLen   = 12
	dnsMaxName     = 255
	dnsMaxJumps    = 8
	dnsClassIN     = 1
	dnsAnswerTTL   = 60
	dnsCompressPtr = 0xc00c // pointer to the name at offset 12 (the question)
)

// DNSRCodeName renders a response code the way dig does, so rcode tuples are
// human-readable keys ("NOERROR", "NXDOMAIN", ...).
func DNSRCodeName(rcode uint8) string {
	switch rcode {
	case DNSRCodeNoError:
		return "NOERROR"
	case DNSRCodeFormErr:
		return "FORMERR"
	case DNSRCodeServFail:
		return "SERVFAIL"
	case DNSRCodeNXDomain:
		return "NXDOMAIN"
	default:
		return "RCODE" + string('0'+rune(rcode%10))
	}
}

// DNSQuestion is the question section entry monitors extract.
type DNSQuestion struct {
	Name string
	Type uint16
}

// DNSMessage is a decoded DNS query or response.
type DNSMessage struct {
	ID       uint16
	Response bool
	RCode    uint8
	Question DNSQuestion
	Answers  int
	// Addrs are the A/AAAA answer addresses of a response.
	Addrs []netip.Addr
}

// BuildDNSQuery encodes a standard recursive query with one question.
func BuildDNSQuery(id uint16, name string, qtype uint16) []byte {
	qname := encodeDNSName(name)
	out := make([]byte, 0, dnsHeaderLen+len(qname)+4)
	var hdr [dnsHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], id)
	binary.BigEndian.PutUint16(hdr[2:4], 0x0100) // RD
	binary.BigEndian.PutUint16(hdr[4:6], 1)      // QDCOUNT
	out = append(out, hdr[:]...)
	out = append(out, qname...)
	out = binary.BigEndian.AppendUint16(out, qtype)
	out = binary.BigEndian.AppendUint16(out, dnsClassIN)
	return out
}

// BuildDNSResponse encodes a response echoing the question, with one A/AAAA
// answer per address (compressed names, as real servers emit). A non-zero
// rcode produces an answerless response.
func BuildDNSResponse(id uint16, name string, qtype uint16, rcode uint8, addrs []netip.Addr) []byte {
	if rcode != DNSRCodeNoError {
		addrs = nil
	}
	qname := encodeDNSName(name)
	out := make([]byte, 0, dnsHeaderLen+len(qname)+4+len(addrs)*28)
	var hdr [dnsHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], id)
	binary.BigEndian.PutUint16(hdr[2:4], 0x8180|uint16(rcode&0x0f)) // QR|RD|RA
	binary.BigEndian.PutUint16(hdr[4:6], 1)                         // QDCOUNT
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(addrs)))        // ANCOUNT
	out = append(out, hdr[:]...)
	out = append(out, qname...)
	out = binary.BigEndian.AppendUint16(out, qtype)
	out = binary.BigEndian.AppendUint16(out, dnsClassIN)
	for _, a := range addrs {
		out = binary.BigEndian.AppendUint16(out, dnsCompressPtr)
		rtype := DNSTypeA
		if a.Is6() {
			rtype = DNSTypeAAAA
		}
		out = binary.BigEndian.AppendUint16(out, rtype)
		out = binary.BigEndian.AppendUint16(out, dnsClassIN)
		out = binary.BigEndian.AppendUint32(out, dnsAnswerTTL)
		raw := a.AsSlice()
		out = binary.BigEndian.AppendUint16(out, uint16(len(raw)))
		out = append(out, raw...)
	}
	return out
}

// ParseDNS decodes a DNS message: header, first question, and any A/AAAA
// answer addresses. Messages without a question are rejected — resolution
// monitoring has nothing to key on without one.
func ParseDNS(payload []byte) (DNSMessage, error) {
	if len(payload) < dnsHeaderLen {
		return DNSMessage{}, ErrShortFrame
	}
	flags := binary.BigEndian.Uint16(payload[2:4])
	qd := binary.BigEndian.Uint16(payload[4:6])
	an := binary.BigEndian.Uint16(payload[6:8])
	if qd < 1 {
		return DNSMessage{}, ErrNotDNS
	}
	m := DNSMessage{
		ID:       binary.BigEndian.Uint16(payload[0:2]),
		Response: flags&0x8000 != 0,
		RCode:    uint8(flags & 0x000f),
		Answers:  int(an),
	}
	name, off, err := decodeDNSName(payload, dnsHeaderLen)
	if err != nil {
		return DNSMessage{}, err
	}
	if off+4 > len(payload) {
		return DNSMessage{}, ErrShortFrame
	}
	m.Question = DNSQuestion{Name: name, Type: binary.BigEndian.Uint16(payload[off : off+2])}
	off += 4
	// Skip any remaining questions.
	for i := 1; i < int(qd); i++ {
		if _, off, err = decodeDNSName(payload, off); err != nil {
			return DNSMessage{}, err
		}
		if off += 4; off > len(payload) {
			return DNSMessage{}, ErrShortFrame
		}
	}
	for i := 0; i < int(an); i++ {
		if _, off, err = decodeDNSName(payload, off); err != nil {
			return DNSMessage{}, err
		}
		if off+10 > len(payload) {
			return DNSMessage{}, ErrShortFrame
		}
		rtype := binary.BigEndian.Uint16(payload[off : off+2])
		rdlen := int(binary.BigEndian.Uint16(payload[off+8 : off+10]))
		off += 10
		if off+rdlen > len(payload) {
			return DNSMessage{}, ErrShortFrame
		}
		switch {
		case rtype == DNSTypeA && rdlen == 4:
			m.Addrs = append(m.Addrs, netip.AddrFrom4([4]byte(payload[off:off+4])))
		case rtype == DNSTypeAAAA && rdlen == 16:
			m.Addrs = append(m.Addrs, netip.AddrFrom16([16]byte(payload[off:off+16])))
		}
		off += rdlen
	}
	return m, nil
}

// encodeDNSName renders a dotted name as length-prefixed labels. Labels
// longer than 63 bytes are clipped (the encoding cannot express them).
func encodeDNSName(name string) []byte {
	out := make([]byte, 0, len(name)+2)
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0)
}

// decodeDNSName reads a possibly-compressed name starting at off, returning
// the dotted name and the offset just past it. Pointer chains are bounded by
// dnsMaxJumps and total name length by dnsMaxName, so hostile payloads
// cannot loop or balloon the parser.
func decodeDNSName(payload []byte, off int) (string, int, error) {
	var sb strings.Builder
	pos, end := off, -1
	for jumps := 0; ; {
		if pos >= len(payload) {
			return "", 0, ErrShortFrame
		}
		b := payload[pos]
		switch {
		case b == 0:
			if end < 0 {
				end = pos + 1
			}
			return sb.String(), end, nil
		case b&0xc0 == 0xc0:
			if pos+2 > len(payload) {
				return "", 0, ErrShortFrame
			}
			if jumps++; jumps > dnsMaxJumps {
				return "", 0, ErrNotDNS
			}
			if end < 0 {
				end = pos + 2
			}
			pos = int(binary.BigEndian.Uint16(payload[pos:pos+2]) & 0x3fff)
		case b&0xc0 != 0:
			return "", 0, ErrNotDNS
		default:
			if pos+1+int(b) > len(payload) {
				return "", 0, ErrShortFrame
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			if sb.Len()+int(b) > dnsMaxName {
				return "", 0, ErrNotDNS
			}
			sb.Write(payload[pos+1 : pos+1+int(b)])
			pos += 1 + int(b)
		}
	}
}
