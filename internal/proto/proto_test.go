package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHTTPGetRoundTrip(t *testing.T) {
	raw := BuildHTTPGet("/videos/42.mp4", "h1:80")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("ParseHTTPRequest: %v", err)
	}
	if req.Method != "GET" || req.URL != "/videos/42.mp4" || req.Host != "h1:80" {
		t.Errorf("req = %+v", req)
	}
}

func TestHTTPRequestErrors(t *testing.T) {
	tests := []struct {
		name    string
		payload string
	}{
		{"empty", ""},
		{"no crlf", "GET / HTTP/1.1"},
		{"two fields", "GET /\r\n"},
		{"not http version", "GET / FTP/1.0\r\n\r\n"},
		{"binary garbage", "\x00\x01\x02\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseHTTPRequest([]byte(tt.payload)); !errors.Is(err, ErrNotHTTP) {
				t.Errorf("err = %v, want ErrNotHTTP", err)
			}
		})
	}
}

func TestHTTPResponseRoundTrip(t *testing.T) {
	body := []byte("<html>hello</html>")
	raw := BuildHTTPResponse(200, body)
	resp, err := ParseHTTPResponse(raw)
	if err != nil {
		t.Fatalf("ParseHTTPResponse: %v", err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d, want 200", resp.Status)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Errorf("body = %q, want %q", resp.Body, body)
	}
}

func TestHTTPResponseStatuses(t *testing.T) {
	for _, status := range []int{200, 404, 500, 503, 418} {
		raw := BuildHTTPResponse(status, nil)
		resp, err := ParseHTTPResponse(raw)
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if resp.Status != status {
			t.Errorf("status = %d, want %d", resp.Status, status)
		}
	}
}

func TestHTTPResponseTruncatedBody(t *testing.T) {
	raw := BuildHTTPResponse(200, []byte("full body"))
	if _, err := ParseHTTPResponse(raw[:len(raw)-3]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestMemcachedRoundTrip(t *testing.T) {
	raw := BuildMemcachedGet("user:1001")
	key, err := ParseMemcachedGet(raw)
	if err != nil {
		t.Fatalf("ParseMemcachedGet: %v", err)
	}
	if key != "user:1001" {
		t.Errorf("key = %q", key)
	}

	val := []byte("cached-value")
	resp := BuildMemcachedValue("user:1001", val)
	k, v, ok, err := ParseMemcachedValue(resp)
	if err != nil || !ok {
		t.Fatalf("ParseMemcachedValue: ok=%v err=%v", ok, err)
	}
	if k != "user:1001" || !bytes.Equal(v, val) {
		t.Errorf("k=%q v=%q", k, v)
	}
}

func TestMemcachedMiss(t *testing.T) {
	_, _, ok, err := ParseMemcachedValue([]byte("END\r\n"))
	if err != nil {
		t.Fatalf("miss parse: %v", err)
	}
	if ok {
		t.Error("miss reported as hit")
	}
}

func TestMemcachedErrors(t *testing.T) {
	if _, err := ParseMemcachedGet([]byte("set k 0 0 5\r\n")); !errors.Is(err, ErrNotMemcached) {
		t.Errorf("set cmd: err = %v", err)
	}
	if _, err := ParseMemcachedGet([]byte("get \r\n")); !errors.Is(err, ErrNotMemcached) {
		t.Errorf("empty key: err = %v", err)
	}
	if _, _, _, err := ParseMemcachedValue([]byte("VALUE k 0\r\n")); !errors.Is(err, ErrNotMemcached) {
		t.Errorf("short VALUE line: err = %v", err)
	}
}

func TestMySQLQueryRoundTrip(t *testing.T) {
	sql := "SELECT title FROM film WHERE rental_rate > 2.99"
	raw := BuildMySQLQuery(3, sql)
	frame, n, err := ParseMySQLFrame(raw)
	if err != nil {
		t.Fatalf("ParseMySQLFrame: %v", err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d bytes, want %d", n, len(raw))
	}
	if frame.Seq != 3 || frame.Command != MySQLComQuery || string(frame.Body) != sql {
		t.Errorf("frame = %+v", frame)
	}
}

func TestMySQLMultipleFramesPerPacket(t *testing.T) {
	// The paper's mysql parser must split multiple queries sharing one
	// connection; pack three frames into one payload and walk them.
	queries := []string{"SELECT 1", "SELECT 2", "SELECT 3"}
	var payload []byte
	for i, q := range queries {
		payload = append(payload, BuildMySQLQuery(uint8(i), q)...)
	}
	var got []string
	for len(payload) > 0 {
		frame, n, err := ParseMySQLFrame(payload)
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		got = append(got, string(frame.Body))
		payload = payload[n:]
	}
	if strings.Join(got, ",") != strings.Join(queries, ",") {
		t.Errorf("got %v, want %v", got, queries)
	}
}

func TestMySQLResponses(t *testing.T) {
	ok := BuildMySQLOK(1, []byte("row1|row2"))
	frame, _, err := ParseMySQLFrame(ok)
	if err != nil || frame.Command != MySQLComOK || string(frame.Body) != "row1|row2" {
		t.Errorf("OK frame = %+v err=%v", frame, err)
	}
	errFrame := BuildMySQLErr(2, "table missing")
	frame, _, err = ParseMySQLFrame(errFrame)
	if err != nil || frame.Command != MySQLComErr || string(frame.Body) != "table missing" {
		t.Errorf("ERR frame = %+v err=%v", frame, err)
	}
}

func TestMySQLFrameErrors(t *testing.T) {
	if _, _, err := ParseMySQLFrame([]byte{1, 0}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short header: err = %v", err)
	}
	// Declared length exceeds available bytes.
	raw := BuildMySQLQuery(0, "SELECT 1")
	if _, _, err := ParseMySQLFrame(raw[:len(raw)-2]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("truncated body: err = %v", err)
	}
	// Zero-length frame is malformed (must at least carry a command byte).
	if _, _, err := ParseMySQLFrame([]byte{0, 0, 0, 0, 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero length: err = %v", err)
	}
}

// Property: mini-MySQL framing round-trips arbitrary bodies and walking
// concatenated frames recovers each body in order.
func TestMySQLFrameProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prop := func() bool {
		count := 1 + r.Intn(4)
		var payload []byte
		bodies := make([]string, count)
		for i := range bodies {
			n := 1 + r.Intn(100)
			body := make([]byte, n)
			r.Read(body)
			bodies[i] = string(body)
			payload = append(payload, BuildMySQLQuery(uint8(i), bodies[i])...)
		}
		for i := 0; i < count; i++ {
			frame, n, err := ParseMySQLFrame(payload)
			if err != nil || string(frame.Body) != bodies[i] {
				return false
			}
			payload = payload[n:]
		}
		return len(payload) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseHTTPRequest(b *testing.B) {
	raw := BuildHTTPGet("/films/polyglot-actors.php", "web-1:80")
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseHTTPRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseMySQLFrame(b *testing.B) {
	raw := BuildMySQLQuery(0, "SELECT * FROM payment WHERE amount > 5")
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseMySQLFrame(raw); err != nil {
			b.Fatal(err)
		}
	}
}
