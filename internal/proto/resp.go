package proto

// Redis RESP (REdis Serialization Protocol), the subset a monitoring parser
// needs: commands are arrays of bulk strings; replies are simple strings,
// errors, integers, or bulk strings. Multiple messages may share one packet
// (pipelining), so parsers consume messages with the (value, consumed, err)
// walking pattern used by ParseMySQLFrame.

import (
	"bytes"
	"errors"
	"strconv"
)

// ErrNotRESP reports a payload that is not a RESP message.
var ErrNotRESP = errors.New("proto: not a RESP message")

// RESP sanity bounds: a monitoring parser must not allocate unboundedly on
// attacker-shaped lengths, so element counts and bulk sizes are capped far
// above anything the emulated applications produce.
const (
	respMaxElements = 128
	respMaxBulkLen  = 1 << 20
)

// BuildRESPCommand encodes a command and its arguments as an array of bulk
// strings, the client->server form every Redis command uses.
func BuildRESPCommand(args ...string) []byte {
	var b bytes.Buffer
	b.Grow(16 * (len(args) + 1))
	b.WriteByte('*')
	b.WriteString(strconv.Itoa(len(args)))
	b.WriteString("\r\n")
	for _, a := range args {
		b.WriteByte('$')
		b.WriteString(strconv.Itoa(len(a)))
		b.WriteString("\r\n")
		b.WriteString(a)
		b.WriteString("\r\n")
	}
	return b.Bytes()
}

// ParseRESPCommand decodes one array-of-bulk-strings command from the front
// of payload and returns the bytes consumed, so pipelined commands can be
// walked. Incomplete data returns ErrShortFrame; anything that is not an
// array of bulk strings returns ErrNotRESP.
func ParseRESPCommand(payload []byte) (args []string, consumed int, err error) {
	if len(payload) == 0 {
		return nil, 0, ErrShortFrame
	}
	if payload[0] != '*' {
		return nil, 0, ErrNotRESP
	}
	n, off, err := respLine(payload, 1)
	if err != nil {
		return nil, 0, err
	}
	if n < 1 || n > respMaxElements {
		return nil, 0, ErrNotRESP
	}
	args = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if off >= len(payload) {
			return nil, 0, ErrShortFrame
		}
		if payload[off] != '$' {
			return nil, 0, ErrNotRESP
		}
		blen, next, err := respLine(payload, off+1)
		if err != nil {
			return nil, 0, err
		}
		if blen < 0 || blen > respMaxBulkLen {
			return nil, 0, ErrNotRESP
		}
		if next+blen+2 > len(payload) {
			return nil, 0, ErrShortFrame
		}
		if payload[next+blen] != '\r' || payload[next+blen+1] != '\n' {
			return nil, 0, ErrNotRESP
		}
		args = append(args, string(payload[next:next+blen]))
		off = next + blen + 2
	}
	return args, off, nil
}

// RESPReply is one decoded server->client reply.
type RESPReply struct {
	// Kind is the RESP type byte: '+' simple string, '-' error, ':' integer,
	// '$' bulk string.
	Kind byte
	// Text is the reply payload: the simple/error line, the integer digits,
	// or the bulk bytes.
	Text string
	// Nil marks the null bulk reply ($-1), a Redis cache miss.
	Nil bool
}

// IsError reports whether the reply is a RESP error.
func (r RESPReply) IsError() bool { return r.Kind == '-' }

// BuildRESPSimple encodes a simple-string reply such as +OK.
func BuildRESPSimple(s string) []byte { return []byte("+" + s + "\r\n") }

// BuildRESPError encodes an error reply such as -ERR unknown command.
func BuildRESPError(msg string) []byte { return []byte("-" + msg + "\r\n") }

// BuildRESPInteger encodes an integer reply.
func BuildRESPInteger(n int64) []byte {
	return []byte(":" + strconv.FormatInt(n, 10) + "\r\n")
}

// BuildRESPBulk encodes a bulk-string reply; nil encodes the null bulk
// (a miss).
func BuildRESPBulk(val []byte) []byte {
	if val == nil {
		return []byte("$-1\r\n")
	}
	var b bytes.Buffer
	b.Grow(len(val) + 16)
	b.WriteByte('$')
	b.WriteString(strconv.Itoa(len(val)))
	b.WriteString("\r\n")
	b.Write(val)
	b.WriteString("\r\n")
	return b.Bytes()
}

// ParseRESPReply decodes one reply from the front of payload and returns the
// bytes consumed, so pipelined replies can be walked.
func ParseRESPReply(payload []byte) (RESPReply, int, error) {
	if len(payload) == 0 {
		return RESPReply{}, 0, ErrShortFrame
	}
	kind := payload[0]
	switch kind {
	case '+', '-', ':':
		i := bytes.Index(payload, []byte("\r\n"))
		if i < 0 {
			return RESPReply{}, 0, ErrShortFrame
		}
		text := string(payload[1:i])
		if kind == ':' {
			if _, err := strconv.ParseInt(text, 10, 64); err != nil {
				return RESPReply{}, 0, ErrNotRESP
			}
		}
		return RESPReply{Kind: kind, Text: text}, i + 2, nil
	case '$':
		blen, off, err := respLine(payload, 1)
		if err != nil {
			return RESPReply{}, 0, err
		}
		if blen == -1 {
			return RESPReply{Kind: kind, Nil: true}, off, nil
		}
		if blen < 0 || blen > respMaxBulkLen {
			return RESPReply{}, 0, ErrNotRESP
		}
		if off+blen+2 > len(payload) {
			return RESPReply{}, 0, ErrShortFrame
		}
		if payload[off+blen] != '\r' || payload[off+blen+1] != '\n' {
			return RESPReply{}, 0, ErrNotRESP
		}
		return RESPReply{Kind: kind, Text: string(payload[off : off+blen])}, off + blen + 2, nil
	default:
		return RESPReply{}, 0, ErrNotRESP
	}
}

// respLine parses a decimal integer starting at off and terminated by CRLF,
// returning the value and the offset just past the CRLF.
func respLine(payload []byte, off int) (n, next int, err error) {
	i := bytes.Index(payload[off:], []byte("\r\n"))
	if i < 0 {
		return 0, 0, ErrShortFrame
	}
	digits := payload[off : off+i]
	if len(digits) == 0 || len(digits) > 10 {
		return 0, 0, ErrNotRESP
	}
	v, err := strconv.Atoi(string(digits))
	if err != nil {
		return 0, 0, ErrNotRESP
	}
	return v, off + i + 2, nil
}
