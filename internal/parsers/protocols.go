package parsers

// The protocol-breadth parsers: Redis RESP command latency, DNS resolution
// monitoring, and TLS SNI extraction. Each is the "few dozen lines" §2
// promises a new protocol costs, layered on the internal/proto codecs, and
// each keeps per-flow state without locks thanks to flow-affine dispatch.

import (
	"strings"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/proto"
)

// respMaxPipeline bounds the per-flow queue of commands awaiting replies, so
// a flood of unanswered commands cannot grow parser state unboundedly.
const respMaxPipeline = 32

// RESPCommand pairs each Redis command with its reply on the same flow and
// emits one latency tuple per command, keyed by the upper-cased command name
// (GET, SET, ...) with Val carrying the reply latency in nanoseconds.
// Pipelined commands are matched FIFO, the order Redis guarantees.
type RESPCommand struct {
	pending map[uint64][]respPending
}

type respPending struct {
	cmd   string
	start time.Time
}

// NewRESPCommand returns a resp_command parser instance.
func NewRESPCommand() *RESPCommand {
	return &RESPCommand{pending: make(map[uint64][]respPending)}
}

// Name implements monitor.Parser.
func (p *RESPCommand) Name() string { return "resp_command" }

// Handle implements monitor.Parser.
func (p *RESPCommand) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if pkt.Frame.TCP == nil || len(payload) == 0 {
		return
	}
	for len(payload) > 0 {
		if payload[0] == '*' {
			args, n, err := proto.ParseRESPCommand(payload)
			if err != nil {
				return
			}
			payload = payload[n:]
			q := p.pending[pkt.FlowID]
			if len(q) < respMaxPipeline {
				p.pending[pkt.FlowID] = append(q, respPending{cmd: strings.ToUpper(args[0]), start: pkt.TS})
			}
			continue
		}
		_, n, err := proto.ParseRESPReply(payload)
		if err != nil {
			return
		}
		payload = payload[n:]
		q := p.pending[pkt.FlowID]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		if len(q) == 1 {
			delete(p.pending, pkt.FlowID)
		} else {
			p.pending[pkt.FlowID] = q[1:]
		}
		t := base(pkt)
		t.Key = head.cmd
		t.Val = float64(pkt.TS.Sub(head.start).Nanoseconds())
		emit(t)
	}
}

// Flush implements monitor.Flusher: commands still awaiting replies at
// shutdown are dropped.
func (p *RESPCommand) Flush(emit monitor.EmitFunc) {
	clear(p.pending)
}

// DNSQuery monitors resolution traffic: each query emits a tuple keyed by
// the question name (Val = query type), and each response that answers a
// pending query emits a tuple keyed by the response code's name — NOERROR,
// NXDOMAIN, SERVFAIL — with Val carrying the resolution latency in
// nanoseconds. Counting the rcode keys yields failure rates; the latency
// values feed percentile processors.
type DNSQuery struct {
	pending map[dnsTxn]time.Time
}

type dnsTxn struct {
	flow uint64
	id   uint16
}

// NewDNSQuery returns a dns_query parser instance.
func NewDNSQuery() *DNSQuery {
	return &DNSQuery{pending: make(map[dnsTxn]time.Time)}
}

// Name implements monitor.Parser.
func (p *DNSQuery) Name() string { return "dns_query" }

// Handle implements monitor.Parser.
func (p *DNSQuery) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if len(payload) == 0 {
		return
	}
	m, err := proto.ParseDNS(payload)
	if err != nil {
		return
	}
	txn := dnsTxn{flow: pkt.FlowID, id: m.ID}
	if !m.Response {
		p.pending[txn] = pkt.TS
		t := base(pkt)
		t.Key = m.Question.Name
		t.Val = float64(m.Question.Type)
		emit(t)
		return
	}
	start, ok := p.pending[txn]
	if !ok {
		return // unsolicited response: nothing to time
	}
	delete(p.pending, txn)
	t := base(pkt)
	t.Key = proto.DNSRCodeName(m.RCode)
	t.Val = float64(pkt.TS.Sub(start).Nanoseconds())
	emit(t)
}

// Flush implements monitor.Flusher: unanswered queries are dropped.
func (p *DNSQuery) Flush(emit monitor.EmitFunc) {
	clear(p.pending)
}

// TLSSNI identifies services on encrypted flows: it extracts the server_name
// extension from TLS ClientHellos and emits one tuple per flow keyed by the
// SNI hostname (Val = offered protocol version). Nothing is decrypted — the
// hello is the one cleartext message naming the contacted service, which is
// all per-service connection counting needs.
type TLSSNI struct {
	seen map[uint64]struct{}
}

// NewTLSSNI returns a tls_sni parser instance.
func NewTLSSNI() *TLSSNI {
	return &TLSSNI{seen: make(map[uint64]struct{})}
}

// Name implements monitor.Parser.
func (p *TLSSNI) Name() string { return "tls_sni" }

// Handle implements monitor.Parser.
func (p *TLSSNI) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if pkt.Frame.TCP == nil || len(payload) == 0 {
		return
	}
	if _, done := p.seen[pkt.FlowID]; done {
		return
	}
	hello, err := proto.ParseTLSClientHello(payload)
	if err != nil || hello.SNI == "" {
		return
	}
	p.seen[pkt.FlowID] = struct{}{}
	t := base(pkt)
	t.Key = hello.SNI
	t.Val = float64(hello.Version)
	emit(t)
}
