package parsers

// The parser conformance harness: every registered parser is run over a
// checked-in pcap fixture (testdata/<name>.pcap, regenerated with
// `go generate ./internal/parsers`) and its emitted tuples are compared
// field-for-field against the checked-in golden JSON. The fixtures freeze
// each parser's emission schema — keys, values, per-flow dedup behavior —
// so a refactor that silently changes what a parser emits fails here, and a
// parser added without a fixture fails TestEveryParserHasFixture.

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"netalytics/internal/monitor"
	"netalytics/internal/pcap"
	"netalytics/internal/tuple"
)

// readFixture loads testdata/<name>.pcap into monitor packet descriptors.
func readFixture(t testing.TB, name string) []*monitor.Packet {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name+".pcap"))
	if err != nil {
		t.Fatalf("fixture missing (run `go generate ./internal/parsers`): %v", err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*monitor.Packet
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return pkts
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt := &monitor.Packet{TS: p.TS}
		if err := pkt.Frame.Decode(p.Data); err != nil {
			t.Fatalf("fixture frame %d: %v", len(pkts), err)
		}
		ft, ok := pkt.Frame.FlowTuple()
		if !ok {
			t.Fatalf("fixture frame %d: no flow tuple", len(pkts))
		}
		pkt.Tuple = ft
		pkt.FlowID = ft.CanonicalHash()
		pkts = append(pkts, pkt)
	}
}

// sortTuplesCanonical mirrors the generator's ordering so parsers whose
// Flush walks a map compare deterministically.
func sortTuplesCanonical(ts []tuple.Tuple) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.FlowID != b.FlowID {
			return a.FlowID < b.FlowID
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Val < b.Val
	})
}

func TestParserConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			pkts := readFixture(t, name)
			factory, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			p := factory()
			got := []tuple.Tuple{}
			emit := func(tu tuple.Tuple) { got = append(got, tu) }
			for _, pkt := range pkts {
				p.Handle(pkt, emit)
			}
			if fl, ok := p.(monitor.Flusher); ok {
				fl.Flush(emit)
			}
			sortTuplesCanonical(got)

			blob, err := os.ReadFile(filepath.Join("testdata", name+".golden.json"))
			if err != nil {
				t.Fatalf("golden missing (run `go generate ./internal/parsers`): %v", err)
			}
			want := []tuple.Tuple{}
			if err := json.Unmarshal(blob, &want); err != nil {
				t.Fatalf("golden unreadable: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("emitted %d tuples, golden has %d\ngot: %+v", len(got), len(want), got)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("tuple %d:\n got  %+v\n want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEveryParserHasFixture is the registry-completeness check: registering
// a parser without generating its conformance fixture is an error. This
// replaces the old hand-counted name list — coverage is now derived from the
// registry itself.
func TestEveryParserHasFixture(t *testing.T) {
	for _, name := range Names() {
		if _, err := os.Stat(filepath.Join("testdata", name+".pcap")); err != nil {
			t.Errorf("parser %q has no pcap fixture — add a script to testdata/gen and run `go generate ./internal/parsers`", name)
		}
		if _, err := os.Stat(filepath.Join("testdata", name+".golden.json")); err != nil {
			t.Errorf("parser %q has no golden file — run `go generate ./internal/parsers`", name)
		}
	}
	// And the reverse: a fixture whose parser is gone is stale.
	matches, err := filepath.Glob(filepath.Join("testdata", "*.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		name = name[:len(name)-len(".pcap")]
		if _, err := Lookup(name); err != nil {
			t.Errorf("fixture %s has no registered parser — delete it", m)
		}
	}
	// Fixtures must contain traffic: an empty capture freezes nothing.
	for _, name := range Names() {
		if pkts := readFixture(t, name); len(pkts) == 0 {
			t.Errorf("fixture for %q is empty", name)
		}
	}
}
