package parsers

import (
	"testing"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
)

func udpFrame(srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.UDP(packet.UDPSpec{
		Src: cliAddr, Dst: srvAddr,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	})
}

func udpFrameRev(srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.UDP(packet.UDPSpec{
		Src: srvAddr, Dst: cliAddr,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	})
}

func TestRESPCommandLatency(t *testing.T) {
	p := NewRESPCommand()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	q := mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, proto.BuildRESPCommand("get", "user:7")), t0)
	r := mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 6379, 5555, proto.BuildRESPBulk([]byte("v"))), t0.Add(3*time.Millisecond))
	p.Handle(q, emit)
	p.Handle(r, emit)
	if len(got) != 1 {
		t.Fatalf("emitted %d, want 1", len(got))
	}
	if got[0].Key != "GET" {
		t.Errorf("key = %q, want GET (upper-cased)", got[0].Key)
	}
	if want := float64(3 * time.Millisecond); got[0].Val != want {
		t.Errorf("latency = %v, want %v", got[0].Val, want)
	}
}

func TestRESPPipelinedCommandsFIFO(t *testing.T) {
	p := NewRESPCommand()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	// Two commands in one packet, two replies in one packet: FIFO pairing.
	cmds := append(proto.BuildRESPCommand("SET", "k", "v"), proto.BuildRESPCommand("GET", "k")...)
	replies := append(proto.BuildRESPSimple("OK"), proto.BuildRESPBulk([]byte("v"))...)
	p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, cmds), t0), emit)
	p.Handle(mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 6379, 5555, replies), t0.Add(time.Millisecond)), emit)
	if len(got) != 2 {
		t.Fatalf("emitted %d, want 2", len(got))
	}
	if got[0].Key != "SET" || got[1].Key != "GET" {
		t.Errorf("keys = %q, %q, want SET then GET", got[0].Key, got[1].Key)
	}
}

func TestRESPReplyWithoutCommandIgnored(t *testing.T) {
	p := NewRESPCommand()
	got := collect(t, p, tcpFrameRev(packet.TCPFlagPSH, 6379, 5555, proto.BuildRESPSimple("OK")))
	if len(got) != 0 {
		t.Errorf("emitted %+v, want nothing", got)
	}
}

func TestRESPPipelineBounded(t *testing.T) {
	p := NewRESPCommand()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	for i := 0; i < respMaxPipeline*2; i++ {
		p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, proto.BuildRESPCommand("GET", "k")), t0), emit)
	}
	if n := len(p.pending[mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, []byte("x")), t0).FlowID]); n > respMaxPipeline {
		t.Errorf("pending queue grew to %d, cap %d", n, respMaxPipeline)
	}
}

func TestDNSQueryAndResponse(t *testing.T) {
	p := NewDNSQuery()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	q := mkPacket(t, udpFrame(40000, 53, proto.BuildDNSQuery(7, "api.example.com", proto.DNSTypeA)), t0)
	r := mkPacket(t, udpFrameRev(53, 40000, proto.BuildDNSResponse(7, "api.example.com", proto.DNSTypeA, proto.DNSRCodeNoError, nil)), t0.Add(2*time.Millisecond))
	p.Handle(q, emit)
	p.Handle(r, emit)
	if len(got) != 2 {
		t.Fatalf("emitted %d, want 2 (query + response)", len(got))
	}
	if got[0].Key != "api.example.com" || got[0].Val != float64(proto.DNSTypeA) {
		t.Errorf("query tuple = %+v", got[0])
	}
	if got[1].Key != "NOERROR" {
		t.Errorf("response key = %q", got[1].Key)
	}
	if want := float64(2 * time.Millisecond); got[1].Val != want {
		t.Errorf("latency = %v, want %v", got[1].Val, want)
	}
}

func TestDNSNXDomainKey(t *testing.T) {
	p := NewDNSQuery()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	p.Handle(mkPacket(t, udpFrame(40001, 53, proto.BuildDNSQuery(9, "nope.example.com", proto.DNSTypeA)), t0), emit)
	p.Handle(mkPacket(t, udpFrameRev(53, 40001, proto.BuildDNSResponse(9, "nope.example.com", proto.DNSTypeA, proto.DNSRCodeNXDomain, nil)), t0.Add(time.Millisecond)), emit)
	if len(got) != 2 || got[1].Key != "NXDOMAIN" {
		t.Fatalf("tuples = %+v, want NXDOMAIN response", got)
	}
}

func TestDNSUnsolicitedResponseIgnored(t *testing.T) {
	p := NewDNSQuery()
	got := collect(t, p, udpFrameRev(53, 40002, proto.BuildDNSResponse(1, "x.example.com", proto.DNSTypeA, proto.DNSRCodeNoError, nil)))
	if len(got) != 0 {
		t.Errorf("emitted %+v, want nothing", got)
	}
}

func TestDNSTransactionsKeyedByID(t *testing.T) {
	// Two outstanding queries on one flow resolve independently by DNS ID.
	p := NewDNSQuery()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	p.Handle(mkPacket(t, udpFrame(40003, 53, proto.BuildDNSQuery(1, "a.example.com", proto.DNSTypeA)), t0), emit)
	p.Handle(mkPacket(t, udpFrame(40003, 53, proto.BuildDNSQuery(2, "b.example.com", proto.DNSTypeA)), t0.Add(time.Millisecond)), emit)
	// Answer the second query first.
	p.Handle(mkPacket(t, udpFrameRev(53, 40003, proto.BuildDNSResponse(2, "b.example.com", proto.DNSTypeA, proto.DNSRCodeNoError, nil)), t0.Add(2*time.Millisecond)), emit)
	p.Handle(mkPacket(t, udpFrameRev(53, 40003, proto.BuildDNSResponse(1, "a.example.com", proto.DNSTypeA, proto.DNSRCodeNoError, nil)), t0.Add(5*time.Millisecond)), emit)
	if len(got) != 4 {
		t.Fatalf("emitted %d, want 4", len(got))
	}
	if got[2].Val != float64(time.Millisecond) { // id=2: sent at 1ms, answered at 2ms
		t.Errorf("id=2 latency = %v, want %v", got[2].Val, float64(time.Millisecond))
	}
	if got[3].Val != float64(5*time.Millisecond) { // id=1: sent at 0, answered at 5ms
		t.Errorf("id=1 latency = %v, want %v", got[3].Val, float64(5*time.Millisecond))
	}
}

func TestTLSSNIOncePerFlow(t *testing.T) {
	p := NewTLSSNI()
	hello := proto.BuildTLSClientHello("shop.example.com")
	got := collect(t, p,
		tcpFrame(packet.TCPFlagPSH, 5555, 443, hello),
		tcpFrame(packet.TCPFlagPSH, 5555, 443, hello), // retransmit: ignored
		tcpFrame(packet.TCPFlagPSH, 5556, 443, proto.BuildTLSClientHello("api.example.com")),
		tcpFrame(packet.TCPFlagPSH, 5557, 443, proto.BuildTLSAppData([]byte("opaque"))), // not a hello
	)
	if len(got) != 2 {
		t.Fatalf("emitted %d, want 2: %+v", len(got), got)
	}
	if got[0].Key != "shop.example.com" || got[1].Key != "api.example.com" {
		t.Errorf("keys = %q, %q", got[0].Key, got[1].Key)
	}
	if got[0].Val != float64(0x0303) {
		t.Errorf("version val = %v", got[0].Val)
	}
}

func TestTLSSNIEmptyNotEmitted(t *testing.T) {
	p := NewTLSSNI()
	got := collect(t, p, tcpFrame(packet.TCPFlagPSH, 5555, 443, proto.BuildTLSClientHello("")))
	if len(got) != 0 {
		t.Errorf("SNI-less hello emitted %+v", got)
	}
}

// TestTruncatedPayloadsEmitNothing feeds every strict prefix of well-formed
// protocol messages to the framed-protocol parsers: a truncated message must
// never produce a tuple.
func TestTruncatedPayloadsEmitNothing(t *testing.T) {
	cases := []struct {
		name    string
		factory func() monitor.Parser
		udp     bool
		full    []byte
	}{
		{"resp_command", func() monitor.Parser { return NewRESPCommand() }, false,
			append(proto.BuildRESPCommand("SET", "key", "value"), proto.BuildRESPSimple("OK")...)},
		{"dns_query", func() monitor.Parser { return NewDNSQuery() }, true,
			proto.BuildDNSQuery(3, "cut.example.com", proto.DNSTypeA)},
		{"tls_sni", func() monitor.Parser { return NewTLSSNI() }, false,
			proto.BuildTLSClientHello("cut.example.com")},
		{"mysql_query", func() monitor.Parser { return NewMySQLQuery() }, false,
			proto.BuildMySQLQuery(0, "SELECT 1")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for cut := 1; cut < len(tc.full); cut++ {
				p := tc.factory()
				frame := tcpFrame(packet.TCPFlagPSH, 5555, 443, tc.full[:cut])
				if tc.udp {
					frame = udpFrame(40000, 53, tc.full[:cut])
				}
				if got := collect(t, p, frame); len(got) != 0 {
					t.Fatalf("prefix %d/%d emitted %+v", cut, len(tc.full), got)
				}
			}
		})
	}
}
