package parsers

// Per-protocol parse throughput over the conformance fixtures: each
// sub-benchmark replays one parser's checked-in capture through a fresh
// Handle loop, so `go test -bench BenchmarkProtocolParse` reports ns/frame
// and MB/s for every registered parser — the numbers CI publishes as
// BENCH_protocols.json. Iterating Names() keeps the benchmark complete by
// construction: a new parser gets a sub-benchmark the moment its fixture
// lands.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"netalytics/internal/pcap"
	"netalytics/internal/tuple"
)

func BenchmarkProtocolParse(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			pkts := readFixture(b, name)
			if len(pkts) == 0 {
				b.Fatalf("fixture for %q is empty", name)
			}
			var raw int64
			f, err := os.Open(filepath.Join("testdata", name+".pcap"))
			if err != nil {
				b.Fatal(err)
			}
			r, err := pcap.NewReader(f)
			if err != nil {
				b.Fatal(err)
			}
			for {
				p, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				raw += int64(len(p.Data))
			}
			f.Close()

			factory, err := Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			p := factory()
			emit := func(tuple.Tuple) {}
			b.SetBytes(raw)
			b.ReportMetric(float64(len(pkts)), "frames/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, pkt := range pkts {
					p.Handle(pkt, emit)
				}
			}
		})
	}
}
