// Package parsers provides the common NetAlytics parsers of Table 1:
//
//	tcp_flow_key    Net  extract src_ip, dst_ip, src_port, dst_port
//	tcp_conn_time   Net  detect SYN/FIN/RST flags
//	tcp_pkt_size    Net  calculate tcp packet size
//	memcached_get   App  parse memcached get request
//	http_get        App  parse http get request and response
//	mysql_query     App  parse mysql query and response
//
// plus extensions registered through the same §2 custom-parser interface
// (each a few dozen lines):
//
//	tcp_flow_stats  Net  NetFlow-style per-flow packet/byte accounting
//	resp_command    App  Redis RESP command + reply latency
//	dns_query       App  DNS query name/type, rcode, resolution latency
//	tls_sni         App  TLS ClientHello server_name (SNI) extraction
//
// Parsers are deliberately lightweight (§3.1): they extract a small amount
// of data per packet and defer all heavier processing to the streaming
// analytics layer. Thanks to the monitor's flow-affinity dispatch, each
// instance may keep per-flow state without locks.
package parsers

// Conformance fixtures (testdata/*.pcap + golden tuples) are regenerated
// deterministically from the scripts in testdata/gen:
//go:generate go run ./testdata/gen

import (
	"fmt"
	"sort"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
)

// Event keys used by the network-layer parsers.
const (
	KeyFlow  = "flow"
	KeyStart = "start"
	KeyEnd   = "end"
	KeySize  = "size"
	KeyBytes = "bytes"
	KeyPkts  = "pkts"
)

// Registry maps parser names to factories; the query compiler validates
// PARSE clauses against it.
var Registry = map[string]monitor.Factory{
	"tcp_flow_key":   func() monitor.Parser { return NewTCPFlowKey() },
	"tcp_conn_time":  func() monitor.Parser { return NewTCPConnTime() },
	"tcp_pkt_size":   func() monitor.Parser { return NewTCPPktSize() },
	"http_get":       func() monitor.Parser { return NewHTTPGet() },
	"memcached_get":  func() monitor.Parser { return NewMemcachedGet() },
	"mysql_query":    func() monitor.Parser { return NewMySQLQuery() },
	"tcp_flow_stats": func() monitor.Parser { return NewTCPFlowStats() },
	"resp_command":   func() monitor.Parser { return NewRESPCommand() },
	"dns_query":      func() monitor.Parser { return NewDNSQuery() },
	"tls_sni":        func() monitor.Parser { return NewTLSSNI() },
}

// Lookup returns the factory for a parser name.
func Lookup(name string) (monitor.Factory, error) {
	f, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("parsers: unknown parser %q", name)
	}
	return f, nil
}

// Names lists the registered parser names, sorted, so PARSE error messages
// and metric label sets are deterministic across runs.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// base fills the shared tuple fields from a packet descriptor.
func base(p *monitor.Packet) tuple.Tuple {
	return tuple.Tuple{
		FlowID:  p.FlowID,
		TS:      p.TS.UnixNano(),
		SrcIP:   p.Tuple.Src.String(),
		DstIP:   p.Tuple.Dst.String(),
		SrcPort: p.Tuple.SrcPort,
		DstPort: p.Tuple.DstPort,
	}
}

// TCPFlowKey emits the five-tuple of each flow exactly once, on the flow's
// first observed packet.
type TCPFlowKey struct {
	seen map[uint64]struct{}
}

// NewTCPFlowKey returns a tcp_flow_key parser instance.
func NewTCPFlowKey() *TCPFlowKey {
	return &TCPFlowKey{seen: make(map[uint64]struct{})}
}

// Name implements monitor.Parser.
func (p *TCPFlowKey) Name() string { return "tcp_flow_key" }

// Handle implements monitor.Parser.
func (p *TCPFlowKey) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	if pkt.Frame.TCP == nil {
		return
	}
	if _, ok := p.seen[pkt.FlowID]; ok {
		return
	}
	p.seen[pkt.FlowID] = struct{}{}
	t := base(pkt)
	t.Key = KeyFlow
	emit(t)
}

// TCPConnTime watches SYN/FIN/RST flags and emits a "start" tuple when a
// connection opens and an "end" tuple when it terminates; the diff topology
// block downstream subtracts the two to produce connection durations (§7.1).
type TCPConnTime struct {
	open map[uint64]struct{}
}

// NewTCPConnTime returns a tcp_conn_time parser instance.
func NewTCPConnTime() *TCPConnTime {
	return &TCPConnTime{open: make(map[uint64]struct{})}
}

// Name implements monitor.Parser.
func (p *TCPConnTime) Name() string { return "tcp_conn_time" }

// Handle implements monitor.Parser.
func (p *TCPConnTime) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	tcp := pkt.Frame.TCP
	if tcp == nil {
		return
	}
	switch {
	case tcp.SYN() && !tcp.ACK():
		if _, dup := p.open[pkt.FlowID]; dup {
			return // retransmitted SYN
		}
		p.open[pkt.FlowID] = struct{}{}
		t := base(pkt)
		t.Key = KeyStart
		t.Val = float64(pkt.TS.UnixNano())
		emit(t)
	case tcp.FIN() || tcp.RST():
		if _, ok := p.open[pkt.FlowID]; !ok {
			return // already ended (second FIN) or never seen
		}
		delete(p.open, pkt.FlowID)
		t := base(pkt)
		t.Key = KeyEnd
		t.Val = float64(pkt.TS.UnixNano())
		emit(t)
	}
}

// TCPPktSize emits the TCP payload size of every packet, feeding throughput
// analyses such as the group-sum processor of §7.1.
type TCPPktSize struct{}

// NewTCPPktSize returns a tcp_pkt_size parser instance.
func NewTCPPktSize() *TCPPktSize { return &TCPPktSize{} }

// Name implements monitor.Parser.
func (p *TCPPktSize) Name() string { return "tcp_pkt_size" }

// Handle implements monitor.Parser.
func (p *TCPPktSize) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	if pkt.Frame.TCP == nil {
		return
	}
	t := base(pkt)
	t.Key = KeySize
	t.Val = float64(len(pkt.Frame.Payload))
	emit(t)
}

// HTTPGet parses HTTP GET requests (emitting the URL) and responses
// (emitting the status code). Per the paper, the application-specific logic
// is a handful of lines over the protocol library.
type HTTPGet struct{}

// NewHTTPGet returns an http_get parser instance.
func NewHTTPGet() *HTTPGet { return &HTTPGet{} }

// Name implements monitor.Parser.
func (p *HTTPGet) Name() string { return "http_get" }

// Handle implements monitor.Parser.
func (p *HTTPGet) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if pkt.Frame.TCP == nil || len(payload) == 0 {
		return
	}
	if req, err := proto.ParseHTTPRequest(payload); err == nil {
		if req.Method != "GET" {
			return
		}
		t := base(pkt)
		t.Key = req.URL
		emit(t)
		return
	}
	if resp, err := proto.ParseHTTPResponse(payload); err == nil {
		// Responses carry no countable key: the status rides in Val so
		// URL-counting topologies are not polluted by response tuples.
		t := base(pkt)
		t.Val = float64(resp.Status)
		emit(t)
	}
}

// MemcachedGet extracts the key of memcached get requests.
type MemcachedGet struct{}

// NewMemcachedGet returns a memcached_get parser instance.
func NewMemcachedGet() *MemcachedGet { return &MemcachedGet{} }

// Name implements monitor.Parser.
func (p *MemcachedGet) Name() string { return "memcached_get" }

// Handle implements monitor.Parser.
func (p *MemcachedGet) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if len(payload) == 0 {
		return
	}
	key, err := proto.ParseMemcachedGet(payload)
	if err != nil {
		return
	}
	t := base(pkt)
	t.Key = key
	emit(t)
}

// TCPFlowStats accumulates NetFlow-style per-flow records — packet and
// payload byte counts — and emits them when the flow terminates (FIN/RST)
// or the monitor shuts down. It extends Table 1 with the aggregate-record
// style of export the paper contrasts NetAlytics against (NetFlow), but on
// the same on-demand deployment path. Each finished flow produces two
// tuples sharing the flow ID: one keyed "bytes" and one keyed "pkts".
type TCPFlowStats struct {
	flows map[uint64]*flowStats
	// closed remembers exported flows so trailing segments (the peer's
	// FIN|ACK, retransmissions) do not spawn a second record.
	closed map[uint64]struct{}
}

type flowStats struct {
	sample  tuple.Tuple // header fields of the first packet
	packets float64
	bytes   float64
}

// NewTCPFlowStats returns a tcp_flow_stats parser instance.
func NewTCPFlowStats() *TCPFlowStats {
	return &TCPFlowStats{
		flows:  make(map[uint64]*flowStats),
		closed: make(map[uint64]struct{}),
	}
}

// Name implements monitor.Parser.
func (p *TCPFlowStats) Name() string { return "tcp_flow_stats" }

// Handle implements monitor.Parser.
func (p *TCPFlowStats) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	tcp := pkt.Frame.TCP
	if tcp == nil {
		return
	}
	if _, done := p.closed[pkt.FlowID]; done {
		return
	}
	st, ok := p.flows[pkt.FlowID]
	if !ok {
		st = &flowStats{sample: base(pkt)}
		p.flows[pkt.FlowID] = st
	}
	st.packets++
	st.bytes += float64(len(pkt.Frame.Payload))
	if tcp.FIN() || tcp.RST() {
		p.emitFlow(pkt.FlowID, st, emit)
		delete(p.flows, pkt.FlowID)
		p.closed[pkt.FlowID] = struct{}{}
	}
}

// Flush implements monitor.Flusher: still-open flows export their counters
// at shutdown, like a NetFlow active-timeout export.
func (p *TCPFlowStats) Flush(emit monitor.EmitFunc) {
	for id, st := range p.flows {
		p.emitFlow(id, st, emit)
	}
	clear(p.flows)
}

func (p *TCPFlowStats) emitFlow(id uint64, st *flowStats, emit monitor.EmitFunc) {
	bytesT := st.sample
	bytesT.Key = KeyBytes
	bytesT.Val = st.bytes
	emit(bytesT)
	pktsT := st.sample
	pktsT.Key = KeyPkts
	pktsT.Val = st.packets
	emit(pktsT)
}

// MySQLQuery observes the mini-MySQL stream and pairs each COM_QUERY with
// its response, emitting per-query latency tuples keyed by the SQL text.
// Because several queries can share one TCP connection, connection-level
// timing cannot see individual queries — this parser is the paper's answer
// (§7.2, Fig. 15).
type MySQLQuery struct {
	pending map[uint64]pendingQuery
}

type pendingQuery struct {
	sql   string
	start time.Time
}

// NewMySQLQuery returns a mysql_query parser instance.
func NewMySQLQuery() *MySQLQuery {
	return &MySQLQuery{pending: make(map[uint64]pendingQuery)}
}

// Name implements monitor.Parser.
func (p *MySQLQuery) Name() string { return "mysql_query" }

// Handle implements monitor.Parser.
func (p *MySQLQuery) Handle(pkt *monitor.Packet, emit monitor.EmitFunc) {
	payload := pkt.Frame.Payload
	if pkt.Frame.TCP == nil || len(payload) == 0 {
		return
	}
	for len(payload) > 0 {
		frame, n, err := proto.ParseMySQLFrame(payload)
		if err != nil {
			return
		}
		payload = payload[n:]
		switch frame.Command {
		case proto.MySQLComQuery:
			p.pending[pkt.FlowID] = pendingQuery{sql: string(frame.Body), start: pkt.TS}
		case proto.MySQLComOK, proto.MySQLComErr:
			q, ok := p.pending[pkt.FlowID]
			if !ok {
				continue
			}
			delete(p.pending, pkt.FlowID)
			t := base(pkt)
			t.Key = q.sql
			t.Val = float64(pkt.TS.Sub(q.start).Nanoseconds())
			emit(t)
		}
	}
}

// Flush implements monitor.Flusher: queries still awaiting responses at
// shutdown are dropped, but the count could be reported here if needed.
func (p *MySQLQuery) Flush(emit monitor.EmitFunc) {
	clear(p.pending)
}
