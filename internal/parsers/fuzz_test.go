package parsers

// Native fuzz targets — one per registered parser, kept complete by
// TestEveryParserHasFuzzTarget. Each target wraps the fuzzed bytes in a
// well-formed frame, drives the parser in both flow directions on the same
// canonical flow (so per-flow state and reply paths are exercised), and
// asserts the two harness-wide properties:
//
//  1. the parser never panics, whatever the payload;
//  2. a tuple is only emitted when the protocol codec accepts the payload —
//     truncated or malformed messages emit nothing.
//
// Seeds come from the conformance fixture corpus (testdata/<name>.pcap), so
// fuzzing starts from known-good protocol bytes and mutates outward. CI runs
// each target briefly (-fuzztime) as a smoke test; run one longer locally
// with e.g. `go test -fuzz FuzzDNSQuery -fuzztime 5m ./internal/parsers`.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/packet"
	"netalytics/internal/pcap"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
)

// maxFuzzPayload keeps frames within the IPv4 total-length field (uint16);
// larger fuzz inputs are clipped rather than skipped so their prefixes still
// exercise the parser.
const maxFuzzPayload = 60000

func clampFuzz(data []byte) []byte {
	if len(data) > maxFuzzPayload {
		return data[:maxFuzzPayload]
	}
	return data
}

// fixturePayloads returns the application payload (and TCP flags, zero for
// UDP) of every frame in the parser's conformance fixture, for corpus seeds.
func fixturePayloads(f *testing.F, name string) (payloads [][]byte, flags []uint8) {
	f.Helper()
	file, err := os.Open(filepath.Join("testdata", name+".pcap"))
	if err != nil {
		f.Fatalf("fixture missing (run `go generate ./internal/parsers`): %v", err)
	}
	defer file.Close()
	r, err := pcap.NewReader(file)
	if err != nil {
		f.Fatal(err)
	}
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return payloads, flags
		}
		if err != nil {
			f.Fatal(err)
		}
		var fr packet.Frame
		if err := fr.Decode(p.Data); err != nil {
			f.Fatal(err)
		}
		payloads = append(payloads, append([]byte(nil), fr.Payload...))
		if fr.TCP != nil {
			flags = append(flags, fr.TCP.Flags)
		} else {
			flags = append(flags, 0)
		}
	}
}

// seedFromFixture adds every non-empty fixture payload to the fuzz corpus.
func seedFromFixture(f *testing.F, name string) {
	f.Helper()
	payloads, _ := fixturePayloads(f, name)
	for _, p := range payloads {
		if len(p) > 0 {
			f.Add(p)
		}
	}
}

// fuzzRun drives a parser over the fuzzed payload: client->server, then
// server->client, then client->server again, all on one canonical flow, with
// a final Flush. Returns everything emitted.
func fuzzRun(t *testing.T, p monitor.Parser, udp bool, cliPort, srvPort uint16, data []byte) []tuple.Tuple {
	t.Helper()
	data = clampFuzz(data)
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	ts := time.Unix(1000, 0)
	var frames [][]byte
	if udp {
		frames = [][]byte{
			udpFrame(cliPort, srvPort, data),
			udpFrameRev(srvPort, cliPort, data),
			udpFrame(cliPort, srvPort, data),
		}
	} else {
		frames = [][]byte{
			tcpFrame(packet.TCPFlagACK|packet.TCPFlagPSH, cliPort, srvPort, data),
			tcpFrameRev(packet.TCPFlagACK|packet.TCPFlagPSH, srvPort, cliPort, data),
			tcpFrame(packet.TCPFlagACK|packet.TCPFlagPSH, cliPort, srvPort, data),
		}
	}
	for i, raw := range frames {
		p.Handle(mkPacket(t, raw, ts.Add(time.Duration(i)*time.Millisecond)), emit)
	}
	if fl, ok := p.(monitor.Flusher); ok {
		fl.Flush(emit)
	}
	return got
}

// checkTuples asserts invariants every emitted tuple must satisfy regardless
// of payload: the frame's endpoint fields are filled in (the Parser field is
// stamped later, by the monitor shard).
func checkTuples(t *testing.T, got []tuple.Tuple) {
	t.Helper()
	for _, tu := range got {
		if tu.FlowID == 0 || tu.SrcIP == "" || tu.DstIP == "" {
			t.Fatalf("tuple missing flow fields: %+v", tu)
		}
	}
}

func FuzzTCPFlowKey(f *testing.F) {
	seedFromFixture(f, "tcp_flow_key")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := fuzzRun(t, NewTCPFlowKey(), false, 5555, 80, data)
		checkTuples(t, got)
		if len(got) != 1 {
			t.Fatalf("one canonical flow emitted %d flow keys, want 1", len(got))
		}
	})
}

func FuzzTCPConnTime(f *testing.F) {
	payloads, seedFlags := fixturePayloads(f, "tcp_conn_time")
	for i, p := range payloads {
		f.Add(p, seedFlags[i])
	}
	f.Fuzz(func(t *testing.T, data []byte, flags uint8) {
		p := NewTCPConnTime()
		var got []tuple.Tuple
		emit := func(tu tuple.Tuple) { got = append(got, tu) }
		ts := time.Unix(1000, 0)
		// Fuzzed flags walk the connection state machine in arbitrary order.
		seq := []uint8{packet.TCPFlagSYN, flags, flags >> 4, packet.TCPFlagFIN}
		for i, fl := range seq {
			p.Handle(mkPacket(t, tcpFrame(fl, 5555, 80, clampFuzz(data)), ts.Add(time.Duration(i)*time.Millisecond)), emit)
		}
		checkTuples(t, got)
		// A flow alternates strictly start, end, start, ... — an end can only
		// close an open connection, and a new start (connection reuse after
		// FIN/RST) requires the previous one to have ended.
		for i, tu := range got {
			want := KeyStart
			if i%2 == 1 {
				want = KeyEnd
			}
			if tu.Key != want {
				t.Fatalf("tuple %d key %q, want %q (keys must alternate start/end)", i, tu.Key, want)
			}
		}
	})
}

func FuzzTCPPktSize(f *testing.F) {
	seedFromFixture(f, "tcp_pkt_size")
	f.Fuzz(func(t *testing.T, data []byte) {
		data = clampFuzz(data)
		got := fuzzRun(t, NewTCPPktSize(), false, 5555, 80, data)
		checkTuples(t, got)
		if len(got) != 3 {
			t.Fatalf("3 frames emitted %d size tuples", len(got))
		}
		for _, tu := range got {
			if tu.Val != float64(len(data)) {
				t.Fatalf("size = %v, want %d", tu.Val, len(data))
			}
		}
	})
}

func FuzzTCPFlowStats(f *testing.F) {
	seedFromFixture(f, "tcp_flow_stats")
	f.Fuzz(func(t *testing.T, data []byte) {
		data = clampFuzz(data)
		got := fuzzRun(t, NewTCPFlowStats(), false, 5555, 80, data)
		checkTuples(t, got)
		byKey := map[string]float64{}
		for _, tu := range got {
			byKey[tu.Key] = tu.Val
		}
		if byKey[KeyPkts] != 3 || byKey[KeyBytes] != float64(3*len(data)) {
			t.Fatalf("stats = %+v for 3 frames of %d bytes", byKey, len(data))
		}
	})
}

func FuzzHTTPGet(f *testing.F) {
	seedFromFixture(f, "http_get")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := fuzzRun(t, NewHTTPGet(), false, 5555, 80, data)
		checkTuples(t, got)
		if len(got) > 0 {
			_, reqErr := proto.ParseHTTPRequest(clampFuzz(data))
			_, respErr := proto.ParseHTTPResponse(clampFuzz(data))
			if reqErr != nil && respErr != nil {
				t.Fatalf("emitted %d tuples for payload no codec accepts", len(got))
			}
		}
	})
}

func FuzzMemcachedGet(f *testing.F) {
	seedFromFixture(f, "memcached_get")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := fuzzRun(t, NewMemcachedGet(), false, 5555, 11211, data)
		checkTuples(t, got)
		if len(got) > 0 {
			if _, err := proto.ParseMemcachedGet(clampFuzz(data)); err != nil {
				t.Fatalf("emitted %d tuples for payload ParseMemcachedGet rejects", len(got))
			}
		}
	})
}

func FuzzMySQLQuery(f *testing.F) {
	seedFromFixture(f, "mysql_query")
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewMySQLQuery()
		var got []tuple.Tuple
		emit := func(tu tuple.Tuple) { got = append(got, tu) }
		ts := time.Unix(1000, 0)
		// Prime a pending query so fuzzed bytes arriving server->client can
		// exercise the response path against live per-flow state.
		p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 3306, proto.BuildMySQLQuery(0, "SELECT 1")), ts), emit)
		p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 3306, clampFuzz(data)), ts.Add(time.Millisecond)), emit)
		p.Handle(mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 3306, 5555, clampFuzz(data)), ts.Add(2*time.Millisecond)), emit)
		p.Flush(emit)
		checkTuples(t, got)
		if len(got) > 0 {
			if _, _, err := proto.ParseMySQLFrame(clampFuzz(data)); err != nil {
				t.Fatalf("emitted %d tuples but ParseMySQLFrame rejects the payload", len(got))
			}
		}
	})
}

func FuzzRESPCommand(f *testing.F) {
	seedFromFixture(f, "resp_command")
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewRESPCommand()
		var got []tuple.Tuple
		emit := func(tu tuple.Tuple) { got = append(got, tu) }
		ts := time.Unix(1000, 0)
		// Prime a pending command so a fuzzed payload that parses as a reply
		// has something to pop.
		p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, proto.BuildRESPCommand("GET", "k")), ts), emit)
		p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 6379, clampFuzz(data)), ts.Add(time.Millisecond)), emit)
		p.Handle(mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 6379, 5555, clampFuzz(data)), ts.Add(2*time.Millisecond)), emit)
		p.Flush(emit)
		checkTuples(t, got)
		if len(got) > 0 {
			// Emission means the payload's first message parsed as a command
			// or a reply; a payload both codecs reject must stay silent.
			clamped := clampFuzz(data)
			_, _, cmdErr := proto.ParseRESPCommand(clamped)
			_, _, repErr := proto.ParseRESPReply(clamped)
			if cmdErr != nil && repErr != nil {
				t.Fatalf("emitted %d tuples for payload no RESP codec accepts", len(got))
			}
		}
	})
}

func FuzzDNSQuery(f *testing.F) {
	seedFromFixture(f, "dns_query")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := fuzzRun(t, NewDNSQuery(), true, 40000, 53, data)
		checkTuples(t, got)
		if len(got) > 0 {
			if _, err := proto.ParseDNS(clampFuzz(data)); err != nil {
				t.Fatalf("emitted %d tuples but ParseDNS rejects the payload", len(got))
			}
		}
	})
}

func FuzzTLSSNI(f *testing.F) {
	seedFromFixture(f, "tls_sni")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := fuzzRun(t, NewTLSSNI(), false, 5555, 443, data)
		checkTuples(t, got)
		if len(got) > 0 {
			hello, err := proto.ParseTLSClientHello(clampFuzz(data))
			if err != nil || hello.SNI == "" {
				t.Fatalf("emitted %d tuples but payload is not a hello with SNI", len(got))
			}
		}
	})
}

// fuzzTargets mirrors the Fuzz* functions above; TestEveryParserHasFuzzTarget
// fails when a parser is registered without extending this file.
var fuzzTargets = map[string]bool{
	"tcp_flow_key":   true,
	"tcp_conn_time":  true,
	"tcp_pkt_size":   true,
	"tcp_flow_stats": true,
	"http_get":       true,
	"memcached_get":  true,
	"mysql_query":    true,
	"resp_command":   true,
	"dns_query":      true,
	"tls_sni":        true,
}

func TestEveryParserHasFuzzTarget(t *testing.T) {
	for _, name := range Names() {
		if !fuzzTargets[name] {
			t.Errorf("parser %q has no fuzz target — add a Fuzz* function to fuzz_test.go", name)
		}
	}
	for name := range fuzzTargets {
		if _, err := Lookup(name); err != nil {
			t.Errorf("fuzz target for %q has no registered parser", name)
		}
	}
}
