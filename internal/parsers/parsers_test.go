package parsers

import (
	"net/netip"
	"sort"
	"testing"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
)

var (
	cliAddr = netip.MustParseAddr("10.0.2.8")
	srvAddr = netip.MustParseAddr("10.0.2.9")
)

// mkPacket builds a monitor packet descriptor from a raw frame.
func mkPacket(t *testing.T, raw []byte, ts time.Time) *monitor.Packet {
	t.Helper()
	pkt := &monitor.Packet{TS: ts}
	if err := pkt.Frame.Decode(raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	ft, ok := pkt.Frame.FlowTuple()
	if !ok {
		t.Fatal("no flow tuple")
	}
	pkt.Tuple = ft
	pkt.FlowID = ft.CanonicalHash()
	return pkt
}

func tcpFrame(flags uint8, srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: cliAddr, Dst: srvAddr,
		SrcPort: srcPort, DstPort: dstPort,
		Flags: flags, Payload: payload,
	})
}

// tcpFrameRev builds a server->client frame (the reverse direction of
// tcpFrame), so both directions share a canonical flow ID.
func tcpFrameRev(flags uint8, srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: srvAddr, Dst: cliAddr,
		SrcPort: srcPort, DstPort: dstPort,
		Flags: flags, Payload: payload,
	})
}

// collect runs a parser over raw frames and returns emitted tuples.
func collect(t *testing.T, p monitor.Parser, frames ...[]byte) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	emit := func(tu tuple.Tuple) { out = append(out, tu) }
	ts := time.Unix(1000, 0)
	for i, raw := range frames {
		p.Handle(mkPacket(t, raw, ts.Add(time.Duration(i)*time.Millisecond)), emit)
	}
	return out
}

// TestRegistryComplete checks the registry's internal consistency; coverage
// completeness (every parser has a golden fixture) lives in
// TestEveryParserHasFixture in conformance_test.go.
func TestRegistryComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) != len(Registry) {
		t.Errorf("Names() returned %d names for %d registered parsers", len(names), len(Registry))
	}
	for _, name := range names {
		f, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if got := f().Name(); got != name {
			t.Errorf("factory for %q builds parser named %q", name, got)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestTCPFlowKeyEmitsOncePerFlow(t *testing.T) {
	p := NewTCPFlowKey()
	f1 := tcpFrame(packet.TCPFlagSYN, 5555, 80, nil)
	f2 := tcpFrame(packet.TCPFlagACK, 5555, 80, []byte("data"))
	f3 := tcpFrame(packet.TCPFlagSYN, 5556, 80, nil) // second flow
	got := collect(t, p, f1, f2, f3)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want 2 (one per flow)", len(got))
	}
	tu := got[0]
	if tu.Key != KeyFlow || tu.SrcIP != "10.0.2.8" || tu.DstIP != "10.0.2.9" ||
		tu.SrcPort != 5555 || tu.DstPort != 80 {
		t.Errorf("tuple = %+v", tu)
	}
}

func TestTCPConnTimeStartEnd(t *testing.T) {
	p := NewTCPConnTime()
	frames := [][]byte{
		tcpFrame(packet.TCPFlagSYN, 5555, 80, nil),
		tcpFrame(packet.TCPFlagSYN, 5555, 80, nil), // retransmit: ignored
		tcpFrame(packet.TCPFlagACK|packet.TCPFlagPSH, 5555, 80, []byte("x")),
		tcpFrame(packet.TCPFlagFIN, 5555, 80, nil),
		tcpFrame(packet.TCPFlagFIN|packet.TCPFlagACK, 5555, 80, nil), // post-end: ignored
	}
	got := collect(t, p, frames...)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want 2", len(got))
	}
	if got[0].Key != KeyStart || got[1].Key != KeyEnd {
		t.Errorf("keys = %q, %q", got[0].Key, got[1].Key)
	}
	if got[1].Val <= got[0].Val {
		t.Errorf("end %v not after start %v", got[1].Val, got[0].Val)
	}
	if got[0].FlowID != got[1].FlowID {
		t.Error("start/end tuples carry different flow IDs")
	}
}

func TestTCPConnTimeRSTEndsFlow(t *testing.T) {
	p := NewTCPConnTime()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagSYN, 6000, 80, nil),
		tcpFrame(packet.TCPFlagRST, 6000, 80, nil),
	)
	if len(got) != 2 || got[1].Key != KeyEnd {
		t.Fatalf("tuples = %+v", got)
	}
}

func TestTCPConnTimeSynAckIsNotStart(t *testing.T) {
	p := NewTCPConnTime()
	got := collect(t, p, tcpFrame(packet.TCPFlagSYN|packet.TCPFlagACK, 80, 5555, nil))
	if len(got) != 0 {
		t.Errorf("SYN|ACK emitted %+v, want nothing", got)
	}
}

func TestTCPPktSize(t *testing.T) {
	p := NewTCPPktSize()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagACK, 5555, 80, make([]byte, 100)),
		tcpFrame(packet.TCPFlagACK, 5555, 80, make([]byte, 250)),
	)
	if len(got) != 2 {
		t.Fatalf("emitted %d, want 2", len(got))
	}
	if got[0].Val != 100 || got[1].Val != 250 {
		t.Errorf("sizes = %v, %v", got[0].Val, got[1].Val)
	}
}

func TestHTTPGetRequestAndResponse(t *testing.T) {
	p := NewHTTPGet()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagPSH, 5555, 80, proto.BuildHTTPGet("/films/a.php", "h1")),
		tcpFrameRev(packet.TCPFlagPSH, 80, 5555, proto.BuildHTTPResponse(200, []byte("ok"))),
		tcpFrame(packet.TCPFlagACK, 5555, 80, nil),                           // empty: ignored
		tcpFrame(packet.TCPFlagPSH, 5555, 80, []byte("POST / HTTP/1.1\r\n")), // non-GET: ignored
	)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want 2: %+v", len(got), got)
	}
	if got[0].Key != "/films/a.php" {
		t.Errorf("request key = %q", got[0].Key)
	}
	if got[1].Key != "" || got[1].Val != 200 {
		t.Errorf("response tuple = %+v, want empty key with status in Val", got[1])
	}
}

func TestMemcachedGet(t *testing.T) {
	p := NewMemcachedGet()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagPSH, 5555, 11211, proto.BuildMemcachedGet("user:7")),
		tcpFrameRev(packet.TCPFlagPSH, 11211, 5555, proto.BuildMemcachedValue("user:7", []byte("v"))),
	)
	if len(got) != 1 {
		t.Fatalf("emitted %d, want 1 (requests only)", len(got))
	}
	if got[0].Key != "user:7" {
		t.Errorf("key = %q", got[0].Key)
	}
}

func TestMySQLQueryLatency(t *testing.T) {
	p := NewMySQLQuery()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }

	t0 := time.Unix(1000, 0)
	q := mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 3306, proto.BuildMySQLQuery(0, "SELECT 1")), t0)
	r := mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 3306, 5555, proto.BuildMySQLOK(1, []byte("row"))), t0.Add(7*time.Millisecond))
	p.Handle(q, emit)
	p.Handle(r, emit)

	if len(got) != 1 {
		t.Fatalf("emitted %d, want 1", len(got))
	}
	tu := got[0]
	if tu.Key != "SELECT 1" {
		t.Errorf("key = %q", tu.Key)
	}
	if want := float64(7 * time.Millisecond); tu.Val != want {
		t.Errorf("latency = %v ns, want %v", tu.Val, want)
	}
}

func TestMySQLMultipleQueriesOneConnection(t *testing.T) {
	// §7.2: several queries share one TCP connection; each must get its own
	// latency tuple.
	p := NewMySQLQuery()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	t0 := time.Unix(1000, 0)
	for i, sql := range []string{"SELECT a", "SELECT b", "SELECT c"} {
		q := mkPacket(t, tcpFrame(packet.TCPFlagPSH, 5555, 3306, proto.BuildMySQLQuery(uint8(i), sql)), t0.Add(time.Duration(i)*time.Second))
		r := mkPacket(t, tcpFrameRev(packet.TCPFlagPSH, 3306, 5555, proto.BuildMySQLOK(uint8(i), nil)), t0.Add(time.Duration(i)*time.Second+time.Duration(i+1)*time.Millisecond))
		p.Handle(q, emit)
		p.Handle(r, emit)
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d, want 3", len(got))
	}
	for i, tu := range got {
		want := float64(time.Duration(i+1) * time.Millisecond)
		if tu.Val != want {
			t.Errorf("query %d latency = %v, want %v", i, tu.Val, want)
		}
	}
}

func TestMySQLResponseWithoutQueryIgnored(t *testing.T) {
	p := NewMySQLQuery()
	got := collect(t, p, tcpFrameRev(packet.TCPFlagPSH, 3306, 5555, proto.BuildMySQLOK(0, nil)))
	if len(got) != 0 {
		t.Errorf("emitted %+v, want nothing", got)
	}
}

func TestTCPFlowStats(t *testing.T) {
	p := NewTCPFlowStats()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagSYN, 5555, 80, nil),
		tcpFrame(packet.TCPFlagACK|packet.TCPFlagPSH, 5555, 80, make([]byte, 100)),
		tcpFrameRev(packet.TCPFlagACK|packet.TCPFlagPSH, 80, 5555, make([]byte, 400)),
		tcpFrame(packet.TCPFlagFIN, 5555, 80, nil),
	)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want 2 (bytes + pkts)", len(got))
	}
	byKey := map[string]float64{}
	for _, tu := range got {
		byKey[tu.Key] = tu.Val
	}
	if byKey[KeyBytes] != 500 {
		t.Errorf("bytes = %v, want 500", byKey[KeyBytes])
	}
	if byKey[KeyPkts] != 4 {
		t.Errorf("pkts = %v, want 4", byKey[KeyPkts])
	}
}

func TestTCPFlowStatsNoDoubleExport(t *testing.T) {
	// The peer's FIN|ACK after the flow exported must not create a second
	// record for the same connection.
	p := NewTCPFlowStats()
	got := collect(t, p,
		tcpFrame(packet.TCPFlagSYN, 7000, 80, nil),
		tcpFrame(packet.TCPFlagFIN, 7000, 80, nil),
		tcpFrameRev(packet.TCPFlagFIN|packet.TCPFlagACK, 80, 7000, nil),
	)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want 2 (one record)", len(got))
	}
}

func TestTCPFlowStatsFlushExportsOpenFlows(t *testing.T) {
	p := NewTCPFlowStats()
	var got []tuple.Tuple
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	p.Handle(mkPacket(t, tcpFrame(packet.TCPFlagACK, 6000, 80, make([]byte, 10)), time.Unix(0, 0)), emit)
	if len(got) != 0 {
		t.Fatalf("open flow exported early: %+v", got)
	}
	p.Flush(emit)
	if len(got) != 2 {
		t.Fatalf("flush emitted %d tuples, want 2", len(got))
	}
	p.Flush(emit)
	if len(got) != 2 {
		t.Errorf("second flush re-exported flows")
	}
}

func TestParsersIgnoreNonTCP(t *testing.T) {
	var b packet.Builder
	udp := b.UDP(packet.UDPSpec{Src: cliAddr, Dst: srvAddr, SrcPort: 5, DstPort: 6, Payload: []byte("x")})
	for name, factory := range Registry {
		if name == "memcached_get" || name == "dns_query" {
			continue // memcached may legitimately ride UDP; DNS natively does
		}
		p := factory()
		if got := collect(t, p, udp); len(got) != 0 {
			t.Errorf("%s emitted %+v for UDP frame", name, got)
		}
	}
}

func BenchmarkHTTPGetParser(b *testing.B) {
	p := NewHTTPGet()
	raw := tcpFrame(packet.TCPFlagPSH, 5555, 80, proto.BuildHTTPGet("/films/very/long/url/path.php", "h1"))
	pkt := &monitor.Packet{TS: time.Now()}
	if err := pkt.Frame.Decode(raw); err != nil {
		b.Fatal(err)
	}
	ft, _ := pkt.Frame.FlowTuple()
	pkt.Tuple = ft
	pkt.FlowID = ft.CanonicalHash()
	emit := func(tuple.Tuple) {}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Handle(pkt, emit)
	}
}

func BenchmarkTCPConnTimeParser(b *testing.B) {
	p := NewTCPConnTime()
	raw := tcpFrame(packet.TCPFlagACK, 5555, 80, make([]byte, 512))
	pkt := &monitor.Packet{TS: time.Now()}
	if err := pkt.Frame.Decode(raw); err != nil {
		b.Fatal(err)
	}
	ft, _ := pkt.Frame.FlowTuple()
	pkt.Tuple = ft
	pkt.FlowID = ft.CanonicalHash()
	emit := func(tuple.Tuple) {}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Handle(pkt, emit)
	}
}
