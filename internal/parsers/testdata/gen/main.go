// Command gen deterministically regenerates the parser conformance fixtures:
// for every parser registered in parsers.Registry it writes
//
//	internal/parsers/testdata/<name>.pcap        the input frames
//	internal/parsers/testdata/<name>.golden.json the tuples the parser emits
//
// Run it via `go generate ./internal/parsers` after changing a parser's
// emission schema or adding a parser (a new parser without a fixture fails
// TestEveryParserHasFixture). Frames are scripted, timestamps fixed, and the
// TLS/DNS builders use fixed randoms, so reruns are byte-identical.
package main

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/packet"
	"netalytics/internal/parsers"
	"netalytics/internal/pcap"
	"netalytics/internal/proto"
	"netalytics/internal/tuple"
)

var (
	cli = netip.MustParseAddr("10.0.2.8")
	srv = netip.MustParseAddr("10.0.2.9")

	// fixtureBase is the first frame's capture timestamp; each subsequent
	// frame is 1 ms later.
	fixtureBase = time.Unix(1700000000, 0)
)

func tcp(flags uint8, srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: cli, Dst: srv, SrcPort: srcPort, DstPort: dstPort,
		Flags: flags, Payload: payload,
	})
}

func tcpRev(flags uint8, srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: srv, Dst: cli, SrcPort: srcPort, DstPort: dstPort,
		Flags: flags, Payload: payload,
	})
}

func udp(srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.UDP(packet.UDPSpec{
		Src: cli, Dst: srv, SrcPort: srcPort, DstPort: dstPort, Payload: payload,
	})
}

func udpRev(srcPort, dstPort uint16, payload []byte) []byte {
	var b packet.Builder
	return b.UDP(packet.UDPSpec{
		Src: srv, Dst: cli, SrcPort: srcPort, DstPort: dstPort, Payload: payload,
	})
}

const (
	psh    = packet.TCPFlagACK | packet.TCPFlagPSH
	syn    = packet.TCPFlagSYN
	fin    = packet.TCPFlagFIN
	finAck = packet.TCPFlagFIN | packet.TCPFlagACK
)

// scripts maps each registered parser to the frames its fixture contains.
// Every script mixes well-formed traffic for the parser, traffic for other
// protocols (which must not emit), and edge cases worth freezing.
var scripts = map[string]func() [][]byte{
	"tcp_flow_key": func() [][]byte {
		return [][]byte{
			tcp(syn, 5555, 80, nil),
			tcp(psh, 5555, 80, []byte("data")), // same flow: no second tuple
			tcp(syn, 5556, 80, nil),            // second flow
		}
	},
	"tcp_conn_time": func() [][]byte {
		return [][]byte{
			tcp(syn, 5555, 80, nil),
			tcp(syn, 5555, 80, nil), // retransmit: ignored
			tcp(psh, 5555, 80, []byte("x")),
			tcp(fin, 5555, 80, nil),
			tcpRev(finAck, 80, 5555, nil), // post-end: ignored
			tcp(syn, 5556, 80, nil),
			tcp(packet.TCPFlagRST, 5556, 80, nil), // RST also ends
		}
	},
	"tcp_pkt_size": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 80, make([]byte, 100)),
			tcp(psh, 5555, 80, make([]byte, 250)),
			tcp(packet.TCPFlagACK, 5555, 80, nil), // zero payload still sized
		}
	},
	"http_get": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 80, proto.BuildHTTPGet("/films/a.php", "h1")),
			tcpRev(psh, 80, 5555, proto.BuildHTTPResponse(200, []byte("ok"))),
			tcp(psh, 5555, 80, []byte("POST / HTTP/1.1\r\n\r\n")), // non-GET: ignored
			tcp(psh, 5556, 80, proto.BuildHTTPGet("/films/b.php", "h1")),
			tcpRev(psh, 80, 5556, proto.BuildHTTPResponse(404, nil)),
		}
	},
	"memcached_get": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 11211, proto.BuildMemcachedGet("user:7")),
			tcpRev(psh, 11211, 5555, proto.BuildMemcachedValue("user:7", []byte("v"))),
			tcp(psh, 5555, 11211, proto.BuildMemcachedGet("session:9")),
			tcpRev(psh, 11211, 5555, []byte("END\r\n")), // miss
		}
	},
	"mysql_query": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 3306, proto.BuildMySQLQuery(0, "SELECT a FROM t")),
			tcpRev(psh, 3306, 5555, proto.BuildMySQLOK(1, []byte("rows"))),
			tcp(psh, 5555, 3306, proto.BuildMySQLQuery(2, "UPDATE t SET x=1")),
			tcpRev(psh, 3306, 5555, proto.BuildMySQLErr(3, "denied")), // ERR also resolves
			tcpRev(psh, 3306, 5555, proto.BuildMySQLOK(4, nil)),       // response w/o query: ignored
		}
	},
	"tcp_flow_stats": func() [][]byte {
		return [][]byte{
			tcp(syn, 5555, 80, nil),
			tcp(psh, 5555, 80, make([]byte, 100)),
			tcpRev(psh, 80, 5555, make([]byte, 400)),
			tcp(fin, 5555, 80, nil),
			tcp(psh, 5556, 80, make([]byte, 10)), // still open at shutdown: Flush exports
		}
	},
	"resp_command": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 6379, proto.BuildRESPCommand("get", "user:7")),
			tcpRev(psh, 6379, 5555, proto.BuildRESPBulk([]byte("val"))),
			// Two pipelined commands answered by two pipelined replies (FIFO).
			tcp(psh, 5555, 6379, append(proto.BuildRESPCommand("SET", "k", "v"), proto.BuildRESPCommand("INCR", "n")...)),
			tcpRev(psh, 6379, 5555, append(proto.BuildRESPSimple("OK"), proto.BuildRESPInteger(1)...)),
			tcpRev(psh, 6379, 5555, proto.BuildRESPSimple("OK")), // reply w/o command: ignored
		}
	},
	"dns_query": func() [][]byte {
		return [][]byte{
			udp(40000, 53, proto.BuildDNSQuery(1, "api.example.com", proto.DNSTypeA)),
			udpRev(53, 40000, proto.BuildDNSResponse(1, "api.example.com", proto.DNSTypeA, proto.DNSRCodeNoError,
				[]netip.Addr{netip.MustParseAddr("10.0.9.1")})),
			udp(40000, 53, proto.BuildDNSQuery(2, "nope.example.com", proto.DNSTypeA)),
			udpRev(53, 40000, proto.BuildDNSResponse(2, "nope.example.com", proto.DNSTypeA, proto.DNSRCodeNXDomain, nil)),
			udpRev(53, 40000, proto.BuildDNSResponse(9, "spoof.example.com", proto.DNSTypeA, proto.DNSRCodeNoError, nil)), // unsolicited
		}
	},
	"tls_sni": func() [][]byte {
		return [][]byte{
			tcp(psh, 5555, 443, proto.BuildTLSClientHello("shop.example.com")),
			tcp(psh, 5555, 443, proto.BuildTLSClientHello("shop.example.com")), // retransmit: once per flow
			tcp(psh, 5555, 443, proto.BuildTLSAppData([]byte("opaque"))),
			tcp(psh, 5556, 443, proto.BuildTLSClientHello("api.example.com")),
			tcp(psh, 5557, 443, proto.BuildTLSClientHello("")), // SNI-less: ignored
		}
	},
}

func main() {
	// go:generate runs from the package directory; also allow the repo root.
	dir := "testdata"
	if _, err := os.Stat(dir); err != nil {
		dir = "internal/parsers/testdata"
	}
	names := parsers.Names()
	for _, name := range names {
		script, ok := scripts[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "gen: no fixture script for parser %q — add one to scripts\n", name)
			os.Exit(1)
		}
		if err := writeFixture(dir, name, script()); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	for script := range scripts {
		if _, err := parsers.Lookup(script); err != nil {
			fmt.Fprintf(os.Stderr, "gen: script %q has no registered parser\n", script)
			os.Exit(1)
		}
	}
	fmt.Printf("gen: wrote %d fixtures to %s\n", len(names), dir)
}

func writeFixture(dir, name string, frames [][]byte) error {
	f, err := os.Create(filepath.Join(dir, name+".pcap"))
	if err != nil {
		return err
	}
	w, err := pcap.NewWriter(f)
	if err != nil {
		return err
	}
	for i, raw := range frames {
		if err := w.WritePacket(fixtureBase.Add(time.Duration(i)*time.Millisecond), raw); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}

	factory, err := parsers.Lookup(name)
	if err != nil {
		return err
	}
	p := factory()
	got := []tuple.Tuple{}
	emit := func(tu tuple.Tuple) { got = append(got, tu) }
	for i, raw := range frames {
		pkt := &monitor.Packet{TS: fixtureBase.Add(time.Duration(i) * time.Millisecond)}
		if err := pkt.Frame.Decode(raw); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		ft, ok := pkt.Frame.FlowTuple()
		if !ok {
			return fmt.Errorf("frame %d: no flow tuple", i)
		}
		pkt.Tuple = ft
		pkt.FlowID = ft.CanonicalHash()
		p.Handle(pkt, emit)
	}
	if fl, ok := p.(monitor.Flusher); ok {
		fl.Flush(emit)
	}
	sortTuples(got)
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".golden.json"), append(blob, '\n'), 0o644)
}

// sortTuples orders tuples canonically; it must match the conformance test's
// ordering (parsers that flush map-held state emit in nondeterministic order).
func sortTuples(ts []tuple.Tuple) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.FlowID != b.FlowID {
			return a.FlowID < b.FlowID
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Val < b.Val
	})
}
