// Package workload generates the synthetic workloads the evaluation uses:
//
//   - Data-center flow sets with the staggered locality distribution of the
//     paper's placement simulation (§6.2): 50 % of flows stay inside the
//     rack, 30 % inside the pod, 20 % cross the core, with heavy-tailed
//     per-flow rates calibrated so ~1000 K flows carry ~1.2 Tbps.
//   - Zipf-distributed content popularity with rank churn, standing in for
//     the YouTube request trace of §7.3 (Fig. 16).
//   - A packet blaster producing fixed-size frames, substituting for
//     PktGen-DPDK in the monitor throughput experiment (Fig. 5).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"netalytics/internal/packet"
	"netalytics/internal/placement"
	"netalytics/internal/proto"
	"netalytics/internal/topology"
)

// Locality is the staggered traffic distribution: fractions must sum to 1.
type Locality struct {
	ToR  float64 // same rack
	Pod  float64 // same pod, different rack
	Core float64 // different pod
}

// DefaultLocality is the paper's ToRP=0.5, PodP=0.3, CoreP=0.2.
var DefaultLocality = Locality{ToR: 0.5, Pod: 0.3, Core: 0.2}

// FlowConfig parameterizes flow-set generation.
type FlowConfig struct {
	Locality Locality
	// MeanRateBps is the mean per-flow rate (default 1.2 Mbps, matching
	// ~1.2 Tbps over ~1000 K flows).
	MeanRateBps float64
	// Sigma is the lognormal shape parameter for the heavy tail
	// (default 1.5, Benson-style skew).
	Sigma float64
}

func (c FlowConfig) withDefaults() FlowConfig {
	if c.Locality == (Locality{}) {
		c.Locality = DefaultLocality
	}
	if c.MeanRateBps <= 0 {
		c.MeanRateBps = 1.2e6
	}
	if c.Sigma <= 0 {
		c.Sigma = 1.5
	}
	return c
}

// StaggeredFlows draws n flows over the topology with the configured
// locality and a lognormal rate distribution whose mean is MeanRateBps.
func StaggeredFlows(topo *topology.FatTree, n int, cfg FlowConfig, rng *rand.Rand) []placement.Flow {
	cfg = cfg.withDefaults()
	hosts := topo.Hosts()
	// Lognormal with mean m: mu = ln(m) - sigma^2/2.
	mu := math.Log(cfg.MeanRateBps) - cfg.Sigma*cfg.Sigma/2

	flows := make([]placement.Flow, 0, n)
	for i := 0; i < n; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := pickDst(topo, src, cfg.Locality, rng)
		rate := math.Exp(mu + cfg.Sigma*rng.NormFloat64())
		flows = append(flows, placement.Flow{Src: src, Dst: dst, Rate: rate})
	}
	return flows
}

func pickDst(topo *topology.FatTree, src *topology.Host, loc Locality, rng *rand.Rand) *topology.Host {
	r := rng.Float64()
	switch {
	case r < loc.ToR:
		rack := topo.HostsUnderEdge(src.Edge)
		for tries := 0; tries < 8; tries++ {
			if h := rack[rng.Intn(len(rack))]; h != src {
				return h
			}
		}
		return rack[rng.Intn(len(rack))]
	case r < loc.ToR+loc.Pod:
		edges := topo.EdgesOfPod(src.Pod)
		for tries := 0; tries < 8; tries++ {
			e := edges[rng.Intn(len(edges))]
			if e.ID != src.Edge {
				rack := topo.HostsUnderEdge(e.ID)
				return rack[rng.Intn(len(rack))]
			}
		}
		fallthrough
	default:
		hosts := topo.Hosts()
		for tries := 0; tries < 8; tries++ {
			if h := hosts[rng.Intn(len(hosts))]; h.Pod != src.Pod {
				return h
			}
		}
		return hosts[rng.Intn(len(hosts))]
	}
}

// TotalRate sums the flow rates in bps.
func TotalRate(flows []placement.Flow) float64 {
	total := 0.0
	for _, f := range flows {
		total += f.Rate
	}
	return total
}

// Sample selects k flows uniformly at random without replacement (k > len
// returns all, shuffled).
func Sample(flows []placement.Flow, k int, rng *rand.Rand) []placement.Flow {
	idx := rng.Perm(len(flows))
	if k > len(flows) {
		k = len(flows)
	}
	out := make([]placement.Flow, k)
	for i := 0; i < k; i++ {
		out[i] = flows[idx[i]]
	}
	return out
}

// PopularityTrace emulates the request dynamics of the Zink et al. YouTube
// trace: a Zipf popularity law over a content catalog whose ranking slowly
// churns, so the identity of the top items shifts over time (Fig. 16).
type PopularityTrace struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	ranking []int // rank -> content id
	churn   int   // adjacent swaps per interval
}

// NewPopularityTrace creates a trace over catalog items with Zipf skew s
// (>1) and the given churn (rank swaps per interval).
func NewPopularityTrace(catalog int, s float64, churn int, rng *rand.Rand) *PopularityTrace {
	if catalog < 1 {
		catalog = 1
	}
	if s <= 1 {
		s = 1.2
	}
	if churn < 0 {
		churn = 0
	}
	ranking := make([]int, catalog)
	for i := range ranking {
		ranking[i] = i
	}
	return &PopularityTrace{
		rng:     rng,
		zipf:    rand.NewZipf(rng, s, 1, uint64(catalog-1)),
		ranking: ranking,
		churn:   churn,
	}
}

// Interval draws n requests for the current interval (returning content IDs)
// and then churns the ranking.
func (p *PopularityTrace) Interval(n int) []int {
	out := make([]int, n)
	for i := range out {
		rank := int(p.zipf.Uint64())
		out[i] = p.ranking[rank]
	}
	for s := 0; s < p.churn; s++ {
		i := p.rng.Intn(len(p.ranking) - 1)
		p.ranking[i], p.ranking[i+1] = p.ranking[i+1], p.ranking[i]
	}
	return out
}

// URL renders a content ID as the video URL form used by the examples.
func URL(id int) string { return fmt.Sprintf("/videos/%04d.mp4", id) }

// ZipfURLs streams Zipf-popularity URLs over an arbitrarily large distinct-key
// space — tens of millions of keys — without materializing a catalog. Where
// PopularityTrace keeps a rank→id permutation array (fine at thousands of
// items, hopeless at 10 M), ZipfURLs maps each drawn rank through the
// splitmix64 finalizer, a bijection on uint64: distinct ranks yield distinct,
// well-scattered key identities at zero memory. The same mapping is exposed
// via URLOf, so tests and benchmarks know analytically which keys are heavy —
// rank 0 is always the most popular URL — without tracking ground truth maps.
type ZipfURLs struct {
	zipf     *rand.Zipf
	distinct uint64
	salt     uint64
}

// NewZipfURLs creates a generator over `distinct` possible URLs (min 1) with
// Zipf skew s (values ≤ 1 default to 1.2, matching NewPopularityTrace). salt
// perturbs the rank→identity mapping so separate generators draw from
// disjoint-looking key spaces.
func NewZipfURLs(distinct uint64, s float64, salt uint64, rng *rand.Rand) *ZipfURLs {
	if distinct < 1 {
		distinct = 1
	}
	if s <= 1 {
		s = 1.2
	}
	return &ZipfURLs{
		zipf:     rand.NewZipf(rng, s, 1, distinct-1),
		distinct: distinct,
		salt:     salt,
	}
}

// Distinct returns the size of the generator's URL space.
func (z *ZipfURLs) Distinct() uint64 { return z.distinct }

// Next draws one URL; popularity follows the Zipf law over ranks.
func (z *ZipfURLs) Next() string { return z.URLOf(z.zipf.Uint64()) }

// NextRank draws one popularity rank (0 = most popular).
func (z *ZipfURLs) NextRank() uint64 { return z.zipf.Uint64() }

// URLOf renders the URL at a popularity rank. The mapping is deterministic
// per salt, so callers can enumerate the heavy hitters (ranks 0..k-1) that a
// top-k over the stream must surface.
func (z *ZipfURLs) URLOf(rank uint64) string {
	return fmt.Sprintf("/videos/%016x.mp4", splitmix64(rank^z.salt))
}

// splitmix64 is the splitmix64 finalizer — a bijective avalanche mix on
// uint64, so rank→identity never collides no matter the key-space size.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Blaster generates fixed-size TCP frames over a set of synthetic flows,
// standing in for PktGen-DPDK.
type Blaster struct {
	frames [][]byte
	next   int
	burst  [][]byte
}

// BlasterConfig parameterizes frame generation.
type BlasterConfig struct {
	// FrameSize is the total frame length in bytes (>= 64). Payload is
	// FrameSize minus the Ethernet+IPv4+TCP headers.
	FrameSize int
	// Flows is the number of distinct five-tuples to cycle through.
	Flows int
	// PayloadFor, when non-nil, supplies application bytes per flow (e.g.
	// an HTTP GET); the frame grows to fit it and FrameSize is ignored.
	PayloadFor func(flow int) []byte
	// DstPort is the destination port (default 80) — set it to the service
	// port the exercised parser expects (6379, 53, 443, ...).
	DstPort uint16
	// UDP emits UDP frames instead of TCP, for datagram protocols like DNS.
	UDP bool
	// SrcNet/DstNet pick the address pools; defaults 10.200.0.0/16 and
	// 10.201.0.0/16 so blaster traffic is outside fat-tree host ranges.
	SrcBase, DstBase [4]byte
}

// NewBlaster pre-builds one frame per flow so the generation cost is paid
// up front, like a hardware traffic generator.
func NewBlaster(cfg BlasterConfig, rng *rand.Rand) *Blaster {
	if cfg.FrameSize < 64 {
		cfg.FrameSize = 64
	}
	if cfg.Flows < 1 {
		cfg.Flows = 1
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 80
	}
	if cfg.SrcBase == ([4]byte{}) {
		cfg.SrcBase = [4]byte{10, 200, 0, 0}
	}
	if cfg.DstBase == ([4]byte{}) {
		cfg.DstBase = [4]byte{10, 201, 0, 0}
	}
	payloadLen := cfg.FrameSize - packet.EthernetHeaderLen - packet.IPv4HeaderLen - packet.TCPHeaderLen
	if payloadLen < 0 {
		payloadLen = 0
	}
	fixed := make([]byte, payloadLen)
	rng.Read(fixed)

	var b packet.Builder
	frames := make([][]byte, cfg.Flows)
	for i := range frames {
		payload := fixed
		if cfg.PayloadFor != nil {
			payload = cfg.PayloadFor(i)
		}
		src := cfg.SrcBase
		src[2], src[3] = byte(i>>8), byte(i)
		dst := cfg.DstBase
		dst[2], dst[3] = byte(i>>8), byte(i)
		if cfg.UDP {
			frames[i] = b.UDP(packet.UDPSpec{
				Src:     netip.AddrFrom4(src),
				Dst:     netip.AddrFrom4(dst),
				SrcPort: uint16(10000 + i%50000),
				DstPort: cfg.DstPort,
				Payload: payload,
			})
			continue
		}
		frames[i] = b.TCP(packet.TCPSpec{
			Src:     netip.AddrFrom4(src),
			Dst:     netip.AddrFrom4(dst),
			SrcPort: uint16(10000 + i%50000),
			DstPort: cfg.DstPort,
			Flags:   packet.TCPFlagACK | packet.TCPFlagPSH,
			Payload: payload,
		})
	}
	return &Blaster{frames: frames}
}

// NewHTTPGetBlaster builds a blaster whose frames carry HTTP GET requests
// drawn from a URL catalog, for exercising the http_get parser at line rate.
func NewHTTPGetBlaster(flows, urls int, rng *rand.Rand) *Blaster {
	if urls < 1 {
		urls = 1
	}
	cfg := BlasterConfig{
		Flows: flows,
		PayloadFor: func(int) []byte {
			return proto.BuildHTTPGet(URL(rng.Intn(urls)), "blast")
		},
	}
	return NewBlaster(cfg, rng)
}

// NewFrameBlaster wraps pre-built frames in a Blaster cycling over them in
// order, for workloads the per-flow template model can't express (e.g.
// request/response exchanges).
func NewFrameBlaster(frames [][]byte) *Blaster {
	return &Blaster{frames: frames}
}

// NewRESPBlaster builds a blaster whose frames carry Redis command/reply
// exchanges with a read-heavy mix over a bounded key space. Each flow
// alternates a command frame and its reply frame, so the resp_command
// parser — which emits on the reply — produces one latency tuple per pair.
func NewRESPBlaster(flows, keys int, rng *rand.Rand) *Blaster {
	if flows < 1 {
		flows = 1
	}
	if keys < 1 {
		keys = 1
	}
	var b packet.Builder
	frames := make([][]byte, 0, 2*flows)
	for i := 0; i < flows; i++ {
		key := fmt.Sprintf("key:%04d", rng.Intn(keys))
		var cmd, reply []byte
		switch rng.Intn(10) {
		case 0:
			cmd, reply = proto.BuildRESPCommand("SET", key, "v"), proto.BuildRESPSimple("OK")
		case 1:
			cmd, reply = proto.BuildRESPCommand("DEL", key), proto.BuildRESPInteger(1)
		default:
			cmd, reply = proto.BuildRESPCommand("GET", key), proto.BuildRESPBulk([]byte("v"))
		}
		src := [4]byte{10, 200, byte(i >> 8), byte(i)}
		dst := [4]byte{10, 201, byte(i >> 8), byte(i)}
		sport := uint16(10000 + i%50000)
		frames = append(frames, b.TCP(packet.TCPSpec{
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst),
			SrcPort: sport, DstPort: 6379,
			Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Payload: cmd,
		}))
		frames = append(frames, b.TCP(packet.TCPSpec{
			Src: netip.AddrFrom4(dst), Dst: netip.AddrFrom4(src),
			SrcPort: 6379, DstPort: sport,
			Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Payload: reply,
		}))
	}
	return NewFrameBlaster(frames)
}

// NewMySQLBlaster builds a blaster whose frames carry MySQL query/OK
// exchanges over a bounded statement catalog. Like NewRESPBlaster, each flow
// alternates the COM_QUERY frame and its OK reply, so the mysql_query
// parser — which emits on the reply — produces one latency tuple per pair.
func NewMySQLBlaster(flows, queries int, rng *rand.Rand) *Blaster {
	if flows < 1 {
		flows = 1
	}
	if queries < 1 {
		queries = 1
	}
	var b packet.Builder
	frames := make([][]byte, 0, 2*flows)
	for i := 0; i < flows; i++ {
		sql := fmt.Sprintf("SELECT v FROM t WHERE id=%d", rng.Intn(queries))
		src := [4]byte{10, 200, byte(i >> 8), byte(i)}
		dst := [4]byte{10, 201, byte(i >> 8), byte(i)}
		sport := uint16(10000 + i%50000)
		frames = append(frames, b.TCP(packet.TCPSpec{
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst),
			SrcPort: sport, DstPort: 3306,
			Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Payload: proto.BuildMySQLQuery(0, sql),
		}))
		frames = append(frames, b.TCP(packet.TCPSpec{
			Src: netip.AddrFrom4(dst), Dst: netip.AddrFrom4(src),
			SrcPort: 3306, DstPort: sport,
			Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Payload: proto.BuildMySQLOK(1, nil),
		}))
	}
	return NewFrameBlaster(frames)
}

// NewMemcachedBlaster builds a blaster whose frames carry memcached get
// requests over a bounded key space, for exercising the memcached_get
// parser at line rate.
func NewMemcachedBlaster(flows, keys int, rng *rand.Rand) *Blaster {
	if keys < 1 {
		keys = 1
	}
	cfg := BlasterConfig{
		Flows:   flows,
		DstPort: 11211,
		PayloadFor: func(int) []byte {
			return proto.BuildMemcachedGet(fmt.Sprintf("obj:%04d", rng.Intn(keys)))
		},
	}
	return NewBlaster(cfg, rng)
}

// NewDNSBlaster builds a blaster whose UDP frames carry DNS queries over a
// name catalog, for exercising the dns_query parser at line rate.
func NewDNSBlaster(flows, names int, rng *rand.Rand) *Blaster {
	if names < 1 {
		names = 1
	}
	cfg := BlasterConfig{
		Flows:   flows,
		DstPort: 53,
		UDP:     true,
		PayloadFor: func(flow int) []byte {
			name := fmt.Sprintf("host-%04d.example.com", rng.Intn(names))
			return proto.BuildDNSQuery(uint16(flow), name, proto.DNSTypeA)
		},
	}
	return NewBlaster(cfg, rng)
}

// NewTLSBlaster builds a blaster whose frames carry TLS ClientHellos over an
// SNI catalog, for exercising the tls_sni parser at line rate.
func NewTLSBlaster(flows, snis int, rng *rand.Rand) *Blaster {
	if snis < 1 {
		snis = 1
	}
	cfg := BlasterConfig{
		Flows:   flows,
		DstPort: 443,
		PayloadFor: func(int) []byte {
			return proto.BuildTLSClientHello(fmt.Sprintf("svc-%03d.example.com", rng.Intn(snis)))
		},
	}
	return NewBlaster(cfg, rng)
}

// Next returns the next frame, cycling over the flow set.
func (bl *Blaster) Next() []byte {
	f := bl.frames[bl.next]
	bl.next = (bl.next + 1) % len(bl.frames)
	return f
}

// NextBurst returns the next n frames as one burst, cycling over the flow
// set — the generator-side counterpart of Monitor.DeliverBurst. The
// returned slice is reused by the next NextBurst call, like a hardware
// generator's descriptor ring.
func (bl *Blaster) NextBurst(n int) [][]byte {
	if cap(bl.burst) < n {
		bl.burst = make([][]byte, n)
	}
	out := bl.burst[:n]
	for i := range out {
		out[i] = bl.Next()
	}
	return out
}

// FrameSize returns the size of the generated frames in bytes.
func (bl *Blaster) FrameSize() int { return len(bl.frames[0]) }
