package workload

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/parsers"
	"netalytics/internal/pcap"
	"netalytics/internal/tuple"
)

// recordBlaster captures n frames from a blaster into an in-memory pcap,
// 1 ms apart.
func recordBlaster(t *testing.T, bl *Blaster, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	for i := 0; i < n; i++ {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), bl.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func countTuples(t *testing.T, parserNames []string, deliver func(mon *monitor.Monitor)) uint64 {
	t.Helper()
	var tuples atomic.Uint64
	sink := monitor.SinkFunc(func(b *tuple.Batch) error {
		tuples.Add(uint64(len(b.Tuples)))
		return nil
	})
	factories := make([]monitor.Factory, 0, len(parserNames))
	for _, name := range parserNames {
		f, err := parsers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		factories = append(factories, f)
	}
	mon, err := monitor.New(monitor.Config{Parsers: factories, Sink: sink, QueueDepth: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	deliver(mon)
	mon.Stop()
	return tuples.Load()
}

// TestPcapBlasterParity is the acceptance check: replaying a recorded
// capture of a synthetic blaster produces exactly the tuple counts the live
// blaster produces.
func TestPcapBlasterParity(t *testing.T) {
	const frames = 400
	cases := []struct {
		name    string
		blaster func() *Blaster
		parser  string
	}{
		{"http", func() *Blaster { return NewHTTPGetBlaster(32, 10, rand.New(rand.NewSource(1))) }, "http_get"},
		{"resp", func() *Blaster { return NewRESPBlaster(32, 10, rand.New(rand.NewSource(2))) }, "resp_command"},
		{"mysql", func() *Blaster { return NewMySQLBlaster(32, 10, rand.New(rand.NewSource(7))) }, "mysql_query"},
		{"memcached", func() *Blaster { return NewMemcachedBlaster(32, 10, rand.New(rand.NewSource(8))) }, "memcached_get"},
		{"dns", func() *Blaster { return NewDNSBlaster(32, 10, rand.New(rand.NewSource(3))) }, "dns_query"},
		{"tls", func() *Blaster { return NewTLSBlaster(32, 10, rand.New(rand.NewSource(4))) }, "tls_sni"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := recordBlaster(t, tc.blaster(), frames)

			live := countTuples(t, []string{tc.parser}, func(mon *monitor.Monitor) {
				bl := tc.blaster()
				ts := time.Unix(1700000000, 0)
				for i := 0; i < frames; i++ {
					for !mon.Deliver(bl.Next(), ts.Add(time.Duration(i)*time.Millisecond)) {
					}
				}
			})

			replayed := countTuples(t, []string{tc.parser}, func(mon *monitor.Monitor) {
				bl, err := NewPcapBlaster(bytes.NewReader(buf.Bytes()), false)
				if err != nil {
					t.Fatal(err)
				}
				ts := time.Unix(1700000000, 0)
				i := 0
				for {
					burst := bl.NextBurst(64)
					if len(burst) == 0 {
						break
					}
					for _, f := range burst {
						for !mon.Deliver(f, ts.Add(time.Duration(i)*time.Millisecond)) {
						}
						i++
					}
				}
			})

			if live == 0 {
				t.Fatal("live blaster produced no tuples")
			}
			if live != replayed {
				t.Errorf("replay produced %d tuples, live blaster %d", replayed, live)
			}
		})
	}
}

func TestPcapBlasterExhaustionAndLoop(t *testing.T) {
	bl := NewBlaster(BlasterConfig{Flows: 3, FrameSize: 80}, rand.New(rand.NewSource(5)))
	buf := recordBlaster(t, bl, 3)

	once, err := NewPcapBlaster(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if once.Len() != 3 {
		t.Fatalf("Len = %d", once.Len())
	}
	for i := 0; i < 3; i++ {
		if once.Next() == nil {
			t.Fatalf("frame %d nil", i)
		}
	}
	if once.Next() != nil {
		t.Error("exhausted non-looping blaster returned a frame")
	}
	once.Rewind()
	if once.Next() == nil {
		t.Error("Rewind did not restart the replay")
	}

	loop, err := NewPcapBlaster(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	first := loop.Next()
	loop.Next()
	loop.Next()
	again := loop.Next() // wrapped
	if !bytes.Equal(first, again) {
		t.Error("looping replay did not wrap to the first frame")
	}
	if got := loop.NextBurst(5); len(got) != 5 {
		t.Errorf("looping burst returned %d frames, want 5", len(got))
	}
}

func TestPcapBlasterPacing(t *testing.T) {
	bl := NewBlaster(BlasterConfig{Flows: 4, FrameSize: 80}, rand.New(rand.NewSource(6)))
	buf := recordBlaster(t, bl, 4) // 1 ms apart
	p, err := NewPcapBlaster(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	f, gap := p.NextPaced()
	if f == nil || gap != 0 {
		t.Errorf("first frame gap = %v, want 0", gap)
	}
	for i := 0; i < 3; i++ {
		f, gap = p.NextPaced()
		if f == nil || gap != time.Millisecond {
			t.Errorf("frame %d gap = %v, want 1ms", i+2, gap)
		}
	}
	if f, _ := p.NextPaced(); f != nil {
		t.Error("exhausted paced replay returned a frame")
	}
}

func TestPcapBlasterRejectsEmptyAndGarbage(t *testing.T) {
	var empty bytes.Buffer
	if _, err := pcap.NewWriter(&empty); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPcapBlaster(bytes.NewReader(empty.Bytes()), false); err == nil {
		t.Error("empty capture accepted")
	}
	if _, err := NewPcapBlaster(bytes.NewReader([]byte("junk")), false); err == nil {
		t.Error("garbage accepted")
	}
}
