package workload

import (
	"math"
	"math/rand"
	"testing"

	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/topology"
)

func TestStaggeredFlowsLocality(t *testing.T) {
	topo := topology.MustNew(8)
	rng := rand.New(rand.NewSource(1))
	flows := StaggeredFlows(topo, 20000, FlowConfig{}, rng)
	if len(flows) != 20000 {
		t.Fatalf("flows = %d", len(flows))
	}
	var tor, pod, core int
	for _, f := range flows {
		switch {
		case f.Src.Edge == f.Dst.Edge:
			tor++
		case f.Src.Pod == f.Dst.Pod:
			pod++
		default:
			core++
		}
	}
	n := float64(len(flows))
	if p := float64(tor) / n; math.Abs(p-0.5) > 0.05 {
		t.Errorf("ToR fraction = %.3f, want ~0.5", p)
	}
	if p := float64(pod) / n; math.Abs(p-0.3) > 0.05 {
		t.Errorf("pod fraction = %.3f, want ~0.3", p)
	}
	if p := float64(core) / n; math.Abs(p-0.2) > 0.05 {
		t.Errorf("core fraction = %.3f, want ~0.2", p)
	}
}

func TestStaggeredFlowsRateDistribution(t *testing.T) {
	topo := topology.MustNew(4)
	rng := rand.New(rand.NewSource(2))
	flows := StaggeredFlows(topo, 50000, FlowConfig{MeanRateBps: 1.2e6}, rng)
	mean := TotalRate(flows) / float64(len(flows))
	if mean < 0.8e6 || mean > 1.8e6 {
		t.Errorf("mean rate = %.0f bps, want ~1.2e6", mean)
	}
	// Heavy tail: the largest flow should far exceed the mean.
	maxRate := 0.0
	for _, f := range flows {
		if f.Rate > maxRate {
			maxRate = f.Rate
		}
	}
	if maxRate < 10*mean {
		t.Errorf("max rate %.0f not heavy-tailed vs mean %.0f", maxRate, mean)
	}
	// All rates positive.
	for _, f := range flows[:100] {
		if f.Rate <= 0 {
			t.Fatalf("non-positive rate %v", f.Rate)
		}
	}
}

func TestPaperScaleWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale workload generation")
	}
	// §6.2: ~1000K flows over k=16 should carry roughly 1.2 Tbps.
	topo := topology.MustNew(16)
	rng := rand.New(rand.NewSource(3))
	flows := StaggeredFlows(topo, 1000000, FlowConfig{}, rng)
	total := TotalRate(flows)
	if total < 0.8e12 || total > 1.8e12 {
		t.Errorf("total rate = %.2f Tbps, want ~1.2", total/1e12)
	}
}

func TestSample(t *testing.T) {
	topo := topology.MustNew(4)
	rng := rand.New(rand.NewSource(4))
	flows := StaggeredFlows(topo, 100, FlowConfig{}, rng)
	sampled := Sample(flows, 30, rng)
	if len(sampled) != 30 {
		t.Errorf("sampled = %d", len(sampled))
	}
	all := Sample(flows, 1000, rng)
	if len(all) != 100 {
		t.Errorf("oversample = %d, want 100", len(all))
	}
}

func TestPopularityTraceChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trace := NewPopularityTrace(100, 1.5, 20, rng)

	topAt := func() int {
		counts := map[int]int{}
		for _, id := range trace.Interval(5000) {
			counts[id]++
		}
		best, bestN := -1, 0
		for id, n := range counts {
			if n > bestN {
				best, bestN = id, n
			}
		}
		return best
	}
	first := topAt()
	changed := false
	for i := 0; i < 50; i++ {
		if topAt() != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("top content never changed despite churn")
	}
}

func TestPopularityTraceSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	trace := NewPopularityTrace(1000, 1.5, 0, rng)
	counts := map[int]int{}
	reqs := trace.Interval(20000)
	for _, id := range reqs {
		counts[id]++
	}
	// Zipf: the most popular item should dwarf the median.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < len(reqs)/10 {
		t.Errorf("top item has %d/%d requests; distribution not skewed", max, len(reqs))
	}
}

func TestPopularityTraceDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := NewPopularityTrace(0, 0.5, -1, rng)
	if got := trace.Interval(10); len(got) != 10 {
		t.Errorf("Interval = %d ids", len(got))
	}
}

func TestURLFormat(t *testing.T) {
	if got := URL(42); got != "/videos/0042.mp4" {
		t.Errorf("URL(42) = %q", got)
	}
}

func TestBlasterFrameSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, size := range []int{64, 128, 256, 512, 1024} {
		bl := NewBlaster(BlasterConfig{FrameSize: size, Flows: 16}, rng)
		if got := bl.FrameSize(); got != size {
			t.Errorf("FrameSize(%d) = %d", size, got)
		}
		f, err := packet.Decode(bl.Next())
		if err != nil {
			t.Fatalf("decode %d-byte frame: %v", size, err)
		}
		if f.TCP == nil {
			t.Fatalf("%d-byte frame has no TCP header", size)
		}
	}
	// Undersized requests clamp to 64.
	bl := NewBlaster(BlasterConfig{FrameSize: 10, Flows: 1}, rng)
	if bl.FrameSize() != 64 {
		t.Errorf("clamped FrameSize = %d, want 64", bl.FrameSize())
	}
}

func TestBlasterCyclesFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bl := NewBlaster(BlasterConfig{FrameSize: 128, Flows: 4}, rng)
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		f, err := packet.Decode(bl.Next())
		if err != nil {
			t.Fatal(err)
		}
		ft, _ := f.FlowTuple()
		seen[ft.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct flows = %d, want 4", len(seen))
	}
}

func TestHTTPGetBlasterParseable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bl := NewHTTPGetBlaster(8, 100, rng)
	f, err := packet.Decode(bl.Next())
	if err != nil {
		t.Fatal(err)
	}
	req, err := proto.ParseHTTPRequest(f.Payload)
	if err != nil {
		t.Fatalf("blaster payload not an HTTP request: %v", err)
	}
	if req.Method != "GET" {
		t.Errorf("method = %q", req.Method)
	}
}

func BenchmarkStaggeredFlows100K(b *testing.B) {
	topo := topology.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = StaggeredFlows(topo, 100000, FlowConfig{}, rng)
	}
}

func TestBlasterNextBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bl := NewBlaster(BlasterConfig{FrameSize: 128, Flows: 4}, rng)

	// A burst must contain the same frame sequence Next would produce.
	single := NewBlaster(BlasterConfig{FrameSize: 128, Flows: 4}, rand.New(rand.NewSource(11)))
	burst := bl.NextBurst(7)
	if len(burst) != 7 {
		t.Fatalf("burst length = %d, want 7", len(burst))
	}
	for i, raw := range burst {
		want := single.Next()
		if string(raw) != string(want) {
			t.Fatalf("burst frame %d differs from Next sequence", i)
		}
	}

	// The backing slice is reused across calls.
	first := &bl.NextBurst(3)[0]
	second := &bl.NextBurst(3)[0]
	if first != second {
		t.Error("NextBurst allocated a fresh slice for a smaller burst")
	}
}

func TestZipfURLsSkewAndDeterminism(t *testing.T) {
	z := NewZipfURLs(10_000_000, 1.2, 7, rand.New(rand.NewSource(1)))
	if z.Distinct() != 10_000_000 {
		t.Fatalf("Distinct = %d", z.Distinct())
	}
	counts := map[string]int{}
	for i := 0; i < 50_000; i++ {
		counts[z.Next()]++
	}
	// Zipf skew: rank 0 must dominate, and be exactly URLOf(0).
	top := z.URLOf(0)
	if counts[top] < 5000 {
		t.Errorf("rank-0 URL drawn %d/50000 times, want heavy dominance", counts[top])
	}
	for url, n := range counts {
		if n > counts[top] {
			t.Errorf("URL %s (%d draws) beats rank 0 (%d)", url, n, counts[top])
		}
	}
	// URLOf is deterministic per salt and differs across salts.
	z2 := NewZipfURLs(10_000_000, 1.2, 7, rand.New(rand.NewSource(99)))
	if z2.URLOf(0) != top {
		t.Error("URLOf not deterministic for equal salts")
	}
	if NewZipfURLs(10_000_000, 1.2, 8, rand.New(rand.NewSource(1))).URLOf(0) == top {
		t.Error("different salts map rank 0 to the same URL")
	}
}

func TestZipfURLsRankIdentitiesDistinct(t *testing.T) {
	// splitmix64 is bijective: sequential ranks must render distinct URLs.
	z := NewZipfURLs(1_000_000, 1.5, 0, rand.New(rand.NewSource(1)))
	seen := map[string]uint64{}
	for r := uint64(0); r < 100_000; r++ {
		u := z.URLOf(r)
		if prev, dup := seen[u]; dup {
			t.Fatalf("ranks %d and %d both map to %s", prev, r, u)
		}
		seen[u] = r
	}
}

func TestZipfURLsDefaults(t *testing.T) {
	z := NewZipfURLs(0, 0.5, 0, rand.New(rand.NewSource(1)))
	if z.Distinct() != 1 {
		t.Errorf("Distinct = %d, want clamp to 1", z.Distinct())
	}
	if z.Next() != z.URLOf(0) {
		t.Error("single-key space must always draw rank 0")
	}
}
