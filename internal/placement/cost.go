package placement

import (
	"netalytics/internal/topology"
)

// Cost is the paper's evaluation of a placement (§6.2): the extra bandwidth
// NetAlytics traffic consumes relative to the monitored workload, in both
// plain hop-count and topology-weighted forms, plus the process count.
type Cost struct {
	// ExtraBandwidthPct is NetAlytics traffic (rate × hops) as a percentage
	// of the workload's own rate × hops.
	ExtraBandwidthPct float64
	// WeightedExtraBandwidthPct weights each hop by its level (host-ToR 1,
	// ToR-agg 2, agg-core 4) before taking the ratio.
	WeightedExtraBandwidthPct float64
	// Processes is the total number of placed NetAlytics processes.
	Processes int
}

// Evaluate computes the cost of a placement over the monitored flows.
// NetAlytics traffic consists of the extracted streams from each monitor to
// its aggregator and from each aggregator to its processors; the mirror copy
// from the covering ToR switch to the monitor rides a single rack-local link
// and is excluded, matching the paper's monitor→aggregator definition.
//
// The percentage is taken relative to workload — the data center's entire
// traffic, of which the monitored flows are a subset (§6.2 monitors up to
// 300 K of ~1000 K flows). A nil workload falls back to the monitored flows
// themselves.
func Evaluate(topo *topology.FatTree, flows []Flow, p *Placement, params Params, workload []Flow) Cost {
	params = params.withDefaults()
	if workload == nil {
		workload = flows
	}

	var workloadHops, workloadWeighted float64
	for _, f := range workload {
		workloadHops += f.Rate * float64(topo.HopCount(f.Src, f.Dst))
		workloadWeighted += f.Rate * float64(topo.WeightedCost(f.Src, f.Dst))
	}

	var extraHops, extraWeighted float64
	// Monitor -> aggregator: each monitor ships its extracted load.
	for mi, m := range p.Monitors {
		if mi >= len(p.MonAgg) {
			break
		}
		agg := p.Aggregators[p.MonAgg[mi]]
		extracted := m.Load * params.ExtractRatio
		extraHops += extracted * float64(topo.HopCount(m.Host, agg.Host))
		extraWeighted += extracted * float64(topo.WeightedCost(m.Host, agg.Host))
	}
	// Aggregator -> processors: all received data forwarded, split across
	// the aggregator's processors.
	for ai, a := range p.Aggregators {
		if ai >= len(p.AggProcs) || len(p.AggProcs[ai]) == 0 {
			continue
		}
		share := a.Load / float64(len(p.AggProcs[ai]))
		for _, pi := range p.AggProcs[ai] {
			proc := p.Processors[pi]
			extraHops += share * float64(topo.HopCount(a.Host, proc.Host))
			extraWeighted += share * float64(topo.WeightedCost(a.Host, proc.Host))
		}
	}

	c := Cost{Processes: p.ProcessCount()}
	if workloadHops > 0 {
		c.ExtraBandwidthPct = extraHops / workloadHops * 100
	}
	if workloadWeighted > 0 {
		c.WeightedExtraBandwidthPct = extraWeighted / workloadWeighted * 100
	}
	return c
}
