package placement

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"netalytics/internal/topology"
)

func testTopo(t *testing.T, k int) *topology.FatTree {
	t.Helper()
	ft := topology.MustNew(k)
	ft.RandomizeResources(rand.New(rand.NewSource(42)))
	return ft
}

// uniformFlows builds n flows between random host pairs at the given rate.
func uniformFlows(topo *topology.FatTree, n int, rate float64, rng *rand.Rand) []Flow {
	hosts := topo.Hosts()
	flows := make([]Flow, n)
	for i := range flows {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		flows[i] = Flow{Src: src, Dst: dst, Rate: rate}
	}
	return flows
}

func policies() []Policy {
	return []Policy{LocalRandom, NetalyticsNode, NetalyticsNetwork}
}

func TestPlaceErrors(t *testing.T) {
	topo := testTopo(t, 4)
	if _, err := Place(topo, nil, LocalRandom, Params{}, nil); !errors.Is(err, ErrNoFlows) {
		t.Errorf("no flows: err = %v", err)
	}
	if _, err := Place(topo, []Flow{{}}, LocalRandom, Params{}, nil); !errors.Is(err, ErrUnplaceable) {
		t.Errorf("nil hosts: err = %v", err)
	}
}

// checkInvariants verifies structural correctness of a placement.
func checkInvariants(t *testing.T, topo *topology.FatTree, flows []Flow, p *Placement, params Params) {
	t.Helper()
	params = params.withDefaults()

	if len(p.FlowMonitor) != len(flows) {
		t.Fatalf("FlowMonitor len = %d, want %d", len(p.FlowMonitor), len(flows))
	}
	// Every flow is assigned to a monitor that covers it.
	for i, f := range flows {
		mi := p.FlowMonitor[i]
		if mi < 0 || mi >= len(p.Monitors) {
			t.Fatalf("flow %d monitor index %d out of range", i, mi)
		}
		m := p.Monitors[mi]
		if m.Host.Edge != f.Src.Edge && m.Host.Edge != f.Dst.Edge {
			t.Errorf("flow %d monitored from rack %d, not covering src %d / dst %d",
				i, m.Host.Edge, f.Src.Edge, f.Dst.Edge)
		}
	}
	// Monitor loads respect capacity and match assigned flows.
	loads := make([]float64, len(p.Monitors))
	for i, f := range flows {
		loads[p.FlowMonitor[i]] += f.Rate
	}
	for mi, m := range p.Monitors {
		if m.Load > params.MonitorCapacityBps*1.0001 {
			t.Errorf("monitor %d overloaded: %.0f bps", mi, m.Load)
		}
		if diff := m.Load - loads[mi]; diff > 1 || diff < -1 {
			t.Errorf("monitor %d load %.0f != assigned %.0f", mi, m.Load, loads[mi])
		}
	}
	// Every monitor has an aggregator; every aggregator has processors.
	if len(p.MonAgg) != len(p.Monitors) {
		t.Fatalf("MonAgg len = %d, want %d", len(p.MonAgg), len(p.Monitors))
	}
	for mi, ai := range p.MonAgg {
		if ai < 0 || ai >= len(p.Aggregators) {
			t.Fatalf("monitor %d aggregator index %d out of range", mi, ai)
		}
	}
	if len(p.AggProcs) != len(p.Aggregators) {
		t.Fatalf("AggProcs len = %d, want %d", len(p.AggProcs), len(p.Aggregators))
	}
	for ai, procs := range p.AggProcs {
		if len(procs) == 0 {
			t.Errorf("aggregator %d has no processors", ai)
		}
		for _, pi := range procs {
			if pi < 0 || pi >= len(p.Processors) {
				t.Fatalf("aggregator %d processor index %d out of range", ai, pi)
			}
		}
	}
}

func TestPlacementInvariantsAllPolicies(t *testing.T) {
	topo := testTopo(t, 8)
	rng := rand.New(rand.NewSource(7))
	flows := uniformFlows(topo, 500, 2e6, rng)
	for _, pol := range policies() {
		t.Run(pol.Name, func(t *testing.T) {
			p, err := Place(topo, flows, pol, Params{}, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatalf("Place: %v", err)
			}
			checkInvariants(t, topo, flows, p, Params{})
		})
	}
}

func TestMonitorCapacityForcesMultipleMonitors(t *testing.T) {
	topo := testTopo(t, 4)
	rng := rand.New(rand.NewSource(3))
	hosts := topo.Hosts()
	// 30 flows of 1 Gbps between the same two racks: a 10 Gbps monitor can
	// hold at most 10.
	var flows []Flow
	for i := 0; i < 30; i++ {
		flows = append(flows, Flow{Src: hosts[0], Dst: hosts[2], Rate: 1e9})
	}
	p, err := Place(topo, flows, NetalyticsNetwork, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Monitors) < 3 {
		t.Errorf("monitors = %d, want >= 3 for 30 Gbps at 10 Gbps capacity", len(p.Monitors))
	}
	checkInvariants(t, topo, flows, p, Params{})
}

func TestGreedyUsesFewerMonitorsThanRandom(t *testing.T) {
	topo := testTopo(t, 8)
	flows := uniformFlows(topo, 2000, 1e5, rand.New(rand.NewSource(5)))

	avgMonitors := func(strategy MonitorStrategy) float64 {
		total := 0
		const rounds = 5
		for r := 0; r < rounds; r++ {
			p, err := Place(topo, flows, Policy{Name: "x", Monitor: strategy, Analytics: AnalyticsFirstFit}, Params{}, rand.New(rand.NewSource(int64(r))))
			if err != nil {
				t.Fatal(err)
			}
			total += len(p.Monitors)
		}
		return float64(total) / rounds
	}
	greedy := avgMonitors(MonitorGreedy)
	random := avgMonitors(MonitorRandom)
	if greedy > random {
		t.Errorf("greedy uses %.1f monitors, random %.1f: greedy should not use more", greedy, random)
	}
}

func TestFirstFitUsesFewestProcesses(t *testing.T) {
	// The paper's headline: NetAlytics-Node consumes the least resources.
	topo := testTopo(t, 8)
	flows := uniformFlows(topo, 3000, 1e6, rand.New(rand.NewSource(11)))

	counts := map[string]int{}
	for _, pol := range policies() {
		p, err := Place(topo, flows, pol, Params{}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		counts[pol.Name] = p.ProcessCount()
	}
	if counts["Netalytics-Node"] > counts["Local-Random"] {
		t.Errorf("Node (%d) should use <= processes than Local-Random (%d)",
			counts["Netalytics-Node"], counts["Local-Random"])
	}
}

func TestNetworkPolicyHasLowestNetworkCost(t *testing.T) {
	// The paper's other headline: NetAlytics-Network consumes the least
	// network bandwidth (Fig. 7).
	topo := testTopo(t, 8)
	flows := uniformFlows(topo, 3000, 1e6, rand.New(rand.NewSource(13)))

	costs := map[string]Cost{}
	for _, pol := range policies() {
		p, err := Place(topo, flows, pol, Params{}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		costs[pol.Name] = Evaluate(topo, flows, p, Params{}, nil)
	}
	network := costs["Netalytics-Network"]
	for _, name := range []string{"Local-Random", "Netalytics-Node"} {
		if network.ExtraBandwidthPct > costs[name].ExtraBandwidthPct {
			t.Errorf("Network policy bandwidth %.3f%% > %s %.3f%%",
				network.ExtraBandwidthPct, name, costs[name].ExtraBandwidthPct)
		}
	}
	// Greedy placement keeps traffic rack/pod-local, so its weighted cost
	// stays close to its unweighted cost (the overlapping lines in Fig. 7).
	if network.ExtraBandwidthPct > 0 {
		ratio := network.WeightedExtraBandwidthPct / network.ExtraBandwidthPct
		nodeRatio := costs["Netalytics-Node"].WeightedExtraBandwidthPct / costs["Netalytics-Node"].ExtraBandwidthPct
		if ratio > nodeRatio {
			t.Errorf("Network weighted/plain ratio %.2f exceeds Node's %.2f; locality not working", ratio, nodeRatio)
		}
	}
}

func TestEvaluateCostPositiveAndBounded(t *testing.T) {
	topo := testTopo(t, 8)
	flows := uniformFlows(topo, 1000, 1e6, rand.New(rand.NewSource(17)))
	p, err := Place(topo, flows, LocalRandom, Params{}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(topo, flows, p, Params{}, nil)
	if c.ExtraBandwidthPct < 0 || c.ExtraBandwidthPct > 100 {
		t.Errorf("ExtraBandwidthPct = %v", c.ExtraBandwidthPct)
	}
	if c.WeightedExtraBandwidthPct < 0 || c.WeightedExtraBandwidthPct > 100 {
		t.Errorf("WeightedExtraBandwidthPct = %v", c.WeightedExtraBandwidthPct)
	}
	if c.Processes != p.ProcessCount() {
		t.Errorf("Processes = %d, want %d", c.Processes, p.ProcessCount())
	}
}

// Property: placements are deterministic for a fixed seed, and every policy
// places at least one of each process kind.
func TestPlacementProperty(t *testing.T) {
	topo := testTopo(t, 4)
	rng := rand.New(rand.NewSource(23))
	prop := func() bool {
		n := 10 + rng.Intn(200)
		seed := rng.Int63()
		flows := uniformFlows(topo, n, 1e6, rand.New(rand.NewSource(seed)))
		for _, pol := range policies() {
			p1, err1 := Place(topo, flows, pol, Params{}, rand.New(rand.NewSource(seed)))
			p2, err2 := Place(topo, flows, pol, Params{}, rand.New(rand.NewSource(seed)))
			if err1 != nil || err2 != nil {
				return false
			}
			if len(p1.Monitors) != len(p2.Monitors) || p1.ProcessCount() != p2.ProcessCount() {
				return false
			}
			if len(p1.Monitors) == 0 || len(p1.Aggregators) == 0 || len(p1.Processors) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPlaceGreedyK16(b *testing.B) {
	topo := topology.MustNew(16)
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	flows := uniformFlows(topo, 10000, 1.2e6, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(topo, flows, NetalyticsNetwork, Params{}, rand.New(rand.NewSource(3))); err != nil {
			b.Fatal(err)
		}
	}
}
