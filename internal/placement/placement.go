// Package placement implements NetAlytics's monitor and analytics-engine
// placement algorithms (§4.1, Algorithms 1 and 2) and the cost model used to
// evaluate them (§6.2, Figs. 7–8).
//
// Monitors can only be placed under a ToR switch that covers a monitored
// flow (one of the flow's endpoints racks), while aggregators and processors
// are unconstrained. Three composed policies are evaluated in the paper:
//
//	Local-Random       random monitors, local-random analytics
//	NetAlytics-Node    random monitors, first-fit analytics (fewest nodes)
//	NetAlytics-Network greedy-cover monitors, greedy analytics (least traffic)
//
// Placement never mutates the topology's host resources; tentative
// allocations are tracked internally so policies can be compared on one
// topology.
package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netalytics/internal/topology"
)

// Flow is one monitored flow.
type Flow struct {
	Src, Dst *topology.Host
	Rate     float64 // bits per second
}

// MonitorStrategy selects Algorithm 1's switch-choice rule.
type MonitorStrategy int

// Monitor strategies.
const (
	// MonitorRandom picks a random covering ToR switch each round.
	MonitorRandom MonitorStrategy = iota + 1
	// MonitorGreedy picks the ToR switch covering the most unmonitored flows.
	MonitorGreedy
)

// AnalyticsStrategy selects how aggregators (and processors) are placed.
type AnalyticsStrategy int

// Analytics strategies.
const (
	// AnalyticsLocalRandom reuses an engine in the source's pod when one
	// has capacity, otherwise places a new engine on a random host.
	AnalyticsLocalRandom AnalyticsStrategy = iota + 1
	// AnalyticsFirstFit fills the current engine completely before
	// creating another (fewest engines, worst locality).
	AnalyticsFirstFit
	// AnalyticsGreedy picks the pod with the most unassigned sources and
	// places the engine on a host there (Algorithm 2).
	AnalyticsGreedy
)

// Policy composes the two strategies under a display name.
type Policy struct {
	Name      string
	Monitor   MonitorStrategy
	Analytics AnalyticsStrategy
}

// The paper's three evaluated policies.
var (
	LocalRandom       = Policy{Name: "Local-Random", Monitor: MonitorRandom, Analytics: AnalyticsLocalRandom}
	NetalyticsNode    = Policy{Name: "Netalytics-Node", Monitor: MonitorRandom, Analytics: AnalyticsFirstFit}
	NetalyticsNetwork = Policy{Name: "Netalytics-Network", Monitor: MonitorGreedy, Analytics: AnalyticsGreedy}
)

// Params carries the capacity model (§6.2): monitors handle 10 Gbps, one
// aggregator plus two processors handle 1 Gbps, and monitors extract 10 % of
// the traffic they observe.
type Params struct {
	MonitorCapacityBps float64 // default 10 Gbps
	AggCapacityBps     float64 // default 1 Gbps of extracted traffic
	ProcsPerAggregator int     // default 2
	ExtractRatio       float64 // default 0.1
	ProcCPU            float64 // cores reserved per process (default 1)
	ProcMemGB          float64 // memory reserved per process (default 1)
}

func (p Params) withDefaults() Params {
	if p.MonitorCapacityBps <= 0 {
		p.MonitorCapacityBps = 10e9
	}
	if p.AggCapacityBps <= 0 {
		p.AggCapacityBps = 1e9
	}
	if p.ProcsPerAggregator <= 0 {
		p.ProcsPerAggregator = 2
	}
	if p.ExtractRatio <= 0 || p.ExtractRatio > 1 {
		p.ExtractRatio = 0.1
	}
	if p.ProcCPU <= 0 {
		p.ProcCPU = 1
	}
	if p.ProcMemGB <= 0 {
		p.ProcMemGB = 1
	}
	return p
}

// Proc is one placed NetAlytics process.
type Proc struct {
	Host *topology.Host
	// Load is the traffic assigned to the process in bps (raw traffic for
	// monitors, extracted traffic for aggregators and processors).
	Load float64
}

// Placement is the result of Place.
type Placement struct {
	Policy      Policy
	Monitors    []*Proc
	Aggregators []*Proc
	Processors  []*Proc

	// FlowMonitor maps each flow index to its monitor index.
	FlowMonitor []int
	// MonAgg maps each monitor index to its aggregator index.
	MonAgg []int
	// AggProcs maps each aggregator index to its processor indices.
	AggProcs [][]int
}

// ProcessCount is the paper's resource-cost metric: total placed processes.
func (p *Placement) ProcessCount() int {
	return len(p.Monitors) + len(p.Aggregators) + len(p.Processors)
}

// Placement errors.
var (
	ErrNoFlows     = errors.New("placement: no flows to monitor")
	ErrUnplaceable = errors.New("placement: a flow has no covering switch")
)

// placer tracks tentative per-host allocations without mutating topology.
type placer struct {
	topo   *topology.FatTree
	params Params
	rng    *rand.Rand
	used   map[topology.NodeID]struct{ cpu, mem float64 }
}

func (pl *placer) freeCPU(h *topology.Host) float64 {
	u := pl.used[h.ID]
	return h.Res.FreeCPU() - u.cpu
}

func (pl *placer) hasCapacity(h *topology.Host) bool {
	if h.Res.CPUCores == 0 {
		return true // resources unmodeled on this topology
	}
	u := pl.used[h.ID]
	return h.Res.FreeCPU()-u.cpu >= pl.params.ProcCPU &&
		h.Res.FreeMem()-u.mem >= pl.params.ProcMemGB
}

func (pl *placer) allocate(h *topology.Host) {
	u := pl.used[h.ID]
	u.cpu += pl.params.ProcCPU
	u.mem += pl.params.ProcMemGB
	pl.used[h.ID] = u
}

// leastLoadedHost picks the host with maximal free CPU among hosts with
// capacity; nil when none fits.
func (pl *placer) leastLoadedHost(hosts []*topology.Host) *topology.Host {
	var best *topology.Host
	bestFree := 0.0
	for _, h := range hosts {
		if !pl.hasCapacity(h) {
			continue
		}
		if free := pl.freeCPU(h); best == nil || free > bestFree {
			best, bestFree = h, free
		}
	}
	return best
}

func (pl *placer) randomHostWithCapacity(hosts []*topology.Host) *topology.Host {
	start := pl.rng.Intn(len(hosts))
	for i := 0; i < len(hosts); i++ {
		h := hosts[(start+i)%len(hosts)]
		if pl.hasCapacity(h) {
			return h
		}
	}
	return nil
}

// Place runs the full placement pipeline: monitors (Algorithm 1), then
// aggregators over monitors and processors over aggregators (Algorithm 2
// style, per the policy's analytics strategy).
func Place(topo *topology.FatTree, flows []Flow, policy Policy, params Params, rng *rand.Rand) (*Placement, error) {
	if len(flows) == 0 {
		return nil, ErrNoFlows
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	params = params.withDefaults()
	pl := &placer{
		topo:   topo,
		params: params,
		rng:    rng,
		used:   make(map[topology.NodeID]struct{ cpu, mem float64 }),
	}
	out := &Placement{Policy: policy, FlowMonitor: make([]int, len(flows))}

	if err := pl.placeMonitors(flows, policy.Monitor, out); err != nil {
		return nil, err
	}
	if err := pl.placeAnalytics(flows, policy.Analytics, out); err != nil {
		return nil, err
	}
	return out, nil
}

// placeMonitors is Algorithm 1.
func (pl *placer) placeMonitors(flows []Flow, strategy MonitorStrategy, out *Placement) error {
	// Index: covering ToR switch -> unmonitored flow indices.
	cover := make(map[topology.NodeID][]int)
	for i, f := range flows {
		if f.Src == nil || f.Dst == nil {
			return fmt.Errorf("%w: flow %d", ErrUnplaceable, i)
		}
		cover[f.Src.Edge] = append(cover[f.Src.Edge], i)
		if f.Dst.Edge != f.Src.Edge {
			cover[f.Dst.Edge] = append(cover[f.Dst.Edge], i)
		}
	}
	monitored := make([]bool, len(flows))
	remaining := len(flows)

	// live returns the unmonitored flows under a switch, compacting as it goes.
	live := func(sw topology.NodeID) []int {
		list := cover[sw]
		kept := list[:0]
		for _, i := range list {
			if !monitored[i] {
				kept = append(kept, i)
			}
		}
		cover[sw] = kept
		if len(kept) == 0 {
			delete(cover, sw)
		}
		return kept
	}

	for remaining > 0 {
		// Candidate switches in deterministic order so a fixed seed yields
		// a fixed placement (map iteration order is randomized in Go).
		keys := make([]topology.NodeID, 0, len(cover))
		for cand := range cover {
			if len(live(cand)) > 0 {
				keys = append(keys, cand)
			}
		}
		if len(keys) == 0 {
			return ErrUnplaceable
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		var sw topology.NodeID
		switch strategy {
		case MonitorGreedy:
			best := -1
			for _, cand := range keys {
				if n := len(cover[cand]); n > best {
					best = n
					sw = cand
				}
			}
		default: // MonitorRandom
			sw = keys[pl.rng.Intn(len(keys))]
		}

		hosts := pl.topo.HostsUnderEdge(sw)
		h := pl.leastLoadedHost(hosts)
		if h == nil {
			// No capacity in this rack: fall back to the least loaded host
			// anywhere covering is impossible, so treat as unplaceable for
			// this switch and give the flows to their other covering rack.
			h = pl.leastLoadedHost(pl.topo.Hosts())
			if h == nil {
				return errors.New("placement: cluster out of capacity for monitors")
			}
		}
		pl.allocate(h)
		mon := &Proc{Host: h}
		monIdx := len(out.Monitors)
		out.Monitors = append(out.Monitors, mon)

		for _, fi := range live(sw) {
			f := flows[fi]
			if mon.Load+f.Rate > pl.params.MonitorCapacityBps {
				break
			}
			mon.Load += f.Rate
			monitored[fi] = true
			out.FlowMonitor[fi] = monIdx
			remaining--
		}
	}
	return nil
}

// placeAnalytics places aggregators over monitors, then processors over
// aggregators, using the same strategy for both layers.
func (pl *placer) placeAnalytics(flows []Flow, strategy AnalyticsStrategy, out *Placement) error {
	// Extracted load per monitor.
	monLoad := make([]float64, len(out.Monitors))
	for i := range out.Monitors {
		monLoad[i] = out.Monitors[i].Load * pl.params.ExtractRatio
	}
	monHosts := make([]*topology.Host, len(out.Monitors))
	for i, m := range out.Monitors {
		monHosts[i] = m.Host
	}

	assign, procs, err := pl.assignLayer(monHosts, monLoad, strategy)
	if err != nil {
		return err
	}
	out.Aggregators = procs
	out.MonAgg = assign

	// Processors: ProcsPerAggregator per aggregator, placed by the same
	// strategy with each aggregator as a source. Each processor carries an
	// equal share of the aggregator's load.
	aggHosts := make([]*topology.Host, 0, len(procs)*pl.params.ProcsPerAggregator)
	aggLoads := make([]float64, 0, cap(aggHosts))
	srcAgg := make([]int, 0, cap(aggHosts))
	for i, a := range procs {
		share := a.Load / float64(pl.params.ProcsPerAggregator)
		for p := 0; p < pl.params.ProcsPerAggregator; p++ {
			aggHosts = append(aggHosts, a.Host)
			aggLoads = append(aggLoads, share)
			srcAgg = append(srcAgg, i)
		}
	}
	procAssign, processors, err := pl.assignLayer(aggHosts, aggLoads, strategy)
	if err != nil {
		return err
	}
	out.Processors = processors
	out.AggProcs = make([][]int, len(out.Aggregators))
	for j, pi := range procAssign {
		a := srcAgg[j]
		out.AggProcs[a] = appendUnique(out.AggProcs[a], pi)
	}
	return nil
}

func appendUnique(s []int, v int) []int {
	for _, have := range s {
		if have == v {
			return s
		}
	}
	return append(s, v)
}

// assignLayer places engines for a set of sources (hosts with loads) and
// returns the per-source engine assignment.
func (pl *placer) assignLayer(srcHosts []*topology.Host, loads []float64, strategy AnalyticsStrategy) ([]int, []*Proc, error) {
	n := len(srcHosts)
	assign := make([]int, n)
	var engines []*Proc
	capacity := pl.params.AggCapacityBps

	newEngine := func(h *topology.Host) (*Proc, int, error) {
		if h == nil {
			h = pl.randomHostWithCapacity(pl.topo.Hosts())
		}
		if h == nil {
			return nil, 0, errors.New("placement: cluster out of capacity for analytics engines")
		}
		pl.allocate(h)
		e := &Proc{Host: h}
		engines = append(engines, e)
		return e, len(engines) - 1, nil
	}

	switch strategy {
	case AnalyticsFirstFit:
		var cur *Proc
		curIdx := -1
		for i := 0; i < n; i++ {
			if cur == nil || cur.Load+loads[i] > capacity {
				var err error
				cur, curIdx, err = newEngine(nil)
				if err != nil {
					return nil, nil, err
				}
			}
			cur.Load += loads[i]
			assign[i] = curIdx
		}

	case AnalyticsLocalRandom:
		// Engines indexed by pod for locality lookups.
		byPod := make(map[int][]int)
		for i := 0; i < n; i++ {
			pod := srcHosts[i].Pod
			placed := false
			for _, ei := range byPod[pod] {
				if engines[ei].Load+loads[i] <= capacity {
					engines[ei].Load += loads[i]
					assign[i] = ei
					placed = true
					break
				}
			}
			if placed {
				continue
			}
			e, ei, err := newEngine(nil)
			if err != nil {
				return nil, nil, err
			}
			e.Load += loads[i]
			assign[i] = ei
			byPod[e.Host.Pod] = append(byPod[e.Host.Pod], ei)
		}

	case AnalyticsGreedy:
		// Algorithm 2: repeatedly pick the pod (aggregate-switch domain)
		// with the most unassigned sources and place an engine on a host
		// there, assigning that pod's sources until the engine is full.
		unassigned := make([]bool, n)
		remaining := n
		for i := range unassigned {
			unassigned[i] = true
		}
		byPod := make(map[int][]int)
		for i := 0; i < n; i++ {
			byPod[srcHosts[i].Pod] = append(byPod[srcHosts[i].Pod], i)
		}
		pods := make([]int, 0, len(byPod))
		for pod := range byPod {
			pods = append(pods, pod)
		}
		sort.Ints(pods)
		for remaining > 0 {
			bestPod, bestCount := -1, 0
			for _, pod := range pods {
				count := 0
				for _, i := range byPod[pod] {
					if unassigned[i] {
						count++
					}
				}
				if count > bestCount {
					bestPod, bestCount = pod, count
				}
			}
			if bestPod < 0 {
				return nil, nil, errors.New("placement: inconsistent greedy state")
			}
			var podHosts []*topology.Host
			for _, e := range pl.topo.EdgesOfPod(bestPod) {
				podHosts = append(podHosts, pl.topo.HostsUnderEdge(e.ID)...)
			}
			host := pl.leastLoadedHost(podHosts) // may be nil: newEngine falls back to any host
			e, ei, err := newEngine(host)
			if err != nil {
				return nil, nil, err
			}
			for _, i := range byPod[bestPod] {
				if !unassigned[i] {
					continue
				}
				if e.Load+loads[i] > capacity {
					break
				}
				e.Load += loads[i]
				assign[i] = ei
				unassigned[i] = false
				remaining--
			}
			// If the engine could not take a single source (oversized
			// load), force-assign one to avoid livelock.
			if e.Load == 0 {
				for _, i := range byPod[bestPod] {
					if unassigned[i] {
						e.Load += loads[i]
						assign[i] = ei
						unassigned[i] = false
						remaining--
						break
					}
				}
			}
		}

	default:
		return nil, nil, fmt.Errorf("placement: unknown analytics strategy %d", strategy)
	}
	return assign, engines, nil
}
