package placement

import "netalytics/internal/topology"

// ExistingMonitor describes a monitor that is already running, for
// incremental re-planning: Host is where it runs and Load is the raw traffic
// (bps) already assigned to it.
type ExistingMonitor struct {
	Host *topology.Host
	Load float64
}

// Incremental is the shared-tap planner's reuse-first pass. Each flow is
// assigned to an existing monitor when one covers it — the monitor's host sits
// under one of the flow's endpoint racks — and still has capacity for the
// flow's rate; among covering candidates the least-loaded monitor wins, so
// reuse spreads instead of piling onto one instance. Flows no existing
// monitor can absorb are returned as residuals for a fresh Place call.
//
// assign[i] is the index into existing for flow i, or -1 when the flow is a
// residual. Loads in existing are updated in place as flows are packed, so a
// caller can chain Incremental calls across arriving queries.
func Incremental(existing []*ExistingMonitor, flows []Flow, params Params) (assign []int, residual []int) {
	params = params.withDefaults()
	assign = make([]int, len(flows))

	// Index monitors by the rack they sit under.
	byEdge := make(map[topology.NodeID][]int)
	for i, m := range existing {
		if m.Host != nil {
			byEdge[m.Host.Edge] = append(byEdge[m.Host.Edge], i)
		}
	}

	for i, f := range flows {
		assign[i] = -1
		if f.Src == nil || f.Dst == nil {
			residual = append(residual, i)
			continue
		}
		cands := byEdge[f.Src.Edge]
		if f.Dst.Edge != f.Src.Edge {
			cands = append(append([]int(nil), cands...), byEdge[f.Dst.Edge]...)
		}
		best := -1
		for _, mi := range cands {
			m := existing[mi]
			if m.Load+f.Rate > params.MonitorCapacityBps {
				continue
			}
			if best < 0 || m.Load < existing[best].Load {
				best = mi
			}
		}
		if best < 0 {
			residual = append(residual, i)
			continue
		}
		existing[best].Load += f.Rate
		assign[i] = best
	}
	return assign, residual
}
