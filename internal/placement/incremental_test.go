package placement

import (
	"math/rand"
	"testing"

	"netalytics/internal/topology"
)

func TestIncrementalReusesCoveringMonitors(t *testing.T) {
	topo := testTopo(t, 4)
	rng := rand.New(rand.NewSource(7))
	flows := uniformFlows(topo, 8, 1e9, rng)

	// Seed monitors from a fresh placement of the first half of the flows.
	seedFlows := flows[:4]
	seed, err := Place(topo, seedFlows, NetalyticsNetwork, Params{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	existing := make([]*ExistingMonitor, len(seed.Monitors))
	for i, m := range seed.Monitors {
		existing[i] = &ExistingMonitor{Host: m.Host, Load: m.Load}
	}

	// Re-submitting the already-covered flows must reuse, not residual.
	assign, residual := Incremental(existing, seedFlows, Params{})
	if len(residual) != 0 {
		t.Fatalf("covered flows produced residuals %v, want none", residual)
	}
	for i, mi := range assign {
		f := seedFlows[i]
		h := existing[mi].Host
		if h.Edge != f.Src.Edge && h.Edge != f.Dst.Edge {
			t.Errorf("flow %d assigned to monitor on edge %d, covers neither %d nor %d",
				i, h.Edge, f.Src.Edge, f.Dst.Edge)
		}
	}
}

func TestIncrementalRespectsCapacityAndCoverage(t *testing.T) {
	topo := testTopo(t, 4)
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	mon := &ExistingMonitor{Host: src, Load: 0}

	// A covering monitor at capacity cannot absorb the flow.
	mon.Load = 10e9
	assign, residual := Incremental([]*ExistingMonitor{mon}, []Flow{{Src: src, Dst: dst, Rate: 1e9}}, Params{})
	if assign[0] != -1 || len(residual) != 1 {
		t.Errorf("full monitor absorbed the flow: assign=%v residual=%v", assign, residual)
	}

	// With headroom it does, and its load advances for the next call.
	mon.Load = 0
	assign, residual = Incremental([]*ExistingMonitor{mon}, []Flow{{Src: src, Dst: dst, Rate: 1e9}}, Params{})
	if assign[0] != 0 || len(residual) != 0 {
		t.Fatalf("covering monitor not reused: assign=%v residual=%v", assign, residual)
	}
	if mon.Load != 1e9 {
		t.Errorf("monitor load after packing = %v, want 1e9", mon.Load)
	}

	// A monitor in an unrelated rack never covers the flow.
	var farHost *topology.Host
	for _, h := range hosts {
		if h.Edge != src.Edge && h.Edge != dst.Edge {
			farHost = h
			break
		}
	}
	assign, residual = Incremental([]*ExistingMonitor{{Host: farHost}}, []Flow{{Src: src, Dst: dst, Rate: 1e9}}, Params{})
	if assign[0] != -1 || len(residual) != 1 {
		t.Errorf("non-covering monitor was reused: assign=%v residual=%v", assign, residual)
	}
}

func TestIncrementalPrefersLeastLoaded(t *testing.T) {
	topo := testTopo(t, 4)
	hosts := topo.Hosts()
	src := hosts[0]
	var dst *topology.Host
	for _, h := range hosts {
		if h.Edge != src.Edge {
			dst = h
			break
		}
	}
	heavy := &ExistingMonitor{Host: src, Load: 5e9}
	light := &ExistingMonitor{Host: dst, Load: 1e9}
	assign, _ := Incremental([]*ExistingMonitor{heavy, light}, []Flow{{Src: src, Dst: dst, Rate: 1e9}}, Params{})
	if assign[0] != 1 {
		t.Errorf("flow packed onto monitor %d, want the least-loaded (1)", assign[0])
	}
}
